// Checkpoint round-trip differential fuzzer (the CI fuzz job's driver).
//
// Each round synthesizes a randomized scenario stream (severity tier,
// subject, scenario seed and recording seed all drawn from the round
// seed), picks a random cut offset, chunk size in {1, 7, 64, 1024} and
// numeric backend, then runs the stream twice: uninterrupted, and
// checkpointed at the cut + restored into a fresh engine. The two runs
// must produce byte-identical serialized beat streams and equal quality
// summaries. Any divergence is a format or state-capture bug; the
// failing (seed, cut, chunk, tier, backend) tuple is appended to the
// repro report the CI job uploads as an artifact, and the process exits
// non-zero.
//
//   ./fuzz_checkpoint_roundtrip [--rounds N] [--seed BASE] [--report PATH]
//                               [--corpus-dir DIR]
//
// Defaults: 24 rounds, seed 1, report FUZZ_checkpoint_repro.json. A
// repro: rerun with --seed <reported seed> --rounds 1 after offsetting
// the base so the failing round is round 0 (the report lists the exact
// per-round seed).
//
// With --corpus-dir, every divergence is additionally emitted as a
// replayable flight record (.icgr): the uninterrupted reference run is
// re-recorded with the checkpoint cadence set to the failing cut, so
// `replay --verify` on the emitted file re-executes the exact
// checkpoint-at-cut comparison that diverged — no fuzzer or synth stack
// needed to reproduce, and the file can be committed straight into
// tests/data/replay_corpus to pin the regression forever.
#include "core/beat_serializer.h"
#include "core/flight_recorder.h"
#include "core/pipeline.h"
#include "synth/recording.h"
#include "synth/rng.h"
#include "synth/scenario.h"
#include "synth/subject.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace icgkit;

namespace {

struct RoundSpec {
  std::uint64_t seed = 0;       ///< this round's derived seed
  std::size_t cut = 0;          ///< checkpoint offset, samples
  std::size_t chunk = 64;       ///< push granularity
  int tier = 0;                 ///< 0 clean, 1 mild, 2 moderate, 3 severe
  bool q31 = false;             ///< numeric backend
  std::size_t subject = 0;      ///< roster index
};

synth::ScenarioSpec tier_spec(int tier) {
  switch (tier) {
    case 1: return synth::ScenarioSpec::mild();
    case 2: return synth::ScenarioSpec::moderate();
    case 3: return synth::ScenarioSpec::severe();
    default: return synth::ScenarioSpec::clean();
  }
}

synth::Recording make_stream(const RoundSpec& spec) {
  const auto roster = synth::paper_roster();
  synth::RecordingConfig cfg;
  cfg.duration_s = 20.0;
  cfg.fs = 250.0;
  cfg.session_seed = spec.seed;
  const auto& subject = roster[spec.subject % roster.size()];
  const synth::SourceActivity src = generate_source(subject, cfg);
  synth::Recording rec = measure_thoracic(subject, src, 50e3);
  apply_scenario(rec, tier_spec(spec.tier), spec.seed ^ 0x5CE11A1105ULL);
  return rec;
}

template <typename Pipeline>
void feed(Pipeline& p, const synth::Recording& rec, std::size_t from, std::size_t to,
          std::size_t chunk, std::vector<core::BeatRecord>& out) {
  for (std::size_t i = from; i < to; i += chunk) {
    const std::size_t len = std::min(chunk, to - i);
    p.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                dsp::SignalView(rec.z_ohm.data() + i, len), out);
  }
}

std::vector<unsigned char> bytes_of(const std::vector<core::BeatRecord>& beats) {
  std::vector<unsigned char> out;
  for (const core::BeatRecord& b : beats) serialize_beat(b, out);
  return out;
}

bool summaries_equal(const core::QualitySummary& a, const core::QualitySummary& b) {
  if (a.beats != b.beats || a.usable != b.usable || a.ecg_dropouts != b.ecg_dropouts ||
      a.z_dropouts != b.z_dropouts || a.detector_resets != b.detector_resets ||
      a.ensemble_folds_skipped != b.ensemble_folds_skipped ||
      a.snr_beats != b.snr_beats || a.sum_snr_db != b.sum_snr_db ||
      a.min_snr_db != b.min_snr_db)
    return false;
  for (std::size_t i = 0; i < core::kBeatFlawCount; ++i)
    if (a.flaw_counts[i] != b.flaw_counts[i]) return false;
  return true;
}

/// Re-records the uninterrupted run of a diverged round as a replayable
/// .icgr whose periodic checkpoint cadence equals the failing cut, and
/// returns the file path. `replay --verify` on it re-runs the exact
/// restore-at-cut comparison that diverged.
template <typename Pipeline>
std::string emit_corpus(const synth::Recording& rec, const RoundSpec& spec,
                        const std::string& dir) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/diverged_seed" + std::to_string(spec.seed) +
                           (spec.q31 ? "_q31" : "_double") + ".icgr";
  Pipeline p(rec.fs);
  core::FileRecorderSink sink(path);
  core::FlightRecorderConfig rcfg;
  rcfg.checkpoint_interval = spec.cut;
  rcfg.seed = spec.seed;
  rcfg.tier = spec.tier;
  rcfg.subject = spec.subject;
  rcfg.note = "fuzz_checkpoint_roundtrip divergence, cut " + std::to_string(spec.cut) +
              ", chunk " + std::to_string(spec.chunk);
  core::FlightRecorder recorder(sink, p, rcfg);
  const std::size_t n = rec.ecg_mv.size();
  std::vector<core::BeatRecord> emitted;
  for (std::size_t i = 0; i < n; i += spec.chunk) {
    const std::size_t len = std::min(spec.chunk, n - i);
    emitted.clear();
    p.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                dsp::SignalView(rec.z_ohm.data() + i, len), emitted);
    recorder.on_chunk(p, dsp::SignalView(rec.ecg_mv.data() + i, len),
                      dsp::SignalView(rec.z_ohm.data() + i, len), emitted);
  }
  emitted.clear();
  p.finish_into(emitted);
  recorder.on_finish(p, emitted);
  return path;
}

template <typename Pipeline>
bool run_round(const synth::Recording& rec, const RoundSpec& spec) {
  const std::size_t n = rec.ecg_mv.size();
  Pipeline ref(rec.fs);
  std::vector<core::BeatRecord> ref_beats;
  feed(ref, rec, 0, n, spec.chunk, ref_beats);
  ref.finish_into(ref_beats);

  std::vector<core::BeatRecord> cut_beats;
  std::vector<std::uint8_t> blob;
  {
    Pipeline first(rec.fs);
    feed(first, rec, 0, spec.cut, spec.chunk, cut_beats);
    blob = first.checkpoint();
  }
  Pipeline second(rec.fs);
  second.restore(blob);
  feed(second, rec, spec.cut, n, spec.chunk, cut_beats);
  second.finish_into(cut_beats);

  return bytes_of(ref_beats) == bytes_of(cut_beats) &&
         summaries_equal(ref.quality_summary(), second.quality_summary());
}

} // namespace

int main(int argc, char** argv) {
  std::size_t rounds = 24;
  std::uint64_t base_seed = 1;
  std::string report_path = "FUZZ_checkpoint_repro.json";
  std::string corpus_dir;
  const auto usage = [&] {
    std::cerr << "usage: " << argv[0]
              << " [--rounds N] [--seed BASE] [--report PATH] [--corpus-dir DIR]\n";
    return 2;
  };
  for (int i = 1; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::cerr << "flag " << flag << " is missing its value\n";
      return usage();
    }
    try {
      if (flag == "--rounds") rounds = std::stoull(argv[i + 1]);
      else if (flag == "--seed") base_seed = std::stoull(argv[i + 1]);
      else if (flag == "--report") report_path = argv[i + 1];
      else if (flag == "--corpus-dir") corpus_dir = argv[i + 1];
      else {
        std::cerr << "unknown flag " << flag << "\n";
        return usage();
      }
    } catch (const std::exception&) {
      std::cerr << "flag " << flag << " needs an unsigned integer, got '"
                << argv[i + 1] << "'\n";
      return usage();
    }
  }

  std::vector<RoundSpec> failures;
  std::vector<std::string> corpus_files;
  const std::size_t chunks[] = {1, 7, 64, 1024};
  for (std::size_t round = 0; round < rounds; ++round) {
    RoundSpec spec;
    spec.seed = base_seed * 1000003ULL + round;
    synth::Rng rng(spec.seed);
    spec.tier = static_cast<int>(rng.next_u64() % 4);
    spec.subject = static_cast<std::size_t>(rng.next_u64() % 5);
    spec.chunk = chunks[rng.next_u64() % 4];
    spec.q31 = (rng.next_u64() & 1) != 0;
    const synth::Recording rec = make_stream(spec);
    // Any offset except the degenerate empty/full stream.
    spec.cut = 1 + static_cast<std::size_t>(rng.next_u64() % (rec.ecg_mv.size() - 1));

    const bool ok = spec.q31 ? run_round<core::FixedStreamingBeatPipeline>(rec, spec)
                             : run_round<core::StreamingBeatPipeline>(rec, spec);
    std::cout << "round " << round << ": seed " << spec.seed << " tier " << spec.tier
              << " subject " << spec.subject << " chunk " << spec.chunk << " cut "
              << spec.cut << " backend " << (spec.q31 ? "q31" : "double") << " -> "
              << (ok ? "identical" : "DIVERGED") << "\n";
    if (!ok) {
      failures.push_back(spec);
      if (!corpus_dir.empty()) {
        const std::string path =
            spec.q31
                ? emit_corpus<core::FixedStreamingBeatPipeline>(rec, spec, corpus_dir)
                : emit_corpus<core::StreamingBeatPipeline>(rec, spec, corpus_dir);
        corpus_files.push_back(path);
        std::cerr << "  emitted replayable corpus file " << path << "\n";
      }
    }
  }

  if (!failures.empty()) {
    std::ofstream report(report_path);
    report << "{\n  \"failures\": [\n";
    for (std::size_t i = 0; i < failures.size(); ++i) {
      const RoundSpec& f = failures[i];
      report << "    {\"seed\": " << f.seed << ", \"cut\": " << f.cut
             << ", \"chunk\": " << f.chunk << ", \"tier\": " << f.tier
             << ", \"subject\": " << f.subject << ", \"backend\": \""
             << (f.q31 ? "q31" : "double") << "\"";
      if (i < corpus_files.size())
        report << ", \"corpus\": \"" << corpus_files[i] << "\"";
      report << "}" << (i + 1 < failures.size() ? "," : "") << "\n";
    }
    report << "  ]\n}\n";
    std::cerr << "FUZZ FAILED: " << failures.size() << "/" << rounds
              << " rounds diverged (repro tuples in " << report_path << ")\n";
    return 1;
  }
  std::cout << "fuzz: " << rounds << " rounds, every round byte-identical\n";
  return 0;
}
