// Fleet server daemon: terminates icgkit wire-protocol streams on TCP.
//
//   ./serverd [--port P] [--workers N] [--fs HZ] [--max-chunk N]
//             [--max-connections N] [--max-sessions N] [--pending N]
//             [--rebalance-period CHUNKS] [--rebalance-gap N]
//             [--ensemble] [--lan] [--stats-every S]
//
// Binds 127.0.0.1 (or all interfaces with --lan), prints the bound
// port, and serves until SIGINT/SIGTERM, reporting live counters every
// --stats-every seconds (0 = quiet). The client side of the protocol
// is examples/net_client.cpp; the wire format is src/net/wire.h.
//
// Exit codes: 0 clean shutdown, 2 usage error, 3 bind refused (the
// ServerStatus name is printed — the config was rejected or the OS
// refused the socket).
#include "net/server.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

[[noreturn]] void usage() {
  std::cerr
      << "usage: serverd [--port P] [--workers N] [--fs HZ] [--max-chunk N]\n"
         "               [--max-connections N] [--max-sessions N] [--pending N]\n"
         "               [--rebalance-period CHUNKS] [--rebalance-gap N]\n"
         "               [--ensemble] [--lan] [--stats-every S]\n";
  std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
  using namespace icgkit;

  net::ServerConfig cfg;
  double stats_every_s = 5.0;

  auto need = [&](int i) -> const char* {
    if (i + 1 >= argc) usage();
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--port") == 0)
      cfg.port = static_cast<std::uint16_t>(std::stoul(need(i++)));
    else if (std::strcmp(a, "--workers") == 0)
      cfg.fleet.workers = std::stoul(need(i++));
    else if (std::strcmp(a, "--fs") == 0)
      cfg.fs_hz = std::stod(need(i++));
    else if (std::strcmp(a, "--max-chunk") == 0)
      cfg.fleet.max_chunk = std::stoul(need(i++));
    else if (std::strcmp(a, "--max-connections") == 0)
      cfg.max_connections = std::stoul(need(i++));
    else if (std::strcmp(a, "--max-sessions") == 0)
      cfg.max_sessions = std::stoul(need(i++));
    else if (std::strcmp(a, "--pending") == 0)
      cfg.tenant_pending_chunks = std::stoul(need(i++));
    else if (std::strcmp(a, "--rebalance-period") == 0)
      cfg.rebalance_period_chunks = std::stoul(need(i++));
    else if (std::strcmp(a, "--rebalance-gap") == 0)
      cfg.rebalance_min_gap = std::stoul(need(i++));
    else if (std::strcmp(a, "--ensemble") == 0)
      cfg.fleet.pipeline.enable_ensemble = true;
    else if (std::strcmp(a, "--lan") == 0)
      cfg.loopback_only = false;
    else if (std::strcmp(a, "--stats-every") == 0)
      stats_every_s = std::stod(need(i++));
    else
      usage();
  }
  // A CHNK frame must fit through the decoder bound.
  const std::size_t chunk_frame = 8 + 16 * cfg.fleet.max_chunk;
  if (cfg.max_frame_bytes < chunk_frame) cfg.max_frame_bytes = chunk_frame;

  net::FleetServer server(cfg);
  const net::ServerStatus verdict = server.bind();
  if (verdict != net::ServerStatus::Ok) {
    std::cerr << "serverd: bind refused: " << net::server_status_name(verdict)
              << "\n";
    return 3;
  }
  server.start();

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::cout << "serverd: listening on " << (cfg.loopback_only ? "127.0.0.1" : "0.0.0.0")
            << ":" << server.port() << " (" << cfg.fleet.workers << " workers, fs "
            << cfg.fs_hz << " Hz, max_chunk " << cfg.fleet.max_chunk << ")\n";

  auto last_stats = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const auto now = std::chrono::steady_clock::now();
    if (stats_every_s > 0.0 &&
        std::chrono::duration<double>(now - last_stats).count() >= stats_every_s) {
      last_stats = now;
      const net::ServerStats s = server.stats();
      std::cout << "[stats] open=" << s.sessions_open << " closed=" << s.sessions_closed
                << " samples=" << s.total_samples << " beats=" << s.total_beats
                << " shed=" << s.shed_chunks << " migrations=" << s.migrations
                << std::endl;
    }
  }
  std::cout << "serverd: shutting down\n";
  server.stop();
  const net::ServerStats s = server.stats();
  std::cout << "serverd: served " << s.sessions_closed << " sessions, "
            << s.total_samples << " samples, " << s.total_beats << " beats ("
            << s.shed_chunks << " shed, " << s.migrations << " migrations)\n";
  return 0;
}
