// Flight-record replay driver: record, verify, time-travel and bisect
// `.icgr` session recordings (see core/flight_recorder.h for the wire
// format and docs/ARCHITECTURE.md for the ops story).
//
//   ./replay --record OUT.icgr [--seed N] [--tier T] [--backend B]
//            [--duration S] [--subject N] [--chunk N] [--interval SAMPLES]
//            [--ensemble] [--stop-at SAMPLES] [--min-beats N] [--note STR]
//       Synthesizes one scenario session (same generator as the fuzzer)
//       and flight-records it. --stop-at cuts the recording mid-stream
//       (an unfinished file, the crash/power-loss shape). --min-beats
//       fails the run when the session emitted fewer beats (CI uses it
//       to pin the 1000-beat determinism session).
//
//   ./replay --verify FILE [--no-checkpoints]
//       Re-runs the recording end-to-end through a fresh engine and
//       byte-compares every emitted beat, every periodic checkpoint and
//       (when finished) the finish() tail + QualitySummary.
//
//   ./replay --seek FILE (--at-sample N | --at-beat N)
//       Restores the latest checkpoint at or before the target and
//       re-runs only the suffix, byte-comparing it to the recording.
//
//   ./replay --dump FILE [--at-sample N]
//       Reconstructs the full kernel state at the cut point and prints
//       the checkpoint section table, the config and the quality
//       summary (default cut: end of recording).
//
//   ./replay --bisect FILE [FILE2]
//       One file: localizes a self-divergence (replay vs recording) to
//       the exact chunk/checkpoint. Two files recorded from the same
//       input stream (two builds, ISAs or backends): byte-compares the
//       inputs, then narrows the first output divergence to the exact
//       chunk — the cross-build bisection mode.
//
//   ./replay --info FILE
//       Prints the parsed header and section counts (non-throwing probe).
//
// Exit codes: 0 success/identical, 1 divergence or failed expectation,
// 2 usage error, 3 structurally bad file (clean CheckpointError refusal).
#include "core/flight_recorder.h"
#include "synth/recording.h"
#include "synth/rng.h"
#include "synth/scenario.h"
#include "synth/subject.h"

#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

using namespace icgkit;

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "replay: cannot open '" << path << "'\n";
    std::exit(3);
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

synth::ScenarioSpec tier_spec(int tier) {
  switch (tier) {
    case 1: return synth::ScenarioSpec::mild();
    case 2: return synth::ScenarioSpec::moderate();
    case 3: return synth::ScenarioSpec::severe();
    default: return synth::ScenarioSpec::clean();
  }
}

const char* tier_name(int tier) {
  switch (tier) {
    case 0: return "clean";
    case 1: return "mild";
    case 2: return "moderate";
    case 3: return "severe";
    default: return "n/a";
  }
}

struct RecordSpec {
  std::string out;
  std::uint64_t seed = 1;
  int tier = 3;
  bool q31 = false;
  bool ensemble = false;
  double duration_s = 20.0;
  std::uint64_t subject = 0;
  std::size_t chunk = 64;
  std::uint64_t interval = core::kFlightCheckpointInterval;
  std::uint64_t stop_at = 0;  ///< 0 = run to finish()
  std::uint64_t min_beats = 0;
  std::string note;
};

synth::Recording make_stream(const RecordSpec& spec) {
  const auto roster = synth::paper_roster();
  synth::RecordingConfig cfg;
  cfg.duration_s = spec.duration_s;
  cfg.fs = 250.0;
  cfg.session_seed = spec.seed;
  const auto& subject = roster[spec.subject % roster.size()];
  const synth::SourceActivity src = generate_source(subject, cfg);
  synth::Recording rec = measure_thoracic(subject, src, 50e3);
  apply_scenario(rec, tier_spec(spec.tier), spec.seed ^ 0x5CE11A1105ULL);
  return rec;
}

template <typename Pipeline>
int record_with(const RecordSpec& spec, const synth::Recording& rec) {
  core::PipelineConfig pcfg;
  pcfg.enable_ensemble = spec.ensemble;
  Pipeline engine(rec.fs, pcfg);
  core::FileRecorderSink sink(spec.out);
  core::FlightRecorderConfig rcfg;
  rcfg.checkpoint_interval = spec.interval;
  rcfg.seed = spec.seed;
  rcfg.tier = spec.tier;
  rcfg.subject = spec.subject;
  rcfg.note = spec.note.empty() ? "tools/replay --record" : spec.note;
  core::FlightRecorder recorder(sink, engine, rcfg);

  const std::size_t n = rec.ecg_mv.size();
  std::vector<core::BeatRecord> beats;
  std::uint64_t total_beats = 0;
  bool stopped = false;
  for (std::size_t i = 0; i < n; i += spec.chunk) {
    if (spec.stop_at > 0 && i >= spec.stop_at) {
      recorder.on_stop(engine);
      stopped = true;
      break;
    }
    const std::size_t len = std::min(spec.chunk, n - i);
    beats.clear();
    engine.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                     dsp::SignalView(rec.z_ohm.data() + i, len), beats);
    recorder.on_chunk(engine, dsp::SignalView(rec.ecg_mv.data() + i, len),
                      dsp::SignalView(rec.z_ohm.data() + i, len), beats);
    total_beats += beats.size();
  }
  if (!stopped) {
    beats.clear();
    engine.finish_into(beats);
    recorder.on_finish(engine, beats);
    total_beats += beats.size();
  }

  std::cout << "recorded " << spec.out << ": " << recorder.chunks_recorded()
            << " chunks, " << total_beats << " beats, "
            << recorder.checkpoints_recorded() << " checkpoints, "
            << recorder.bytes_written() << " bytes ("
            << (spec.q31 ? "q31" : "double") << ", tier " << tier_name(spec.tier)
            << ", seed " << spec.seed << (stopped ? ", stopped mid-stream" : "")
            << ")\n";
  if (spec.min_beats > 0 && total_beats < spec.min_beats) {
    std::cerr << "replay: expected at least " << spec.min_beats
              << " beats, session emitted " << total_beats << "\n";
    return 1;
  }
  return 0;
}

int cmd_record(const RecordSpec& spec) {
  const synth::Recording rec = make_stream(spec);
  return spec.q31 ? record_with<core::FixedStreamingBeatPipeline>(spec, rec)
                  : record_with<core::StreamingBeatPipeline>(spec, rec);
}

void print_header(const core::FlightHeader& h) {
  std::cout << "  backend " << (h.backend_fixed ? "q31" : "double") << ", fs "
            << h.fs << " Hz, window " << h.window_s << " s ("
            << h.window_samples << " samples), ensemble "
            << (h.ensemble ? "on" : "off") << "\n"
            << "  checkpoint interval " << h.checkpoint_interval
            << " samples, start position " << h.start_samples << "\n"
            << "  provenance: seed " << h.seed << ", tier " << tier_name(h.tier)
            << ", subject " << h.subject
            << (h.note.empty() ? "" : (", note \"" + h.note + "\"")) << "\n";
}

int cmd_info(const std::string& path) {
  const auto file = read_file(path);
  const core::FlightProbe p = core::probe_flight(file);
  if (!p.valid) {
    std::cerr << "replay: '" << path << "' is not an intact flight record\n";
    return 3;
  }
  std::cout << "flight record " << path << " (" << file.size() << " bytes)\n";
  print_header(p.header);
  std::cout << "  " << p.chunks << " chunks, " << p.beats << " beats, "
            << p.checkpoints << " periodic checkpoints, final position "
            << p.samples << " samples, "
            << (p.has_end ? (p.finished ? "finished" : "stopped mid-stream")
                          : "unterminated")
            << "\n";
  return 0;
}

int cmd_verify(const std::string& path, bool check_checkpoints) {
  const auto file = read_file(path);
  const core::FlightVerifyReport rep = core::flight_verify(file, check_checkpoints);
  std::cout << "verify " << path << ": " << rep.chunks << " chunks, "
            << rep.beats_recorded << " recorded beats, " << rep.beats_replayed
            << " replayed beats, " << rep.samples << " samples"
            << (rep.has_end ? (rep.finished ? ", finished" : ", stopped")
                            : ", unterminated")
            << "\n";
  if (rep.ok) {
    std::cout << "verify: byte-identical replay\n";
    return 0;
  }
  if (rep.first_divergent_chunk >= 0)
    std::cout << "verify: FIRST DIVERGENT CHUNK " << rep.first_divergent_chunk << "\n";
  if (rep.first_divergent_checkpoint >= 0)
    std::cout << "verify: FIRST DIVERGENT CHECKPOINT "
              << rep.first_divergent_checkpoint << "\n";
  if (!rep.summary_match) std::cout << "verify: quality summary DIVERGED\n";
  if (!rep.tail_match) std::cout << "verify: finish() tail DIVERGED\n";
  return 1;
}

/// Maps a beat ordinal (0-based, in emission order) to the consumed-
/// samples position just after the chunk that emitted it.
std::optional<std::uint64_t> sample_of_beat(std::span<const std::uint8_t> file,
                                            std::uint64_t beat) {
  core::FlightReader rd(file);
  core::FlightReader::Event ev;
  std::uint64_t pos = rd.header().start_samples;
  std::uint64_t beats = 0;
  std::vector<unsigned char> one;
  serialize_beat(core::BeatRecord{}, one);
  while (rd.next(ev)) {
    if (ev.kind == core::FlightReader::EventKind::Chunk) {
      pos += ev.ecg.size();
      beats += ev.beat_bytes.size() / one.size();
      if (beats > beat) return pos;
    } else if (ev.kind == core::FlightReader::EventKind::End) {
      if (ev.beat_bytes.size() / one.size() + beats > beat) return ev.samples;
    }
  }
  return std::nullopt;
}

int cmd_seek(const std::string& path, std::optional<std::uint64_t> at_sample,
             std::optional<std::uint64_t> at_beat) {
  const auto file = read_file(path);
  std::uint64_t target = 0;
  if (at_sample) {
    target = *at_sample;
  } else {
    const auto pos = sample_of_beat(file, *at_beat);
    if (!pos) {
      std::cerr << "replay: recording has no beat " << *at_beat << "\n";
      return 1;
    }
    target = *pos;
  }
  const core::FlightSeekReport rep = core::flight_seek(file, target);
  std::cout << "seek " << path << " to sample " << target << ": restored at "
            << rep.restored_at << ", replayed " << rep.suffix_chunks
            << " suffix chunks (" << rep.suffix_beats << " beats)\n";
  if (rep.ok) {
    std::cout << "seek: suffix byte-identical to straight-through recording\n";
    return 0;
  }
  if (rep.first_divergent_chunk >= 0)
    std::cout << "seek: FIRST DIVERGENT CHUNK " << rep.first_divergent_chunk << "\n";
  if (!rep.summary_match) std::cout << "seek: quality summary DIVERGED\n";
  if (!rep.tail_match) std::cout << "seek: finish() tail DIVERGED\n";
  return 1;
}

int cmd_dump(const std::string& path, std::optional<std::uint64_t> at_sample) {
  const auto file = read_file(path);
  const core::FlightProbe p = core::probe_flight(file);
  if (!p.valid) {
    std::cerr << "replay: '" << path << "' is not an intact flight record\n";
    return 3;
  }
  const std::uint64_t target = at_sample.value_or(p.samples);

  std::vector<std::uint8_t> state;
  const core::FlightStateReport rep = core::flight_state_at(file, target, state);
  std::cout << "state at sample " << rep.samples << " (target " << target
            << ", " << rep.beats << " beats emitted on the way):\n";

  // Walk the reconstructed checkpoint blob's section table.
  core::StateReader r(state);
  char tag[5];
  while (r.peek_tag(tag)) {
    r.begin_section(tag);
    const std::size_t len = r.section_remaining();
    std::cout << "  section " << tag << "  " << len << " bytes";
    if (std::string(tag) == "CFG ") {
      const bool fixed = r.u8() == 1;
      const double fs = r.f64();
      const std::uint64_t window = r.u64();
      const bool ens = r.boolean();
      std::cout << "  (backend " << (fixed ? "q31" : "double") << ", fs " << fs
                << " Hz, window " << window << " samples, ensemble "
                << (ens ? "on" : "off") << ")";
    } else if (std::string(tag) == "QSUM") {
      const std::uint64_t beats = r.u64();
      const std::uint64_t usable = r.u64();
      std::uint64_t flaws = 0;
      for (std::size_t i = 0; i < core::kBeatFlawCount; ++i) flaws += r.u64();
      std::cout << "  (beats " << beats << ", usable " << usable
                << ", flaw marks " << flaws << ")";
      (void)r.bytes(r.section_remaining());
    } else {
      (void)r.bytes(r.section_remaining());
    }
    r.end_section();
    std::cout << "\n";
  }
  return 0;
}

int cmd_bisect(const std::string& path_a, const std::string& path_b) {
  const auto a = read_file(path_a);
  if (path_b.empty()) {
    const core::FlightVerifyReport rep = core::flight_verify(a, true);
    if (rep.ok) {
      std::cout << "bisect " << path_a << ": replay matches the recording — no divergence\n";
      return 0;
    }
    std::cout << "bisect " << path_a << ": replay diverges from the recording\n";
    if (rep.first_divergent_checkpoint >= 0)
      std::cout << "  first divergent checkpoint: ordinal "
                << rep.first_divergent_checkpoint << "\n";
    if (rep.first_divergent_chunk >= 0)
      std::cout << "  first divergent chunk: " << rep.first_divergent_chunk << "\n";
    if (!rep.summary_match) std::cout << "  quality summary diverged\n";
    if (!rep.tail_match) std::cout << "  finish() tail diverged\n";
    return 1;
  }

  const auto b = read_file(path_b);
  const core::FlightCompareReport rep = core::flight_compare(a, b);
  if (!rep.inputs_identical) {
    std::cerr << "bisect: the two recordings carry different input streams"
              << " (first mismatch at chunk " << rep.first_input_mismatch
              << ") — bisection needs recordings of the same stream\n";
    return 2;
  }
  std::cout << "bisect " << path_a << " vs " << path_b << ": "
            << rep.chunks_compared << " chunks, identical inputs\n";
  if (rep.outputs_identical) {
    std::cout << "bisect: outputs byte-identical\n";
    return 0;
  }
  if (rep.first_divergent_checkpoint >= 0)
    std::cout << "bisect: first divergent co-positioned checkpoint: ordinal "
              << rep.first_divergent_checkpoint << "\n";
  if (rep.first_divergent_chunk >= 0)
    std::cout << "bisect: FIRST DIVERGENT CHUNK " << rep.first_divergent_chunk << "\n";
  if (!rep.summary_match) std::cout << "bisect: quality summaries diverge\n";
  if (!rep.tail_match) std::cout << "bisect: finish() tails diverge\n";
  return 1;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --record OUT.icgr [--seed N] [--tier clean|mild|moderate|severe]\n"
               "         [--backend double|q31] [--duration S] [--subject N] [--chunk N]\n"
               "         [--interval SAMPLES] [--ensemble] [--stop-at SAMPLES]\n"
               "         [--min-beats N] [--note STR]\n"
            << "       " << argv0 << " --verify FILE [--no-checkpoints]\n"
            << "       " << argv0 << " --seek FILE (--at-sample N | --at-beat N)\n"
            << "       " << argv0 << " --dump FILE [--at-sample N]\n"
            << "       " << argv0 << " --bisect FILE [FILE2]\n"
            << "       " << argv0 << " --info FILE\n";
  return 2;
}

int parse_tier(const std::string& s) {
  if (s == "clean") return 0;
  if (s == "mild") return 1;
  if (s == "moderate") return 2;
  if (s == "severe") return 3;
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode, file_a, file_b;
  RecordSpec spec;
  bool check_checkpoints = true;
  std::optional<std::uint64_t> at_sample, at_beat;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "flag " << flag << " is missing its value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (flag == "--record" || flag == "--verify" || flag == "--seek" ||
          flag == "--dump" || flag == "--bisect" || flag == "--info") {
        if (!mode.empty()) return usage(argv[0]);
        mode = flag;
        file_a = value();
        if (flag == "--record") spec.out = file_a;
        if (flag == "--bisect" && i + 1 < argc && argv[i + 1][0] != '-')
          file_b = argv[++i];
      } else if (flag == "--seed") spec.seed = std::stoull(value());
      else if (flag == "--tier") {
        spec.tier = parse_tier(value());
        if (spec.tier < 0) return usage(argv[0]);
      } else if (flag == "--backend") {
        const std::string b = value();
        if (b == "q31") spec.q31 = true;
        else if (b == "double") spec.q31 = false;
        else return usage(argv[0]);
      } else if (flag == "--duration") spec.duration_s = std::stod(value());
      else if (flag == "--subject") spec.subject = std::stoull(value());
      else if (flag == "--chunk") spec.chunk = std::stoull(value());
      else if (flag == "--interval") spec.interval = std::stoull(value());
      else if (flag == "--ensemble") spec.ensemble = true;
      else if (flag == "--stop-at") spec.stop_at = std::stoull(value());
      else if (flag == "--min-beats") spec.min_beats = std::stoull(value());
      else if (flag == "--note") spec.note = value();
      else if (flag == "--no-checkpoints") check_checkpoints = false;
      else if (flag == "--at-sample") at_sample = std::stoull(value());
      else if (flag == "--at-beat") at_beat = std::stoull(value());
      else {
        std::cerr << "unknown flag " << flag << "\n";
        return usage(argv[0]);
      }
    } catch (const std::invalid_argument&) {
      std::cerr << "flag " << flag << " has a malformed numeric value\n";
      return 2;
    } catch (const std::out_of_range&) {
      std::cerr << "flag " << flag << " has an out-of-range value\n";
      return 2;
    }
  }
  if (mode.empty()) return usage(argv[0]);
  if (spec.chunk == 0) return usage(argv[0]);

  try {
    if (mode == "--record") return cmd_record(spec);
    if (mode == "--info") return cmd_info(file_a);
    if (mode == "--verify") return cmd_verify(file_a, check_checkpoints);
    if (mode == "--seek") {
      if (!at_sample && !at_beat) return usage(argv[0]);
      return cmd_seek(file_a, at_sample, at_beat);
    }
    if (mode == "--dump") return cmd_dump(file_a, at_sample);
    if (mode == "--bisect") return cmd_bisect(file_a, file_b);
  } catch (const core::CheckpointError& e) {
    // The refusal path: a corrupt, truncated or mismatched file is
    // rejected at the frame with a diagnostic, never UB.
    std::cerr << "replay: refused: " << e.what() << "\n";
    return 3;
  }
  return usage(argv[0]);
}
