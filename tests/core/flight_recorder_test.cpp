// core::FlightRecorder + replay: the deterministic flight-record /
// time-travel-replay subsystem.
//
// The contract under test:
//
//  - Recording is *observational*: a recorded pipeline emits byte-
//    identical beats and a bit-identical QualitySummary to an
//    unrecorded twin fed the same stream (double and Q31, under the
//    severe corruption tier).
//  - A recording replays byte-for-byte at every chunk size in
//    {1, 7, 64, 1024}: every beat, every periodic checkpoint, the
//    finish() tail and the terminal summary (flight_verify).
//  - Time travel: restoring the latest checkpoint before any target
//    and re-running only the suffix reproduces the recording exactly
//    (flight_seek) — checkpoint-resume equals straight-through.
//  - Recording can begin mid-stream (the initial checkpoint makes the
//    file self-contained) and can stop mid-stream (FINI finished=0).
//  - Fleet integration: start_recording/stop_recording tap a live
//    SessionManager session without perturbing any session's output,
//    and the recorder rides the session across a mid-recording
//    migrate().
//  - Hostility: every flipped byte and every truncation of a flight
//    record is refused with CheckpointError or surfaces as a clean
//    frame-boundary end (the legal power-loss shape) — never UB.
#include "core/beat_serializer.h"
#include "core/checkpoint.h"
#include "core/fleet.h"
#include "core/flight_recorder.h"
#include "core/pipeline.h"
#include "synth/recording.h"
#include "synth/scenario.h"
#include "synth/subject.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace {

using namespace icgkit;
using core::BeatRecord;
using core::BufferRecorderSink;
using core::CheckpointError;
using core::FixedStreamingBeatPipeline;
using core::FleetBeat;
using core::FleetConfig;
using core::FlightRecorder;
using core::FlightRecorderConfig;
using core::FlightVerifyReport;
using core::QualitySummary;
using core::SessionManager;
using core::StreamingBeatPipeline;
using core::serialize_beat;
using core::summaries_identical;

constexpr double kFs = 250.0;

/// A severe-tier recording — the hardest stream the recorder must
/// reproduce (gaps, saturation, motion bursts).
synth::Recording severe_recording(std::uint64_t seed = 7, double duration_s = 20.0) {
  synth::RecordingConfig cfg;
  cfg.duration_s = duration_s;
  cfg.fs = kFs;
  cfg.session_seed = seed;
  const auto roster = synth::paper_roster();
  const synth::SubjectProfile& subject = roster[seed % roster.size()];
  const synth::SourceActivity src = generate_source(subject, cfg);
  synth::Recording rec = measure_thoracic(subject, src, 50e3);
  apply_scenario(rec, synth::ScenarioSpec::severe(), seed ^ 0x5CE11A1105ULL);
  return rec;
}

/// Runs `rec` through a fresh pipeline with a FlightRecorder attached,
/// returning the .icgr bytes. Optionally collects the live outputs and
/// stops the recording (instead of finishing) once `stop_at_sample` is
/// reached.
template <typename Pipeline>
std::vector<std::uint8_t> record_run(const synth::Recording& rec, std::size_t chunk,
                                     std::uint64_t interval,
                                     std::vector<unsigned char>* beats_out = nullptr,
                                     QualitySummary* summary_out = nullptr,
                                     std::uint64_t stop_at_sample = 0) {
  Pipeline p(rec.fs);
  BufferRecorderSink sink;
  FlightRecorderConfig rcfg;
  rcfg.checkpoint_interval = interval;
  FlightRecorder recorder(sink, p, rcfg);
  std::vector<BeatRecord> emitted;
  const std::size_t n = rec.ecg_mv.size();
  for (std::size_t i = 0; i < n; i += chunk) {
    const std::size_t len = std::min(chunk, n - i);
    emitted.clear();
    p.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                dsp::SignalView(rec.z_ohm.data() + i, len), emitted);
    recorder.on_chunk(p, dsp::SignalView(rec.ecg_mv.data() + i, len),
                      dsp::SignalView(rec.z_ohm.data() + i, len), emitted);
    if (beats_out != nullptr)
      for (const BeatRecord& b : emitted) serialize_beat(b, *beats_out);
    if (stop_at_sample != 0 && p.samples_consumed() >= stop_at_sample) {
      recorder.on_stop(p);
      return sink.take();
    }
  }
  emitted.clear();
  p.finish_into(emitted);
  recorder.on_finish(p, emitted);
  if (beats_out != nullptr)
    for (const BeatRecord& b : emitted) serialize_beat(b, *beats_out);
  if (summary_out != nullptr) *summary_out = p.quality_summary();
  return sink.take();
}

/// The unrecorded twin: same stream, no recorder.
template <typename Pipeline>
std::vector<unsigned char> plain_run(const synth::Recording& rec, std::size_t chunk,
                                     QualitySummary& summary) {
  Pipeline p(rec.fs);
  std::vector<BeatRecord> beats;
  const std::size_t n = rec.ecg_mv.size();
  for (std::size_t i = 0; i < n; i += chunk) {
    const std::size_t len = std::min(chunk, n - i);
    p.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                dsp::SignalView(rec.z_ohm.data() + i, len), beats);
  }
  p.finish_into(beats);
  summary = p.quality_summary();
  std::vector<unsigned char> bytes;
  for (const BeatRecord& b : beats) serialize_beat(b, bytes);
  return bytes;
}

// ---------------------------------------------------------------------------
// Replay invariance: every chunk size, both backends
// ---------------------------------------------------------------------------

template <typename Pipeline>
void expect_chunk_invariance() {
  const synth::Recording rec = severe_recording();
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                  std::size_t{1024}}) {
    const std::vector<std::uint8_t> file =
        record_run<Pipeline>(rec, chunk, /*interval=*/2000);
    const FlightVerifyReport rep = core::flight_verify(file);
    EXPECT_TRUE(rep.ok) << "chunk " << chunk << ": first divergent chunk "
                        << rep.first_divergent_chunk << ", checkpoint "
                        << rep.first_divergent_checkpoint;
    EXPECT_TRUE(rep.has_end) << "chunk " << chunk;
    EXPECT_TRUE(rep.finished) << "chunk " << chunk;
    EXPECT_TRUE(rep.summary_match) << "chunk " << chunk;
    EXPECT_TRUE(rep.tail_match) << "chunk " << chunk;
    EXPECT_GT(rep.beats_recorded, 0u) << "chunk " << chunk;
    EXPECT_EQ(rep.beats_recorded, rep.beats_replayed) << "chunk " << chunk;
    EXPECT_EQ(rep.chunks, (rec.ecg_mv.size() + chunk - 1) / chunk)
        << "chunk " << chunk;
  }
}

TEST(FlightRecorderInvarianceTest, EveryChunkSizeReplaysByteIdenticalDouble) {
  expect_chunk_invariance<StreamingBeatPipeline>();
}

TEST(FlightRecorderInvarianceTest, EveryChunkSizeReplaysByteIdenticalQ31) {
  expect_chunk_invariance<FixedStreamingBeatPipeline>();
}

// ---------------------------------------------------------------------------
// Recording is observational: the recorded run equals the unrecorded twin
// ---------------------------------------------------------------------------

template <typename Pipeline>
void expect_recording_is_observational() {
  const synth::Recording rec = severe_recording(11);
  std::vector<unsigned char> recorded_beats;
  QualitySummary recorded_summary{};
  (void)record_run<Pipeline>(rec, 64, /*interval=*/1500, &recorded_beats,
                             &recorded_summary);
  QualitySummary plain_summary{};
  const std::vector<unsigned char> plain_beats =
      plain_run<Pipeline>(rec, 64, plain_summary);
  EXPECT_EQ(recorded_beats, plain_beats);
  EXPECT_TRUE(summaries_identical(recorded_summary, plain_summary));
}

TEST(FlightRecorderInvarianceTest, RecordingDoesNotPerturbOutputDouble) {
  expect_recording_is_observational<StreamingBeatPipeline>();
}

TEST(FlightRecorderInvarianceTest, RecordingDoesNotPerturbOutputQ31) {
  expect_recording_is_observational<FixedStreamingBeatPipeline>();
}

// ---------------------------------------------------------------------------
// Time travel: seek-to-checkpoint + suffix replay equals straight-through
// ---------------------------------------------------------------------------

TEST(FlightSeekTest, SeekEqualsStraightThroughAtEveryTarget) {
  const synth::Recording rec = severe_recording(5);
  const std::vector<std::uint8_t> file =
      record_run<FixedStreamingBeatPipeline>(rec, 64, /*interval=*/1000);
  const std::uint64_t n = rec.ecg_mv.size();
  for (const std::uint64_t target :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{999}, std::uint64_t{1000},
        std::uint64_t{1001}, std::uint64_t{2500}, n / 2, n - 1, n + 1000}) {
    const core::FlightSeekReport rep = core::flight_seek(file, target);
    EXPECT_TRUE(rep.ok) << "target " << target << ": first divergent chunk "
                        << rep.first_divergent_chunk;
    if (target > 0) {
      EXPECT_LE(rep.restored_at, target) << "target " << target;
    }
    EXPECT_TRUE(rep.summary_match) << "target " << target;
    EXPECT_TRUE(rep.tail_match) << "target " << target;
  }
}

TEST(FlightSeekTest, LateSeekRestoresFromLatestCheckpointNotStart) {
  const synth::Recording rec = severe_recording(5);
  const std::vector<std::uint8_t> file =
      record_run<StreamingBeatPipeline>(rec, 64, /*interval=*/1000);
  const core::FlightSeekReport rep =
      core::flight_seek(file, rec.ecg_mv.size() - 1);
  EXPECT_TRUE(rep.ok);
  EXPECT_GE(rep.restored_at, 1000u);  // a periodic checkpoint, not sample 0
}

TEST(FlightStateTest, ReconstructedStateRestoresIntoAFreshPipeline) {
  const synth::Recording rec = severe_recording(5);
  const std::vector<std::uint8_t> file =
      record_run<StreamingBeatPipeline>(rec, 64, /*interval=*/1000);
  std::vector<std::uint8_t> state;
  const core::FlightStateReport rep =
      core::flight_state_at(file, rec.ecg_mv.size() / 2, state);
  EXPECT_GE(rep.samples, rec.ecg_mv.size() / 2);
  ASSERT_TRUE(core::probe_checkpoint(state).valid);
  StreamingBeatPipeline p(rec.fs);
  p.restore(state);
  EXPECT_EQ(p.samples_consumed(), rep.samples);
}

// ---------------------------------------------------------------------------
// Mid-stream start and mid-stream stop
// ---------------------------------------------------------------------------

TEST(FlightRecorderLifecycleTest, MidStreamStartIsSelfContained) {
  const synth::Recording rec = severe_recording(9);
  const std::size_t n = rec.ecg_mv.size();
  const std::size_t attach_at = n / 2;
  FixedStreamingBeatPipeline p(rec.fs);
  std::vector<BeatRecord> emitted;
  for (std::size_t i = 0; i < attach_at; i += 64) {
    const std::size_t len = std::min<std::size_t>(64, attach_at - i);
    p.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                dsp::SignalView(rec.z_ohm.data() + i, len), emitted);
  }
  // Attach mid-session: the initial checkpoint captures everything the
  // engine has already consumed, so the file replays without the prefix.
  BufferRecorderSink sink;
  FlightRecorder recorder(sink, p);
  for (std::size_t i = attach_at; i < n; i += 64) {
    const std::size_t len = std::min<std::size_t>(64, n - i);
    emitted.clear();
    p.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                dsp::SignalView(rec.z_ohm.data() + i, len), emitted);
    recorder.on_chunk(p, dsp::SignalView(rec.ecg_mv.data() + i, len),
                      dsp::SignalView(rec.z_ohm.data() + i, len), emitted);
  }
  emitted.clear();
  p.finish_into(emitted);
  recorder.on_finish(p, emitted);
  const std::vector<std::uint8_t> file = sink.take();
  const core::FlightProbe probe = core::probe_flight(file);
  ASSERT_TRUE(probe.valid);
  EXPECT_EQ(probe.header.start_samples, attach_at);
  const FlightVerifyReport rep = core::flight_verify(file);
  EXPECT_TRUE(rep.ok) << "first divergent chunk " << rep.first_divergent_chunk;
  EXPECT_TRUE(rep.finished);
}

TEST(FlightRecorderLifecycleTest, MidStreamStopVerifiesWithoutTail) {
  const synth::Recording rec = severe_recording(9);
  const std::vector<std::uint8_t> file = record_run<StreamingBeatPipeline>(
      rec, 64, /*interval=*/1000, nullptr, nullptr,
      /*stop_at_sample=*/rec.ecg_mv.size() / 2);
  const FlightVerifyReport rep = core::flight_verify(file);
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.has_end);
  EXPECT_FALSE(rep.finished);
  EXPECT_TRUE(core::flight_seek(file, rec.ecg_mv.size() / 4).ok);
}

// ---------------------------------------------------------------------------
// Fleet integration: start_recording / stop_recording on a live session
// ---------------------------------------------------------------------------

struct FleetOutputs {
  std::vector<unsigned char> beats;
  QualitySummary summary{};
};

/// Runs `sessions` copies of the workload through a fleet; optionally
/// records session 0 (into `record_file`), optionally migrating it
/// mid-recording.
std::vector<FleetOutputs> run_fleet(const std::vector<synth::Recording>& workload,
                                    std::size_t sessions, std::size_t workers,
                                    std::vector<std::uint8_t>* record_file,
                                    bool migrate_mid_recording) {
  FleetConfig cfg;
  cfg.workers = workers;
  cfg.max_chunk = 64;
  SessionManager fleet(workload[0].fs, cfg);
  std::vector<core::SessionHandle> handles;
  handles.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) handles.push_back(fleet.open());
  fleet.start();

  std::vector<FleetBeat> sink;
  sink.reserve(4096);
  BufferRecorderSink* buffer = nullptr;
  if (record_file != nullptr) {
    auto owned = std::make_unique<BufferRecorderSink>();
    buffer = owned.get();
    FlightRecorderConfig rcfg;
    rcfg.checkpoint_interval = 1000;
    handles[0].record_start(std::move(owned), sink, rcfg);
  }
  const std::size_t n = workload[0].ecg_mv.size();
  std::size_t chunk_index = 0;
  for (std::size_t i = 0; i < n; i += 64, ++chunk_index) {
    if (migrate_mid_recording && chunk_index == 20)
      handles[0].migrate_to(1, sink);
    const std::size_t len = std::min<std::size_t>(64, n - i);
    for (std::size_t s = 0; s < sessions; ++s) {
      const synth::Recording& rec = workload[s % workload.size()];
      handles[s].push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                      dsp::SignalView(rec.z_ohm.data() + i, len), sink);
    }
  }
  fleet.run_to_completion(sink);  // finish_session finalizes the recording

  std::vector<FleetOutputs> out(sessions);
  for (const FleetBeat& fb : sink) {
    if (fb.end_of_session) {
      out[fb.session].summary = fb.session_summary;
      continue;
    }
    serialize_beat(fb.beat, out[fb.session].beats);
  }
  if (record_file != nullptr) *record_file = buffer->take();
  return out;
}

TEST(FleetRecordingTest, RecordingDoesNotPerturbAnySessionAndReplays) {
  synth::RecordingConfig cfg;
  cfg.duration_s = 15.0;
  cfg.session_seed = 23;
  const auto workload = synth::make_fleet_workload(2, cfg);

  const auto plain = run_fleet(workload, 2, 2, nullptr, false);
  std::vector<std::uint8_t> file;
  const auto recorded = run_fleet(workload, 2, 2, &file, false);

  ASSERT_EQ(plain.size(), recorded.size());
  for (std::size_t s = 0; s < plain.size(); ++s) {
    EXPECT_EQ(plain[s].beats, recorded[s].beats) << "session " << s;
    EXPECT_TRUE(summaries_identical(plain[s].summary, recorded[s].summary))
        << "session " << s;
  }
  const FlightVerifyReport rep = core::flight_verify(file);
  EXPECT_TRUE(rep.ok) << "first divergent chunk " << rep.first_divergent_chunk;
  EXPECT_TRUE(rep.finished);  // finish_session wrote the FINI marker
  EXPECT_GT(rep.beats_recorded, 0u);
}

TEST(FleetRecordingTest, RecorderRidesTheSessionAcrossMigration) {
  synth::RecordingConfig cfg;
  cfg.duration_s = 15.0;
  cfg.session_seed = 29;
  const auto workload = synth::make_fleet_workload(2, cfg);

  const auto plain = run_fleet(workload, 2, 2, nullptr, false);
  std::vector<std::uint8_t> file;
  const auto recorded = run_fleet(workload, 2, 2, &file, true);

  EXPECT_EQ(plain[0].beats, recorded[0].beats);
  EXPECT_TRUE(summaries_identical(plain[0].summary, recorded[0].summary));
  const FlightVerifyReport rep = core::flight_verify(file);
  EXPECT_TRUE(rep.ok) << "first divergent chunk " << rep.first_divergent_chunk;
  EXPECT_TRUE(rep.finished);
}

TEST(FleetRecordingTest, StopRecordingLeavesAVerifiableFileAndSessionRuns) {
  synth::RecordingConfig cfg;
  cfg.duration_s = 10.0;
  cfg.session_seed = 31;
  const auto workload = synth::make_fleet_workload(1, cfg);

  FleetConfig fcfg;
  fcfg.workers = 1;
  fcfg.max_chunk = 64;
  SessionManager fleet(workload[0].fs, fcfg);
  core::SessionHandle h = fleet.open();
  fleet.start();
  std::vector<FleetBeat> sink;

  FlightRecorderConfig rcfg;
  rcfg.checkpoint_interval = 500;
  h.record_start(std::make_unique<BufferRecorderSink>(), sink, rcfg);
  EXPECT_TRUE(h.recording());

  const synth::Recording& rec = workload[0];
  const std::size_t n = rec.ecg_mv.size();
  std::vector<std::uint8_t> file;
  for (std::size_t i = 0; i < n; i += 64) {
    const std::size_t len = std::min<std::size_t>(64, n - i);
    h.push(dsp::SignalView(rec.ecg_mv.data() + i, len),
           dsp::SignalView(rec.z_ohm.data() + i, len), sink);
    if (file.empty() && i >= n / 2) {
      // stop_recording hands the sink back to the pilot.
      std::unique_ptr<core::RecorderSink> returned = h.record_stop(sink);
      file = static_cast<BufferRecorderSink&>(*returned).take();
      EXPECT_FALSE(h.recording());
    }
  }
  fleet.run_to_completion(sink);

  const FlightVerifyReport rep = core::flight_verify(file);
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.has_end);
  EXPECT_FALSE(rep.finished);  // stopped mid-stream, not finished
}

// ---------------------------------------------------------------------------
// Hostility: flipped bytes, truncations, trailing sections — refused, not UB
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> small_flight_file() {
  static const std::vector<std::uint8_t> file = [] {
    const synth::Recording rec = severe_recording(3, 10.0);
    return record_run<StreamingBeatPipeline>(rec, 64, /*interval=*/1000);
  }();
  return file;
}

TEST(FlightRejectionTest, EveryFlippedByteIsRefusedNotUB) {
  const std::vector<std::uint8_t> file = small_flight_file();
  // ~150 flip positions spread across the file hit every field class:
  // container magic, RHDR, chunk payloads, nested checkpoint blobs,
  // beat bytes, section tags, lengths and CRCs.
  const std::size_t stride = std::max<std::size_t>(1, file.size() / 149);
  for (std::size_t pos = 0; pos < file.size(); pos += stride) {
    std::vector<std::uint8_t> bad = file;
    bad[pos] ^= 0xA5u;
    EXPECT_THROW((void)core::flight_verify(bad), CheckpointError)
        << "flipped byte " << pos;
    EXPECT_FALSE(core::probe_flight(bad).valid) << "flipped byte " << pos;
  }
}

TEST(FlightRejectionTest, EveryTruncationIsRefusedOrEndsAtAFrameBoundary) {
  const std::vector<std::uint8_t> file = small_flight_file();
  std::vector<std::size_t> lengths = {0, 1, 3, 4, 7, 8, 11, 12, 15, 16};
  const std::size_t stride = std::max<std::size_t>(1, file.size() / 131);
  for (std::size_t len = 17; len < file.size(); len += stride)
    lengths.push_back(len);
  std::size_t refused = 0;
  for (const std::size_t len : lengths) {
    const std::span<const std::uint8_t> head(file.data(), len);
    // A cut exactly between sections is the legal power-loss shape: the
    // reader replays what survived and reports has_end == false. Any
    // other cut must be refused with CheckpointError. Either way: no UB.
    try {
      const FlightVerifyReport rep = core::flight_verify(head);
      EXPECT_FALSE(rep.has_end) << "truncated to " << len;
    } catch (const CheckpointError&) {
      ++refused;
      EXPECT_FALSE(core::probe_flight(head).valid) << "truncated to " << len;
    }
  }
  // The overwhelming majority of cuts land mid-section and are refused.
  EXPECT_GT(refused, lengths.size() / 2);
}

TEST(FlightRejectionTest, SectionsAfterTheEndMarkerAreRefused) {
  std::vector<std::uint8_t> bad = small_flight_file();
  const std::vector<std::uint8_t> extra(bad.begin(), bad.begin() + 12);
  bad.insert(bad.end(), extra.begin(), extra.end());
  EXPECT_THROW((void)core::flight_verify(bad), CheckpointError);
  EXPECT_FALSE(core::probe_flight(bad).valid);
}

TEST(FlightRejectionTest, APipelineCheckpointIsNotAFlightRecord) {
  StreamingBeatPipeline p(kFs);
  const std::vector<std::uint8_t> blob = p.checkpoint();
  EXPECT_THROW((void)core::flight_verify(blob), CheckpointError);
  EXPECT_FALSE(core::probe_flight(blob).valid);
  // And the converse: an .icgr file is not restorable as a checkpoint.
  const std::vector<std::uint8_t> file = small_flight_file();
  StreamingBeatPipeline q(kFs);
  EXPECT_THROW(q.restore(file), CheckpointError);
}

TEST(FlightRejectionTest, RecorderRefusesTapsAfterClose) {
  StreamingBeatPipeline p(kFs);
  BufferRecorderSink sink;
  FlightRecorder recorder(sink, p);
  std::vector<BeatRecord> none;
  p.finish_into(none);
  recorder.on_finish(p, none);
  EXPECT_TRUE(recorder.closed());
  EXPECT_THROW(recorder.on_chunk(p, dsp::SignalView(), dsp::SignalView(), none),
               CheckpointError);
  EXPECT_THROW(recorder.on_stop(p), CheckpointError);
}

}  // namespace
