// The SIMD batch engine's identity contract: every lane of a
// SessionBatch<W> emits BeatRecords byte-identical to a scalar
// StreamingBeatPipeline fed the same per-lane stream — at any chunking,
// under divergent per-lane corruption (dropout gaps opening and closing
// at different times per lane), and across the checkpoint boundary in
// both directions (pack scalar blobs -> batched engine, unpack -> scalar
// engines resume). "Byte-identical" is meant literally: EXPECT_EQ on
// every double, not a tolerance.
#include "core/batch.h"
#include "core/pipeline.h"
#include "synth/recording.h"
#include "synth/scenario.h"
#include "synth/subject.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <vector>

namespace icgkit::core {
namespace {

constexpr double kFs = 250.0;
constexpr std::size_t kChunkSizes[] = {1, 7, 64, 1024};

synth::Recording make_recording(std::size_t subject_idx, double duration_s) {
  const auto roster = synth::paper_roster();
  synth::RecordingConfig cfg;
  cfg.duration_s = duration_s;
  const synth::SourceActivity src =
      generate_source(roster[subject_idx % roster.size()], cfg);
  return measure_device(roster[subject_idx % roster.size()], src, 50e3,
                        synth::Position::ArmsOutstretched);
}

std::vector<BeatRecord> run_scalar(const synth::Recording& rec,
                                   const PipelineConfig& cfg = {}) {
  StreamingBeatPipeline engine(kFs, cfg);
  std::vector<BeatRecord> beats = engine.push(rec.ecg_mv, rec.z_ohm);
  const auto tail = engine.finish();
  beats.insert(beats.end(), tail.begin(), tail.end());
  return beats;
}

void expect_identical_beat(const BeatRecord& a, const BeatRecord& b, std::size_t lane,
                           std::size_t i) {
  const auto tag = [&] { return ::testing::Message() << "lane " << lane << " beat " << i; };
  EXPECT_EQ(a.points.r, b.points.r) << tag();
  EXPECT_EQ(a.points.b, b.points.b) << tag();
  EXPECT_EQ(a.points.b0, b.points.b0) << tag();
  EXPECT_EQ(a.points.c, b.points.c) << tag();
  EXPECT_EQ(a.points.x, b.points.x) << tag();
  EXPECT_EQ(a.points.valid, b.points.valid) << tag();
  EXPECT_EQ(a.points.b_method, b.points.b_method) << tag();
  EXPECT_EQ(a.points.c_amplitude, b.points.c_amplitude) << tag();
  EXPECT_EQ(a.flaws, b.flaws) << tag();
  EXPECT_EQ(a.rr_s, b.rr_s) << tag();
  EXPECT_EQ(a.signal.snr_db, b.signal.snr_db) << tag();
  EXPECT_EQ(a.signal.flatline_fraction, b.signal.flatline_fraction) << tag();
  EXPECT_EQ(a.signal.saturation_fraction, b.signal.saturation_fraction) << tag();
  EXPECT_EQ(a.hemo.pep_s, b.hemo.pep_s) << tag();
  EXPECT_EQ(a.hemo.lvet_s, b.hemo.lvet_s) << tag();
  EXPECT_EQ(a.hemo.hr_bpm, b.hemo.hr_bpm) << tag();
  EXPECT_EQ(a.hemo.dzdt_max, b.hemo.dzdt_max) << tag();
  EXPECT_EQ(a.hemo.sv_kubicek_ml, b.hemo.sv_kubicek_ml) << tag();
  EXPECT_EQ(a.hemo.sv_sramek_ml, b.hemo.sv_sramek_ml) << tag();
  EXPECT_EQ(a.hemo.co_kubicek_l_min, b.hemo.co_kubicek_l_min) << tag();
  EXPECT_EQ(a.hemo.tfc_per_kohm, b.hemo.tfc_per_kohm) << tag();
  ASSERT_EQ(a.ensemble_points.has_value(), b.ensemble_points.has_value()) << tag();
  if (a.ensemble_points.has_value()) {
    EXPECT_EQ(a.ensemble_points->r, b.ensemble_points->r) << tag();
    EXPECT_EQ(a.ensemble_points->c, b.ensemble_points->c) << tag();
    EXPECT_EQ(a.ensemble_points->b, b.ensemble_points->b) << tag();
    EXPECT_EQ(a.ensemble_points->x, b.ensemble_points->x) << tag();
  }
}

void expect_identical_summary(const QualitySummary& a, const QualitySummary& b,
                              std::size_t lane) {
  const auto tag = [&] { return ::testing::Message() << "lane " << lane; };
  EXPECT_EQ(a.beats, b.beats) << tag();
  EXPECT_EQ(a.usable, b.usable) << tag();
  for (std::size_t f = 0; f < std::size(a.flaw_counts); ++f)
    EXPECT_EQ(a.flaw_counts[f], b.flaw_counts[f]) << tag() << " flaw " << f;
  EXPECT_EQ(a.ecg_dropouts, b.ecg_dropouts) << tag();
  EXPECT_EQ(a.z_dropouts, b.z_dropouts) << tag();
  EXPECT_EQ(a.detector_resets, b.detector_resets) << tag();
  EXPECT_EQ(a.ensemble_folds_skipped, b.ensemble_folds_skipped) << tag();
  EXPECT_EQ(a.snr_beats, b.snr_beats) << tag();
  EXPECT_EQ(a.sum_snr_db, b.sum_snr_db) << tag();
  EXPECT_EQ(a.min_snr_db, b.min_snr_db) << tag();
}

/// Fresh scalar checkpoints for W new sessions (the fleet packs groups
/// the same way: engines checkpointed before their first chunk).
std::vector<std::vector<std::uint8_t>> fresh_lane_blobs(std::size_t w,
                                                        const PipelineConfig& cfg = {}) {
  std::vector<std::vector<std::uint8_t>> blobs;
  for (std::size_t l = 0; l < w; ++l)
    blobs.push_back(StreamingBeatPipeline(kFs, cfg).checkpoint());
  return blobs;
}

template <std::size_t W>
std::array<std::vector<BeatRecord>, W> run_batch(
    SessionBatch<W>& batch, const std::vector<synth::Recording>& recs,
    std::size_t chunk) {
  std::array<std::vector<BeatRecord>, W> beats;
  std::array<const double*, W> ecg{}, z{};
  const std::size_t n = recs[0].ecg_mv.size();
  for (std::size_t i = 0; i < n; i += chunk) {
    const std::size_t len = std::min(chunk, n - i);
    for (std::size_t l = 0; l < W; ++l) {
      ecg[l] = recs[l].ecg_mv.data() + i;
      z[l] = recs[l].z_ohm.data() + i;
    }
    batch.push(ecg.data(), z.data(), len, beats.data());
  }
  batch.finish(beats.data());
  return beats;
}

TEST(SessionBatchTest, LanesAreByteIdenticalToScalarAcrossChunkSizes) {
  constexpr std::size_t W = 4;
  std::vector<synth::Recording> recs;
  std::vector<std::vector<BeatRecord>> expected;
  for (std::size_t l = 0; l < W; ++l) {
    recs.push_back(make_recording(l, 25.0));
    expected.push_back(run_scalar(recs.back()));
    ASSERT_GT(expected.back().size(), 10u) << "lane " << l;
  }

  for (const std::size_t chunk : kChunkSizes) {
    SessionBatch<W> batch(kFs);
    batch.pack(fresh_lane_blobs(W));
    const auto got = run_batch(batch, recs, chunk);
    for (std::size_t l = 0; l < W; ++l) {
      ASSERT_EQ(got[l].size(), expected[l].size()) << "lane " << l << " chunk " << chunk;
      for (std::size_t i = 0; i < got[l].size(); ++i)
        expect_identical_beat(got[l][i], expected[l][i], l, i);
    }
  }
}

TEST(SessionBatchTest, WidthEightLanesMatchScalar) {
  constexpr std::size_t W = 8;
  std::vector<synth::Recording> recs;
  for (std::size_t l = 0; l < W; ++l) recs.push_back(make_recording(l, 20.0));

  SessionBatch<W> batch(kFs);
  batch.pack(fresh_lane_blobs(W));
  const auto got = run_batch(batch, recs, 64);
  for (std::size_t l = 0; l < W; ++l) {
    const auto expected = run_scalar(recs[l]);
    ASSERT_GT(expected.size(), 10u) << "lane " << l;
    ASSERT_EQ(got[l].size(), expected.size()) << "lane " << l;
    for (std::size_t i = 0; i < got[l].size(); ++i)
      expect_identical_beat(got[l][i], expected[i], l, i);
    expect_identical_summary(batch.lane_quality(l),
                             [&] {
                               StreamingBeatPipeline e(kFs);
                               std::vector<BeatRecord> sink = e.push(recs[l].ecg_mv, recs[l].z_ohm);
                               e.finish();
                               return e.quality_summary();
                             }(),
                             l);
  }
}

TEST(SessionBatchTest, DivergentDropoutGapsPerLaneStayIdentical) {
  // Severe-tier corruption with a different seed per lane: dropout gaps
  // (and the detector soft-resets they trigger) open and close at
  // different samples in every lane, so per-lane control flow diverges
  // hard while the shared filter front stays lockstep.
  constexpr std::size_t W = 4;
  std::vector<synth::Recording> recs;
  std::vector<std::vector<BeatRecord>> expected;
  bool any_dropout = false;
  for (std::size_t l = 0; l < W; ++l) {
    synth::Recording rec = make_recording(l, 30.0);
    apply_scenario(rec, synth::ScenarioSpec::severe(), /*seed=*/101 + l);
    recs.push_back(std::move(rec));
    expected.push_back(run_scalar(recs.back()));
  }

  SessionBatch<W> batch(kFs);
  batch.pack(fresh_lane_blobs(W));
  const auto got = run_batch(batch, recs, 64);
  for (std::size_t l = 0; l < W; ++l) {
    ASSERT_EQ(got[l].size(), expected[l].size()) << "lane " << l;
    for (std::size_t i = 0; i < got[l].size(); ++i)
      expect_identical_beat(got[l][i], expected[l][i], l, i);
    const QualitySummary& q = batch.lane_quality(l);
    if (q.ecg_dropouts + q.z_dropouts > 0) any_dropout = true;
  }
  EXPECT_TRUE(any_dropout) << "severe scenario produced no dropout gap; "
                              "the divergence this test exists for never happened";
}

TEST(SessionBatchTest, PackedCheckpointRestoresIntoScalarSessions) {
  // Mid-stream round trip: scalar sessions -> pack -> batched advance ->
  // unpack -> scalar sessions resume. Every lane must finish with the
  // beat stream and quality aggregate of an uninterrupted scalar run.
  constexpr std::size_t W = 4;
  PipelineConfig cfg;
  cfg.enable_ensemble = true;  // exercises the ENSB body per lane
  std::vector<synth::Recording> recs;
  std::vector<std::vector<BeatRecord>> expected;
  for (std::size_t l = 0; l < W; ++l) {
    recs.push_back(make_recording(l, 25.0));
    expected.push_back(run_scalar(recs.back(), cfg));
  }
  const std::size_t n = recs[0].ecg_mv.size();
  const std::size_t cut_a = n / 3;      // scalar until here
  const std::size_t cut_b = 2 * n / 3;  // batched until here, scalar after

  // Phase 1: independent scalar sessions.
  std::vector<std::unique_ptr<StreamingBeatPipeline>> engines;
  std::array<std::vector<BeatRecord>, W> beats;
  std::vector<std::vector<std::uint8_t>> blobs(W);
  for (std::size_t l = 0; l < W; ++l) {
    engines.push_back(std::make_unique<StreamingBeatPipeline>(kFs, cfg));
    engines[l]->push_into(dsp::SignalView(recs[l].ecg_mv.data(), cut_a),
                          dsp::SignalView(recs[l].z_ohm.data(), cut_a), beats[l]);
    engines[l]->checkpoint_into(blobs[l]);
  }

  // Phase 2: pack into a batch and advance in lockstep.
  SessionBatch<W> batch(kFs, cfg);
  batch.pack(blobs);
  EXPECT_EQ(batch.samples_consumed(), cut_a);
  std::array<const double*, W> ecg{}, z{};
  for (std::size_t i = cut_a; i < cut_b; i += 64) {
    const std::size_t len = std::min<std::size_t>(64, cut_b - i);
    for (std::size_t l = 0; l < W; ++l) {
      ecg[l] = recs[l].ecg_mv.data() + i;
      z[l] = recs[l].z_ohm.data() + i;
    }
    batch.push(ecg.data(), z.data(), len, beats.data());
  }

  // Phase 3: unpack back into fresh scalar sessions and run to the end.
  batch.unpack(blobs);
  for (std::size_t l = 0; l < W; ++l) {
    auto resumed = std::make_unique<StreamingBeatPipeline>(kFs, cfg);
    resumed->restore(blobs[l]);
    resumed->push_into(dsp::SignalView(recs[l].ecg_mv.data() + cut_b, n - cut_b),
                       dsp::SignalView(recs[l].z_ohm.data() + cut_b, n - cut_b),
                       beats[l]);
    resumed->finish_into(beats[l]);

    ASSERT_EQ(beats[l].size(), expected[l].size()) << "lane " << l;
    for (std::size_t i = 0; i < beats[l].size(); ++i)
      expect_identical_beat(beats[l][i], expected[l][i], l, i);

    StreamingBeatPipeline reference(kFs, cfg);
    std::vector<BeatRecord> sink;
    reference.push_into(recs[l].ecg_mv, recs[l].z_ohm, sink);
    reference.finish_into(sink);
    expect_identical_summary(resumed->quality_summary(), reference.quality_summary(), l);
  }
}

TEST(SessionBatchTest, PackRejectsMisalignedLanes) {
  constexpr std::size_t W = 4;
  const synth::Recording rec = make_recording(0, 10.0);
  std::vector<std::vector<std::uint8_t>> blobs;
  for (std::size_t l = 0; l < W; ++l) {
    StreamingBeatPipeline engine(kFs);
    // Lane 2 sits at a different stream position: packing it with the
    // others would corrupt every lane, so pack() must refuse.
    const std::size_t n = l == 2 ? 500 : 1000;
    engine.push(dsp::SignalView(rec.ecg_mv.data(), n),
                dsp::SignalView(rec.z_ohm.data(), n));
    blobs.push_back(engine.checkpoint());
  }
  SessionBatch<W> batch(kFs);
  EXPECT_THROW(batch.pack(blobs), CheckpointError);
}

TEST(SessionBatchTest, FactoryValidatesWidth) {
  EXPECT_TRUE(session_batch_width_supported(4));
  EXPECT_TRUE(session_batch_width_supported(8));
  EXPECT_FALSE(session_batch_width_supported(3));
  EXPECT_NE(make_session_batch(4, kFs), nullptr);
  EXPECT_EQ(make_session_batch(8, kFs)->width(), 8u);
  EXPECT_THROW(make_session_batch(0, kFs), std::invalid_argument);
  EXPECT_THROW(make_session_batch(16, kFs), std::invalid_argument);
}

} // namespace
} // namespace icgkit::core
