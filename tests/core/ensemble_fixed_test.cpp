#include "core/ensemble.h"
#include "dsp/fixed_point.h"

#include "dsp/butterworth.h"
#include "dsp/stats.h"
#include "synth/artifacts.h"
#include "synth/icg_synth.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace icgkit {
namespace {

constexpr double kFs = 250.0;

struct IcgScenario {
  synth::IcgSynthesis syn;
  std::vector<std::size_t> r_idx;
};

IcgScenario make_icg(std::size_t beats, double noise_sigma, std::uint64_t seed) {
  synth::Rng rng(seed);
  synth::IcgSynthConfig cfg;
  std::vector<double> r_times;
  IcgScenario sc;
  for (std::size_t i = 0; i < beats; ++i) {
    r_times.push_back(0.6 + 0.85 * static_cast<double>(i));
    sc.r_idx.push_back(static_cast<std::size_t>(r_times.back() * kFs));
  }
  sc.syn = synth::synthesize_icg(r_times, 0.6 + 0.85 * static_cast<double>(beats) + 1.0,
                                 kFs, cfg, rng);
  if (noise_sigma > 0.0) {
    const dsp::Signal noise = synth::white_noise(sc.syn.icg.size(), noise_sigma, rng);
    for (std::size_t i = 0; i < noise.size(); ++i) sc.syn.icg[i] += noise[i];
  }
  return sc;
}

TEST(EnsembleTest, AverageOfCleanBeatsMatchesSingleBeat) {
  const IcgScenario sc = make_icg(10, 0.0, 1);
  core::EnsembleAverager avg(kFs);
  for (const std::size_t r : sc.r_idx) avg.add_beat(sc.syn.icg, r);
  ASSERT_GT(avg.beats_in_window(), 5u);
  const dsp::Signal tmpl = avg.average();
  // The template's peak equals the beats' C amplitude (low jitter).
  const double peak = *std::max_element(tmpl.begin(), tmpl.end());
  EXPECT_NEAR(peak, sc.syn.beats[3].dzdt_max, 0.25);
}

TEST(EnsembleTest, NoiseSuppressionScalesWithBeats) {
  // Residual noise on the template should shrink roughly as 1/sqrt(N).
  const IcgScenario noisy = make_icg(16, 0.3, 2);
  const IcgScenario clean = make_icg(16, 0.0, 2);
  core::EnsembleAverager avg(kFs, {.window_beats = 16, .min_template_corr = 0.2});
  for (const std::size_t r : noisy.r_idx) avg.add_beat(noisy.syn.icg, r);
  ASSERT_GE(avg.beats_in_window(), 12u);
  core::EnsembleAverager ref(kFs, {.window_beats = 16, .min_template_corr = 0.2});
  for (const std::size_t r : clean.r_idx) ref.add_beat(clean.syn.icg, r);

  const dsp::Signal a = avg.average();
  const dsp::Signal b = ref.average();
  dsp::Signal resid(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) resid[i] = a[i] - b[i];
  // 0.3 noise with ~14+ beats -> residual RMS well under 0.12.
  EXPECT_LT(dsp::rms(resid), 0.12);
}

TEST(EnsembleTest, RejectsEctopicBeat) {
  const IcgScenario sc = make_icg(10, 0.02, 3);
  core::EnsembleAverager avg(kFs);
  for (std::size_t i = 0; i < 6; ++i) avg.add_beat(sc.syn.icg, sc.r_idx[i]);
  // An "ectopic": feed a segment centered far from any R (plain baseline).
  const bool accepted = avg.add_beat(sc.syn.icg, sc.r_idx[6] + 55);
  EXPECT_FALSE(accepted);
  EXPECT_GE(avg.beats_rejected(), 1u);
}

TEST(EnsembleTest, WindowSlides) {
  const IcgScenario sc = make_icg(12, 0.0, 4);
  core::EnsembleAverager avg(kFs, {.window_beats = 4});
  for (const std::size_t r : sc.r_idx) avg.add_beat(sc.syn.icg, r);
  EXPECT_EQ(avg.beats_in_window(), 4u);
}

TEST(EnsembleTest, DelineatesAverageUnderHeavyNoise) {
  // At noise levels where single-beat delineation is unreliable, the
  // ensemble template still delineates close to the truth.
  const IcgScenario sc = make_icg(16, 0.25, 5);
  core::EnsembleAverager avg(kFs, {.window_beats = 16, .min_template_corr = 0.3});
  for (const std::size_t r : sc.r_idx) avg.add_beat(sc.syn.icg, r);
  const core::IcgDelineator delineator(kFs);
  const auto d = avg.delineate_average(delineator);
  ASSERT_TRUE(d.has_value());
  const double pep = static_cast<double>(d->b - d->r) / kFs;
  const double lvet = static_cast<double>(d->x - d->b) / kFs;
  // Truth: pep ~ 0.095-0.105, lvet ~ 0.29-0.31 for the default config.
  EXPECT_NEAR(pep, 0.10, 0.025);
  EXPECT_NEAR(lvet, 0.30, 0.04);
}

TEST(EnsembleTest, BoundaryBeatsIgnored) {
  const IcgScenario sc = make_icg(4, 0.0, 6);
  core::EnsembleAverager avg(kFs);
  EXPECT_FALSE(avg.add_beat(sc.syn.icg, 3));                      // before pre-window
  EXPECT_FALSE(avg.add_beat(sc.syn.icg, sc.syn.icg.size() - 2));  // after end
  EXPECT_EQ(avg.beats_in_window(), 0u);
}

TEST(EnsembleTest, ResetClears) {
  const IcgScenario sc = make_icg(6, 0.0, 7);
  core::EnsembleAverager avg(kFs);
  avg.add_beat(sc.syn.icg, sc.r_idx[0]);
  avg.reset();
  EXPECT_EQ(avg.beats_in_window(), 0u);
  EXPECT_TRUE(avg.average().empty());
}

TEST(EnsembleTest, RejectsBadConfig) {
  EXPECT_THROW(core::EnsembleAverager(0.0), std::invalid_argument);
  EXPECT_THROW(core::EnsembleAverager(kFs, {.window_beats = 0}), std::invalid_argument);
}

TEST(FixedPointTest, MatchesDoubleOnPaperIcgFilter) {
  const dsp::SosFilter lp = dsp::butterworth_lowpass(4, 20.0, kFs);
  dsp::Signal x(2000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / kFs;
    x[i] = 0.5 * std::sin(2.0 * std::numbers::pi * 3.0 * t) +
           0.2 * std::sin(2.0 * std::numbers::pi * 30.0 * t);
  }
  // Q31 tracks the double path to ~1e-6 of full scale.
  EXPECT_LT(dsp::fixed_point_error(lp, x), 2e-6);
}

TEST(FixedPointTest, MatchesDoubleOnPanTompkinsBand) {
  const dsp::SosFilter bp = dsp::butterworth_bandpass(2, 5.0, 15.0, kFs);
  dsp::Signal x(1500);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.8 * std::sin(2.0 * std::numbers::pi * 10.0 * static_cast<double>(i) / kFs);
  EXPECT_LT(dsp::fixed_point_error(bp, x), 5e-6);
}

TEST(FixedPointTest, RejectsOutOfRangeCoefficients) {
  dsp::SosFilter f;
  f.sections.push_back(dsp::Biquad{3.0, 0.0, 0.0, 0.0, 0.0}); // b0 = 3 > Q2.30 max
  EXPECT_THROW(dsp::FixedSosFilter{f}, std::invalid_argument);
}

TEST(FixedPointTest, StableOverLongRuns) {
  // No limit cycles blowing up over a minute of signal.
  const dsp::SosFilter lp = dsp::butterworth_lowpass(4, 20.0, kFs);
  const dsp::FixedSosFilter fixed(lp);
  dsp::Signal x(15000);
  synth::Rng rng(8);
  for (auto& v : x) v = 0.3 * rng.normal();
  const dsp::Signal y = fixed.apply(x);
  for (const double v : y) EXPECT_LT(std::abs(v), 1.0);
}

TEST(FixedPointTest, QuantizationRoundTrip) {
  const dsp::Biquad s{0.51, -0.49, 0.25, -1.51, 0.76};
  const dsp::FixedBiquad q = dsp::FixedBiquad::from(s);
  EXPECT_NEAR(static_cast<double>(q.b0) / 1073741824.0, 0.51, 1e-9);
  EXPECT_NEAR(static_cast<double>(q.a1) / 1073741824.0, -1.51, 1e-9);
}

} // namespace
} // namespace icgkit
