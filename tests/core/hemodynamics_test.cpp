#include "core/hemodynamics.h"

#include "core/icg_filter.h"
#include "core/quality.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icgkit::core {
namespace {

constexpr double kFs = 250.0;

BeatDelineation sample_beat() {
  BeatDelineation d;
  d.r = 1000;
  d.b = 1000 + 25;  // PEP = 100 ms
  d.c = 1000 + 55;
  d.x = 1000 + 100; // LVET = 300 ms
  d.c_amplitude = 1.8;
  d.valid = true;
  return d;
}

TEST(HemodynamicsTest, SystolicIntervals) {
  const BeatHemodynamics h = compute_beat_hemodynamics(sample_beat(), 0.8, 25.0, kFs);
  EXPECT_NEAR(h.pep_s, 0.100, 1e-9);
  EXPECT_NEAR(h.lvet_s, 0.300, 1e-9);
  EXPECT_NEAR(h.hr_bpm, 75.0, 1e-9);
  EXPECT_NEAR(h.dzdt_max, 1.8, 1e-12);
}

TEST(HemodynamicsTest, KubicekFormula) {
  BodyParameters body;
  body.blood_resistivity_ohm_cm = 135.0;
  body.electrode_distance_cm = 30.0;
  const BeatHemodynamics h = compute_beat_hemodynamics(sample_beat(), 0.8, 25.0, kFs, body);
  // SV = 135 * (30/25)^2 * 0.3 * 1.8 = 104.976 ml
  EXPECT_NEAR(h.sv_kubicek_ml, 135.0 * 1.44 * 0.3 * 1.8, 1e-9);
  EXPECT_NEAR(h.co_kubicek_l_min, h.sv_kubicek_ml * 75.0 / 1000.0, 1e-9);
}

TEST(HemodynamicsTest, SramekFormula) {
  BodyParameters body;
  body.height_cm = 178.0;
  const BeatHemodynamics h = compute_beat_hemodynamics(sample_beat(), 0.8, 25.0, kFs, body);
  const double vept = std::pow(0.17 * 178.0, 3.0) / 4.25;
  EXPECT_NEAR(h.sv_sramek_ml, vept * (1.8 / 25.0) * 0.3, 1e-9);
}

TEST(HemodynamicsTest, StrokeVolumePhysiological) {
  // Both estimators should land in the adult range (40-150 ml) for
  // typical inputs.
  const BeatHemodynamics h = compute_beat_hemodynamics(sample_beat(), 0.8, 25.0, kFs);
  EXPECT_GT(h.sv_kubicek_ml, 40.0);
  EXPECT_LT(h.sv_kubicek_ml, 150.0);
  EXPECT_GT(h.sv_sramek_ml, 40.0);
  EXPECT_LT(h.sv_sramek_ml, 150.0);
}

TEST(HemodynamicsTest, TfcInverseOfZ0) {
  const BeatHemodynamics h = compute_beat_hemodynamics(sample_beat(), 0.8, 25.0, kFs);
  EXPECT_NEAR(h.tfc_per_kohm, 40.0, 1e-9);
  const BeatHemodynamics wet = compute_beat_hemodynamics(sample_beat(), 0.8, 20.0, kFs);
  EXPECT_GT(wet.tfc_per_kohm, h.tfc_per_kohm); // more fluid -> lower Z0 -> higher TFC
}

TEST(HemodynamicsTest, InvalidBeatYieldsZeros) {
  BeatDelineation d = sample_beat();
  d.valid = false;
  const BeatHemodynamics h = compute_beat_hemodynamics(d, 0.8, 25.0, kFs);
  EXPECT_DOUBLE_EQ(h.sv_kubicek_ml, 0.0);
  EXPECT_DOUBLE_EQ(h.pep_s, 0.0);
}

TEST(HemodynamicsTest, BadInputsYieldZeros) {
  EXPECT_DOUBLE_EQ(compute_beat_hemodynamics(sample_beat(), -1.0, 25.0, kFs).sv_kubicek_ml,
                   0.0);
  EXPECT_DOUBLE_EQ(compute_beat_hemodynamics(sample_beat(), 0.8, 0.0, kFs).sv_kubicek_ml,
                   0.0);
  EXPECT_THROW(compute_beat_hemodynamics(sample_beat(), 0.8, 25.0, 0.0),
               std::invalid_argument);
}

std::vector<BeatHemodynamics> uniform_beats(std::size_t n) {
  std::vector<BeatHemodynamics> v;
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(compute_beat_hemodynamics(sample_beat(), 0.8, 25.0, kFs));
  return v;
}

TEST(HemodynamicsSummaryTest, AveragesUniformBeats) {
  const HemodynamicsSummary s = summarize_hemodynamics(uniform_beats(10));
  EXPECT_EQ(s.beats_used, 10u);
  EXPECT_EQ(s.beats_rejected, 0u);
  EXPECT_NEAR(s.pep_s, 0.100, 1e-9);
  EXPECT_NEAR(s.lvet_s, 0.300, 1e-9);
  EXPECT_NEAR(s.hr_bpm, 75.0, 1e-9);
}

TEST(HemodynamicsSummaryTest, RejectsOutliers) {
  auto beats = uniform_beats(12);
  beats[5].pep_s = 0.190;  // implausible jump
  beats[8].lvet_s = 0.450;
  const HemodynamicsSummary s = summarize_hemodynamics(beats);
  EXPECT_EQ(s.beats_rejected, 2u);
  EXPECT_NEAR(s.pep_s, 0.100, 1e-9);
  EXPECT_NEAR(s.lvet_s, 0.300, 1e-9);
}

TEST(HemodynamicsSummaryTest, EmptyInputSafe) {
  const HemodynamicsSummary s = summarize_hemodynamics({});
  EXPECT_EQ(s.beats_used, 0u);
  EXPECT_DOUBLE_EQ(s.pep_s, 0.0);
}

TEST(QualityTest, AcceptsGoodBeat) {
  EXPECT_EQ(assess_beat(sample_beat(), 0.8, kFs), BeatFlaw::None);
}

TEST(QualityTest, FlagsInvalidDelineation) {
  BeatDelineation d = sample_beat();
  d.valid = false;
  EXPECT_EQ(assess_beat(d, 0.8, kFs), BeatFlaw::InvalidDelineation);
}

TEST(QualityTest, FlagsPepRange) {
  BeatDelineation d = sample_beat();
  d.b = d.r + 2; // 8 ms PEP
  const BeatFlaw f = assess_beat(d, 0.8, kFs);
  EXPECT_TRUE(has_flaw(f, BeatFlaw::PepOutOfRange));
}

TEST(QualityTest, FlagsLvetRange) {
  BeatDelineation d = sample_beat();
  d.x = d.b + 20; // 80 ms LVET
  EXPECT_TRUE(has_flaw(assess_beat(d, 0.8, kFs), BeatFlaw::LvetOutOfRange));
}

TEST(QualityTest, FlagsAmplitude) {
  BeatDelineation d = sample_beat();
  d.c_amplitude = 50.0;
  EXPECT_TRUE(has_flaw(assess_beat(d, 0.8, kFs), BeatFlaw::AmplitudeOutOfRange));
}

TEST(QualityTest, FlagsRr) {
  EXPECT_TRUE(has_flaw(assess_beat(sample_beat(), 3.0, kFs), BeatFlaw::RrOutOfRange));
}

TEST(QualityTest, MultipleFlawsCombine) {
  BeatDelineation d = sample_beat();
  d.c_amplitude = 50.0;
  const BeatFlaw f = assess_beat(d, 3.0, kFs);
  EXPECT_TRUE(has_flaw(f, BeatFlaw::AmplitudeOutOfRange));
  EXPECT_TRUE(has_flaw(f, BeatFlaw::RrOutOfRange));
  EXPECT_EQ(describe_flaws(f), "amplitude-range|rr-range");
}

TEST(QualityTest, DescribeOk) {
  EXPECT_EQ(describe_flaws(BeatFlaw::None), "ok");
}

TEST(IcgFilterTest, IcgFromImpedanceSignConvention) {
  // Z falling (ejection) must give positive ICG.
  dsp::Signal z(100);
  for (std::size_t i = 0; i < z.size(); ++i) z[i] = 25.0 - 0.01 * static_cast<double>(i);
  const dsp::Signal icg = icg_from_impedance(z, kFs);
  for (std::size_t i = 1; i + 1 < icg.size(); ++i) EXPECT_NEAR(icg[i], 0.01 * kFs, 1e-9);
}

TEST(IcgFilterTest, TwentyHzCutoffApplied) {
  const IcgFilter f(kFs);
  // A 40 Hz tone must be strongly attenuated, a 5 Hz tone preserved.
  dsp::Signal lo(2000), hi(2000);
  for (std::size_t i = 0; i < lo.size(); ++i) {
    const double t = static_cast<double>(i) / kFs;
    lo[i] = std::sin(2.0 * std::numbers::pi * 5.0 * t);
    hi[i] = std::sin(2.0 * std::numbers::pi * 40.0 * t);
  }
  const dsp::Signal lo_f = f.apply(lo);
  const dsp::Signal hi_f = f.apply(hi);
  double lo_rms = 0.0, hi_rms = 0.0;
  for (std::size_t i = 300; i + 300 < lo.size(); ++i) {
    lo_rms += lo_f[i] * lo_f[i];
    hi_rms += hi_f[i] * hi_f[i];
  }
  EXPECT_GT(std::sqrt(lo_rms), 20.0 * std::sqrt(hi_rms));
}

TEST(IcgFilterTest, RejectsBadFs) {
  EXPECT_THROW(IcgFilter(0.0), std::invalid_argument);
}

} // namespace
} // namespace icgkit::core
