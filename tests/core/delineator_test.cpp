#include "core/delineator.h"

#include "core/icg_filter.h"
#include "synth/artifacts.h"
#include "synth/icg_synth.h"

#include "dsp/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icgkit::core {
namespace {

constexpr double kFs = 250.0;

struct Scenario {
  synth::IcgSynthesis synthesis;
  std::vector<std::size_t> r_samples;
};

Scenario make_scenario(std::size_t beats, double rr_s, const synth::IcgSynthConfig& cfg,
                       std::uint64_t seed, double noise_sigma = 0.0) {
  synth::Rng rng(seed);
  std::vector<double> r_times;
  for (std::size_t i = 0; i < beats; ++i) r_times.push_back(0.6 + rr_s * static_cast<double>(i));
  const double duration = 0.6 + rr_s * static_cast<double>(beats) + 1.0;
  Scenario sc;
  sc.synthesis = synth::synthesize_icg(r_times, duration, kFs, cfg, rng);
  if (noise_sigma > 0.0) {
    const dsp::Signal noise = synth::white_noise(sc.synthesis.icg.size(), noise_sigma, rng);
    for (std::size_t i = 0; i < noise.size(); ++i) sc.synthesis.icg[i] += noise[i];
  }
  for (const double t : r_times) sc.r_samples.push_back(static_cast<std::size_t>(t * kFs));
  return sc;
}

// Runs the delineator over all complete beats; returns per-point absolute
// errors in seconds.
struct Errors {
  dsp::Signal b, c, x;
  std::size_t invalid = 0;
};

Errors run_delineation(const Scenario& sc, const DelineationConfig& cfg = {},
                       bool prefilter = false) {
  const IcgDelineator delineator(kFs, cfg);
  dsp::Signal icg = sc.synthesis.icg;
  if (prefilter) {
    const IcgFilter f(kFs);
    icg = f.apply(icg);
  }
  Errors e;
  for (std::size_t i = 0; i < sc.synthesis.beats.size(); ++i) {
    const auto& truth = sc.synthesis.beats[i];
    const std::size_t r = sc.r_samples[i];
    const std::size_t r_next = (i + 1 < sc.r_samples.size())
                                   ? sc.r_samples[i + 1]
                                   : std::min(icg.size(), r + static_cast<std::size_t>(kFs));
    const BeatDelineation d = delineator.delineate(icg, r, r_next);
    if (!d.valid) {
      ++e.invalid;
      continue;
    }
    e.b.push_back(std::abs(static_cast<double>(d.b) / kFs - truth.b_time_s));
    e.c.push_back(std::abs(static_cast<double>(d.c) / kFs - truth.c_time_s));
    e.x.push_back(std::abs(static_cast<double>(d.x) / kFs - truth.x_time_s));
  }
  return e;
}

TEST(DelineatorTest, ExactCOnCleanBeats) {
  const Scenario sc = make_scenario(10, 0.85, {}, 1);
  const Errors e = run_delineation(sc);
  EXPECT_EQ(e.invalid, 0u);
  ASSERT_FALSE(e.c.empty());
  // C is the waveform max; detection should be within 2 samples.
  EXPECT_LT(dsp::percentile(e.c, 95.0), 2.5 / kFs);
}

TEST(DelineatorTest, BWithinToleranceOnCleanBeats) {
  const Scenario sc = make_scenario(10, 0.85, {}, 2);
  const Errors e = run_delineation(sc);
  ASSERT_FALSE(e.b.empty());
  // B tolerance: +-12 ms (3 samples at 250 Hz) against the clean-signal truth.
  EXPECT_LT(dsp::percentile(e.b, 95.0), 0.012);
}

TEST(DelineatorTest, XWithinToleranceOnCleanBeats) {
  const Scenario sc = make_scenario(10, 0.85, {}, 3);
  const Errors e = run_delineation(sc);
  ASSERT_FALSE(e.x.empty());
  EXPECT_LT(dsp::percentile(e.x, 95.0), 0.020);
}

TEST(DelineatorTest, CAmplitudeMatchesTruth) {
  synth::IcgSynthConfig cfg;
  cfg.amp_jitter_frac = 0.0;
  cfg.dzdt_max = 2.0;
  const Scenario sc = make_scenario(6, 0.9, cfg, 4);
  const IcgDelineator delineator(kFs);
  for (std::size_t i = 0; i + 1 < sc.r_samples.size(); ++i) {
    const BeatDelineation d =
        delineator.delineate(sc.synthesis.icg, sc.r_samples[i], sc.r_samples[i + 1]);
    ASSERT_TRUE(d.valid);
    // The delineator measures C relative to the detrended diastolic
    // baseline, while the synthesis truth includes the small negative
    // baseline-compensation level -- allow that offset.
    EXPECT_NEAR(d.c_amplitude, sc.synthesis.beats[i].dzdt_max, 0.12);
  }
}

TEST(DelineatorTest, RobustToNoiseWithPrefilter) {
  // With the paper's 20 Hz zero-phase prefilter, moderate broadband noise
  // must not break delineation.
  const Scenario sc = make_scenario(20, 0.85, {}, 5, /*noise_sigma=*/0.08);
  const Errors e = run_delineation(sc, {}, /*prefilter=*/true);
  EXPECT_LE(e.invalid, 1u);
  ASSERT_FALSE(e.b.empty());
  EXPECT_LT(dsp::median(e.b), 0.016);
  EXPECT_LT(dsp::median(e.c), 0.008);
  EXPECT_LT(dsp::median(e.x), 0.024);
}

TEST(DelineatorTest, PepLvetRangesPhysiological) {
  synth::IcgSynthConfig cfg;
  cfg.pep_s = 0.10;
  cfg.lvet_s = 0.30;
  const Scenario sc = make_scenario(12, 0.8, cfg, 6);
  const IcgDelineator delineator(kFs);
  for (std::size_t i = 0; i + 1 < sc.r_samples.size(); ++i) {
    const BeatDelineation d =
        delineator.delineate(sc.synthesis.icg, sc.r_samples[i], sc.r_samples[i + 1]);
    ASSERT_TRUE(d.valid);
    const double pep = static_cast<double>(d.b - d.r) / kFs;
    const double lvet = static_cast<double>(d.x - d.b) / kFs;
    EXPECT_GT(pep, 0.05);
    EXPECT_LT(pep, 0.16);
    EXPECT_GT(lvet, 0.24);
    EXPECT_LT(lvet, 0.40);
  }
}

TEST(DelineatorTest, TracksPepChanges) {
  // Shifting the configured PEP by 30 ms must shift detected B by ~30 ms.
  synth::IcgSynthConfig short_pep, long_pep;
  short_pep.pep_s = 0.085;
  short_pep.pep_jitter_s = 0.0;
  long_pep.pep_s = 0.115;
  long_pep.pep_jitter_s = 0.0;
  const Scenario a = make_scenario(8, 0.9, short_pep, 7);
  const Scenario b = make_scenario(8, 0.9, long_pep, 7);
  const IcgDelineator delineator(kFs);
  dsp::Signal peps_a, peps_b;
  for (std::size_t i = 0; i + 1 < a.r_samples.size(); ++i) {
    const auto da = delineator.delineate(a.synthesis.icg, a.r_samples[i], a.r_samples[i + 1]);
    const auto db = delineator.delineate(b.synthesis.icg, b.r_samples[i], b.r_samples[i + 1]);
    if (da.valid) peps_a.push_back(static_cast<double>(da.b - da.r) / kFs);
    if (db.valid) peps_b.push_back(static_cast<double>(db.b - db.r) / kFs);
  }
  EXPECT_NEAR(dsp::mean(peps_b) - dsp::mean(peps_a), 0.030, 0.012);
}

TEST(DelineatorTest, TracksLvetChanges) {
  synth::IcgSynthConfig short_lvet, long_lvet;
  short_lvet.lvet_s = 0.27;
  short_lvet.lvet_jitter_s = 0.0;
  long_lvet.lvet_s = 0.33;
  long_lvet.lvet_jitter_s = 0.0;
  const Scenario a = make_scenario(8, 0.9, short_lvet, 8);
  const Scenario b = make_scenario(8, 0.9, long_lvet, 8);
  const IcgDelineator delineator(kFs);
  dsp::Signal lvet_a, lvet_b;
  for (std::size_t i = 0; i + 1 < a.r_samples.size(); ++i) {
    const auto da = delineator.delineate(a.synthesis.icg, a.r_samples[i], a.r_samples[i + 1]);
    const auto db = delineator.delineate(b.synthesis.icg, b.r_samples[i], b.r_samples[i + 1]);
    if (da.valid) lvet_a.push_back(static_cast<double>(da.x - da.b) / kFs);
    if (db.valid) lvet_b.push_back(static_cast<double>(db.x - db.b) / kFs);
  }
  EXPECT_NEAR(dsp::mean(lvet_b) - dsp::mean(lvet_a), 0.060, 0.02);
}

TEST(DelineatorTest, InvalidOnDegenerateSegments) {
  const IcgDelineator delineator(kFs);
  const dsp::Signal flat(1000, 0.0);
  EXPECT_FALSE(delineator.delineate(flat, 100, 105).valid);   // too short
  EXPECT_FALSE(delineator.delineate(flat, 100, 400).valid);   // no C wave
  EXPECT_FALSE(delineator.delineate(flat, 100, 2000).valid);  // out of range
  dsp::Signal negative(1000, -1.0);
  EXPECT_FALSE(delineator.delineate(negative, 100, 400).valid);
}

TEST(DelineatorTest, CarvalhoRuleMatchesPaperRuleWithGoodRt) {
  // When the RT estimate is accurate, both X rules find the same trough.
  const Scenario sc = make_scenario(8, 0.9, {}, 9);
  DelineationConfig paper_cfg;
  DelineationConfig carvalho_cfg;
  carvalho_cfg.x_rule = XPointRule::CarvalhoRtWindow;
  const IcgDelineator paper(kFs, paper_cfg);
  const IcgDelineator carvalho(kFs, carvalho_cfg);
  for (std::size_t i = 0; i + 1 < sc.r_samples.size(); ++i) {
    const auto& truth = sc.synthesis.beats[i];
    // Good RT estimate: X sits near the T end, RT ~ (x_time - r_time)/1.3.
    const double rt = (truth.x_time_s - truth.r_time_s) / 1.3;
    const auto dp = paper.delineate(sc.synthesis.icg, sc.r_samples[i], sc.r_samples[i + 1]);
    const auto dc =
        carvalho.delineate(sc.synthesis.icg, sc.r_samples[i], sc.r_samples[i + 1], rt);
    ASSERT_TRUE(dp.valid);
    ASSERT_TRUE(dc.valid);
    EXPECT_NEAR(static_cast<double>(dp.x), static_cast<double>(dc.x), 3.0);
  }
}

TEST(DelineatorTest, CarvalhoRuleDegradesWithBadRt) {
  // The paper's stated reason for dropping the RT window: a wrong T-end
  // estimate shifts X0's search window off the trough.
  const Scenario sc = make_scenario(8, 0.9, {}, 10);
  DelineationConfig carvalho_cfg;
  carvalho_cfg.x_rule = XPointRule::CarvalhoRtWindow;
  const IcgDelineator carvalho(kFs, carvalho_cfg);
  std::size_t degraded = 0;
  for (std::size_t i = 0; i + 1 < sc.r_samples.size(); ++i) {
    const auto& truth = sc.synthesis.beats[i];
    const double bad_rt = (truth.x_time_s - truth.r_time_s) * 1.4; // late T estimate
    const auto d =
        carvalho.delineate(sc.synthesis.icg, sc.r_samples[i], sc.r_samples[i + 1], bad_rt);
    const double err =
        d.valid ? std::abs(static_cast<double>(d.x) / kFs - truth.x_time_s) : 1.0;
    if (err > 0.03) ++degraded;
  }
  EXPECT_GT(degraded, 3u);
}

TEST(DelineatorTest, RejectsBadConfig) {
  EXPECT_THROW(IcgDelineator(0.0), std::invalid_argument);
  DelineationConfig cfg;
  cfg.b_line_low_frac = 0.9;
  cfg.b_line_high_frac = 0.5;
  EXPECT_THROW(IcgDelineator(kFs, cfg), std::invalid_argument);
}

class DelineatorNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(DelineatorNoiseSweep, MedianErrorsBoundedUnderNoise) {
  const double sigma = GetParam();
  const Scenario sc =
      make_scenario(25, 0.85, {}, 100 + static_cast<std::uint64_t>(sigma * 1e3), sigma);
  const Errors e = run_delineation(sc, {}, /*prefilter=*/true);
  ASSERT_GT(e.b.size(), 15u);
  EXPECT_LT(dsp::median(e.c), 0.010) << "sigma=" << sigma;
  EXPECT_LT(dsp::median(e.b), 0.018) << "sigma=" << sigma;
  EXPECT_LT(dsp::median(e.x), 0.028) << "sigma=" << sigma;
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, DelineatorNoiseSweep,
                         ::testing::Values(0.0, 0.02, 0.05, 0.10));

} // namespace
} // namespace icgkit::core
