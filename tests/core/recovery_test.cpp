// Quality-adaptive pipeline recovery: contact gaps must not poison the
// QRS detector's adaptive thresholds or the ensemble template, beats
// overlapping corrupted spans must carry the new signal-integrity flaw
// bits, and corrupted streams must stay chunk-size invariant on both
// numeric backends.
#include "core/beat_serializer.h"
#include "core/pipeline.h"
#include "synth/scenario.h"
#include "synth/subject.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace {

using namespace icgkit;
using core::BeatFlaw;
using core::BeatRecord;
using core::PipelineConfig;
using core::QualitySummary;

constexpr double kFs = 250.0;

synth::Recording test_recording(std::uint64_t session_seed = 11) {
  synth::RecordingConfig cfg;
  cfg.duration_s = 30.0;
  cfg.fs = kFs;
  cfg.session_seed = session_seed;
  const auto roster = synth::paper_roster();
  const synth::SourceActivity src = generate_source(roster[0], cfg);
  return measure_thoracic(roster[0], src, 50e3);
}

/// Sample-and-hold both channels over [begin, end).
void hold_both(synth::Recording& rec, std::size_t begin, std::size_t end) {
  const double ecg_held = begin > 0 ? rec.ecg_mv[begin - 1] : 0.0;
  const double z_held = begin > 0 ? rec.z_ohm[begin - 1] : 0.0;
  for (std::size_t i = begin; i < std::min(end, rec.ecg_mv.size()); ++i) {
    rec.ecg_mv[i] = ecg_held;
    rec.z_ohm[i] = z_held;
  }
}

template <typename Pipeline>
std::vector<BeatRecord> run_stream(const synth::Recording& rec, QualitySummary& summary,
                                   const PipelineConfig& cfg = {},
                                   std::size_t chunk = 64) {
  Pipeline p(rec.fs, cfg);
  std::vector<BeatRecord> beats;
  const std::size_t n = rec.ecg_mv.size();
  for (std::size_t i = 0; i < n; i += chunk) {
    const std::size_t len = std::min(chunk, n - i);
    p.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                dsp::SignalView(rec.z_ohm.data() + i, len), beats);
  }
  p.finish_into(beats);
  summary = p.quality_summary();
  return beats;
}

/// Fraction of truth beats in [t0, t1] with an emitted R within 100 ms.
double matched_fraction(const synth::Recording& rec, const std::vector<BeatRecord>& beats,
                        double t0, double t1) {
  std::vector<double> detected;
  for (const BeatRecord& b : beats) {
    detected.push_back(static_cast<double>(b.points.r) / rec.fs);
    detected.push_back(static_cast<double>(b.points.r) / rec.fs + b.rr_s);
  }
  std::size_t truth = 0, matched = 0;
  for (const synth::BeatTruth& t : rec.beats) {
    if (t.r_time_s < t0 || t.r_time_s > t1) continue;
    ++truth;
    for (const double d : detected)
      if (std::abs(d - t.r_time_s) <= 0.100) {
        ++matched;
        break;
      }
  }
  return truth > 0 ? static_cast<double>(matched) / static_cast<double>(truth) : 1.0;
}

// ---------------------------------------------------------------------------

TEST(RecoveryTest, DropoutMidQrsResetsAndResumesDetection) {
  synth::Recording rec = test_recording();
  // Open the gap exactly at a mid-recording QRS: worst case for the
  // detector (the beat is truncated mid-complex).
  const synth::BeatTruth* at = nullptr;
  for (const synth::BeatTruth& t : rec.beats)
    if (t.r_time_s >= 10.0) {
      at = &t;
      break;
    }
  ASSERT_NE(at, nullptr);
  const auto g0 = static_cast<std::size_t>(at->r_time_s * kFs);
  const auto g1 = g0 + static_cast<std::size_t>(1.5 * kFs);
  hold_both(rec, g0, g1);

  QualitySummary summary;
  const auto beats = run_stream<core::StreamingBeatPipeline>(rec, summary);

  EXPECT_EQ(summary.ecg_dropouts, 1u);
  EXPECT_EQ(summary.z_dropouts, 1u);
  EXPECT_EQ(summary.detector_resets, 1u);

  // The recovery reset drops the open R, so no R-R pair may span the gap.
  for (const BeatRecord& b : beats) {
    const auto r_next =
        b.points.r + static_cast<std::size_t>(std::lround(b.rr_s * kFs));
    EXPECT_FALSE(b.points.r < g0 && r_next > g1)
        << "beat (" << b.points.r << ", " << r_next << ") spans the gap";
  }

  // Detection is healthy before the gap and again after the relearn
  // window (gap end + 2 s learning + margin).
  const double gap_end_s = static_cast<double>(g1) / kFs;
  EXPECT_GE(matched_fraction(rec, beats, 1.0, at->r_time_s - 0.5), 0.9);
  EXPECT_GE(matched_fraction(rec, beats, gap_end_s + 2.5, 29.0), 0.9);
}

TEST(RecoveryTest, RecoveryNeverWorseThanStaleThresholds) {
  synth::Recording rec = test_recording(23);
  const auto g0 = static_cast<std::size_t>(12.0 * kFs);
  const auto g1 = g0 + static_cast<std::size_t>(2.0 * kFs);
  hold_both(rec, g0, g1);

  PipelineConfig with, without;
  without.quality.enable_recovery = false;

  QualitySummary s_with, s_without;
  const auto b_with = run_stream<core::StreamingBeatPipeline>(rec, s_with, with);
  const auto b_without = run_stream<core::StreamingBeatPipeline>(rec, s_without, without);

  EXPECT_EQ(s_with.detector_resets, 1u);
  EXPECT_EQ(s_without.detector_resets, 0u);

  const double gap_end_s = static_cast<double>(g1) / kFs;
  const double recovered = matched_fraction(rec, b_with, gap_end_s + 2.5, 29.0);
  const double stale = matched_fraction(rec, b_without, gap_end_s + 2.5, 29.0);
  EXPECT_GE(recovered, stale) << "recovery must not detect fewer post-gap beats";
  EXPECT_GE(recovered, 0.9);
}

TEST(RecoveryTest, ElectrodePopAndGapDuringEnsembleAccumulation) {
  synth::Recording rec = test_recording(31);
  // A large electrode pop on the impedance channel at 8 s...
  const auto pop = static_cast<std::size_t>(8.0 * kFs);
  for (std::size_t i = pop; i < rec.z_ohm.size(); ++i) {
    const double t = static_cast<double>(i - pop) / kFs;
    if (t > 1.5) break;
    rec.z_ohm[i] += 10.0 * std::exp(-t / 0.2);
  }
  // ...and a Z-channel contact gap at 15 s (ECG stays alive).
  const auto g0 = static_cast<std::size_t>(15.0 * kFs);
  const auto g1 = g0 + static_cast<std::size_t>(0.6 * kFs);
  const double z_held = rec.z_ohm[g0 - 1];
  for (std::size_t i = g0; i < g1; ++i) rec.z_ohm[i] = z_held;

  PipelineConfig cfg;
  cfg.enable_ensemble = true;

  QualitySummary summary;
  const auto beats = run_stream<core::StreamingBeatPipeline>(rec, summary, cfg);

  EXPECT_EQ(summary.z_dropouts, 1u);
  EXPECT_EQ(summary.ecg_dropouts, 0u);
  EXPECT_EQ(summary.detector_resets, 0u) << "a Z-only gap must not reset the QRS detector";
  // The poisoning protection: folds whose segment overlaps the
  // quarantined gap span are skipped, never averaged into the template.
  EXPECT_GE(summary.ensemble_folds_skipped, 1u);

  // The template existed before the gap and persists across it (clean
  // pre-gap beats stay averaged; only quarantined folds are dropped).
  bool before = false, across = false;
  const double gap_end_s = static_cast<double>(g1) / kFs;
  for (const BeatRecord& b : beats) {
    const double r_s = static_cast<double>(b.points.r) / kFs;
    if (r_s > 6.0 && r_s < 14.0 && b.ensemble_points.has_value()) before = true;
    if (r_s > gap_end_s + 6.0 && b.ensemble_points.has_value()) across = true;
  }
  EXPECT_TRUE(before) << "template never formed before the gap";
  EXPECT_TRUE(across) << "template did not persist past the gap";

  // And it stays delineation-sane (PEP in the quality gate's
  // physiological band) — not poisoned by the pop or the gap.
  for (const BeatRecord& b : beats) {
    const double r_s = static_cast<double>(b.points.r) / kFs;
    if (r_s > gap_end_s + 6.0 && b.ensemble_points.has_value()) {
      const auto& e = *b.ensemble_points;
      const double pep_s = static_cast<double>(e.b - e.r) / kFs;
      EXPECT_GT(pep_s, 0.04);
      EXPECT_LT(pep_s, 0.20);
    }
  }
}

TEST(RecoveryTest, CorruptedStreamIsChunkSizeInvariant) {
  const synth::Recording rec =
      corrupt(test_recording(5), synth::ScenarioSpec::moderate(), 40);

  const auto serialize_all = [](const std::vector<BeatRecord>& beats) {
    std::vector<unsigned char> bytes;
    for (const BeatRecord& b : beats) core::serialize_beat(b, bytes);
    return bytes;
  };

  for (const bool fixed : {false, true}) {
    QualitySummary ref_summary;
    const auto reference =
        fixed ? run_stream<core::FixedStreamingBeatPipeline>(rec, ref_summary, {}, 64)
              : run_stream<core::StreamingBeatPipeline>(rec, ref_summary, {}, 64);
    ASSERT_FALSE(reference.empty());
    const auto ref_bytes = serialize_all(reference);

    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{1024}}) {
      QualitySummary summary;
      const auto beats =
          fixed ? run_stream<core::FixedStreamingBeatPipeline>(rec, summary, {}, chunk)
                : run_stream<core::StreamingBeatPipeline>(rec, summary, {}, chunk);
      EXPECT_EQ(serialize_all(beats), ref_bytes)
          << (fixed ? "q31" : "double") << " backend diverged at chunk " << chunk;
      // The signal-integrity metrics are per-sample arithmetic and must
      // match exactly too (they are not part of the serialized bytes).
      ASSERT_EQ(beats.size(), reference.size());
      for (std::size_t i = 0; i < beats.size(); ++i) {
        EXPECT_EQ(beats[i].signal.snr_db, reference[i].signal.snr_db);
        EXPECT_EQ(beats[i].signal.flatline_fraction, reference[i].signal.flatline_fraction);
        EXPECT_EQ(beats[i].signal.saturation_fraction,
                  reference[i].signal.saturation_fraction);
      }
      EXPECT_EQ(summary.beats, ref_summary.beats);
      EXPECT_EQ(summary.usable, ref_summary.usable);
      EXPECT_EQ(summary.ecg_dropouts, ref_summary.ecg_dropouts);
      EXPECT_EQ(summary.detector_resets, ref_summary.detector_resets);
    }
  }
}

// ---------------------------------------------------------------------------
// Signal-integrity flaw bits.
// ---------------------------------------------------------------------------

TEST(RecoveryTest, CrossGapBeatFlaggedFlatlineWithoutRecovery) {
  synth::Recording rec = test_recording(41);
  const auto g0 = static_cast<std::size_t>(10.0 * kFs);
  const auto g1 = g0 + static_cast<std::size_t>(0.8 * kFs);
  hold_both(rec, g0, g1);

  PipelineConfig cfg;
  cfg.quality.enable_recovery = false;  // allow an R-R pair to span the gap

  QualitySummary summary;
  const auto beats = run_stream<core::StreamingBeatPipeline>(rec, summary, cfg);

  bool flagged = false;
  for (const BeatRecord& b : beats) {
    const auto r_next = b.points.r + static_cast<std::size_t>(std::lround(b.rr_s * kFs));
    if (b.points.r < g1 && r_next > g0 && has_flaw(b.flaws, BeatFlaw::Flatline))
      flagged = true;
  }
  EXPECT_TRUE(flagged) << "no beat overlapping the held span carries Flatline";
  EXPECT_GT(summary.flaw_counts[7], 0u);  // bit 7 = Flatline
}

TEST(RecoveryTest, RailPinnedSamplesFlaggedSaturated) {
  synth::Recording rec = test_recording(43);
  // Pin Z near the 1024 Ohm acquisition rail for 0.4 s, with a small
  // varying component so the flatline detector stays quiet.
  const auto s0 = static_cast<std::size_t>(12.0 * kFs);
  const auto s1 = s0 + static_cast<std::size_t>(0.4 * kFs);
  for (std::size_t i = s0; i < s1; ++i)
    rec.z_ohm[i] = 1010.0 + 0.5 * std::sin(static_cast<double>(i));

  QualitySummary summary;
  const auto beats = run_stream<core::StreamingBeatPipeline>(rec, summary);

  bool flagged = false;
  for (const BeatRecord& b : beats)
    if (has_flaw(b.flaws, BeatFlaw::Saturated)) flagged = true;
  EXPECT_TRUE(flagged) << "rail-pinned span produced no Saturated beat";
  EXPECT_GT(summary.flaw_counts[6], 0u);  // bit 6 = Saturated
}

TEST(RecoveryTest, HeavyInBandNoiseFlaggedLowSnr) {
  synth::Recording rec = test_recording(47);
  // Drown the ICG band: strong white noise on Z differentiates into
  // noise far above the ~1.8 Ohm/s C amplitude within the 20 Hz band.
  synth::ScenarioSpec spec;
  spec.add(synth::AdditiveNoiseConfig{.white_sigma = 0.1, .pink_sigma = 0.0},
           synth::Channel::Z);
  apply_scenario(rec, spec, 9);

  QualitySummary summary;
  const auto beats = run_stream<core::StreamingBeatPipeline>(rec, summary);

  ASSERT_FALSE(beats.empty());
  bool flagged = false;
  for (const BeatRecord& b : beats)
    if (has_flaw(b.flaws, BeatFlaw::LowSnr)) flagged = true;
  EXPECT_TRUE(flagged) << "drowned ICG produced no LowSnr beat";

  // And a clean run of the same session sits comfortably above the floor.
  QualitySummary clean_summary;
  run_stream<core::StreamingBeatPipeline>(test_recording(47), clean_summary);
  EXPECT_GT(clean_summary.mean_snr_db(), summary.mean_snr_db());
}

} // namespace
