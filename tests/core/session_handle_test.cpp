// SessionHandle façade semantics and the deprecated raw-id wrappers.
//
// PR 10 made SessionHandle the session-facing API: move-only RAII over
// a fleet id, verbs mirroring the C ABI, destructor-finish so a dropped
// handle cannot leak un-flushed engine state. These tests pin down the
// handle-specific contracts the fleet determinism suite does not touch
// — move/release lifetime, per-session poll_beat routing, explicit
// open_on() placement, and processed() counting chunks only (control
// ops must not inflate the network server's CACK stream) — plus one
// pragma-guarded block proving every [[deprecated]] wrapper still
// drives the same machinery, and the out_of_range guarantees for bogus
// raw ids that only the wrappers can reach.
#include "core/fleet.h"

#include "core/beat_serializer.h"
#include "core/flight_recorder.h"
#include "core/pipeline.h"
#include "synth/recording.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace {

using namespace icgkit;
using core::BufferRecorderSink;
using core::FleetBeat;
using core::FleetConfig;
using core::SessionHandle;
using core::SessionManager;
using core::serialize_beat;

constexpr std::size_t kChunk = 64;

std::vector<synth::Recording> test_workload(std::size_t distinct, double duration_s) {
  synth::RecordingConfig cfg;
  cfg.duration_s = duration_s;
  cfg.session_seed = 11;
  return synth::make_fleet_workload(distinct, cfg);
}

// Serialized beat stream of a directly-fed StreamingBeatPipeline — the
// reference every fleet-delivered stream must match byte for byte.
// Same chunk schedule as the fleet feeds below: full chunks only (the
// look-back window flushes at finish, so even a partial tail chunk
// would shift every beat's delineation context).
std::vector<unsigned char> direct_stream(const synth::Recording& rec) {
  core::StreamingBeatPipeline direct(rec.fs, {});
  std::vector<core::BeatRecord> beats;
  const std::size_t n = rec.ecg_mv.size();
  for (std::size_t i = 0; i + kChunk <= n; i += kChunk) {
    direct.push_into(dsp::SignalView(rec.ecg_mv.data() + i, kChunk),
                     dsp::SignalView(rec.z_ohm.data() + i, kChunk), beats);
  }
  direct.finish_into(beats);
  std::vector<unsigned char> bytes;
  for (const core::BeatRecord& b : beats) serialize_beat(b, bytes);
  return bytes;
}

TEST(SessionHandleTest, MoveAndReleaseSemantics) {
  SessionManager fleet(dsp::SampleRate{250.0}, {});

  SessionHandle none;
  EXPECT_FALSE(none.valid());
  EXPECT_FALSE(static_cast<bool>(none));

  SessionHandle a = fleet.open();
  ASSERT_TRUE(a.valid());
  const std::uint32_t id_a = a.id();

  // Move construction transfers the session; the source goes invalid.
  SessionHandle b(std::move(a));
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): moved-from is the contract under test
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(b.id(), id_a);

  // Move assignment does the same through an existing handle.
  SessionHandle c = fleet.open();
  const std::uint32_t id_c = c.id();
  EXPECT_NE(id_c, id_a);
  c = std::move(b);
  EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.id(), id_a);

  // release() detaches without finishing: the id stays registered and
  // the handle can no longer act on it.
  const std::uint32_t released = c.release();
  EXPECT_EQ(released, id_a);
  EXPECT_FALSE(c.valid());
  EXPECT_EQ(fleet.session_count(), 2u);
}

TEST(SessionHandleTest, DroppedHandleFinishesItsSession) {
  const auto workload = test_workload(1, 4.0);
  const synth::Recording& rec = workload[0];

  FleetConfig cfg;
  cfg.max_chunk = kChunk;
  SessionManager fleet(rec.fs, cfg);
  SessionHandle keeper = fleet.open();
  std::uint32_t dropped_id = 0;
  fleet.start();

  std::vector<FleetBeat> sink;
  {
    SessionHandle doomed = fleet.open();
    dropped_id = doomed.id();
    const std::size_t n = rec.ecg_mv.size();
    for (std::size_t i = 0; i + kChunk <= n; i += kChunk) {
      doomed.push(dsp::SignalView(rec.ecg_mv.data() + i, kChunk),
                  dsp::SignalView(rec.z_ohm.data() + i, kChunk), sink);
    }
  }  // ~SessionHandle: the destructor must finish the streaming session

  // The destructor-enqueued finish surfaces the dropped session's
  // end_of_session record through the fan-in poll — no handle needed.
  bool summary_seen = false;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!summary_seen && std::chrono::steady_clock::now() < deadline) {
    sink.clear();
    if (fleet.poll(sink) == 0) std::this_thread::yield();
    for (const FleetBeat& fb : sink)
      if (fb.end_of_session && fb.session == dropped_id) summary_seen = true;
  }
  EXPECT_TRUE(summary_seen) << "dropped handle did not finish its session";

  sink.clear();
  fleet.run_to_completion(sink);
  std::size_t keeper_summaries = 0;
  for (const FleetBeat& fb : sink) {
    EXPECT_NE(fb.session, dropped_id) << "finished session emitted again";
    if (fb.end_of_session && fb.session == keeper.id()) ++keeper_summaries;
  }
  EXPECT_EQ(keeper_summaries, 1u);
}

TEST(SessionHandleTest, PollBeatRoutesPerSession) {
  const auto workload = test_workload(2, 6.0);

  FleetConfig cfg;
  cfg.workers = 2;
  cfg.max_chunk = kChunk;
  SessionManager fleet(workload[0].fs, cfg);
  std::vector<SessionHandle> handles;
  for (std::size_t s = 0; s < 2; ++s) handles.push_back(fleet.open());
  fleet.start();

  // Every beat travels the per-session poll_beat path only, so each
  // session's stream is rebuilt in exactly the order its inbox serves
  // it — the routing contract under test. Interleaving the two feeds
  // forces the inboxes to park the other session's beats.
  std::vector<std::vector<unsigned char>> streams(2);
  std::vector<bool> summary(2, false);
  const auto drain = [&](std::size_t s) {
    FleetBeat fb;
    while (handles[s].poll_beat(fb)) {
      ASSERT_EQ(fb.session, handles[s].id());
      if (fb.end_of_session) {
        summary[s] = true;
      } else {
        serialize_beat(fb.beat, streams[s]);
      }
    }
  };

  const std::size_t n = workload[0].ecg_mv.size();
  for (std::size_t i = 0; i + kChunk <= n; i += kChunk) {
    for (std::size_t s = 0; s < 2; ++s) {
      const synth::Recording& rec = workload[s];
      const dsp::SignalView ecg(rec.ecg_mv.data() + i, kChunk);
      const dsp::SignalView z(rec.z_ohm.data() + i, kChunk);
      while (!handles[s].try_push(ecg, z)) {
        drain(0);
        drain(1);
      }
      drain(s);
    }
  }
  for (std::size_t s = 0; s < 2; ++s) {
    while (!handles[s].try_finish()) {
      drain(0);
      drain(1);
    }
  }
  fleet.close();
  fleet.join();
  for (std::size_t s = 0; s < 2; ++s) {
    drain(s);
    EXPECT_TRUE(summary[s]) << "session " << s << " never delivered its summary";
    EXPECT_TRUE(handles[s].finished());
    const std::vector<unsigned char> ref = direct_stream(workload[s]);
    std::size_t mism = 0;
    while (mism < std::min(ref.size(), streams[s].size()) &&
           streams[s][mism] == ref[mism])
      ++mism;
    EXPECT_EQ(streams[s], ref)
        << "session " << s << " diverged from direct feed: sizes "
        << streams[s].size() << " vs " << ref.size() << ", first mismatch at "
        << mism;
  }
}

TEST(SessionHandleTest, OpenOnPlacesExplicitlyAndOpenBalances) {
  FleetConfig cfg;
  cfg.workers = 4;
  SessionManager fleet(dsp::SampleRate{250.0}, cfg);

  SessionHandle h3 = fleet.open_on(3);
  SessionHandle h1 = fleet.open_on(1);
  EXPECT_EQ(h3.worker(), 3u);
  EXPECT_EQ(h1.worker(), 1u);

  // Load-aware open(): workers 0 and 2 are empty, lowest index wins.
  SessionHandle h0 = fleet.open();
  EXPECT_EQ(h0.worker(), 0u);
  EXPECT_EQ(fleet.least_loaded_worker(), 2u);
  SessionHandle h2 = fleet.open();
  EXPECT_EQ(h2.worker(), 2u);

  EXPECT_THROW((void)fleet.open_on(4), std::out_of_range);
}

TEST(SessionHandleTest, ProcessedCountsChunksNotControlOps) {
  const auto workload = test_workload(1, 6.0);
  const synth::Recording& rec = workload[0];

  FleetConfig cfg;
  cfg.workers = 2;
  cfg.max_chunk = kChunk;
  SessionManager fleet(rec.fs, cfg);
  SessionHandle h = fleet.open_on(0);
  fleet.start();

  std::vector<FleetBeat> sink;
  const std::uint64_t kChunks = 8;
  for (std::uint64_t i = 0; i < kChunks; ++i) {
    h.push(dsp::SignalView(rec.ecg_mv.data() + i * kChunk, kChunk),
           dsp::SignalView(rec.z_ohm.data() + i * kChunk, kChunk), sink);
  }
  while (h.processed() < kChunks) fleet.poll(sink);
  EXPECT_EQ(h.processed(), kChunks);

  // Control ops run through the same work queue and bump the session's
  // internal completion counter — but processed() is the flow-control
  // count the network server's CACKs expose, so a recording start/stop
  // and a full migration must leave it exactly where the chunks put it.
  h.record_start(std::make_unique<BufferRecorderSink>(), sink);
  h.migrate_to(1, sink);
  EXPECT_EQ(h.worker(), 1u);
  std::unique_ptr<core::RecorderSink> back = h.record_stop(sink);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(h.processed(), kChunks)
      << "control ops leaked into the chunk flow-control counter";

  h.push(dsp::SignalView(rec.ecg_mv.data() + kChunks * kChunk, kChunk),
         dsp::SignalView(rec.z_ohm.data() + kChunks * kChunk, kChunk), sink);
  while (h.processed() < kChunks + 1) fleet.poll(sink);
  EXPECT_EQ(h.processed(), kChunks + 1);

  fleet.run_to_completion(sink);
}

// The raw-id compatibility surface: every [[deprecated]] wrapper must
// keep driving the same machinery for one PR. Quarantined behind the
// pragma so the -Werror CI entries stay clean.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(SessionHandleTest, DeprecatedWrappersStillDrive) {
  const auto workload = test_workload(1, 6.0);
  const synth::Recording& rec = workload[0];

  FleetConfig cfg;
  cfg.workers = 2;
  cfg.max_chunk = kChunk;
  SessionManager fleet(rec.fs, cfg);
  const std::uint32_t sid = fleet.add_session();
  EXPECT_EQ(fleet.session_worker(sid), sid % 2);
  fleet.start();

  std::vector<FleetBeat> sink;
  std::vector<unsigned char> stream;
  const std::size_t n = rec.ecg_mv.size();
  std::size_t fed = 0;
  bool recorded = false;
  std::vector<std::uint8_t> recording_bytes;
  for (std::size_t i = 0; i + kChunk <= n; i += kChunk, ++fed) {
    const dsp::SignalView ecg(rec.ecg_mv.data() + i, kChunk);
    const dsp::SignalView z(rec.z_ohm.data() + i, kChunk);
    if (!fleet.try_submit(sid, ecg, z)) fleet.submit(sid, ecg, z, sink);
    if (fed == 4) {
      // Exercise the control-plane wrappers mid-stream: migrate to the
      // other worker, record a stretch, and cut the recording.
      fleet.migrate(sid, 1 - fleet.session_worker(sid), sink);
      fleet.start_recording(sid, std::make_unique<BufferRecorderSink>(), sink);
      EXPECT_TRUE(fleet.recording(sid));
    }
    if (fed == 18) {
      auto sunk = fleet.stop_recording(sid, sink);
      ASSERT_NE(sunk, nullptr);
      EXPECT_FALSE(fleet.recording(sid));
      recording_bytes = static_cast<BufferRecorderSink*>(sunk.get())->take();
      recorded = true;
    }
  }
  ASSERT_TRUE(recorded);
  EXPECT_GT(fleet.migrations(), 0u);
  EXPECT_TRUE(core::flight_verify(recording_bytes).ok)
      << "wrapper-driven recording does not replay";

  if (!fleet.try_finish_session(sid)) fleet.finish_session(sid, sink);
  fleet.close();
  fleet.join();
  fleet.poll(sink);

  std::uint64_t summary_beats = 0;
  for (const FleetBeat& fb : sink) {
    ASSERT_EQ(fb.session, sid);
    if (fb.end_of_session) {
      summary_beats = fb.session_summary.beats;
    } else {
      serialize_beat(fb.beat, stream);
    }
  }
  EXPECT_EQ(fleet.session_quality(sid).beats, summary_beats);

  // The migrated, recorded, wrapper-fed stream still byte-matches the
  // direct pipeline over the same chunk schedule.
  core::StreamingBeatPipeline direct(rec.fs, {});
  std::vector<core::BeatRecord> beats;
  for (std::size_t i = 0; i + kChunk <= n; i += kChunk) {
    direct.push_into(dsp::SignalView(rec.ecg_mv.data() + i, kChunk),
                     dsp::SignalView(rec.z_ohm.data() + i, kChunk), beats);
  }
  direct.finish_into(beats);
  std::vector<unsigned char> reference;
  for (const core::BeatRecord& b : beats) serialize_beat(b, reference);
  EXPECT_EQ(stream, reference);
}

TEST(SessionHandleTest, UnknownRawIdsThrowOutOfRange) {
  FleetConfig cfg;
  cfg.workers = 2;
  SessionManager fleet(dsp::SampleRate{250.0}, cfg);
  const std::uint32_t sid = fleet.add_session();
  const std::uint32_t bogus = sid + 7;
  fleet.start();

  std::vector<dsp::Sample> chunk(kChunk, 0.0);
  const dsp::SignalView view(chunk.data(), chunk.size());
  std::vector<FleetBeat> sink;

  EXPECT_THROW((void)fleet.try_submit(bogus, view, view), std::out_of_range);
  EXPECT_THROW(fleet.migrate(bogus, 0, sink), std::out_of_range);
  EXPECT_THROW((void)fleet.session_worker(bogus), std::out_of_range);
  EXPECT_THROW((void)fleet.try_finish_session(bogus), std::out_of_range);
  EXPECT_THROW((void)fleet.session_quality(bogus), std::out_of_range);
  EXPECT_THROW(
      fleet.start_recording(bogus, std::make_unique<BufferRecorderSink>(), sink),
      std::out_of_range);
  EXPECT_THROW((void)fleet.stop_recording(bogus, sink), std::out_of_range);
  EXPECT_THROW((void)fleet.recording(bogus), std::out_of_range);

  // Known id, unknown target worker.
  EXPECT_THROW(fleet.migrate(sid, 9, sink), std::out_of_range);

  fleet.finish_session(sid, sink);
  fleet.close();
  fleet.join();
}

#pragma GCC diagnostic pop

}  // namespace
