// The committed replay corpus: every .icgr fixture under
// tests/data/replay_corpus must verify byte-for-byte on the current
// build. The corpus is the cross-build determinism contract — a fixture
// recorded by an older build that stops replaying identically is a
// behavioural regression of the engine, not a test flake. The
// checkpoint-fuzz CI job grows this corpus with every divergence it
// finds (each failure is emitted as a replayable .icgr), so a bug found
// once stays covered forever.
#include "core/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

using namespace icgkit;

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::vector<std::filesystem::path> corpus_files() {
  const std::filesystem::path dir =
      std::filesystem::path(ICGKIT_TEST_DATA_DIR) / "replay_corpus";
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".icgr") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ReplayCorpusTest, CorpusIsCommittedAndNonEmpty) {
  // Both backends and both end shapes (finished / stopped) are seeded.
  EXPECT_GE(corpus_files().size(), 3u);
}

TEST(ReplayCorpusTest, EveryFixtureProbesValid) {
  for (const auto& path : corpus_files()) {
    const std::vector<std::uint8_t> file = read_file(path);
    const core::FlightProbe probe = core::probe_flight(file);
    EXPECT_TRUE(probe.valid) << path;
    EXPECT_GT(probe.chunks, 0u) << path;
  }
}

TEST(ReplayCorpusTest, EveryFixtureReplaysByteIdentical) {
  for (const auto& path : corpus_files()) {
    const std::vector<std::uint8_t> file = read_file(path);
    const core::FlightVerifyReport rep = core::flight_verify(file);
    EXPECT_TRUE(rep.ok) << path << ": first divergent chunk "
                        << rep.first_divergent_chunk << ", checkpoint "
                        << rep.first_divergent_checkpoint;
    EXPECT_TRUE(rep.summary_match) << path;
    EXPECT_TRUE(rep.tail_match) << path;
  }
}

TEST(ReplayCorpusTest, EveryFixtureSeeksByteIdentical) {
  for (const auto& path : corpus_files()) {
    const std::vector<std::uint8_t> file = read_file(path);
    const core::FlightProbe probe = core::probe_flight(file);
    ASSERT_TRUE(probe.valid) << path;
    const core::FlightSeekReport rep =
        core::flight_seek(file, (probe.header.start_samples + probe.samples) / 2);
    EXPECT_TRUE(rep.ok) << path << ": first divergent chunk "
                        << rep.first_divergent_chunk;
  }
}

}  // namespace
