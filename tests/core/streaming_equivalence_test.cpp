// The contract of the incremental engine: BeatPipeline::process is a thin
// one-big-chunk wrapper over StreamingBeatPipeline, and the streaming
// engine is chunk-size invariant -- so batch and streaming BeatRecords
// must be *byte-identical* (indices, flaws, hemodynamics) at every chunk
// size, not merely close. Plus the window-edge regression: beats emitted
// after their samples left the bounded look-back window must come out
// flagged, never referencing trimmed indices.
#include "core/legacy_recompute.h"
#include "core/pipeline.h"

#include "ecg/pan_tompkins.h"
#include "synth/recording.h"
#include "synth/subject.h"

#include <gtest/gtest.h>

namespace icgkit::core {
namespace {

constexpr double kFs = 250.0;
constexpr std::size_t kChunkSizes[] = {1, 7, 64, 1024};

synth::Recording make_recording(double duration_s, std::size_t subject_idx = 2,
                                synth::Position pos = synth::Position::ArmsOutstretched) {
  const auto roster = synth::paper_roster();
  synth::RecordingConfig cfg;
  cfg.duration_s = duration_s;
  const synth::SourceActivity src = generate_source(roster[subject_idx], cfg);
  return measure_device(roster[subject_idx], src, 50e3, pos);
}

std::vector<BeatRecord> stream_in_chunks(const synth::Recording& rec, std::size_t chunk,
                                         const PipelineConfig& cfg = {},
                                         double window_s = 12.0) {
  StreamingBeatPipeline streaming(kFs, cfg, window_s);
  std::vector<BeatRecord> beats;
  for (std::size_t i = 0; i < rec.ecg_mv.size(); i += chunk) {
    const std::size_t len = std::min(chunk, rec.ecg_mv.size() - i);
    const auto got = streaming.push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                                    dsp::SignalView(rec.z_ohm.data() + i, len));
    beats.insert(beats.end(), got.begin(), got.end());
  }
  const auto tail = streaming.finish();
  beats.insert(beats.end(), tail.begin(), tail.end());
  return beats;
}

void expect_identical(const BeatRecord& a, const BeatRecord& b, std::size_t i,
                      std::size_t chunk) {
  const auto tag = [&] {
    return ::testing::Message() << "beat " << i << " chunk " << chunk;
  };
  EXPECT_EQ(a.points.r, b.points.r) << tag();
  EXPECT_EQ(a.points.b, b.points.b) << tag();
  EXPECT_EQ(a.points.b0, b.points.b0) << tag();
  EXPECT_EQ(a.points.c, b.points.c) << tag();
  EXPECT_EQ(a.points.x, b.points.x) << tag();
  EXPECT_EQ(a.points.valid, b.points.valid) << tag();
  EXPECT_EQ(a.points.b_method, b.points.b_method) << tag();
  EXPECT_EQ(a.points.c_amplitude, b.points.c_amplitude) << tag();
  EXPECT_EQ(a.flaws, b.flaws) << tag();
  EXPECT_EQ(a.rr_s, b.rr_s) << tag();
  EXPECT_EQ(a.hemo.pep_s, b.hemo.pep_s) << tag();
  EXPECT_EQ(a.hemo.lvet_s, b.hemo.lvet_s) << tag();
  EXPECT_EQ(a.hemo.hr_bpm, b.hemo.hr_bpm) << tag();
  EXPECT_EQ(a.hemo.dzdt_max, b.hemo.dzdt_max) << tag();
  EXPECT_EQ(a.hemo.sv_kubicek_ml, b.hemo.sv_kubicek_ml) << tag();
  EXPECT_EQ(a.hemo.sv_sramek_ml, b.hemo.sv_sramek_ml) << tag();
  EXPECT_EQ(a.hemo.co_kubicek_l_min, b.hemo.co_kubicek_l_min) << tag();
  EXPECT_EQ(a.hemo.tfc_per_kohm, b.hemo.tfc_per_kohm) << tag();
}

TEST(StreamingEquivalenceTest, BatchAndStreamingAreByteIdenticalAtEveryChunkSize) {
  const synth::Recording rec = make_recording(25.0);
  const BeatPipeline batch(kFs);
  const PipelineResult batch_res = batch.process(rec.ecg_mv, rec.z_ohm);
  ASSERT_GT(batch_res.beats.size(), 15u);

  for (const std::size_t chunk : kChunkSizes) {
    const std::vector<BeatRecord> streamed = stream_in_chunks(rec, chunk);
    ASSERT_EQ(streamed.size(), batch_res.beats.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < streamed.size(); ++i)
      expect_identical(streamed[i], batch_res.beats[i], i, chunk);
  }
}

TEST(StreamingEquivalenceTest, HoldsUnderNonDefaultConfig) {
  const synth::Recording rec = make_recording(15.0, 0, synth::Position::HoldToChest);
  PipelineConfig cfg;
  cfg.ecg_filter.enable_morphological_stage = false; // ablation switch path
  cfg.icg_filter.highpass_hz = 0.0;                  // no baseline high-pass
  const BeatPipeline batch(kFs, cfg);
  const PipelineResult batch_res = batch.process(rec.ecg_mv, rec.z_ohm);
  ASSERT_GT(batch_res.beats.size(), 8u);

  for (const std::size_t chunk : kChunkSizes) {
    const std::vector<BeatRecord> streamed = stream_in_chunks(rec, chunk, cfg);
    ASSERT_EQ(streamed.size(), batch_res.beats.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < streamed.size(); ++i)
      expect_identical(streamed[i], batch_res.beats[i], i, chunk);
  }
}

TEST(StreamingEquivalenceTest, EveryRrPairIsEmittedExactlyOnce) {
  const synth::Recording rec = make_recording(20.0);
  StreamingBeatPipeline streaming(kFs);
  std::vector<BeatRecord> beats;
  const std::size_t chunk = 64;
  for (std::size_t i = 0; i < rec.ecg_mv.size(); i += chunk) {
    const std::size_t len = std::min(chunk, rec.ecg_mv.size() - i);
    const auto got = streaming.push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                                    dsp::SignalView(rec.z_ohm.data() + i, len));
    beats.insert(beats.end(), got.begin(), got.end());
  }
  const auto tail = streaming.finish();
  beats.insert(beats.end(), tail.begin(), tail.end());

  // One beat per consecutive R pair, in strictly increasing order.
  ASSERT_GT(streaming.r_peak_count(), 10u);
  EXPECT_EQ(beats.size() + 1, streaming.r_peak_count());
  for (std::size_t i = 1; i < beats.size(); ++i)
    EXPECT_GT(beats[i].points.r, beats[i - 1].points.r);
}

// Regression (window-edge): with a look-back window smaller than the
// recording, late-flushed beats must be clamped/flagged rather than
// referencing samples that have left the window.
TEST(StreamingEquivalenceTest, SmallWindowNeverReferencesTrimmedSamples) {
  const synth::Recording rec = make_recording(20.0);
  for (const double window_s : {5.0, 8.0}) {
    const std::vector<BeatRecord> beats = stream_in_chunks(rec, 64, {}, window_s);
    ASSERT_GT(beats.size(), 10u) << "window " << window_s;
    const std::size_t n = rec.ecg_mv.size();
    for (const BeatRecord& rec_b : beats) {
      EXPECT_LT(rec_b.points.r, n);
      EXPECT_LT(rec_b.points.x, n);
      EXPECT_GE(rec_b.points.b, rec_b.points.r);
      EXPECT_GE(rec_b.points.c, rec_b.points.r);
      EXPECT_GE(rec_b.points.x, rec_b.points.r);
      // Points stay inside this beat's R-R interval.
      const auto span = static_cast<std::size_t>(rec_b.rr_s * kFs + 1.5);
      EXPECT_LE(rec_b.points.x, rec_b.points.r + span);
    }
    // And chunk invariance must hold for small windows too.
    const std::vector<BeatRecord> replay = stream_in_chunks(rec, 7, {}, window_s);
    ASSERT_EQ(replay.size(), beats.size());
    for (std::size_t i = 0; i < beats.size(); ++i)
      expect_identical(replay[i], beats[i], i, 7);
  }
}

// Regression for the legacy windowed-recompute drain(): finish()-flushed
// beats near the window edge used to rebase default-zero points of
// invalid delineations into nonsense absolute indices.
TEST(WindowedRecomputeTest, FlushedBeatsAreClampedToTheirBeat) {
  const synth::Recording rec = make_recording(20.0);
  WindowedRecomputePipeline legacy(kFs, {}, 6.0); // window << recording
  std::vector<BeatRecord> beats;
  const std::size_t chunk = 125;
  for (std::size_t i = 0; i < rec.ecg_mv.size(); i += chunk) {
    const std::size_t len = std::min(chunk, rec.ecg_mv.size() - i);
    const auto got = legacy.push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                                 dsp::SignalView(rec.z_ohm.data() + i, len));
    beats.insert(beats.end(), got.begin(), got.end());
  }
  const auto tail = legacy.finish();
  beats.insert(beats.end(), tail.begin(), tail.end());

  ASSERT_GT(beats.size(), 10u);
  EXPECT_EQ(legacy.samples_consumed(), rec.ecg_mv.size());
  for (const BeatRecord& b : beats) {
    const auto span = static_cast<std::size_t>(b.rr_s * kFs + 1.5);
    EXPECT_GE(b.points.b, b.points.r);
    EXPECT_GE(b.points.c, b.points.r);
    EXPECT_GE(b.points.x, b.points.r);
    EXPECT_LE(b.points.x, b.points.r + span);
    EXPECT_LT(b.points.x, rec.ecg_mv.size());
  }
}

// The online QRS detector itself must be chunk-invariant and equal to the
// batch wrapper (which feeds it one big chunk).
TEST(OnlinePanTompkinsTest, ChunkInvariantAndEqualToBatchDetect) {
  const synth::Recording rec = make_recording(20.0, 1, synth::Position::ArmsDown);
  const ecg::PanTompkins pt(kFs);
  // detect() runs on the cleaned ECG in the pipeline; raw is fine here.
  const ecg::QrsDetection batch = pt.detect(rec.ecg_mv);
  ASSERT_GT(batch.r_samples.size(), 15u);

  for (const std::size_t chunk : kChunkSizes) {
    ecg::OnlinePanTompkins online(kFs);
    std::vector<std::size_t> peaks;
    for (std::size_t i = 0; i < rec.ecg_mv.size(); i += chunk)
      online.push_chunk(dsp::SignalView(rec.ecg_mv.data() + i,
                                        std::min(chunk, rec.ecg_mv.size() - i)),
                        peaks);
    online.finish(peaks);
    ASSERT_EQ(peaks.size(), batch.r_samples.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < peaks.size(); ++i)
      EXPECT_EQ(peaks[i], batch.r_samples[i]) << "chunk " << chunk << " peak " << i;
  }
}

} // namespace
} // namespace icgkit::core
