// Verifies the fleet memory-pool invariant: once a session's buffers
// have warmed up, pushing chunks does ZERO heap allocation — in the bare
// pipeline and through the whole fleet path (slab copy, SPSC handoff,
// result drain).
//
// This binary replaces the global operator new/delete with counting
// versions that bump core::allocation_counter() (the library-side test
// hook); AllocationProbe reads the delta around the measured region.
#include "core/alloc_probe.h"
#include "core/batch.h"
#include "core/fleet.h"
#include "core/pipeline.h"
#include "synth/recording.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <new>
#include <vector>

// ---------------------------------------------------------------------------
// Counting global allocator. Covers the plain, nothrow, and over-aligned
// forms so nothing escapes the count.
// ---------------------------------------------------------------------------

namespace {

void* counted_alloc(std::size_t n) {
  icgkit::core::allocation_counter().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  icgkit::core::allocation_counter().fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n ? n : align) != 0)
    return nullptr;
  return p;
}

} // namespace

void* operator new(std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(n, static_cast<std::size_t>(al))) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace icgkit;
using core::AllocationProbe;
using core::FleetBeat;

constexpr std::size_t kChunk = 64;

synth::Recording make_recording(double duration_s) {
  synth::RecordingConfig cfg;
  cfg.duration_s = duration_s;
  cfg.session_seed = 11;
  return std::move(synth::make_fleet_workload(1, cfg)[0]);
}

TEST(FleetAllocTest, HookCountsAllocations) {
  AllocationProbe probe;
  auto* p = new int(42);
  EXPECT_GE(probe.delta(), 1u);
  delete p;
}

TEST(FleetAllocTest, WarmPipelinePushesAreAllocationFree) {
  const synth::Recording rec = make_recording(40.0);
  core::StreamingBeatPipeline engine(rec.fs, {});
  std::vector<core::BeatRecord> out;
  out.reserve(256);

  const std::size_t n = rec.ecg_mv.size();
  const std::size_t warmup_end = (n / 2 / kChunk) * kChunk;

  for (std::size_t i = 0; i < warmup_end; i += kChunk) {
    out.clear();
    engine.push_into(dsp::SignalView(rec.ecg_mv.data() + i, kChunk),
                     dsp::SignalView(rec.z_ohm.data() + i, kChunk), out);
  }

  AllocationProbe probe;
  std::size_t beats = 0;
  for (std::size_t i = warmup_end; i + kChunk <= n; i += kChunk) {
    out.clear();
    engine.push_into(dsp::SignalView(rec.ecg_mv.data() + i, kChunk),
                     dsp::SignalView(rec.z_ohm.data() + i, kChunk), out);
    beats += out.size();
  }
  EXPECT_GT(beats, 10u) << "measured region should emit beats (delineation exercised)";
  EXPECT_EQ(probe.delta(), 0u)
      << "warmed-up StreamingBeatPipeline::push_into must not allocate";
}

TEST(FleetAllocTest, WarmFixedPipelinePushesAreAllocationFree) {
  // The Q31 engine converts each beat window to double exactly once per
  // R-R (the shared beat-window fill in make_beat); the conversion must
  // land in the warmed scratch arena, not a fresh buffer per beat.
  const synth::Recording rec = make_recording(40.0);
  core::FixedStreamingBeatPipeline engine(rec.fs, {});
  std::vector<core::BeatRecord> out;
  out.reserve(256);

  const std::size_t n = rec.ecg_mv.size();
  const std::size_t warmup_end = (n / 2 / kChunk) * kChunk;

  for (std::size_t i = 0; i < warmup_end; i += kChunk) {
    out.clear();
    engine.push_into(dsp::SignalView(rec.ecg_mv.data() + i, kChunk),
                     dsp::SignalView(rec.z_ohm.data() + i, kChunk), out);
  }

  AllocationProbe probe;
  std::size_t beats = 0;
  for (std::size_t i = warmup_end; i + kChunk <= n; i += kChunk) {
    out.clear();
    engine.push_into(dsp::SignalView(rec.ecg_mv.data() + i, kChunk),
                     dsp::SignalView(rec.z_ohm.data() + i, kChunk), out);
    beats += out.size();
  }
  EXPECT_GT(beats, 10u) << "measured region should emit beats (conversion exercised)";
  EXPECT_EQ(probe.delta(), 0u)
      << "warmed-up FixedStreamingBeatPipeline::push_into must not allocate";
}

TEST(FleetAllocTest, WarmSessionBatchPushesAreAllocationFree) {
  // The deferred beat tail queues per-lane pending ranges in scratch
  // arenas; once those have grown to steady state, a batched push (front
  // phase + per-lane tail drain) must be allocation-free like the scalar
  // engine it mirrors.
  constexpr std::size_t W = 4;
  const synth::Recording rec = make_recording(40.0);
  core::SessionBatch<W> batch(rec.fs);
  {
    std::vector<std::vector<std::uint8_t>> blobs;
    for (std::size_t l = 0; l < W; ++l)
      blobs.push_back(core::StreamingBeatPipeline(rec.fs).checkpoint());
    batch.pack(blobs);
  }
  std::array<std::vector<core::BeatRecord>, W> out;
  for (auto& o : out) o.reserve(256);
  std::array<const double*, W> ecg{}, z{};

  const std::size_t n = rec.ecg_mv.size();
  const std::size_t warmup_end = (n / 2 / kChunk) * kChunk;
  const auto feed = [&](std::size_t lo, std::size_t hi) {
    std::size_t beats = 0;
    for (std::size_t i = lo; i + kChunk <= hi; i += kChunk) {
      for (std::size_t l = 0; l < W; ++l) {
        ecg[l] = rec.ecg_mv.data() + i;
        z[l] = rec.z_ohm.data() + i;
        out[l].clear();
      }
      batch.push(ecg.data(), z.data(), kChunk, out.data());
      for (const auto& o : out) beats += o.size();
    }
    return beats;
  };

  feed(0, warmup_end);
  AllocationProbe probe;
  const std::size_t beats = feed(warmup_end, n);
  EXPECT_GT(beats, 40u) << "measured region should emit beats on every lane";
  EXPECT_EQ(probe.delta(), 0u)
      << "warmed-up SessionBatch::push must not allocate";
}

TEST(FleetAllocTest, WarmFleetPathIsAllocationFree) {
  const synth::Recording rec = make_recording(40.0);
  core::FleetConfig cfg;
  cfg.workers = 2;
  cfg.max_chunk = kChunk;
  core::SessionManager fleet(rec.fs, cfg);
  core::SessionHandle a = fleet.open();
  core::SessionHandle b = fleet.open();
  fleet.start();

  std::vector<FleetBeat> sink;
  sink.reserve(1024);
  const std::size_t n = rec.ecg_mv.size();
  const std::size_t warmup_end = (n / 2 / kChunk) * kChunk;

  auto feed = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i + kChunk <= hi; i += kChunk) {
      for (core::SessionHandle* s : {&a, &b})
        s->push(dsp::SignalView(rec.ecg_mv.data() + i, kChunk),
                dsp::SignalView(rec.z_ohm.data() + i, kChunk), sink);
    }
    while (!fleet.idle()) fleet.poll(sink);
  };

  feed(0, warmup_end);
  sink.clear();

  AllocationProbe probe;
  feed(warmup_end, n);
  EXPECT_GT(sink.size(), 20u) << "measured region should deliver beats";
  EXPECT_EQ(probe.delta(), 0u)
      << "warmed-up fleet submit/process/poll cycle must not allocate";

  fleet.close();
  fleet.join();
}

} // namespace
