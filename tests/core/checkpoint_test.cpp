// core::Checkpoint: versioned, CRC-framed session state capture.
//
// The contract under test (the substrate of the fleet's elastic
// rebalancing): checkpoint() -> restore() into a freshly constructed
// pipeline -> resume produces byte-identical BeatRecords to the
// uninterrupted stream, for both numeric backends, at any chunk size in
// {1, 7, 64, 1024} and any cut point — including mid-QRS and inside a
// contact-gap dropout. A version-1 reader must also reject corrupted,
// truncated, or mismatched blobs with CheckpointError (never UB), and
// read the committed version-1 golden fixtures bit-exactly.
#include "core/beat_serializer.h"
#include "core/checkpoint.h"
#include "core/pipeline.h"
#include "dsp/filtfilt.h"
#include "dsp/morphology.h"
#include "synth/recording.h"
#include "synth/rng.h"
#include "synth/subject.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace icgkit;
using core::BeatRecord;
using core::CheckpointError;
using core::FixedStreamingBeatPipeline;
using core::PipelineConfig;
using core::QualitySummary;
using core::StateReader;
using core::StateWriter;
using core::StreamingBeatPipeline;
using core::serialize_beat;

constexpr double kFs = 250.0;

synth::Recording test_recording(std::uint64_t session_seed = 3,
                                double duration_s = 25.0) {
  synth::RecordingConfig cfg;
  cfg.duration_s = duration_s;
  cfg.fs = kFs;
  cfg.session_seed = session_seed;
  const auto roster = synth::paper_roster();
  const synth::SourceActivity src = generate_source(roster[0], cfg);
  return measure_thoracic(roster[0], src, 50e3);
}

/// Sample-and-hold both channels over [begin, end) — a contact gap.
void hold_both(synth::Recording& rec, std::size_t begin, std::size_t end) {
  const double ecg_held = begin > 0 ? rec.ecg_mv[begin - 1] : 0.0;
  const double z_held = begin > 0 ? rec.z_ohm[begin - 1] : 0.0;
  for (std::size_t i = begin; i < std::min(end, rec.ecg_mv.size()); ++i) {
    rec.ecg_mv[i] = ecg_held;
    rec.z_ohm[i] = z_held;
  }
}

/// Feeds rec[from, to) in `chunk`-sized pushes.
template <typename Pipeline>
void feed(Pipeline& p, const synth::Recording& rec, std::size_t from, std::size_t to,
          std::size_t chunk, std::vector<BeatRecord>& out) {
  for (std::size_t i = from; i < to; i += chunk) {
    const std::size_t len = std::min(chunk, to - i);
    p.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                dsp::SignalView(rec.z_ohm.data() + i, len), out);
  }
}

/// The uninterrupted reference run.
template <typename Pipeline>
std::vector<BeatRecord> run_reference(const synth::Recording& rec, std::size_t chunk,
                                      QualitySummary& summary,
                                      const PipelineConfig& cfg = {}) {
  Pipeline p(rec.fs, cfg);
  std::vector<BeatRecord> beats;
  feed(p, rec, 0, rec.ecg_mv.size(), chunk, beats);
  p.finish_into(beats);
  summary = p.quality_summary();
  return beats;
}

/// Runs to `cut`, checkpoints, restores into a FRESH pipeline, resumes.
template <typename Pipeline>
std::vector<BeatRecord> run_with_cut(const synth::Recording& rec, std::size_t chunk,
                                     std::size_t cut, QualitySummary& summary,
                                     const PipelineConfig& cfg = {}) {
  std::vector<BeatRecord> beats;
  std::vector<std::uint8_t> blob;
  {
    Pipeline first(rec.fs, cfg);
    feed(first, rec, 0, cut, chunk, beats);
    blob = first.checkpoint();
  }  // the source engine is gone; only the blob survives the cut
  Pipeline second(rec.fs, cfg);
  second.restore(blob);
  feed(second, rec, cut, rec.ecg_mv.size(), chunk, beats);
  second.finish_into(beats);
  summary = second.quality_summary();
  return beats;
}

std::vector<unsigned char> serialize_all(const std::vector<BeatRecord>& beats) {
  std::vector<unsigned char> bytes;
  for (const BeatRecord& b : beats) serialize_beat(b, bytes);
  return bytes;
}

void expect_summary_eq(const QualitySummary& a, const QualitySummary& b,
                       const std::string& tag) {
  EXPECT_EQ(a.beats, b.beats) << tag;
  EXPECT_EQ(a.usable, b.usable) << tag;
  for (std::size_t i = 0; i < core::kBeatFlawCount; ++i)
    EXPECT_EQ(a.flaw_counts[i], b.flaw_counts[i]) << tag << " flaw bit " << i;
  EXPECT_EQ(a.ecg_dropouts, b.ecg_dropouts) << tag;
  EXPECT_EQ(a.z_dropouts, b.z_dropouts) << tag;
  EXPECT_EQ(a.detector_resets, b.detector_resets) << tag;
  EXPECT_EQ(a.ensemble_folds_skipped, b.ensemble_folds_skipped) << tag;
  EXPECT_EQ(a.snr_beats, b.snr_beats) << tag;
  EXPECT_EQ(a.sum_snr_db, b.sum_snr_db) << tag;
  EXPECT_EQ(a.min_snr_db, b.min_snr_db) << tag;
}

template <typename Pipeline>
void expect_roundtrip_identity(const synth::Recording& rec, std::size_t chunk,
                               std::size_t cut, const PipelineConfig& cfg,
                               const std::string& tag) {
  QualitySummary ref_summary, cut_summary;
  const auto ref = run_reference<Pipeline>(rec, chunk, ref_summary, cfg);
  const auto resumed = run_with_cut<Pipeline>(rec, chunk, cut, cut_summary, cfg);
  ASSERT_EQ(ref.size(), resumed.size()) << tag;
  EXPECT_EQ(serialize_all(ref), serialize_all(resumed)) << tag;
  expect_summary_eq(ref_summary, cut_summary, tag);
}

// ---------------------------------------------------------------------------
// CRC-32 implementation parity
// ---------------------------------------------------------------------------

// checkpoint_crc32 dispatches between a carry-less-multiply kernel
// (long 16-byte-aligned spans), slice-by-8, and a plain table walk for
// tails. All of them must agree with the textbook bit-at-a-time IEEE
// CRC-32 on every length, or old blobs stop validating — so sweep
// lengths across all dispatch boundaries against an independent
// bitwise reference.
TEST(CheckpointCrcTest, AllDispatchPathsMatchTheBitwiseReference) {
  const auto bitwise = [](const std::uint8_t* data, std::size_t n) {
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i) {
      crc ^= data[i];
      for (int k = 0; k < 8; ++k)
        crc = (crc & 1u) ? 0xEDB88320u ^ (crc >> 1) : crc >> 1;
    }
    return crc ^ 0xFFFFFFFFu;
  };
  synth::Rng rng(4242);
  std::vector<std::uint8_t> buf(513);
  for (auto& b : buf)
    b = static_cast<std::uint8_t>(rng.uniform(0.0, 256.0));
  for (std::size_t len = 0; len <= buf.size(); ++len)
    ASSERT_EQ(core::checkpoint_crc32(buf.data(), len), bitwise(buf.data(), len))
        << "length " << len;
}

// ---------------------------------------------------------------------------
// Kernel-level round trips
// ---------------------------------------------------------------------------

TEST(CheckpointKernelTest, ZeroPhaseFirResumesBitIdentically) {
  const dsp::FirCoefficients kernel =
      dsp::zero_phase_fir_kernel(dsp::design_lowpass(40, 30.0, kFs));
  synth::Rng rng(9);
  std::vector<double> x(600);
  for (double& v : x) v = rng.normal();

  for (const std::size_t cut : {1UL, 20UL, 100UL, 599UL}) {
    dsp::StreamingZeroPhaseFir ref(kernel);
    std::vector<double> ref_out;
    for (const double v : x) ref.push(v, ref_out);
    ref.finish(ref_out);

    dsp::StreamingZeroPhaseFir a(kernel);
    std::vector<double> out;
    for (std::size_t i = 0; i < cut; ++i) a.push(x[i], out);
    StateWriter w;
    w.begin_section("TEST");
    a.save_state(w);
    w.end_section();
    const auto blob = w.take();

    dsp::StreamingZeroPhaseFir b(kernel);
    StateReader r(blob);
    r.begin_section("TEST");
    b.load_state(r);
    r.end_section();
    for (std::size_t i = cut; i < x.size(); ++i) b.push(x[i], out);
    b.finish(out);
    EXPECT_EQ(ref_out, out) << "cut " << cut;
  }
}

TEST(CheckpointKernelTest, BaselineRemoverResumesBitIdentically) {
  synth::Rng rng(21);
  std::vector<double> x(1500);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = rng.normal() + 0.5 * static_cast<double>(i) / 250.0;

  dsp::StreamingBaselineRemover ref(kFs);
  std::vector<double> ref_out;
  for (const double v : x) ref.push(v, ref_out);
  ref.finish(ref_out);

  const std::size_t cut = 700;
  dsp::StreamingBaselineRemover a(kFs);
  std::vector<double> out;
  for (std::size_t i = 0; i < cut; ++i) a.push(x[i], out);
  StateWriter w;
  w.begin_section("TEST");
  a.save_state(w);
  w.end_section();
  const auto blob = w.take();

  dsp::StreamingBaselineRemover b(kFs);
  StateReader r(blob);
  r.begin_section("TEST");
  b.load_state(r);
  r.end_section();
  for (std::size_t i = cut; i < x.size(); ++i) b.push(x[i], out);
  b.finish(out);
  EXPECT_EQ(ref_out, out);
}

TEST(CheckpointKernelTest, RngResumesItsSubstreamExactly) {
  synth::Rng ref(1234);
  for (int i = 0; i < 101; ++i) ref.normal();  // odd count: cache a deviate

  synth::Rng a(1234);
  for (int i = 0; i < 101; ++i) a.normal();
  StateWriter w;
  w.begin_section("TEST");
  a.save_state(w);
  w.end_section();
  const auto blob = w.take();

  synth::Rng b(999);  // wrong seed: restore must overwrite it
  StateReader r(blob);
  r.begin_section("TEST");
  b.load_state(r);
  r.end_section();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(ref.next_u64(), b.next_u64());
    EXPECT_EQ(ref.normal(), b.normal());
  }
}

// ---------------------------------------------------------------------------
// Full-pipeline round trips: the byte-identity guarantee
// ---------------------------------------------------------------------------

TEST(CheckpointPipelineTest, ResumeIsByteIdenticalAcrossChunkSizesDouble) {
  const synth::Recording rec = test_recording();
  const std::size_t cut = rec.ecg_mv.size() / 2;
  for (const std::size_t chunk : {1UL, 7UL, 64UL, 1024UL})
    expect_roundtrip_identity<StreamingBeatPipeline>(
        rec, chunk, cut, {}, "double chunk " + std::to_string(chunk));
}

TEST(CheckpointPipelineTest, ResumeIsByteIdenticalAcrossChunkSizesQ31) {
  const synth::Recording rec = test_recording();
  const std::size_t cut = rec.ecg_mv.size() / 2;
  for (const std::size_t chunk : {1UL, 7UL, 64UL, 1024UL})
    expect_roundtrip_identity<FixedStreamingBeatPipeline>(
        rec, chunk, cut, {}, "q31 chunk " + std::to_string(chunk));
}

TEST(CheckpointPipelineTest, ResumeIsByteIdenticalAtAwkwardCutPoints) {
  const synth::Recording rec = test_recording();
  const std::size_t n = rec.ecg_mv.size();
  // Mid-QRS: cut exactly at a ground-truth R peak, when every stage is
  // mid-transient and the detector holds an unconfirmed candidate.
  const std::size_t mid_qrs =
      static_cast<std::size_t>(rec.beats[rec.beats.size() / 2].r_time_s * kFs);
  ASSERT_GT(mid_qrs, 0u);
  ASSERT_LT(mid_qrs, n);
  for (const std::size_t cut : {1UL, 7UL, mid_qrs, n - 1}) {
    expect_roundtrip_identity<StreamingBeatPipeline>(
        rec, 64, cut, {}, "double cut " + std::to_string(cut));
    expect_roundtrip_identity<FixedStreamingBeatPipeline>(
        rec, 64, cut, {}, "q31 cut " + std::to_string(cut));
  }
}

TEST(CheckpointPipelineTest, ResumeInsideDropoutGapPreservesRecoveryState) {
  synth::Recording rec = test_recording(17);
  // A 1.5 s dual-channel contact gap starting at 10 s; cut in the middle
  // of it, while the contact-gap state machine holds an open gap and the
  // flat-run counters are mid-flight.
  const std::size_t gap_begin = static_cast<std::size_t>(10.0 * kFs);
  const std::size_t gap_len = static_cast<std::size_t>(1.5 * kFs);
  hold_both(rec, gap_begin, gap_begin + gap_len);
  const std::size_t cut = gap_begin + gap_len / 2;
  for (const std::size_t chunk : {7UL, 64UL}) {
    expect_roundtrip_identity<StreamingBeatPipeline>(
        rec, chunk, cut, {}, "double dropout chunk " + std::to_string(chunk));
    expect_roundtrip_identity<FixedStreamingBeatPipeline>(
        rec, chunk, cut, {}, "q31 dropout chunk " + std::to_string(chunk));
  }
}

TEST(CheckpointPipelineTest, ResumeWithEnsembleTemplateIsByteIdentical) {
  const synth::Recording rec = test_recording(5);
  PipelineConfig cfg;
  cfg.enable_ensemble = true;
  // Cut once the template holds beats and again right at the start,
  // before it exists.
  for (const std::size_t cut : {static_cast<std::size_t>(2.0 * kFs),
                                rec.ecg_mv.size() * 2 / 3}) {
    expect_roundtrip_identity<StreamingBeatPipeline>(
        rec, 64, cut, cfg, "double ensemble cut " + std::to_string(cut));
    expect_roundtrip_identity<FixedStreamingBeatPipeline>(
        rec, 64, cut, cfg, "q31 ensemble cut " + std::to_string(cut));
  }
}

TEST(CheckpointPipelineTest, DoubleChainOfMigrationsStaysIdentical) {
  // Checkpoint -> restore -> checkpoint -> restore ... at several cut
  // points in sequence, the way a session bouncing between fleet workers
  // experiences it.
  const synth::Recording rec = test_recording(8);
  const std::size_t n = rec.ecg_mv.size();
  QualitySummary ref_summary;
  const auto ref = run_reference<StreamingBeatPipeline>(rec, 64, ref_summary);

  std::vector<BeatRecord> beats;
  auto engine = std::make_unique<StreamingBeatPipeline>(rec.fs, PipelineConfig{});
  std::size_t pos = 0;
  for (const double frac : {0.2, 0.4, 0.6, 0.8}) {
    const std::size_t cut = static_cast<std::size_t>(frac * static_cast<double>(n));
    feed(*engine, rec, pos, cut, 64, beats);
    const auto blob = engine->checkpoint();
    engine = std::make_unique<StreamingBeatPipeline>(rec.fs, PipelineConfig{});
    engine->restore(blob);
    pos = cut;
  }
  feed(*engine, rec, pos, n, 64, beats);
  engine->finish_into(beats);
  EXPECT_EQ(serialize_all(ref), serialize_all(beats));
  expect_summary_eq(ref_summary, engine->quality_summary(), "chained");
}

TEST(CheckpointPipelineTest, CaptureModeRefusesToCheckpoint) {
  StreamingBeatPipeline p(kFs);
  p.enable_capture();
  EXPECT_THROW(p.checkpoint(), CheckpointError);
}

// ---------------------------------------------------------------------------
// Rejection: corrupted, truncated and mismatched blobs fail cleanly
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> half_stream_blob() {
  const synth::Recording rec = test_recording();
  StreamingBeatPipeline p(rec.fs);
  std::vector<BeatRecord> beats;
  feed(p, rec, 0, rec.ecg_mv.size() / 2, 64, beats);
  return p.checkpoint();
}

TEST(CheckpointRejectionTest, EveryFlippedByteIsRejectedNotUB) {
  const std::vector<std::uint8_t> blob = half_stream_blob();
  // Flip one byte at ~199 positions spread over the blob (every frame
  // field class gets hit: magic, version, tags, lengths, payloads, CRCs).
  const std::size_t stride = std::max<std::size_t>(1, blob.size() / 199);
  for (std::size_t pos = 0; pos < blob.size(); pos += stride) {
    std::vector<std::uint8_t> bad = blob;
    bad[pos] ^= 0xA5u;
    StreamingBeatPipeline p(kFs);
    EXPECT_THROW(p.restore(bad), CheckpointError) << "flipped byte " << pos;
  }
}

TEST(CheckpointRejectionTest, EveryTruncationIsRejectedNotUB) {
  const std::vector<std::uint8_t> blob = half_stream_blob();
  std::vector<std::size_t> lengths = {0, 1, 3, 4, 7, 8, 11, 12, 15, 16};
  const std::size_t stride = std::max<std::size_t>(1, blob.size() / 97);
  for (std::size_t len = 17; len < blob.size(); len += stride) lengths.push_back(len);
  for (const std::size_t len : lengths) {
    const std::vector<std::uint8_t> bad(blob.begin(),
                                        blob.begin() + static_cast<std::ptrdiff_t>(len));
    StreamingBeatPipeline p(kFs);
    EXPECT_THROW(p.restore(bad), CheckpointError) << "truncated to " << len;
  }
}

TEST(CheckpointRejectionTest, TrailingGarbageIsRejected) {
  std::vector<std::uint8_t> blob = half_stream_blob();
  blob.push_back(0x00);
  StreamingBeatPipeline p(kFs);
  EXPECT_THROW(p.restore(blob), CheckpointError);
}

TEST(CheckpointRejectionTest, FutureVersionIsRefused) {
  std::vector<std::uint8_t> blob = half_stream_blob();
  blob[4] = static_cast<std::uint8_t>(core::kCheckpointVersion + 1);  // version LSB
  StreamingBeatPipeline p(kFs);
  EXPECT_THROW(p.restore(blob), CheckpointError);
}

TEST(CheckpointRejectionTest, MismatchedTargetIsRefused) {
  const std::vector<std::uint8_t> blob = half_stream_blob();
  {
    FixedStreamingBeatPipeline wrong_backend(kFs);
    EXPECT_THROW(wrong_backend.restore(blob), CheckpointError);
  }
  {
    StreamingBeatPipeline wrong_fs(500.0);
    EXPECT_THROW(wrong_fs.restore(blob), CheckpointError);
  }
  {
    StreamingBeatPipeline wrong_window(kFs, {}, 8.0);
    EXPECT_THROW(wrong_window.restore(blob), CheckpointError);
  }
  {
    PipelineConfig ens_cfg;
    ens_cfg.enable_ensemble = true;
    StreamingBeatPipeline wrong_stages(kFs, ens_cfg);
    EXPECT_THROW(wrong_stages.restore(blob), CheckpointError);
  }
}

// ---------------------------------------------------------------------------
// Non-throwing probe: the C ABI's pre-restore validation (the only
// corruption defence available to the no-exceptions firmware profile)
// must agree with the throwing reader on every rejection class.
// ---------------------------------------------------------------------------

TEST(CheckpointProbeTest, IntactBlobProbesValidWithItsConfig) {
  const std::vector<std::uint8_t> blob = half_stream_blob();
  const core::CheckpointProbe p = core::probe_checkpoint(blob);
  ASSERT_TRUE(p.valid);
  EXPECT_FALSE(p.backend_fixed);
  EXPECT_EQ(p.fs, kFs);
  EXPECT_FALSE(p.ensemble);
  StreamingBeatPipeline match(kFs);
  EXPECT_TRUE(match.restore_compatible(blob));
}

TEST(CheckpointProbeTest, CorruptionAndTruncationProbeInvalid) {
  const std::vector<std::uint8_t> blob = half_stream_blob();
  const std::size_t stride = std::max<std::size_t>(1, blob.size() / 97);
  for (std::size_t pos = 0; pos < blob.size(); pos += stride) {
    std::vector<std::uint8_t> bad = blob;
    bad[pos] ^= 0xA5u;
    EXPECT_FALSE(core::probe_checkpoint(bad).valid) << "flipped byte " << pos;
  }
  for (std::size_t len = 0; len < blob.size(); len += stride) {
    const std::span<const std::uint8_t> head(blob.data(), len);
    EXPECT_FALSE(core::probe_checkpoint(head).valid) << "truncated to " << len;
  }
}

TEST(CheckpointProbeTest, MismatchedTargetIsIncompatible) {
  const std::vector<std::uint8_t> blob = half_stream_blob();
  EXPECT_FALSE(FixedStreamingBeatPipeline(kFs).restore_compatible(blob));
  EXPECT_FALSE(StreamingBeatPipeline(500.0).restore_compatible(blob));
  EXPECT_FALSE(StreamingBeatPipeline(kFs, {}, 8.0).restore_compatible(blob));
  PipelineConfig ens_cfg;
  ens_cfg.enable_ensemble = true;
  EXPECT_FALSE(StreamingBeatPipeline(kFs, ens_cfg).restore_compatible(blob));
}

// ---------------------------------------------------------------------------
// Golden fixtures: a version-1 reader reads committed version-1 blobs
// ---------------------------------------------------------------------------
//
// The fixtures under tests/data were written by tools/make_checkpoint_fixture
// (same deterministic recording, cut at 60 % with 64-sample chunks). The
// test restores the committed blob and resumes the stream; the blob's
// counters and every resumed beat's integer fields (sample indices, flaw
// bits, method) must match the committed expectations exactly. Keeping
// the expectations integer-valued makes the fixture robust to
// compiler-level floating-point summation differences while still
// pinning the wire format bit for bit.

struct FixtureExpectation {
  std::size_t consumed = 0;
  std::size_t r_peaks = 0;
  struct Beat {
    std::size_t r, b, c, x, b0;
    std::uint32_t flaws;
  };
  std::vector<Beat> beats;
};

bool load_fixture_expectations(const std::string& path,
                               FixtureExpectation& dbl, FixtureExpectation& q31) {
  std::ifstream in(path);
  if (!in) return false;
  FixtureExpectation* cur = nullptr;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "backend") {
      std::string which;
      ls >> which;
      cur = which == "double" ? &dbl : &q31;
    } else if (key == "consumed" && cur != nullptr) {
      ls >> cur->consumed;
    } else if (key == "r_peaks" && cur != nullptr) {
      ls >> cur->r_peaks;
    } else if (key == "beat" && cur != nullptr) {
      FixtureExpectation::Beat b{};
      ls >> b.r >> b.b >> b.c >> b.x >> b.b0 >> b.flaws;
      cur->beats.push_back(b);
    }
  }
  return cur != nullptr;
}

synth::Recording fixture_recording() { return test_recording(20260729, 20.0); }

std::vector<std::uint8_t> read_blob(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

template <typename Pipeline>
void check_fixture(const std::string& bin_path, const FixtureExpectation& want,
                   const std::string& tag) {
  const std::vector<std::uint8_t> blob = read_blob(bin_path);
  ASSERT_FALSE(blob.empty()) << "missing fixture " << bin_path
                             << " (regenerate with tools/make_checkpoint_fixture)";
  const synth::Recording rec = fixture_recording();
  Pipeline p(rec.fs);
  p.restore(blob);
  EXPECT_EQ(p.samples_consumed(), want.consumed) << tag;
  EXPECT_EQ(p.r_peak_count(), want.r_peaks) << tag;

  std::vector<BeatRecord> beats;
  feed(p, rec, want.consumed, rec.ecg_mv.size(), 64, beats);
  p.finish_into(beats);
  ASSERT_EQ(beats.size(), want.beats.size()) << tag;
  for (std::size_t i = 0; i < beats.size(); ++i) {
    EXPECT_EQ(beats[i].points.r, want.beats[i].r) << tag << " beat " << i;
    EXPECT_EQ(beats[i].points.b, want.beats[i].b) << tag << " beat " << i;
    EXPECT_EQ(beats[i].points.c, want.beats[i].c) << tag << " beat " << i;
    EXPECT_EQ(beats[i].points.x, want.beats[i].x) << tag << " beat " << i;
    EXPECT_EQ(beats[i].points.b0, want.beats[i].b0) << tag << " beat " << i;
    EXPECT_EQ(static_cast<std::uint32_t>(beats[i].flaws), want.beats[i].flaws)
        << tag << " beat " << i;
  }
}

TEST(CheckpointFixtureTest, Version1GoldenBlobsReadBitExactly) {
  const std::string dir = ICGKIT_TEST_DATA_DIR;
  FixtureExpectation dbl, q31;
  ASSERT_TRUE(load_fixture_expectations(dir + "/checkpoint_v1_expected.txt", dbl, q31))
      << "missing fixture expectations (regenerate with tools/make_checkpoint_fixture)";
  check_fixture<StreamingBeatPipeline>(dir + "/checkpoint_v1_double.bin", dbl, "double");
  check_fixture<FixedStreamingBeatPipeline>(dir + "/checkpoint_v1_q31.bin", q31, "q31");
}

TEST(CheckpointFixtureTest, CorruptedGoldenBlobIsRejected) {
  const std::string dir = ICGKIT_TEST_DATA_DIR;
  std::vector<std::uint8_t> blob = read_blob(dir + "/checkpoint_v1_double.bin");
  ASSERT_FALSE(blob.empty());
  blob[blob.size() / 2] ^= 0xFFu;
  StreamingBeatPipeline p(kFs);
  EXPECT_THROW(p.restore(blob), CheckpointError);
}

} // namespace
