// Elastic fleet rebalancing: SessionManager::migrate must move a live
// session between workers mid-stream with byte-identical per-session
// output (beats AND end-of-session QualitySummary) to the never-migrated
// fleet, preserving per-session beat order in the pilot's sink. Runs
// under the TSan CI matrix entry (the first cross-worker state handoff
// in the fleet) as well as the ASan/UBSan one.
#include "core/beat_serializer.h"
#include "core/fleet.h"
#include "core/pipeline.h"
#include "synth/recording.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace {

using namespace icgkit;
using core::BeatRecord;
using core::FleetBeat;
using core::FleetConfig;
using core::QualitySummary;
using core::SessionManager;
using core::serialize_beat;

constexpr std::size_t kChunk = 64;

std::vector<synth::Recording> test_workload(std::size_t distinct, double duration_s) {
  synth::RecordingConfig cfg;
  cfg.duration_s = duration_s;
  cfg.session_seed = 23;
  return synth::make_fleet_workload(distinct, cfg);
}

/// One migration order: move `session` to `target_worker` just before
/// submitting chunk index `at_chunk`.
struct MigrationPlan {
  std::size_t at_chunk;
  std::uint32_t session;
  std::uint32_t target_worker;
};

struct SessionStream {
  std::vector<unsigned char> beats;  ///< serialized, in arrival order
  QualitySummary summary{};
  std::size_t summaries_seen = 0;
};

/// Feeds `sessions` copies of the workload through a fleet, executing
/// the migration plan along the way, and returns per-session streams.
std::vector<SessionStream> run_fleet(const std::vector<synth::Recording>& workload,
                                     std::size_t sessions, std::size_t workers,
                                     const std::vector<MigrationPlan>& plan = {}) {
  FleetConfig cfg;
  cfg.workers = workers;
  cfg.max_chunk = kChunk;
  SessionManager fleet(workload[0].fs, cfg);
  std::vector<core::SessionHandle> handles;
  handles.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) handles.push_back(fleet.open());
  fleet.start();

  std::vector<FleetBeat> sink;
  sink.reserve(4096);
  const std::size_t n = workload[0].ecg_mv.size();
  std::size_t chunk_index = 0;
  for (std::size_t i = 0; i < n; i += kChunk, ++chunk_index) {
    for (const MigrationPlan& m : plan)
      if (m.at_chunk == chunk_index) handles[m.session].migrate_to(m.target_worker, sink);
    const std::size_t len = std::min(kChunk, n - i);
    for (std::size_t s = 0; s < sessions; ++s) {
      const synth::Recording& rec = workload[s % workload.size()];
      handles[s].push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                      dsp::SignalView(rec.z_ohm.data() + i, len), sink);
    }
  }
  fleet.run_to_completion(sink);
  EXPECT_EQ(fleet.migrations(), plan.size());

  std::vector<SessionStream> streams(sessions);
  for (const FleetBeat& fb : sink) {
    if (fb.end_of_session) {
      streams[fb.session].summary = fb.session_summary;
      ++streams[fb.session].summaries_seen;
      continue;
    }
    serialize_beat(fb.beat, streams[fb.session].beats);
  }
  for (std::size_t s = 0; s < sessions; ++s)
    EXPECT_EQ(streams[s].summaries_seen, 1u) << "session " << s;
  return streams;
}

void expect_summary_eq(const QualitySummary& a, const QualitySummary& b,
                       std::size_t session) {
  EXPECT_EQ(a.beats, b.beats) << "session " << session;
  EXPECT_EQ(a.usable, b.usable) << "session " << session;
  for (std::size_t i = 0; i < core::kBeatFlawCount; ++i)
    EXPECT_EQ(a.flaw_counts[i], b.flaw_counts[i]) << "session " << session;
  EXPECT_EQ(a.detector_resets, b.detector_resets) << "session " << session;
  EXPECT_EQ(a.sum_snr_db, b.sum_snr_db) << "session " << session;
}

TEST(MigrationTest, SingleMigrationIsByteIdenticalToPinnedFleet) {
  const auto workload = test_workload(2, 10.0);
  const auto baseline = run_fleet(workload, 4, 2);
  // Move session 1 from worker 1 to worker 0 a third of the way in
  // (10 s at 250 Hz in 64-sample chunks = 40 chunk indices).
  const auto migrated = run_fleet(workload, 4, 2, {{13, 1, 0}});
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(baseline[s].beats, migrated[s].beats) << "session " << s;
    expect_summary_eq(baseline[s].summary, migrated[s].summary, s);
  }
}

TEST(MigrationTest, RepeatedPingPongMigrationStaysIdentical) {
  const auto workload = test_workload(2, 10.0);
  const auto baseline = run_fleet(workload, 3, 2);
  // Session 0 bounces between the workers five times; session 2 moves
  // once onto the same worker it already occupies (legal no-op move that
  // still round-trips the blob).
  const std::vector<MigrationPlan> plan = {
      {5, 0, 1}, {11, 0, 0}, {17, 0, 1}, {23, 0, 0}, {29, 0, 1}, {13, 2, 0}};
  const auto migrated = run_fleet(workload, 3, 2, plan);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(baseline[s].beats, migrated[s].beats) << "session " << s;
    expect_summary_eq(baseline[s].summary, migrated[s].summary, s);
  }
}

TEST(MigrationTest, MigrationMatchesDirectlyFedPipeline) {
  const auto workload = test_workload(1, 8.0);
  const auto migrated = run_fleet(workload, 2, 2, {{10, 0, 1}, {25, 0, 0}});

  const synth::Recording& rec = workload[0];
  core::StreamingBeatPipeline direct(rec.fs, {});
  std::vector<BeatRecord> beats;
  const std::size_t n = rec.ecg_mv.size();
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t len = std::min(kChunk, n - i);
    direct.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                     dsp::SignalView(rec.z_ohm.data() + i, len), beats);
  }
  direct.finish_into(beats);
  std::vector<unsigned char> direct_bytes;
  for (const BeatRecord& b : beats) serialize_beat(b, direct_bytes);
  EXPECT_EQ(direct_bytes, migrated[0].beats);
}

TEST(MigrationTest, DrainAWorkerUnderLoad) {
  // Evacuate every session from worker 1 mid-stream (the elastic
  // drain-for-restart move) and keep streaming; output must not change.
  const auto workload = test_workload(2, 8.0);
  const auto baseline = run_fleet(workload, 6, 2);
  std::vector<MigrationPlan> plan;
  for (std::uint32_t s = 1; s < 6; s += 2) plan.push_back({12, s, 0});
  const auto migrated = run_fleet(workload, 6, 2, plan);
  for (std::size_t s = 0; s < 6; ++s)
    EXPECT_EQ(baseline[s].beats, migrated[s].beats) << "session " << s;
}

TEST(MigrationTest, SessionWorkerTracksMoves) {
  const auto workload = test_workload(1, 4.0);
  FleetConfig cfg;
  cfg.workers = 3;
  cfg.max_chunk = kChunk;
  SessionManager fleet(workload[0].fs, cfg);
  core::SessionHandle a = fleet.open();
  core::SessionHandle b = fleet.open();
  EXPECT_EQ(a.worker(), 0u);
  EXPECT_EQ(b.worker(), 1u);
  EXPECT_EQ(fleet.least_loaded_worker(), 2u);
  fleet.start();

  std::vector<FleetBeat> sink;
  a.migrate_to(2, sink);
  EXPECT_EQ(a.worker(), 2u);
  EXPECT_EQ(fleet.least_loaded_worker(), 0u);
  fleet.run_to_completion(sink);
}

TEST(MigrationTest, InvalidMigrationsThrow) {
  const auto workload = test_workload(1, 4.0);
  FleetConfig cfg;
  cfg.workers = 2;
  cfg.max_chunk = kChunk;
  SessionManager fleet(workload[0].fs, cfg);
  core::SessionHandle s = fleet.open();
  std::vector<FleetBeat> sink;
  EXPECT_THROW(s.migrate_to(0, sink), std::logic_error);  // before start()
  fleet.start();
  EXPECT_THROW(s.migrate_to(9, sink), std::out_of_range);  // unknown worker
  s.finish(sink);
  EXPECT_THROW(s.migrate_to(1, sink), std::logic_error);  // already finished
  fleet.run_to_completion(sink);
}

} // namespace
