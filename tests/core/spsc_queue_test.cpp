// SpscQueue: FIFO semantics, capacity/backpressure behavior, and a
// two-thread stress pass (the exact producer/consumer topology the
// fleet uses) checking that every item arrives exactly once, in order.
#include "core/spsc_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace {

using icgkit::core::SpscQueue;

TEST(SpscQueueTest, RejectsZeroCapacity) {
  EXPECT_THROW(SpscQueue<int>(0), std::invalid_argument);
}

TEST(SpscQueueTest, FifoOrderSingleThread) {
  SpscQueue<int> q(8);
  EXPECT_EQ(q.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99)) << "queue should report full at capacity";
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v)) << "queue should report empty after draining";
}

TEST(SpscQueueTest, WrapsAroundManyTimes) {
  SpscQueue<std::uint64_t> q(3);
  std::uint64_t next_push = 0, next_pop = 0, v = 0;
  while (next_push < 1000) {
    if (q.try_push(next_push)) {
      ++next_push;
    } else {
      ASSERT_TRUE(q.try_pop(v));
      EXPECT_EQ(v, next_pop++);
    }
  }
  while (q.try_pop(v)) EXPECT_EQ(v, next_pop++);
  EXPECT_EQ(next_pop, 1000u);
}

TEST(SpscQueueTest, SizeApproxTracksDepth) {
  SpscQueue<int> q(4);
  EXPECT_TRUE(q.empty_approx());
  q.try_push(1);
  q.try_push(2);
  EXPECT_EQ(q.size_approx(), 2u);
  int v;
  q.try_pop(v);
  EXPECT_EQ(q.size_approx(), 1u);
}

TEST(SpscQueueTest, TwoThreadStressDeliversAllInOrder) {
  constexpr std::uint64_t kItems = 200000;
  SpscQueue<std::uint64_t> q(64);

  std::thread producer([&q] {
    for (std::uint64_t i = 0; i < kItems; ++i)
      while (!q.try_push(i)) std::this_thread::yield();
  });

  std::uint64_t expected = 0;
  std::uint64_t v = 0;
  while (expected < kItems) {
    if (q.try_pop(v)) {
      ASSERT_EQ(v, expected) << "item lost, duplicated, or reordered";
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_FALSE(q.try_pop(v));
}

} // namespace
