// The contract of the Q31 engine: FixedStreamingBeatPipeline is the same
// streaming composition as the double reference, instantiated with the
// fixed-point backend -- so on the synthetic cohort it must find exactly
// the same beats (count parity), its PEP/LVET must sit within one sample
// (< 2 ms at fs >= 500; at the paper's 250 Hz that means the delineation
// picks identical samples), the quality gate must agree flaw for flaw,
// and the whole thing must stay chunk-size invariant like every other
// streaming stage.
#include "core/pipeline.h"

#include "synth/recording.h"
#include "synth/subject.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icgkit::core {
namespace {

constexpr double kFs = 250.0;
constexpr std::size_t kChunkSizes[] = {1, 7, 64, 1024};

synth::Recording make_recording(double duration_s, std::size_t subject_idx = 2,
                                synth::Position pos = synth::Position::ArmsOutstretched) {
  const auto roster = synth::paper_roster();
  synth::RecordingConfig cfg;
  cfg.duration_s = duration_s;
  const synth::SourceActivity src = generate_source(roster[subject_idx], cfg);
  return measure_device(roster[subject_idx], src, 50e3, pos);
}

template <typename Pipeline>
std::vector<BeatRecord> run_chunked(Pipeline& engine, const synth::Recording& rec,
                                    std::size_t chunk) {
  std::vector<BeatRecord> beats;
  for (std::size_t i = 0; i < rec.ecg_mv.size(); i += chunk) {
    const std::size_t len = std::min(chunk, rec.ecg_mv.size() - i);
    engine.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                     dsp::SignalView(rec.z_ohm.data() + i, len), beats);
  }
  engine.finish_into(beats);
  return beats;
}

std::vector<BeatRecord> run_double(const synth::Recording& rec, std::size_t chunk = 1024,
                                   const PipelineConfig& cfg = {}) {
  StreamingBeatPipeline engine(kFs, cfg);
  return run_chunked(engine, rec, chunk);
}

std::vector<BeatRecord> run_fixed(const synth::Recording& rec, std::size_t chunk = 1024,
                                  const PipelineConfig& cfg = {},
                                  const dsp::Q31ScalingPolicy& pol = {}) {
  FixedStreamingBeatPipeline engine(kFs, cfg, 12.0, pol);
  return run_chunked(engine, rec, chunk);
}

TEST(FixedPipelineTest, BeatParityAndTimingOnSynthCohort) {
  // Whole roster, two arm positions: beat-for-beat parity with the double
  // engine, PEP/LVET within 2 ms worst-case, quality flaws identical.
  const auto roster = synth::paper_roster();
  double worst_pep = 0.0, worst_lvet = 0.0;
  std::size_t beats_checked = 0;
  for (std::size_t s = 0; s < roster.size(); ++s) {
    for (const auto pos :
         {synth::Position::ArmsOutstretched, synth::Position::ArmsDown}) {
      const synth::Recording rec = make_recording(20.0, s, pos);
      const auto db = run_double(rec);
      const auto fb = run_fixed(rec);
      ASSERT_EQ(db.size(), fb.size()) << "subject " << s;
      ASSERT_GT(db.size(), 10u) << "subject " << s;
      for (std::size_t i = 0; i < db.size(); ++i) {
        EXPECT_EQ(db[i].points.r, fb[i].points.r) << "subject " << s << " beat " << i;
        EXPECT_EQ(db[i].flaws, fb[i].flaws) << "subject " << s << " beat " << i;
        worst_pep = std::max(worst_pep, std::abs(db[i].hemo.pep_s - fb[i].hemo.pep_s));
        worst_lvet =
            std::max(worst_lvet, std::abs(db[i].hemo.lvet_s - fb[i].hemo.lvet_s));
        ++beats_checked;
      }
    }
  }
  EXPECT_GT(beats_checked, 200u);
  EXPECT_LT(worst_pep, 0.002);
  EXPECT_LT(worst_lvet, 0.002);
}

TEST(FixedPipelineTest, ChunkInvariantAtEveryChunkSize) {
  const synth::Recording rec = make_recording(20.0);
  const auto reference = run_fixed(rec, 1024);
  ASSERT_GT(reference.size(), 10u);
  for (const std::size_t chunk : kChunkSizes) {
    const auto streamed = run_fixed(rec, chunk);
    ASSERT_EQ(streamed.size(), reference.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_EQ(streamed[i].points.r, reference[i].points.r) << "chunk " << chunk;
      EXPECT_EQ(streamed[i].points.b, reference[i].points.b) << "chunk " << chunk;
      EXPECT_EQ(streamed[i].points.c, reference[i].points.c) << "chunk " << chunk;
      EXPECT_EQ(streamed[i].points.x, reference[i].points.x) << "chunk " << chunk;
      EXPECT_EQ(streamed[i].flaws, reference[i].flaws) << "chunk " << chunk;
      EXPECT_EQ(streamed[i].hemo.pep_s, reference[i].hemo.pep_s) << "chunk " << chunk;
      EXPECT_EQ(streamed[i].hemo.lvet_s, reference[i].hemo.lvet_s) << "chunk " << chunk;
      EXPECT_EQ(streamed[i].hemo.sv_kubicek_ml, reference[i].hemo.sv_kubicek_ml)
          << "chunk " << chunk;
    }
  }
}

TEST(FixedPipelineTest, HoldsUnderQualityGateAndNonDefaultConfig) {
  // A tighter gate flags more beats; the fixed path must flag exactly the
  // same ones (parity of the gate, not just of the usable subset).
  const synth::Recording rec = make_recording(20.0, 1, synth::Position::HoldToChest);
  PipelineConfig cfg;
  cfg.quality.max_pep_s = 0.150;
  cfg.quality.min_lvet_s = 0.200;
  const auto db = run_double(rec, 64, cfg);
  const auto fb = run_fixed(rec, 64, cfg);
  ASSERT_EQ(db.size(), fb.size());
  ASSERT_GT(db.size(), 8u);
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(db[i].flaws, fb[i].flaws) << "beat " << i;
    if (db[i].flaws != BeatFlaw::None) ++flagged;
    if (db[i].usable()) {
      EXPECT_LT(std::abs(db[i].hemo.pep_s - fb[i].hemo.pep_s), 0.002);
      EXPECT_LT(std::abs(db[i].hemo.lvet_s - fb[i].hemo.lvet_s), 0.002);
    }
  }
  EXPECT_GT(flagged, 0u); // the tightened gate actually exercised the flaw path
}

TEST(FixedPipelineTest, SvAndZ0TrackDoubleClosely) {
  // Amplitude-domain outputs go through two Q31 boundaries (Z counts and
  // ICG counts); they are not bit-equal but must track to well under the
  // physiological noise floor.
  const synth::Recording rec = make_recording(25.0, 3);
  const auto db = run_double(rec);
  const auto fb = run_fixed(rec);
  ASSERT_EQ(db.size(), fb.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    if (!db[i].usable()) continue;
    EXPECT_LT(std::abs(db[i].hemo.sv_kubicek_ml - fb[i].hemo.sv_kubicek_ml), 0.05);
    EXPECT_LT(std::abs(db[i].hemo.dzdt_max - fb[i].hemo.dzdt_max), 1e-3);
    EXPECT_LT(std::abs(db[i].hemo.tfc_per_kohm - fb[i].hemo.tfc_per_kohm), 1e-3);
  }
}

TEST(FixedPipelineTest, SaturatingScalingPolicyStillEmitsBeats) {
  // A deliberately hostile policy (ICG full scale below the signal) must
  // degrade gracefully -- clipped delineation, no crashes/UB, beats out.
  const synth::Recording rec = make_recording(15.0);
  dsp::Q31ScalingPolicy pol;
  pol.icg_gain_log2 = 18; // full scale 0.98 Ohm/s at 250 Hz: clips hard
  const auto fb = run_fixed(rec, 64, {}, pol);
  EXPECT_GT(fb.size(), 5u);
}

TEST(EnsembleStageTest, RecordsCarryEnsembleDelineation) {
  const synth::Recording rec = make_recording(25.0);
  PipelineConfig cfg;
  cfg.enable_ensemble = true;
  const auto beats = run_double(rec, 64, cfg);
  ASSERT_GT(beats.size(), 15u);

  std::size_t with_ensemble = 0;
  for (const BeatRecord& b : beats) {
    if (!b.ensemble_points.has_value()) continue;
    ++with_ensemble;
    // Template delineation is anchored near this beat's R and ordered.
    EXPECT_TRUE(b.ensemble_points->valid);
    EXPECT_LE(b.ensemble_points->b, b.ensemble_points->c);
    EXPECT_LE(b.ensemble_points->c, b.ensemble_points->x);
    // The template R offset equals the beat R by construction.
    EXPECT_EQ(b.ensemble_points->r, b.points.r);
  }
  // The template needs min_beats_for_gate beats; after that, most beats
  // carry it.
  EXPECT_GT(with_ensemble, beats.size() / 2);
}

TEST(EnsembleStageTest, EnsembleTimingTracksSingleBeatMedian) {
  const synth::Recording rec = make_recording(25.0, 0);
  PipelineConfig cfg;
  cfg.enable_ensemble = true;
  const auto beats = run_double(rec, 256, cfg);
  std::vector<double> pep_single, pep_ens;
  for (const BeatRecord& b : beats) {
    if (!b.usable() || !b.ensemble_points.has_value()) continue;
    pep_single.push_back(static_cast<double>(b.points.b - b.points.r) / kFs);
    pep_ens.push_back(
        static_cast<double>(b.ensemble_points->b - b.ensemble_points->r) / kFs);
  }
  ASSERT_GT(pep_ens.size(), 10u);
  double mean_s = 0.0, mean_e = 0.0;
  for (const double v : pep_single) mean_s += v;
  for (const double v : pep_ens) mean_e += v;
  mean_s /= static_cast<double>(pep_single.size());
  mean_e /= static_cast<double>(pep_ens.size());
  EXPECT_NEAR(mean_e, mean_s, 0.015); // templates agree with per-beat timing
}

TEST(EnsembleStageTest, PostWindowLongerThanRrStillAccumulates) {
  // Regression: when post_r_s exceeds the RR interval (fast heart rates,
  // or a long template window as here), a beat's segment is not complete
  // at emission time. The pipeline must queue the fold for when the ICG
  // stream catches up -- not silently never build a template.
  const synth::Recording rec = make_recording(25.0);
  PipelineConfig cfg;
  cfg.enable_ensemble = true;
  cfg.ensemble.post_r_s = 1.2; // > every RR in the cohort (~0.85 s)
  const auto beats = run_double(rec, 64, cfg);
  ASSERT_GT(beats.size(), 15u);
  std::size_t with_ensemble = 0;
  for (const BeatRecord& b : beats)
    if (b.ensemble_points.has_value()) ++with_ensemble;
  EXPECT_GT(with_ensemble, beats.size() / 3);
}

TEST(EnsembleStageTest, DisabledByDefaultLeavesRecordsUntouched) {
  const synth::Recording rec = make_recording(15.0);
  const auto beats = run_double(rec, 64);
  ASSERT_GT(beats.size(), 8u);
  for (const BeatRecord& b : beats) EXPECT_FALSE(b.ensemble_points.has_value());
}

TEST(EnsembleStageTest, WorksOnFixedBackendToo) {
  const synth::Recording rec = make_recording(25.0);
  PipelineConfig cfg;
  cfg.enable_ensemble = true;
  const auto fb = run_fixed(rec, 64, cfg);
  std::size_t with_ensemble = 0;
  for (const BeatRecord& b : fb)
    if (b.ensemble_points.has_value()) ++with_ensemble;
  EXPECT_GT(with_ensemble, fb.size() / 2);
}

} // namespace
} // namespace icgkit::core
