// Fleet determinism and plumbing.
//
// The contract under test: a fleet of K sessions fed identical chunk
// schedules produces byte-identical per-session beat streams whatever
// the worker count (1 vs 8), and each stream equals what a directly-fed
// StreamingBeatPipeline emits. Runs under the Debug ASan/UBSan CI job,
// which is what checks the SPSC handoffs for memory errors.
#include "core/fleet.h"

#include "core/beat_serializer.h"
#include "core/pipeline.h"
#include "synth/recording.h"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace icgkit;
using core::BeatRecord;
using core::FleetBeat;
using core::FleetConfig;
using core::SessionManager;
using core::serialize_beat;

constexpr std::size_t kChunk = 64;

std::vector<synth::Recording> test_workload(std::size_t distinct, double duration_s) {
  synth::RecordingConfig cfg;
  cfg.duration_s = duration_s;
  cfg.session_seed = 7;
  return synth::make_fleet_workload(distinct, cfg);
}

// Feeds `sessions` copies of the workload (session i -> recording
// i % workload.size()) through a fleet with the given worker count and
// returns each session's serialized beat stream.
std::vector<std::vector<unsigned char>> run_fleet(
    const std::vector<synth::Recording>& workload, std::size_t sessions,
    std::size_t workers, std::size_t result_queue_capacity = 8192) {
  FleetConfig cfg;
  cfg.workers = workers;
  cfg.max_chunk = kChunk;
  cfg.result_queue_capacity = result_queue_capacity;
  SessionManager fleet(workload[0].fs, cfg);
  std::vector<core::SessionHandle> handles;
  handles.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) handles.push_back(fleet.open());
  fleet.start();

  std::vector<FleetBeat> sink;
  sink.reserve(1024);
  const std::size_t n = workload[0].ecg_mv.size();
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t len = std::min(kChunk, n - i);
    for (std::size_t s = 0; s < sessions; ++s) {
      const synth::Recording& rec = workload[s % workload.size()];
      handles[s].push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                      dsp::SignalView(rec.z_ohm.data() + i, len), sink);
    }
  }
  fleet.run_to_completion(sink);

  std::vector<std::vector<unsigned char>> streams(sessions);
  std::vector<std::size_t> summaries(sessions, 0);
  std::vector<std::uint64_t> summary_beats(sessions, 0);
  for (const FleetBeat& fb : sink) {
    if (fb.end_of_session) {
      ++summaries[fb.session];
      summary_beats[fb.session] = fb.session_summary.beats;
      continue;  // terminal quality record, not a beat
    }
    serialize_beat(fb.beat, streams[fb.session]);
  }
  // Every finished session emits its QualitySummary exactly once, after
  // its tail beats, and the summary's beat count matches the stream.
  std::vector<unsigned char> one_beat;
  serialize_beat(BeatRecord{}, one_beat);
  for (std::size_t s = 0; s < sessions; ++s) {
    EXPECT_EQ(summaries[s], 1u) << "session " << s << " end-of-session records";
    EXPECT_EQ(summary_beats[s] * one_beat.size(), streams[s].size())
        << "session " << s << " summary beat count vs serialized stream";
  }
  return streams;
}

TEST(FleetTest, MatchesDirectlyFedPipeline) {
  const auto workload = test_workload(2, 8.0);
  const auto streams = run_fleet(workload, 4, 2);

  for (std::size_t s = 0; s < 4; ++s) {
    const synth::Recording& rec = workload[s % workload.size()];
    core::StreamingBeatPipeline direct(rec.fs, {});
    std::vector<BeatRecord> beats;
    const std::size_t n = rec.ecg_mv.size();
    for (std::size_t i = 0; i < n; i += kChunk) {
      const std::size_t len = std::min(kChunk, n - i);
      direct.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                       dsp::SignalView(rec.z_ohm.data() + i, len), beats);
    }
    direct.finish_into(beats);
    ASSERT_FALSE(beats.empty()) << "test recording should contain beats";

    std::vector<unsigned char> reference;
    for (const BeatRecord& b : beats) serialize_beat(b, reference);
    EXPECT_EQ(streams[s], reference) << "session " << s << " diverged from direct feed";
  }
}

TEST(FleetTest, ByteIdenticalAcrossWorkerCounts) {
  const auto workload = test_workload(3, 8.0);
  constexpr std::size_t kSessions = 12;
  const auto one = run_fleet(workload, kSessions, 1);
  const auto eight = run_fleet(workload, kSessions, 8);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_FALSE(one[s].empty()) << "session " << s << " produced no beats";
    EXPECT_EQ(one[s], eight[s]) << "session " << s << ": 1-worker vs 8-worker mismatch";
  }
}

TEST(FleetTest, SurvivesTinyResultQueueBackpressure) {
  const auto workload = test_workload(1, 6.0);
  const auto roomy = run_fleet(workload, 3, 2);
  const auto cramped = run_fleet(workload, 3, 2, /*result_queue_capacity=*/2);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_FALSE(roomy[s].empty());
    EXPECT_EQ(roomy[s], cramped[s]) << "backpressure altered session " << s;
  }
}

TEST(FleetTest, ValidatesSubmissions) {
  FleetConfig cfg;
  cfg.max_chunk = 32;
  SessionManager fleet(250.0, cfg);
  core::SessionHandle h = fleet.open();
  fleet.start();

  const std::vector<double> a(16, 0.0), b(8, 0.0), big(64, 0.0);
  EXPECT_THROW(h.try_push(a, b), std::invalid_argument);
  EXPECT_THROW(h.try_push(big, big), std::invalid_argument);

  std::vector<FleetBeat> sink;
  h.finish(sink);
  EXPECT_THROW(h.try_push(a, a), std::logic_error);
  EXPECT_THROW(h.try_finish(), std::logic_error);

  // Work enqueued behind the shutdown sentinel would never be processed
  // (idle() would hang), so submission after close() must throw.
  core::SessionHandle open_h = fleet.open();
  fleet.close();
  EXPECT_THROW(open_h.try_push(a, a), std::logic_error);
  EXPECT_THROW(open_h.try_finish(), std::logic_error);
  fleet.join();
  // open_h's destructor sees the closed fleet and stands down.
}

TEST(FleetTest, DestructorShutsDownCleanly) {
  const auto workload = test_workload(1, 4.0);
  FleetConfig cfg;
  cfg.workers = 2;
  cfg.max_chunk = kChunk;
  cfg.result_queue_capacity = 2;  // force backpressure at teardown
  SessionManager fleet(workload[0].fs, cfg);
  std::vector<core::SessionHandle> handles;
  for (int s = 0; s < 3; ++s) handles.push_back(fleet.open());
  fleet.start();
  std::vector<FleetBeat> sink;
  const synth::Recording& rec = workload[0];
  for (std::size_t i = 0; i + kChunk <= rec.ecg_mv.size(); i += kChunk)
    for (std::uint32_t s = 0; s < 3; ++s)
      handles[s].push(dsp::SignalView(rec.ecg_mv.data() + i, kChunk),
                      dsp::SignalView(rec.z_ohm.data() + i, kChunk), sink);
  // Detach the handles so the sessions are still live at teardown: the
  // manager destructor itself (no close/join) must drain and stop the
  // pool.
  for (auto& h : handles) h.release();
}

} // namespace
