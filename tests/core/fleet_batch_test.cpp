// Lockstep batch mode of the fleet (FleetConfig::batch_width).
//
// The contract under test: a fleet running with batch_width = 4 or 8
// emits per-session beat streams byte-identical to the scalar fleet
// (and therefore to a directly-fed StreamingBeatPipeline), including
// when groups dissolve mid-stream — on migration, on finish, or when
// lanes receive mismatched chunk lengths. Sessions that don't fill a
// whole group must silently run scalar.
#include "core/fleet.h"

#include "core/batch.h"
#include "core/beat_serializer.h"
#include "dsp/simd.h"
#include "synth/recording.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace {

using namespace icgkit;
using core::FleetBeat;
using core::FleetConfig;
using core::SessionHandle;
using core::SessionManager;
using core::serialize_beat;

constexpr std::size_t kChunk = 64;

std::vector<synth::Recording> test_workload(std::size_t distinct, double duration_s) {
  synth::RecordingConfig cfg;
  cfg.duration_s = duration_s;
  cfg.session_seed = 21;
  return synth::make_fleet_workload(distinct, cfg);
}

// Feeds `sessions` copies of the workload through a fleet and returns
// each session's serialized beat stream plus its terminal summary beat
// count (so callers can assert the quality aggregate survived batching).
struct FleetRun {
  std::vector<std::vector<unsigned char>> streams;
  std::vector<std::uint64_t> summary_beats;
};

FleetRun run_fleet(const std::vector<synth::Recording>& workload, std::size_t sessions,
                   std::size_t workers, std::size_t batch_width) {
  FleetConfig cfg;
  cfg.workers = workers;
  cfg.max_chunk = kChunk;
  cfg.batch_width = batch_width;
  SessionManager fleet(workload[0].fs, cfg);
  std::vector<core::SessionHandle> handles;
  handles.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) handles.push_back(fleet.open());
  fleet.start();

  std::vector<FleetBeat> sink;
  sink.reserve(1024);
  const std::size_t n = workload[0].ecg_mv.size();
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t len = std::min(kChunk, n - i);
    for (std::size_t s = 0; s < sessions; ++s) {
      const synth::Recording& rec = workload[s % workload.size()];
      handles[s].push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                      dsp::SignalView(rec.z_ohm.data() + i, len), sink);
    }
  }
  fleet.run_to_completion(sink);

  FleetRun out;
  out.streams.resize(sessions);
  out.summary_beats.assign(sessions, 0);
  for (const FleetBeat& fb : sink) {
    if (fb.end_of_session) {
      out.summary_beats[fb.session] = fb.session_summary.beats;
      continue;
    }
    serialize_beat(fb.beat, out.streams[fb.session]);
  }
  return out;
}

void expect_same_run(const FleetRun& scalar, const FleetRun& batched) {
  ASSERT_EQ(scalar.streams.size(), batched.streams.size());
  for (std::size_t s = 0; s < scalar.streams.size(); ++s) {
    EXPECT_FALSE(scalar.streams[s].empty()) << "session " << s << " produced no beats";
    EXPECT_EQ(scalar.streams[s], batched.streams[s])
        << "session " << s << ": scalar vs batched fleet mismatch";
    EXPECT_EQ(scalar.summary_beats[s], batched.summary_beats[s])
        << "session " << s << ": quality summary diverged";
  }
}

TEST(FleetBatchTest, WidthFourMatchesScalarFleet) {
  const auto workload = test_workload(3, 8.0);
  constexpr std::size_t kSessions = 8;
  expect_same_run(run_fleet(workload, kSessions, 2, /*batch_width=*/1),
                  run_fleet(workload, kSessions, 2, /*batch_width=*/4));
}

TEST(FleetBatchTest, WidthEightMatchesScalarFleet) {
  const auto workload = test_workload(2, 8.0);
  constexpr std::size_t kSessions = 8;
  expect_same_run(run_fleet(workload, kSessions, 1, /*batch_width=*/1),
                  run_fleet(workload, kSessions, 1, /*batch_width=*/8));
}

TEST(FleetBatchTest, RemainderSessionsRunScalar) {
  // 6 sessions on one worker with batch_width 4: one packed group of 4
  // plus 2 scalar stragglers. All six must match the scalar fleet.
  const auto workload = test_workload(2, 6.0);
  expect_same_run(run_fleet(workload, 6, 1, /*batch_width=*/1),
                  run_fleet(workload, 6, 1, /*batch_width=*/4));
}

// Placement is id % workers, so with 2 workers and 8 sessions the ids
// {0,2,4,6} pack into a width-4 group on worker 0 (and {1,3,5,7} on
// worker 1). Migrating session 2 mid-stream forces a CheckpointOut
// through the packed group, which must dissolve it and keep every
// stream — migrated and stay-behind lanes alike — byte-identical.
TEST(FleetBatchTest, MigrationDissolvesPackedGroupMidStream) {
  const auto workload = test_workload(3, 8.0);
  constexpr std::size_t kSessions = 8;  // ids {0,2,4,6} pack on worker 0
  const auto scalar = run_fleet(workload, kSessions, 2, /*batch_width=*/1);

  FleetConfig cfg;
  cfg.workers = 2;
  cfg.max_chunk = kChunk;
  cfg.batch_width = 4;
  SessionManager fleet(workload[0].fs, cfg);
  std::vector<core::SessionHandle> handles;
  handles.reserve(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) handles.push_back(fleet.open());
  fleet.start();

  std::vector<FleetBeat> sink;
  sink.reserve(1024);
  const std::size_t n = workload[0].ecg_mv.size();
  bool migrated = false;
  for (std::size_t i = 0; i < n; i += kChunk) {
    if (!migrated && i >= n / 2) {
      // Rip session 2 out of worker 0's packed group mid-stream. The
      // CheckpointOut dissolves the group; the remaining three lanes
      // (and the migrated one, now scalar on worker 1) must still
      // produce byte-identical streams.
      handles[2].migrate_to(1, sink);
      migrated = true;
    }
    const std::size_t len = std::min(kChunk, n - i);
    for (std::size_t s = 0; s < kSessions; ++s) {
      const synth::Recording& rec = workload[s % workload.size()];
      handles[s].push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                      dsp::SignalView(rec.z_ohm.data() + i, len), sink);
    }
  }
  ASSERT_TRUE(migrated);
  fleet.run_to_completion(sink);

  std::vector<std::vector<unsigned char>> streams(kSessions);
  for (const FleetBeat& fb : sink) {
    if (fb.end_of_session) continue;
    serialize_beat(fb.beat, streams[fb.session]);
  }
  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_FALSE(scalar.streams[s].empty());
    EXPECT_EQ(scalar.streams[s], streams[s])
        << "session " << s << " diverged after mid-stream migration";
  }
}

TEST(FleetBatchTest, MismatchedChunkLengthsDissolveCleanly) {
  // Lane 0 gets its mid-stream chunk split 64 -> 32+32 while the other
  // lanes stay on 64. The group cannot tick in lockstep past that point
  // and must dissolve; chunking is semantically invisible, so the
  // streams still match the scalar fleet fed uniform chunks.
  const auto workload = test_workload(2, 6.0);
  constexpr std::size_t kSessions = 4;
  const auto scalar = run_fleet(workload, kSessions, 1, /*batch_width=*/1);

  FleetConfig cfg;
  cfg.workers = 1;
  cfg.max_chunk = kChunk;
  cfg.batch_width = 4;
  SessionManager fleet(workload[0].fs, cfg);
  std::vector<core::SessionHandle> handles;
  handles.reserve(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) handles.push_back(fleet.open());
  fleet.start();

  std::vector<FleetBeat> sink;
  sink.reserve(1024);
  const std::size_t n = workload[0].ecg_mv.size();
  bool split_done = false;
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t len = std::min(kChunk, n - i);
    for (std::size_t s = 0; s < kSessions; ++s) {
      const synth::Recording& rec = workload[s % workload.size()];
      if (s == 0 && !split_done && i >= n / 2 && len == kChunk) {
        const std::size_t half = kChunk / 2;
        handles[0].push(dsp::SignalView(rec.ecg_mv.data() + i, half),
                        dsp::SignalView(rec.z_ohm.data() + i, half), sink);
        handles[0].push(dsp::SignalView(rec.ecg_mv.data() + i + half, half),
                        dsp::SignalView(rec.z_ohm.data() + i + half, half), sink);
        split_done = true;
        continue;
      }
      handles[s].push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                      dsp::SignalView(rec.z_ohm.data() + i, len), sink);
    }
  }
  ASSERT_TRUE(split_done);
  fleet.run_to_completion(sink);

  std::vector<std::vector<unsigned char>> streams(kSessions);
  for (const FleetBeat& fb : sink) {
    if (fb.end_of_session) continue;
    serialize_beat(fb.beat, streams[fb.session]);
  }
  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_FALSE(scalar.streams[s].empty());
    EXPECT_EQ(scalar.streams[s], streams[s])
        << "session " << s << " diverged after chunk-length dissolve";
  }
}

TEST(FleetBatchTest, ValidatesBatchWidth) {
  FleetConfig cfg;
  cfg.batch_width = 3;
  EXPECT_THROW(SessionManager fleet(250.0, cfg), std::invalid_argument);
  cfg.batch_width = 1;  // explicit scalar is fine
  EXPECT_NO_THROW(SessionManager fleet(250.0, cfg));
}

// The per-ISA auto width: batch_width = 0 must resolve to the width
// this build's register file carries without spilling — W=8 only on a
// 512-bit or 32-register file (AVX-512, NEON), W=4 on plain AVX2, and
// scalar everywhere the lane vector lowers to SSE2/scalar code. Keeps
// dsp::default_batch_width honest against dsp::lane_isa for whatever
// -march this test was compiled with.
TEST(FleetBatchTest, DefaultBatchWidthMatchesIsa) {
  const std::string isa = dsp::lane_isa();
  const std::size_t width = dsp::default_batch_width();
  if (isa == "avx512" || isa == "neon" || isa == "avx2") {
    // Plain AVX2 also defaults to 8: the two-half PairLanes64 lowering
    // keeps W=8 register-resident there (see dsp/simd.h).
    EXPECT_EQ(width, 8u);
  } else {
    EXPECT_EQ(width, 1u) << "ISA " << isa << " should not auto-batch";
  }
  if (width > 1) {
    EXPECT_TRUE(core::session_batch_width_supported(width));
  }

  FleetConfig cfg;
  ASSERT_EQ(cfg.batch_width, 0u) << "auto must stay the FleetConfig default";
  SessionManager fleet(250.0, cfg);
  EXPECT_EQ(fleet.resolved_batch_width(), width);

  cfg.batch_width = 1;
  SessionManager scalar_fleet(250.0, cfg);
  EXPECT_EQ(scalar_fleet.resolved_batch_width(), 1u);
}

} // namespace
