#include "core/pipeline.h"

#include "synth/recording.h"
#include "synth/subject.h"

#include "dsp/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icgkit::core {
namespace {

constexpr double kFs = 250.0;

synth::Recording device_recording(std::size_t subject_idx, synth::Position pos,
                                  double duration_s = 30.0, double f_hz = 50e3) {
  const auto roster = synth::paper_roster();
  synth::RecordingConfig cfg;
  cfg.duration_s = duration_s;
  const synth::SourceActivity src = generate_source(roster[subject_idx], cfg);
  return measure_device(roster[subject_idx], src, f_hz, pos);
}

TEST(PipelineTest, EndToEndOnThoracicRecording) {
  const auto roster = synth::paper_roster();
  synth::RecordingConfig rcfg;
  rcfg.duration_s = 30.0;
  const synth::SourceActivity src = generate_source(roster[0], rcfg);
  const synth::Recording rec = measure_thoracic(roster[0], src, 50e3);

  const BeatPipeline pipeline(kFs);
  const PipelineResult res = pipeline.process(rec.ecg_mv, rec.z_ohm);

  // ~36 beats at 72 bpm in 30 s; nearly all should be detected and usable.
  EXPECT_GT(res.r_peak_count, 30u);
  EXPECT_GT(res.summary.beats_used, 25u);
  EXPECT_NEAR(res.summary.hr_bpm, 72.0, 4.0);
  EXPECT_NEAR(res.z0_mean_ohm, rec.z0_mean_ohm, 1.0);
}

TEST(PipelineTest, RecoversGroundTruthIntervals) {
  const auto roster = synth::paper_roster();
  synth::RecordingConfig rcfg;
  rcfg.duration_s = 30.0;
  const synth::SourceActivity src = generate_source(roster[2], rcfg);
  const synth::Recording rec = measure_thoracic(roster[2], src, 50e3);

  const BeatPipeline pipeline(kFs);
  const PipelineResult res = pipeline.process(rec.ecg_mv, rec.z_ohm);

  // Ground-truth means over synthesized beats.
  dsp::Signal pep_truth, lvet_truth;
  for (const auto& b : rec.beats) {
    pep_truth.push_back(b.pep_s);
    lvet_truth.push_back(b.lvet_s);
  }
  ASSERT_GT(res.summary.beats_used, 20u);
  EXPECT_NEAR(res.summary.pep_s, dsp::mean(pep_truth), 0.015);
  // LVET carries a small negative offset: the third-derivative X
  // refinement targets the valve-closure incisura, which precedes the
  // trough bottom the synthesis truth marks; the offset scales with the
  // trough width (up to ~25 ms for this subject's long LVET).
  EXPECT_NEAR(res.summary.lvet_s, dsp::mean(lvet_truth), 0.030);
}

TEST(PipelineTest, WorksOnTouchDeviceAllPositions) {
  for (const auto pos : synth::kAllPositions) {
    const synth::Recording rec = device_recording(1, pos);
    const BeatPipeline pipeline(kFs);
    const PipelineResult res = pipeline.process(rec.ecg_mv, rec.z_ohm);
    EXPECT_GT(res.summary.beats_used, 15u) << "position " << static_cast<int>(pos);
    EXPECT_GT(res.summary.lvet_s, 0.24) << "position " << static_cast<int>(pos);
    EXPECT_LT(res.summary.lvet_s, 0.40) << "position " << static_cast<int>(pos);
    EXPECT_GT(res.summary.pep_s, 0.05) << "position " << static_cast<int>(pos);
    EXPECT_LT(res.summary.pep_s, 0.17) << "position " << static_cast<int>(pos);
  }
}

TEST(PipelineTest, BeatRecordsCarryDiagnostics) {
  const synth::Recording rec = device_recording(0, synth::Position::HoldToChest, 15.0);
  const BeatPipeline pipeline(kFs);
  const PipelineResult res = pipeline.process(rec.ecg_mv, rec.z_ohm);
  ASSERT_FALSE(res.beats.empty());
  for (const auto& beat : res.beats) {
    EXPECT_GT(beat.rr_s, 0.3);
    if (beat.usable()) {
      EXPECT_TRUE(beat.points.valid);
      EXPECT_GT(beat.hemo.sv_kubicek_ml, 0.0);
    }
  }
}

TEST(PipelineTest, MismatchedLengthsThrow) {
  const BeatPipeline pipeline(kFs);
  const dsp::Signal a(100, 0.0), b(50, 0.0);
  EXPECT_THROW(pipeline.process(a, b), std::invalid_argument);
}

TEST(PipelineTest, EmptyInputGivesEmptyResult) {
  const BeatPipeline pipeline(kFs);
  const PipelineResult res = pipeline.process(dsp::Signal{}, dsp::Signal{});
  EXPECT_TRUE(res.beats.empty());
  EXPECT_EQ(res.summary.beats_used, 0u);
}

TEST(StreamingPipelineTest, EmitsSameBeatsAsBatch) {
  const synth::Recording rec = device_recording(2, synth::Position::ArmsOutstretched, 20.0);
  const BeatPipeline batch(kFs);
  const PipelineResult batch_res = batch.process(rec.ecg_mv, rec.z_ohm);

  StreamingBeatPipeline streaming(kFs);
  std::vector<BeatRecord> streamed;
  const std::size_t chunk = 125; // 0.5 s chunks
  for (std::size_t i = 0; i < rec.ecg_mv.size(); i += chunk) {
    const std::size_t len = std::min(chunk, rec.ecg_mv.size() - i);
    const auto got = streaming.push(
        dsp::SignalView(rec.ecg_mv.data() + i, len), dsp::SignalView(rec.z_ohm.data() + i, len));
    streamed.insert(streamed.end(), got.begin(), got.end());
  }
  const auto tail = streaming.finish();
  streamed.insert(streamed.end(), tail.begin(), tail.end());

  // Streaming must find nearly the batch's beats (window-edge effects may
  // cost one beat) with matching R positions.
  EXPECT_GE(streamed.size() + 2, batch_res.beats.size());
  std::size_t matched = 0;
  for (const auto& s : streamed) {
    for (const auto& b : batch_res.beats) {
      if (std::llabs(static_cast<long long>(s.points.r) -
                     static_cast<long long>(b.points.r)) <= 2)
        ++matched;
    }
  }
  EXPECT_GE(matched + 2, streamed.size());
}

TEST(StreamingPipelineTest, EmitsEachBeatOnce) {
  const synth::Recording rec = device_recording(0, synth::Position::HoldToChest, 15.0);
  StreamingBeatPipeline streaming(kFs);
  std::vector<std::size_t> r_positions;
  const std::size_t chunk = 50; // 0.2 s chunks
  for (std::size_t i = 0; i < rec.ecg_mv.size(); i += chunk) {
    const std::size_t len = std::min(chunk, rec.ecg_mv.size() - i);
    for (const auto& beat : streaming.push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                                           dsp::SignalView(rec.z_ohm.data() + i, len)))
      r_positions.push_back(beat.points.r);
  }
  for (const auto& beat : streaming.finish()) r_positions.push_back(beat.points.r);

  ASSERT_GT(r_positions.size(), 10u);
  for (std::size_t i = 1; i < r_positions.size(); ++i)
    EXPECT_GT(r_positions[i], r_positions[i - 1] + 50) << "duplicate or out-of-order beat";
}

TEST(StreamingPipelineTest, ChunkMismatchThrows) {
  StreamingBeatPipeline streaming(kFs);
  const dsp::Signal a(10, 0.0), b(5, 0.0);
  EXPECT_THROW(streaming.push(a, b), std::invalid_argument);
}

TEST(StreamingPipelineTest, TracksConsumedSamples) {
  StreamingBeatPipeline streaming(kFs);
  const dsp::Signal a(100, 0.0);
  streaming.push(a, a);
  streaming.push(a, a);
  EXPECT_EQ(streaming.samples_consumed(), 200u);
}

} // namespace
} // namespace icgkit::core
