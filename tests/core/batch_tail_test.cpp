// The deferred beat tail's identity contract. PR 8 restructured every
// engine from "tick the tail inline after each front sample" to a
// two-phase chunk: the fused filter front runs over the whole chunk
// first, then the per-lane tail replays the queued per-sample emissions
// in the exact order the inline code used. These tests pin the claim
// that the restructuring is invisible: byte-identical BeatRecords and
// QualitySummarys at every chunking (chunk=1 degenerates to the old
// inline interleaving and serves as the reference), for the double and
// Q31 scalar engines and the lockstep batch engine, under severe
// corruption, and across a dissolve that lands exactly on a beat
// emission while the next beat's window is still pending in the rings.
#include "core/batch.h"
#include "core/pipeline.h"
#include "synth/recording.h"
#include "synth/scenario.h"
#include "synth/subject.h"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

namespace icgkit::core {
namespace {

constexpr double kFs = 250.0;
constexpr std::size_t kChunkSizes[] = {1, 7, 64, 1024};

synth::Recording make_recording(std::size_t subject_idx, double duration_s) {
  const auto roster = synth::paper_roster();
  synth::RecordingConfig cfg;
  cfg.duration_s = duration_s;
  const synth::SourceActivity src =
      generate_source(roster[subject_idx % roster.size()], cfg);
  return measure_device(roster[subject_idx % roster.size()], src, 50e3,
                        synth::Position::ArmsOutstretched);
}

void expect_identical_beat(const BeatRecord& a, const BeatRecord& b, std::size_t i,
                           std::size_t chunk) {
  const auto tag = [&] { return ::testing::Message() << "beat " << i << " chunk " << chunk; };
  EXPECT_EQ(a.points.r, b.points.r) << tag();
  EXPECT_EQ(a.points.b, b.points.b) << tag();
  EXPECT_EQ(a.points.b0, b.points.b0) << tag();
  EXPECT_EQ(a.points.c, b.points.c) << tag();
  EXPECT_EQ(a.points.x, b.points.x) << tag();
  EXPECT_EQ(a.points.valid, b.points.valid) << tag();
  EXPECT_EQ(a.points.b_method, b.points.b_method) << tag();
  EXPECT_EQ(a.points.c_amplitude, b.points.c_amplitude) << tag();
  EXPECT_EQ(a.flaws, b.flaws) << tag();
  EXPECT_EQ(a.rr_s, b.rr_s) << tag();
  EXPECT_EQ(a.signal.snr_db, b.signal.snr_db) << tag();
  EXPECT_EQ(a.signal.flatline_fraction, b.signal.flatline_fraction) << tag();
  EXPECT_EQ(a.signal.saturation_fraction, b.signal.saturation_fraction) << tag();
  EXPECT_EQ(a.hemo.pep_s, b.hemo.pep_s) << tag();
  EXPECT_EQ(a.hemo.lvet_s, b.hemo.lvet_s) << tag();
  EXPECT_EQ(a.hemo.hr_bpm, b.hemo.hr_bpm) << tag();
  EXPECT_EQ(a.hemo.dzdt_max, b.hemo.dzdt_max) << tag();
  EXPECT_EQ(a.hemo.sv_kubicek_ml, b.hemo.sv_kubicek_ml) << tag();
  EXPECT_EQ(a.hemo.sv_sramek_ml, b.hemo.sv_sramek_ml) << tag();
  EXPECT_EQ(a.hemo.co_kubicek_l_min, b.hemo.co_kubicek_l_min) << tag();
  EXPECT_EQ(a.hemo.tfc_per_kohm, b.hemo.tfc_per_kohm) << tag();
  ASSERT_EQ(a.ensemble_points.has_value(), b.ensemble_points.has_value()) << tag();
  if (a.ensemble_points.has_value()) {
    EXPECT_EQ(a.ensemble_points->r, b.ensemble_points->r) << tag();
    EXPECT_EQ(a.ensemble_points->c, b.ensemble_points->c) << tag();
    EXPECT_EQ(a.ensemble_points->b, b.ensemble_points->b) << tag();
    EXPECT_EQ(a.ensemble_points->x, b.ensemble_points->x) << tag();
  }
}

void expect_identical_summary(const QualitySummary& a, const QualitySummary& b,
                              std::size_t chunk) {
  const auto tag = [&] { return ::testing::Message() << "chunk " << chunk; };
  EXPECT_EQ(a.beats, b.beats) << tag();
  EXPECT_EQ(a.usable, b.usable) << tag();
  for (std::size_t f = 0; f < std::size(a.flaw_counts); ++f)
    EXPECT_EQ(a.flaw_counts[f], b.flaw_counts[f]) << tag() << " flaw " << f;
  EXPECT_EQ(a.ecg_dropouts, b.ecg_dropouts) << tag();
  EXPECT_EQ(a.z_dropouts, b.z_dropouts) << tag();
  EXPECT_EQ(a.detector_resets, b.detector_resets) << tag();
  EXPECT_EQ(a.ensemble_folds_skipped, b.ensemble_folds_skipped) << tag();
  EXPECT_EQ(a.snr_beats, b.snr_beats) << tag();
  EXPECT_EQ(a.sum_snr_db, b.sum_snr_db) << tag();
  EXPECT_EQ(a.min_snr_db, b.min_snr_db) << tag();
}

/// Runs one scalar engine over the recording at the given chunking and
/// returns (beats, final quality summary).
template <typename Engine>
std::pair<std::vector<BeatRecord>, QualitySummary> run_chunked(
    const synth::Recording& rec, std::size_t chunk, const PipelineConfig& cfg = {}) {
  Engine engine(kFs, cfg);
  std::vector<BeatRecord> beats;
  const std::size_t n = rec.ecg_mv.size();
  for (std::size_t i = 0; i < n; i += chunk) {
    const std::size_t len = std::min(chunk, n - i);
    engine.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                     dsp::SignalView(rec.z_ohm.data() + i, len), beats);
  }
  engine.finish_into(beats);
  return {std::move(beats), engine.quality_summary()};
}

// chunk=1 interleaves front and tail exactly like the pre-refactor
// inline code (every queued range is a single sample, drained
// immediately), so it is the inline-tail reference the larger chunks
// must match byte-for-byte.
TEST(BatchTailTest, ScalarDeferredTailIsChunkInvariant) {
  PipelineConfig cfg;
  cfg.enable_ensemble = true;  // ensemble fold is part of the deferred tail
  const synth::Recording rec = make_recording(0, 30.0);
  const auto [ref_beats, ref_summary] =
      run_chunked<StreamingBeatPipeline>(rec, 1, cfg);
  ASSERT_GT(ref_beats.size(), 10u);

  for (const std::size_t chunk : kChunkSizes) {
    if (chunk == 1) continue;
    const auto [beats, summary] = run_chunked<StreamingBeatPipeline>(rec, chunk, cfg);
    ASSERT_EQ(beats.size(), ref_beats.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < beats.size(); ++i)
      expect_identical_beat(beats[i], ref_beats[i], i, chunk);
    expect_identical_summary(summary, ref_summary, chunk);
  }
}

TEST(BatchTailTest, FixedDeferredTailIsChunkInvariant) {
  const synth::Recording rec = make_recording(1, 30.0);
  const auto [ref_beats, ref_summary] = run_chunked<FixedStreamingBeatPipeline>(rec, 1);
  ASSERT_GT(ref_beats.size(), 10u);

  for (const std::size_t chunk : kChunkSizes) {
    if (chunk == 1) continue;
    const auto [beats, summary] = run_chunked<FixedStreamingBeatPipeline>(rec, chunk);
    ASSERT_EQ(beats.size(), ref_beats.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < beats.size(); ++i)
      expect_identical_beat(beats[i], ref_beats[i], i, chunk);
    expect_identical_summary(summary, ref_summary, chunk);
  }
}

TEST(BatchTailTest, BatchDeferredTailMatchesScalarUnderSevereCorruption) {
  // Severe per-lane corruption drives the tail's divergent control flow
  // (dropout gaps, soft resets, rejected beats) while the lockstep front
  // stays uniform; every chunking must still reproduce the scalar run.
  constexpr std::size_t W = 4;
  std::vector<synth::Recording> recs;
  std::vector<std::vector<BeatRecord>> expected;
  std::vector<QualitySummary> expected_q;
  for (std::size_t l = 0; l < W; ++l) {
    synth::Recording rec = make_recording(l, 25.0);
    apply_scenario(rec, synth::ScenarioSpec::severe(), /*seed=*/211 + l);
    recs.push_back(std::move(rec));
    auto [beats, summary] = run_chunked<StreamingBeatPipeline>(recs.back(), 1);
    expected.push_back(std::move(beats));
    expected_q.push_back(summary);
  }

  for (const std::size_t chunk : kChunkSizes) {
    SessionBatch<W> batch(kFs);
    {
      std::vector<std::vector<std::uint8_t>> blobs;
      for (std::size_t l = 0; l < W; ++l)
        blobs.push_back(StreamingBeatPipeline(kFs).checkpoint());
      batch.pack(blobs);
    }
    std::array<std::vector<BeatRecord>, W> beats;
    std::array<const double*, W> ecg{}, z{};
    const std::size_t n = recs[0].ecg_mv.size();
    for (std::size_t i = 0; i < n; i += chunk) {
      const std::size_t len = std::min(chunk, n - i);
      for (std::size_t l = 0; l < W; ++l) {
        ecg[l] = recs[l].ecg_mv.data() + i;
        z[l] = recs[l].z_ohm.data() + i;
      }
      batch.push(ecg.data(), z.data(), len, beats.data());
    }
    batch.finish(beats.data());
    for (std::size_t l = 0; l < W; ++l) {
      ASSERT_EQ(beats[l].size(), expected[l].size()) << "lane " << l << " chunk " << chunk;
      for (std::size_t i = 0; i < beats[l].size(); ++i)
        expect_identical_beat(beats[l][i], expected[l][i], i, chunk);
      expect_identical_summary(batch.lane_quality(l), expected_q[l], chunk);
    }
  }
}

TEST(BatchTailTest, DissolveOnBeatEmissionBoundaryStaysIdentical) {
  // Worst-case checkpoint cut for the deferred tail: dissolve the batch
  // at exactly the sample where a lane emits a beat, i.e. while the
  // NEXT beat's window is already partially buffered in the rings and
  // the just-emitted beat left the pending queue this very sample. The
  // unpacked blob must let a fresh scalar engine resume byte-identically.
  constexpr std::size_t W = 4;
  PipelineConfig cfg;
  cfg.enable_ensemble = true;
  std::vector<synth::Recording> recs;
  std::vector<std::vector<BeatRecord>> expected;
  std::vector<QualitySummary> expected_q;
  for (std::size_t l = 0; l < W; ++l) {
    recs.push_back(make_recording(l, 20.0));
    auto [beats, summary] = run_chunked<StreamingBeatPipeline>(recs[l], 1, cfg);
    ASSERT_GT(beats.size(), 6u) << "lane " << l;
    expected.push_back(std::move(beats));
    expected_q.push_back(summary);
  }

  // Single-sample pushes until lane 0 has emitted its fourth beat: the
  // dissolve boundary then coincides with a beat emission on lane 0
  // while the other lanes sit mid-window at unrelated phases.
  SessionBatch<W> batch(kFs, cfg);
  std::vector<std::vector<std::uint8_t>> blobs;
  for (std::size_t l = 0; l < W; ++l)
    blobs.push_back(StreamingBeatPipeline(kFs, cfg).checkpoint());
  batch.pack(blobs);

  std::array<std::vector<BeatRecord>, W> beats;
  std::array<const double*, W> ecg{}, z{};
  const std::size_t n = recs[0].ecg_mv.size();
  std::size_t cut = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = 0; l < W; ++l) {
      ecg[l] = recs[l].ecg_mv.data() + i;
      z[l] = recs[l].z_ohm.data() + i;
    }
    batch.push(ecg.data(), z.data(), 1, beats.data());
    if (beats[0].size() >= 4) {
      cut = i + 1;
      break;
    }
  }
  ASSERT_GT(cut, 0u) << "lane 0 never emitted four beats";
  ASSERT_LT(cut, n);

  batch.unpack(blobs);
  for (std::size_t l = 0; l < W; ++l) {
    auto resumed = std::make_unique<StreamingBeatPipeline>(kFs, cfg);
    resumed->restore(blobs[l]);
    resumed->push_into(dsp::SignalView(recs[l].ecg_mv.data() + cut, n - cut),
                       dsp::SignalView(recs[l].z_ohm.data() + cut, n - cut), beats[l]);
    resumed->finish_into(beats[l]);
    ASSERT_EQ(beats[l].size(), expected[l].size()) << "lane " << l;
    for (std::size_t i = 0; i < beats[l].size(); ++i)
      expect_identical_beat(beats[l][i], expected[l][i], i, /*chunk=*/1);
    expect_identical_summary(resumed->quality_summary(), expected_q[l], 1);
  }
}

} // namespace
} // namespace icgkit::core
