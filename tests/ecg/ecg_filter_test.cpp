#include "ecg/ecg_filter.h"

#include "dsp/fft.h"
#include "dsp/stats.h"
#include "synth/artifacts.h"
#include "synth/ecg_synth.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace icgkit::ecg {
namespace {

constexpr double kFs = 250.0;

dsp::Signal clean_ecg(double duration_s, double rr = 0.8) {
  const std::size_t beats = static_cast<std::size_t>(duration_s / rr) + 2;
  const auto out = synth::synthesize_ecg(std::vector<double>(beats, rr), kFs);
  return out.ecg_mv;
}

TEST(EcgFilterTest, RemovesBaselineWander) {
  dsp::Signal ecg = clean_ecg(20.0);
  dsp::Signal contaminated = ecg;
  for (std::size_t i = 0; i < contaminated.size(); ++i) {
    const double t = static_cast<double>(i) / kFs;
    contaminated[i] += 0.8 * std::sin(2.0 * std::numbers::pi * 0.2 * t);
  }
  const EcgFilter filter(kFs);
  const dsp::Signal y = filter.apply(contaminated);
  // Wander power (< 0.5 Hz) must drop by at least 20 dB.
  const dsp::Psd before = dsp::welch_psd(contaminated, kFs);
  const dsp::Psd after = dsp::welch_psd(y, kFs);
  const double wander_before = dsp::band_power(before, 0.05, 0.5);
  const double wander_after = dsp::band_power(after, 0.05, 0.5);
  EXPECT_LT(wander_after, 0.01 * wander_before);
}

TEST(EcgFilterTest, PreservesQrsAmplitude) {
  const dsp::Signal ecg = clean_ecg(20.0);
  const EcgFilter filter(kFs);
  const dsp::Signal y = filter.apply(ecg);
  // R peaks survive with most of their amplitude (the 33-tap FIR softens
  // them somewhat; > 60 % retention is the practical bound).
  const double peak_in = dsp::percentile(ecg, 99.9);
  const double peak_out = dsp::percentile(y, 99.9);
  EXPECT_GT(peak_out, 0.6 * peak_in);
}

TEST(EcgFilterTest, SuppressesHighFrequencyNoise) {
  dsp::Signal ecg = clean_ecg(20.0);
  synth::Rng rng(3);
  const dsp::Signal noise = synth::white_noise(ecg.size(), 0.2, rng);
  dsp::Signal contaminated(ecg.size());
  for (std::size_t i = 0; i < ecg.size(); ++i) contaminated[i] = ecg[i] + noise[i];
  const EcgFilter filter(kFs);
  const dsp::Signal y = filter.apply(contaminated);
  const dsp::Psd after = dsp::welch_psd(y, kFs);
  const dsp::Psd before = dsp::welch_psd(contaminated, kFs);
  const double hf_after = dsp::band_power(after, 60.0, 120.0);
  const double hf_before = dsp::band_power(before, 60.0, 120.0);
  EXPECT_LT(hf_after, 0.05 * hf_before);
}

TEST(EcgFilterTest, BaselineEstimateTracksSlowDrift) {
  dsp::Signal ecg = clean_ecg(20.0);
  dsp::Signal drift(ecg.size());
  for (std::size_t i = 0; i < ecg.size(); ++i) {
    const double t = static_cast<double>(i) / kFs;
    drift[i] = 0.6 * std::sin(2.0 * std::numbers::pi * 0.15 * t);
    ecg[i] += drift[i];
  }
  const EcgFilter filter(kFs);
  const dsp::Signal est = filter.baseline_estimate(ecg);
  // Max error is dominated by T-wave leakage spikes (the T width is
  // marginal for the 0.2 s / 0.3 s structuring elements of Sun et al.);
  // judge tracking by RMS instead and bound the worst case loosely.
  double rms_err = 0.0, max_err = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 500; i + 500 < ecg.size(); ++i) {
    const double e = est[i] - drift[i];
    rms_err += e * e;
    max_err = std::max(max_err, std::abs(e));
    ++count;
  }
  EXPECT_LT(std::sqrt(rms_err / static_cast<double>(count)), 0.12);
  EXPECT_LT(max_err, 0.40);
}

TEST(EcgFilterTest, AblationSwitchesWork) {
  EcgFilterConfig cfg;
  cfg.enable_morphological_stage = false;
  cfg.enable_fir_stage = false;
  const EcgFilter identity(kFs, cfg);
  const dsp::Signal x = clean_ecg(5.0);
  const dsp::Signal y = identity.apply(x);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); i += 50) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(EcgFilterTest, MatchesPaperFilterSpec) {
  const EcgFilter filter(kFs);
  EXPECT_EQ(filter.fir().order(), 32u);
  // Cut-offs verified through the response: DC rejected, 20 Hz passed.
  EXPECT_LT(dsp::fir_magnitude_at(filter.fir(), 0.0, kFs), 1e-9);
  EXPECT_GT(dsp::fir_magnitude_at(filter.fir(), 20.0, kFs), 0.9);
}

TEST(EcgFilterTest, RejectsBadFs) {
  EXPECT_THROW(EcgFilter(0.0), std::invalid_argument);
}

} // namespace
} // namespace icgkit::ecg
