#include "ecg/pan_tompkins.h"

#include "ecg/ecg_filter.h"
#include "ecg/heart_rate.h"
#include "synth/artifacts.h"
#include "synth/ecg_synth.h"
#include "synth/rr_process.h"

#include "dsp/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icgkit::ecg {
namespace {

constexpr double kFs = 250.0;

struct MatchStats {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  double mean_abs_error_s = 0.0;

  [[nodiscard]] double sensitivity() const {
    const double denom = static_cast<double>(true_positives + false_negatives);
    return denom > 0 ? static_cast<double>(true_positives) / denom : 0.0;
  }
  [[nodiscard]] double ppv() const {
    const double denom = static_cast<double>(true_positives + false_positives);
    return denom > 0 ? static_cast<double>(true_positives) / denom : 0.0;
  }
};

// Greedy matching of detections to ground-truth R times within a window.
MatchStats match_detections(const std::vector<double>& truth, const std::vector<double>& det,
                            double tol_s = 0.05) {
  MatchStats m;
  std::vector<bool> used(det.size(), false);
  double err_acc = 0.0;
  for (const double t : truth) {
    double best = tol_s;
    std::size_t best_i = det.size();
    for (std::size_t i = 0; i < det.size(); ++i) {
      if (used[i]) continue;
      const double e = std::abs(det[i] - t);
      if (e <= best) {
        best = e;
        best_i = i;
      }
    }
    if (best_i < det.size()) {
      used[best_i] = true;
      ++m.true_positives;
      err_acc += best;
    } else {
      ++m.false_negatives;
    }
  }
  for (const bool u : used)
    if (!u) ++m.false_positives;
  if (m.true_positives > 0) m.mean_abs_error_s = err_acc / static_cast<double>(m.true_positives);
  return m;
}

TEST(PanTompkinsTest, PerfectOnCleanEcg) {
  const auto rr = std::vector<double>(30, 0.8);
  const auto gen = synth::synthesize_ecg(rr, kFs);
  const PanTompkins pt(kFs);
  const QrsDetection det = pt.detect(gen.ecg_mv);
  const MatchStats m = match_detections(gen.r_times_s, r_peak_times(det, kFs));
  EXPECT_EQ(m.false_negatives, 0u);
  EXPECT_EQ(m.false_positives, 0u);
  EXPECT_LT(m.mean_abs_error_s, 0.01);
}

TEST(PanTompkinsTest, HandlesHrVariability) {
  synth::Rng rng(11);
  synth::RrConfig rrcfg;
  rrcfg.mean_hr_bpm = 70.0;
  const auto rr = synth::generate_rr_intervals(rrcfg, 60.0, rng);
  const auto gen = synth::synthesize_ecg(rr, kFs);
  const PanTompkins pt(kFs);
  const QrsDetection det = pt.detect(gen.ecg_mv);
  const MatchStats m = match_detections(gen.r_times_s, r_peak_times(det, kFs));
  EXPECT_GT(m.sensitivity(), 0.98);
  EXPECT_GT(m.ppv(), 0.98);
}

TEST(PanTompkinsTest, RobustToModerateNoise) {
  const auto rr = std::vector<double>(40, 0.85);
  auto gen = synth::synthesize_ecg(rr, kFs);
  synth::Rng rng(12);
  const dsp::Signal noise = synth::white_noise(gen.ecg_mv.size(), 0.08, rng);
  const dsp::Signal mains =
      synth::powerline_artifact(gen.ecg_mv.size(), kFs, 0.1, 50.0, rng);
  for (std::size_t i = 0; i < gen.ecg_mv.size(); ++i)
    gen.ecg_mv[i] += noise[i] + mains[i];
  const PanTompkins pt(kFs);
  const QrsDetection det = pt.detect(gen.ecg_mv);
  const MatchStats m = match_detections(gen.r_times_s, r_peak_times(det, kFs));
  EXPECT_GT(m.sensitivity(), 0.97);
  EXPECT_GT(m.ppv(), 0.97);
}

TEST(PanTompkinsTest, RobustToBaselineWanderAfterFiltering) {
  const auto rr = std::vector<double>(40, 0.8);
  auto gen = synth::synthesize_ecg(rr, kFs);
  for (std::size_t i = 0; i < gen.ecg_mv.size(); ++i) {
    const double t = static_cast<double>(i) / kFs;
    gen.ecg_mv[i] += 1.0 * std::sin(2.0 * std::numbers::pi * 0.3 * t);
  }
  const EcgFilter filter(kFs);
  const dsp::Signal cleaned = filter.apply(gen.ecg_mv);
  const PanTompkins pt(kFs);
  const MatchStats m =
      match_detections(gen.r_times_s, r_peak_times(pt.detect(cleaned), kFs));
  EXPECT_GT(m.sensitivity(), 0.97);
}

TEST(PanTompkinsTest, DoesNotDoubleCountTWaves) {
  // Exaggerated T waves must not produce extra detections.
  synth::EcgSynthConfig cfg;
  cfg.waves = synth::EcgSynthConfig::default_waves();
  cfg.waves[4].amplitude *= 2.0; // big T
  const auto rr = std::vector<double>(30, 0.9);
  const auto gen = synth::synthesize_ecg(rr, kFs, cfg);
  const PanTompkins pt(kFs);
  const MatchStats m =
      match_detections(gen.r_times_s, r_peak_times(pt.detect(gen.ecg_mv), kFs));
  EXPECT_EQ(m.false_positives, 0u);
  EXPECT_GT(m.sensitivity(), 0.97);
}

TEST(PanTompkinsTest, SearchbackRecoversAttenuatedBeat) {
  // One beat at 40 % amplitude: primary thresholds may miss it; the
  // search-back should recover it.
  const auto rr = std::vector<double>(20, 0.8);
  auto gen = synth::synthesize_ecg(rr, kFs);
  const std::size_t target = static_cast<std::size_t>(gen.r_times_s[10] * kFs);
  for (std::size_t i = target - 30; i < target + 30 && i < gen.ecg_mv.size(); ++i)
    gen.ecg_mv[i] *= 0.4;
  const PanTompkins pt(kFs);
  const MatchStats m =
      match_detections(gen.r_times_s, r_peak_times(pt.detect(gen.ecg_mv), kFs));
  EXPECT_GE(m.sensitivity(), 0.95);
}

TEST(PanTompkinsTest, ShortSignalReturnsEmpty) {
  const PanTompkins pt(kFs);
  const dsp::Signal x(100, 0.0);
  const QrsDetection det = pt.detect(x);
  EXPECT_TRUE(det.r_samples.empty());
}

TEST(PanTompkinsTest, RrIntervalsConsistent) {
  const auto rr = std::vector<double>(25, 0.75);
  const auto gen = synth::synthesize_ecg(rr, kFs);
  const PanTompkins pt(kFs);
  const QrsDetection det = pt.detect(gen.ecg_mv);
  ASSERT_GE(det.rr_intervals_s.size(), 20u);
  for (const double v : det.rr_intervals_s) EXPECT_NEAR(v, 0.75, 0.03);
}

TEST(PanTompkinsTest, RejectsBadConfig) {
  EXPECT_THROW(PanTompkins(0.0), std::invalid_argument);
  PanTompkinsConfig cfg;
  cfg.bandpass_low_hz = 20.0;
  cfg.bandpass_high_hz = 10.0;
  EXPECT_THROW(PanTompkins(kFs, cfg), std::invalid_argument);
}

class PanTompkinsNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(PanTompkinsNoiseSweep, SensitivityDegradesGracefully) {
  const double sigma = GetParam();
  const auto rr = std::vector<double>(40, 0.8);
  auto gen = synth::synthesize_ecg(rr, kFs);
  synth::Rng rng(static_cast<std::uint64_t>(sigma * 1000) + 1);
  const dsp::Signal noise = synth::white_noise(gen.ecg_mv.size(), sigma, rng);
  for (std::size_t i = 0; i < gen.ecg_mv.size(); ++i) gen.ecg_mv[i] += noise[i];
  const PanTompkins pt(kFs);
  const MatchStats m =
      match_detections(gen.r_times_s, r_peak_times(pt.detect(gen.ecg_mv), kFs));
  // Up to sigma = 0.15 mV (SNR ~ 16 dB wrt 1 mV R) sensitivity stays high.
  EXPECT_GT(m.sensitivity(), 0.95) << "sigma=" << sigma;
  EXPECT_GT(m.ppv(), 0.93) << "sigma=" << sigma;
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, PanTompkinsNoiseSweep,
                         ::testing::Values(0.0, 0.02, 0.05, 0.10, 0.15));

TEST(HeartRateTest, StatsOnCleanSeries) {
  const std::vector<double> rr(20, 0.8);
  const HeartRateStats s = heart_rate_stats(rr);
  EXPECT_NEAR(s.mean_bpm, 75.0, 1e-9);
  EXPECT_NEAR(s.median_bpm, 75.0, 1e-9);
  EXPECT_NEAR(s.sdnn_ms, 0.0, 1e-9);
  EXPECT_EQ(s.beat_count, 20u);
}

TEST(HeartRateTest, FiltersArtifacts) {
  std::vector<double> rr(10, 0.8);
  rr.push_back(5.0);   // dropout
  rr.push_back(0.05);  // double detection
  const HeartRateStats s = heart_rate_stats(rr);
  EXPECT_EQ(s.beat_count, 10u);
  EXPECT_NEAR(s.mean_bpm, 75.0, 1e-9);
}

TEST(HeartRateTest, EmptyInputSafe) {
  const HeartRateStats s = heart_rate_stats({});
  EXPECT_EQ(s.beat_count, 0u);
  EXPECT_DOUBLE_EQ(s.mean_bpm, 0.0);
}

TEST(HeartRateTest, RmssdReflectsAlternans) {
  std::vector<double> rr;
  for (int i = 0; i < 20; ++i) rr.push_back(i % 2 == 0 ? 0.78 : 0.82);
  const HeartRateStats s = heart_rate_stats(rr);
  EXPECT_NEAR(s.rmssd_ms, 40.0, 2.0);
}

TEST(HeartRateTest, InstantaneousSeries) {
  const std::vector<double> rr{0.8, 0.75, 5.0, 0.85};
  const auto hr = instantaneous_hr(rr);
  ASSERT_EQ(hr.size(), 3u);
  EXPECT_NEAR(hr[0], 75.0, 1e-9);
  EXPECT_NEAR(hr[1], 80.0, 1e-9);
  EXPECT_NEAR(hr[2], 60.0 / 0.85, 1e-9);
}

} // namespace
} // namespace icgkit::ecg
