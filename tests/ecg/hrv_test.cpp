#include "ecg/hrv.h"

#include "synth/rng.h"
#include "synth/rr_process.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace icgkit::ecg {
namespace {

// RR series with a single sinusoidal modulation at `freq` Hz.
std::vector<double> modulated_rr(double mean_rr, double mod_freq, double mod_amp,
                                 double duration_s) {
  std::vector<double> rr;
  double t = 0.0;
  while (t < duration_s) {
    const double v = mean_rr + mod_amp * std::sin(2.0 * std::numbers::pi * mod_freq * t);
    rr.push_back(v);
    t += v;
  }
  return rr;
}

TEST(HrvTest, TooShortSeriesIsInvalid) {
  const HrvSpectrum s = hrv_spectrum(std::vector<double>(10, 0.8));
  EXPECT_FALSE(s.valid());
}

TEST(HrvTest, ConstantRrHasNegligiblePower) {
  const HrvSpectrum s = hrv_spectrum(std::vector<double>(300, 0.8));
  ASSERT_TRUE(s.freq_hz.size() > 0);
  EXPECT_LT(s.total_power_ms2, 1.0); // < 1 ms^2 residual (interpolation noise)
}

TEST(HrvTest, PureLfModulationLandsInLfBand) {
  const auto rr = modulated_rr(0.8, 0.095, 0.04, 300.0);
  const HrvSpectrum s = hrv_spectrum(rr);
  ASSERT_TRUE(s.valid());
  EXPECT_GT(s.lf_power_ms2, 10.0 * s.hf_power_ms2);
  EXPECT_GT(s.lf_hf_ratio, 10.0);
}

TEST(HrvTest, PureHfModulationLandsInHfBand) {
  const auto rr = modulated_rr(0.8, 0.25, 0.04, 300.0);
  const HrvSpectrum s = hrv_spectrum(rr);
  ASSERT_TRUE(s.valid());
  EXPECT_GT(s.hf_power_ms2, 10.0 * s.lf_power_ms2);
  EXPECT_LT(s.lf_hf_ratio, 0.1);
}

TEST(HrvTest, PowerScalesWithModulationDepth) {
  const auto small = hrv_spectrum(modulated_rr(0.8, 0.25, 0.02, 300.0));
  const auto large = hrv_spectrum(modulated_rr(0.8, 0.25, 0.04, 300.0));
  // Doubling amplitude quadruples power.
  EXPECT_NEAR(large.hf_power_ms2 / small.hf_power_ms2, 4.0, 0.8);
}

TEST(HrvTest, ArtifactsGatedOut) {
  auto rr = modulated_rr(0.8, 0.25, 0.03, 300.0);
  rr[50] = 4.0;  // dropout
  rr[150] = 0.1; // double-detection
  const HrvSpectrum s = hrv_spectrum(rr);
  ASSERT_TRUE(s.valid());
  // Still HF-dominated; the spikes must not leak broadband power.
  EXPECT_GT(s.hf_power_ms2, 3.0 * s.lf_power_ms2);
}

TEST(HrvTest, SynthRrProcessShowsBothPeaks) {
  // End-to-end against the synthesizer: the RR process embeds a Mayer
  // wave (0.1 Hz) and RSA at the breathing rate (0.25 Hz); both bands
  // must carry clear power.
  synth::Rng rng(42);
  synth::RrConfig cfg;
  cfg.mayer_fraction = 0.03;
  cfg.rsa_fraction = 0.03;
  cfg.jitter_fraction = 0.005;
  const auto rr = synth::generate_rr_intervals(cfg, 300.0, rng);
  const HrvSpectrum s = hrv_spectrum(rr);
  ASSERT_TRUE(s.valid());
  EXPECT_GT(s.lf_power_ms2, 20.0);
  EXPECT_GT(s.hf_power_ms2, 20.0);
  EXPECT_GT(s.lf_hf_ratio, 0.2);
  EXPECT_LT(s.lf_hf_ratio, 5.0);
}

} // namespace
} // namespace icgkit::ecg
