#include "dsp/resample.h"

#include "dsp/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace icgkit::dsp {
namespace {

TEST(ResampleTest, IdentityWhenRatesEqual) {
  const Signal x{1.0, 2.0, 3.0, 4.0};
  const Signal y = resample_linear(x, 100.0, 100.0);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-12);
}

TEST(ResampleTest, UpsampleDoublesLength) {
  const Signal x{0.0, 1.0, 2.0};
  const Signal y = resample_linear(x, 100.0, 200.0);
  ASSERT_EQ(y.size(), 5u);
  EXPECT_NEAR(y[1], 0.5, 1e-12);
  EXPECT_NEAR(y[3], 1.5, 1e-12);
}

TEST(ResampleTest, DownsamplePreservesSine) {
  const double fs_in = 2000.0;
  const double fs_out = 250.0;
  Signal x(4000);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(2.0 * std::numbers::pi * 5.0 * static_cast<double>(i) / fs_in);
  const Signal y = resample_linear(x, fs_in, fs_out);
  // Check the value at t = 0.1 s.
  const std::size_t idx = static_cast<std::size_t>(0.1 * fs_out);
  EXPECT_NEAR(y[idx], std::sin(2.0 * std::numbers::pi * 5.0 * 0.1), 1e-3);
}

TEST(ResampleTest, EmptyAndSingleton) {
  EXPECT_TRUE(resample_linear(Signal{}, 100.0, 50.0).empty());
  const Signal y = resample_linear(Signal{2.5}, 100.0, 50.0);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 2.5);
}

TEST(ResampleTest, RejectsBadRates) {
  EXPECT_THROW(resample_linear(Signal{1.0}, 0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(resample_linear(Signal{1.0}, 100.0, -1.0), std::invalid_argument);
}

TEST(ResampleTest, DecimateFactorOneCopies) {
  const Signal x{1.0, 2.0, 3.0};
  const Signal y = decimate(x, 1, 250.0);
  ASSERT_EQ(y.size(), x.size());
}

TEST(ResampleTest, DecimateSuppressesAlias) {
  // A 90 Hz tone at fs=1000 decimated by 4 (fs=250) would alias to 90 Hz
  // (still below new Nyquist) -- use 190 Hz which would alias to 60 Hz.
  const double fs = 1000.0;
  Signal x(8000);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(2.0 * std::numbers::pi * 190.0 * static_cast<double>(i) / fs);
  const Signal y = decimate(x, 4, fs);
  // The anti-alias filter (cut 0.4*250=100 Hz) must remove the 190 Hz tone.
  Signal mid(y.begin() + 100, y.end() - 100);
  EXPECT_LT(rms(mid), 0.05);
}

TEST(ResampleTest, DecimatePreservesInBandTone) {
  const double fs = 1000.0;
  Signal x(8000);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(2.0 * std::numbers::pi * 10.0 * static_cast<double>(i) / fs);
  const Signal y = decimate(x, 4, fs);
  Signal mid(y.begin() + 100, y.end() - 100);
  EXPECT_NEAR(rms(mid), 1.0 / std::sqrt(2.0), 0.02);
}

TEST(ResampleTest, DecimateRejectsZeroFactor) {
  EXPECT_THROW(decimate(Signal{1.0}, 0, 100.0), std::invalid_argument);
}

} // namespace
} // namespace icgkit::dsp
