// Streaming counterparts vs their batch references: the streaming engine
// rests on these stages being (a) chunk-size invariant and (b) equal to
// the batch kernels they replace (exactly for morphology/moving/fixed
// point, to filtfilt-level accuracy for the zero-phase FIR stages).
#include "dsp/butterworth.h"
#include "dsp/filtfilt.h"
#include "dsp/fir_design.h"
#include "dsp/fixed_point.h"
#include "dsp/morphology.h"
#include "dsp/moving.h"
#include "synth/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace icgkit::dsp {
namespace {

constexpr double kFs = 250.0;

Signal noisy_signal(std::size_t n, std::uint64_t seed) {
  synth::Rng rng(seed);
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / kFs;
    x[i] = std::sin(2.0 * std::numbers::pi * 1.3 * t) +
           0.4 * std::sin(2.0 * std::numbers::pi * 17.0 * t) + 0.2 * rng.normal();
  }
  return x;
}

Signal run_streaming(StreamingZeroPhaseFir& st, SignalView x, std::size_t chunk) {
  Signal y;
  for (std::size_t i = 0; i < x.size(); i += chunk)
    st.process_chunk(x.subspan(i, std::min(chunk, x.size() - i)), y);
  st.finish(y);
  return y;
}

TEST(ZeroPhaseKernelTest, FirKernelMagnitudeIsSquared) {
  const FirCoefficients h = design_bandpass(32, 0.05, 40.0, kFs);
  const FirCoefficients g = zero_phase_fir_kernel(h);
  ASSERT_EQ(g.taps.size(), 2 * h.taps.size() - 1);
  for (const double f : {0.0, 5.0, 20.0, 60.0, 100.0}) {
    const double mh = fir_magnitude_at(h, f, kFs);
    const double mg = fir_magnitude_at(g, f, kFs);
    EXPECT_NEAR(mg, mh * mh, 1e-9) << "f=" << f;
  }
}

TEST(ZeroPhaseKernelTest, SosKernelMagnitudeIsSquared) {
  const SosFilter lp = butterworth_lowpass(4, 20.0, kFs);
  const FirCoefficients g = zero_phase_sos_kernel(lp);
  ASSERT_EQ(g.taps.size() % 2, 1u);
  for (const double f : {0.0, 5.0, 15.0, 20.0, 40.0}) {
    const double mh = sos_magnitude_at(lp, f, kFs);
    const double mg = fir_magnitude_at(g, f, kFs);
    EXPECT_NEAR(mg, mh * mh, 1e-4) << "f=" << f;
  }
}

TEST(StreamingZeroPhaseFirTest, MatchesFiltfiltFir) {
  const FirCoefficients h = design_bandpass(32, 0.05, 40.0, kFs);
  const Signal x = noisy_signal(2000, 7);
  const Signal ref = filtfilt_fir(h, x);
  StreamingZeroPhaseFir st(zero_phase_fir_kernel(h));
  const Signal y = run_streaming(st, x, 64);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y[i], ref[i], 1e-9) << "i=" << i;
}

TEST(StreamingZeroPhaseFirTest, ChunkSizeInvariant) {
  const FirCoefficients h = design_bandpass(32, 0.05, 40.0, kFs);
  const Signal x = noisy_signal(1500, 8);
  const FirCoefficients g = zero_phase_fir_kernel(h);
  StreamingZeroPhaseFir a(g);
  const Signal ref = run_streaming(a, x, x.size());
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                  std::size_t{1024}}) {
    StreamingZeroPhaseFir st(g);
    const Signal y = run_streaming(st, x, chunk);
    ASSERT_EQ(y.size(), ref.size());
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_EQ(y[i], ref[i]) << "chunk=" << chunk << " i=" << i;
  }
}

TEST(StreamingZeroPhaseFirTest, SosKernelTracksFiltfiltSos) {
  const SosFilter lp = butterworth_lowpass(4, 20.0, kFs);
  const Signal x = noisy_signal(2000, 9);
  const Signal ref = filtfilt_sos(lp, x);
  StreamingZeroPhaseFir st(zero_phase_sos_kernel(lp));
  const Signal y = run_streaming(st, x, 32);
  ASSERT_EQ(y.size(), x.size());
  // Interior matches tightly; the batch filtfilt uses steady-state edge
  // initialization the truncated-kernel stage only approximates.
  double scale = 0.0;
  for (const double v : ref) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 100; i + 100 < x.size(); ++i)
    EXPECT_NEAR(y[i], ref[i], 1e-4 * scale) << "i=" << i;
}

TEST(StreamingZeroPhaseFirTest, ShortSignalStillAligned) {
  const FirCoefficients h = design_lowpass(16, 30.0, kFs);
  const FirCoefficients g = zero_phase_fir_kernel(h);
  StreamingZeroPhaseFir st(g);
  const Signal x = noisy_signal(8, 10); // shorter than the group delay
  Signal y;
  st.process_chunk(x, y);
  st.finish(y);
  ASSERT_EQ(y.size(), x.size());
  for (const double v : y) EXPECT_TRUE(std::isfinite(v));
}

TEST(StreamingZeroPhaseFirTest, RejectsAsymmetricKernel) {
  FirCoefficients bad;
  bad.taps = {1.0, 2.0, 3.0};
  EXPECT_THROW(StreamingZeroPhaseFir{bad}, std::invalid_argument);
  FirCoefficients even;
  even.taps = {1.0, 1.0};
  EXPECT_THROW(StreamingZeroPhaseFir{even}, std::invalid_argument);
}

TEST(StreamingExtremumTest, MatchesBatchErodeDilate) {
  const Signal x = noisy_signal(777, 11);
  for (const std::size_t width : {std::size_t{1}, std::size_t{5}, std::size_t{51}}) {
    const Signal er = erode(x, width);
    const Signal di = dilate(x, width);
    StreamingExtremum smin(width, StreamingExtremum::Kind::Min);
    StreamingExtremum smax(width, StreamingExtremum::Kind::Max);
    Signal ys_min, ys_max;
    for (const double v : x) {
      smin.push(v, ys_min);
      smax.push(v, ys_max);
    }
    smin.finish(ys_min);
    smax.finish(ys_max);
    ASSERT_EQ(ys_min.size(), x.size());
    ASSERT_EQ(ys_max.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(ys_min[i], er[i]) << "width=" << width << " i=" << i;
      ASSERT_EQ(ys_max[i], di[i]) << "width=" << width << " i=" << i;
    }
  }
}

TEST(StreamingBaselineRemoverTest, MatchesBatchRemoveBaseline) {
  const Signal x = noisy_signal(2000, 12);
  const Signal ref = remove_baseline(x, kFs);
  StreamingBaselineRemover st(kFs);
  Signal y;
  for (std::size_t i = 0; i < x.size(); i += 13) {
    for (std::size_t j = i; j < std::min(x.size(), i + 13); ++j) st.push(x[j], y);
  }
  st.finish(y);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) ASSERT_EQ(y[i], ref[i]) << "i=" << i;
}

TEST(StreamingMovingAverageTest, MatchesMovingWindowIntegrate) {
  const Signal x = noisy_signal(500, 13);
  const Signal ref = moving_window_integrate(x, 37);
  StreamingMovingAverage st(37);
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_EQ(st.tick(x[i]), ref[i]) << "i=" << i;
}

TEST(FixedSosFilterTest, TickMatchesApplyBitExactly) {
  const SosFilter lp = butterworth_lowpass(2, 20.0, kFs);
  FixedSosFilter fixed(lp);
  constexpr double kQ31 = 2147483648.0;
  // Amplitude well inside [-1, 1) so neither path saturates; apply() and
  // tick() then run the identical integer arithmetic.
  Signal x = noisy_signal(400, 14);
  for (double& v : x) v /= 8.0;
  const Signal batch = fixed.apply(x);
  fixed.reset_state();
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto q = static_cast<std::int32_t>(std::llround(x[i] * kQ31));
    const std::int32_t y = fixed.tick(q);
    ASSERT_EQ(static_cast<double>(y) / kQ31, batch[i]) << "i=" << i;
  }
}

} // namespace
} // namespace icgkit::dsp
