#include "dsp/moving.h"

#include <gtest/gtest.h>

namespace icgkit::dsp {
namespace {

TEST(MovingTest, MovingAverageCentered) {
  const Signal x{1.0, 2.0, 3.0, 4.0, 5.0};
  const Signal y = moving_average(x, 3);
  EXPECT_DOUBLE_EQ(y[0], 1.5); // shrinking edge window {1,2}
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
  EXPECT_DOUBLE_EQ(y[3], 4.0);
  EXPECT_DOUBLE_EQ(y[4], 4.5);
}

TEST(MovingTest, MovingAverageWidthOneIsIdentity) {
  const Signal x{3.0, -1.0, 4.0};
  const Signal y = moving_average(x, 1);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(MovingTest, MovingAverageRejectsEvenWidth) {
  EXPECT_THROW(moving_average(Signal{1.0, 2.0}, 2), std::invalid_argument);
  EXPECT_THROW(moving_average(Signal{1.0, 2.0}, 0), std::invalid_argument);
}

TEST(MovingTest, MwiCausalGrowingWindow) {
  const Signal x{2.0, 4.0, 6.0, 8.0};
  const Signal y = moving_window_integrate(x, 3);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
  EXPECT_DOUBLE_EQ(y[3], 6.0);
}

TEST(MovingTest, MwiOfConstantIsConstant) {
  const Signal x(100, 5.0);
  const Signal y = moving_window_integrate(x, 37);
  for (const double v : y) EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST(MovingTest, MwiSmoothsSpike) {
  Signal x(50, 0.0);
  x[25] = 10.0;
  const Signal y = moving_window_integrate(x, 5);
  EXPECT_DOUBLE_EQ(y[25], 2.0);
  EXPECT_DOUBLE_EQ(y[29], 2.0);
  EXPECT_DOUBLE_EQ(y[30], 0.0);
}

TEST(MovingTest, EmaConvergesToConstant) {
  const Signal x(200, 4.0);
  const Signal y = ema(x, 0.1);
  EXPECT_NEAR(y.back(), 4.0, 1e-6);
}

TEST(MovingTest, EmaAlphaOneIsIdentity) {
  const Signal x{1.0, -2.0, 3.0};
  const Signal y = ema(x, 1.0);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(MovingTest, EmaRejectsBadAlpha) {
  EXPECT_THROW(ema(Signal{1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(ema(Signal{1.0}, 1.5), std::invalid_argument);
}

TEST(MovingTest, StreamingMatchesBatchMwi) {
  Signal x(64);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i % 7);
  const Signal batch = moving_window_integrate(x, 9);
  StreamingMovingAverage stream(9);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(stream.process(x[i]), batch[i], 1e-12) << i;
}

TEST(MovingTest, StreamingReset) {
  StreamingMovingAverage s(4);
  s.process(10.0);
  s.process(20.0);
  s.reset();
  EXPECT_DOUBLE_EQ(s.process(6.0), 6.0);
}

} // namespace
} // namespace icgkit::dsp
