// Numeric-backend layer: the Q31 instantiations of the streaming kernels
// must track their double twins to Q1.31 quantization accuracy, saturate
// instead of wrapping, and keep the power-of-two threshold arithmetic
// exact. The DoubleBackend instantiations being bit-identical to the
// pre-refactor kernels is covered by the existing streaming-stage and
// pipeline equivalence tests.
#include "dsp/backend.h"

#include "dsp/butterworth.h"
#include "dsp/filtfilt.h"
#include "dsp/fir_design.h"
#include "dsp/morphology.h"
#include "dsp/moving.h"
#include "ecg/pan_tompkins.h"
#include "synth/recording.h"
#include "synth/subject.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <vector>

namespace icgkit::dsp {
namespace {

constexpr double kFs = 250.0;

Signal test_tone(std::size_t n, double amp = 0.4) {
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / kFs;
    x[i] = amp * std::sin(2.0 * std::numbers::pi * 7.0 * t) +
           0.1 * amp * std::sin(2.0 * std::numbers::pi * 31.0 * t);
  }
  return x;
}

TEST(Q31BackendTest, ConversionsRoundTripAndSaturate) {
  EXPECT_EQ(Q31Backend::from_real(0.0), 0);
  EXPECT_NEAR(Q31Backend::to_real(Q31Backend::from_real(0.73)), 0.73, 1e-9);
  EXPECT_NEAR(Q31Backend::to_real(Q31Backend::from_real(-0.73)), -0.73, 1e-9);
  // Out-of-range input saturates instead of wrapping.
  EXPECT_EQ(Q31Backend::from_real(2.0), std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(Q31Backend::from_real(-2.0), std::numeric_limits<std::int32_t>::min());
}

TEST(Q31BackendTest, CoefficientRangeEnforced) {
  EXPECT_NO_THROW(Q31Backend::coeff(1.9999));
  EXPECT_NO_THROW(Q31Backend::coeff(-2.0));
  EXPECT_THROW(Q31Backend::coeff(2.0), std::invalid_argument);
  EXPECT_THROW(Q31Backend::coeff(-2.1), std::invalid_argument);
  EXPECT_THROW(Q31Backend::coeff(std::nan("")), std::invalid_argument);
}

TEST(Q31BackendTest, SampleOpsSaturateInsteadOfWrapping) {
  const auto big = std::numeric_limits<std::int32_t>::max();
  EXPECT_EQ(Q31Backend::add(big, big), big);
  EXPECT_EQ(Q31Backend::sub(std::numeric_limits<std::int32_t>::min(), big),
            std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(Q31Backend::twice(big), big);
  EXPECT_EQ(Q31Backend::neg(std::numeric_limits<std::int32_t>::min()), big);
  EXPECT_EQ(Q31Backend::abs(std::numeric_limits<std::int32_t>::min()), big);
  EXPECT_EQ(Q31Backend::rescale(big, 1.0, 4), big);
}

TEST(Q31BackendTest, ThresholdArithmeticMatchesPaperWeights) {
  // SPKI/NPKI updates are 1/8 and 1/4 weights; the shift form must agree
  // with the textbook formula to quantization accuracy.
  const std::int32_t old_v = Q31Backend::from_real(0.25);
  const std::int32_t new_v = Q31Backend::from_real(0.75);
  const double got8 = Q31Backend::to_real(Q31Backend::ewma_shift(old_v, new_v, 3));
  EXPECT_NEAR(got8, 0.125 * 0.75 + 0.875 * 0.25, 1e-8);
  const double got4 = Q31Backend::to_real(Q31Backend::ewma_shift(old_v, new_v, 2));
  EXPECT_NEAR(got4, 0.25 * 0.75 + 0.75 * 0.25, 1e-8);
}

TEST(Q31BackendTest, SquareAndLerpMatchDouble) {
  const std::int32_t v = Q31Backend::from_real(0.31);
  EXPECT_NEAR(Q31Backend::to_real(Q31Backend::square(v)), 0.31 * 0.31, 1e-8);
  const std::int32_t a = Q31Backend::from_real(-0.2);
  const std::int32_t b = Q31Backend::from_real(0.6);
  EXPECT_NEAR(Q31Backend::to_real(Q31Backend::lerp(a, b, 3, 8)),
              -0.2 + (0.6 - -0.2) * 3.0 / 8.0, 1e-8);
}

TEST(Q31KernelTest, StreamingFirTracksDouble) {
  const FirCoefficients fir = design_lowpass(24, 30.0, kFs);
  BasicStreamingFir<DoubleBackend> fd(fir);
  BasicStreamingFir<Q31Backend> fq(fir);
  const Signal x = test_tone(1200);
  for (const double v : x) {
    const double yd = fd.tick(v);
    const double yq = Q31Backend::to_real(fq.tick(Q31Backend::from_real(v)));
    EXPECT_NEAR(yq, yd, 1e-6);
  }
}

TEST(Q31KernelTest, StreamingSosGainFoldingMatchesDouble) {
  SosFilter lp = butterworth_lowpass(4, 20.0, kFs);
  lp.gain *= 0.5; // non-trivial gain exercises the fixed-path folding
  BasicStreamingSos<DoubleBackend> sd(lp);
  BasicStreamingSos<Q31Backend> sq(lp);
  const Signal x = test_tone(1500);
  for (const double v : x) {
    const double yd = sd.tick(v);
    const double yq = Q31Backend::to_real(sq.tick(Q31Backend::from_real(v)));
    EXPECT_NEAR(yq, yd, 2e-6);
  }
}

TEST(Q31KernelTest, MovingAverageTracksDoubleAndNeverAllocatesWide) {
  BasicStreamingMovingAverage<DoubleBackend> md(37);
  BasicStreamingMovingAverage<Q31Backend> mq(37);
  const Signal x = test_tone(800);
  for (const double v : x) {
    const double yd = md.tick(v);
    const double yq = Q31Backend::to_real(mq.tick(Q31Backend::from_real(v)));
    // Integer division truncates toward zero; error bounded by one LSB of
    // the sum plus the input quantization.
    EXPECT_NEAR(yq, yd, 1e-6);
  }
}

TEST(Q31KernelTest, ExtremumIsExactOnQuantizedInput) {
  // Order statistics commute with quantization: feeding the quantized
  // signal through the Q31 extremum equals quantizing the double output.
  using DKind = BasicStreamingExtremum<DoubleBackend>::Kind;
  using QKind = BasicStreamingExtremum<Q31Backend>::Kind;
  BasicStreamingExtremum<DoubleBackend> ed(11, DKind::Max);
  BasicStreamingExtremum<Q31Backend> eq(11, QKind::Max);
  const Signal x = test_tone(400);
  Signal outd;
  std::vector<std::int32_t> outq;
  for (const double v : x) {
    const std::int32_t q = Q31Backend::from_real(v);
    ed.push(Q31Backend::to_real(q), outd);
    eq.push(q, outq);
  }
  ed.finish(outd);
  eq.finish(outq);
  ASSERT_EQ(outd.size(), outq.size());
  for (std::size_t i = 0; i < outd.size(); ++i)
    EXPECT_EQ(Q31Backend::from_real(outd[i]), outq[i]) << "sample " << i;
}

TEST(Q31KernelTest, ZeroPhaseFirTracksDoubleAndStaysChunkInvariant) {
  const FirCoefficients kernel =
      zero_phase_sos_kernel(butterworth_lowpass(4, 20.0, kFs), 1e-6);
  // Amplitude kept under 1/3 full scale: the filtfilt-style odd
  // reflection 2*edge - x can reach 3x the signal peak, and beyond full
  // scale the Q31 edge synthesis (correctly) saturates, which is exactly
  // the headroom the pipeline's scaling policy provides in real use.
  const Signal x = test_tone(900, 0.25);

  BasicStreamingZeroPhaseFir<DoubleBackend> zd(kernel);
  Signal yd;
  zd.process_chunk(x, yd);
  zd.finish(yd);

  std::vector<std::int32_t> xq;
  for (const double v : x) xq.push_back(Q31Backend::from_real(v));

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{64}, x.size()}) {
    BasicStreamingZeroPhaseFir<Q31Backend> zq(kernel);
    std::vector<std::int32_t> yq;
    for (std::size_t i = 0; i < xq.size(); i += chunk) {
      const std::size_t len = std::min(chunk, xq.size() - i);
      for (std::size_t k = 0; k < len; ++k) zq.push(xq[i + k], yq);
    }
    zq.finish(yq);
    ASSERT_EQ(yq.size(), yd.size());
    for (std::size_t i = 0; i < yq.size(); ++i)
      EXPECT_NEAR(Q31Backend::to_real(yq[i]), yd[i], 5e-6) << "chunk " << chunk;
  }
}

TEST(Q31KernelTest, OnlinePanTompkinsFindsTheSameBeats) {
  // End-to-end QRS parity on a clean-ish synthetic ECG: the fixed
  // detector must confirm the identical R sample positions.
  const auto roster = synth::paper_roster();
  synth::RecordingConfig cfg;
  cfg.duration_s = 20.0;
  const auto src = generate_source(roster[1], cfg);
  const auto rec =
      measure_device(roster[1], src, 50e3, synth::Position::ArmsOutstretched);

  ecg::BasicOnlinePanTompkins<DoubleBackend> pd(kFs);
  std::vector<std::size_t> rd;
  pd.push_chunk(rec.ecg_mv, rd);
  pd.finish(rd);
  ASSERT_GT(rd.size(), 15u);

  ecg::BasicOnlinePanTompkins<Q31Backend> pq(kFs);
  std::vector<std::size_t> rq;
  for (const double v : rec.ecg_mv) pq.push(Q31Backend::from_real(v / 16.0), rq);
  pq.finish(rq);

  ASSERT_EQ(rq.size(), rd.size());
  for (std::size_t i = 0; i < rd.size(); ++i) EXPECT_EQ(rq[i], rd[i]) << "peak " << i;
}

} // namespace
} // namespace icgkit::dsp
