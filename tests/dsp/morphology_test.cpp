#include "dsp/morphology.h"

#include "dsp/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace icgkit::dsp {
namespace {

TEST(MorphologyTest, ErodeIsSlidingMin) {
  const Signal x{5.0, 1.0, 3.0, 4.0, 2.0};
  const Signal e = erode(x, 3);
  const Signal expect{1.0, 1.0, 1.0, 2.0, 2.0};
  ASSERT_EQ(e.size(), expect.size());
  for (std::size_t i = 0; i < e.size(); ++i) EXPECT_DOUBLE_EQ(e[i], expect[i]) << i;
}

TEST(MorphologyTest, DilateIsSlidingMax) {
  const Signal x{5.0, 1.0, 3.0, 4.0, 2.0};
  const Signal d = dilate(x, 3);
  const Signal expect{5.0, 5.0, 4.0, 4.0, 4.0};
  ASSERT_EQ(d.size(), expect.size());
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_DOUBLE_EQ(d[i], expect[i]) << i;
}

TEST(MorphologyTest, EvenWidthThrows) {
  const Signal x{1.0, 2.0, 3.0};
  EXPECT_THROW(erode(x, 2), std::invalid_argument);
  EXPECT_THROW(dilate(x, 4), std::invalid_argument);
}

TEST(MorphologyTest, OpeningRemovesNarrowPeak) {
  Signal x(51, 0.0);
  x[25] = 10.0; // single-sample spike
  const Signal o = morph_open(x, 5);
  for (const double v : o) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MorphologyTest, ClosingRemovesNarrowPit) {
  Signal x(51, 1.0);
  x[25] = -10.0;
  const Signal c = morph_close(x, 5);
  for (const double v : c) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(MorphologyTest, OpeningPreservesWidePlateau) {
  Signal x(100, 0.0);
  for (std::size_t i = 30; i < 70; ++i) x[i] = 5.0; // 40-wide plateau
  const Signal o = morph_open(x, 9);
  EXPECT_DOUBLE_EQ(o[50], 5.0);
}

TEST(MorphologyTest, IdempotenceOfOpening) {
  // Opening is idempotent: open(open(x)) == open(x).
  Signal x(200);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(0.1 * static_cast<double>(i)) +
           ((i % 17 == 0) ? 2.0 : 0.0); // spiky
  const Signal o1 = morph_open(x, 7);
  const Signal o2 = morph_open(o1, 7);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(o1[i], o2[i], 1e-12) << i;
}

TEST(MorphologyTest, AntiExtensivity) {
  // open(x) <= x <= close(x) pointwise.
  Signal x(300);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(0.07 * static_cast<double>(i)) + 0.3 * std::cos(0.31 * static_cast<double>(i));
  const Signal o = morph_open(x, 11);
  const Signal c = morph_close(x, 11);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(o[i], x[i] + 1e-12) << i;
    EXPECT_GE(c[i], x[i] - 1e-12) << i;
  }
}

// Synthetic "ECG": narrow spikes on a slow sinusoidal baseline. The
// estimator must track the baseline and ignore the spikes.
TEST(MorphologyTest, BaselineEstimatorTracksDrift) {
  const double fs = 250.0;
  const std::size_t n = 2500; // 10 s
  Signal x(n);
  Signal truth(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    truth[i] = 0.4 * std::sin(2.0 * std::numbers::pi * 0.25 * t); // 0.25 Hz wander
    x[i] = truth[i];
  }
  // Add QRS-like spikes every second (width ~ 20 ms << 0.2 s window).
  for (std::size_t beat = 0; beat < 10; ++beat) {
    const std::size_t center = 125 + beat * 250;
    for (int k = -2; k <= 2; ++k)
      x[center + static_cast<std::size_t>(k + 2)] += 1.0 * (1.0 - 0.4 * std::abs(k));
  }
  const Signal est = estimate_baseline(x, fs);
  double err = 0.0;
  for (std::size_t i = 100; i + 100 < n; ++i) err = std::max(err, std::abs(est[i] - truth[i]));
  EXPECT_LT(err, 0.12);
}

TEST(MorphologyTest, RemoveBaselineLeavesSpikes) {
  const double fs = 250.0;
  const std::size_t n = 2500;
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    x[i] = 0.5 * std::sin(2.0 * std::numbers::pi * 0.2 * t);
  }
  for (std::size_t beat = 0; beat < 9; ++beat) x[200 + beat * 250] += 1.0;
  const Signal y = remove_baseline(x, fs);
  // Baseline energy (measured away from spikes) should drop a lot.
  double resid = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 100; i + 100 < n; ++i) {
    bool near_spike = false;
    for (std::size_t beat = 0; beat < 9; ++beat) {
      const std::size_t c = 200 + beat * 250;
      if (i + 30 > c && i < c + 30) near_spike = true;
    }
    if (!near_spike) {
      resid += y[i] * y[i];
      ++count;
    }
  }
  EXPECT_LT(std::sqrt(resid / static_cast<double>(count)), 0.1);
  // Spikes survive.
  EXPECT_GT(y[200 + 2 * 250], 0.6);
}

TEST(MorphologyTest, ConstantSignalHasConstantBaseline) {
  const Signal x(1000, 2.0);
  const Signal b = estimate_baseline(x, 250.0);
  for (const double v : b) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(MorphologyTest, EmptySignal) {
  EXPECT_TRUE(estimate_baseline(Signal{}, 250.0).empty());
  EXPECT_TRUE(remove_baseline(Signal{}, 250.0).empty());
}

} // namespace
} // namespace icgkit::dsp
