#include "dsp/filtfilt.h"

#include "dsp/butterworth.h"
#include "dsp/fir_design.h"
#include "dsp/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace icgkit::dsp {
namespace {

constexpr double kFs = 250.0;
constexpr double kTwoPi = 2.0 * std::numbers::pi;

Signal sine(double freq, std::size_t n, double phase = 0.0) {
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(kTwoPi * freq * static_cast<double>(i) / kFs + phase);
  return x;
}

// Estimates the delay (in samples) of y relative to x by maximizing the
// cross-correlation over lags in [-maxlag, maxlag]. Positive result means
// y lags x (y[n] ~ x[n - delay]).
int delay_by_xcorr(SignalView x, SignalView y, int maxlag) {
  double best = -1e300;
  int best_lag = 0;
  const int n = static_cast<int>(x.size());
  for (int lag = -maxlag; lag <= maxlag; ++lag) {
    double acc = 0.0;
    for (int i = std::max(0, lag); i < std::min(n, n + lag); ++i)
      acc += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i - lag)];
    if (acc > best) {
      best = acc;
      best_lag = lag;
    }
  }
  // y[i - lag] aligns with x[i] at lag = -delay, so flip the sign.
  return -best_lag;
}

TEST(FiltfiltTest, OddReflectPadStructure) {
  const Signal x{1.0, 2.0, 3.0, 4.0};
  const Signal p = odd_reflect_pad(x, 2);
  ASSERT_EQ(p.size(), 8u);
  // Left: 2*x[0]-x[2], 2*x[0]-x[1] = -1, 0
  EXPECT_DOUBLE_EQ(p[0], -1.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_DOUBLE_EQ(p[2], 1.0);
  EXPECT_DOUBLE_EQ(p[5], 4.0);
  // Right: 2*x[3]-x[2], 2*x[3]-x[1] = 5, 6
  EXPECT_DOUBLE_EQ(p[6], 5.0);
  EXPECT_DOUBLE_EQ(p[7], 6.0);
}

TEST(FiltfiltTest, PadTooLargeThrows) {
  const Signal x{1.0, 2.0, 3.0};
  EXPECT_THROW(odd_reflect_pad(x, 3), std::invalid_argument);
}

TEST(FiltfiltTest, EmptyInputGivesEmptyOutput) {
  const SosFilter f = butterworth_lowpass(4, 20.0, kFs);
  EXPECT_TRUE(filtfilt_sos(f, Signal{}).empty());
}

TEST(FiltfiltTest, ZeroPhaseSosPassbandSine) {
  // A passband sine must come out with no measurable delay.
  const SosFilter f = butterworth_lowpass(4, 20.0, kFs);
  const Signal x = sine(5.0, 2000);
  const Signal y = filtfilt_sos(f, x);
  EXPECT_EQ(delay_by_xcorr(x, y, 25), 0);
  // and amplitude preserved (squared response at 5 Hz is ~1).
  Signal xc(x.begin() + 200, x.end() - 200);
  Signal yc(y.begin() + 200, y.end() - 200);
  EXPECT_NEAR(rms(yc) / rms(xc), 1.0, 0.01);
}

TEST(FiltfiltTest, CausalFilterHasDelayFiltfiltDoesNot) {
  const SosFilter f = butterworth_lowpass(4, 10.0, kFs);
  const Signal x = sine(4.0, 2000);
  const Signal causal = sos_apply(f, x);
  const Signal zero_phase = filtfilt_sos(f, x);
  EXPECT_GT(delay_by_xcorr(x, causal, 30), 1);
  EXPECT_EQ(delay_by_xcorr(x, zero_phase, 30), 0);
}

TEST(FiltfiltTest, ZeroPhaseFirPaperEcgFilter) {
  const auto fir = design_bandpass(32, 0.05, 40.0, kFs);
  const Signal x = sine(10.0, 3000);
  const Signal y = filtfilt_fir(fir, x);
  EXPECT_EQ(delay_by_xcorr(x, y, 40), 0);
}

TEST(FiltfiltTest, SquaredMagnitudeResponse) {
  // Forward-backward filtering squares |H|: a sine at the -3 dB point
  // comes out at 1/2 amplitude.
  const SosFilter f = butterworth_lowpass(4, 20.0, kFs);
  const Signal x = sine(20.0, 4000);
  const Signal y = filtfilt_sos(f, x);
  Signal xc(x.begin() + 500, x.end() - 500);
  Signal yc(y.begin() + 500, y.end() - 500);
  EXPECT_NEAR(rms(yc) / rms(xc), 0.5, 0.02);
}

TEST(FiltfiltTest, PreservesConstantSignal) {
  const SosFilter f = butterworth_lowpass(4, 20.0, kFs);
  const Signal x(500, 3.25);
  const Signal y = filtfilt_sos(f, x);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], 3.25, 1e-6) << i;
}

TEST(FiltfiltTest, NoEdgeBlowup) {
  // Edge handling must keep the boundary samples within the signal range
  // (the naive zero-padded version overshoots wildly on a DC-offset sine).
  const SosFilter f = butterworth_lowpass(4, 20.0, kFs);
  Signal x = sine(3.0, 1000);
  for (auto& v : x) v += 10.0;
  const Signal y = filtfilt_sos(f, x);
  for (const double v : y) {
    EXPECT_GT(v, 8.5);
    EXPECT_LT(v, 11.5);
  }
}

TEST(FiltfiltTest, ShortSignalsDoNotThrow) {
  const SosFilter f = butterworth_lowpass(4, 20.0, kFs);
  for (std::size_t n : {1u, 2u, 3u, 5u, 10u}) {
    const Signal x(n, 1.0);
    EXPECT_NO_THROW({
      const Signal y = filtfilt_sos(f, x);
      EXPECT_EQ(y.size(), n);
    });
  }
}

struct PhaseCase {
  double freq;
  double phase;
};

class ZeroPhaseSweep : public ::testing::TestWithParam<PhaseCase> {};

TEST_P(ZeroPhaseSweep, PassbandSinePhasePreserved) {
  // Property: filtfilt output correlates with the input at lag 0 for any
  // passband frequency and any initial phase.
  const auto [freq, phase] = GetParam();
  const SosFilter f = butterworth_lowpass(6, 30.0, kFs);
  const Signal x = sine(freq, 2500, phase);
  const Signal y = filtfilt_sos(f, x);
  EXPECT_EQ(delay_by_xcorr(x, y, 20), 0) << "freq=" << freq << " phase=" << phase;
}

INSTANTIATE_TEST_SUITE_P(
    FreqPhaseGrid, ZeroPhaseSweep,
    ::testing::Values(PhaseCase{1.0, 0.0}, PhaseCase{1.0, 1.0}, PhaseCase{5.0, 0.5},
                      PhaseCase{10.0, 2.0}, PhaseCase{15.0, 0.0}, PhaseCase{20.0, 1.5},
                      PhaseCase{25.0, 0.7}, PhaseCase{28.0, 2.5}));

} // namespace
} // namespace icgkit::dsp
