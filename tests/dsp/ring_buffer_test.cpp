#include "dsp/ring_buffer.h"

#include <gtest/gtest.h>

namespace icgkit::dsp {
namespace {

TEST(RingBufferTest, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBufferTest, ZeroCapacityThrows) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBufferTest, PushPopFifoOrder) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, OverwriteOldestWhenFull) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 3);
  EXPECT_EQ(rb.back(), 5);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_EQ(rb.pop(), 5);
}

TEST(RingBufferTest, PopEmptyThrows) {
  RingBuffer<int> rb(2);
  EXPECT_THROW(rb.pop(), std::out_of_range);
}

TEST(RingBufferTest, AtIndexesFromOldest) {
  RingBuffer<int> rb(4);
  rb.push(10);
  rb.push(20);
  rb.push(30);
  EXPECT_EQ(rb.at(0), 10);
  EXPECT_EQ(rb.at(2), 30);
  EXPECT_THROW([[maybe_unused]] auto v = rb.at(3), std::out_of_range);
}

TEST(RingBufferTest, SnapshotOrder) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  const auto v = rb.snapshot();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 3);
  EXPECT_EQ(v[1], 4);
  EXPECT_EQ(v[2], 5);
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer<double> rb(2);
  rb.push(1.0);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(2.0);
  EXPECT_DOUBLE_EQ(rb.front(), 2.0);
}

TEST(RingBufferTest, WrapsManyTimes) {
  RingBuffer<std::size_t> rb(7);
  for (std::size_t i = 0; i < 1000; ++i) rb.push(i);
  EXPECT_EQ(rb.front(), 993u);
  EXPECT_EQ(rb.back(), 999u);
}

} // namespace
} // namespace icgkit::dsp
