#include "dsp/fir_design.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace icgkit::dsp {
namespace {

constexpr double kFs = 250.0;

Signal sine(double freq, double fs, std::size_t n, double amp = 1.0) {
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = amp * std::sin(2.0 * std::numbers::pi * freq * static_cast<double>(i) / fs);
  return x;
}

TEST(FirDesignTest, LowpassUnityDcGain) {
  const auto fir = design_lowpass(32, 40.0, kFs);
  EXPECT_NEAR(fir_magnitude_at(fir, 0.0, kFs), 1.0, 1e-12);
}

TEST(FirDesignTest, LowpassAttenuatesStopband) {
  const auto fir = design_lowpass(64, 20.0, kFs);
  EXPECT_LT(fir_magnitude_at(fir, 60.0, kFs), 0.05);
  EXPECT_LT(fir_magnitude_at(fir, 100.0, kFs), 0.05);
}

TEST(FirDesignTest, LowpassHalfPowerNearCutoff) {
  const auto fir = design_lowpass(64, 25.0, kFs);
  // Windowed-sinc designs put ~ -6 dB (0.5 amplitude) at the cutoff.
  EXPECT_NEAR(fir_magnitude_at(fir, 25.0, kFs), 0.5, 0.05);
}

TEST(FirDesignTest, HighpassUnityNyquistGainAndDcRejection) {
  const auto fir = design_highpass(32, 1.0, kFs);
  EXPECT_NEAR(fir_magnitude_at(fir, kFs / 2.0, kFs), 1.0, 1e-9);
  EXPECT_LT(fir_magnitude_at(fir, 0.0, kFs), 1e-6);
}

TEST(FirDesignTest, PaperBandpassSpec) {
  // The paper's ECG filter: 32nd-order FIR band-pass, 0.05-40 Hz at 250 Hz.
  const auto fir = design_bandpass(32, 0.05, 40.0, kFs);
  EXPECT_EQ(fir.order(), 32u);
  EXPECT_EQ(fir.taps.size(), 33u);
  // Passband center is normalized to unity.
  EXPECT_NEAR(fir_magnitude_at(fir, 0.5 * (0.05 + 40.0), kFs), 1.0, 1e-9);
  // In-band frequencies pass (a 33-tap filter has a soft passband; the
  // QRS band around 10-25 Hz is attenuated by < 2.3 dB)...
  EXPECT_GT(fir_magnitude_at(fir, 10.0, kFs), 0.75);
  EXPECT_GT(fir_magnitude_at(fir, 17.0, kFs), 0.9);
  // ...and far out-of-band frequencies are attenuated (a 32nd-order FIR has
  // a wide transition band; 100+ Hz is well into the stopband).
  EXPECT_LT(fir_magnitude_at(fir, 110.0, kFs), 0.15);
}

TEST(FirDesignTest, BandpassRejectsDc) {
  const auto fir = design_bandpass(32, 0.05, 40.0, kFs);
  double tap_sum = 0.0;
  for (const double t : fir.taps) tap_sum += t;
  EXPECT_NEAR(tap_sum, 0.0, 0.02); // DC gain ~ 0
}

TEST(FirDesignTest, TapsAreSymmetric) {
  const auto fir = design_bandpass(32, 0.5, 40.0, kFs);
  for (std::size_t i = 0; i < fir.taps.size() / 2; ++i)
    EXPECT_NEAR(fir.taps[i], fir.taps[fir.taps.size() - 1 - i], 1e-12);
}

TEST(FirDesignTest, GroupDelayIsHalfOrder) {
  const auto fir = design_lowpass(32, 30.0, kFs);
  EXPECT_DOUBLE_EQ(fir.group_delay(), 16.0);
}

TEST(FirDesignTest, RejectsBadArguments) {
  EXPECT_THROW(design_lowpass(32, 0.0, kFs), std::invalid_argument);
  EXPECT_THROW(design_lowpass(32, 130.0, kFs), std::invalid_argument);
  EXPECT_THROW(design_lowpass(32, 10.0, -1.0), std::invalid_argument);
  EXPECT_THROW(design_highpass(31, 10.0, kFs), std::invalid_argument);
  EXPECT_THROW(design_bandpass(31, 1.0, 10.0, kFs), std::invalid_argument);
  EXPECT_THROW(design_bandpass(32, 10.0, 1.0, kFs), std::invalid_argument);
}

TEST(FirDesignTest, ApplyMatchesStreaming) {
  const auto fir = design_lowpass(16, 30.0, kFs);
  const Signal x = sine(10.0, kFs, 200);
  const Signal batch = fir_apply(fir, x);
  StreamingFir stream(fir);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(stream.process(x[i]), batch[i], 1e-12) << "i=" << i;
  }
}

TEST(FirDesignTest, StreamingResetClearsState) {
  const auto fir = design_lowpass(16, 30.0, kFs);
  StreamingFir stream(fir);
  for (int i = 0; i < 50; ++i) stream.process(1.0);
  stream.reset();
  // After reset, the response to an impulse equals the first tap.
  EXPECT_NEAR(stream.process(1.0), fir.taps[0], 1e-15);
}

TEST(FirDesignTest, SineInPassbandPreservedAfterTransient) {
  const auto fir = design_lowpass(64, 40.0, kFs);
  const Signal x = sine(10.0, kFs, 1000);
  const Signal y = fir_apply(fir, x);
  // Compare steady-state amplitude (skip the transient, account for the
  // 32-sample group delay by comparing RMS).
  double rx = 0.0, ry = 0.0;
  for (std::size_t i = 200; i < x.size(); ++i) {
    rx += x[i] * x[i];
    ry += y[i] * y[i];
  }
  EXPECT_NEAR(std::sqrt(ry / rx), 1.0, 0.02);
}

class FirStopbandSweep : public ::testing::TestWithParam<double> {};

TEST_P(FirStopbandSweep, StopbandSineSuppressed) {
  const double freq = GetParam();
  const auto fir = design_lowpass(96, 20.0, kFs);
  const Signal x = sine(freq, kFs, 2000);
  const Signal y = fir_apply(fir, x);
  double ry = 0.0;
  for (std::size_t i = 300; i < y.size(); ++i) ry += y[i] * y[i];
  ry = std::sqrt(ry / static_cast<double>(y.size() - 300));
  EXPECT_LT(ry, 0.06) << "freq=" << freq;
}

INSTANTIATE_TEST_SUITE_P(Frequencies, FirStopbandSweep,
                         ::testing::Values(40.0, 50.0, 60.0, 80.0, 100.0, 120.0));

} // namespace
} // namespace icgkit::dsp
