#include "dsp/derivative.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace icgkit::dsp {
namespace {

constexpr double kFs = 250.0;

Signal ramp(std::size_t n, double slope_per_s, double fs) {
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = slope_per_s * static_cast<double>(i) / fs;
  return x;
}

TEST(DerivativeTest, RampHasConstantDerivative) {
  const Signal x = ramp(100, 3.0, kFs);
  const Signal d = derivative(x, kFs);
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_NEAR(d[i], 3.0, 1e-9) << i;
}

TEST(DerivativeTest, SineDerivativeIsCosine) {
  const double f0 = 2.0;
  const double w = 2.0 * std::numbers::pi * f0;
  Signal x(1000);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(w * static_cast<double>(i) / kFs);
  const Signal d = derivative(x, kFs);
  for (std::size_t i = 5; i + 5 < x.size(); ++i) {
    const double expect = w * std::cos(w * static_cast<double>(i) / kFs);
    EXPECT_NEAR(d[i], expect, 0.01 * w) << i;
  }
}

TEST(DerivativeTest, SecondDerivativeOfParabola) {
  Signal x(200);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / kFs;
    x[i] = 4.0 * t * t;
  }
  const Signal d2 = second_derivative(x, kFs);
  for (std::size_t i = 1; i + 1 < x.size(); ++i) EXPECT_NEAR(d2[i], 8.0, 1e-6) << i;
}

TEST(DerivativeTest, ThirdDerivativeOfCubic) {
  Signal x(300);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / kFs;
    x[i] = 2.0 * t * t * t;
  }
  const Signal d3 = third_derivative(x, kFs);
  for (std::size_t i = 4; i + 4 < x.size(); ++i) EXPECT_NEAR(d3[i], 12.0, 1e-4) << i;
}

TEST(DerivativeTest, ConstantSignalZeroDerivatives) {
  const Signal x(50, 7.0);
  for (const double v : derivative(x, kFs)) EXPECT_NEAR(v, 0.0, 1e-12);
  for (const double v : second_derivative(x, kFs)) EXPECT_NEAR(v, 0.0, 1e-12);
  for (const double v : third_derivative(x, kFs)) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(DerivativeTest, FivePointDerivativeOnRamp) {
  // The Pan-Tompkins 5-point operator has an inherent low-frequency gain
  // of 1.25 ((2*2 + 1 + 1 + 2*2)/8); the QRS detector is scale-invariant
  // so the gain is kept rather than hidden.
  const Signal x = ramp(100, 5.0, kFs);
  const Signal d = five_point_derivative(x, kFs);
  for (std::size_t i = 2; i + 2 < d.size(); ++i) EXPECT_NEAR(d[i], 6.25, 1e-9) << i;
}

TEST(DerivativeTest, FivePointFallsBackForShortSignals) {
  const Signal x{0.0, 1.0, 2.0};
  const Signal d = five_point_derivative(x, kFs);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_NEAR(d[1], kFs, 1e-9); // central difference of unit steps
}

TEST(DerivativeTest, ShortAndEmptyInputs) {
  EXPECT_TRUE(derivative(Signal{}, kFs).empty());
  EXPECT_EQ(derivative(Signal{1.0}, kFs).size(), 1u);
  EXPECT_EQ(second_derivative(Signal{1.0, 2.0}, kFs).size(), 2u);
}

TEST(DerivativeTest, InvalidFsThrows) {
  EXPECT_THROW(derivative(Signal{1.0, 2.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(second_derivative(Signal{1.0, 2.0}, -5.0), std::invalid_argument);
}

TEST(DerivativeTest, SignWithTolerance) {
  EXPECT_EQ(sign_with_tolerance(0.5, 0.1), 1);
  EXPECT_EQ(sign_with_tolerance(-0.5, 0.1), -1);
  EXPECT_EQ(sign_with_tolerance(0.05, 0.1), 0);
  EXPECT_EQ(sign_with_tolerance(-0.1, 0.1), 0);
}

} // namespace
} // namespace icgkit::dsp
