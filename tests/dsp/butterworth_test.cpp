#include "dsp/butterworth.h"

#include "dsp/biquad.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace icgkit::dsp {
namespace {

constexpr double kFs = 250.0;

TEST(ButterworthTest, LowpassUnityDcGain) {
  for (std::size_t order : {1u, 2u, 3u, 4u, 5u, 8u}) {
    const SosFilter f = butterworth_lowpass(order, 20.0, kFs);
    EXPECT_NEAR(sos_magnitude_at(f, 0.0, kFs), 1.0, 1e-12) << "order=" << order;
  }
}

TEST(ButterworthTest, LowpassMinus3dBAtCutoff) {
  for (std::size_t order : {2u, 4u, 6u}) {
    const SosFilter f = butterworth_lowpass(order, 20.0, kFs);
    EXPECT_NEAR(sos_magnitude_at(f, 20.0, kFs), 1.0 / std::sqrt(2.0), 1e-6)
        << "order=" << order;
  }
}

TEST(ButterworthTest, HighpassMinus3dBAtCutoff) {
  for (std::size_t order : {1u, 2u, 4u}) {
    const SosFilter f = butterworth_highpass(order, 5.0, kFs);
    EXPECT_NEAR(sos_magnitude_at(f, 5.0, kFs), 1.0 / std::sqrt(2.0), 1e-6)
        << "order=" << order;
  }
}

TEST(ButterworthTest, RolloffSteepensWithOrder) {
  const SosFilter f2 = butterworth_lowpass(2, 20.0, kFs);
  const SosFilter f4 = butterworth_lowpass(4, 20.0, kFs);
  const SosFilter f8 = butterworth_lowpass(8, 20.0, kFs);
  const double m2 = sos_magnitude_at(f2, 40.0, kFs);
  const double m4 = sos_magnitude_at(f4, 40.0, kFs);
  const double m8 = sos_magnitude_at(f8, 40.0, kFs);
  EXPECT_GT(m2, m4);
  EXPECT_GT(m4, m8);
  // Asymptotic slope check: one octave above cutoff an N-pole Butterworth
  // is ~ -6N dB (within a few dB this close to the corner).
  EXPECT_NEAR(20.0 * std::log10(m4), -24.0, 4.0);
}

TEST(ButterworthTest, MonotonePassband) {
  // Butterworth is maximally flat: magnitude must be non-increasing.
  const SosFilter f = butterworth_lowpass(4, 20.0, kFs);
  double prev = sos_magnitude_at(f, 0.0, kFs);
  for (double freq = 1.0; freq < 125.0; freq += 1.0) {
    const double cur = sos_magnitude_at(f, freq, kFs);
    EXPECT_LE(cur, prev + 1e-9) << "freq=" << freq;
    prev = cur;
  }
}

TEST(ButterworthTest, HighpassRejectsDc) {
  const SosFilter f = butterworth_highpass(2, 0.5, kFs);
  EXPECT_LT(sos_magnitude_at(f, 0.0, kFs), 1e-9);
}

TEST(ButterworthTest, BandpassShape) {
  const SosFilter f = butterworth_bandpass(2, 5.0, 15.0, kFs);
  EXPECT_GT(sos_magnitude_at(f, 9.0, kFs), 0.9);
  EXPECT_LT(sos_magnitude_at(f, 0.5, kFs), 0.05);
  EXPECT_LT(sos_magnitude_at(f, 50.0, kFs), 0.1);
}

TEST(ButterworthTest, PaperIcgFilterSpec) {
  // Section IV-A.2: low-pass Butterworth, cutoff 20 Hz at fs = 250 Hz.
  const SosFilter f = butterworth_lowpass(4, 20.0, kFs);
  EXPECT_GT(sos_magnitude_at(f, 1.0, kFs), 0.999); // cardiac fundamentals pass
  EXPECT_GT(sos_magnitude_at(f, 15.0, kFs), 0.9);  // ICG band passes
  EXPECT_LT(sos_magnitude_at(f, 50.0, kFs), 0.03); // powerline rejected
}

TEST(ButterworthTest, RejectsBadArguments) {
  EXPECT_THROW(butterworth_lowpass(0, 20.0, kFs), std::invalid_argument);
  EXPECT_THROW(butterworth_lowpass(4, 0.0, kFs), std::invalid_argument);
  EXPECT_THROW(butterworth_lowpass(4, 125.0, kFs), std::invalid_argument);
  EXPECT_THROW(butterworth_bandpass(2, 15.0, 5.0, kFs), std::invalid_argument);
}

TEST(ButterworthTest, StabilityPolesInsideUnitCircle) {
  // a2 is the product of the pole pair moduli squared; |a2| < 1 and
  // |a1| < 1 + a2 is the standard biquad stability triangle.
  for (std::size_t order : {2u, 4u, 6u, 8u}) {
    for (double fc : {0.5, 5.0, 20.0, 40.0, 100.0}) {
      const SosFilter f = butterworth_lowpass(order, fc, kFs);
      for (const Biquad& s : f.sections) {
        EXPECT_LT(std::abs(s.a2), 1.0) << "order=" << order << " fc=" << fc;
        EXPECT_LT(std::abs(s.a1), 1.0 + s.a2 + 1e-12) << "order=" << order << " fc=" << fc;
      }
    }
  }
}

TEST(ButterworthTest, ImpulseResponseDecays) {
  const SosFilter f = butterworth_lowpass(4, 20.0, kFs);
  Signal impulse(2000, 0.0);
  impulse[0] = 1.0;
  const Signal h = sos_apply(f, impulse);
  double tail = 0.0;
  for (std::size_t i = 1000; i < h.size(); ++i) tail += std::abs(h[i]);
  EXPECT_LT(tail, 1e-9);
}

TEST(ButterworthTest, StreamingMatchesBatch) {
  const SosFilter f = butterworth_lowpass(4, 20.0, kFs);
  Signal x(500);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(2.0 * std::numbers::pi * 7.0 * static_cast<double>(i) / kFs) +
           0.3 * std::cos(2.0 * std::numbers::pi * 33.0 * static_cast<double>(i) / kFs);
  const Signal batch = sos_apply(f, x);
  StreamingSos stream(f);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(stream.process(x[i]), batch[i], 1e-10) << "i=" << i;
}

class ButterCutoffSweep : public ::testing::TestWithParam<double> {};

TEST_P(ButterCutoffSweep, CutoffInvariant) {
  const double fc = GetParam();
  const SosFilter f = butterworth_lowpass(4, fc, kFs);
  EXPECT_NEAR(sos_magnitude_at(f, fc, kFs), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(sos_magnitude_at(f, 0.0, kFs), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, ButterCutoffSweep,
                         ::testing::Values(0.5, 1.0, 5.0, 10.0, 20.0, 40.0, 80.0, 110.0));

} // namespace
} // namespace icgkit::dsp
