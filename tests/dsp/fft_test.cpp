#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace icgkit::dsp {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

TEST(FftTest, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  Spectrum x(3);
  EXPECT_THROW(fft_inplace(x), std::invalid_argument);
}

TEST(FftTest, DeltaHasFlatSpectrum) {
  Spectrum x(8, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  fft_inplace(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ForwardInverseRoundTrip) {
  Spectrum x(64);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = {std::sin(0.3 * static_cast<double>(i)), std::cos(0.11 * static_cast<double>(i))};
  Spectrum y = x;
  fft_inplace(y);
  fft_inplace(y, /*inverse=*/true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-10) << i;
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-10) << i;
  }
}

TEST(FftTest, SingleToneBinPeak) {
  // A sine at exactly bin k peaks there with amplitude N/2.
  const std::size_t n = 256;
  const std::size_t k = 19;
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(kTwoPi * static_cast<double>(k) * static_cast<double>(i) /
                    static_cast<double>(n));
  const Signal mag = magnitude_spectrum(x);
  EXPECT_NEAR(mag[k], static_cast<double>(n) / 2.0, 1e-9);
  // All other bins (except conjugate, not in one-sided range) near zero.
  for (std::size_t b = 0; b < mag.size(); ++b) {
    if (b == k) continue;
    EXPECT_LT(mag[b], 1e-8) << "bin " << b;
  }
}

TEST(FftTest, ParsevalTheorem) {
  const std::size_t n = 128;
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(0.5 * static_cast<double>(i)) + 0.25 * static_cast<double>(i % 5);
  Spectrum c(n);
  for (std::size_t i = 0; i < n; ++i) c[i] = {x[i], 0.0};
  fft_inplace(c);
  double time_energy = 0.0;
  for (const double v : x) time_energy += v * v;
  double freq_energy = 0.0;
  for (const auto& v : c) freq_energy += std::norm(v);
  freq_energy /= static_cast<double>(n);
  EXPECT_NEAR(time_energy, freq_energy, 1e-8);
}

TEST(FftTest, WelchPeakAtToneFrequency) {
  const double fs = 250.0;
  const double f0 = 12.0;
  Signal x(5000);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(kTwoPi * f0 * static_cast<double>(i) / fs);
  WelchConfig cfg;
  cfg.segment_length = 1024;
  const Psd psd = welch_psd(x, fs, cfg);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < psd.power.size(); ++k)
    if (psd.power[k] > psd.power[peak]) peak = k;
  EXPECT_NEAR(psd.freq_hz[peak], f0, fs / 1024.0 * 1.5);
}

TEST(FftTest, WelchPowerScaling) {
  // A unit-amplitude sine has total power 0.5; Welch band power around the
  // tone should recover it within window-leakage error.
  const double fs = 250.0;
  Signal x(20000);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(kTwoPi * 20.0 * static_cast<double>(i) / fs);
  const Psd psd = welch_psd(x, fs);
  EXPECT_NEAR(band_power(psd, 15.0, 25.0), 0.5, 0.05);
  EXPECT_LT(band_power(psd, 40.0, 100.0), 0.01);
}

TEST(FftTest, WelchHandlesShortSignal) {
  Signal x(100, 1.0);
  const Psd psd = welch_psd(x, 250.0);
  EXPECT_FALSE(psd.power.empty());
}

TEST(FftTest, IcgBandDominatesAbove20Hz) {
  // Reproduces the paper's rationale for the 20 Hz cutoff: an ICG-like
  // signal (smooth ~1-8 Hz content) has negligible power above 20 Hz.
  const double fs = 250.0;
  Signal x(25000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    x[i] = std::sin(kTwoPi * 1.2 * t) + 0.5 * std::sin(kTwoPi * 4.0 * t) +
           0.2 * std::sin(kTwoPi * 8.0 * t);
  }
  const Psd psd = welch_psd(x, fs);
  const double low = band_power(psd, 0.5, 20.0);
  const double high = band_power(psd, 20.0, 125.0);
  EXPECT_GT(low / (high + 1e-12), 100.0);
}

} // namespace
} // namespace icgkit::dsp
