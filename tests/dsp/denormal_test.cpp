// DenormalGuard: flush-to-zero hygiene for IIR tails.
//
// After an impulse, an IIR filter's state decays geometrically and —
// without FTZ/DAZ — eventually lingers in subnormal territory, where
// many cores take a microcode assist per multiply. The guard trades that
// tail (worthless at this application's accuracy budget) for flat
// per-sample cost. The test drives a real pipeline filter's tail deep
// past the normal range and asserts the state never goes subnormal
// while the guard is engaged, and that the guard restores the previous
// FPU mode on scope exit.
#include "dsp/denormal.h"

#include "dsp/biquad.h"
#include "dsp/butterworth.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

namespace {

using namespace icgkit;

bool is_subnormal(double x) { return std::fpclassify(x) == FP_SUBNORMAL; }

// Feeds an impulse then zeros through the paper's ICG low-pass and
// reports whether any output sample of the decay tail was subnormal.
bool tail_produces_subnormals(std::size_t zeros) {
  dsp::StreamingSos sos(dsp::butterworth_lowpass(4, 20.0, 250.0));
  (void)sos.tick(1.0);
  bool seen = false;
  for (std::size_t i = 0; i < zeros; ++i) seen |= is_subnormal(sos.tick(0.0));
  return seen;
}

// Enough zero samples for a 4th-order 20 Hz/250 Hz Butterworth tail to
// decay from 1.0 well past 2^-1022 (the poles give roughly a decade of
// amplitude per ~15 samples; 40k samples is orders of magnitude spare).
constexpr std::size_t kTailSamples = 40000;

TEST(DenormalTest, GuardFlushesFilterTailToZero) {
  if (!dsp::DenormalGuard::supported())
    GTEST_SKIP() << "no FTZ/DAZ control on this target";
  dsp::DenormalGuard guard;
  EXPECT_FALSE(tail_produces_subnormals(kTailSamples))
      << "filter tail went subnormal despite FTZ/DAZ";
}

TEST(DenormalTest, WithoutGuardTailActuallyGoesSubnormal) {
  // Sanity check that the scenario above is non-trivial: under default
  // FPU mode the same tail does pass through the subnormal range. Some
  // environments force FTZ globally (e.g. certain libm/startup flags);
  // skip rather than fail there.
  if (!dsp::DenormalGuard::supported())
    GTEST_SKIP() << "no FTZ/DAZ control on this target";
  if (!tail_produces_subnormals(kTailSamples))
    GTEST_SKIP() << "environment already flushes denormals by default";
  SUCCEED();
}

TEST(DenormalTest, GuardRestoresPreviousModeOnExit) {
  if (!dsp::DenormalGuard::supported())
    GTEST_SKIP() << "no FTZ/DAZ control on this target";
  // Direct arithmetic probe: x / 2 where x is the smallest normal double
  // is subnormal under default rounding and exactly 0.0 under FTZ.
  volatile double smallest_normal = 2.2250738585072014e-308;
  volatile double half;
  {
    dsp::DenormalGuard guard;
    half = smallest_normal / 2.0;
    EXPECT_EQ(half, 0.0) << "FTZ not engaged inside guard scope";
  }
  half = smallest_normal / 2.0;
  if (half == 0.0)
    GTEST_SKIP() << "environment already flushes denormals by default";
  EXPECT_TRUE(is_subnormal(half)) << "guard failed to restore FPU mode";
}

TEST(DenormalTest, GuardsNest) {
  if (!dsp::DenormalGuard::supported())
    GTEST_SKIP() << "no FTZ/DAZ control on this target";
  volatile double smallest_normal = 2.2250738585072014e-308;
  dsp::DenormalGuard outer;
  {
    dsp::DenormalGuard inner;
    EXPECT_EQ(smallest_normal / 2.0, 0.0);
  }
  // Inner scope exit must not disturb the outer guard's mode.
  EXPECT_EQ(smallest_normal / 2.0, 0.0) << "inner guard clobbered outer FTZ mode";
}

} // namespace
