#include "dsp/window.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icgkit::dsp {
namespace {

TEST(WindowTest, EmptyAndSingleton) {
  EXPECT_TRUE(make_window(WindowKind::Hamming, 0).empty());
  const Signal w = make_window(WindowKind::Hann, 1);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(WindowTest, RectangularIsAllOnes) {
  const Signal w = make_window(WindowKind::Rectangular, 17);
  for (const double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(WindowTest, HammingEndpointsAndPeak) {
  const Signal w = make_window(WindowKind::Hamming, 33);
  EXPECT_NEAR(w.front(), 0.08, 1e-12);
  EXPECT_NEAR(w.back(), 0.08, 1e-12);
  EXPECT_NEAR(w[16], 1.0, 1e-12); // center of odd-length symmetric window
}

TEST(WindowTest, HannEndpointsAreZero) {
  const Signal w = make_window(WindowKind::Hann, 21);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[10], 1.0, 1e-12);
}

TEST(WindowTest, BlackmanEndpointsNearZero) {
  const Signal w = make_window(WindowKind::Blackman, 21);
  EXPECT_NEAR(w.front(), 0.0, 1e-9);
  EXPECT_NEAR(w[10], 1.0, 1e-12);
}

class WindowSymmetryTest : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowSymmetryTest, SymmetricForOddAndEvenLengths) {
  for (const std::size_t n : {8u, 9u, 32u, 33u, 255u}) {
    const Signal w = make_window(GetParam(), n);
    for (std::size_t i = 0; i < n / 2; ++i) {
      EXPECT_NEAR(w[i], w[n - 1 - i], 1e-12) << "n=" << n << " i=" << i;
    }
  }
}

TEST_P(WindowSymmetryTest, ValuesInUnitRange) {
  const Signal w = make_window(GetParam(), 101);
  for (const double v : w) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WindowSymmetryTest,
                         ::testing::Values(WindowKind::Rectangular, WindowKind::Hamming,
                                           WindowKind::Hann, WindowKind::Blackman));

TEST(WindowTest, ApplyWindowMultiplies) {
  Signal x{1.0, 2.0, 3.0};
  const Signal w{0.5, 1.0, 2.0};
  apply_window(x, w);
  EXPECT_DOUBLE_EQ(x[0], 0.5);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 6.0);
}

} // namespace
} // namespace icgkit::dsp
