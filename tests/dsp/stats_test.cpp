#include "dsp/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icgkit::dsp {
namespace {

TEST(StatsTest, MeanVarianceBasics) {
  const Signal x{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(x), 2.5);
  EXPECT_NEAR(variance(x), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(x), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(StatsTest, EmptyAndSingletonAreSafe) {
  EXPECT_DOUBLE_EQ(mean(Signal{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(Signal{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(Signal{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(rms(Signal{}), 0.0);
  EXPECT_DOUBLE_EQ(median(Signal{}), 0.0);
}

TEST(StatsTest, Rms) {
  const Signal x{3.0, -4.0};
  EXPECT_NEAR(rms(x), std::sqrt(12.5), 1e-12);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const Signal x{1.0, 2.0, 3.0, 4.0, 5.0};
  Signal y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = 3.0 * x[i] - 7.0;
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  for (auto& v : y) v = -v;
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantInputIsZero) {
  const Signal x{1.0, 1.0, 1.0};
  const Signal y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(StatsTest, PearsonSizeMismatchThrows) {
  EXPECT_THROW(pearson(Signal{1.0, 2.0}, Signal{1.0}), std::invalid_argument);
}

TEST(StatsTest, PearsonIsShiftAndScaleInvariant) {
  const Signal x{0.3, -1.2, 2.2, 0.1, 0.9, -0.5};
  const Signal y{1.0, 0.2, 2.9, 1.1, 1.6, 0.4};
  const double r = pearson(x, y);
  Signal y2(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y2[i] = 100.0 + 42.0 * y[i];
  EXPECT_NEAR(pearson(x, y2), r, 1e-12);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(Signal{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(Signal{4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(StatsTest, MadOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(mad(Signal{2.0, 2.0, 2.0, 2.0}), 0.0);
}

TEST(StatsTest, MadOfUniformGridExactValue) {
  // For the integer grid [-50, 50], median = 0 and median(|x|) = 25, so the
  // scaled MAD is exactly 1.4826 * 25.
  Signal x;
  for (int i = -50; i <= 50; ++i) x.push_back(static_cast<double>(i));
  EXPECT_NEAR(mad(x), 1.4826 * 25.0, 1e-9);
}

TEST(StatsTest, MadIgnoresOutliers) {
  // Robustness: one enormous outlier must not move the MAD much, unlike
  // the standard deviation.
  Signal x;
  for (int i = -50; i <= 50; ++i) x.push_back(static_cast<double>(i));
  const double mad_clean = mad(x);
  x.push_back(1e6);
  EXPECT_NEAR(mad(x), mad_clean, 0.05 * mad_clean);
  EXPECT_GT(stddev(x), 100.0 * mad_clean);
}

TEST(StatsTest, PercentileEndpoints) {
  const Signal x{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(x, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(x, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(x, 50.0), 25.0);
  EXPECT_THROW(percentile(x, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(x, 101.0), std::invalid_argument);
}

TEST(StatsTest, ArgminArgmax) {
  const Signal x{3.0, -1.0, 7.0, 2.0};
  EXPECT_EQ(argmax(x), 2u);
  EXPECT_EQ(argmin(x), 1u);
  EXPECT_THROW(argmax(Signal{}), std::invalid_argument);
}

TEST(StatsTest, FitLineExact) {
  const Signal x{0.0, 1.0, 2.0, 3.0};
  const Signal y{1.0, 3.0, 5.0, 7.0};
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.at(10.0), 21.0, 1e-12);
  ASSERT_TRUE(fit.zero_crossing().has_value());
  EXPECT_NEAR(*fit.zero_crossing(), -0.5, 1e-12);
}

TEST(StatsTest, FitLineFlatHasNoZeroCrossing) {
  const Signal x{0.0, 1.0, 2.0};
  const Signal y{4.0, 4.0, 4.0};
  const LineFit fit = fit_line(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_FALSE(fit.zero_crossing().has_value());
}

TEST(StatsTest, FitLineIndexed) {
  const Signal y{1.0, 2.0, 3.0, 4.0};
  const LineFit fit = fit_line_indexed(y);
  EXPECT_NEAR(fit.slope, 1.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
}

TEST(StatsTest, FitLineNeedsTwoPoints) {
  EXPECT_THROW(fit_line(Signal{1.0}, Signal{1.0}), std::invalid_argument);
}

TEST(StatsTest, RelativeErrorMatchesPaperDefinition) {
  // Paper equations (1)-(3): e = (Za - Zb) / Za.
  EXPECT_NEAR(relative_error(200.0, 180.0), 0.1, 1e-12);
  EXPECT_NEAR(relative_error(200.0, 220.0), -0.1, 1e-12);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 5.0), 0.0);
}

} // namespace
} // namespace icgkit::dsp
