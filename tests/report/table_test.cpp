#include "report/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace icgkit::report {
namespace {

TEST(TableTest, NeedsHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, BuildsRows) {
  Table t({"Subject", "r"});
  t.row().add("Subject 1").add(0.9081);
  t.row().add("Subject 2").add(0.9471);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.rows()[0][0], "Subject 1");
  EXPECT_EQ(t.rows()[1][1], "0.9471");
}

TEST(TableTest, TooManyCellsThrows) {
  Table t({"a"});
  t.row().add("x");
  EXPECT_THROW(t.add("y"), std::logic_error);
}

TEST(TableTest, PrintContainsHeaderAndUnderline) {
  Table t({"col", "value"});
  t.row().add("x").add(1.5, 1);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("col"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
}

TEST(TableTest, CsvFormat) {
  Table t({"a", "b"});
  t.row().add(static_cast<long long>(1)).add(static_cast<long long>(2));
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, DoublePrecisionControl) {
  Table t({"v"});
  t.row().add(3.14159, 2);
  EXPECT_EQ(t.rows()[0][0], "3.14");
}

TEST(TableTest, BannerFormat) {
  std::ostringstream os;
  banner(os, "Table I");
  EXPECT_EQ(os.str(), "\n== Table I ==\n");
}

} // namespace
} // namespace icgkit::report
