#include "synth/cole.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icgkit::synth {
namespace {

TEST(ColeTest, LimitsAtDcAndInfinity) {
  ColeModel m;
  m.r0_ohm = 30.0;
  m.rinf_ohm = 18.0;
  EXPECT_NEAR(m.magnitude(0.0), 30.0, 1e-12);
  EXPECT_NEAR(m.magnitude(1e12), 18.0, 0.1);
}

TEST(ColeTest, MagnitudeMonotoneDecreasing) {
  ColeModel m;
  double prev = m.magnitude(10.0);
  for (double f = 100.0; f <= 1e6; f *= 1.5) {
    const double cur = m.magnitude(f);
    EXPECT_LT(cur, prev + 1e-9) << "f=" << f;
    prev = cur;
  }
}

TEST(ColeTest, HalfwayNearCharacteristicFrequency) {
  ColeModel m;
  m.r0_ohm = 30.0;
  m.rinf_ohm = 18.0;
  m.fc_hz = 30e3;
  m.alpha = 1.0; // pure Debye for the analytic check
  // At f = fc: Z = Rinf + (R0-Rinf)/(1+j), |dispersive part| = 12/sqrt(2).
  const double expected = std::abs(std::complex<double>(18.0, 0.0) +
                                   std::complex<double>(12.0, 0.0) /
                                       std::complex<double>(1.0, 1.0));
  EXPECT_NEAR(m.magnitude(30e3), expected, 1e-9);
}

TEST(ColeTest, AlphaBroadensDispersion) {
  ColeModel sharp, broad;
  sharp.alpha = 1.0;
  broad.alpha = 0.5;
  // At one decade below fc, the broad model is further from R0.
  EXPECT_LT(broad.magnitude(3e3), sharp.magnitude(3e3));
}

TEST(ColeTest, NegativeFrequencyThrows) {
  ColeModel m;
  EXPECT_THROW((void)m.impedance(-1.0), std::invalid_argument);
}

TEST(InstrumentationTest, PeakAtGeometricMean) {
  InstrumentationResponse h;
  h.hp_corner_hz = 3e3;
  h.lp_corner_hz = 60e3;
  EXPECT_NEAR(h.peak_frequency_hz(), std::sqrt(3e3 * 60e3), 1e-6);
  EXPECT_NEAR(h.normalized(h.peak_frequency_hz()), 1.0, 1e-12);
}

TEST(InstrumentationTest, RisesThenFalls) {
  InstrumentationResponse h;
  const double peak = h.peak_frequency_hz();
  EXPECT_LT(h.normalized(peak / 8.0), h.normalized(peak / 2.0));
  EXPECT_LT(h.normalized(peak * 8.0), h.normalized(peak * 2.0));
}

TEST(InstrumentationTest, AblationSwitches) {
  InstrumentationResponse h;
  h.enable_hp = false;
  // Low-pass only: monotone decreasing.
  EXPECT_GT(h.normalized(1e3), h.normalized(1e5));
  h.enable_hp = true;
  h.enable_lp = false;
  // High-pass only: monotone increasing.
  EXPECT_LT(h.normalized(1e3), h.normalized(1e5));
  h.enable_hp = false;
  EXPECT_DOUBLE_EQ(h.normalized(123.0), 1.0); // both off: flat
}

TEST(InstrumentationTest, ZeroFrequencyIsZero) {
  InstrumentationResponse h;
  EXPECT_DOUBLE_EQ(h.raw(0.0), 0.0);
}

// The headline shape of the paper's Figs 6-7: measured bioimpedance rises
// from 2 kHz to 10 kHz, then falls through 50 and 100 kHz.
TEST(MeasuredBioimpedanceTest, PaperFrequencyOrdering) {
  ColeModel tissue;
  InstrumentationResponse channel;
  const double z2 = measured_bioimpedance(tissue, channel, 2e3);
  const double z10 = measured_bioimpedance(tissue, channel, 10e3);
  const double z50 = measured_bioimpedance(tissue, channel, 50e3);
  const double z100 = measured_bioimpedance(tissue, channel, 100e3);
  EXPECT_GT(z10, z2);
  EXPECT_GT(z10, z50);
  EXPECT_GT(z50, z100);
}

TEST(MeasuredBioimpedanceTest, PureTissueIsMonotone) {
  // Without the channel terms the non-monotone shape disappears -- the
  // rationale for modelling the instrumentation explicitly.
  ColeModel tissue;
  InstrumentationResponse flat;
  flat.enable_hp = false;
  flat.enable_lp = false;
  const double z2 = measured_bioimpedance(tissue, flat, 2e3);
  const double z10 = measured_bioimpedance(tissue, flat, 10e3);
  EXPECT_GT(z2, z10);
}

} // namespace
} // namespace icgkit::synth
