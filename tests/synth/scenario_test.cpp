// Scenario-engine contract: deterministic seeding, per-channel stage
// isolation, and the physical semantics of each corruption stage
// (held samples during dropouts, additive tones, dynamic-only fades).
#include "synth/scenario.h"

#include "dsp/stats.h"
#include "synth/subject.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace {

using namespace icgkit;
using synth::Channel;
using synth::ScenarioReport;
using synth::ScenarioSpec;

synth::Recording test_recording() {
  synth::RecordingConfig cfg;
  cfg.duration_s = 30.0;
  cfg.fs = 250.0;
  cfg.session_seed = 11;
  const auto roster = synth::paper_roster();
  const synth::SourceActivity src = generate_source(roster[0], cfg);
  return measure_thoracic(roster[0], src, 50e3);
}

TEST(ScenarioTest, SameSeedIsBitIdenticalDifferentSeedIsNot) {
  const synth::Recording rec = test_recording();
  const ScenarioSpec spec = ScenarioSpec::moderate();
  const synth::Recording a = corrupt(rec, spec, 77);
  const synth::Recording b = corrupt(rec, spec, 77);
  const synth::Recording c = corrupt(rec, spec, 78);
  EXPECT_EQ(a.ecg_mv, b.ecg_mv);
  EXPECT_EQ(a.z_ohm, b.z_ohm);
  EXPECT_NE(a.z_ohm, c.z_ohm) << "different seeds should corrupt differently";
}

TEST(ScenarioTest, CleanSpecIsNoop) {
  const synth::Recording rec = test_recording();
  synth::Recording copy = rec;
  const ScenarioReport report = apply_scenario(copy, ScenarioSpec::clean(), 5);
  EXPECT_TRUE(report.events.empty());
  EXPECT_EQ(copy.ecg_mv, rec.ecg_mv);
  EXPECT_EQ(copy.z_ohm, rec.z_ohm);
}

TEST(ScenarioTest, StageEditingDoesNotShiftOtherStagesNoise) {
  // Independent RNG substreams: dropping the *last* stage must not change
  // what the first stages injected.
  const synth::Recording rec = test_recording();
  ScenarioSpec two;
  two.add(synth::AdditiveNoiseConfig{.white_sigma = 0.01, .pink_sigma = 0.0}, Channel::Ecg);
  two.add(synth::MainsConfig{.amplitude = 0.05, .mains_hz = 50.0}, Channel::Z);
  ScenarioSpec one;
  one.add(synth::AdditiveNoiseConfig{.white_sigma = 0.01, .pink_sigma = 0.0}, Channel::Ecg);

  const synth::Recording with_two = corrupt(rec, two, 99);
  const synth::Recording with_one = corrupt(rec, one, 99);
  EXPECT_EQ(with_two.ecg_mv, with_one.ecg_mv)
      << "removing a later stage changed an earlier stage's draws";
}

TEST(ScenarioTest, DropoutHoldsSamplesAndRespectsChannel) {
  const synth::Recording rec = test_recording();
  ScenarioSpec spec;
  spec.add(synth::DropoutConfig{.rate_per_min = 20.0, .mean_duration_s = 1.0}, Channel::Z);
  synth::Recording corrupted = rec;
  const ScenarioReport report = apply_scenario(corrupted, spec, 3);

  ASSERT_FALSE(report.events.empty()) << "20/min for 30 s should place gaps";
  EXPECT_EQ(corrupted.ecg_mv, rec.ecg_mv) << "Z-only stage must not touch the ECG";

  for (const synth::CorruptionEvent& e : report.events) {
    ASSERT_TRUE(e.dropout);
    EXPECT_EQ(e.channel, Channel::Z);
    ASSERT_LT(e.begin, e.end);
    ASSERT_LE(e.end, corrupted.z_ohm.size());
    const double held = corrupted.z_ohm[e.begin];
    for (std::size_t i = e.begin; i < e.end; ++i)
      ASSERT_EQ(corrupted.z_ohm[i], held) << "sample " << i << " not held";
    if (e.begin > 0) {
      EXPECT_EQ(held, corrupted.z_ohm[e.begin - 1]) << "hold should freeze the last value";
    }
  }
}

TEST(ScenarioTest, BothChannelDropoutIsOnePhysicalEvent) {
  // A contact gap is one physical event: the Both stage must freeze the
  // same instants of both channels.
  const synth::Recording rec = test_recording();
  ScenarioSpec spec;
  spec.add(synth::DropoutConfig{.rate_per_min = 10.0, .mean_duration_s = 0.8},
           Channel::Both);
  synth::Recording corrupted = rec;
  const ScenarioReport report = apply_scenario(corrupted, spec, 21);

  std::vector<std::pair<std::size_t, std::size_t>> ecg_gaps, z_gaps;
  for (const synth::CorruptionEvent& e : report.events) {
    ASSERT_TRUE(e.dropout);
    if (e.channel == Channel::Ecg) {
      ecg_gaps.emplace_back(e.begin, e.end);
    } else {
      z_gaps.emplace_back(e.begin, e.end);
    }
  }
  ASSERT_FALSE(ecg_gaps.empty());
  EXPECT_EQ(ecg_gaps, z_gaps) << "Both-channel gaps must coincide sample for sample";
}

TEST(ScenarioTest, MainsAddsToneOfRequestedAmplitude) {
  const synth::Recording rec = test_recording();
  ScenarioSpec spec;
  spec.add(synth::MainsConfig{.amplitude = 0.1, .mains_hz = 50.0}, Channel::Ecg);
  const synth::Recording corrupted = corrupt(rec, spec, 7);

  const std::size_t n = rec.ecg_mv.size();
  dsp::Signal delta(n);
  for (std::size_t i = 0; i < n; ++i) delta[i] = corrupted.ecg_mv[i] - rec.ecg_mv[i];
  // A sinusoid of amplitude A has RMS A/sqrt(2); the wobble is a percent.
  EXPECT_NEAR(dsp::rms(delta), 0.1 / std::numbers::sqrt2, 0.01);
  // And the tone's energy concentrates at the mains frequency: projecting
  // onto the 50 Hz quadrature pair recovers nearly all of it.
  double c = 0.0, s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = 2.0 * std::numbers::pi * 50.0 * static_cast<double>(i) / rec.fs;
    c += delta[i] * std::cos(w);
    s += delta[i] * std::sin(w);
  }
  const double tone_power = 2.0 * (c * c + s * s) / static_cast<double>(n * n);
  const double total_power = dsp::rms(delta) * dsp::rms(delta);
  EXPECT_GT(tone_power / total_power, 0.9);
}

TEST(ScenarioTest, FadeAttenuatesDynamicsOnly) {
  const synth::Recording rec = test_recording();
  ScenarioSpec spec;
  spec.add(synth::AmplitudeFadeConfig{.rate_per_min = 20.0, .mean_duration_s = 2.0,
                                      .depth = 0.8},
           Channel::Z);
  synth::Recording corrupted = rec;
  const ScenarioReport report = apply_scenario(corrupted, spec, 13);
  ASSERT_FALSE(report.events.empty());

  const synth::CorruptionEvent& e = report.events.front();
  double orig_dev = 0.0, faded_dev = 0.0;
  for (std::size_t i = e.begin; i < e.end; ++i) {
    orig_dev += std::abs(rec.z_ohm[i] - rec.z0_mean_ohm);
    faded_dev += std::abs(corrupted.z_ohm[i] - rec.z0_mean_ohm);
  }
  EXPECT_LT(faded_dev, orig_dev) << "fade must attenuate the dynamic component";
  // Outside every event the channel is untouched.
  std::size_t first_event_begin = corrupted.z_ohm.size();
  for (const synth::CorruptionEvent& ev : report.events)
    first_event_begin = std::min(first_event_begin, ev.begin);
  for (std::size_t i = 0; i < first_event_begin; ++i)
    ASSERT_EQ(corrupted.z_ohm[i], rec.z_ohm[i]);
}

TEST(ScenarioTest, CorruptedWorkloadVariesPerRecording) {
  synth::RecordingConfig cfg;
  cfg.duration_s = 6.0;
  cfg.session_seed = 2;
  std::vector<ScenarioReport> reports;
  const auto workload =
      synth::make_corrupted_workload(3, cfg, ScenarioSpec::moderate(), 50, &reports);
  ASSERT_EQ(workload.size(), 3u);
  ASSERT_EQ(reports.size(), 3u);
  // Distinct per-recording seeds: same roster subject would otherwise be
  // degraded identically across the fleet.
  EXPECT_NE(workload[0].z_ohm, workload[1].z_ohm);
  EXPECT_NE(workload[1].z_ohm, workload[2].z_ohm);
}

TEST(ScenarioTest, InDropoutQueriesOverlap) {
  ScenarioReport report;
  report.events.push_back({0, Channel::Z, 100, 200, true});
  report.events.push_back({0, Channel::Z, 400, 450, false});  // not a dropout
  EXPECT_TRUE(report.in_dropout(150, 160));
  EXPECT_TRUE(report.in_dropout(190, 300));
  EXPECT_TRUE(report.in_dropout(50, 101));
  EXPECT_FALSE(report.in_dropout(200, 300));  // half-open interval
  EXPECT_FALSE(report.in_dropout(410, 440));  // non-dropout event ignored
}

} // namespace
