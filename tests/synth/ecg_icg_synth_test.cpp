#include "synth/ecg_synth.h"
#include "synth/icg_synth.h"
#include "synth/rr_process.h"

#include "dsp/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icgkit::synth {
namespace {

constexpr double kFs = 250.0;

std::vector<double> fixed_rr(std::size_t beats, double rr) {
  return std::vector<double>(beats, rr);
}

TEST(RrProcessTest, CoversDuration) {
  Rng rng(1);
  RrConfig cfg;
  const auto rr = generate_rr_intervals(cfg, 30.0, rng);
  double total = 0.0;
  for (const double v : rr) total += v;
  EXPECT_GE(total, 30.0);
  EXPECT_LT(total, 32.0);
}

TEST(RrProcessTest, MeanMatchesHeartRate) {
  Rng rng(2);
  RrConfig cfg;
  cfg.mean_hr_bpm = 75.0;
  const auto rr = generate_rr_intervals(cfg, 300.0, rng);
  EXPECT_NEAR(dsp::mean(rr), 60.0 / 75.0, 0.02);
}

TEST(RrProcessTest, AllIntervalsPhysiological) {
  Rng rng(3);
  RrConfig cfg;
  cfg.jitter_fraction = 0.2; // extreme jitter still clamps
  const auto rr = generate_rr_intervals(cfg, 120.0, rng);
  for (const double v : rr) {
    EXPECT_GE(v, 0.3);
    EXPECT_LT(v, 2.0);
  }
}

TEST(RrProcessTest, RejectsBadArgs) {
  Rng rng(4);
  RrConfig cfg;
  cfg.mean_hr_bpm = 5.0;
  EXPECT_THROW(generate_rr_intervals(cfg, 10.0, rng), std::invalid_argument);
  cfg.mean_hr_bpm = 60.0;
  EXPECT_THROW(generate_rr_intervals(cfg, -1.0, rng), std::invalid_argument);
}

TEST(EcgSynthTest, RPeakCountMatchesRrSeries) {
  const auto rr = fixed_rr(10, 0.8);
  const EcgSynthesis out = synthesize_ecg(rr, kFs);
  // 8 s of signal at RR = 0.8 -> one R per beat; boundary effects allow
  // off-by-one.
  EXPECT_GE(out.r_times_s.size(), 9u);
  EXPECT_LE(out.r_times_s.size(), 10u);
}

TEST(EcgSynthTest, RPeaksEquispacedForConstantRr) {
  const auto rr = fixed_rr(12, 0.75);
  const EcgSynthesis out = synthesize_ecg(rr, kFs);
  ASSERT_GE(out.r_times_s.size(), 3u);
  for (std::size_t i = 1; i < out.r_times_s.size(); ++i)
    EXPECT_NEAR(out.r_times_s[i] - out.r_times_s[i - 1], 0.75, 0.01) << i;
}

TEST(EcgSynthTest, RAmplitudeScaledAsConfigured) {
  const auto rr = fixed_rr(10, 0.8);
  EcgSynthConfig cfg;
  cfg.r_amplitude_mv = 1.5;
  const EcgSynthesis out = synthesize_ecg(rr, kFs, cfg);
  const double peak = *std::max_element(out.ecg_mv.begin(), out.ecg_mv.end());
  EXPECT_NEAR(peak, 1.5, 0.15);
}

TEST(EcgSynthTest, SignalPeaksAtRTimes) {
  const auto rr = fixed_rr(8, 0.9);
  const EcgSynthesis out = synthesize_ecg(rr, kFs);
  for (const double tr : out.r_times_s) {
    const std::size_t idx = static_cast<std::size_t>(tr * kFs);
    if (idx + 5 >= out.ecg_mv.size() || idx < 5) continue;
    // The R sample should dominate its +-100 ms neighbourhood.
    double local_max = 0.0;
    for (std::size_t j = idx - 5; j <= idx + 5; ++j)
      local_max = std::max(local_max, out.ecg_mv[j]);
    double far = 0.0;
    for (std::size_t j = idx + 13; j < std::min(out.ecg_mv.size(), idx + 25); ++j)
      far = std::max(far, out.ecg_mv[j]);
    EXPECT_GT(local_max, far + 0.2) << "R at " << tr;
  }
}

TEST(EcgSynthTest, HasPAndTWaves) {
  // T wave: positive deflection after R. P wave: positive before QRS.
  const auto rr = fixed_rr(6, 1.0);
  const EcgSynthesis out = synthesize_ecg(rr, kFs);
  ASSERT_GE(out.r_times_s.size(), 3u);
  const double tr = out.r_times_s[1];
  const std::size_t r_idx = static_cast<std::size_t>(tr * kFs);
  // T region: R + 150..350 ms.
  double t_max = -1.0;
  for (std::size_t j = r_idx + 38; j < r_idx + 88; ++j) t_max = std::max(t_max, out.ecg_mv[j]);
  EXPECT_GT(t_max, 0.05);
  EXPECT_LT(t_max, 0.6);
  // P region: R - 200..100 ms before.
  double p_max = -1.0;
  for (std::size_t j = r_idx - 50; j < r_idx - 12; ++j) p_max = std::max(p_max, out.ecg_mv[j]);
  EXPECT_GT(p_max, 0.02);
  EXPECT_LT(p_max, 0.4);
}

TEST(EcgSynthTest, RejectsBadInput) {
  EXPECT_THROW(synthesize_ecg({}, kFs), std::invalid_argument);
  EXPECT_THROW(synthesize_ecg({0.8, -0.1}, kFs), std::invalid_argument);
  EXPECT_THROW(synthesize_ecg({0.8}, 0.0), std::invalid_argument);
}

TEST(IcgSynthTest, OneTruthPerCompleteBeat) {
  Rng rng(5);
  IcgSynthConfig cfg;
  const std::vector<double> r_times{0.5, 1.3, 2.1, 2.9, 3.7};
  const IcgSynthesis out = synthesize_icg(r_times, 5.0, kFs, cfg, rng);
  EXPECT_EQ(out.beats.size(), 5u);
}

TEST(IcgSynthTest, TruncatedFinalBeatDropped) {
  Rng rng(6);
  IcgSynthConfig cfg;
  const std::vector<double> r_times{0.5, 1.3, 4.8}; // last one would overrun 5 s
  const IcgSynthesis out = synthesize_icg(r_times, 5.0, kFs, cfg, rng);
  EXPECT_EQ(out.beats.size(), 2u);
}

TEST(IcgSynthTest, GroundTruthOrderingAndRanges) {
  Rng rng(7);
  IcgSynthConfig cfg;
  const std::vector<double> r_times{0.5, 1.4, 2.3, 3.2};
  const IcgSynthesis out = synthesize_icg(r_times, 5.0, kFs, cfg, rng);
  for (const BeatTruth& b : out.beats) {
    EXPECT_LT(b.r_time_s, b.b_time_s);
    EXPECT_LT(b.b_time_s, b.c_time_s);
    EXPECT_LT(b.c_time_s, b.x_time_s);
    // PEP/LVET in physiological ranges (allowing the B-notch offset).
    EXPECT_GT(b.pep_s, 0.04);
    EXPECT_LT(b.pep_s, 0.18);
    EXPECT_GT(b.lvet_s, 0.2);
    EXPECT_LT(b.lvet_s, 0.45);
    EXPECT_GT(b.dzdt_max, 0.5);
  }
}

TEST(IcgSynthTest, CPointIsWaveformMaximumOfBeat) {
  Rng rng(8);
  IcgSynthConfig cfg;
  cfg.amp_jitter_frac = 0.0;
  const std::vector<double> r_times{1.0};
  const IcgSynthesis out = synthesize_icg(r_times, 3.0, kFs, cfg, rng);
  ASSERT_EQ(out.beats.size(), 1u);
  const std::size_t c_idx = static_cast<std::size_t>(out.beats[0].c_time_s * kFs);
  const std::size_t global_max = dsp::argmax(out.icg);
  EXPECT_NEAR(static_cast<double>(c_idx), static_cast<double>(global_max), 1.5);
}

TEST(IcgSynthTest, DeltaZReturnsToBaselineAfterBeat) {
  Rng rng(9);
  IcgSynthConfig cfg;
  const std::vector<double> r_times{0.6, 1.5};
  const IcgSynthesis out = synthesize_icg(r_times, 3.5, kFs, cfg, rng);
  // After the last beat's recovery the cumulative integral must be ~0
  // relative to the C-wave swing.
  const double swing = out.beats[0].dzdt_max;
  EXPECT_LT(std::abs(out.delta_z.back()), 0.05 * swing);
}

TEST(IcgSynthTest, IcgIsMinusDzDt) {
  Rng rng(10);
  IcgSynthConfig cfg;
  const std::vector<double> r_times{0.7};
  const IcgSynthesis out = synthesize_icg(r_times, 2.5, kFs, cfg, rng);
  // Check the derivative relationship numerically mid-beat.
  for (std::size_t i = 200; i < 400; ++i) {
    const double dz_dt = (out.delta_z[i] - out.delta_z[i - 1]) * kFs;
    EXPECT_NEAR(-dz_dt, out.icg[i], 0.05 * cfg.dzdt_max + 1e-9) << i;
  }
}

TEST(IcgSynthTest, AmplitudeTracksConfig) {
  Rng rng(11);
  IcgSynthConfig cfg;
  cfg.dzdt_max = 2.5;
  cfg.amp_jitter_frac = 0.0;
  const std::vector<double> r_times{0.8};
  const IcgSynthesis out = synthesize_icg(r_times, 2.5, kFs, cfg, rng);
  ASSERT_EQ(out.beats.size(), 1u);
  EXPECT_NEAR(out.beats[0].dzdt_max, 2.5, 0.25);
}

TEST(IcgSynthTest, PepLvetJitterIsBounded) {
  Rng rng(12);
  IcgSynthConfig cfg;
  std::vector<double> r_times;
  for (int i = 0; i < 40; ++i) r_times.push_back(0.5 + 0.9 * i);
  const IcgSynthesis out = synthesize_icg(r_times, 38.0, kFs, cfg, rng);
  dsp::Signal peps, lvets;
  for (const auto& b : out.beats) {
    peps.push_back(b.pep_s);
    lvets.push_back(b.lvet_s);
  }
  EXPECT_LT(dsp::stddev(peps), 0.015);
  EXPECT_LT(dsp::stddev(lvets), 0.02);
}

TEST(IcgSynthTest, RejectsBadArgs) {
  Rng rng(13);
  IcgSynthConfig cfg;
  EXPECT_THROW(synthesize_icg({0.5}, -1.0, kFs, cfg, rng), std::invalid_argument);
  EXPECT_THROW(synthesize_icg({0.5}, 2.0, 0.0, cfg, rng), std::invalid_argument);
}

} // namespace
} // namespace icgkit::synth
