#include "synth/artifacts.h"
#include "synth/recording.h"
#include "synth/subject.h"

#include "dsp/fft.h"
#include "dsp/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icgkit::synth {
namespace {

constexpr double kFs = 250.0;

TEST(ArtifactsTest, RespirationDominantAtBreathingRate) {
  Rng rng(1);
  RespirationConfig cfg;
  cfg.freq_hz = 0.25;
  const dsp::Signal x = respiration_artifact(15000, kFs, cfg, rng);
  dsp::WelchConfig w;
  w.segment_length = 4096;
  const dsp::Psd psd = dsp::welch_psd(x, kFs, w);
  const double in_band = dsp::band_power(psd, 0.15, 0.6);
  const double out_band = dsp::band_power(psd, 1.5, 100.0);
  EXPECT_GT(in_band, 20.0 * out_band);
}

TEST(ArtifactsTest, RespirationAmplitudeScales) {
  Rng rng(2);
  RespirationConfig cfg;
  cfg.amplitude = 2.0;
  const dsp::Signal x = respiration_artifact(10000, kFs, cfg, rng);
  EXPECT_NEAR(dsp::rms(x), 2.0 * dsp::rms(respiration_artifact(10000, kFs, {}, rng)) / 0.3,
              1.2);
}

TEST(ArtifactsTest, MotionIsBandLimited) {
  Rng rng(3);
  MotionConfig cfg;
  cfg.amplitude = 1.0;
  const dsp::Signal x = motion_artifact(20000, kFs, cfg, rng);
  EXPECT_NEAR(dsp::rms(x), 1.0, 0.05);
  const dsp::Psd psd = dsp::welch_psd(x, kFs);
  const double in_band = dsp::band_power(psd, 0.1, 10.0);
  const double out_band = dsp::band_power(psd, 25.0, 120.0);
  EXPECT_GT(in_band, 20.0 * out_band);
}

TEST(ArtifactsTest, PowerlineAtMains) {
  Rng rng(4);
  const dsp::Signal x = powerline_artifact(20000, kFs, 0.5, 50.0, rng);
  const dsp::Psd psd = dsp::welch_psd(x, kFs);
  const double mains = dsp::band_power(psd, 48.0, 52.0);
  const double rest = dsp::band_power(psd, 1.0, 40.0);
  EXPECT_GT(mains, 50.0 * rest);
}

TEST(ArtifactsTest, WhiteNoiseMoments) {
  Rng rng(5);
  const dsp::Signal x = white_noise(50000, 0.3, rng);
  EXPECT_NEAR(dsp::mean(x), 0.0, 0.01);
  EXPECT_NEAR(dsp::stddev(x), 0.3, 0.01);
}

TEST(ArtifactsTest, EmptyRequestsAreSafe) {
  Rng rng(6);
  EXPECT_TRUE(motion_artifact(0, kFs, {}, rng).empty());
  EXPECT_TRUE(white_noise(0, 1.0, rng).empty());
}

TEST(SubjectTest, RosterHasFiveCalibratedSubjects) {
  const auto roster = paper_roster();
  ASSERT_EQ(roster.size(), 5u);
  for (const auto& s : roster) {
    EXPECT_FALSE(s.name.empty());
    // Tables II-IV targets are correlations in (0.6, 1).
    for (const double r : s.target_corr) {
      EXPECT_GT(r, 0.6);
      EXPECT_LT(r, 1.0);
    }
    // Position gains must produce the Fig 8 ordering: Z2 > Z3 > Z1
    // (so that e21 is the largest error and e31 the smallest).
    const double g1 = s.position_gain[index_of(Position::HoldToChest)];
    const double g2 = s.position_gain[index_of(Position::ArmsOutstretched)];
    const double g3 = s.position_gain[index_of(Position::ArmsDown)];
    EXPECT_GT(g2, g3);
    EXPECT_GT(g3, g1);
    // Worst-case error below 20 % (paper Section VI).
    EXPECT_LT((g2 - g1) / g2, 0.20);
    // Physiology in adult ranges.
    EXPECT_GE(s.rr.mean_hr_bpm, 50.0);
    EXPECT_LE(s.rr.mean_hr_bpm, 90.0);
    EXPECT_GT(s.icg.lvet_s, 0.25);
    EXPECT_LT(s.icg.lvet_s, 0.36);
  }
}

TEST(SubjectTest, Table2To4TargetsMatchPaper) {
  const auto roster = paper_roster();
  // Spot-check the calibration constants against the paper's tables.
  EXPECT_DOUBLE_EQ(roster[0].target_corr[0], 0.9081); // Table II, Subject 1
  EXPECT_DOUBLE_EQ(roster[2].target_corr[1], 0.9938); // Table III, Subject 3
  EXPECT_DOUBLE_EQ(roster[4].target_corr[2], 0.6919); // Table IV, Subject 5
}

TEST(RecordingTest, SourceSignalsShareLength) {
  const auto roster = paper_roster();
  RecordingConfig cfg;
  cfg.duration_s = 10.0;
  const SourceActivity src = generate_source(roster[0], cfg);
  const std::size_t n = static_cast<std::size_t>(10.0 * kFs);
  EXPECT_EQ(src.ecg_mv.size(), n);
  EXPECT_EQ(src.delta_z_cardiac.size(), n);
  EXPECT_EQ(src.respiration.size(), n);
  EXPECT_EQ(src.icg_clean.size(), n);
  EXPECT_GT(src.beats.size(), 7u); // ~12 beats at 72 bpm in 10 s
}

TEST(RecordingTest, SourceIsDeterministicPerSeed) {
  const auto roster = paper_roster();
  RecordingConfig cfg;
  cfg.duration_s = 5.0;
  const SourceActivity a = generate_source(roster[1], cfg);
  const SourceActivity b = generate_source(roster[1], cfg);
  ASSERT_EQ(a.ecg_mv.size(), b.ecg_mv.size());
  for (std::size_t i = 0; i < a.ecg_mv.size(); i += 100)
    EXPECT_DOUBLE_EQ(a.ecg_mv[i], b.ecg_mv[i]);
  cfg.session_seed = 1;
  const SourceActivity c = generate_source(roster[1], cfg);
  int diff = 0;
  for (std::size_t i = 0; i < a.ecg_mv.size(); i += 10)
    if (a.ecg_mv[i] != c.ecg_mv[i]) ++diff;
  EXPECT_GT(diff, 10);
}

TEST(RecordingTest, ThoracicZ0TracksFrequency) {
  const auto roster = paper_roster();
  RecordingConfig cfg;
  cfg.duration_s = 5.0;
  const SourceActivity src = generate_source(roster[0], cfg);
  const Recording r10 = measure_thoracic(roster[0], src, 10e3);
  const Recording r100 = measure_thoracic(roster[0], src, 100e3);
  EXPECT_GT(r10.z0_mean_ohm, r100.z0_mean_ohm); // past the channel peak
  EXPECT_NEAR(mean_bioimpedance(r10), r10.z0_mean_ohm, 0.5);
}

TEST(RecordingTest, DeviceMeanZ0OrderingAcrossPositions) {
  const auto roster = paper_roster();
  RecordingConfig cfg;
  cfg.duration_s = 5.0;
  for (const auto& subject : roster) {
    const SourceActivity src = generate_source(subject, cfg);
    const double z1 =
        measure_device(subject, src, 50e3, Position::HoldToChest).z0_mean_ohm;
    const double z2 =
        measure_device(subject, src, 50e3, Position::ArmsOutstretched).z0_mean_ohm;
    const double z3 = measure_device(subject, src, 50e3, Position::ArmsDown).z0_mean_ohm;
    EXPECT_GT(z2, z3) << subject.name;
    EXPECT_GT(z3, z1) << subject.name;
  }
}

TEST(RecordingTest, DeviceCorrelationNearTarget) {
  // The headline calibration property: device-vs-thoracic correlation of
  // the 30 s impedance traces lands near the subject's target.
  const auto roster = paper_roster();
  RecordingConfig cfg;
  cfg.duration_s = 30.0;
  const SubjectProfile& subject = roster[2]; // highest targets
  const SourceActivity src = generate_source(subject, cfg);
  const Recording thorax = measure_thoracic(subject, src, 50e3);
  const Recording device = measure_device(subject, src, 50e3, Position::ArmsOutstretched);
  const double r = dsp::pearson(thorax.z_ohm, device.z_ohm);
  EXPECT_NEAR(r, subject.target_corr[index_of(Position::ArmsOutstretched)], 0.05);
}

TEST(RecordingTest, LowCorrelationSubjectIsLow) {
  const auto roster = paper_roster();
  RecordingConfig cfg;
  cfg.duration_s = 30.0;
  const SubjectProfile& subject = roster[4]; // Subject 5, P3 target 0.6919
  const SourceActivity src = generate_source(subject, cfg);
  const Recording thorax = measure_thoracic(subject, src, 50e3);
  const Recording device = measure_device(subject, src, 50e3, Position::ArmsDown);
  const double r = dsp::pearson(thorax.z_ohm, device.z_ohm);
  EXPECT_LT(r, 0.85);
  EXPECT_GT(r, 0.5);
}

TEST(RecordingTest, BeatsGroundTruthSharedBetweenSetups) {
  const auto roster = paper_roster();
  RecordingConfig cfg;
  cfg.duration_s = 10.0;
  const SourceActivity src = generate_source(roster[0], cfg);
  const Recording thorax = measure_thoracic(roster[0], src, 50e3);
  const Recording device = measure_device(roster[0], src, 50e3, Position::HoldToChest);
  ASSERT_EQ(thorax.beats.size(), device.beats.size());
  for (std::size_t i = 0; i < thorax.beats.size(); ++i)
    EXPECT_DOUBLE_EQ(thorax.beats[i].b_time_s, device.beats[i].b_time_s);
}

} // namespace
} // namespace icgkit::synth
