#include "synth/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace icgkit::synth {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalScaleAndShift) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, NormalTailsAreGaussianLike) {
  // ~99.7 % of draws inside 3 sigma.
  Rng rng(19);
  const int n = 100000;
  int outside = 0;
  for (int i = 0; i < n; ++i)
    if (std::abs(rng.normal()) > 3.0) ++outside;
  EXPECT_GT(outside, 50);  // not degenerate
  EXPECT_LT(outside, 800); // and not heavy-tailed
}

} // namespace
} // namespace icgkit::synth
