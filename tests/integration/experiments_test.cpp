// Integration tests pinning the paper-reproduction bands into ctest: if a
// refactor drifts any headline result out of its band, these fail before
// anyone re-reads the bench output. Each test mirrors one experiment of
// EXPERIMENTS.md (on reduced workloads where the full protocol would be
// slow).
#include "core/pipeline.h"
#include "dsp/stats.h"
#include "platform/power_model.h"
#include "synth/recording.h"
#include "synth/subject.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icgkit {
namespace {

constexpr double kFs = 250.0;

synth::SourceActivity session(const synth::SubjectProfile& subject, double duration = 30.0) {
  synth::RecordingConfig cfg;
  cfg.duration_s = duration;
  cfg.fs = kFs;
  return generate_source(subject, cfg);
}

// Tables II-IV: every subject/position correlation within 0.05 of the
// paper's value, and Position 3 weakest on average.
TEST(ExperimentsTest, CorrelationTablesWithinBand) {
  const auto roster = synth::paper_roster();
  double pos_mean[3] = {0.0, 0.0, 0.0};
  for (const auto& subject : roster) {
    const synth::SourceActivity src = session(subject);
    for (const auto pos : synth::kAllPositions) {
      // Average over the four injection frequencies, as the bench does --
      // a single 30 s window has too much sampling variance for the
      // low-correlation subjects.
      double r = 0.0;
      for (const double f : synth::kInjectionFrequenciesHz) {
        const synth::Recording thorax = measure_thoracic(subject, src, f);
        const synth::Recording device = measure_device(subject, src, f, pos);
        r += dsp::pearson(thorax.z_ohm, device.z_ohm) / 4.0;
      }
      const double target = subject.target_corr[synth::index_of(pos)];
      EXPECT_NEAR(r, target, 0.05) << subject.name << " pos " << static_cast<int>(pos);
      pos_mean[synth::index_of(pos)] += r / 5.0;
    }
  }
  EXPECT_LT(pos_mean[2], pos_mean[0]);
  EXPECT_LT(pos_mean[2], pos_mean[1]);
  // Abstract: overall correlation with the traditional system > 80 %.
  EXPECT_GT((pos_mean[0] + pos_mean[1] + pos_mean[2]) / 3.0, 0.80);
}

// Fig 6/7: the 10 kHz peak in every setup.
TEST(ExperimentsTest, BioimpedancePeaksAtTenKilohertz) {
  const auto roster = synth::paper_roster();
  const synth::SourceActivity src = session(roster[0], 10.0);
  auto z_at = [&](double f) {
    return mean_bioimpedance(measure_thoracic(roster[0], src, f));
  };
  EXPECT_GT(z_at(10e3), z_at(2e3));
  EXPECT_GT(z_at(10e3), z_at(50e3));
  EXPECT_GT(z_at(50e3), z_at(100e3));
  for (const auto pos : synth::kAllPositions) {
    auto zd = [&](double f) {
      return mean_bioimpedance(measure_device(roster[0], src, f, pos));
    };
    EXPECT_GT(zd(10e3), zd(2e3));
    EXPECT_GT(zd(10e3), zd(50e3));
  }
}

// Fig 8: error ordering and < 20 % bound for every subject at 50 kHz.
TEST(ExperimentsTest, PositionErrorsOrderedAndBounded) {
  const auto roster = synth::paper_roster();
  for (const auto& subject : roster) {
    const synth::SourceActivity src = session(subject, 10.0);
    const double z1 =
        mean_bioimpedance(measure_device(subject, src, 50e3, synth::Position::HoldToChest));
    const double z2 = mean_bioimpedance(
        measure_device(subject, src, 50e3, synth::Position::ArmsOutstretched));
    const double z3 =
        mean_bioimpedance(measure_device(subject, src, 50e3, synth::Position::ArmsDown));
    const double e21 = std::abs((z2 - z1) / z2);
    const double e23 = std::abs((z2 - z3) / z2);
    const double e31 = std::abs((z3 - z1) / z3);
    EXPECT_LT(e21, 0.20) << subject.name;
    EXPECT_GT(e21, e23) << subject.name;
    EXPECT_GT(e23, e31) << subject.name;
  }
}

// Fig 9: pipeline-estimated parameters track ground truth on touch
// recordings in the worst-case positions.
TEST(ExperimentsTest, HemodynamicsTrackTruthOnDevice) {
  const auto roster = synth::paper_roster();
  for (const auto pos :
       {synth::Position::HoldToChest, synth::Position::ArmsOutstretched}) {
    const auto& subject = roster[1];
    const synth::SourceActivity src = session(subject);
    const synth::Recording rec = measure_device(subject, src, 50e3, pos);
    const core::BeatPipeline pipeline(kFs);
    const core::PipelineResult res = pipeline.process(rec.ecg_mv, rec.z_ohm);
    dsp::Signal pep_t, lvet_t;
    for (const auto& b : rec.beats) {
      pep_t.push_back(b.pep_s);
      lvet_t.push_back(b.lvet_s);
    }
    ASSERT_GT(res.summary.beats_used, 15u);
    EXPECT_NEAR(res.summary.pep_s, dsp::mean(pep_t), 0.02);
    EXPECT_NEAR(res.summary.lvet_s, dsp::mean(lvet_t), 0.035);
    EXPECT_NEAR(res.summary.hr_bpm, subject.rr.mean_hr_bpm, 3.0);
  }
}

// Table I + battery: the 106 h headline.
TEST(ExperimentsTest, BatteryLifeHeadline) {
  platform::DutyCycleProfile duty;
  duty.mcu_active = 0.50;
  duty.radio_tx = 0.01;
  const platform::PowerModel model(duty);
  EXPECT_NEAR(model.battery_life_hours(platform::kPaperBatteryMah), 106.0, 1.0);
}

// Touch SV calibration: calibrated stroke volume lands in the adult range
// and responds to contractility in the right direction.
TEST(ExperimentsTest, CalibratedStrokeVolumePlausible) {
  const auto roster = synth::paper_roster();
  const auto& subject = roster[0];
  const synth::SourceActivity src = session(subject);
  const synth::Recording rec =
      measure_device(subject, src, 50e3, synth::Position::HoldToChest);

  core::PipelineConfig cfg;
  const synth::TouchCalibration cal =
      touch_calibration(subject, 50e3, synth::Position::HoldToChest);
  EXPECT_GT(cal.z0_scale, 0.01);
  EXPECT_LT(cal.z0_scale, 1.0);  // hand-to-hand Z0 is higher than thoracic
  EXPECT_GT(cal.dzdt_scale, 1.0); // cardiac dZ/dt is attenuated on the arm path
  cfg.body.z0_to_thoracic = cal.z0_scale;
  cfg.body.dzdt_to_thoracic = cal.dzdt_scale;
  const core::BeatPipeline pipeline(kFs, cfg);
  const core::PipelineResult res = pipeline.process(rec.ecg_mv, rec.z_ohm);
  EXPECT_GT(res.summary.sv_kubicek_ml, 40.0);
  EXPECT_LT(res.summary.sv_kubicek_ml, 200.0);
  EXPECT_GT(res.summary.co_kubicek_l_min, 3.0);
  EXPECT_LT(res.summary.co_kubicek_l_min, 15.0);
}

// Determinism: the whole study protocol is seeded; rerunning a session
// reproduces identical summaries (bit-stable reproduction).
TEST(ExperimentsTest, StudyIsDeterministic) {
  const auto roster = synth::paper_roster();
  const core::BeatPipeline pipeline(kFs);
  core::HemodynamicsSummary s[2];
  for (int run = 0; run < 2; ++run) {
    const synth::SourceActivity src = session(roster[2], 15.0);
    const synth::Recording rec =
        measure_device(roster[2], src, 50e3, synth::Position::ArmsDown);
    s[run] = pipeline.process(rec.ecg_mv, rec.z_ohm).summary;
  }
  EXPECT_DOUBLE_EQ(s[0].pep_s, s[1].pep_s);
  EXPECT_DOUBLE_EQ(s[0].lvet_s, s[1].lvet_s);
  EXPECT_DOUBLE_EQ(s[0].sv_kubicek_ml, s[1].sv_kubicek_ml);
  EXPECT_EQ(s[0].beats_used, s[1].beats_used);
}

} // namespace
} // namespace icgkit
