// Hostile wire input: the FrameDecoder/PayloadReader refusal contract.
//
// Every structurally invalid byte stream — truncated frames, flipped
// CRC bytes, oversized length prefixes, bad magic, wrong versions,
// malformed payloads — must raise WireError, never UB. This binary
// runs under the Debug ASan/UBSan CI entry, which is what turns "reads
// past the buffer" from a latent bug into a test failure.
#include "net/wire.h"

#include "core/beat_serializer.h"
#include "core/flight_recorder.h"
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace {

using namespace icgkit;
using net::Frame;
using net::FrameDecoder;
using net::PayloadReader;
using net::RecordBuilder;
using net::WireError;

constexpr std::size_t kBound = 1 << 16;

/// One framed HELO record preceded by the stream header.
std::vector<std::uint8_t> hello_stream() {
  std::vector<std::uint8_t> out;
  net::write_stream_header(out);
  RecordBuilder rb;
  net::Hello h;
  h.flags = net::kHelloWantAcks;
  h.max_chunk = 64;
  h.fs_hz = 250.0;
  net::encode_hello(rb.begin(net::kTagHello), h);
  rb.finish(out);
  return out;
}

TEST(WireTest, RoundTripsAFrame) {
  const auto bytes = hello_stream();
  FrameDecoder dec(kBound);
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_STREQ(f.tag, net::kTagHello);
  PayloadReader r(f.payload);
  const net::Hello h = net::decode_hello(r);
  EXPECT_EQ(h.version, net::kWireVersion);
  EXPECT_EQ(h.flags, net::kHelloWantAcks);
  EXPECT_EQ(h.max_chunk, 64u);
  EXPECT_EQ(h.fs_hz, 250.0);
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(WireTest, ByteAtATimeFeedingReassembles) {
  const auto bytes = hello_stream();
  FrameDecoder dec(kBound);
  Frame f;
  std::size_t frames = 0;
  for (const std::uint8_t b : bytes) {
    dec.feed(&b, 1);
    while (dec.next(f)) ++frames;
  }
  EXPECT_EQ(frames, 1u);
}

TEST(WireTest, TruncatedFrameIsSimplyIncomplete) {
  const auto bytes = hello_stream();
  // Every proper prefix yields no frame and no error — a connection
  // dying mid-frame is a non-event, not a parse.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder dec(kBound);
    dec.feed(bytes.data(), cut);
    Frame f;
    EXPECT_FALSE(dec.next(f)) << "cut at " << cut;
  }
}

TEST(WireTest, FlippedBytesAreRefused) {
  const auto pristine = hello_stream();
  // Flip one bit in every byte position past the stream header: either
  // the tag/length header no longer parses into a valid frame, the CRC
  // refuses it, or (length bytes) the bound refuses it. Never UB.
  std::size_t crc_refusals = 0;
  for (std::size_t i = 8; i < pristine.size(); ++i) {
    auto bytes = pristine;
    bytes[i] ^= 0x40;
    FrameDecoder dec(kBound);
    Frame f;
    try {
      dec.feed(bytes.data(), bytes.size());
      if (dec.next(f)) {
        // A corrupted tag byte still frames correctly (the tag is
        // opaque to the decoder); everything else must not.
        EXPECT_LT(i, 12u) << "undetected flip at offset " << i;
      }
    } catch (const WireError&) {
      ++crc_refusals;
    }
  }
  EXPECT_GT(crc_refusals, 0u);
}

TEST(WireTest, FlippedCrcByteIsRefused) {
  auto bytes = hello_stream();
  bytes.back() ^= 0x01;  // last byte of the trailing CRC-32
  FrameDecoder dec(kBound);
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_THROW(dec.next(f), WireError);
}

TEST(WireTest, OversizedLengthPrefixIsRefusedBeforeBuffering) {
  std::vector<std::uint8_t> bytes;
  net::write_stream_header(bytes);
  bytes.insert(bytes.end(), {'C', 'H', 'N', 'K'});
  // 4 GiB length prefix: must be refused from the 8-byte header alone,
  // without waiting for (or allocating toward) the payload.
  for (const std::uint8_t b : {0xFF, 0xFF, 0xFF, 0xFF}) bytes.push_back(b);
  FrameDecoder dec(kBound);
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_THROW(dec.next(f), WireError);
}

TEST(WireTest, BadMagicIsRefused) {
  auto bytes = hello_stream();
  bytes[0] = 'X';
  FrameDecoder dec(kBound);
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_THROW(dec.next(f), WireError);
}

TEST(WireTest, WrongStreamVersionIsRefused) {
  auto bytes = hello_stream();
  bytes[4] = 99;  // stream-header version field
  FrameDecoder dec(kBound);
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_THROW(dec.next(f), WireError);
}

TEST(WireTest, PayloadReaderBoundsEveryRead) {
  const std::vector<std::uint8_t> four = {1, 2, 3, 4};
  PayloadReader r{{four.data(), four.size()}};
  EXPECT_EQ(r.u32(), 0x04030201u);
  EXPECT_THROW(r.u8(), WireError);  // exhausted

  PayloadReader r2{{four.data(), four.size()}};
  EXPECT_THROW(r2.u64(), WireError);  // 8 > 4
  double d[2];
  PayloadReader r3{{four.data(), four.size()}};
  EXPECT_THROW(r3.f64_array(d, 2), WireError);

  PayloadReader r4{{four.data(), four.size()}};
  r4.u8();
  EXPECT_THROW(r4.expect_end(), WireError);  // 3 trailing bytes
}

TEST(WireTest, MalformedBeatPayloadIsRefused) {
  // A structurally valid frame whose BEAT payload lies about its enum
  // and bool fields must be refused by the codec, not cast blindly.
  core::BeatRecord rec;
  rec.points.valid = true;
  RecordBuilder rb;
  std::vector<std::uint8_t> out;

  {
    core::StateWriter& w = rb.begin(net::kTagBeat);
    net::encode_beat(w, rec);
    rb.finish(out);
  }
  FrameDecoder dec(kBound);
  // Records after the stream header only; build a full stream.
  std::vector<std::uint8_t> stream;
  net::write_stream_header(stream);
  stream.insert(stream.end(), out.begin(), out.end());
  dec.feed(stream.data(), stream.size());
  Frame f;
  ASSERT_TRUE(dec.next(f));
  {
    PayloadReader r(f.payload);
    const core::BeatRecord back = net::decode_beat(r);
    r.expect_end();
    EXPECT_TRUE(back.points.valid);
  }

  // Corrupt the b_method u32 (offset 40 in the payload: five u64s).
  std::vector<std::uint8_t> evil(f.payload.begin(), f.payload.end());
  evil[40] = 7;
  PayloadReader r(std::span<const std::uint8_t>(evil.data(), evil.size()));
  EXPECT_THROW(net::decode_beat(r), WireError);
}

TEST(WireTest, TruncatedErrorMessageIsRefused) {
  RecordBuilder rb;
  std::vector<std::uint8_t> out;
  net::encode_error(rb.begin(net::kTagError), net::WireErrorCode::BadFrame,
                    net::kNoStream, "boom");
  rb.finish(out);
  std::vector<std::uint8_t> stream;
  net::write_stream_header(stream);
  stream.insert(stream.end(), out.begin(), out.end());
  FrameDecoder dec(kBound);
  dec.feed(stream.data(), stream.size());
  Frame f;
  ASSERT_TRUE(dec.next(f));
  // Claim a message longer than the payload carries.
  std::vector<std::uint8_t> evil(f.payload.begin(), f.payload.end());
  evil[8] = 0xFF;  // message-length u32 low byte (code u32 + stream u32 first)
  PayloadReader r(std::span<const std::uint8_t>(evil.data(), evil.size()));
  EXPECT_THROW(net::decode_error(r), WireError);
}

TEST(WireTest, BeatCodecPreservesSerializeBeatBytes) {
  // The wire BEAT codec carries exactly the canonical determinism
  // fields: encode -> decode -> serialize_beat must be byte-identical
  // to serialize_beat on the original.
  core::BeatRecord rec;
  rec.points = {101, 113, 127, 160, 110, core::BPointMethod::ZeroCrossing, -0.25, true};
  rec.hemo = {0.1, 0.3, 62.5, 1.5, 80.0, 75.0, 5.0, 25.0};
  rec.flaws = static_cast<core::BeatFlaw>(0b101);
  rec.rr_s = 0.96;

  RecordBuilder rb;
  std::vector<std::uint8_t> framed;
  net::write_stream_header(framed);
  net::encode_beat(rb.begin(net::kTagBeat), rec);
  rb.finish(framed);

  FrameDecoder dec(kBound);
  dec.feed(framed.data(), framed.size());
  Frame f;
  ASSERT_TRUE(dec.next(f));
  PayloadReader r(f.payload);
  const core::BeatRecord back = net::decode_beat(r);
  r.expect_end();

  std::vector<unsigned char> a, b;
  core::serialize_beat(rec, a);
  core::serialize_beat(back, b);
  EXPECT_EQ(a, b);
}

TEST(WireTest, QualityAndStatsCodecsRoundTrip) {
  core::QualitySummary q;
  q.beats = 120;
  q.usable = 100;
  q.flaw_counts[2] = 7;
  q.snr_beats = 90;
  q.sum_snr_db = 1234.5;
  q.min_snr_db = 3.25;

  net::ServerStats st;
  st.sessions_open = 3;
  st.sessions_closed = 97;
  st.migrations = 5;
  st.shed_chunks = 11;
  st.total_samples = 1u << 20;
  st.total_beats = 4242;

  RecordBuilder rb;
  std::vector<std::uint8_t> framed;
  net::write_stream_header(framed);
  net::encode_quality(rb.begin(net::kTagQuality), q);
  rb.finish(framed);
  net::encode_stats(rb.begin(net::kTagStatReply), st);
  rb.finish(framed);

  FrameDecoder dec(kBound);
  dec.feed(framed.data(), framed.size());
  Frame f;
  ASSERT_TRUE(dec.next(f));
  {
    PayloadReader r(f.payload);
    const core::QualitySummary back = net::decode_quality(r);
    r.expect_end();
    EXPECT_TRUE(core::summaries_identical(q, back));
  }
  ASSERT_TRUE(dec.next(f));
  {
    PayloadReader r(f.payload);
    const net::ServerStats back = net::decode_stats(r);
    EXPECT_EQ(back.sessions_closed, 97u);
    EXPECT_EQ(back.migrations, 5u);
    EXPECT_EQ(back.shed_chunks, 11u);
    EXPECT_EQ(back.total_samples, 1u << 20);
    EXPECT_EQ(back.total_beats, 4242u);
  }
}

} // namespace
