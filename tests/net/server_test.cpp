// FleetServer over real loopback sockets: protocol round trips, the
// backpressure/shed contract, load-aware rebalancing, the recording
// verbs, and refusal of hostile peers.
//
// The central claim is the network transparency one: beats decoded off
// the wire re-serialize byte-identically to a directly fed
// StreamingBeatPipeline — the server adds transport, not arithmetic.
// Runs under the Debug ASan/UBSan CI entry like the rest of tests/net.
#include "net/server.h"

#include "core/beat_serializer.h"
#include "core/flight_recorder.h"
#include "net/client.h"
#include "synth/recording.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <vector>

namespace {

using namespace icgkit;

constexpr std::size_t kChunk = 64;

net::ServerConfig test_config(std::size_t workers = 2) {
  net::ServerConfig cfg;
  cfg.fleet.workers = workers;
  cfg.fleet.max_chunk = kChunk;
  return cfg;
}

std::vector<synth::Recording> test_workload(std::size_t distinct, double duration_s) {
  synth::RecordingConfig rcfg;
  rcfg.duration_s = duration_s;
  rcfg.session_seed = 23;
  return synth::make_fleet_workload(distinct, rcfg);
}

/// Plays `workload[s % distinct]` through client stream `s` for all
/// `streams`, CACK-flow-controlled to the server's advertised window so
/// the feed is provably shed-free, then closes every stream and drains
/// until each terminal QUAL arrives. Returns all events.
std::vector<net::ClientEvent> play_workload(net::FleetClient& client,
                                            const std::vector<synth::Recording>& workload,
                                            std::uint32_t streams) {
  std::vector<net::ClientEvent> events;
  for (std::uint32_t s = 0; s < streams; ++s) client.open_stream(s);

  std::vector<std::uint64_t> sent(streams, 0), acked(streams, 0);
  std::size_t drained = 0;
  const auto absorb_acks = [&] {
    for (; drained < events.size(); ++drained)
      if (events[drained].type == net::ClientEvent::Type::ChunkAck)
        acked[events[drained].stream] = events[drained].count;
  };
  const std::uint64_t window = client.server_hello().max_inflight;
  const std::size_t n = workload[0].ecg_mv.size();
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t len = std::min(kChunk, n - i);
    for (std::uint32_t s = 0; s < streams; ++s) {
      while (sent[s] - acked[s] >= window) {
        client.poll_events(events, 10);
        absorb_acks();
      }
      const synth::Recording& rec = workload[s % workload.size()];
      client.send_chunk(s, {rec.ecg_mv.data() + i, len}, {rec.z_ohm.data() + i, len});
      ++sent[s];
    }
    client.poll_events(events, 0);
    absorb_acks();
  }
  for (std::uint32_t s = 0; s < streams; ++s) client.close_stream(s);
  std::uint32_t closed = 0;
  while (closed < streams && client.connected()) {
    const std::size_t before = events.size();
    client.poll_events(events, 2000);
    for (std::size_t k = before; k < events.size(); ++k)
      if (events[k].type == net::ClientEvent::Type::Quality) ++closed;
  }
  EXPECT_EQ(closed, streams) << "connection dropped before every QUAL arrived";
  return events;
}

/// A raw loopback socket for speaking deliberately broken protocol.
struct RawConn {
  int fd = -1;
  bool ok = false;
  net::FrameDecoder decoder{1u << 20};

  explicit RawConn(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      ADD_FAILURE() << "socket() failed";
      return;
    }
    const timeval tv{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ok = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    if (!ok) ADD_FAILURE() << "loopback connect failed";
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  void send_bytes(const std::vector<std::uint8_t>& b) {
    ASSERT_EQ(::send(fd, b.data(), b.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(b.size()));
  }

  /// Reads until the server closes (or times out), returning every
  /// ERRR it sent. A timeout is a test failure, not a hang.
  std::vector<net::WireErrorRecord> read_errors_until_close() {
    std::vector<net::WireErrorRecord> errors;
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
      if (got == 0) break;  // orderly close
      if (got < 0) {
        ADD_FAILURE() << "timed out waiting for the server to close";
        break;
      }
      decoder.feed(buf, static_cast<std::size_t>(got));
      net::Frame f;
      while (decoder.next(f)) {
        if (std::memcmp(f.tag, net::kTagError, 4) != 0) continue;
        net::PayloadReader r(f.payload);
        errors.push_back(net::decode_error(r));
      }
    }
    return errors;
  }
};

TEST(ServerTest, ConfigValidationStatuses) {
  using net::ServerStatus;
  EXPECT_EQ(net::validate_server_config(test_config()), ServerStatus::Ok);

  auto cfg = test_config();
  cfg.max_connections = 0;
  EXPECT_EQ(net::validate_server_config(cfg), ServerStatus::BadMaxConnections);

  cfg = test_config();
  cfg.max_sessions = 0;
  EXPECT_EQ(net::validate_server_config(cfg), ServerStatus::BadMaxSessions);

  cfg = test_config();
  cfg.tenant_pending_chunks = 0;
  EXPECT_EQ(net::validate_server_config(cfg), ServerStatus::BadPendingBound);

  cfg = test_config();
  cfg.rebalance_min_gap = 0;  // rebalancing on, gap zero
  EXPECT_EQ(net::validate_server_config(cfg), ServerStatus::BadRebalanceGap);
  cfg.rebalance_period_chunks = 0;  // rebalancing off: gap is moot
  EXPECT_EQ(net::validate_server_config(cfg), ServerStatus::Ok);

  cfg = test_config();
  cfg.max_outbuf_bytes = 64;
  EXPECT_EQ(net::validate_server_config(cfg), ServerStatus::BadOutbufBound);

  cfg = test_config();
  cfg.max_frame_bytes = 128;  // cannot fit a max_chunk CHNK
  EXPECT_EQ(net::validate_server_config(cfg), ServerStatus::BadFrameBound);

  cfg = test_config();
  cfg.fs_hz = 0.0;
  EXPECT_EQ(net::validate_server_config(cfg), ServerStatus::BadSampleRate);
  cfg.fs_hz = 1e9;
  EXPECT_EQ(net::validate_server_config(cfg), ServerStatus::BadSampleRate);

  cfg = test_config();
  cfg.fleet.workers = 0;
  EXPECT_EQ(net::validate_server_config(cfg), ServerStatus::BadFleetConfig);

  // bind() runs the same gate and must not acquire a socket on refusal.
  net::FleetServer refused(cfg);
  EXPECT_EQ(refused.bind(), ServerStatus::BadFleetConfig);

  // Double bind is refused with a status, not an exception.
  net::FleetServer twice(test_config());
  ASSERT_EQ(twice.bind(), ServerStatus::Ok);
  EXPECT_EQ(twice.bind(), ServerStatus::AlreadyBound);
}

TEST(ServerTest, LoopbackBeatsMatchDirectPipelineBytes) {
  const auto workload = test_workload(2, 8.0);
  constexpr std::uint32_t kStreams = 4;

  auto cfg = test_config(2);
  cfg.fs_hz = workload[0].fs;
  net::FleetServer server(cfg);
  ASSERT_EQ(server.bind(), net::ServerStatus::Ok);
  server.start();

  net::FleetClient client;
  ASSERT_TRUE(client.connect_loopback(server.port(), /*want_acks=*/true));
  EXPECT_EQ(client.server_hello().version, net::kWireVersion);
  EXPECT_EQ(client.server_hello().max_chunk, kChunk);

  const auto events = play_workload(client, workload, kStreams);

  std::vector<std::vector<unsigned char>> streams(kStreams);
  std::vector<core::QualitySummary> summaries(kStreams);
  std::vector<std::size_t> quals(kStreams, 0);
  for (const net::ClientEvent& ev : events) {
    if (ev.type == net::ClientEvent::Type::Beat)
      core::serialize_beat(ev.beat, streams[ev.stream]);
    else if (ev.type == net::ClientEvent::Type::Quality) {
      summaries[ev.stream] = ev.quality;
      ++quals[ev.stream];
    } else if (ev.type == net::ClientEvent::Type::Shed)
      FAIL() << "flow-controlled client was shed on stream " << ev.stream;
  }

  // The network transparency check: wire bytes == direct-feed bytes.
  for (std::uint32_t s = 0; s < kStreams; ++s) {
    EXPECT_EQ(quals[s], 1u) << "stream " << s << " terminal QUAL count";
    const synth::Recording& rec = workload[s % workload.size()];
    core::StreamingBeatPipeline direct(rec.fs, {});
    std::vector<core::BeatRecord> beats;
    const std::size_t n = rec.ecg_mv.size();
    for (std::size_t i = 0; i < n; i += kChunk) {
      const std::size_t len = std::min(kChunk, n - i);
      direct.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                       dsp::SignalView(rec.z_ohm.data() + i, len), beats);
    }
    direct.finish_into(beats);
    ASSERT_FALSE(beats.empty());
    std::vector<unsigned char> reference;
    for (const core::BeatRecord& b : beats) core::serialize_beat(b, reference);
    EXPECT_EQ(streams[s], reference) << "stream " << s << " diverged over the wire";
    EXPECT_TRUE(core::summaries_identical(summaries[s], direct.quality_summary()))
        << "stream " << s << " quality summary diverged over the wire";
  }

  client.bye();
  server.stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.sessions_closed, kStreams);
  EXPECT_EQ(stats.shed_chunks, 0u);
  EXPECT_GT(stats.total_beats, 0u);
}

TEST(ServerTest, UnthrottledFloodShedsExplicitly) {
  const auto workload = test_workload(1, 10.0);

  auto cfg = test_config(1);
  cfg.fs_hz = workload[0].fs;
  cfg.tenant_pending_chunks = 2;         // tiny tenant budget: force the bound
  cfg.fleet.chunk_slots_per_session = 1; // tiny slab window, same reason
  net::FleetServer server(cfg);
  ASSERT_EQ(server.bind(), net::ServerStatus::Ok);
  server.start();

  // No acks, no pacing: blast the whole recording as fast as the socket
  // accepts it. The server must shed with SHED records — bounded memory,
  // no blocking, no disconnect — and still finish the stream cleanly.
  net::FleetClient client;
  ASSERT_TRUE(client.connect_loopback(server.port(), /*want_acks=*/false));
  std::vector<net::ClientEvent> events;
  client.open_stream(0);
  const synth::Recording& rec = workload[0];
  const std::size_t n = rec.ecg_mv.size();
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t len = std::min(kChunk, n - i);
    client.send_chunk(0, {rec.ecg_mv.data() + i, len}, {rec.z_ohm.data() + i, len});
    client.poll_events(events, 0);
  }
  client.close_stream(0);
  while (client.connected() &&
         client.wait_for(net::ClientEvent::Type::Quality, events) == SIZE_MAX) {
  }

  std::uint64_t shed_total = 0;
  bool got_quality = false;
  for (const net::ClientEvent& ev : events) {
    if (ev.type == net::ClientEvent::Type::Shed) {
      EXPECT_EQ(ev.shed_reason,
                static_cast<std::uint32_t>(net::ShedReason::TenantQueueFull));
      shed_total = ev.count;  // running total: keep the last
    } else if (ev.type == net::ClientEvent::Type::Quality) {
      got_quality = true;
    }
  }
  EXPECT_TRUE(got_quality) << "shed stream must still close with a QUAL";
  EXPECT_GT(shed_total, 0u) << "flood never hit the tenant bound";

  client.bye();
  server.stop();
  EXPECT_EQ(server.stats().shed_chunks, shed_total);
}

TEST(ServerTest, SkewedLoadTriggersRebalancing) {
  const auto workload = test_workload(1, 12.0);
  constexpr std::uint32_t kStreams = 8;

  auto cfg = test_config(2);
  cfg.fs_hz = workload[0].fs;
  cfg.rebalance_period_chunks = 32;  // rebalance eagerly for the test
  cfg.rebalance_min_gap = 2;
  net::FleetServer server(cfg);
  ASSERT_EQ(server.bind(), net::ServerStatus::Ok);
  server.start();

  net::FleetClient client;
  ASSERT_TRUE(client.connect_loopback(server.port(), /*want_acks=*/true));
  std::vector<net::ClientEvent> events;
  for (std::uint32_t s = 0; s < kStreams; ++s) client.open_stream(s);

  // Learn each stream's home worker from its OPAK.
  std::map<std::uint32_t, std::uint32_t> home;
  while (home.size() < kStreams) {
    const std::size_t before = events.size();
    ASSERT_GT(client.poll_events(events, 2000), 0u);
    for (std::size_t k = before; k < events.size(); ++k)
      if (events[k].type == net::ClientEvent::Type::OpenAck) {
        ASSERT_EQ(events[k].status, 0u);
        home[events[k].stream] = events[k].worker;
      }
  }

  // Skew the fleet: immediately close every stream homed on worker 0,
  // leaving all load on the other worker. The periodic rebalance must
  // notice the resident-count gap and migrate sessions back.
  std::vector<std::uint32_t> live;
  for (const auto& [stream, worker] : home)
    if (worker == 0)
      client.close_stream(stream);
    else
      live.push_back(stream);
  ASSERT_FALSE(live.empty());
  ASSERT_LT(live.size(), static_cast<std::size_t>(kStreams));

  std::vector<std::uint64_t> sent(kStreams, 0), acked(kStreams, 0);
  std::size_t drained = 0;
  const auto absorb = [&] {
    for (; drained < events.size(); ++drained)
      if (events[drained].type == net::ClientEvent::Type::ChunkAck)
        acked[events[drained].stream] = events[drained].count;
  };
  const std::uint64_t window = client.server_hello().max_inflight;
  const synth::Recording& rec = workload[0];
  const std::size_t n = rec.ecg_mv.size();
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t len = std::min(kChunk, n - i);
    for (const std::uint32_t s : live) {
      while (sent[s] - acked[s] >= window) {
        client.poll_events(events, 10);
        absorb();
      }
      client.send_chunk(s, {rec.ecg_mv.data() + i, len}, {rec.z_ohm.data() + i, len});
      ++sent[s];
    }
    client.poll_events(events, 0);
    absorb();
  }
  for (const std::uint32_t s : live) client.close_stream(s);
  // The worker-0 streams' QUALs may already sit in `events` from the
  // feed-phase polls: count from the start, then drain the rest.
  std::uint32_t quals = 0;
  std::size_t counted = 0;
  for (;;) {
    for (; counted < events.size(); ++counted)
      if (events[counted].type == net::ClientEvent::Type::Quality) ++quals;
    if (quals >= kStreams || !client.connected()) break;
    client.poll_events(events, 2000);
  }
  EXPECT_EQ(quals, kStreams);

  // The migrated streams' beat streams must still match a direct feed —
  // rebalancing is byte-exact, not merely survivable.
  std::vector<std::vector<unsigned char>> streams(kStreams);
  for (const net::ClientEvent& ev : events)
    if (ev.type == net::ClientEvent::Type::Beat)
      core::serialize_beat(ev.beat, streams[ev.stream]);
  core::StreamingBeatPipeline direct(rec.fs, {});
  std::vector<core::BeatRecord> beats;
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t len = std::min(kChunk, n - i);
    direct.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                     dsp::SignalView(rec.z_ohm.data() + i, len), beats);
  }
  direct.finish_into(beats);
  std::vector<unsigned char> reference;
  for (const core::BeatRecord& b : beats) core::serialize_beat(b, reference);
  for (const std::uint32_t s : live)
    EXPECT_EQ(streams[s], reference) << "migrated stream " << s << " diverged";

  client.bye();
  server.stop();
  EXPECT_GT(server.migrations(), 0u) << "skewed load never triggered a migration";
  EXPECT_EQ(server.stats().shed_chunks, 0u);
}

TEST(ServerTest, RecordingRoundTripReplayVerifies) {
  // Long enough that beats are emitted *live*, well before the finish
  // flush: the recording stops mid-stream, so only live beats land in
  // the flight record.
  const auto workload = test_workload(1, 24.0);

  auto cfg = test_config(1);
  cfg.fs_hz = workload[0].fs;
  net::FleetServer server(cfg);
  ASSERT_EQ(server.bind(), net::ServerStatus::Ok);
  server.start();

  net::FleetClient client;
  ASSERT_TRUE(client.connect_loopback(server.port(), /*want_acks=*/true));
  std::vector<net::ClientEvent> events;
  client.open_stream(7);

  // RECS on a stream that does not exist is refused, not fatal.
  client.record_start(99);
  std::size_t at = client.wait_for(net::ClientEvent::Type::RecordAck, events);
  ASSERT_NE(at, SIZE_MAX);
  EXPECT_EQ(events[at].stream, 99u);
  EXPECT_EQ(events[at].status,
            static_cast<std::uint32_t>(net::WireErrorCode::UnknownStream));

  client.record_start(7, /*checkpoint_interval=*/1000);
  at = client.wait_for(net::ClientEvent::Type::RecordAck, events);
  while (at != SIZE_MAX && events[at].stream != 7)
    at = client.wait_for(net::ClientEvent::Type::RecordAck, events);
  ASSERT_NE(at, SIZE_MAX);
  EXPECT_EQ(events[at].status, 0u);

  // Stream half the recording while recording is live.
  std::vector<std::uint64_t> acked{0};
  std::uint64_t sent = 0;
  std::size_t drained = 0;
  const auto absorb = [&] {
    for (; drained < events.size(); ++drained)
      if (events[drained].type == net::ClientEvent::Type::ChunkAck)
        acked[0] = events[drained].count;
  };
  const std::uint64_t window = client.server_hello().max_inflight;
  const synth::Recording& rec = workload[0];
  const std::size_t half = rec.ecg_mv.size() * 3 / (4 * kChunk) * kChunk;
  for (std::size_t i = 0; i < half; i += kChunk) {
    while (sent - acked[0] >= window) {
      client.poll_events(events, 10);
      absorb();
    }
    client.send_chunk(7, {rec.ecg_mv.data() + i, kChunk}, {rec.z_ohm.data() + i, kChunk});
    ++sent;
    client.poll_events(events, 0);
    absorb();
  }

  client.record_stop(7);
  at = client.wait_for(net::ClientEvent::Type::RecordData, events);
  ASSERT_NE(at, SIZE_MAX);
  EXPECT_EQ(events[at].stream, 7u);
  ASSERT_FALSE(events[at].blob.empty());

  // The wire-returned .icgr replays deterministically: every recorded
  // chunk re-run from the recording reproduces its recorded beats.
  const core::FlightVerifyReport rep = core::flight_verify(events[at].blob);
  EXPECT_TRUE(rep.ok) << "first divergent chunk " << rep.first_divergent_chunk;
  EXPECT_GT(rep.chunks, 0u);
  EXPECT_GT(rep.beats_recorded, 0u);

  // RECX when nothing is recording is a stream-level ERRR, not fatal.
  client.record_stop(7);
  at = client.wait_for(net::ClientEvent::Type::Error, events);
  ASSERT_NE(at, SIZE_MAX);
  EXPECT_EQ(events[at].error.code, net::WireErrorCode::Protocol);
  EXPECT_TRUE(client.connected());

  client.close_stream(7);
  ASSERT_NE(client.wait_for(net::ClientEvent::Type::Quality, events), SIZE_MAX);
  client.bye();
  server.stop();
}

TEST(ServerTest, OpenStatusesAndStatsVerb) {
  auto cfg = test_config(1);
  cfg.max_sessions = 1;
  net::FleetServer server(cfg);
  ASSERT_EQ(server.bind(), net::ServerStatus::Ok);
  server.start();

  net::FleetClient client;
  ASSERT_TRUE(client.connect_loopback(server.port()));
  std::vector<net::ClientEvent> events;

  client.open_stream(1);
  std::size_t at = client.wait_for(net::ClientEvent::Type::OpenAck, events);
  ASSERT_NE(at, SIZE_MAX);
  EXPECT_EQ(events[at].status, 0u);

  client.open_stream(1);  // duplicate id on the same connection
  at = client.wait_for(net::ClientEvent::Type::OpenAck, events);
  ASSERT_NE(at, SIZE_MAX);
  EXPECT_EQ(events[at].status,
            static_cast<std::uint32_t>(net::WireErrorCode::DuplicateStream));

  client.open_stream(2);  // over max_sessions
  at = client.wait_for(net::ClientEvent::Type::OpenAck, events);
  ASSERT_NE(at, SIZE_MAX);
  EXPECT_EQ(events[at].status,
            static_cast<std::uint32_t>(net::WireErrorCode::TooManySessions));

  // CLSE for a stream that was never opened: stream-level ERRR, the
  // connection survives.
  client.close_stream(42);
  at = client.wait_for(net::ClientEvent::Type::Error, events);
  ASSERT_NE(at, SIZE_MAX);
  EXPECT_EQ(events[at].error.code, net::WireErrorCode::UnknownStream);
  EXPECT_EQ(events[at].error.stream, 42u);
  EXPECT_TRUE(client.connected());

  client.request_stats();
  at = client.wait_for(net::ClientEvent::Type::Stats, events);
  ASSERT_NE(at, SIZE_MAX);
  EXPECT_EQ(events[at].stats.sessions_open, 1u);

  client.close_stream(1);
  ASSERT_NE(client.wait_for(net::ClientEvent::Type::Quality, events), SIZE_MAX);
  client.bye();
  server.stop();
}

TEST(ServerTest, VersionMismatchIsRefusedWithError) {
  net::FleetServer server(test_config(1));
  ASSERT_EQ(server.bind(), net::ServerStatus::Ok);
  server.start();

  RawConn raw(server.port());
  ASSERT_TRUE(raw.ok);
  // Stream header with a future version the server does not speak.
  std::vector<std::uint8_t> bytes;
  net::write_stream_header(bytes);
  bytes[4] = 99;
  raw.send_bytes(bytes);

  const auto errors = raw.read_errors_until_close();
  ASSERT_FALSE(errors.empty()) << "no ERRR before close";
  EXPECT_EQ(errors.back().code, net::WireErrorCode::VersionMismatch);
  EXPECT_EQ(errors.back().stream, net::kNoStream);
  server.stop();
}

TEST(ServerTest, UnknownRecordAndPreHelloTrafficAreFatal) {
  net::FleetServer server(test_config(1));
  ASSERT_EQ(server.bind(), net::ServerStatus::Ok);
  server.start();

  {
    // Valid handshake, then a correctly framed record with an unknown
    // tag: ERRR UnknownRecord + close (a v1 peer never sends one).
    RawConn raw(server.port());
    ASSERT_TRUE(raw.ok);
    std::vector<std::uint8_t> bytes;
    net::write_stream_header(bytes);
    net::RecordBuilder rb;
    net::encode_hello(rb.begin(net::kTagHello), net::Hello{});
    rb.finish(bytes);
    core::StateWriter& w = rb.begin("ZZZZ");
    w.u32(0);
    rb.finish(bytes);
    raw.send_bytes(bytes);
    const auto errors = raw.read_errors_until_close();
    ASSERT_FALSE(errors.empty());
    EXPECT_EQ(errors.back().code, net::WireErrorCode::UnknownRecord);
  }
  {
    // Any record before the client HELO is a protocol violation.
    RawConn raw(server.port());
    ASSERT_TRUE(raw.ok);
    std::vector<std::uint8_t> bytes;
    net::write_stream_header(bytes);
    net::RecordBuilder rb;
    core::StateWriter& w = rb.begin(net::kTagOpen);
    w.u32(0);
    rb.finish(bytes);
    raw.send_bytes(bytes);
    const auto errors = raw.read_errors_until_close();
    ASSERT_FALSE(errors.empty());
    EXPECT_EQ(errors.back().code, net::WireErrorCode::Protocol);
  }
  {
    // Flipped CRC on an otherwise valid frame: ERRR BadFrame + close.
    RawConn raw(server.port());
    ASSERT_TRUE(raw.ok);
    std::vector<std::uint8_t> bytes;
    net::write_stream_header(bytes);
    net::RecordBuilder rb;
    net::encode_hello(rb.begin(net::kTagHello), net::Hello{});
    rb.finish(bytes);
    bytes.back() ^= 0x01;
    raw.send_bytes(bytes);
    const auto errors = raw.read_errors_until_close();
    ASSERT_FALSE(errors.empty());
    EXPECT_EQ(errors.back().code, net::WireErrorCode::BadFrame);
  }
  server.stop();
}

TEST(ServerTest, MidHandshakeDisconnectIsHarmless) {
  net::FleetServer server(test_config(1));
  ASSERT_EQ(server.bind(), net::ServerStatus::Ok);
  server.start();

  // Three abrupt deaths at different handshake stages...
  {
    RawConn raw(server.port());  // connect, say nothing, vanish
    ASSERT_TRUE(raw.ok);
  }
  {
    RawConn raw(server.port());  // die mid-stream-header
    ASSERT_TRUE(raw.ok);
    std::vector<std::uint8_t> bytes;
    net::write_stream_header(bytes);
    bytes.resize(3);
    raw.send_bytes(bytes);
  }
  {
    RawConn raw(server.port());  // die mid-frame after a valid header
    ASSERT_TRUE(raw.ok);
    std::vector<std::uint8_t> bytes;
    net::write_stream_header(bytes);
    net::RecordBuilder rb;
    net::encode_hello(rb.begin(net::kTagHello), net::Hello{});
    rb.finish(bytes);
    bytes.resize(bytes.size() - 2);  // truncate inside the CRC
    raw.send_bytes(bytes);
  }

  // ...and the server still serves the next well-behaved client.
  const auto workload = test_workload(1, 4.0);
  net::FleetClient client;
  ASSERT_TRUE(client.connect_loopback(server.port(), /*want_acks=*/true));
  const auto events = play_workload(client, workload, 1);
  std::size_t beats = 0;
  for (const net::ClientEvent& ev : events)
    if (ev.type == net::ClientEvent::Type::Beat) ++beats;
  EXPECT_GT(beats, 0u);
  client.bye();
  server.stop();
}

} // namespace
