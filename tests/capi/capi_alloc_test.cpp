// Verifies the C ABI's embedded-profile memory contract: after
// icg_session_create (the only allocating call) a warmed-up session's
// push / poll / finish / checkpoint hot path performs ZERO heap
// allocation — the beat queue is a fixed ring, the emission scratch and
// checkpoint blob reuse their capacity, and the engine underneath keeps
// the PR-2 zero-steady-state-allocation property through the boundary.
//
// Same technique as tests/core/fleet_alloc_test.cpp: this binary
// replaces the global operator new/delete with counting versions that
// bump core::allocation_counter(); AllocationProbe reads the delta
// around the measured region.
#include "capi/icgkit.h"

#include "core/alloc_probe.h"
#include "synth/recording.h"
#include "synth/subject.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

// ---------------------------------------------------------------------------
// Counting global allocator (plain, nothrow, over-aligned forms).
// ---------------------------------------------------------------------------

namespace {

void* counted_alloc(std::size_t n) {
  icgkit::core::allocation_counter().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  icgkit::core::allocation_counter().fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n ? n : align) != 0)
    return nullptr;
  return p;
}

} // namespace

void* operator new(std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(n, static_cast<std::size_t>(al))) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace icgkit;
using core::AllocationProbe;

constexpr std::uint32_t kChunk = 256;

synth::Recording make_recording() {
  const auto roster = synth::paper_roster();
  synth::RecordingConfig cfg;
  cfg.duration_s = 40.0;
  cfg.session_seed = 13;
  const synth::SourceActivity source = generate_source(roster[0], cfg);
  return measure_device(roster[0], source, 50e3, synth::Position::HoldToChest);
}

void run_backend_alloc_check(std::uint32_t backend) {
  const synth::Recording rec = make_recording();
  icg_config cfg;
  ASSERT_EQ(icg_config_init(&cfg), ICG_OK);
  cfg.backend = backend;
  cfg.sample_rate_hz = rec.fs;

  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr) << icg_last_error();

  const std::size_t total = rec.ecg_mv.size();
  const std::size_t half = (total / 2 / kChunk) * kChunk;
  icg_beat beat;

  // Warm-up: one complete session lifecycle — full stream, a mid-stream
  // checkpoint, the finish flush — so every lazily-grown scratch
  // capacity (session queue, engine delineation/filter buffers,
  // checkpoint blob) reaches steady state. The blob buffer keeps
  // headroom because the blob grows a little as pending beats accrue.
  std::vector<std::uint8_t> mid_blob;
  std::uint32_t mid_len = 0;
  for (std::size_t off = 0; off < total; off += kChunk) {
    const auto len = static_cast<std::uint32_t>(std::min<std::size_t>(kChunk, total - off));
    ASSERT_GE(icg_session_push(s, rec.ecg_mv.data() + off, rec.z_ohm.data() + off, len), 0)
        << icg_last_error();
    while (icg_session_poll_beat(s, &beat) == 1) {
    }
    if (off + kChunk == half) {
      mid_blob.resize(icg_session_checkpoint_size(s) + 4096);
      ASSERT_GT(mid_blob.size(), 4096u);
      ASSERT_EQ(icg_session_checkpoint(s, mid_blob.data(),
                                       static_cast<std::uint32_t>(mid_blob.size()),
                                       &mid_len),
                ICG_OK);
    }
  }
  ASSERT_GE(icg_session_finish(s), 0);
  while (icg_session_poll_beat(s, &beat) == 1) {
  }

  // Rewind the SAME session (same engine, warm buffers) to the
  // mid-stream state, then measure the whole remaining lifecycle.
  ASSERT_EQ(icg_session_restore(s, mid_blob.data(), mid_len), ICG_OK);

  std::uint32_t written = 0;
  {
    AllocationProbe probe;
    for (std::size_t off = half; off + kChunk <= total; off += kChunk) {
      ASSERT_GE(icg_session_push(s, rec.ecg_mv.data() + off, rec.z_ohm.data() + off, kChunk), 0);
      while (icg_session_poll_beat(s, &beat) == 1) {
      }
    }
    ASSERT_EQ(icg_session_checkpoint(s, mid_blob.data(),
                                     static_cast<std::uint32_t>(mid_blob.size()), &written),
              ICG_OK);
    ASSERT_GE(icg_session_finish(s), 0);
    while (icg_session_poll_beat(s, &beat) == 1) {
    }
    EXPECT_EQ(probe.delta(), 0u) << "C ABI hot path allocated after warm-up";
  }
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
}

TEST(CApiAllocTest, HookCountsAllocations) {
  AllocationProbe probe;
  auto* p = new int(42);
  EXPECT_GE(probe.delta(), 1u);  // observe before delete so the pair can't be elided
  delete p;
}

TEST(CApiAllocTest, DoubleBackendHotPathIsAllocationFree) {
  run_backend_alloc_check(ICG_BACKEND_DOUBLE);
}

TEST(CApiAllocTest, Q31BackendHotPathIsAllocationFree) {
  run_backend_alloc_check(ICG_BACKEND_Q31);
}

} // namespace
