// The C ABI boundary (capi/icgkit.h).
//
// Two contracts under test:
//
//  1. Abuse safety: every misuse — NULL arguments, stale or forged
//     handles, double destroy, ABI version mismatch, oversized chunks,
//     wrong-backend checkpoint blobs, undersized buffers — returns a
//     negative status code. Never UB: the ASan/UBSan CI entry runs this
//     binary, so a pointer slip here fails loudly.
//
//  2. Parity: a session streamed through the C ABI emits beats
//     byte-for-byte identical (in the serialize_beat canonical form) to
//     the C++ pipeline fed the same samples, on both backends, and its
//     checkpoint blobs interchange with the C++ API in both directions.
#include "capi/icgkit.h"

#include "core/beat_serializer.h"
#include "core/flight_recorder.h"
#include "core/pipeline.h"
#include "synth/recording.h"
#include "synth/subject.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace {

using namespace icgkit;
using core::BeatRecord;
using core::serialize_beat;

constexpr std::uint32_t kChunk = 256;

synth::Recording test_recording(double duration_s = 30.0) {
  const auto roster = synth::paper_roster();
  synth::RecordingConfig cfg;
  cfg.duration_s = duration_s;
  cfg.session_seed = 7;
  const synth::SourceActivity source = generate_source(roster[0], cfg);
  return measure_device(roster[0], source, 50e3, synth::Position::HoldToChest);
}

icg_config test_config(std::uint32_t backend) {
  icg_config cfg;
  EXPECT_EQ(icg_config_init(&cfg), ICG_OK);
  cfg.backend = backend;
  cfg.sample_rate_hz = 250.0;
  return cfg;
}

// Reconstructs the serialize_beat-relevant fields of a BeatRecord from
// its flat C mirror, so the two streams can be compared in the one
// canonical byte form the whole project uses for beat identity.
BeatRecord from_c_beat(const icg_beat& b) {
  BeatRecord rec;
  rec.points.r = b.r;
  rec.points.b = b.b;
  rec.points.c = b.c;
  rec.points.x = b.x;
  rec.points.b0 = b.b0;
  rec.points.b_method = static_cast<core::BPointMethod>(b.b_method);
  rec.points.c_amplitude = b.c_amplitude;
  rec.points.valid = b.valid != 0;
  rec.hemo.pep_s = b.pep_s;
  rec.hemo.lvet_s = b.lvet_s;
  rec.hemo.hr_bpm = b.hr_bpm;
  rec.hemo.dzdt_max = b.dzdt_max;
  rec.hemo.sv_kubicek_ml = b.sv_kubicek_ml;
  rec.hemo.sv_sramek_ml = b.sv_sramek_ml;
  rec.hemo.co_kubicek_l_min = b.co_kubicek_l_min;
  rec.hemo.tfc_per_kohm = b.tfc_per_kohm;
  rec.flaws = static_cast<core::BeatFlaw>(b.flaws);
  rec.rr_s = b.rr_s;
  return rec;
}

// Streams a recording through a C ABI session in fixed chunks and
// returns the canonical bytes of every emitted beat.
std::vector<unsigned char> run_c_session(const synth::Recording& rec,
                                         std::uint32_t backend) {
  const icg_config cfg = test_config(backend);
  icg_session* s = icg_session_create(&cfg);
  EXPECT_NE(s, nullptr) << icg_last_error();
  std::vector<unsigned char> bytes;
  icg_beat beat;
  const std::size_t total = rec.ecg_mv.size();
  for (std::size_t off = 0; off < total; off += kChunk) {
    const auto len = static_cast<std::uint32_t>(std::min<std::size_t>(kChunk, total - off));
    EXPECT_GE(icg_session_push(s, rec.ecg_mv.data() + off, rec.z_ohm.data() + off, len), 0)
        << icg_last_error();
    while (icg_session_poll_beat(s, &beat) == 1)
      serialize_beat(from_c_beat(beat), bytes);
  }
  EXPECT_GE(icg_session_finish(s), 0) << icg_last_error();
  while (icg_session_poll_beat(s, &beat) == 1) serialize_beat(from_c_beat(beat), bytes);
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
  return bytes;
}

// The same stream through the C++ API, same chunking.
template <typename Pipeline>
std::vector<unsigned char> run_cpp_session(const synth::Recording& rec) {
  Pipeline engine(rec.fs);
  std::vector<unsigned char> bytes;
  std::vector<BeatRecord> emitted;
  const std::size_t total = rec.ecg_mv.size();
  for (std::size_t off = 0; off < total; off += kChunk) {
    const std::size_t len = std::min<std::size_t>(kChunk, total - off);
    emitted.clear();
    engine.push_into(dsp::SignalView(rec.ecg_mv.data() + off, len),
                     dsp::SignalView(rec.z_ohm.data() + off, len), emitted);
    for (const BeatRecord& b : emitted) serialize_beat(b, bytes);
  }
  emitted.clear();
  engine.finish_into(emitted);
  for (const BeatRecord& b : emitted) serialize_beat(b, bytes);
  return bytes;
}

// ---------------------------------------------------------------------------
// Parity
// ---------------------------------------------------------------------------

TEST(CApiParityTest, DoubleBackendMatchesCppByteForByte) {
  const auto rec = test_recording();
  const auto c_bytes = run_c_session(rec, ICG_BACKEND_DOUBLE);
  const auto cpp_bytes = run_cpp_session<core::StreamingBeatPipeline>(rec);
  ASSERT_FALSE(cpp_bytes.empty());
  EXPECT_EQ(c_bytes, cpp_bytes);
}

TEST(CApiParityTest, Q31BackendMatchesCppByteForByte) {
  const auto rec = test_recording();
  const auto c_bytes = run_c_session(rec, ICG_BACKEND_Q31);
  const auto cpp_bytes = run_cpp_session<core::FixedStreamingBeatPipeline>(rec);
  ASSERT_FALSE(cpp_bytes.empty());
  EXPECT_EQ(c_bytes, cpp_bytes);
}

TEST(CApiParityTest, QualitySummaryMatchesCpp) {
  const auto rec = test_recording();
  const icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  core::StreamingBeatPipeline engine(rec.fs);
  std::vector<BeatRecord> emitted;
  icg_beat beat;
  const std::size_t total = rec.ecg_mv.size();
  for (std::size_t off = 0; off < total; off += kChunk) {
    const auto len = static_cast<std::uint32_t>(std::min<std::size_t>(kChunk, total - off));
    ASSERT_GE(icg_session_push(s, rec.ecg_mv.data() + off, rec.z_ohm.data() + off, len), 0);
    while (icg_session_poll_beat(s, &beat) == 1) {
    }
    engine.push_into(dsp::SignalView(rec.ecg_mv.data() + off, len),
                     dsp::SignalView(rec.z_ohm.data() + off, len), emitted);
  }
  ASSERT_GE(icg_session_finish(s), 0);
  engine.finish_into(emitted);

  icg_quality_summary q;
  ASSERT_EQ(icg_session_quality(s, &q), ICG_OK);
  const core::QualitySummary& ref = engine.quality_summary();
  EXPECT_EQ(q.beats, ref.beats);
  EXPECT_EQ(q.usable, ref.usable);
  for (std::size_t i = 0; i < core::kBeatFlawCount; ++i)
    EXPECT_EQ(q.flaw_counts[i], ref.flaw_counts[i]) << "flaw bit " << i;
  EXPECT_EQ(q.ecg_dropouts, ref.ecg_dropouts);
  EXPECT_EQ(q.z_dropouts, ref.z_dropouts);
  EXPECT_EQ(q.detector_resets, ref.detector_resets);
  EXPECT_EQ(q.snr_beats, ref.snr_beats);
  EXPECT_DOUBLE_EQ(q.sum_snr_db, ref.sum_snr_db);
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
}

// ---------------------------------------------------------------------------
// Checkpoint interchange with the C++ API
// ---------------------------------------------------------------------------

TEST(CApiCheckpointTest, BlobInterchangesWithCppBothDirections) {
  const auto rec = test_recording(24.0);
  const std::size_t half = (rec.ecg_mv.size() / 2 / kChunk) * kChunk;

  // C session streams the first half, checkpoints; a C++ pipeline
  // restores that blob and finishes the stream. Reference: an
  // uninterrupted C++ pipeline over the full stream.
  const icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  icg_beat beat;
  std::vector<unsigned char> c_head;
  for (std::size_t off = 0; off < half; off += kChunk) {
    ASSERT_GE(icg_session_push(s, rec.ecg_mv.data() + off, rec.z_ohm.data() + off, kChunk), 0);
    while (icg_session_poll_beat(s, &beat) == 1) serialize_beat(from_c_beat(beat), c_head);
  }
  const std::uint32_t need = icg_session_checkpoint_size(s);
  ASSERT_GT(need, 0u);
  std::vector<std::uint8_t> blob(need);
  std::uint32_t written = 0;
  ASSERT_EQ(icg_session_checkpoint(s, blob.data(), need, &written), ICG_OK);
  ASSERT_EQ(written, need);

  core::StreamingBeatPipeline resumed(rec.fs);
  resumed.restore(blob);
  std::vector<unsigned char> tail_bytes = c_head;
  std::vector<BeatRecord> emitted;
  const std::size_t total = rec.ecg_mv.size();
  for (std::size_t off = half; off < total; off += kChunk) {
    const std::size_t len = std::min<std::size_t>(kChunk, total - off);
    emitted.clear();
    resumed.push_into(dsp::SignalView(rec.ecg_mv.data() + off, len),
                      dsp::SignalView(rec.z_ohm.data() + off, len), emitted);
    for (const BeatRecord& b : emitted) serialize_beat(b, tail_bytes);
  }
  emitted.clear();
  resumed.finish_into(emitted);
  for (const BeatRecord& b : emitted) serialize_beat(b, tail_bytes);

  EXPECT_EQ(tail_bytes, run_cpp_session<core::StreamingBeatPipeline>(rec));

  // Opposite direction: the C session restores the *C++* pipeline's
  // mid-stream blob (taken at the same split) and must finish the
  // stream to the same bytes.
  core::StreamingBeatPipeline source(rec.fs);
  std::vector<unsigned char> cpp_head;
  for (std::size_t off = 0; off < half; off += kChunk) {
    emitted.clear();
    source.push_into(dsp::SignalView(rec.ecg_mv.data() + off, kChunk),
                     dsp::SignalView(rec.z_ohm.data() + off, kChunk), emitted);
    for (const BeatRecord& b : emitted) serialize_beat(b, cpp_head);
  }
  EXPECT_EQ(cpp_head, c_head);
  const auto cpp_blob = source.checkpoint();
  ASSERT_EQ(icg_session_restore(s, cpp_blob.data(),
                                static_cast<std::uint32_t>(cpp_blob.size())),
            ICG_OK)
      << icg_last_error();
  std::vector<unsigned char> c_tail = cpp_head;
  for (std::size_t off = half; off < total; off += kChunk) {
    const auto len = static_cast<std::uint32_t>(std::min<std::size_t>(kChunk, total - off));
    ASSERT_GE(icg_session_push(s, rec.ecg_mv.data() + off, rec.z_ohm.data() + off, len), 0);
    while (icg_session_poll_beat(s, &beat) == 1) serialize_beat(from_c_beat(beat), c_tail);
  }
  ASSERT_GE(icg_session_finish(s), 0);
  while (icg_session_poll_beat(s, &beat) == 1) serialize_beat(from_c_beat(beat), c_tail);
  EXPECT_EQ(c_tail, tail_bytes);
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
}

TEST(CApiCheckpointTest, WrongBackendBlobIsRefused) {
  const icg_config q31_cfg = test_config(ICG_BACKEND_Q31);
  icg_session* q31 = icg_session_create(&q31_cfg);
  ASSERT_NE(q31, nullptr);
  const std::uint32_t need = icg_session_checkpoint_size(q31);
  ASSERT_GT(need, 0u);
  std::vector<std::uint8_t> blob(need);
  std::uint32_t written = 0;
  ASSERT_EQ(icg_session_checkpoint(q31, blob.data(), need, &written), ICG_OK);

  const icg_config dbl_cfg = test_config(ICG_BACKEND_DOUBLE);
  icg_session* dbl = icg_session_create(&dbl_cfg);
  ASSERT_NE(dbl, nullptr);
  EXPECT_EQ(icg_session_restore(dbl, blob.data(), written), ICG_ERR_BAD_CHECKPOINT);
  EXPECT_NE(std::strstr(icg_last_error(), "ICG_ERR_BAD_CHECKPOINT"), nullptr);
  // The refused session must remain fully usable.
  const double zeros[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_GE(icg_session_push(dbl, zeros, zeros, 8), 0);
  EXPECT_EQ(icg_session_destroy(dbl), ICG_OK);
  EXPECT_EQ(icg_session_destroy(q31), ICG_OK);
}

TEST(CApiCheckpointTest, CorruptAndTruncatedBlobsAreRefused) {
  const icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  const std::uint32_t need = icg_session_checkpoint_size(s);
  std::vector<std::uint8_t> blob(need);
  std::uint32_t written = 0;
  ASSERT_EQ(icg_session_checkpoint(s, blob.data(), need, &written), ICG_OK);

  auto corrupt = blob;
  corrupt[corrupt.size() / 2] ^= 0xFF;  // payload bit flip -> CRC mismatch
  EXPECT_EQ(icg_session_restore(s, corrupt.data(), written), ICG_ERR_BAD_CHECKPOINT);
  EXPECT_EQ(icg_session_restore(s, blob.data(), written / 2), ICG_ERR_BAD_CHECKPOINT);
  EXPECT_EQ(icg_session_restore(s, blob.data(), 3), ICG_ERR_BAD_CHECKPOINT);
  // Intact blob still restores after all those refusals.
  EXPECT_EQ(icg_session_restore(s, blob.data(), written), ICG_OK);
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
}

TEST(CApiCheckpointTest, ConfigMismatchedAndGarbageBlobsAreRefused) {
  const icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  const std::uint32_t need = icg_session_checkpoint_size(s);
  std::vector<std::uint8_t> blob(need);
  std::uint32_t written = 0;
  ASSERT_EQ(icg_session_checkpoint(s, blob.data(), need, &written), ICG_OK);

  // Same backend, different window: the blob's recorded configuration
  // must be refused by the boundary's pre-restore validation.
  icg_config other = test_config(ICG_BACKEND_DOUBLE);
  other.window_s = 16.0;
  icg_session* t = icg_session_create(&other);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(icg_session_restore(t, blob.data(), written), ICG_ERR_BAD_CHECKPOINT);

  // Bytes that are not a checkpoint at all.
  const std::uint8_t junk[32] = {0x13, 0x37, 0xBE, 0xEF};
  EXPECT_EQ(icg_session_restore(t, junk, sizeof junk), ICG_ERR_BAD_CHECKPOINT);

  EXPECT_EQ(icg_session_destroy(t), ICG_OK);
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
}

TEST(CApiCheckpointTest, BufferTooSmallReportsRequiredSize) {
  const icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  std::uint8_t tiny[16];
  std::uint32_t written = 0;
  EXPECT_EQ(icg_session_checkpoint(s, tiny, sizeof tiny, &written),
            ICG_ERR_BUFFER_TOO_SMALL);
  EXPECT_EQ(written, icg_session_checkpoint_size(s));
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
}

// ---------------------------------------------------------------------------
// Abuse: config and handle lifecycle
// ---------------------------------------------------------------------------

TEST(CApiAbuseTest, NullArgumentsAreRejected) {
  EXPECT_EQ(icg_config_init(nullptr), ICG_ERR_NULL_ARG);
  EXPECT_EQ(icg_session_create(nullptr), nullptr);

  const icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  const double samples[4] = {0, 0, 0, 0};
  EXPECT_EQ(icg_session_push(s, nullptr, samples, 4), ICG_ERR_NULL_ARG);
  EXPECT_EQ(icg_session_push(s, samples, nullptr, 4), ICG_ERR_NULL_ARG);
  EXPECT_EQ(icg_session_poll_beat(s, nullptr), ICG_ERR_NULL_ARG);
  EXPECT_EQ(icg_session_quality(s, nullptr), ICG_ERR_NULL_ARG);
  std::uint32_t written = 0;
  EXPECT_EQ(icg_session_checkpoint(s, nullptr, 0, &written), ICG_ERR_NULL_ARG);
  EXPECT_EQ(icg_session_restore(s, nullptr, 0), ICG_ERR_NULL_ARG);
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
}

TEST(CApiAbuseTest, AbiVersionMismatchIsRefused) {
  icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  cfg.abi_version = ICG_ABI_VERSION + 1;
  EXPECT_EQ(icg_session_create(&cfg), nullptr);
  EXPECT_NE(std::strstr(icg_last_error(), "ICG_ERR_ABI_MISMATCH"), nullptr);
  cfg.abi_version = 0;
  EXPECT_EQ(icg_session_create(&cfg), nullptr);
}

TEST(CApiAbuseTest, BadConfigValuesAreRefused) {
  icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  cfg.backend = 42;
  EXPECT_EQ(icg_session_create(&cfg), nullptr);
  cfg = test_config(ICG_BACKEND_DOUBLE);
  cfg.sample_rate_hz = -250.0;
  EXPECT_EQ(icg_session_create(&cfg), nullptr);
  cfg = test_config(ICG_BACKEND_DOUBLE);
  cfg.window_s = 0.0;
  EXPECT_EQ(icg_session_create(&cfg), nullptr);
  cfg = test_config(ICG_BACKEND_DOUBLE);
  cfg.max_chunk = 0;
  EXPECT_EQ(icg_session_create(&cfg), nullptr);
  cfg = test_config(ICG_BACKEND_DOUBLE);
  cfg.reserved[2] = 1;  // reserved fields are part of the v1 contract
  EXPECT_EQ(icg_session_create(&cfg), nullptr);
}

TEST(CApiAbuseTest, BadHandlesNeverDereference) {
  icg_beat beat;
  const double samples[4] = {0, 0, 0, 0};
  // NULL, forged, and misaligned-garbage handles.
  EXPECT_EQ(icg_session_push(nullptr, samples, samples, 4), ICG_ERR_BAD_HANDLE);
  EXPECT_EQ(icg_session_poll_beat(nullptr, &beat), ICG_ERR_BAD_HANDLE);
  EXPECT_EQ(icg_session_finish(nullptr), ICG_ERR_BAD_HANDLE);
  EXPECT_EQ(icg_session_destroy(nullptr), ICG_ERR_BAD_HANDLE);
  EXPECT_EQ(icg_session_checkpoint_size(nullptr), 0u);
  auto* forged = reinterpret_cast<icg_session*>(static_cast<std::uintptr_t>(0xDEADBEEF));
  EXPECT_EQ(icg_session_push(forged, samples, samples, 4), ICG_ERR_BAD_HANDLE);
  EXPECT_EQ(icg_session_destroy(forged), ICG_ERR_BAD_HANDLE);
}

TEST(CApiAbuseTest, DoubleDestroyAndStaleUseAreErrors) {
  const icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
  EXPECT_EQ(icg_session_destroy(s), ICG_ERR_BAD_HANDLE);
  const double samples[4] = {0, 0, 0, 0};
  EXPECT_EQ(icg_session_push(s, samples, samples, 4), ICG_ERR_BAD_HANDLE);
  icg_beat beat;
  EXPECT_EQ(icg_session_poll_beat(s, &beat), ICG_ERR_BAD_HANDLE);

  // A new session may reuse the slot; the old handle must stay dead.
  icg_session* fresh = icg_session_create(&cfg);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(icg_session_push(s, samples, samples, 4), ICG_ERR_BAD_HANDLE);
  EXPECT_NE(s, fresh);
  EXPECT_EQ(icg_session_destroy(fresh), ICG_OK);
}

TEST(CApiAbuseTest, OversizedChunkAndBadStateAreErrors) {
  icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  cfg.max_chunk = 64;
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  std::vector<double> samples(65, 0.0);
  EXPECT_EQ(icg_session_push(s, samples.data(), samples.data(), 65),
            ICG_ERR_CHUNK_TOO_LARGE);
  EXPECT_GE(icg_session_push(s, samples.data(), samples.data(), 64), 0);
  EXPECT_GE(icg_session_finish(s), 0);
  EXPECT_EQ(icg_session_push(s, samples.data(), samples.data(), 8), ICG_ERR_BAD_STATE);
  EXPECT_EQ(icg_session_finish(s), ICG_ERR_BAD_STATE);
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
}

TEST(CApiAbuseTest, BeatBacklogPoisonsSession) {
  const auto rec = test_recording();
  icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  cfg.beat_queue_capacity = 2;  // absurdly small on purpose
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  int rc = 0;
  const std::size_t total = rec.ecg_mv.size();
  for (std::size_t off = 0; off + kChunk <= total && rc >= 0; off += kChunk)
    rc = icg_session_push(s, rec.ecg_mv.data() + off, rec.z_ohm.data() + off, kChunk);
  ASSERT_EQ(rc, ICG_ERR_BEAT_BACKLOG) << "never polling must overflow a 2-beat queue";
  // Poisoned: further pushes and finish keep reporting the overflow.
  EXPECT_EQ(icg_session_push(s, rec.ecg_mv.data(), rec.z_ohm.data(), kChunk),
            ICG_ERR_BEAT_BACKLOG);
  EXPECT_EQ(icg_session_finish(s), ICG_ERR_BEAT_BACKLOG);
  // Already-queued beats stay drainable, and destroy still works.
  icg_beat beat;
  EXPECT_EQ(icg_session_poll_beat(s, &beat), 1);
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
}

TEST(CApiAbuseTest, LastErrorAndStatusNamesAreStable) {
  EXPECT_EQ(icg_abi_version(), ICG_ABI_VERSION);
  EXPECT_STREQ(icg_status_name(ICG_OK), "ICG_OK");
  EXPECT_STREQ(icg_status_name(ICG_ERR_BAD_HANDLE), "ICG_ERR_BAD_HANDLE");
  EXPECT_STREQ(icg_status_name(-9999), "ICG_ERR_?");
  icg_session_destroy(nullptr);
  EXPECT_NE(std::strstr(icg_last_error(), "ICG_ERR_BAD_HANDLE"), nullptr);
}

TEST(CApiAbuseTest, SessionTableExhaustionIsAnError) {
  const icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  std::vector<icg_session*> sessions;
  for (;;) {
    icg_session* s = icg_session_create(&cfg);
    if (s == nullptr) break;
    sessions.push_back(s);
    ASSERT_LE(sessions.size(), 256u) << "table should be bounded";
  }
  EXPECT_NE(std::strstr(icg_last_error(), "ICG_ERR_NO_RESOURCES"), nullptr);
  for (icg_session* s : sessions) EXPECT_EQ(icg_session_destroy(s), ICG_OK);
  // The table is fully reusable after the mass destroy.
  icg_session* again = icg_session_create(&cfg);
  EXPECT_NE(again, nullptr);
  EXPECT_EQ(icg_session_destroy(again), ICG_OK);
}

// ---------------------------------------------------------------------------
// Flight recording through the C ABI
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Streams a recording through a C session with flight recording on and
/// returns the .icgr bytes. `stop_mid_stream` exercises record_stop
/// instead of the finish-finalized path.
std::vector<std::uint8_t> record_c_session(const synth::Recording& rec,
                                           std::uint32_t backend,
                                           bool stop_mid_stream) {
  const std::string path = ::testing::TempDir() + "capi_flight_" +
                           std::to_string(backend) +
                           (stop_mid_stream ? "_stopped" : "_finished") + ".icgr";
  const icg_config cfg = test_config(backend);
  icg_session* s = icg_session_create(&cfg);
  EXPECT_NE(s, nullptr) << icg_last_error();
  EXPECT_EQ(icg_session_record_start(s, path.c_str(), 1500), ICG_OK)
      << icg_last_error();
  icg_beat beat;
  const std::size_t total = rec.ecg_mv.size();
  for (std::size_t off = 0; off < total; off += kChunk) {
    const auto len =
        static_cast<std::uint32_t>(std::min<std::size_t>(kChunk, total - off));
    EXPECT_GE(icg_session_push(s, rec.ecg_mv.data() + off, rec.z_ohm.data() + off, len),
              0)
        << icg_last_error();
    while (icg_session_poll_beat(s, &beat) == 1) {
    }
    if (stop_mid_stream && off >= total / 2) {
      EXPECT_EQ(icg_session_record_stop(s), ICG_OK) << icg_last_error();
      stop_mid_stream = false;  // keep streaming, unrecorded
    }
  }
  EXPECT_GE(icg_session_finish(s), 0) << icg_last_error();
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
  return read_file_bytes(path);
}

TEST(CApiFlightRecordTest, FinishFinalizedRecordingVerifiesOnBothBackends) {
  const auto rec = test_recording(20.0);
  for (const std::uint32_t backend : {ICG_BACKEND_DOUBLE, ICG_BACKEND_Q31}) {
    const std::vector<std::uint8_t> file = record_c_session(rec, backend, false);
    uint32_t probed_backend = 99, finished = 0;
    double fs = 0.0;
    uint64_t chunks = 0, checkpoints = 0, beats = 0;
    ASSERT_EQ(icg_flight_probe(file.data(), static_cast<uint32_t>(file.size()),
                               &probed_backend, &fs, &chunks, &checkpoints, &beats,
                               &finished),
              ICG_OK)
        << icg_last_error();
    EXPECT_EQ(probed_backend, backend);
    EXPECT_EQ(fs, 250.0);
    EXPECT_GT(chunks, 0u);
    EXPECT_GT(beats, 0u);
    EXPECT_EQ(finished, 1u);
    // The file replays byte-identically through the C++ replay engine —
    // the recording taps the exact samples the C caller pushed.
    const core::FlightVerifyReport rep = core::flight_verify(file);
    EXPECT_TRUE(rep.ok) << "backend " << backend << ": first divergent chunk "
                        << rep.first_divergent_chunk;
    EXPECT_TRUE(rep.finished);
  }
}

TEST(CApiFlightRecordTest, RecordStopWritesAStoppedButReplayableFile) {
  const auto rec = test_recording(20.0);
  const std::vector<std::uint8_t> file =
      record_c_session(rec, ICG_BACKEND_DOUBLE, true);
  uint32_t finished = 99;
  ASSERT_EQ(icg_flight_probe(file.data(), static_cast<uint32_t>(file.size()),
                             nullptr, nullptr, nullptr, nullptr, nullptr, &finished),
            ICG_OK);
  EXPECT_EQ(finished, 0u);
  EXPECT_TRUE(core::flight_verify(file).ok);
}

TEST(CApiFlightRecordTest, RestoreStopsAnActiveRecording) {
  const auto rec = test_recording(20.0);
  const std::string path = ::testing::TempDir() + "capi_flight_restore.icgr";
  const icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(icg_session_record_start(s, path.c_str(), 0), ICG_OK);
  icg_beat beat;
  ASSERT_GE(icg_session_push(s, rec.ecg_mv.data(), rec.z_ohm.data(), kChunk), 0);
  while (icg_session_poll_beat(s, &beat) == 1) {
  }
  std::vector<std::uint8_t> blob(icg_session_checkpoint_size(s));
  uint32_t written = 0;
  ASSERT_EQ(icg_session_checkpoint(s, blob.data(),
                                   static_cast<uint32_t>(blob.size()), &written),
            ICG_OK);
  // Restoring rewinds the stream, so the active recording is finalized
  // (as stopped) before the jump; a second stop is then a state error.
  ASSERT_EQ(icg_session_restore(s, blob.data(), written), ICG_OK);
  EXPECT_EQ(icg_session_record_stop(s), ICG_ERR_BAD_STATE);
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
  const std::vector<std::uint8_t> file = read_file_bytes(path);
  uint32_t finished = 99;
  EXPECT_EQ(icg_flight_probe(file.data(), static_cast<uint32_t>(file.size()), nullptr,
                             nullptr, nullptr, nullptr, nullptr, &finished),
            ICG_OK);
  EXPECT_EQ(finished, 0u);
}

TEST(CApiFlightRecordTest, RecordMisuseIsRejected) {
  const std::string path = ::testing::TempDir() + "capi_flight_misuse.icgr";
  const icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(icg_session_record_start(nullptr, path.c_str(), 0), ICG_ERR_BAD_HANDLE);
  EXPECT_EQ(icg_session_record_stop(nullptr), ICG_ERR_BAD_HANDLE);
  EXPECT_EQ(icg_session_record_start(s, nullptr, 0), ICG_ERR_NULL_ARG);
  EXPECT_EQ(icg_session_record_stop(s), ICG_ERR_BAD_STATE);  // not recording
  EXPECT_EQ(icg_session_record_start(s, "/nonexistent-dir/x.icgr", 0),
            ICG_ERR_BAD_CHECKPOINT);  // unopenable sink
  ASSERT_EQ(icg_session_record_start(s, path.c_str(), 0), ICG_OK);
  EXPECT_EQ(icg_session_record_start(s, path.c_str(), 0),
            ICG_ERR_BAD_STATE);  // already recording
  ASSERT_GE(icg_session_finish(s), 0);
  EXPECT_EQ(icg_session_record_stop(s), ICG_ERR_BAD_STATE);  // finish finalized it
  EXPECT_EQ(icg_session_record_start(s, path.c_str(), 0),
            ICG_ERR_BAD_STATE);  // after finish
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
}

TEST(CApiFlightRecordTest, InMemoryRecordingRoundTripsThroughStopMem) {
  const auto rec = test_recording(20.0);
  const icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(icg_session_record_start_mem(s, 1500), ICG_OK) << icg_last_error();
  EXPECT_EQ(icg_session_record_start_mem(s, 0), ICG_ERR_BAD_STATE);  // already on
  icg_beat beat;
  const std::size_t total = rec.ecg_mv.size();
  for (std::size_t off = 0; off < total; off += kChunk) {
    const auto len =
        static_cast<std::uint32_t>(std::min<std::size_t>(kChunk, total - off));
    ASSERT_GE(icg_session_push(s, rec.ecg_mv.data() + off, rec.z_ohm.data() + off, len),
              0);
    while (icg_session_poll_beat(s, &beat) == 1) {
    }
  }
  // Size probe first: an undersized buffer reports the requirement and
  // keeps the recording retrievable.
  uint32_t written = 0;
  std::uint8_t tiny = 0;
  ASSERT_EQ(icg_session_record_stop_mem(s, &tiny, 1, &written),
            ICG_ERR_BUFFER_TOO_SMALL);
  ASSERT_GT(written, 1u);
  std::vector<std::uint8_t> file(written);
  ASSERT_EQ(icg_session_record_stop_mem(s, file.data(),
                                        static_cast<uint32_t>(file.size()), &written),
            ICG_OK)
      << icg_last_error();
  file.resize(written);
  // Taken exactly once: a second take is a state error.
  EXPECT_EQ(icg_session_record_stop_mem(s, file.data(),
                                        static_cast<uint32_t>(file.size()), &written),
            ICG_ERR_BAD_STATE);
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);

  uint32_t finished = 99;
  uint64_t beats = 0;
  ASSERT_EQ(icg_flight_probe(file.data(), static_cast<uint32_t>(file.size()), nullptr,
                             nullptr, nullptr, nullptr, &beats, &finished),
            ICG_OK);
  EXPECT_EQ(finished, 0u);  // stopped mid-stream, not finish-finalized
  EXPECT_GT(beats, 0u);
  // Replay-verified round trip: the in-memory .icgr bytes re-run
  // byte-identically through the C++ replay engine.
  EXPECT_TRUE(core::flight_verify(file).ok);
}

TEST(CApiFlightRecordTest, FinishFinalizedMemRecordingStaysRetrievable) {
  const auto rec = test_recording(15.0);
  const icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(icg_session_record_start_mem(s, 0), ICG_OK);
  icg_beat beat;
  const std::size_t total = rec.ecg_mv.size();
  for (std::size_t off = 0; off < total; off += kChunk) {
    const auto len =
        static_cast<std::uint32_t>(std::min<std::size_t>(kChunk, total - off));
    ASSERT_GE(icg_session_push(s, rec.ecg_mv.data() + off, rec.z_ohm.data() + off, len),
              0);
    while (icg_session_poll_beat(s, &beat) == 1) {
    }
  }
  ASSERT_GE(icg_session_finish(s), 0);  // finalizes the recording (FINI)
  while (icg_session_poll_beat(s, &beat) == 1) {
  }
  uint32_t written = 0;
  ASSERT_EQ(icg_session_record_stop_mem(s, nullptr, 0, &written),
            ICG_ERR_BUFFER_TOO_SMALL);
  std::vector<std::uint8_t> file(written);
  ASSERT_EQ(icg_session_record_stop_mem(s, file.data(),
                                        static_cast<uint32_t>(file.size()), &written),
            ICG_OK)
      << icg_last_error();
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
  uint32_t finished = 0;
  ASSERT_EQ(icg_flight_probe(file.data(), static_cast<uint32_t>(file.size()), nullptr,
                             nullptr, nullptr, nullptr, nullptr, &finished),
            ICG_OK);
  EXPECT_EQ(finished, 1u);
  const core::FlightVerifyReport rep = core::flight_verify(file);
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.finished);
}

TEST(CApiFlightRecordTest, StopMemMisuseIsRejected) {
  const icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  uint32_t written = 0;
  std::uint8_t buf[16];
  EXPECT_EQ(icg_session_record_start_mem(nullptr, 0), ICG_ERR_BAD_HANDLE);
  EXPECT_EQ(icg_session_record_stop_mem(nullptr, buf, sizeof buf, &written),
            ICG_ERR_BAD_HANDLE);
  EXPECT_EQ(icg_session_record_stop_mem(s, buf, sizeof buf, nullptr),
            ICG_ERR_NULL_ARG);
  EXPECT_EQ(icg_session_record_stop_mem(s, nullptr, 16, &written),
            ICG_ERR_NULL_ARG);
  EXPECT_EQ(icg_session_record_stop_mem(s, buf, sizeof buf, &written),
            ICG_ERR_BAD_STATE);  // nothing recording
  // A file recording is not retrievable through the memory verb.
  const std::string path = ::testing::TempDir() + "capi_flight_mem_misuse.icgr";
  ASSERT_EQ(icg_session_record_start(s, path.c_str(), 0), ICG_OK);
  EXPECT_EQ(icg_session_record_stop_mem(s, buf, sizeof buf, &written),
            ICG_ERR_BAD_STATE);
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
}

TEST(CApiFlightRecordTest, CorruptFlightRecordsProbeAsBadCheckpoint) {
  const auto rec = test_recording(15.0);
  const std::vector<std::uint8_t> file =
      record_c_session(rec, ICG_BACKEND_Q31, false);
  ASSERT_EQ(icg_flight_probe(file.data(), static_cast<uint32_t>(file.size()), nullptr,
                             nullptr, nullptr, nullptr, nullptr, nullptr),
            ICG_OK);
  // Flip sweep: every corrupted variant is refused, never UB (this
  // binary runs under the ASan/UBSan CI entry).
  const std::size_t stride = std::max<std::size_t>(1, file.size() / 53);
  for (std::size_t pos = 0; pos < file.size(); pos += stride) {
    std::vector<std::uint8_t> bad = file;
    bad[pos] ^= 0xA5u;
    EXPECT_EQ(icg_flight_probe(bad.data(), static_cast<uint32_t>(bad.size()), nullptr,
                               nullptr, nullptr, nullptr, nullptr, nullptr),
              ICG_ERR_BAD_CHECKPOINT)
        << "flipped byte " << pos;
  }
  // Hard-truncation sweep (cut below the header: always refused).
  for (const std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{4},
                                std::size_t{8}, std::size_t{12}, std::size_t{16}}) {
    EXPECT_EQ(icg_flight_probe(file.data(), static_cast<uint32_t>(len), nullptr,
                               nullptr, nullptr, nullptr, nullptr, nullptr),
              ICG_ERR_BAD_CHECKPOINT)
        << "truncated to " << len;
  }
  EXPECT_EQ(icg_flight_probe(nullptr, 5, nullptr, nullptr, nullptr, nullptr, nullptr,
                             nullptr),
            ICG_ERR_NULL_ARG);
  // A plain checkpoint blob is not a flight record.
  const icg_config cfg = test_config(ICG_BACKEND_DOUBLE);
  icg_session* s = icg_session_create(&cfg);
  ASSERT_NE(s, nullptr);
  std::vector<std::uint8_t> blob(icg_session_checkpoint_size(s));
  uint32_t written = 0;
  ASSERT_EQ(icg_session_checkpoint(s, blob.data(),
                                   static_cast<uint32_t>(blob.size()), &written),
            ICG_OK);
  EXPECT_EQ(icg_flight_probe(blob.data(), written, nullptr, nullptr, nullptr, nullptr,
                             nullptr, nullptr),
            ICG_ERR_BAD_CHECKPOINT);
  EXPECT_EQ(icg_session_destroy(s), ICG_OK);
}

} // namespace
