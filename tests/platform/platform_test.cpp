#include "platform/adc.h"
#include "platform/components.h"
#include "platform/mcu.h"
#include "platform/pmu.h"
#include "platform/power_model.h"
#include "platform/radio.h"

#include "dsp/stats.h"
#include "synth/ecg_synth.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icgkit::platform {
namespace {

TEST(ComponentsTest, TableOneCurrents) {
  // Verbatim Table I values.
  EXPECT_DOUBLE_EQ(component_current_ma(Component::EcgChip), 0.400);
  EXPECT_DOUBLE_EQ(component_current_ma(Component::IcgChip), 0.900);
  EXPECT_DOUBLE_EQ(component_current_ma(Component::McuActive), 10.500);
  EXPECT_DOUBLE_EQ(component_current_ma(Component::McuStandby), 0.020);
  EXPECT_DOUBLE_EQ(component_current_ma(Component::RadioTx), 11.000);
  EXPECT_DOUBLE_EQ(component_current_ma(Component::RadioStandby), 0.002);
  EXPECT_DOUBLE_EQ(component_current_ma(Component::MotionSensors), 3.800);
}

TEST(ComponentsTest, NamesNonEmpty) {
  for (const Component c : kAllComponents) EXPECT_FALSE(component_name(c).empty());
}

TEST(PowerModelTest, PaperBatteryLifeClaim) {
  // Section V / VI: 50 % MCU duty, 1 % radio duty, 710 mAh -> 106 hours.
  DutyCycleProfile duty;
  duty.mcu_active = 0.50;
  duty.radio_tx = 0.01;
  duty.motion_sensors = 0.0;
  const PowerModel model(duty);
  // 0.4 + 0.9 + 0.5*10.5 + 0.5*0.02 + 0.01*11 + 0.99*0.002 = 6.67198 mA
  EXPECT_NEAR(model.average_current_ma(), 6.67198, 1e-9);
  EXPECT_NEAR(model.battery_life_hours(kPaperBatteryMah), 106.0, 1.0);
}

TEST(PowerModelTest, FourDaysOfOperation) {
  const PowerModel model(DutyCycleProfile{});
  EXPECT_GT(model.battery_life_hours(kPaperBatteryMah), 4.0 * 24.0);
}

TEST(PowerModelTest, FortyPercentDutyLastsLonger) {
  DutyCycleProfile d40, d50;
  d40.mcu_active = 0.40;
  d50.mcu_active = 0.50;
  EXPECT_GT(PowerModel(d40).battery_life_hours(710.0),
            PowerModel(d50).battery_life_hours(710.0));
}

TEST(PowerModelTest, MotionSensorsCostIsLarge) {
  DutyCycleProfile with, without;
  with.motion_sensors = 1.0;
  const double delta =
      PowerModel(with).average_current_ma() - PowerModel(without).average_current_ma();
  EXPECT_NEAR(delta, 3.8, 1e-12);
}

TEST(PowerModelTest, ComponentBreakdownSumsToTotal) {
  DutyCycleProfile duty;
  duty.mcu_active = 0.45;
  duty.radio_tx = 0.005;
  duty.motion_sensors = 0.2;
  const PowerModel model(duty);
  double sum = 0.0;
  for (const Component c : kAllComponents) sum += model.component_average_ma(c);
  EXPECT_NEAR(sum, model.average_current_ma(), 1e-12);
}

TEST(PowerModelTest, RejectsBadInput) {
  DutyCycleProfile duty;
  duty.mcu_active = 1.5;
  EXPECT_THROW(PowerModel{duty}, std::invalid_argument);
  EXPECT_THROW((void)PowerModel{}.battery_life_hours(-1.0), std::invalid_argument);
}

TEST(AdcTest, QuantizeReconstructRoundTrip) {
  const Adc adc;
  for (double v : {-2.5, -1.0, 0.0, 0.7, 2.49}) {
    const double rec = adc.reconstruct(adc.quantize(v));
    EXPECT_NEAR(rec, v, adc.config().lsb());
  }
}

TEST(AdcTest, ClipsOutOfRange) {
  const Adc adc;
  EXPECT_EQ(adc.quantize(100.0), adc.config().code_max());
  EXPECT_EQ(adc.quantize(-100.0), 0);
}

TEST(AdcTest, MonotoneCodes) {
  const Adc adc;
  std::int64_t prev = adc.quantize(-2.5);
  for (double v = -2.4; v < 2.5; v += 0.1) {
    const std::int64_t code = adc.quantize(v);
    EXPECT_GE(code, prev);
    prev = code;
  }
}

TEST(AdcTest, IdealSnrFormula) {
  AdcConfig cfg;
  cfg.bits = 12;
  EXPECT_NEAR(Adc(cfg).ideal_snr_db(), 74.0, 0.1);
  cfg.bits = 16;
  EXPECT_NEAR(Adc(cfg).ideal_snr_db(), 98.1, 0.1);
}

TEST(AdcTest, TwelveBitsPreserveEcgMorphology) {
  // End-to-end property: the STM32's 12-bit ADC must not distort the ECG
  // in any way that matters (error << one LSB of signal content).
  const auto gen = synth::synthesize_ecg(std::vector<double>(10, 0.8), 250.0);
  AdcConfig cfg;
  cfg.bits = 12;
  cfg.full_scale_min = -2.5;
  cfg.full_scale_max = 2.5;
  const Adc adc(cfg);
  const dsp::Signal digitized = adc.digitize(gen.ecg_mv);
  double max_err = 0.0;
  for (std::size_t i = 0; i < digitized.size(); ++i)
    max_err = std::max(max_err, std::abs(digitized[i] - gen.ecg_mv[i]));
  EXPECT_LT(max_err, cfg.lsb());
}

TEST(AdcTest, RejectsBadConfig) {
  AdcConfig cfg;
  cfg.bits = 1;
  EXPECT_THROW(Adc{cfg}, std::invalid_argument);
  cfg.bits = 12;
  cfg.full_scale_min = 2.0;
  cfg.full_scale_max = -2.0;
  EXPECT_THROW(Adc{cfg}, std::invalid_argument);
}

TEST(RadioTest, AirtimeScalesWithBytes) {
  const BleRadio radio;
  EXPECT_DOUBLE_EQ(radio.airtime_s(0), 0.0);
  EXPECT_GT(radio.airtime_s(40), radio.airtime_s(20));
  // 16 bytes in one packet: (16+17)*8 bits at 1 Mbps + 0.5 ms overhead.
  EXPECT_NEAR(radio.airtime_s(16), 33.0 * 8.0 / 1e6 + 0.0005, 1e-9);
}

TEST(RadioTest, BeatReportDutyCycleMatchesPaperOrder) {
  // Section V: sending Z0/LVET/PEP/HR uses ~0.1 % of the radio duty.
  const BleRadio radio;
  const double duty = radio.beat_report_duty_cycle(70.0);
  EXPECT_LT(duty, 0.005);
  EXPECT_GT(duty, 1e-5);
}

TEST(RadioTest, RawStreamingIsOrdersOfMagnitudeWorse) {
  const BleRadio radio;
  const double reports = radio.beat_report_duty_cycle(70.0);
  const double raw = radio.raw_streaming_duty_cycle(250.0);
  EXPECT_GT(raw, 10.0 * reports);
}

TEST(RadioTest, RejectsBadArgs) {
  const BleRadio radio;
  EXPECT_THROW((void)radio.duty_cycle(16, 0.0), std::invalid_argument);
  EXPECT_THROW((void)radio.beat_report_duty_cycle(0.0), std::invalid_argument);
  BleConfig cfg;
  cfg.bitrate_bps = 0.0;
  EXPECT_THROW(BleRadio{cfg}, std::invalid_argument);
}

TEST(McuTest, DutyCycleScalesWithSamplingRate) {
  const core::PipelineConfig cfg;
  McuConfig mcu;
  const double d250 = estimate_cpu_load(cfg, 250.0, 70.0, mcu).duty_cycle;
  mcu.acquisition_fs_hz = 4000.0;
  const double d500 = estimate_cpu_load(cfg, 500.0, 70.0, mcu).duty_cycle;
  EXPECT_GT(d500, d250);
}

TEST(McuTest, PaperDutyBandReachable) {
  // The paper reports 40-50 % CPU duty. With software floats on the
  // FPU-less Cortex-M3 and a fast acquisition front end, the model lands
  // in that band at fs ~ 750-1000 Hz.
  const core::PipelineConfig cfg;
  McuConfig mcu;
  mcu.acquisition_fs_hz = 6000.0;
  const double duty = estimate_cpu_load(cfg, 800.0, 70.0, mcu).duty_cycle;
  EXPECT_GT(duty, 0.35);
  EXPECT_LT(duty, 0.55);
}

TEST(McuTest, EvaluationRateIsComfortable) {
  // At the evaluation rate (250 Hz) the pipeline fits with big margin.
  const double duty =
      estimate_cpu_load(core::PipelineConfig{}, 250.0, 70.0, McuConfig{}).duty_cycle;
  EXPECT_LT(duty, 0.25);
}

TEST(McuTest, StageBreakdownSumsToTotal) {
  const CpuLoadReport r = estimate_cpu_load(core::PipelineConfig{}, 250.0, 70.0);
  double macs = 0.0;
  for (const auto& s : r.stages) macs += s.macs_per_second;
  EXPECT_NEAR(macs, r.total_macs_per_second, 1e-9);
  EXPECT_GT(r.stages.size(), 5u);
}

TEST(McuTest, RejectsBadArgs) {
  EXPECT_THROW(estimate_cpu_load(core::PipelineConfig{}, 0.0, 70.0), std::invalid_argument);
  EXPECT_THROW(estimate_cpu_load(core::PipelineConfig{}, 250.0, -1.0),
               std::invalid_argument);
}

TEST(PmuTest, FullBatteryAllowsContinuousMonitoring) {
  const Pmu pmu;
  const PmuDecision d = pmu.choose(1.0, 96.0);
  EXPECT_TRUE(d.meets_requirement);
  EXPECT_GE(d.projected_runtime_h, 96.0);
  EXPECT_GE(d.point.quality_score, 0.9);
}

TEST(PmuTest, LowBatteryDegradesGracefully) {
  const Pmu pmu;
  const PmuDecision full = pmu.choose(1.0, 48.0);
  const PmuDecision low = pmu.choose(0.10, 48.0);
  EXPECT_LE(low.point.quality_score, full.point.quality_score);
}

TEST(PmuTest, ImpossibleRequirementFallsBackToSurvival) {
  const Pmu pmu;
  const PmuDecision d = pmu.choose(0.01, 1000.0);
  EXPECT_FALSE(d.meets_requirement);
  EXPECT_EQ(d.point.name, "survival");
}

TEST(PmuTest, OperatingPointsOrderedByQuality) {
  const auto points = standard_operating_points();
  ASSERT_GE(points.size(), 3u);
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LE(points[i].quality_score, points[i - 1].quality_score);
}

TEST(PmuTest, RuntimeMonotoneInBattery) {
  const Pmu pmu;
  const auto p = standard_operating_points()[1];
  EXPECT_GT(pmu.projected_runtime_h(p, 1.0), pmu.projected_runtime_h(p, 0.5));
}

TEST(PmuTest, RejectsBadArgs) {
  EXPECT_THROW(Pmu(-1.0), std::invalid_argument);
  const Pmu pmu;
  EXPECT_THROW(pmu.choose(1.5, 10.0), std::invalid_argument);
}

} // namespace
} // namespace icgkit::platform
