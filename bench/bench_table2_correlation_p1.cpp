// Reproduces Table II: device-vs-thoracic bioimpedance correlation per
// subject, Position 1 (device held up to the chest).
#include "repro_common.h"

int main() {
  icgkit::bench::print_correlation_table(
      icgkit::synth::Position::HoldToChest,
      "Table II: Correlation Position 1 VS Thoracic bioimpedance", "Table II");
  return 0;
}
