// Reproduces Fig 7a-c: mean bioimpedance measured by the touch device
// versus injection frequency, for the three arm positions. The paper
// notes the same non-monotone shape as the traditional setup (Fig 6) --
// rising to 10 kHz, then falling -- and a position-dependent level.
#include "report/table.h"
#include "repro_common.h"

#include <iostream>

int main() {
  using namespace icgkit;
  const auto sessions = bench::study_sessions();

  bool all_ok = true;
  for (const auto pos : synth::kAllPositions) {
    const auto idx = synth::index_of(pos);
    report::banner(std::cout, "Fig 7: Device bioimpedance, Position " +
                                  std::to_string(idx + 1));
    std::vector<std::string> headers{"f (kHz)"};
    for (const auto& s : sessions) headers.push_back(s.subject.name);
    headers.push_back("Mean");
    report::Table table(headers);

    std::vector<double> means;
    for (const double f : synth::kInjectionFrequenciesHz) {
      table.row().add(f / 1e3, 0);
      double acc = 0.0;
      for (const auto& s : sessions) {
        const synth::Recording rec = measure_device(s.subject, s.source, f, pos);
        const double z = mean_bioimpedance(rec);
        table.add(z, 1);
        acc += z;
      }
      means.push_back(acc / static_cast<double>(sessions.size()));
      table.add(means.back(), 1);
    }
    table.print(std::cout);
    const bool shape_ok =
        means[1] > means[0] && means[1] > means[2] && means[2] > means[3];
    std::cout << "Shape (rise to 10 kHz then fall): "
              << (shape_ok ? "REPRODUCED" : "MISMATCH") << '\n';
    all_ok = all_ok && shape_ok;
  }

  std::cout << "\n(The hand-to-hand path impedance is an order of magnitude higher\n"
               " than the thoracic path, and Position 2 > Position 3 > Position 1\n"
               " in mean level -- the orderings behind Fig 8.)\n";
  return all_ok ? 0 : 1;
}
