// Reproduces Fig 9a-b: characteristic ICG parameters (LVET, PEP) together
// with the heart rate for each subject, measured by the full beat-to-beat
// pipeline on touch-device recordings in the two worst-case positions
// (Positions 1 and 2, selected in the paper for their largest mutual
// error). Injection frequency 50 kHz per Section IV-B.
#include "core/pipeline.h"
#include "report/table.h"
#include "repro_common.h"

#include <iostream>

int main() {
  using namespace icgkit;
  const auto sessions = bench::study_sessions();
  const core::BeatPipeline pipeline(bench::kFs);

  bool ok = true;
  for (const auto pos : {synth::Position::HoldToChest, synth::Position::ArmsOutstretched}) {
    const auto idx = synth::index_of(pos);
    report::banner(std::cout,
                   "Fig 9: ICG parameters + HR, Position " + std::to_string(idx + 1));
    report::Table table({"Subject", "LVET (ms)", "PEP (ms)", "HR (bpm)",
                         "LVET truth", "PEP truth", "HR nominal", "beats"});
    for (const auto& s : sessions) {
      const synth::Recording rec = measure_device(s.subject, s.source, 50e3, pos);
      const core::PipelineResult res = pipeline.process(rec.ecg_mv, rec.z_ohm);

      dsp::Signal pep_truth, lvet_truth;
      for (const auto& b : rec.beats) {
        pep_truth.push_back(b.pep_s);
        lvet_truth.push_back(b.lvet_s);
      }
      table.row()
          .add(s.subject.name)
          .add(res.summary.lvet_s * 1000.0, 1)
          .add(res.summary.pep_s * 1000.0, 1)
          .add(res.summary.hr_bpm, 1)
          .add(dsp::mean(lvet_truth) * 1000.0, 1)
          .add(dsp::mean(pep_truth) * 1000.0, 1)
          .add(s.subject.rr.mean_hr_bpm, 1)
          .add(static_cast<long long>(res.summary.beats_used));
      ok = ok && res.summary.beats_used > 15 &&
           std::abs(res.summary.lvet_s - dsp::mean(lvet_truth)) < 0.035 &&
           std::abs(res.summary.pep_s - dsp::mean(pep_truth)) < 0.055 &&
           std::abs(res.summary.hr_bpm - s.subject.rr.mean_hr_bpm) < 5.0;
    }
    table.print(std::cout);
  }
  std::cout
      << "\nEstimates vs synthesis ground truth: "
      << (ok ? "WITHIN TOLERANCE (LVET +-35 ms, PEP +-55 ms, HR +-5 bpm)"
             : "OUT OF TOLERANCE")
      << "\n\nNote: the paper's Fig 9 reports the device's estimates without a\n"
         "reference; the truth columns here are a bonus the synthetic substrate\n"
         "provides. PEP carries a positive bias on touch recordings -- the B\n"
         "notch (~0.07 Ohm/s after the hand-to-hand transfer) is the feature\n"
         "most easily buried by motion noise, and the detector then falls back\n"
         "to the line-fit estimate B0, which sits ~20-30 ms late. HR and LVET\n"
         "track the truth closely in both worst-case positions.\n";
  return ok ? 0 : 1;
}
