// Reproduces Table IV: device-vs-thoracic bioimpedance correlation per
// subject, Position 3 (arms down by the sides) -- the paper's lowest
// overall correlation.
#include "repro_common.h"

#include <iostream>

int main() {
  using namespace icgkit;
  bench::print_correlation_table(synth::Position::ArmsDown,
                                 "Table IV: Correlation Position 3 VS Thoracic bioimpedance",
                                 "Table IV");

  // Cross-table observation the paper highlights: Position 3 has the
  // lowest overall correlation of the three positions.
  const auto sessions = bench::study_sessions();
  double sum[3] = {0.0, 0.0, 0.0};
  for (const auto& s : sessions)
    for (const auto pos : synth::kAllPositions)
      sum[synth::index_of(pos)] += bench::device_thoracic_correlation(s, pos);
  std::cout << "\nMean correlation across subjects: P1=" << sum[0] / 5.0
            << " P2=" << sum[1] / 5.0 << " P3=" << sum[2] / 5.0
            << "\n(paper: lowest overall correlation obtained in Position 3; overall"
            << "\n device-vs-traditional correlation ~0.85-0.9, abstract's r > 80%)\n";
  return 0;
}
