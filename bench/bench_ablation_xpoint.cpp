// Ablation: the paper's X-point rule vs the original Carvalho RT-window
// rule (Section IV-C). The paper replaced the RT-window initial estimate
// because "the end of a T wave is not a reliable marker". This bench
// quantifies that argument: X detection error under increasing RT
// (T-wave end) estimation error, for both rules.
#include "core/delineator.h"
#include "report/table.h"
#include "repro_common.h"

#include "synth/icg_synth.h"

#include <cmath>
#include <iostream>

int main() {
  using namespace icgkit;
  const double fs = bench::kFs;

  synth::Rng rng(2024);
  synth::IcgSynthConfig icg_cfg;
  std::vector<double> r_times;
  std::vector<std::size_t> r_idx;
  for (int i = 0; i < 60; ++i) {
    r_times.push_back(0.6 + 0.85 * i);
    r_idx.push_back(static_cast<std::size_t>(r_times.back() * fs));
  }
  const auto syn = synth::synthesize_icg(r_times, 0.6 + 0.85 * 60 + 1.0, fs, icg_cfg, rng);

  core::DelineationConfig paper_cfg;
  core::DelineationConfig carvalho_cfg;
  carvalho_cfg.x_rule = core::XPointRule::CarvalhoRtWindow;
  const core::IcgDelineator paper(fs, paper_cfg);
  const core::IcgDelineator carvalho(fs, carvalho_cfg);

  report::banner(std::cout, "Ablation: X-point rule robustness to RT estimation error");
  report::Table table({"RT error", "paper-rule X err (ms)", "carvalho X err (ms)",
                       "carvalho invalid (%)"});
  bool paper_stable = true;
  for (const double rt_scale : {0.6, 0.8, 1.0, 1.2, 1.5, 1.8}) {
    dsp::Signal err_paper, err_carv;
    int invalid = 0, total = 0;
    for (std::size_t i = 0; i + 1 < syn.beats.size(); ++i) {
      const auto& truth = syn.beats[i];
      // "True" RT: the T peak sits roughly at X/1.3 after R in this
      // morphology; scale it to inject T-end estimation error.
      const double rt = (truth.x_time_s - truth.r_time_s) / 1.3 * rt_scale;
      const auto dp = paper.delineate(syn.icg, r_idx[i], r_idx[i + 1]);
      const auto dc = carvalho.delineate(syn.icg, r_idx[i], r_idx[i + 1], rt);
      ++total;
      if (dp.valid)
        err_paper.push_back(
            std::abs(static_cast<double>(dp.x) / fs - truth.x_time_s) * 1000.0);
      if (dc.valid)
        err_carv.push_back(
            std::abs(static_cast<double>(dc.x) / fs - truth.x_time_s) * 1000.0);
      else
        ++invalid;
    }
    const double p_err = dsp::median(err_paper);
    const double c_err = err_carv.empty() ? 999.0 : dsp::median(err_carv);
    table.row()
        .add(rt_scale, 2)
        .add(p_err, 1)
        .add(c_err, 1)
        .add(100.0 * invalid / std::max(1, total), 1);
    if (p_err > 25.0) paper_stable = false;
  }
  table.print(std::cout);
  std::cout << "\n(The paper rule ignores RT, so its column is flat; the Carvalho rule\n"
               " degrades or invalidates beats as the T-end estimate drifts -- the\n"
               " paper's stated reason for the modification.)\n";
  return paper_stable ? 0 : 1;
}
