// Reproduces Table III: device-vs-thoracic bioimpedance correlation per
// subject, Position 2 (arms outstretched, parallel to the floor).
#include "repro_common.h"

int main() {
  icgkit::bench::print_correlation_table(
      icgkit::synth::Position::ArmsOutstretched,
      "Table III: Correlation Position 2 VS Thoracic bioimpedance", "Table III");
  return 0;
}
