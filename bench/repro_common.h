// Shared helpers for the reproduction benches. Each bench regenerates one
// table or figure of the paper; the common code runs the study protocol
// of Section V: five subjects, 30 s recordings at fs = 250 Hz, injection
// frequencies {2, 10, 50, 100} kHz, three arm positions.
#pragma once

#include "dsp/stats.h"
#include "report/table.h"
#include "synth/recording.h"
#include "synth/subject.h"

#include <iostream>
#include <string>
#include <vector>

namespace icgkit::bench {

inline constexpr double kFs = 250.0;
inline constexpr double kDuration = 30.0;

struct StudySession {
  synth::SubjectProfile subject;
  synth::SourceActivity source;
};

/// One 30 s session per roster subject (deterministic).
inline std::vector<StudySession> study_sessions() {
  std::vector<StudySession> sessions;
  for (const auto& subject : synth::paper_roster()) {
    synth::RecordingConfig cfg;
    cfg.duration_s = kDuration;
    cfg.fs = kFs;
    sessions.push_back({subject, generate_source(subject, cfg)});
  }
  return sessions;
}

/// Device-vs-thoracic Pearson correlation for one subject at one position,
/// averaged over the four injection frequencies (the paper's Tables II-IV
/// report one value per subject per position).
inline double device_thoracic_correlation(const StudySession& s, synth::Position pos) {
  double acc = 0.0;
  for (const double f : synth::kInjectionFrequenciesHz) {
    const synth::Recording thorax = measure_thoracic(s.subject, s.source, f);
    const synth::Recording device = measure_device(s.subject, s.source, f, pos);
    acc += dsp::pearson(thorax.z_ohm, device.z_ohm);
  }
  return acc / static_cast<double>(synth::kInjectionFrequenciesHz.size());
}

/// Prints one of Tables II-IV.
inline void print_correlation_table(synth::Position pos, const std::string& title,
                                    const std::string& paper_table) {
  report::banner(std::cout, title);
  report::Table table({"Subjects", "Correlation Coefficient", "Paper reports"});
  const auto sessions = study_sessions();
  double worst_dev = 0.0;
  for (const auto& s : sessions) {
    const double r = device_thoracic_correlation(s, pos);
    const double paper = s.subject.target_corr[synth::index_of(pos)];
    worst_dev = std::max(worst_dev, std::abs(r - paper));
    table.row().add(s.subject.name).add(r, 4).add(paper, 4);
  }
  table.print(std::cout);
  std::cout << "(reproduces paper " << paper_table
            << "; worst |measured - paper| = " << worst_dev << ")\n";
}

} // namespace icgkit::bench
