// Reproduces Fig 6: mean thoracic bioimpedance (traditional electrode
// setup) versus injection frequency. The paper's observed shape -- Z0
// rises from 2 kHz to a maximum at 10 kHz and then falls through 50 and
// 100 kHz -- reproduces from Cole-Cole tissue dispersion seen through the
// electrode/front-end channel response (see synth/cole.h).
#include "report/table.h"
#include "repro_common.h"

#include <iostream>

int main() {
  using namespace icgkit;
  const auto sessions = bench::study_sessions();

  report::banner(std::cout, "Fig 6: Thoracic bioimpedance vs injection frequency");
  std::vector<std::string> headers{"f (kHz)"};
  for (const auto& s : sessions) headers.push_back(s.subject.name);
  headers.push_back("Mean");
  report::Table table(headers);

  std::vector<double> means;
  for (const double f : synth::kInjectionFrequenciesHz) {
    table.row().add(f / 1e3, 0);
    double acc = 0.0;
    for (const auto& s : sessions) {
      const synth::Recording rec = measure_thoracic(s.subject, s.source, f);
      const double z = mean_bioimpedance(rec);
      table.add(z, 2);
      acc += z;
    }
    means.push_back(acc / static_cast<double>(sessions.size()));
    table.add(means.back(), 2);
  }
  table.print(std::cout);

  const bool shape_ok = means[1] > means[0] && means[1] > means[2] && means[2] > means[3];
  std::cout << "\nShape check (paper: rises to 10 kHz, then decreases): "
            << (shape_ok ? "REPRODUCED" : "MISMATCH") << '\n';
  return shape_ok ? 0 : 1;
}
