// Reproduces the Section V computational claim: the full pipeline needs
// 40-50 % of the STM32L151's CPU duty cycle, and the radio only ~0.1 %
// for sending {Z0, LVET, PEP, HR}.
//
// The duty cycle depends on the acquisition rate (the ADC front end runs
// faster than the 250 Hz processing rate) and on software floating point
// (the Cortex-M3 has no FPU). The sweep below shows which operating
// points land in the paper's band.
#include "core/legacy_recompute.h"
#include "core/pipeline.h"
#include "platform/mcu.h"
#include "platform/radio.h"
#include "report/table.h"
#include "synth/recording.h"
#include "synth/subject.h"

#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <vector>

namespace {

using icgkit::dsp::SignalView;

struct PushCost {
  double mean_us_per_push = 0.0;
  std::size_t beats = 0;
};

// Feeds a recording through `engine` in fixed-size chunks and returns the
// mean wall-clock cost of one push().
template <typename Engine>
PushCost measure_per_push(Engine& engine, const icgkit::synth::Recording& rec,
                          std::size_t chunk) {
  PushCost cost;
  std::size_t pushes = 0;
  double total_us = 0.0;
  for (std::size_t i = 0; i < rec.ecg_mv.size(); i += chunk) {
    const std::size_t len = std::min(chunk, rec.ecg_mv.size() - i);
    const auto t0 = std::chrono::steady_clock::now();
    const auto got = engine.push(SignalView(rec.ecg_mv.data() + i, len),
                                 SignalView(rec.z_ohm.data() + i, len));
    const auto t1 = std::chrono::steady_clock::now();
    total_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
    cost.beats += got.size();
    ++pushes;
  }
  cost.beats += engine.finish().size();
  cost.mean_us_per_push = pushes > 0 ? total_us / static_cast<double>(pushes) : 0.0;
  return cost;
}

struct StreamingRow {
  std::size_t chunk;
  PushCost legacy, incremental;
  [[nodiscard]] double speedup() const {
    return incremental.mean_us_per_push > 0.0
               ? legacy.mean_us_per_push / incremental.mean_us_per_push
               : 0.0;
  }
};

} // namespace

int main() {
  using namespace icgkit;
  using namespace icgkit::platform;

  report::banner(std::cout, "CPU duty cycle sweep (STM32L151 @ 32 MHz, software doubles)");
  report::Table table({"fs (Hz)", "acq fs (Hz)", "MACs/s", "cycles/s", "duty"});
  const core::PipelineConfig cfg;
  bool band_found = false;
  for (const double fs : {125.0, 250.0, 500.0, 800.0, 1000.0}) {
    McuConfig mcu;
    mcu.acquisition_fs_hz = fs * 8.0;
    const CpuLoadReport r = estimate_cpu_load(cfg, fs, 70.0, mcu);
    table.row()
        .add(fs, 0)
        .add(mcu.acquisition_fs_hz, 0)
        .add(r.total_macs_per_second, 0)
        .add(r.total_cycles_per_second, 0)
        .add(r.duty_cycle, 3);
    if (r.duty_cycle >= 0.40 && r.duty_cycle <= 0.50) band_found = true;
  }
  table.print(std::cout);
  std::cout << "(paper: 40-50 % -- reached at fs ~ 800 Hz acquisition-chain processing;\n"
            << " at the 250 Hz evaluation rate the pipeline fits with wide margin)\n";

  report::banner(std::cout, "Per-stage breakdown at fs = 250 Hz");
  {
    const CpuLoadReport r = estimate_cpu_load(cfg, 250.0, 70.0);
    report::Table stages({"Stage", "MACs/s", "compares/s"});
    for (const auto& s : r.stages)
      stages.row().add(s.stage).add(s.macs_per_second, 0).add(s.compares_per_second, 0);
    stages.print(std::cout);
    std::cout << "Total duty at 250 Hz: " << r.duty_cycle * 100.0 << " %\n";
  }

  report::banner(std::cout, "Radio duty cycle (Section V: ~0.1 %)");
  const BleRadio radio;
  report::Table rt({"Policy", "Duty cycle"});
  rt.row().add("beat reports {Z0,LVET,PEP,HR} @ 70 bpm")
      .add(radio.beat_report_duty_cycle(70.0), 6);
  rt.row().add("raw streaming 250 Hz x 2 ch (avoided)")
      .add(radio.raw_streaming_duty_cycle(250.0), 6);
  rt.print(std::cout);

  // ------------------------------------------------------------------
  // Per-push cost: windowed recompute (the seed's streaming adapter,
  // O(window) per chunk) vs the incremental engine (O(chunk) per chunk).
  // ------------------------------------------------------------------
  report::banner(std::cout,
                 "Streaming per-push cost: windowed recompute vs incremental engine");
  const double fs = 250.0;
  const auto roster = synth::paper_roster();
  synth::RecordingConfig rcfg;
  rcfg.duration_s = 60.0;
  const synth::SourceActivity src = generate_source(roster[0], rcfg);
  const synth::Recording rec = measure_thoracic(roster[0], src, 50e3);

  std::vector<StreamingRow> rows;
  for (const std::size_t chunk : {std::size_t{16}, std::size_t{64}, std::size_t{256}}) {
    StreamingRow row;
    row.chunk = chunk;
    core::WindowedRecomputePipeline legacy(fs, {});
    row.legacy = measure_per_push(legacy, rec, chunk);
    core::StreamingBeatPipeline incremental(fs, {});
    row.incremental = measure_per_push(incremental, rec, chunk);
    rows.push_back(row);
  }

  report::Table st({"chunk", "recompute us/push", "incremental us/push", "speedup",
                    "beats old", "beats new"});
  double speedup_at_64 = 0.0;
  for (const StreamingRow& row : rows) {
    st.row()
        .add(static_cast<double>(row.chunk), 0)
        .add(row.legacy.mean_us_per_push, 1)
        .add(row.incremental.mean_us_per_push, 1)
        .add(row.speedup(), 1)
        .add(static_cast<double>(row.legacy.beats), 0)
        .add(static_cast<double>(row.incremental.beats), 0);
    if (row.chunk == 64) speedup_at_64 = row.speedup();
  }
  st.print(std::cout);
  const bool speedup_ok = speedup_at_64 >= 10.0;
  std::cout << "(acceptance: >= 10x lower per-push cost at 64-sample chunks; measured "
            << speedup_at_64 << "x)\n";

  std::ofstream json("BENCH_streaming.json");
  json << "{\n  \"fs_hz\": " << fs << ",\n  \"recording_s\": " << rcfg.duration_s
       << ",\n  \"window_s\": 12.0,\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const StreamingRow& row = rows[i];
    json << "    {\"chunk\": " << row.chunk
         << ", \"recompute_us_per_push\": " << row.legacy.mean_us_per_push
         << ", \"incremental_us_per_push\": " << row.incremental.mean_us_per_push
         << ", \"speedup\": " << row.speedup()
         << ", \"beats_recompute\": " << row.legacy.beats
         << ", \"beats_incremental\": " << row.incremental.beats << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedup_at_64\": " << speedup_at_64
       << ",\n  \"acceptance_min_speedup_at_64\": 10.0,\n  \"pass\": "
       << (speedup_ok ? "true" : "false") << "\n}\n";
  std::cout << "(written to BENCH_streaming.json)\n";

  return (band_found && speedup_ok) ? 0 : 1;
}
