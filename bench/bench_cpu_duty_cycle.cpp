// Reproduces the Section V computational claim: the full pipeline needs
// 40-50 % of the STM32L151's CPU duty cycle, and the radio only ~0.1 %
// for sending {Z0, LVET, PEP, HR}.
//
// The duty cycle depends on the acquisition rate (the ADC front end runs
// faster than the 250 Hz processing rate) and on software floating point
// (the Cortex-M3 has no FPU). The sweep below shows which operating
// points land in the paper's band.
#include "core/pipeline.h"
#include "platform/mcu.h"
#include "platform/radio.h"
#include "report/table.h"

#include <iostream>

int main() {
  using namespace icgkit;
  using namespace icgkit::platform;

  report::banner(std::cout, "CPU duty cycle sweep (STM32L151 @ 32 MHz, software doubles)");
  report::Table table({"fs (Hz)", "acq fs (Hz)", "MACs/s", "cycles/s", "duty"});
  const core::PipelineConfig cfg;
  bool band_found = false;
  for (const double fs : {125.0, 250.0, 500.0, 800.0, 1000.0}) {
    McuConfig mcu;
    mcu.acquisition_fs_hz = fs * 8.0;
    const CpuLoadReport r = estimate_cpu_load(cfg, fs, 70.0, mcu);
    table.row()
        .add(fs, 0)
        .add(mcu.acquisition_fs_hz, 0)
        .add(r.total_macs_per_second, 0)
        .add(r.total_cycles_per_second, 0)
        .add(r.duty_cycle, 3);
    if (r.duty_cycle >= 0.40 && r.duty_cycle <= 0.50) band_found = true;
  }
  table.print(std::cout);
  std::cout << "(paper: 40-50 % -- reached at fs ~ 800 Hz acquisition-chain processing;\n"
            << " at the 250 Hz evaluation rate the pipeline fits with wide margin)\n";

  report::banner(std::cout, "Per-stage breakdown at fs = 250 Hz");
  {
    const CpuLoadReport r = estimate_cpu_load(cfg, 250.0, 70.0);
    report::Table stages({"Stage", "MACs/s", "compares/s"});
    for (const auto& s : r.stages)
      stages.row().add(s.stage).add(s.macs_per_second, 0).add(s.compares_per_second, 0);
    stages.print(std::cout);
    std::cout << "Total duty at 250 Hz: " << r.duty_cycle * 100.0 << " %\n";
  }

  report::banner(std::cout, "Radio duty cycle (Section V: ~0.1 %)");
  const BleRadio radio;
  report::Table rt({"Policy", "Duty cycle"});
  rt.row().add("beat reports {Z0,LVET,PEP,HR} @ 70 bpm")
      .add(radio.beat_report_duty_cycle(70.0), 6);
  rt.row().add("raw streaming 250 Hz x 2 ch (avoided)")
      .add(radio.raw_streaming_duty_cycle(250.0), 6);
  rt.print(std::cout);

  return band_found ? 0 : 1;
}
