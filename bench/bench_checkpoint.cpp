// Checkpoint/restore and live-migration characterization for the
// core::Checkpoint subsystem: blob size per backend, save/restore
// latency on a warmed-up session, migration throughput while the fleet
// is streaming under load, and the byte-identity acceptance (round trip
// and migrated-fleet-vs-pinned-fleet) — written to BENCH_checkpoint.json
// and gated by ci/check_bench_regression.py.
#include "core/beat_serializer.h"
#include "core/fleet.h"
#include "core/pipeline.h"
#include "report/table.h"
#include "synth/recording.h"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

using namespace icgkit;

namespace {

constexpr std::size_t kChunk = 64;

template <typename Pipeline>
void feed(Pipeline& p, const synth::Recording& rec, std::size_t from, std::size_t to,
          std::size_t chunk, std::vector<core::BeatRecord>& out) {
  for (std::size_t i = from; i < to; i += chunk) {
    const std::size_t len = std::min(chunk, to - i);
    p.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                dsp::SignalView(rec.z_ohm.data() + i, len), out);
  }
}

std::vector<unsigned char> bytes_of(const std::vector<core::BeatRecord>& beats) {
  std::vector<unsigned char> out;
  for (const core::BeatRecord& b : beats) serialize_beat(b, out);
  return out;
}

struct BackendResult {
  std::size_t blob_bytes = 0;
  double save_us = 0.0;
  double restore_us = 0.0;
  bool roundtrip_identical = false;
};

/// Blob size, save/restore latency and resume byte-identity for one
/// backend, on a session checkpointed halfway through the recording.
template <typename Pipeline>
BackendResult bench_backend(const synth::Recording& rec) {
  BackendResult res;
  const std::size_t n = rec.ecg_mv.size();
  const std::size_t cut = n / 2;

  Pipeline ref(rec.fs);
  std::vector<core::BeatRecord> ref_beats;
  feed(ref, rec, 0, n, kChunk, ref_beats);
  ref.finish_into(ref_beats);

  Pipeline source(rec.fs);
  std::vector<core::BeatRecord> beats;
  feed(source, rec, 0, cut, kChunk, beats);

  // Latency: repeat into a reused buffer, the way the fleet migrates.
  constexpr int kReps = 50;
  std::vector<std::uint8_t> blob;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) source.checkpoint_into(blob);
  const auto t1 = std::chrono::steady_clock::now();
  res.save_us = std::chrono::duration<double, std::micro>(t1 - t0).count() / kReps;
  res.blob_bytes = blob.size();

  Pipeline target(rec.fs);
  const auto t2 = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) target.restore(blob);
  const auto t3 = std::chrono::steady_clock::now();
  res.restore_us = std::chrono::duration<double, std::micro>(t3 - t2).count() / kReps;

  feed(target, rec, cut, n, kChunk, beats);
  target.finish_into(beats);
  res.roundtrip_identical = bytes_of(ref_beats) == bytes_of(beats);
  return res;
}

struct MigrationResult {
  std::size_t sessions = 0;
  std::size_t migrations = 0;
  double wall_s = 0.0;
  double migrations_per_s = 0.0;
  bool identical = false;
};

/// Streams `sessions` copies of the workload through a 2-worker fleet
/// while continuously rebalancing (every session round-robins across the
/// workers every few chunks), then compares every per-session stream
/// against the pinned (no-migration) fleet.
MigrationResult bench_migration(const std::vector<synth::Recording>& workload,
                                std::size_t sessions) {
  const std::size_t n = workload[0].ecg_mv.size();

  const auto run = [&](bool migrate_continuously, double& wall_s, std::size_t& moved) {
    core::FleetConfig cfg;
    cfg.workers = 2;
    cfg.max_chunk = kChunk;
    core::SessionManager fleet(workload[0].fs, cfg);
    std::vector<core::SessionHandle> handles;
    handles.reserve(sessions);
    for (std::size_t s = 0; s < sessions; ++s) handles.push_back(fleet.open());
    fleet.start();
    std::vector<core::FleetBeat> sink;
    sink.reserve(1 << 16);
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t chunk_index = 0;
    for (std::size_t i = 0; i < n; i += kChunk, ++chunk_index) {
      if (migrate_continuously && chunk_index % 4 == 3) {
        // One session moves per migration window, cycling the roster.
        const auto s = static_cast<std::uint32_t>((chunk_index / 4) % sessions);
        handles[s].migrate_to(1 - handles[s].worker() % 2, sink);
      }
      const std::size_t len = std::min(kChunk, n - i);
      for (std::size_t s = 0; s < sessions; ++s) {
        const synth::Recording& rec = workload[s % workload.size()];
        handles[s].push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                        dsp::SignalView(rec.z_ohm.data() + i, len), sink);
      }
    }
    fleet.run_to_completion(sink);
    wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    moved = fleet.migrations();
    std::vector<std::vector<unsigned char>> streams(sessions);
    for (const core::FleetBeat& fb : sink)
      if (!fb.end_of_session) serialize_beat(fb.beat, streams[fb.session]);
    return streams;
  };

  MigrationResult res;
  res.sessions = sessions;
  double pinned_wall = 0.0;
  std::size_t none = 0;
  const auto pinned = run(false, pinned_wall, none);
  const auto rebalanced = run(true, res.wall_s, res.migrations);
  res.migrations_per_s =
      res.wall_s > 0.0 ? static_cast<double>(res.migrations) / res.wall_s : 0.0;
  res.identical = pinned == rebalanced;
  return res;
}

} // namespace

int main() {
  report::banner(std::cout, "checkpoint/restore + live migration");

  synth::RecordingConfig rcfg;
  rcfg.duration_s = 30.0;
  rcfg.session_seed = 31;
  const std::vector<synth::Recording> workload = synth::make_fleet_workload(4, rcfg);
  const synth::Recording& rec = workload[0];

  const BackendResult dbl = bench_backend<core::StreamingBeatPipeline>(rec);
  const BackendResult q31 = bench_backend<core::FixedStreamingBeatPipeline>(rec);

  report::Table table({"backend", "blob KiB", "save us", "restore us", "round trip"});
  table.row()
      .add("double")
      .add(static_cast<double>(dbl.blob_bytes) / 1024.0, 1)
      .add(dbl.save_us, 1)
      .add(dbl.restore_us, 1)
      .add(dbl.roundtrip_identical ? "identical" : "DIVERGED");
  table.row()
      .add("q31")
      .add(static_cast<double>(q31.blob_bytes) / 1024.0, 1)
      .add(q31.save_us, 1)
      .add(q31.restore_us, 1)
      .add(q31.roundtrip_identical ? "identical" : "DIVERGED");
  table.print(std::cout);

  const std::size_t kSessions = 48;
  const MigrationResult mig = bench_migration(workload, kSessions);
  std::cout << "\nlive rebalancing: " << mig.migrations << " migrations across "
            << mig.sessions << " streaming sessions in " << mig.wall_s << " s ("
            << mig.migrations_per_s << " migrations/s under load), output "
            << (mig.identical ? "byte-identical to the pinned fleet" : "DIVERGED") << "\n";

  const unsigned hw = std::thread::hardware_concurrency();
  const bool pass = dbl.roundtrip_identical && q31.roundtrip_identical && mig.identical;

  std::ofstream json("BENCH_checkpoint.json");
  json << "{\n  \"fs_hz\": 250.0,\n  \"recording_s\": " << rcfg.duration_s
       << ",\n  \"chunk\": " << kChunk
       << ",\n  \"blob_bytes_double\": " << dbl.blob_bytes
       << ",\n  \"blob_bytes_q31\": " << q31.blob_bytes
       << ",\n  \"save_us_double\": " << dbl.save_us
       << ",\n  \"restore_us_double\": " << dbl.restore_us
       << ",\n  \"save_us_q31\": " << q31.save_us
       << ",\n  \"restore_us_q31\": " << q31.restore_us
       << ",\n  \"roundtrip_identical\": "
       << (dbl.roundtrip_identical && q31.roundtrip_identical ? "true" : "false")
       << ",\n  \"migration_sessions\": " << mig.sessions
       << ",\n  \"migrations\": " << mig.migrations
       << ",\n  \"migrations_per_s\": " << mig.migrations_per_s
       << ",\n  \"migration_identical\": " << (mig.identical ? "true" : "false")
       << ",\n  \"hardware_threads\": " << hw
       << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "(written to BENCH_checkpoint.json)\n";
  return pass ? 0 : 1;
}
