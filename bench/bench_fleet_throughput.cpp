// Fleet throughput bench: >= 1000 concurrent StreamingBeatPipeline
// sessions on one host, swept across worker-pool sizes.
//
// Reports, per worker count: aggregate samples/sec, p50/p99 per-push
// latency, and beats emitted; verifies that the 1-worker and 8-worker
// fleets produce byte-identical per-session beat streams (the sharding
// determinism contract); and writes everything to BENCH_fleet.json for
// the CI bench-regression gate.
//
// Acceptance (enforced where the hardware can express it): near-linear
// scaling from 1 to 4 workers, >= 3x samples/sec. On hosts with fewer
// than 4 cores the scaling row is still recorded but not enforced —
// CI's Release runner provides the >= 4 cores that arm the gate.
#include "core/beat_serializer.h"
#include "core/fleet.h"
#include "report/table.h"
#include "synth/recording.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

namespace {

using namespace icgkit;
using core::FleetBeat;
using core::FleetConfig;
using core::SessionHandle;
using core::SessionManager;
using core::serialize_beat;

constexpr std::size_t kChunk = 64;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

struct FleetRunResult {
  double wall_s = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t beats = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::vector<std::vector<unsigned char>> streams;  ///< per-session bytes
  [[nodiscard]] double samples_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(samples) / wall_s : 0.0;
  }
};

FleetRunResult run_fleet(const std::vector<synth::Recording>& workload,
                         std::size_t sessions, std::size_t workers) {
  FleetConfig cfg;
  cfg.workers = workers;
  cfg.max_chunk = kChunk;
  // Per-worker latency log sized for every push in the run.
  const std::size_t n = workload[0].ecg_mv.size();
  const std::size_t pushes_total = (n + kChunk - 1) / kChunk * sessions;
  cfg.latency_log_capacity = pushes_total;

  SessionManager fleet(workload[0].fs, cfg);
  std::vector<SessionHandle> handles;
  handles.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) handles.push_back(fleet.open());

  std::vector<FleetBeat> sink;
  sink.reserve(1 << 16);

  const auto t0 = std::chrono::steady_clock::now();
  fleet.start();
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t len = std::min(kChunk, n - i);
    for (std::size_t s = 0; s < sessions; ++s) {
      const synth::Recording& rec = workload[s % workload.size()];
      handles[s].push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                      dsp::SignalView(rec.z_ohm.data() + i, len), sink);
    }
  }
  fleet.run_to_completion(sink);
  const auto t1 = std::chrono::steady_clock::now();

  FleetRunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.samples = fleet.total_samples();
  r.beats = fleet.total_beats();

  std::vector<double> lat;
  for (const auto& ws : fleet.worker_stats())
    lat.insert(lat.end(), ws.push_latency_us.begin(), ws.push_latency_us.end());
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    r.p50_us = lat[lat.size() / 2];
    r.p99_us = lat[std::min(lat.size() - 1, lat.size() * 99 / 100)];
  }

  r.streams.resize(sessions);
  for (const FleetBeat& fb : sink) {
    if (fb.end_of_session) continue;  // terminal quality record, not a beat
    serialize_beat(fb.beat, r.streams[fb.session]);
  }
  return r;
}

} // namespace

int main() {
  using namespace icgkit;

  const std::size_t sessions = env_size("ICGKIT_FLEET_SESSIONS", 1000);
  const std::size_t distinct = env_size("ICGKIT_FLEET_DISTINCT", 8);
  const double duration_s = 10.0;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  report::banner(std::cout, "Fleet throughput: sharded worker pool, " +
                                std::to_string(sessions) + " sessions");
  std::cout << "hardware threads: " << hw << ", recording: " << duration_s
            << " s @ 250 Hz, chunk: " << kChunk << " samples, distinct recordings: "
            << distinct << "\n";

  synth::RecordingConfig rcfg;
  rcfg.duration_s = duration_s;
  rcfg.session_seed = 42;
  const std::vector<synth::Recording> workload = synth::make_fleet_workload(distinct, rcfg);

  const std::size_t worker_counts[] = {1, 2, 4, 8};
  std::vector<FleetRunResult> results;
  report::Table table({"workers", "wall s", "samples/s", "p50 us/push", "p99 us/push",
                       "beats"});
  for (const std::size_t w : worker_counts) {
    results.push_back(run_fleet(workload, sessions, w));
    const FleetRunResult& r = results.back();
    table.row()
        .add(static_cast<double>(w), 0)
        .add(r.wall_s, 2)
        .add(r.samples_per_sec(), 0)
        .add(r.p50_us, 1)
        .add(r.p99_us, 1)
        .add(static_cast<double>(r.beats), 0);
  }
  table.print(std::cout);

  // -- determinism: every worker count must reproduce the 1-worker bytes
  bool identical = true;
  for (std::size_t i = 1; i < results.size(); ++i)
    if (results[i].streams != results[0].streams) {
      identical = false;
      std::cout << "FAIL: " << worker_counts[i]
                << "-worker fleet output differs from 1-worker fleet\n";
    }
  if (identical)
    std::cout << "determinism: per-session beat streams byte-identical across 1/2/4/8 "
                 "workers\n";

  const double scaling_1_to_4 = results[0].samples_per_sec() > 0.0
                                    ? results[2].samples_per_sec() /
                                          results[0].samples_per_sec()
                                    : 0.0;
  const bool scaling_enforced = hw >= 4;
  const bool scaling_ok = scaling_1_to_4 >= 3.0;
  std::cout << "scaling 1 -> 4 workers: " << scaling_1_to_4 << "x (acceptance >= 3x, "
            << (scaling_enforced ? "enforced" : "not enforced: < 4 hardware threads")
            << ")\n";

  std::ofstream json("BENCH_fleet.json");
  json << "{\n  \"sessions\": " << sessions << ",\n  \"fs_hz\": 250.0,\n  \"recording_s\": "
       << duration_s << ",\n  \"chunk\": " << kChunk << ",\n  \"hardware_threads\": " << hw
       << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FleetRunResult& r = results[i];
    json << "    {\"workers\": " << worker_counts[i] << ", \"wall_s\": " << r.wall_s
         << ", \"samples_per_sec\": " << r.samples_per_sec() << ", \"p50_us\": " << r.p50_us
         << ", \"p99_us\": " << r.p99_us << ", \"beats\": " << r.beats << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  const bool pass = identical && (scaling_ok || !scaling_enforced);
  json << "  ],\n  \"scaling_1_to_4\": " << scaling_1_to_4
       << ",\n  \"acceptance_min_scaling_1_to_4\": 3.0,\n  \"scaling_enforced\": "
       << (scaling_enforced ? "true" : "false") << ",\n  \"identical_across_workers\": "
       << (identical ? "true" : "false") << ",\n  \"pass\": " << (pass ? "true" : "false")
       << "\n}\n";
  std::cout << "(written to BENCH_fleet.json)\n";

  return pass ? 0 : 1;
}
