// Ablation: morphological baseline removal vs FIR-only ECG cleaning
// (Section IV-A.1). The paper stacks both stages; this bench shows why:
// the 32nd-order FIR's high-pass edge at 0.05 Hz is far too short to
// actually attenuate sub-Hz wander at fs = 250 Hz, so without the
// morphological stage the wander survives and degrades R-peak detection.
#include "ecg/ecg_filter.h"
#include "ecg/pan_tompkins.h"
#include "dsp/fft.h"
#include "dsp/stats.h"
#include "report/table.h"
#include "synth/artifacts.h"
#include "synth/ecg_synth.h"

#include <cmath>
#include <iostream>
#include <numbers>

namespace {

using namespace icgkit;

struct Variant {
  const char* name;
  bool morph, fir;
};

double detection_f1(const std::vector<double>& truth, const std::vector<double>& det) {
  std::vector<bool> used(det.size(), false);
  std::size_t tp = 0;
  for (const double t : truth) {
    for (std::size_t i = 0; i < det.size(); ++i) {
      if (!used[i] && std::abs(det[i] - t) <= 0.05) {
        used[i] = true;
        ++tp;
        break;
      }
    }
  }
  const double fn = static_cast<double>(truth.size() - tp);
  double fp = 0.0;
  for (const bool u : used)
    if (!u) fp += 1.0;
  fp += static_cast<double>(det.size() - used.size());
  return 2.0 * static_cast<double>(tp) / (2.0 * static_cast<double>(tp) + fn + fp);
}

} // namespace

int main() {
  const double fs = 250.0;
  // 60 s ECG with strong 0.3 Hz wander + noise.
  const auto gen = synth::synthesize_ecg(std::vector<double>(80, 0.8), fs);
  synth::Rng rng(7);
  dsp::Signal contaminated = gen.ecg_mv;
  const dsp::Signal noise = synth::white_noise(contaminated.size(), 0.05, rng);
  for (std::size_t i = 0; i < contaminated.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    contaminated[i] += 1.2 * std::sin(2.0 * std::numbers::pi * 0.3 * t) + noise[i];
  }

  const Variant variants[] = {
      {"raw (no cleaning)", false, false},
      {"FIR band-pass only", false, true},
      {"morphological only", true, false},
      {"full chain (paper)", true, true},
  };

  report::banner(std::cout,
                 "Ablation: ECG baseline removal (1.2 mV wander @ 0.3 Hz + noise)");
  report::Table table(
      {"Variant", "residual <0.5 Hz power", "R-peak F1", "R amp p99 (mV)"});
  double f1_full = 0.0, f1_fir = 0.0;
  for (const auto& v : variants) {
    ecg::EcgFilterConfig cfg;
    cfg.enable_morphological_stage = v.morph;
    cfg.enable_fir_stage = v.fir;
    const ecg::EcgFilter filter(fs, cfg);
    const dsp::Signal cleaned = filter.apply(contaminated);

    const dsp::Psd psd = dsp::welch_psd(cleaned, fs);
    const double wander = dsp::band_power(psd, 0.05, 0.5);

    const ecg::PanTompkins pt(fs);
    const auto det = pt.detect(cleaned);
    const double f1 = detection_f1(gen.r_times_s, ecg::r_peak_times(det, fs));
    if (v.morph && v.fir) f1_full = f1;
    if (!v.morph && v.fir) f1_fir = f1;

    table.row()
        .add(std::string(v.name))
        .add(wander, 5)
        .add(f1, 3)
        .add(dsp::percentile(cleaned, 99.9), 3);
  }
  table.print(std::cout);
  std::cout << "\n(The FIR's 0.05 Hz edge is nominal only -- 33 taps at 250 Hz cannot\n"
               " attenuate 0.3 Hz; the morphological stage does the actual wander\n"
               " removal, which is why the paper runs it first.)\n";
  return (f1_full >= f1_fir - 1e-9 && f1_full > 0.97) ? 0 : 1;
}
