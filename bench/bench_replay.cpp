// Flight-recorder characterization: what recording costs on the push
// hot path (the <5% overhead ceiling the CI gate enforces), how fast a
// recording replays relative to realtime, and how long a time-travel
// seek takes — written to BENCH_replay.json and gated by
// ci/check_bench_regression.py. The seek budget is tied to
// BENCH_checkpoint.json: a seek embeds exactly one checkpoint restore
// plus a bounded suffix replay, so its latency is gated against the
// measured restore time plus a committed suffix budget.
//
// The overhead number is steady-state: the recorder is constructed
// (header + initial checkpoint) before the timer starts, and the
// production default checkpoint cadence is used, so the measurement is
// the per-chunk tap cost a live session actually pays. The files used
// for the verify/seek metrics are recorded separately (untimed) with a
// dense checkpoint interval so seeks exercise a real mid-stream
// restore.
#include "core/flight_recorder.h"
#include "core/pipeline.h"
#include "report/table.h"
#include "synth/recording.h"
#include "synth/scenario.h"
#include "synth/subject.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <vector>

using namespace icgkit;

namespace {

constexpr double kFs = 250.0;
constexpr std::size_t kChunk = 64;
constexpr double kDurationS = 30.0;
// Dense cadence for the seek/verify files only, so a late seek restores
// a real mid-stream checkpoint instead of replaying from sample zero.
constexpr std::uint64_t kSeekInterval = 5000;

synth::Recording severe_recording() {
  synth::RecordingConfig cfg;
  cfg.duration_s = kDurationS;
  cfg.fs = kFs;
  cfg.session_seed = 17;
  const auto roster = synth::paper_roster();
  const synth::SourceActivity src = generate_source(roster[1], cfg);
  synth::Recording rec = measure_thoracic(roster[1], src, 50e3);
  apply_scenario(rec, synth::ScenarioSpec::severe(), 17 ^ 0x5CE11A1105ULL);
  return rec;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct RecordCost {
  double plain_s = 0.0;        ///< push time inside the recorded run (min-of-reps)
  double recorded_s = 0.0;     ///< push + recorder-tap time (same run)
  double overhead_pct = 0.0;   ///< tap time as % of push time
  std::uint64_t file_bytes = 0;
  std::uint64_t beats = 0;
  std::vector<std::uint8_t> file;  ///< dense-checkpoint run, for verify/seek
};

/// Steady-state recorder-tap cost as a fraction of push cost, measured
/// IN THE SAME RUN: each chunk's push and tap are timed back-to-back,
/// so the ratio is immune to the run-to-run wall-clock noise that
/// plagues comparing two separate loops (the tap is ~1 us/chunk — far
/// below scheduler jitter between runs). Recorder construction —
/// header plus the initial checkpoint — happens before the timed
/// region, mirroring a live session where it is a one-time cost, and
/// the sink is pre-sized the way a production pilot's would be so
/// buffer-growth reallocation spikes don't masquerade as tap cost.
template <typename Pipeline>
RecordCost bench_record_cost(const synth::Recording& rec) {
  RecordCost res;
  const std::size_t n = rec.ecg_mv.size();
  constexpr int kReps = 9;
  double best_total = 1e9;
  std::vector<core::BeatRecord> emitted;
  for (int rep = 0; rep < kReps; ++rep) {
    Pipeline p(rec.fs);
    core::BufferRecorderSink sink(1u << 20);
    core::FlightRecorderConfig rcfg;  // production default cadence
    rcfg.seed = 17;
    rcfg.tier = 3;
    rcfg.note = "bench_replay";
    core::FlightRecorder recorder(sink, p, rcfg);
    double push_s = 0.0;
    double tap_s = 0.0;
    for (std::size_t i = 0; i < n; i += kChunk) {
      const std::size_t len = std::min(kChunk, n - i);
      emitted.clear();
      const auto t0 = std::chrono::steady_clock::now();
      p.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                  dsp::SignalView(rec.z_ohm.data() + i, len), emitted);
      const auto t1 = std::chrono::steady_clock::now();
      recorder.on_chunk(p, dsp::SignalView(rec.ecg_mv.data() + i, len),
                        dsp::SignalView(rec.z_ohm.data() + i, len), emitted);
      push_s += std::chrono::duration<double>(t1 - t0).count();
      tap_s += seconds_since(t1);
    }
    emitted.clear();
    p.finish_into(emitted);
    recorder.on_finish(p, emitted);
    if (push_s + tap_s < best_total) {
      best_total = push_s + tap_s;
      res.plain_s = push_s;
      res.recorded_s = push_s + tap_s;
    }
  }
  res.overhead_pct =
      res.plain_s > 0.0 ? (res.recorded_s - res.plain_s) / res.plain_s * 100.0 : 0.0;

  // One untimed dense-checkpoint run produces the file the verify/seek
  // metrics replay against.
  {
    Pipeline p(rec.fs);
    core::BufferRecorderSink sink;
    core::FlightRecorderConfig rcfg;
    rcfg.checkpoint_interval = kSeekInterval;
    rcfg.seed = 17;
    rcfg.tier = 3;
    rcfg.note = "bench_replay seek file";
    core::FlightRecorder recorder(sink, p, rcfg);
    std::uint64_t beats = 0;
    for (std::size_t i = 0; i < n; i += kChunk) {
      const std::size_t len = std::min(kChunk, n - i);
      emitted.clear();
      p.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                  dsp::SignalView(rec.z_ohm.data() + i, len), emitted);
      recorder.on_chunk(p, dsp::SignalView(rec.ecg_mv.data() + i, len),
                        dsp::SignalView(rec.z_ohm.data() + i, len), emitted);
      beats += emitted.size();
    }
    emitted.clear();
    p.finish_into(emitted);
    recorder.on_finish(p, emitted);
    beats += emitted.size();
    res.file_bytes = recorder.bytes_written();
    res.beats = beats;
    res.file = sink.take();
  }
  return res;
}

} // namespace

int main() {
  report::banner(std::cout, "flight recorder: record overhead, replay + seek speed");

  const synth::Recording rec = severe_recording();

  const RecordCost dbl = bench_record_cost<core::StreamingBeatPipeline>(rec);
  const RecordCost q31 = bench_record_cost<core::FixedStreamingBeatPipeline>(rec);

  report::Table table(
      {"backend", "push ms", "recorded ms", "overhead %", "file KiB", "beats"});
  for (const auto* r : {&dbl, &q31}) {
    table.row()
        .add(r == &dbl ? "double" : "q31")
        .add(r->plain_s * 1e3, 2)
        .add(r->recorded_s * 1e3, 2)
        .add(r->overhead_pct, 2)
        .add(static_cast<double>(r->file_bytes) / 1024.0, 1)
        .add(static_cast<double>(r->beats), 0);
  }
  table.print(std::cout);

  // Verify (full replay) speed, both files.
  const auto tv0 = std::chrono::steady_clock::now();
  const core::FlightVerifyReport verify_dbl = core::flight_verify(dbl.file);
  const double verify_dbl_s = seconds_since(tv0);
  const auto tv1 = std::chrono::steady_clock::now();
  const core::FlightVerifyReport verify_q31 = core::flight_verify(q31.file);
  const double verify_q31_s = seconds_since(tv1);
  const bool verify_identical = verify_dbl.ok && verify_q31.ok;
  const double replay_speed =
      kDurationS / std::max({verify_dbl_s, verify_q31_s, 1e-9});
  std::cout << "\nverify: double "
            << (verify_dbl.ok ? "byte-identical" : "DIVERGED") << " in "
            << verify_dbl_s * 1e3 << " ms, q31 "
            << (verify_q31.ok ? "byte-identical" : "DIVERGED") << " in "
            << verify_q31_s * 1e3 << " ms (" << replay_speed
            << "x realtime, slower backend)\n";

  // Seek latency: restore the latest checkpoint, replay only the suffix.
  const std::uint64_t target = rec.ecg_mv.size() - 1;
  double seek_s = 1e9;
  bool seek_identical = true;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const core::FlightSeekReport s = core::flight_seek(q31.file, target);
    seek_s = std::min(seek_s, seconds_since(t0));
    seek_identical = seek_identical && s.ok;
  }
  std::cout << "seek to sample " << target << " (q31): " << seek_s * 1e3
            << " ms, suffix replay "
            << (seek_identical ? "byte-identical" : "DIVERGED") << "\n";

  const bool pass = verify_identical && seek_identical;
  std::ofstream json("BENCH_replay.json");
  json << "{\n  \"fs_hz\": " << kFs << ",\n  \"recording_s\": " << kDurationS
       << ",\n  \"chunk\": " << kChunk
       << ",\n  \"seek_checkpoint_interval\": " << kSeekInterval
       << ",\n  \"record_overhead_pct_double\": " << dbl.overhead_pct
       << ",\n  \"record_overhead_pct_q31\": " << q31.overhead_pct
       << ",\n  \"file_bytes_double\": " << dbl.file_bytes
       << ",\n  \"file_bytes_q31\": " << q31.file_bytes
       << ",\n  \"beats\": " << q31.beats
       << ",\n  \"verify_identical\": " << (verify_identical ? "true" : "false")
       << ",\n  \"replay_speed_vs_realtime\": " << replay_speed
       << ",\n  \"seek_ms\": " << seek_s * 1e3
       << ",\n  \"seek_identical\": " << (seek_identical ? "true" : "false")
       << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "(written to BENCH_replay.json)\n";
  return pass ? 0 : 1;
}
