// Reproduces Table I (component current consumption) and the battery-life
// arithmetic of Sections V/VI: 710 mAh at 50 % MCU duty and <= 1 % radio
// duty -> 106 hours (> 4 days on a single charge).
#include "platform/components.h"
#include "platform/power_model.h"
#include "report/table.h"

#include <iostream>
#include <string>

int main() {
  using namespace icgkit;
  using namespace icgkit::platform;

  report::banner(std::cout, "Table I: Current consumption for each component");
  report::Table table({"Component", "Average current (mA)"});
  for (const Component c : kAllComponents)
    table.row().add(std::string(component_name(c))).add(component_current_ma(c), 3);
  table.print(std::cout);

  report::banner(std::cout, "Battery life (Section V/VI)");
  report::Table life({"MCU duty", "Radio duty", "Avg current (mA)", "710 mAh life (h)",
                      "Days"});
  for (const double mcu : {0.40, 0.45, 0.50}) {
    for (const double radio : {0.001, 0.01}) {
      DutyCycleProfile duty;
      duty.mcu_active = mcu;
      duty.radio_tx = radio;
      duty.motion_sensors = 0.0;
      const PowerModel model(duty);
      life.row()
          .add(mcu, 2)
          .add(radio, 3)
          .add(model.average_current_ma(), 3)
          .add(model.battery_life_hours(kPaperBatteryMah), 1)
          .add(model.battery_life_hours(kPaperBatteryMah) / 24.0, 2);
    }
  }
  life.print(std::cout);

  DutyCycleProfile paper;
  paper.mcu_active = 0.50;
  paper.radio_tx = 0.01;
  const double hours = PowerModel(paper).battery_life_hours(kPaperBatteryMah);
  std::cout << "\nPaper claim: 106 h on 710 mAh at 50% MCU / 1% radio duty."
            << "\nModel:       " << hours << " h (motion sensors power-gated off).\n";
  return 0;
}
