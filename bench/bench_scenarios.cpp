// Corruption-robustness sweep: the scenario engine (synth/scenario.h)
// degrades the Section V study recordings through four severity tiers
// (clean / mild / moderate / severe) and both numeric backends run the
// quality-adaptive streaming pipeline over each. Scored against the
// synthesizer's exact ground truth:
//
//   - R-peak detection sensitivity and PPV (100 ms match tolerance),
//     with truth beats inside contact gaps excluded from the sensitivity
//     denominator — there is no signal to detect during a gap — and
//     detections inside gaps excluded from the false-positive count;
//   - PEP / LVET mean absolute error of matched usable beats;
//   - usable-beat fraction from the pipeline's QualitySummary.
//
// Writes BENCH_scenarios.json for the CI regression gate
// (ci/check_bench_regression.py): the moderate tier must keep >= 90 %
// sensitivity on BOTH backends, and the clean tier must stay a no-op
// (byte-identical recording, double/Q31 beat parity preserved).
#include "repro_common.h"

#include "core/pipeline.h"
#include "report/table.h"
#include "synth/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace {

using namespace icgkit;

constexpr double kMatchToleranceS = 0.100;
/// Grace period after a contact gap before a truth beat counts against
/// sensitivity again (electrode re-seat + threshold relearn head room).
constexpr double kGapGraceS = 0.5;

template <typename Pipeline>
std::vector<core::BeatRecord> run_stream(const synth::Recording& rec,
                                         core::QualitySummary& summary) {
  Pipeline p(rec.fs);
  std::vector<core::BeatRecord> beats;
  constexpr std::size_t kChunk = 64;
  const std::size_t n = rec.ecg_mv.size();
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t len = std::min(kChunk, n - i);
    p.push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                dsp::SignalView(rec.z_ohm.data() + i, len), beats);
  }
  p.finish_into(beats);
  summary = p.quality_summary();
  return beats;
}

struct TierScore {
  std::size_t truth = 0;       ///< ground-truth beats, total
  std::size_t observable = 0;  ///< truth beats outside contact gaps
  std::size_t matched = 0;     ///< observable truths with a detection in tolerance
  std::size_t false_pos = 0;   ///< detections matching no truth (outside gaps)
  std::uint64_t beats = 0, usable = 0;
  double pep_err_sum = 0.0, lvet_err_sum = 0.0;
  std::size_t err_n = 0;

  [[nodiscard]] double sensitivity() const {
    return observable > 0 ? static_cast<double>(matched) / static_cast<double>(observable)
                          : 0.0;
  }
  [[nodiscard]] double ppv() const {
    const std::size_t det = matched + false_pos;
    return det > 0 ? static_cast<double>(matched) / static_cast<double>(det) : 0.0;
  }
  [[nodiscard]] double pep_mae_ms() const {
    return err_n > 0 ? 1e3 * pep_err_sum / static_cast<double>(err_n) : 0.0;
  }
  [[nodiscard]] double lvet_mae_ms() const {
    return err_n > 0 ? 1e3 * lvet_err_sum / static_cast<double>(err_n) : 0.0;
  }
  [[nodiscard]] double usable_fraction() const {
    return beats > 0 ? static_cast<double>(usable) / static_cast<double>(beats) : 0.0;
  }
};

/// True when `t_s` falls inside a contact gap or within `grace_s` after
/// one ends (electrode re-seat + threshold-relearn head room).
bool near_gap(double t_s, double fs, const synth::ScenarioReport& report, double grace_s) {
  const auto lo = static_cast<std::size_t>(std::max(0.0, t_s - grace_s) * fs);
  const auto hi = static_cast<std::size_t>(std::max(0.0, t_s) * fs) + 1;
  return report.in_dropout(lo, hi);
}

/// Scores one recording's detections against its ground truth.
void score_recording(const synth::Recording& rec, const synth::ScenarioReport& report,
                     const std::vector<core::BeatRecord>& beats,
                     const core::QualitySummary& summary, TierScore& score) {
  const double fs = rec.fs;

  // Detected R set: each beat spans (r, r_next); collect opening AND
  // closing Rs (a recovery reset drops the open R after a gap, so the
  // last pre-gap R only ever appears as a closing index — omitting the
  // closers would book genuinely detected pre-gap beats as misses).
  std::vector<std::size_t> detected;
  for (const core::BeatRecord& b : beats) {
    detected.push_back(b.points.r);
    detected.push_back(b.points.r + static_cast<std::size_t>(std::lround(b.rr_s * fs)));
  }
  std::sort(detected.begin(), detected.end());
  detected.erase(std::unique(detected.begin(), detected.end()), detected.end());

  const auto tol = static_cast<std::size_t>(kMatchToleranceS * fs);
  std::vector<bool> det_used(detected.size(), false);

  for (const synth::BeatTruth& truth : rec.beats) {
    ++score.truth;
    if (near_gap(truth.r_time_s, fs, report, kGapGraceS)) continue;
    ++score.observable;
    const auto want = static_cast<std::size_t>(std::lround(truth.r_time_s * fs));
    // nearest unused detection within tolerance
    std::size_t best = detected.size();
    std::size_t best_dist = tol + 1;
    for (std::size_t d = 0; d < detected.size(); ++d) {
      if (det_used[d]) continue;
      const std::size_t dist =
          detected[d] > want ? detected[d] - want : want - detected[d];
      if (dist < best_dist) {
        best_dist = dist;
        best = d;
      }
    }
    if (best < detected.size()) {
      det_used[best] = true;
      ++score.matched;
    }
  }
  for (std::size_t d = 0; d < detected.size(); ++d) {
    if (det_used[d]) continue;
    const double t_s = static_cast<double>(detected[d]) / fs;
    if (!near_gap(t_s, fs, report, kGapGraceS)) ++score.false_pos;
  }

  // PEP/LVET error of matched usable beats (match by opening R).
  for (const core::BeatRecord& b : beats) {
    if (!b.usable()) continue;
    const double r_s = static_cast<double>(b.points.r) / fs;
    const synth::BeatTruth* nearest = nullptr;
    double nearest_dist = kMatchToleranceS;
    for (const synth::BeatTruth& truth : rec.beats) {
      const double dist = std::abs(truth.r_time_s - r_s);
      if (dist <= nearest_dist) {
        nearest_dist = dist;
        nearest = &truth;
      }
    }
    if (nearest == nullptr) continue;
    score.pep_err_sum += std::abs(b.hemo.pep_s - nearest->pep_s);
    score.lvet_err_sum += std::abs(b.hemo.lvet_s - nearest->lvet_s);
    ++score.err_n;
  }

  score.beats += summary.beats;
  score.usable += summary.usable;
}

std::string json_backend(const TierScore& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"sensitivity\": %.4f, \"ppv\": %.4f, \"pep_mae_ms\": %.3f, "
                "\"lvet_mae_ms\": %.3f, \"usable_fraction\": %.4f}",
                s.sensitivity(), s.ppv(), s.pep_mae_ms(), s.lvet_mae_ms(),
                s.usable_fraction());
  return buf;
}

} // namespace

int main() {
  using namespace icgkit;
  using namespace icgkit::bench;

  report::banner(std::cout,
                 "Scenario sweep: detection robustness vs corruption severity");

  struct Tier {
    const char* name;
    synth::ScenarioSpec spec;
  };
  const Tier tiers[] = {
      {"clean", synth::ScenarioSpec::clean()},
      {"mild", synth::ScenarioSpec::mild()},
      {"moderate", synth::ScenarioSpec::moderate()},
      {"severe", synth::ScenarioSpec::severe()},
  };

  const auto sessions = study_sessions();
  bool clean_noop = true;
  bool clean_parity = true;

  report::Table table({"tier", "backend", "sens", "PPV", "PEP MAE ms", "LVET MAE ms",
                       "usable", "gaps"});
  std::vector<std::pair<TierScore, TierScore>> tier_scores;  // (double, q31)

  for (const Tier& tier : tiers) {
    TierScore dbl_score, q31_score;
    std::uint64_t gaps = 0;
    std::size_t subject_idx = 0;
    for (const auto& s : sessions) {
      const synth::Recording rec = measure_thoracic(s.subject, s.source, 50e3);
      const std::uint64_t seed = 0xC0FFEEULL + subject_idx++;
      synth::Recording corrupted = rec;
      const synth::ScenarioReport report =
          synth::apply_scenario(corrupted, tier.spec, seed);

      if (tier.spec.stages.empty()) {
        clean_noop = clean_noop && corrupted.ecg_mv == rec.ecg_mv &&
                     corrupted.z_ohm == rec.z_ohm;
      }

      core::QualitySummary dbl_summary, q31_summary;
      const auto db = run_stream<core::StreamingBeatPipeline>(corrupted, dbl_summary);
      const auto fb = run_stream<core::FixedStreamingBeatPipeline>(corrupted, q31_summary);
      if (tier.spec.stages.empty() && db.size() != fb.size()) clean_parity = false;

      score_recording(corrupted, report, db, dbl_summary, dbl_score);
      score_recording(corrupted, report, fb, q31_summary, q31_score);
      gaps += dbl_summary.ecg_dropouts + dbl_summary.z_dropouts;
    }
    for (const auto* sc : {&dbl_score, &q31_score}) {
      table.row()
          .add(tier.name)
          .add(sc == &dbl_score ? "double" : "q31")
          .add(sc->sensitivity(), 4)
          .add(sc->ppv(), 4)
          .add(sc->pep_mae_ms(), 3)
          .add(sc->lvet_mae_ms(), 3)
          .add(sc->usable_fraction(), 3)
          .add(static_cast<double>(gaps), 0);
    }
    tier_scores.emplace_back(dbl_score, q31_score);
  }
  table.print(std::cout);
  std::cout << "clean tier no-op: " << (clean_noop ? "yes" : "NO")
            << ", clean double/Q31 beat parity: " << (clean_parity ? "yes" : "NO")
            << "\n(sensitivity counts only observable truth beats — contact gaps plus "
            << kGapGraceS << " s of re-seat grace are excluded)\n";

  // The bench gates its structural invariants (clean no-op, clean
  // parity); the numeric sensitivity floors live in
  // bench/bench_baselines.json, enforced by ci/check_bench_regression.py.
  const bool pass = clean_noop && clean_parity;

  // Look the gated tier up by name: reordering the tiers array must not
  // silently gate another tier's numbers.
  std::size_t moderate_idx = 0;
  for (std::size_t t = 0; t < std::size(tiers); ++t)
    if (std::string_view(tiers[t].name) == "moderate") moderate_idx = t;
  const TierScore& mod_dbl = tier_scores[moderate_idx].first;
  const TierScore& mod_q31 = tier_scores[moderate_idx].second;

  std::ofstream json("BENCH_scenarios.json");
  json << "{\n  \"fs_hz\": " << kFs << ",\n  \"tolerance_ms\": "
       << kMatchToleranceS * 1e3 << ",\n  \"gap_grace_s\": " << kGapGraceS
       << ",\n  \"clean_noop_identical\": " << (clean_noop ? "true" : "false")
       << ",\n  \"clean_beat_parity\": " << (clean_parity ? "true" : "false")
       << ",\n  \"moderate_sensitivity_double\": " << mod_dbl.sensitivity()
       << ",\n  \"moderate_sensitivity_q31\": " << mod_q31.sensitivity()
       << ",\n  \"moderate_ppv_double\": " << mod_dbl.ppv()
       << ",\n  \"moderate_ppv_q31\": " << mod_q31.ppv()
       << ",\n  \"tiers\": [";
  for (std::size_t t = 0; t < std::size(tiers); ++t) {
    json << (t == 0 ? "" : ",") << "\n    {\"name\": \"" << tiers[t].name
         << "\", \"double\": " << json_backend(tier_scores[t].first)
         << ", \"q31\": " << json_backend(tier_scores[t].second) << "}";
  }
  json << "\n  ],\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "(written to BENCH_scenarios.json)\n";

  return pass ? 0 : 1;
}
