// Ablation: which acquisition-channel terms produce the non-monotone
// bioimpedance-vs-frequency shape of Figs 6-7 (rise to 10 kHz, then
// fall). Pure Cole-Cole tissue dispersion is monotone decreasing; the
// electrode-polarization high-pass alone is monotone increasing on top of
// it at low f; only the combination of both channel terms peaks at
// ~10 kHz the way the paper measured.
#include "report/table.h"
#include "synth/cole.h"

#include <iostream>

int main() {
  using namespace icgkit;
  synth::ColeModel tissue; // representative thorax

  struct Variant {
    const char* name;
    bool hp, lp;
  };
  const Variant variants[] = {
      {"tissue only (no channel)", false, false},
      {"+ polarization high-pass", true, false},
      {"+ stray-capacitance low-pass", false, true},
      {"full channel (both)", true, true},
  };

  report::banner(std::cout, "Ablation: channel terms vs Fig 6/7 shape");
  report::Table table({"Variant", "Z(2k)", "Z(10k)", "Z(50k)", "Z(100k)", "shape"});
  bool full_ok = false;
  for (const auto& v : variants) {
    synth::InstrumentationResponse ch;
    ch.enable_hp = v.hp;
    ch.enable_lp = v.lp;
    const double z2 = measured_bioimpedance(tissue, ch, 2e3);
    const double z10 = measured_bioimpedance(tissue, ch, 10e3);
    const double z50 = measured_bioimpedance(tissue, ch, 50e3);
    const double z100 = measured_bioimpedance(tissue, ch, 100e3);
    const bool peak10 = z10 > z2 && z10 > z50 && z50 > z100;
    table.row()
        .add(std::string(v.name))
        .add(z2, 2)
        .add(z10, 2)
        .add(z50, 2)
        .add(z100, 2)
        .add(std::string(peak10 ? "peak @10kHz (paper)" : "monotone"));
    if (v.hp && v.lp) full_ok = peak10;
  }
  table.print(std::cout);
  std::cout << "\n(Only the full channel reproduces the paper's measured shape; the\n"
               " substitution table in DESIGN.md documents this modelling choice.)\n";
  return full_ok ? 0 : 1;
}
