// The numeric-backend trade-off the paper's firmware lives on: the same
// streaming beat pipeline instantiated with the Q31 backend must agree
// with the double reference beat for beat on the Section V study
// protocol, while costing ~17x fewer MCU cycles per MAC on the FPU-less
// STM32L151 (cycles_per_mac 70 -> ~4, platform::McuConfig). This bench
// measures both sides -- worst-case PEP/LVET/SV deviation of the fixed
// path, and the modeled duty cycle / battery life of each arithmetic --
// and writes BENCH_fixed.json for the CI regression gate.
#include "repro_common.h"

#include "core/pipeline.h"
#include "platform/mcu.h"
#include "platform/power_model.h"
#include "report/table.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>

namespace {
const char* position_name(icgkit::synth::Position p) {
  switch (p) {
    case icgkit::synth::Position::HoldToChest: return "hold-to-chest";
    case icgkit::synth::Position::ArmsOutstretched: return "arms-out";
    case icgkit::synth::Position::ArmsDown: return "arms-down";
  }
  return "?";
}
} // namespace

int main() {
  using namespace icgkit;
  using namespace icgkit::bench;

  report::banner(std::cout,
                 "Fixed-point (Q31) pipeline vs double reference, study protocol");

  const dsp::Q31ScalingPolicy policy; // the documented per-stage scaling

  double worst_pep = 0.0, worst_lvet = 0.0, worst_sv = 0.0;
  std::size_t beats_total = 0, flaw_mismatches = 0;
  bool beat_parity = true;

  report::Table table({"Subject", "Position", "beats dbl", "beats q31",
                       "worst dPEP ms", "worst dLVET ms", "worst dSV ml"});
  const auto sessions = study_sessions();
  for (const auto& s : sessions) {
    for (const auto pos : synth::kAllPositions) {
      const synth::Recording rec = measure_device(s.subject, s.source, 50e3, pos);

      core::StreamingBeatPipeline dbl(kFs);
      std::vector<core::BeatRecord> db = dbl.push(rec.ecg_mv, rec.z_ohm);
      dbl.finish_into(db);

      core::FixedStreamingBeatPipeline fixed(kFs, {}, 12.0, policy);
      std::vector<core::BeatRecord> fb = fixed.push(rec.ecg_mv, rec.z_ohm);
      fixed.finish_into(fb);

      double pep = 0.0, lvet = 0.0, sv = 0.0;
      if (db.size() != fb.size()) {
        beat_parity = false;
      } else {
        for (std::size_t i = 0; i < db.size(); ++i) {
          pep = std::max(pep, std::abs(db[i].hemo.pep_s - fb[i].hemo.pep_s));
          lvet = std::max(lvet, std::abs(db[i].hemo.lvet_s - fb[i].hemo.lvet_s));
          if (db[i].usable())
            sv = std::max(sv,
                          std::abs(db[i].hemo.sv_kubicek_ml - fb[i].hemo.sv_kubicek_ml));
          if (db[i].flaws != fb[i].flaws) ++flaw_mismatches;
          ++beats_total;
        }
      }
      worst_pep = std::max(worst_pep, pep);
      worst_lvet = std::max(worst_lvet, lvet);
      worst_sv = std::max(worst_sv, sv);
      table.row()
          .add(s.subject.name)
          .add(position_name(pos))
          .add(static_cast<double>(db.size()), 0)
          .add(static_cast<double>(fb.size()), 0)
          .add(pep * 1e3, 3)
          .add(lvet * 1e3, 3)
          .add(sv, 4);
    }
  }
  table.print(std::cout);
  std::cout << "worst-case over " << beats_total << " beats: dPEP = " << worst_pep * 1e3
            << " ms, dLVET = " << worst_lvet * 1e3 << " ms, dSV = " << worst_sv
            << " ml, flaw mismatches = " << flaw_mismatches << "\n";

  // ------------------------------------------------------------------
  // Modeled MCU cost of each arithmetic (Section V / platform::McuConfig):
  // identical MAC counts, ~70 cycles per software-double MAC vs ~4 per
  // Q31 MAC, folded into duty cycle and battery life.
  // ------------------------------------------------------------------
  report::banner(std::cout, "Modeled STM32L151 cost: software double vs Q31");
  const core::PipelineConfig pcfg;
  const platform::McuConfig mcu_double;                    // 70 cycles/MAC (software double)
  const platform::McuConfig mcu_fixed = platform::McuConfig::q31(); // ~4 cycles/MAC

  const platform::CpuLoadReport load_double =
      platform::estimate_cpu_load(pcfg, kFs, 70.0, mcu_double);
  const platform::CpuLoadReport load_fixed =
      platform::estimate_cpu_load(pcfg, kFs, 70.0, mcu_fixed);

  const auto battery_h = [](double duty) {
    platform::DutyCycleProfile profile;
    profile.mcu_active = std::clamp(duty, 0.0, 1.0);
    return platform::PowerModel(profile).battery_life_hours(platform::kPaperBatteryMah);
  };
  const double battery_double = battery_h(load_double.duty_cycle);
  const double battery_fixed = battery_h(load_fixed.duty_cycle);

  report::Table cost({"Arithmetic", "cycles/MAC", "duty cycle", "battery (h, 710 mAh)"});
  cost.row().add("software double").add(70.0, 0).add(load_double.duty_cycle, 4).add(
      battery_double, 1);
  cost.row().add("Q31 fixed point").add(4.0, 0).add(load_fixed.duty_cycle, 4).add(
      battery_fixed, 1);
  cost.print(std::cout);
  const double mac_speedup = load_fixed.duty_cycle > 0.0
                                 ? load_double.duty_cycle / load_fixed.duty_cycle
                                 : 0.0;
  std::cout << "(duty-cycle ratio double/Q31 = " << mac_speedup
            << "x; the paper's FPU-less MCU is why the firmware is fixed-point)\n";

  // The bench gates only the structural invariants it owns (beat parity,
  // quality-flag agreement); the numeric PEP/LVET deviation ceilings
  // live solely in bench/bench_baselines.json, enforced by
  // ci/check_bench_regression.py, so there is exactly one reviewed place
  // to change them.
  const bool pass = beat_parity && flaw_mismatches == 0;

  std::ofstream json("BENCH_fixed.json");
  json << "{\n  \"fs_hz\": " << kFs
       << ",\n  \"beats_compared\": " << beats_total
       << ",\n  \"beat_parity\": " << (beat_parity ? "true" : "false")
       << ",\n  \"flaw_mismatches\": " << flaw_mismatches
       << ",\n  \"worst_pep_dev_ms\": " << worst_pep * 1e3
       << ",\n  \"worst_lvet_dev_ms\": " << worst_lvet * 1e3
       << ",\n  \"worst_sv_dev_ml\": " << worst_sv
       << ",\n  \"scaling\": {\"ecg_fullscale_mv\": " << policy.ecg_fullscale_mv
       << ", \"z_fullscale_ohm\": " << policy.z_fullscale_ohm
       << ", \"icg_gain_log2\": " << policy.icg_gain_log2
       << ", \"icg_fullscale_ohm_per_s\": " << policy.icg_fullscale(kFs) << "}"
       << ",\n  \"duty_cycle_double\": " << load_double.duty_cycle
       << ",\n  \"duty_cycle_q31\": " << load_fixed.duty_cycle
       << ",\n  \"duty_ratio\": " << mac_speedup
       << ",\n  \"battery_hours_double\": " << battery_double
       << ",\n  \"battery_hours_q31\": " << battery_fixed
       << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "(written to BENCH_fixed.json)\n";

  return pass ? 0 : 1;
}
