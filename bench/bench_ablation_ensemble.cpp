// Ablation/extension: single-beat delineation (the paper's mode) vs
// ensemble-averaged delineation (the classical ICG practice and a natural
// extension for the noisy touch scenario). Reports median B/C/X errors vs
// ground truth across noise levels, plus the fixed-point filtering cost of
// the speedup an FPU-less MCU would take (Q31 vs double).
#include "core/delineator.h"
#include "core/ensemble.h"
#include "core/icg_filter.h"
#include "dsp/butterworth.h"
#include "dsp/fixed_point.h"
#include "dsp/stats.h"
#include "report/table.h"
#include "synth/artifacts.h"
#include "synth/icg_synth.h"

#include <cmath>
#include <iostream>

namespace {
using namespace icgkit;
constexpr double kFs = 250.0;
} // namespace

int main() {
  report::banner(std::cout,
                 "Ablation: single-beat vs ensemble-averaged delineation (median ms error)");
  report::Table table({"noise RMS", "single B", "single X", "ensemble B", "ensemble X",
                       "single invalid (%)"});

  bool ensemble_wins_at_high_noise = false;
  for (const double sigma : {0.0, 0.1, 0.2, 0.35, 0.5}) {
    synth::Rng rng(900 + static_cast<std::uint64_t>(sigma * 100));
    synth::IcgSynthConfig cfg;
    std::vector<double> r_times;
    std::vector<std::size_t> r_idx;
    for (int i = 0; i < 40; ++i) {
      r_times.push_back(0.6 + 0.85 * i);
      r_idx.push_back(static_cast<std::size_t>(r_times.back() * kFs));
    }
    auto syn = synth::synthesize_icg(r_times, 0.6 + 0.85 * 40 + 1.0, kFs, cfg, rng);
    const dsp::Signal noise = synth::white_noise(syn.icg.size(), sigma, rng);
    for (std::size_t i = 0; i < noise.size(); ++i) syn.icg[i] += noise[i];
    const core::IcgFilter filter(kFs);
    const dsp::Signal icg = filter.apply(syn.icg);

    const core::IcgDelineator delineator(kFs);
    core::EnsembleAverager averager(kFs, {.window_beats = 12, .min_template_corr = 0.3});

    dsp::Signal sb, sx, eb, ex;
    int invalid = 0, total = 0;
    for (std::size_t i = 0; i + 1 < syn.beats.size(); ++i) {
      const auto& truth = syn.beats[i];
      ++total;
      const auto d = delineator.delineate(icg, r_idx[i], r_idx[i + 1]);
      if (d.valid) {
        sb.push_back(std::abs(static_cast<double>(d.b) / kFs - truth.b_time_s) * 1e3);
        sx.push_back(std::abs(static_cast<double>(d.x) / kFs - truth.x_time_s) * 1e3);
      } else {
        ++invalid;
      }
      averager.add_beat(icg, r_idx[i]);
      const auto da = averager.delineate_average(delineator);
      if (da.has_value()) {
        // Compare the template's intervals against this beat's truth.
        const double pep = static_cast<double>(da->b - da->r) / kFs;
        const double bx = static_cast<double>(da->x - da->b) / kFs;
        eb.push_back(std::abs(pep - truth.pep_s) * 1e3);
        ex.push_back(std::abs(pep + bx - (truth.pep_s + truth.lvet_s)) * 1e3);
      }
    }
    table.row()
        .add(sigma, 2)
        .add(sb.empty() ? 999.0 : dsp::median(sb), 1)
        .add(sx.empty() ? 999.0 : dsp::median(sx), 1)
        .add(eb.empty() ? 999.0 : dsp::median(eb), 1)
        .add(ex.empty() ? 999.0 : dsp::median(ex), 1)
        .add(100.0 * invalid / std::max(1, total), 1);
    if (sigma >= 0.35 && !eb.empty() && !sb.empty() &&
        dsp::median(eb) < dsp::median(sb))
      ensemble_wins_at_high_noise = true;
  }
  table.print(std::cout);
  std::cout << "(Beat-to-beat mode preserves per-beat variability -- the paper's\n"
               " choice; the ensemble trades one-beat latency for noise immunity.)\n";

  report::banner(std::cout, "Fixed-point (Q31) vs double filtering accuracy");
  {
    const dsp::SosFilter lp = dsp::butterworth_lowpass(4, 20.0, kFs);
    dsp::Signal x(5000);
    synth::Rng rng(17);
    for (auto& v : x) v = 0.4 * rng.normal();
    std::cout << "worst |double - Q31| over 20 s of noise: " << dsp::fixed_point_error(lp, x)
              << " of full scale\n(a ~17x MAC-cost reduction on the FPU-less Cortex-M3; "
                 "see platform::McuConfig)\n";
  }
  return ensemble_wins_at_high_noise ? 0 : 1;
}
