// Reproduces Fig 5: one beat of synchronized ECG and ICG with the
// characteristic points (R on the ECG; B, C, X on the ICG), comparing the
// delineator's detections against the synthesis ground truth. Prints an
// ASCII rendering plus a CSV dump for plotting.
#include "core/delineator.h"
#include "core/icg_filter.h"
#include "core/pipeline.h"
#include "report/table.h"
#include "repro_common.h"

#include <cmath>
#include <iostream>
#include <string>

int main() {
  using namespace icgkit;
  const auto sessions = bench::study_sessions();
  const auto& s = sessions[0];
  const synth::Recording rec = measure_thoracic(s.subject, s.source, 50e3);

  const core::BeatPipeline pipeline(bench::kFs);
  const core::PipelineResult res = pipeline.process(rec.ecg_mv, rec.z_ohm);

  // Pick a mid-recording usable beat.
  const core::BeatRecord* beat = nullptr;
  for (const auto& b : res.beats)
    if (b.usable() && b.points.r > 10 * bench::kFs) {
      beat = &b;
      break;
    }
  if (beat == nullptr) {
    std::cerr << "no usable beat found\n";
    return 1;
  }

  report::banner(std::cout, "Fig 5: ICG and ECG waveform with characteristic points");
  const std::size_t start = beat->points.r > 25 ? beat->points.r - 25 : 0;
  const std::size_t stop =
      std::min(res.filtered_icg.size(), beat->points.x + 50);

  // ASCII rendering: 24 rows, one column per two samples.
  const int rows = 16;
  double icg_min = 1e300, icg_max = -1e300;
  for (std::size_t i = start; i < stop; ++i) {
    icg_min = std::min(icg_min, res.filtered_icg[i]);
    icg_max = std::max(icg_max, res.filtered_icg[i]);
  }
  std::vector<std::string> canvas(rows + 1, std::string((stop - start) / 2 + 1, ' '));
  auto row_of = [&](double v) {
    return rows - static_cast<int>(std::lround((v - icg_min) / (icg_max - icg_min) * rows));
  };
  for (std::size_t i = start; i < stop; i += 2)
    canvas[static_cast<std::size_t>(row_of(res.filtered_icg[i]))][(i - start) / 2] = '*';
  auto mark = [&](std::size_t idx, char ch) {
    if (idx >= start && idx < stop)
      canvas[static_cast<std::size_t>(row_of(res.filtered_icg[idx]))][(idx - start) / 2] = ch;
  };
  mark(beat->points.b, 'B');
  mark(beat->points.c, 'C');
  mark(beat->points.x, 'X');
  std::cout << "ICG (-dZ/dt), one beat; B/C/X = detected points\n";
  for (const auto& line : canvas) std::cout << line << '\n';

  // Detection vs ground truth for this beat.
  const synth::BeatTruth* truth = nullptr;
  for (const auto& t : rec.beats) {
    if (std::abs(t.r_time_s - static_cast<double>(beat->points.r) / bench::kFs) < 0.1)
      truth = &t;
  }
  report::Table table({"Point", "Detected (s)", "Ground truth (s)", "Error (ms)"});
  auto add_row = [&](const char* name, std::size_t idx, double truth_s) {
    const double det_s = static_cast<double>(idx) / bench::kFs;
    table.row().add(std::string(name)).add(det_s, 4).add(truth_s, 4).add(
        (det_s - truth_s) * 1000.0, 1);
  };
  if (truth != nullptr) {
    add_row("B (valve opening)", beat->points.b, truth->b_time_s);
    add_row("C (peak flow)", beat->points.c, truth->c_time_s);
    add_row("X (valve closure)", beat->points.x, truth->x_time_s);
    std::cout << '\n';
    table.print(std::cout);
    std::cout << "\nBeat intervals: PEP = " << beat->hemo.pep_s * 1000.0
              << " ms (truth " << truth->pep_s * 1000.0 << "), LVET = "
              << beat->hemo.lvet_s * 1000.0 << " ms (truth " << truth->lvet_s * 1000.0
              << ")\n";
  }

  // CSV dump of the beat (ECG + ICG) for external plotting.
  std::cout << "\nCSV (t_s, ecg_mv, icg_ohm_per_s):\n";
  for (std::size_t i = start; i < stop; i += 2)
    std::cout << static_cast<double>(i) / bench::kFs << ',' << res.filtered_ecg[i] << ','
              << res.filtered_icg[i] << '\n';
  return 0;
}
