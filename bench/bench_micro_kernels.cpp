// google-benchmark microbenchmarks of the DSP kernels and the full
// pipeline. These support the embedded feasibility claim: the per-second
// workload at fs = 250 Hz must complete in a small fraction of a second
// even on a laptop-class core, and the measured op ratios sanity-check
// the analytic cycle model in platform/mcu.h.
#include <benchmark/benchmark.h>

#include "core/delineator.h"
#include "core/ensemble.h"
#include "core/hemodynamics.h"
#include "core/pipeline.h"
#include "core/quality.h"
#include "dsp/backend.h"
#include "dsp/biquad.h"
#include "dsp/butterworth.h"
#include "dsp/denormal.h"
#include "dsp/fft.h"
#include "dsp/filtfilt.h"
#include "dsp/fir_design.h"
#include "dsp/morphology.h"
#include "dsp/moving.h"
#include "dsp/simd.h"
#include "ecg/pan_tompkins.h"
#include "synth/recording.h"
#include "synth/subject.h"

namespace {

using namespace icgkit;

constexpr double kFs = 250.0;

dsp::Signal test_signal(std::size_t n) {
  dsp::Signal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / kFs;
    x[i] = std::sin(2.0 * 3.14159 * 1.2 * t) + 0.4 * std::sin(2.0 * 3.14159 * 9.0 * t);
  }
  return x;
}

void BM_FirBandpass32(benchmark::State& state) {
  const auto fir = dsp::design_bandpass(32, 0.05, 40.0, kFs);
  const auto x = test_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(dsp::filtfilt_fir(fir, x));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FirBandpass32)->Arg(250)->Arg(2500)->Arg(7500);

void BM_ButterworthLp20(benchmark::State& state) {
  const auto lp = dsp::butterworth_lowpass(4, 20.0, kFs);
  const auto x = test_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(dsp::filtfilt_sos(lp, x));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ButterworthLp20)->Arg(250)->Arg(2500)->Arg(7500);

void BM_MorphologicalBaseline(benchmark::State& state) {
  const auto x = test_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(dsp::remove_baseline(x, kFs));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MorphologicalBaseline)->Arg(2500)->Arg(7500);

void BM_Fft(benchmark::State& state) {
  const auto x = test_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(dsp::magnitude_spectrum(x));
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(4096);

void BM_PanTompkins30s(benchmark::State& state) {
  const auto roster = synth::paper_roster();
  synth::RecordingConfig cfg;
  cfg.duration_s = 30.0;
  const auto src = generate_source(roster[0], cfg);
  const ecg::PanTompkins pt(kFs);
  for (auto _ : state) benchmark::DoNotOptimize(pt.detect(src.ecg_mv));
}
BENCHMARK(BM_PanTompkins30s);

void BM_FullPipeline30s(benchmark::State& state) {
  const auto roster = synth::paper_roster();
  synth::RecordingConfig cfg;
  cfg.duration_s = 30.0;
  const auto src = generate_source(roster[0], cfg);
  const auto rec = measure_device(roster[0], src, 50e3, synth::Position::HoldToChest);
  const core::BeatPipeline pipeline(kFs);
  for (auto _ : state) benchmark::DoNotOptimize(pipeline.process(rec.ecg_mv, rec.z_ohm));
}
BENCHMARK(BM_FullPipeline30s);

// ---------------------------------------------------------------------------
// Scalar vs SIMD-batch streaming kernels. Each variant ticks the same
// per-session sample stream; the batch rows process kLanes sessions in
// lockstep, so items/sec (= samples * lanes) divided across rows gives
// the per-kernel cycles/sample ratio the batch backend buys. Run under
// the same FTZ/DAZ mode as the fleet's worker threads so IIR tails cost
// the same in every row.
// ---------------------------------------------------------------------------

template <typename B>
typename B::sample_t bsample(double x) {
  if constexpr (B::kLanes > 1)
    return B::sample_t::broadcast(x);
  else
    return x;
}

template <typename B>
void BM_StreamingSosTick(benchmark::State& state) {
  dsp::DenormalGuard guard;
  dsp::BasicStreamingSos<B> sos(dsp::butterworth_lowpass(4, 20.0, kFs));
  const auto x = test_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    typename B::sample_t acc = bsample<B>(0.0);
    for (const double v : x) acc = acc + sos.tick(bsample<B>(v));
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(B::kLanes));
  state.SetLabel(B::kLanes > 1 ? std::string("batch W=") + std::to_string(B::kLanes) +
                                     " [" + dsp::lane_isa() + "]"
                               : "scalar");
}
BENCHMARK_TEMPLATE(BM_StreamingSosTick, dsp::DoubleBackend)->Arg(7500);
BENCHMARK_TEMPLATE(BM_StreamingSosTick, dsp::BatchBackend<4>)->Arg(7500);
BENCHMARK_TEMPLATE(BM_StreamingSosTick, dsp::BatchBackend<8>)->Arg(7500);

template <typename B>
void BM_StreamingZeroPhaseFirPush(benchmark::State& state) {
  dsp::DenormalGuard guard;
  dsp::BasicStreamingZeroPhaseFir<B> fir(dsp::design_lowpass(30, 20.0, kFs));
  const auto x = test_signal(static_cast<std::size_t>(state.range(0)));
  std::vector<typename B::sample_t> out;
  out.reserve(x.size() + 64);
  for (auto _ : state) {
    out.clear();
    for (const double v : x) fir.push(bsample<B>(v), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(B::kLanes));
}
BENCHMARK_TEMPLATE(BM_StreamingZeroPhaseFirPush, dsp::DoubleBackend)->Arg(7500);
BENCHMARK_TEMPLATE(BM_StreamingZeroPhaseFirPush, dsp::BatchBackend<4>)->Arg(7500);
BENCHMARK_TEMPLATE(BM_StreamingZeroPhaseFirPush, dsp::BatchBackend<8>)->Arg(7500);

template <typename B>
void BM_StreamingMovingAverageTick(benchmark::State& state) {
  dsp::DenormalGuard guard;
  dsp::BasicStreamingMovingAverage<B> mwi(38);  // Pan-Tompkins MWI window
  const auto x = test_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    typename B::sample_t acc = bsample<B>(0.0);
    for (const double v : x) acc = acc + mwi.tick(bsample<B>(v));
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(B::kLanes));
}
BENCHMARK_TEMPLATE(BM_StreamingMovingAverageTick, dsp::DoubleBackend)->Arg(7500);
BENCHMARK_TEMPLATE(BM_StreamingMovingAverageTick, dsp::BatchBackend<4>)->Arg(7500);
BENCHMARK_TEMPLATE(BM_StreamingMovingAverageTick, dsp::BatchBackend<8>)->Arg(7500);

template <typename B>
void BM_StreamingBaselineRemoverPush(benchmark::State& state) {
  dsp::DenormalGuard guard;
  dsp::BasicStreamingBaselineRemover<B> baseline(kFs);
  const auto x = test_signal(static_cast<std::size_t>(state.range(0)));
  std::vector<typename B::sample_t> out;
  out.reserve(x.size() + 256);
  for (auto _ : state) {
    out.clear();
    for (const double v : x) baseline.push(bsample<B>(v), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(B::kLanes));
}
BENCHMARK_TEMPLATE(BM_StreamingBaselineRemoverPush, dsp::DoubleBackend)->Arg(7500);
BENCHMARK_TEMPLATE(BM_StreamingBaselineRemoverPush, dsp::BatchBackend<4>)->Arg(7500);
BENCHMARK_TEMPLATE(BM_StreamingBaselineRemoverPush, dsp::BatchBackend<8>)->Arg(7500);

// ---------------------------------------------------------------------------
// Per-beat tail stages. These are the Amdahl denominator of the batch
// backend: the filter front runs in lockstep lanes, but delineation,
// quality screening, hemodynamics, and the ensemble fold stay per-lane
// scalar work drained after each front tick (see core/batch.h). Items
// are beats, so items/sec inverts to the us/beat each stage costs; the
// end-to-end tail figure gated in CI is BENCH_batch.json's
// profile.tail_us_per_beat, which these rows decompose.
// ---------------------------------------------------------------------------

struct TailWorkload {
  dsp::Signal icg;                ///< filtered ICG trace
  std::vector<std::size_t> r;     ///< R-peak sample indices
  std::vector<double> rr_s;       ///< per-beat R-R intervals
  double z0_ohm = 0.0;
};

const TailWorkload& tail_workload() {
  static const TailWorkload w = [] {
    const auto roster = synth::paper_roster();
    synth::RecordingConfig cfg;
    cfg.duration_s = 60.0;
    const auto src = generate_source(roster[0], cfg);
    const auto rec = measure_device(roster[0], src, 50e3, synth::Position::ArmsOutstretched);
    const core::BeatPipeline pipeline(kFs);
    auto result = pipeline.process(rec.ecg_mv, rec.z_ohm);
    TailWorkload out;
    out.icg = std::move(result.filtered_icg);
    out.z0_ohm = result.z0_mean_ohm;
    for (const auto& beat : result.beats) {
      out.r.push_back(beat.points.r);
      out.rr_s.push_back(beat.rr_s);
    }
    return out;
  }();
  return w;
}

void BM_DelineateBeat(benchmark::State& state) {
  const TailWorkload& w = tail_workload();
  const core::IcgDelineator delineator(kFs);
  core::DelineationScratch scratch;
  scratch.reserve(static_cast<std::size_t>(2.0 * kFs));
  for (auto _ : state) {
    for (std::size_t i = 0; i + 1 < w.r.size(); ++i)
      benchmark::DoNotOptimize(
          delineator.delineate(w.icg, w.r[i], w.r[i + 1], scratch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.r.size() - 1));
}
BENCHMARK(BM_DelineateBeat);

void BM_AssessBeatQuality(benchmark::State& state) {
  const TailWorkload& w = tail_workload();
  const core::IcgDelineator delineator(kFs);
  core::DelineationScratch scratch;
  scratch.reserve(static_cast<std::size_t>(2.0 * kFs));
  std::vector<core::BeatDelineation> points;
  for (std::size_t i = 0; i + 1 < w.r.size(); ++i)
    points.push_back(delineator.delineate(w.icg, w.r[i], w.r[i + 1], scratch));
  for (auto _ : state) {
    for (std::size_t i = 0; i < points.size(); ++i)
      benchmark::DoNotOptimize(core::assess_beat(points[i], w.rr_s[i], kFs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_AssessBeatQuality);

void BM_BeatHemodynamics(benchmark::State& state) {
  const TailWorkload& w = tail_workload();
  const core::IcgDelineator delineator(kFs);
  core::DelineationScratch scratch;
  scratch.reserve(static_cast<std::size_t>(2.0 * kFs));
  std::vector<core::BeatDelineation> points;
  for (std::size_t i = 0; i + 1 < w.r.size(); ++i)
    points.push_back(delineator.delineate(w.icg, w.r[i], w.r[i + 1], scratch));
  for (auto _ : state) {
    for (std::size_t i = 0; i < points.size(); ++i)
      benchmark::DoNotOptimize(
          core::compute_beat_hemodynamics(points[i], w.rr_s[i], w.z0_ohm, kFs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_BeatHemodynamics);

void BM_EnsembleFold(benchmark::State& state) {
  const TailWorkload& w = tail_workload();
  for (auto _ : state) {
    core::EnsembleAverager ens(kFs);
    std::size_t accepted = 0;
    for (const std::size_t r : w.r) accepted += ens.add_beat(w.icg, r) ? 1 : 0;
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(w.r.size()));
}
BENCHMARK(BM_EnsembleFold);

void BM_BeatTailFull(benchmark::State& state) {
  // The whole per-beat tail in stage order — delineate, screen, compute
  // hemodynamics — matching what SessionBatch drains per lane after a
  // front tick. items/sec inverts to the composite us/beat.
  const TailWorkload& w = tail_workload();
  const core::IcgDelineator delineator(kFs);
  core::DelineationScratch scratch;
  scratch.reserve(static_cast<std::size_t>(2.0 * kFs));
  for (auto _ : state) {
    for (std::size_t i = 0; i + 1 < w.r.size(); ++i) {
      const auto points = delineator.delineate(w.icg, w.r[i], w.r[i + 1], scratch);
      benchmark::DoNotOptimize(core::assess_beat(points, w.rr_s[i], kFs));
      benchmark::DoNotOptimize(
          core::compute_beat_hemodynamics(points, w.rr_s[i], w.z0_ohm, kFs));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.r.size() - 1));
}
BENCHMARK(BM_BeatTailFull);

void BM_Synthesis30s(benchmark::State& state) {
  const auto roster = synth::paper_roster();
  synth::RecordingConfig cfg;
  cfg.duration_s = 30.0;
  for (auto _ : state) benchmark::DoNotOptimize(generate_source(roster[1], cfg));
}
BENCHMARK(BM_Synthesis30s);

} // namespace

BENCHMARK_MAIN();
