// Network fleet soak: the loopback proof that the wire front-end adds
// zero divergence and explicit-only backpressure on top of the fleet.
//
// Phase 1 (soak): ICGKIT_SERVER_SESSIONS sessions (default 10000; the
// CI matrix entry scales this down) cycled through one FleetServer in
// bounded-concurrency waves over a single loopback connection. Every
// chunk is windowed against the server's CACK stream at the advertised
// max_inflight, so a correct client must never be shed — the bench
// fails if a single SHED arrives. Per-chunk round-trip latency is the
// send-to-covering-CACK time; every session's BEAT bytes are compared
// against a directly-fed in-process StreamingBeatPipeline.
//
// Phase 2 (skew): a small fleet on 2 workers with rebalancing armed;
// the streams homed on worker 0 close immediately, leaving the load
// skewed onto one worker. The periodic rebalancer must migrate at
// least one survivor — and the migrated streams' bytes must still
// match the direct feed.
//
// Writes BENCH_server.json for ci/check_bench_regression.py --only
// server (the server CI matrix entry): beat_bytes_identical,
// shed_chunks == 0 and skew_migrations > 0 gate unconditionally;
// samples/s and p99 gate against committed floors.
#include "core/beat_serializer.h"
#include "core/pipeline.h"
#include "net/client.h"
#include "net/server.h"
#include "report/table.h"
#include "synth/recording.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <thread>
#include <vector>

namespace {

using namespace icgkit;
using net::ClientEvent;
using net::FleetClient;
using net::FleetServer;
using net::ServerConfig;
using net::ServerStatus;

constexpr std::size_t kChunk = 64;
using Clock = std::chrono::steady_clock;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

// Reference beat bytes: the same full-chunk schedule fed straight into
// an in-process pipeline with the server fleet's (default) config.
std::vector<unsigned char> direct_stream(const synth::Recording& rec) {
  core::StreamingBeatPipeline direct(rec.fs, {});
  std::vector<core::BeatRecord> beats;
  const std::size_t n = rec.ecg_mv.size();
  for (std::size_t i = 0; i + kChunk <= n; i += kChunk) {
    direct.push_into(dsp::SignalView(rec.ecg_mv.data() + i, kChunk),
                     dsp::SignalView(rec.z_ohm.data() + i, kChunk), beats);
  }
  direct.finish_into(beats);
  std::vector<unsigned char> bytes;
  for (const core::BeatRecord& b : beats) core::serialize_beat(b, bytes);
  return bytes;
}

struct WaveStream {
  std::uint32_t id = 0;
  const synth::Recording* rec = nullptr;
  std::size_t ref = 0;           ///< index into the direct reference streams
  std::uint64_t chunks = 0;      ///< full chunks this recording yields
  std::uint64_t sent = 0;
  std::uint64_t acked = 0;
  bool closed = false;
  bool done = false;             ///< terminal QUAL arrived
  std::vector<unsigned char> bytes;
  std::vector<Clock::time_point> send_ts;
};

struct SoakResult {
  std::uint64_t sessions = 0;
  std::uint64_t chunks = 0;
  std::uint64_t samples = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::uint64_t divergent = 0;
  double wall_s = 0.0;
  std::vector<double> latency_ms;
  net::ServerStats stats{};
  [[nodiscard]] double samples_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(samples) / wall_s : 0.0;
  }
};

// Feeds `wave` to completion on `client`: windowed sends against the
// CACK stream, per-chunk latency capture, BEAT byte collection, and a
// byte-compare against `refs` at each terminal QUAL.
void play_wave(FleetClient& client, std::vector<WaveStream>& wave,
               std::uint64_t window,
               const std::vector<std::vector<unsigned char>>& refs,
               SoakResult& out, bool open_streams = true) {
  if (open_streams)
    for (WaveStream& ws : wave) client.open_stream(ws.id);

  std::vector<ClientEvent> events;
  std::size_t done = 0;
  while (done < wave.size() && client.connected()) {
    bool progressed = false;
    for (WaveStream& ws : wave) {
      while (ws.sent < ws.chunks && ws.sent - ws.acked < window) {
        const std::size_t off = static_cast<std::size_t>(ws.sent) * kChunk;
        ws.send_ts.push_back(Clock::now());
        client.send_chunk(ws.id,
                          std::span<const double>(ws.rec->ecg_mv.data() + off, kChunk),
                          std::span<const double>(ws.rec->z_ohm.data() + off, kChunk));
        ++ws.sent;
        progressed = true;
      }
      if (ws.sent == ws.chunks && !ws.closed) {
        client.close_stream(ws.id);
        ws.closed = true;
        progressed = true;
      }
    }
    events.clear();
    client.poll_events(events, progressed ? 0 : 1);
    for (const ClientEvent& ev : events) {
      WaveStream* ws = nullptr;
      for (WaveStream& cand : wave)
        if (cand.id == ev.stream) { ws = &cand; break; }
      switch (ev.type) {
        case ClientEvent::Type::ChunkAck: {
          if (ws == nullptr) break;
          const auto now = Clock::now();
          for (std::uint64_t k = ws->acked; k < ev.count && k < ws->send_ts.size(); ++k)
            out.latency_ms.push_back(
                std::chrono::duration<double, std::milli>(now - ws->send_ts[k]).count());
          ws->acked = std::max(ws->acked, ev.count);
          break;
        }
        case ClientEvent::Type::Beat:
          if (ws != nullptr) core::serialize_beat(ev.beat, ws->bytes);
          break;
        case ClientEvent::Type::Quality:
          if (ws != nullptr && !ws->done) {
            ws->done = true;
            ++done;
            ++out.sessions;
            out.chunks += ws->chunks;
            out.samples += ws->chunks * kChunk;
            if (ws->bytes != refs[ws->ref]) ++out.divergent;
          }
          break;
        case ClientEvent::Type::Shed:
          ++out.shed;
          break;
        case ClientEvent::Type::Error:
          ++out.errors;
          break;
        default:
          break;
      }
    }
  }
}

SoakResult run_soak(const std::vector<synth::Recording>& workload,
                    const std::vector<std::vector<unsigned char>>& refs,
                    std::size_t total_sessions, std::size_t wave_width,
                    std::size_t workers) {
  ServerConfig cfg;
  cfg.fleet.workers = workers;
  cfg.rebalance_period_chunks = 0;  // phase 2 owns the rebalance story
  FleetServer server(cfg);
  SoakResult out;
  if (server.bind() != ServerStatus::Ok) {
    ++out.errors;
    return out;
  }
  server.start();

  FleetClient client;
  if (!client.connect_loopback(server.port(), /*want_acks=*/true)) {
    ++out.errors;
    return out;
  }
  const std::uint64_t window = client.server_hello().max_inflight;
  out.latency_ms.reserve(total_sessions *
                         (workload[0].ecg_mv.size() / kChunk + 1));

  const auto t0 = Clock::now();
  std::uint32_t next_id = 1;
  std::size_t launched = 0;
  while (launched < total_sessions && client.connected()) {
    const std::size_t n = std::min(wave_width, total_sessions - launched);
    std::vector<WaveStream> wave(n);
    for (std::size_t i = 0; i < n; ++i) {
      WaveStream& ws = wave[i];
      ws.id = next_id++;
      ws.ref = (launched + i) % workload.size();
      ws.rec = &workload[ws.ref];
      ws.chunks = ws.rec->ecg_mv.size() / kChunk;
      ws.send_ts.reserve(ws.chunks);
    }
    play_wave(client, wave, window, refs, out);
    launched += n;
  }
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  client.request_stats();
  std::vector<ClientEvent> events;
  const std::size_t at = client.wait_for(ClientEvent::Type::Stats, events);
  if (at != static_cast<std::size_t>(-1)) out.stats = events[at].stats;
  client.bye();
  server.stop();
  return out;
}

struct SkewResult {
  std::uint64_t migrations = 0;
  std::uint64_t divergent = 0;
  std::uint64_t shed = 0;
  std::uint64_t sessions = 0;
};

// Skewed-load rebalance proof: close every stream homed on worker 0,
// keep feeding the rest, and let the periodic rebalancer move load.
SkewResult run_skew(const std::vector<synth::Recording>& workload,
                    const std::vector<std::vector<unsigned char>>& refs) {
  ServerConfig cfg;
  cfg.fleet.workers = 2;
  cfg.rebalance_period_chunks = 32;
  cfg.rebalance_min_gap = 2;
  SkewResult out;
  FleetServer server(cfg);
  if (server.bind() != ServerStatus::Ok) return out;
  server.start();

  FleetClient client;
  if (!client.connect_loopback(server.port(), /*want_acks=*/true)) return out;
  const std::uint64_t window = client.server_hello().max_inflight;

  constexpr std::size_t kStreams = 16;
  std::vector<WaveStream> wave(kStreams);
  std::vector<std::uint32_t> homes(kStreams + 1, 0);
  for (std::size_t i = 0; i < kStreams; ++i) {
    WaveStream& ws = wave[i];
    ws.id = static_cast<std::uint32_t>(i + 1);
    ws.ref = i % workload.size();
    ws.rec = &workload[ws.ref];
    ws.chunks = ws.rec->ecg_mv.size() / kChunk;
    ws.send_ts.reserve(ws.chunks);
    client.open_stream(ws.id);
  }
  std::vector<ClientEvent> events;
  std::size_t acked_opens = 0;
  while (acked_opens < kStreams) {
    const std::size_t at = client.wait_for(ClientEvent::Type::OpenAck, events);
    if (at == static_cast<std::size_t>(-1)) return out;
    for (std::size_t i = at; i < events.size(); ++i)
      if (events[i].type == ClientEvent::Type::OpenAck) {
        homes[events[i].stream] = events[i].worker;
        ++acked_opens;
      }
  }

  // Skew: every worker-0 stream leaves at once; the survivors keep
  // streaming so worker 1 is now carrying all the load.
  std::vector<WaveStream> survivors;
  std::size_t closed_early = 0;
  for (WaveStream& ws : wave) {
    if (homes[ws.id] == 0) {
      client.close_stream(ws.id);
      ++closed_early;
    } else {
      survivors.push_back(std::move(ws));
    }
  }
  SoakResult fed;
  play_wave(client, survivors, window, refs, fed, /*open_streams=*/false);
  out.divergent = fed.divergent;
  out.shed = fed.shed;
  out.sessions = fed.sessions + closed_early;

  client.request_stats();
  const std::size_t at = client.wait_for(ClientEvent::Type::Stats, events);
  if (at != static_cast<std::size_t>(-1)) out.migrations = events[at].stats.migrations;
  client.bye();
  server.stop();
  return out;
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1, static_cast<std::size_t>(
                                      static_cast<double>(v.size()) * p))];
}

} // namespace

int main() {
  using namespace icgkit;

  const std::size_t total_sessions = env_size("ICGKIT_SERVER_SESSIONS", 10000);
  const std::size_t wave_width = env_size("ICGKIT_SERVER_WAVE", 64);
  const std::size_t distinct = 4;
  const double duration_s = 6.0;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t workers = std::min<std::size_t>(4, hw);

  report::banner(std::cout, "Fleet server loopback soak: " +
                                std::to_string(total_sessions) + " sessions");
  std::cout << "hardware threads: " << hw << ", fleet workers: " << workers
            << ", wave width: " << wave_width << ", recording: " << duration_s
            << " s @ 250 Hz, chunk: " << kChunk << " samples\n";

  synth::RecordingConfig rcfg;
  rcfg.duration_s = duration_s;
  rcfg.session_seed = 42;
  const std::vector<synth::Recording> workload =
      synth::make_fleet_workload(distinct, rcfg);
  std::vector<std::vector<unsigned char>> refs;
  refs.reserve(distinct);
  for (const synth::Recording& rec : workload) refs.push_back(direct_stream(rec));

  SoakResult soak = run_soak(workload, refs, total_sessions, wave_width, workers);
  const double p50 = percentile(soak.latency_ms, 0.50);
  const double p99 = percentile(soak.latency_ms, 0.99);

  report::Table table({"sessions", "chunks", "samples/s", "p50 ms", "p99 ms",
                       "shed", "divergent"});
  table.row()
      .add(static_cast<double>(soak.sessions), 0)
      .add(static_cast<double>(soak.chunks), 0)
      .add(soak.samples_per_sec(), 0)
      .add(p50, 3)
      .add(p99, 3)
      .add(static_cast<double>(soak.shed), 0)
      .add(static_cast<double>(soak.divergent), 0);
  table.print(std::cout);

  const bool soak_complete = soak.sessions == total_sessions && soak.errors == 0;
  const bool identical = soak.divergent == 0 && soak_complete;
  std::cout << (identical
                    ? "beat bytes: every session byte-identical to the direct feed\n"
                    : "FAIL: sessions diverged from the direct in-process feed\n");
  if (soak.shed != 0)
    std::cout << "FAIL: " << soak.shed
              << " SHEDs against a CACK-windowed client (flow-control bug)\n";

  SkewResult skew = run_skew(workload, refs);
  std::cout << "skewed-load rebalance: " << skew.migrations << " migrations, "
            << skew.divergent << " divergent post-migration streams, " << skew.shed
            << " sheds\n";

  const bool pass = identical && soak.shed == 0 && skew.migrations > 0 &&
                    skew.divergent == 0 && skew.shed == 0;

  std::ofstream json("BENCH_server.json");
  json << "{\n  \"sessions\": " << soak.sessions
       << ",\n  \"chunks\": " << soak.chunks
       << ",\n  \"samples\": " << soak.samples
       << ",\n  \"wall_s\": " << soak.wall_s
       << ",\n  \"samples_per_sec\": " << soak.samples_per_sec()
       << ",\n  \"latency_p50_ms\": " << p50
       << ",\n  \"latency_p99_ms\": " << p99
       << ",\n  \"shed_chunks\": " << soak.shed
       << ",\n  \"wire_errors\": " << soak.errors
       << ",\n  \"beat_bytes_identical\": " << (identical ? "true" : "false")
       << ",\n  \"server_shed_total\": " << soak.stats.shed_chunks
       << ",\n  \"server_sessions_closed\": " << soak.stats.sessions_closed
       << ",\n  \"skew_migrations\": " << skew.migrations
       << ",\n  \"skew_divergent\": " << skew.divergent
       << ",\n  \"skew_shed\": " << skew.shed
       << ",\n  \"hardware_threads\": " << hw
       << ",\n  \"fleet_workers\": " << workers
       << ",\n  \"wave_width\": " << wave_width
       << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "(written to BENCH_server.json)\n";

  return pass ? 0 : 1;
}
