// SIMD batch backend bench: lockstep multi-session lanes vs the scalar
// per-session pipeline, plus the fleet running in batch mode.
//
// Single-thread leg: the same 8-session workload is pushed through
//   (a) 8 scalar StreamingBeatPipelines fed back-to-back,
//   (b) two SessionBatch<4> groups,
//   (c) one SessionBatch<8> group,
// and the aggregate samples/sec compared. The win comes from SoA lanes
// amortizing every filter coefficient load across W sessions; correctness
// is not assumed — the bench serializes every beat stream and checks the
// batched outputs byte-identical to scalar before reporting speedups.
//
// Fleet leg: the same session count through SessionManager at a fixed
// worker count, scalar (batch_width 1) vs batched (batch_width 8).
//
// Acceptance is ISA-aware: byte identity is gated everywhere; the W=4
// floor and the relative W=8 >= W=4 floor arm on AVX2 or wider (the
// two-half PairLanes64 lowering keeps W=8 register-resident on plain
// AVX2, see dsp/simd.h), the absolute W=8 floor on AVX-512. Floors are
// end-to-end pipeline speedups, Amdahl-limited by the per-lane scalar
// beat tail; per-kernel lane wins are measured in bench_micro_kernels.
// A separate instrumented pass (SessionBatchBase::enable_profiling)
// measures the front-vs-tail wall-time split so the Amdahl denominator
// is reported, not inferred — the gated speedups come from the
// uninstrumented runs.
#include "core/batch.h"
#include "core/beat_serializer.h"
#include "core/fleet.h"
#include "core/pipeline.h"
#include "dsp/denormal.h"
#include "dsp/simd.h"
#include "report/table.h"
#include "synth/recording.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace icgkit;
using core::BeatRecord;
using core::FleetBeat;
using core::FleetConfig;
using core::SessionHandle;
using core::SessionManager;
using core::serialize_beat;

constexpr std::size_t kChunk = 64;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

struct Leg {
  double wall_s = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t beats = 0;
  std::uint64_t front_ns = 0, tail_ns = 0;  ///< instrumented runs only
  std::vector<std::vector<unsigned char>> streams;  ///< per-session bytes
  [[nodiscard]] double sps() const {
    return wall_s > 0.0 ? static_cast<double>(samples) / wall_s : 0.0;
  }
};

// (a) scalar reference: sessions fed back-to-back on one thread.
Leg run_scalar(const std::vector<synth::Recording>& workload, std::size_t sessions) {
  std::vector<core::StreamingBeatPipeline> pipes;
  pipes.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s)
    pipes.emplace_back(workload[0].fs, core::PipelineConfig{});
  std::vector<std::vector<BeatRecord>> beats(sessions);

  Leg leg;
  const std::size_t n = workload[0].ecg_mv.size();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t len = std::min(kChunk, n - i);
    for (std::size_t s = 0; s < sessions; ++s) {
      const synth::Recording& rec = workload[s % workload.size()];
      pipes[s].push_into(dsp::SignalView(rec.ecg_mv.data() + i, len),
                         dsp::SignalView(rec.z_ohm.data() + i, len), beats[s]);
      leg.samples += len;
    }
  }
  for (std::size_t s = 0; s < sessions; ++s) pipes[s].finish_into(beats[s]);
  const auto t1 = std::chrono::steady_clock::now();
  leg.wall_s = std::chrono::duration<double>(t1 - t0).count();

  leg.streams.resize(sessions);
  for (std::size_t s = 0; s < sessions; ++s)
    for (const BeatRecord& b : beats[s]) serialize_beat(b, leg.streams[s]);
  return leg;
}

// (b)/(c) batched: sessions grouped into lockstep SessionBatch<W> lanes.
// With `profile`, each batch accumulates its front/tail wall-time split
// (never combined with a gated throughput run — the clock reads perturb
// the numbers).
Leg run_batched(const std::vector<synth::Recording>& workload, std::size_t sessions,
                std::size_t width, bool profile = false) {
  const std::size_t groups = sessions / width;
  std::vector<std::unique_ptr<core::SessionBatchBase>> batches;
  std::vector<std::vector<std::uint8_t>> blobs(width);
  for (std::size_t g = 0; g < groups; ++g) {
    auto b = core::make_session_batch(width, workload[0].fs, core::PipelineConfig{});
    // Production entry point: lanes absorb fresh scalar checkpoints.
    for (std::size_t l = 0; l < width; ++l) {
      core::StreamingBeatPipeline fresh(workload[0].fs, core::PipelineConfig{});
      blobs[l] = fresh.checkpoint();
    }
    b->pack(blobs);
    b->enable_profiling(profile);
    batches.push_back(std::move(b));
  }
  std::vector<std::vector<BeatRecord>> beats(sessions);
  std::vector<const double*> ecg_ptrs(width), z_ptrs(width);

  Leg leg;
  const std::size_t n = workload[0].ecg_mv.size();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t len = std::min(kChunk, n - i);
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t l = 0; l < width; ++l) {
        const std::size_t s = g * width + l;
        const synth::Recording& rec = workload[s % workload.size()];
        ecg_ptrs[l] = rec.ecg_mv.data() + i;
        z_ptrs[l] = rec.z_ohm.data() + i;
      }
      batches[g]->push(ecg_ptrs.data(), z_ptrs.data(), len, beats.data() + g * width);
      leg.samples += len * width;
    }
  }
  for (std::size_t g = 0; g < groups; ++g)
    batches[g]->finish(beats.data() + g * width);
  const auto t1 = std::chrono::steady_clock::now();
  leg.wall_s = std::chrono::duration<double>(t1 - t0).count();

  for (const auto& b : batches) {
    leg.front_ns += b->front_ns();
    leg.tail_ns += b->tail_ns();
  }
  leg.streams.resize(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    leg.beats += beats[s].size();
    for (const BeatRecord& b : beats[s]) serialize_beat(b, leg.streams[s]);
  }
  return leg;
}

// Fleet leg: SessionManager at a fixed worker count, scalar vs batched.
Leg run_fleet(const std::vector<synth::Recording>& workload, std::size_t sessions,
              std::size_t workers, std::size_t batch_width) {
  FleetConfig cfg;
  cfg.workers = workers;
  cfg.max_chunk = kChunk;
  cfg.batch_width = batch_width;
  SessionManager fleet(workload[0].fs, cfg);
  std::vector<SessionHandle> handles;
  handles.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) handles.push_back(fleet.open());

  std::vector<FleetBeat> sink;
  sink.reserve(1 << 16);
  const std::size_t n = workload[0].ecg_mv.size();
  const auto t0 = std::chrono::steady_clock::now();
  fleet.start();
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t len = std::min(kChunk, n - i);
    for (std::size_t s = 0; s < sessions; ++s) {
      const synth::Recording& rec = workload[s % workload.size()];
      handles[s].push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                      dsp::SignalView(rec.z_ohm.data() + i, len), sink);
    }
  }
  fleet.run_to_completion(sink);
  const auto t1 = std::chrono::steady_clock::now();

  Leg leg;
  leg.wall_s = std::chrono::duration<double>(t1 - t0).count();
  leg.samples = fleet.total_samples();
  leg.streams.resize(sessions);
  for (const FleetBeat& fb : sink) {
    if (fb.end_of_session) continue;
    serialize_beat(fb.beat, leg.streams[fb.session]);
  }
  return leg;
}

} // namespace

int main() {
  using namespace icgkit;

  const std::size_t sessions = env_size("ICGKIT_BATCH_SESSIONS", 8);  // multiple of 8
  const std::size_t fleet_sessions = env_size("ICGKIT_BATCH_FLEET_SESSIONS", 64);
  const std::size_t fleet_workers = env_size("ICGKIT_BATCH_FLEET_WORKERS", 2);
  const double duration_s =
      static_cast<double>(env_size("ICGKIT_BATCH_DURATION_S", 20));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  report::banner(std::cout, "SIMD batch backend: lockstep lanes vs scalar sessions");
  std::cout << "lane ISA: " << dsp::lane_isa() << ", sessions: " << sessions
            << ", recording: " << duration_s << " s @ 250 Hz, chunk: " << kChunk
            << " samples\n";

  synth::RecordingConfig rcfg;
  rcfg.duration_s = duration_s;
  rcfg.session_seed = 42;
  const std::vector<synth::Recording> workload = synth::make_fleet_workload(4, rcfg);

  // Same FPU mode as the fleet's worker threads, so the scalar and
  // batched legs are compared under identical denormal handling.
  dsp::DenormalGuard denormal_guard;

  // Warm-up pass (untimed) so page faults and frequency ramp don't land
  // in whichever leg runs first.
  (void)run_scalar(workload, std::min<std::size_t>(sessions, 4));

  const Leg scalar = run_scalar(workload, sessions);
  const Leg w4 = run_batched(workload, sessions, 4);
  const Leg w8 = run_batched(workload, sessions, 8);

  const bool identical = w4.streams == scalar.streams && w8.streams == scalar.streams;
  const double speedup_w4 = scalar.sps() > 0.0 ? w4.sps() / scalar.sps() : 0.0;
  const double speedup_w8 = scalar.sps() > 0.0 ? w8.sps() / scalar.sps() : 0.0;

  report::Table table({"mode", "wall s", "samples/s", "speedup"});
  table.row().add(std::string("scalar")).add(scalar.wall_s, 3).add(scalar.sps(), 0).add(1.0, 2);
  table.row().add("batch W=4").add(w4.wall_s, 3).add(w4.sps(), 0).add(speedup_w4, 2);
  table.row().add("batch W=8").add(w8.wall_s, 3).add(w8.sps(), 0).add(speedup_w8, 2);
  table.print(std::cout);
  std::cout << (identical
                    ? "identity: batched beat streams byte-identical to scalar\n"
                    : "FAIL: batched beat streams differ from scalar\n");

  // Fleet leg: fixed worker count, scalar vs batch_width = 8.
  const Leg fleet_scalar = run_fleet(workload, fleet_sessions, fleet_workers, 1);
  const Leg fleet_batched = run_fleet(workload, fleet_sessions, fleet_workers, 8);
  const bool fleet_identical = fleet_batched.streams == fleet_scalar.streams;
  const double fleet_speedup =
      fleet_scalar.sps() > 0.0 ? fleet_batched.sps() / fleet_scalar.sps() : 0.0;

  report::Table ftable({"fleet mode", "wall s", "samples/s", "speedup"});
  ftable.row()
      .add(std::string("scalar"))
      .add(fleet_scalar.wall_s, 3)
      .add(fleet_scalar.sps(), 0)
      .add(1.0, 2);
  ftable.row()
      .add("batch W=8")
      .add(fleet_batched.wall_s, 3)
      .add(fleet_batched.sps(), 0)
      .add(fleet_speedup, 2);
  ftable.print(std::cout);
  std::cout << (fleet_identical
                    ? "identity: batched fleet byte-identical to scalar fleet\n"
                    : "FAIL: batched fleet output differs from scalar fleet\n");

  // Instrumented pass: front-vs-tail wall-time split of the W=8 batched
  // leg (separate run so the clock reads never land in the gated
  // numbers above).
  const Leg prof8 = run_batched(workload, sessions, 8, /*profile=*/true);
  const double front_s = static_cast<double>(prof8.front_ns) * 1e-9;
  const double tail_s = static_cast<double>(prof8.tail_ns) * 1e-9;
  const double phase_s = front_s + tail_s;
  const double front_fraction = phase_s > 0.0 ? front_s / phase_s : 0.0;
  const double tail_us_per_beat =
      prof8.beats > 0 ? tail_s * 1e6 / static_cast<double>(prof8.beats) : 0.0;
  report::Table ptable({"phase (W=8)", "wall s", "fraction"});
  ptable.row().add(std::string("lockstep front")).add(front_s, 3).add(front_fraction, 3);
  ptable.row().add("per-lane tail").add(tail_s, 3).add(1.0 - front_fraction, 3);
  ptable.print(std::cout);
  std::cout << "tail cost: " << tail_us_per_beat << " us/beat over " << prof8.beats
            << " beats\n";

  // Speedup floors are an ISA property. W=4 is one AVX2 register, so any
  // AVX2+ build is held to its floor. The two-half PairLanes64 lowering
  // keeps W=8 register-resident on plain AVX2 too, so the relative
  // W=8 >= W=4 floor arms on every AVX2+ build; the absolute W=8 floor
  // arms on AVX-512 (one zmm per lane vector). The floors are end-to-end
  // pipeline numbers, Amdahl-limited by the per-lane scalar beat tail;
  // the batched filter front itself measures ~4x (W=4, AVX2) to ~6x
  // (W=8, AVX-512) in bench_micro_kernels.
  // The W=4 floor is tiered: the fused front sped the SCALAR baseline up
  // on plain AVX2 too (the denominator moved), so the ratio floor there
  // is lower than on AVX-512 even though absolute batched throughput is
  // comparable.
  const std::string isa = dsp::lane_isa();
  const bool w4_enforced = isa == "avx2" || isa == "avx512";
  const bool w8_enforced = isa == "avx512";
  const bool w8_rel_enforced = isa == "avx2" || isa == "avx512";
  const double kMinSpeedupW4 = isa == "avx512" ? 3.0 : 2.5;
  constexpr double kMinSpeedupW8 = 3.0, kMinW8OverW4 = 1.0;
  const double w8_over_w4 = speedup_w4 > 0.0 ? speedup_w8 / speedup_w4 : 0.0;
  const bool w4_ok = speedup_w4 >= kMinSpeedupW4;
  const bool w8_ok = speedup_w8 >= kMinSpeedupW8;
  const bool w8_rel_ok = w8_over_w4 >= kMinW8OverW4;
  std::cout << "speedup acceptance: W=4 >= " << kMinSpeedupW4 << "x "
            << (w4_enforced ? (w4_ok ? "met" : "NOT MET") : "not enforced") << ", W=8 >= "
            << kMinSpeedupW8 << "x "
            << (w8_enforced ? (w8_ok ? "met" : "NOT MET")
                            : "not enforced (lane ISA: " + isa + ")")
            << ", W=8/W=4 >= " << kMinW8OverW4 << "x "
            << (w8_rel_enforced ? (w8_rel_ok ? "met" : "NOT MET") : "not enforced")
            << "\n";

  const bool pass = identical && fleet_identical && (w4_ok || !w4_enforced) &&
                    (w8_ok || !w8_enforced) && (w8_rel_ok || !w8_rel_enforced);

  std::ofstream json("BENCH_batch.json");
  json << "{\n  \"simd\": \"" << isa << "\",\n  \"hardware_threads\": " << hw
       << ",\n  \"sessions\": " << sessions << ",\n  \"recording_s\": " << duration_s
       << ",\n  \"chunk\": " << kChunk
       << ",\n  \"scalar_samples_per_sec\": " << scalar.sps()
       << ",\n  \"w4_samples_per_sec\": " << w4.sps()
       << ",\n  \"w8_samples_per_sec\": " << w8.sps()
       << ",\n  \"speedup_w4\": " << speedup_w4
       << ",\n  \"speedup_w8\": " << speedup_w8
       << ",\n  \"w8_over_w4\": " << w8_over_w4
       << ",\n  \"acceptance_min_speedup_w4\": " << kMinSpeedupW4
       << ",\n  \"acceptance_min_speedup_w8\": " << kMinSpeedupW8
       << ",\n  \"acceptance_min_w8_over_w4\": " << kMinW8OverW4
       << ",\n  \"w4_enforced\": " << (w4_enforced ? "true" : "false")
       << ",\n  \"w8_enforced\": " << (w8_enforced ? "true" : "false")
       << ",\n  \"w8_rel_enforced\": " << (w8_rel_enforced ? "true" : "false")
       << ",\n  \"batch_identical\": " << (identical ? "true" : "false")
       << ",\n  \"profile\": {\"width\": 8, \"front_s\": " << front_s
       << ", \"tail_s\": " << tail_s << ", \"front_fraction\": " << front_fraction
       << ", \"tail_fraction\": " << 1.0 - front_fraction
       << ", \"beats\": " << prof8.beats
       << ", \"tail_us_per_beat\": " << tail_us_per_beat << "}"
       << ",\n  \"fleet\": {\"sessions\": " << fleet_sessions
       << ", \"workers\": " << fleet_workers
       << ", \"scalar_samples_per_sec\": " << fleet_scalar.sps()
       << ", \"batched_samples_per_sec\": " << fleet_batched.sps()
       << ", \"speedup\": " << fleet_speedup
       << ", \"identical\": " << (fleet_identical ? "true" : "false") << "}"
       << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "(written to BENCH_batch.json)\n";

  return pass ? 0 : 1;
}
