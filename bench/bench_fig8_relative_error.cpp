// Reproduces Fig 8a-c: relative error of the mean bioimpedance between
// arm positions (paper equations 1-3):
//   e21 = (Z2 - Z1)/Z2,  e23 = (Z2 - Z3)/Z2,  e31 = (Z3 - Z1)/Z3.
// Paper findings: the largest overall error is e21, the smallest e31, and
// the worst case stays below 20 %.
#include "report/table.h"
#include "repro_common.h"

#include <cmath>
#include <iostream>

int main() {
  using namespace icgkit;
  const auto sessions = bench::study_sessions();

  struct ErrorSet {
    const char* name;
    synth::Position num;   // numerator reference position
    synth::Position sub;   // subtracted position
  };
  const ErrorSet sets[] = {
      {"e21 = (Z2-Z1)/Z2", synth::Position::ArmsOutstretched, synth::Position::HoldToChest},
      {"e23 = (Z2-Z3)/Z2", synth::Position::ArmsOutstretched, synth::Position::ArmsDown},
      {"e31 = (Z3-Z1)/Z3", synth::Position::ArmsDown, synth::Position::HoldToChest},
  };

  double overall[3] = {0.0, 0.0, 0.0};
  double worst = 0.0;
  int set_idx = 0;
  for (const auto& set : sets) {
    report::banner(std::cout, std::string("Fig 8: ") + set.name);
    std::vector<std::string> headers{"f (kHz)"};
    for (const auto& s : sessions) headers.push_back(s.subject.name);
    report::Table table(headers);
    for (const double f : synth::kInjectionFrequenciesHz) {
      table.row().add(f / 1e3, 0);
      for (const auto& s : sessions) {
        const double z_ref =
            mean_bioimpedance(measure_device(s.subject, s.source, f, set.num));
        const double z_sub =
            mean_bioimpedance(measure_device(s.subject, s.source, f, set.sub));
        const double e = dsp::relative_error(z_ref, z_sub);
        overall[set_idx] += std::abs(e);
        worst = std::max(worst, std::abs(e));
        table.add(e, 4);
      }
    }
    table.print(std::cout);
    ++set_idx;
  }

  std::cout << "\nMean |error|: e21=" << overall[0] / 20.0 << "  e23=" << overall[1] / 20.0
            << "  e31=" << overall[2] / 20.0 << "\nWorst-case |error| = " << worst
            << (worst < 0.20 ? "  (< 20 %, as the paper reports)" : "  (EXCEEDS 20 %!)")
            << '\n';
  const bool ordering = overall[0] > overall[1] && overall[1] > overall[2];
  std::cout << "Ordering (paper: e21 largest, e31 smallest): "
            << (ordering ? "REPRODUCED" : "MISMATCH") << '\n';
  return (worst < 0.20 && ordering) ? 0 : 1;
}
