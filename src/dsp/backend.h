// Numeric backends for the streaming kernel layer.
//
// Every stateful streaming kernel (StreamingSos/Fir/ZeroPhaseFir, the
// moving/morphology kernels, the derivative stages, Pan-Tompkins'
// threshold state and the pipeline stage compositions) is a template over
// one of these policy types, so the same control flow runs either in
// double precision or in the Q-format integer arithmetic of the paper's
// FPU-less STM32L151 target (a software double MAC costs ~70 cycles
// there, a Q31 MAC ~4; see platform::McuConfig).
//
//   DoubleBackend  samples/accumulators are double and every op is the
//                  plain floating-point expression the kernels have
//                  always used: instantiating a kernel with this backend
//                  is *bit-identical* to the pre-refactor implementation
//                  (the streaming-equivalence tests pin this down).
//   Q31Backend     samples are Q1.31 integers against a per-stage full
//                  scale, coefficients Q2.30, accumulators 64-bit with
//                  saturation on narrowing -- the firmware arithmetic.
//                  Constant factors that are powers of two become
//                  arithmetic shifts; physical-unit factors (the fs in a
//                  derivative) are absorbed into the stage's nominal
//                  full scale instead of being multiplied per sample
//                  (that is what the `Rescale` hooks below encode).
//
// Per-stage scaling policy: a fixed-point stage tracks "what one unit of
// full scale means" as a plain double on the side (`Q31ScalingPolicy`,
// used by the fixed beat pipeline); the integer arithmetic itself never
// sees it. Ops that change the nominal scale take the double factor (for
// the double backend) *and* the power-of-two shift (for the fixed
// backend) so each instantiation applies its own form.
#pragma once

#include "dsp/simd.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "support/contract.h"

namespace icgkit::dsp {

/// Double-precision backend: the reference arithmetic. All ops reduce to
/// the exact expressions the scalar kernels used before the backend
/// refactor (preserving evaluation order, so results are bit-identical).
struct DoubleBackend {
  using sample_t = double; ///< one signal sample
  using acc_t = double;    ///< wide accumulator (sums, filter state)
  using coeff_t = double;  ///< filter coefficient
  static constexpr bool kFixed = false;
  static constexpr std::size_t kLanes = 1;

  // -- conversions (the double backend is its own real representation) --
  static sample_t from_real(double v) { return v; }
  static double to_real(sample_t v) { return v; }
  static coeff_t coeff(double c) { return c; }

  // -- accumulator ops --
  static acc_t acc_zero() { return 0.0; }
  static acc_t widen(sample_t v) { return v; }
  static acc_t acc_add(acc_t a, sample_t v) { return a + v; }
  static acc_t acc_sub(acc_t a, sample_t v) { return a - v; }
  static acc_t mac(acc_t a, coeff_t c, sample_t v) { return a + c * v; }
  static sample_t narrow(acc_t a) { return a; }
  /// mean over n accumulated samples: a / n.
  static sample_t mean(acc_t a, std::size_t n) { return a / static_cast<double>(n); }
  /// (a / 2) / n -- the Pan-Tompkins noise-floor learning expression.
  static sample_t halved_mean(acc_t a, std::size_t n) {
    return 0.5 * a / static_cast<double>(n);
  }

  // -- sample ops --
  static sample_t add(sample_t a, sample_t b) { return a + b; }
  static sample_t sub(sample_t a, sample_t b) { return a - b; }
  static sample_t neg(sample_t v) { return -v; }
  static sample_t abs(sample_t v) { return std::abs(v); }
  static sample_t twice(sample_t v) { return 2.0 * v; }
  static sample_t half(sample_t v) { return v * 0.5; }
  static sample_t quarter(sample_t v) { return 0.25 * v; }
  static sample_t eighth(sample_t v) { return v / 8.0; }
  /// Normalized square (the Pan-Tompkins energy nonlinearity).
  static sample_t square(sample_t v) { return v * v; }
  /// Odd reflection about `edge`: 2*edge - v (filtfilt edge synthesis).
  static sample_t odd_reflect(sample_t edge, sample_t v) { return 2.0 * edge - v; }
  /// Scale change: double multiplies the physical factor, fixed shifts by
  /// `fx_shift` (the caller's scaling policy tracks what that does to the
  /// stage's nominal full scale).
  static sample_t rescale(sample_t v, double real_gain, int fx_shift) {
    (void)fx_shift;
    return v * real_gain;
  }
  /// Exponential update toward v with weight 2^-k: (1/2^k) v + (1-1/2^k) old
  /// (Pan-Tompkins SPKI/NPKI updates; k = 3 and 2 in the paper).
  static sample_t ewma_shift(sample_t old, sample_t v, int k) {
    const double w = 1.0 / static_cast<double>(1 << k);
    return w * v + (1.0 - w) * old;
  }
  /// Linear interpolation a + (b - a) * (num/den), num in [0, den].
  static sample_t lerp(sample_t a, sample_t b, std::size_t num, std::size_t den) {
    const double frac = static_cast<double>(num) / static_cast<double>(den);
    return a + (b - a) * frac;
  }

  // -- biquad section (transposed direct form II), the StreamingSos core --
  struct SosState {
    acc_t s1 = 0.0, s2 = 0.0;
  };
  /// One section step. Sections exchange wide (acc_t) values; the cascade
  /// narrows once at the end (see BasicStreamingSos::tick).
  static acc_t biquad_tick(coeff_t b0, coeff_t b1, coeff_t b2, coeff_t a1,
                           coeff_t a2, SosState& st, acc_t v) {
    const double out = b0 * v + st.s1;
    st.s1 = b1 * v - a1 * out + st.s2;
    st.s2 = b2 * v - a2 * out;
    return out;
  }
  /// Cascade output gain. The double backend applies it as the final
  /// multiply it always was; the fixed backend folds it into the first
  /// section's numerator at quantization time (see BasicStreamingSos).
  static sample_t apply_gain(sample_t v, double gain) { return v * gain; }
};

/// Q1.31 fixed-point backend: 32-bit samples, Q2.30 coefficients, 64-bit
/// accumulation, saturating narrowing -- the Cortex-M3 arithmetic the
/// paper's firmware would use (SMULL/SSAT instruction semantics).
struct Q31Backend {
  using sample_t = std::int32_t;
  using acc_t = std::int64_t;
  using coeff_t = std::int32_t; ///< Q2.30
  static constexpr bool kFixed = true;
  static constexpr std::size_t kLanes = 1;

  static constexpr double kOne = 2147483648.0;        // 2^31
  static constexpr double kCoeffOne = 1073741824.0;   // 2^30
  static constexpr acc_t kMax = 2147483647;
  static constexpr acc_t kMin = -2147483648LL;

  static sample_t saturate(acc_t v) {
    return static_cast<sample_t>(v > kMax ? kMax : (v < kMin ? kMin : v));
  }

  // -- conversions --
  /// Real value in [-1, 1) of stage full scale -> Q1.31 (saturating).
  static sample_t from_real(double v) {
    return saturate(static_cast<acc_t>(std::llround(v * kOne)));
  }
  static double to_real(sample_t v) { return static_cast<double>(v) / kOne; }
  /// Coefficient in [-2, 2) -> Q2.30. Throws outside the representable
  /// range, like the original FixedSosFilter quantizer.
  static coeff_t coeff(double c) {
    if (!(c >= -2.0 && c < 2.0))
      ICGKIT_THROW(std::invalid_argument("Q31Backend: coefficient outside Q2.30 range"));
    return static_cast<coeff_t>(std::llround(c * kCoeffOne));
  }

  // -- accumulator ops --
  static acc_t acc_zero() { return 0; }
  static acc_t widen(sample_t v) { return v; }
  static acc_t acc_add(acc_t a, sample_t v) { return a + v; }
  static acc_t acc_sub(acc_t a, sample_t v) { return a - v; }
  /// Q2.30 coefficient times Q1.31 sample, accumulated at Q1.31: the
  /// product is Q3.61, >> 30 brings it back to Q1.31 in the 64-bit
  /// accumulator (the headroom absorbs intermediate cascade overshoot).
  static acc_t mac(acc_t a, coeff_t c, sample_t v) {
    return a + ((static_cast<acc_t>(c) * v) >> 30);
  }
  static sample_t narrow(acc_t a) { return saturate(a); }
  static sample_t mean(acc_t a, std::size_t n) {
    return saturate(a / static_cast<acc_t>(n));
  }
  static sample_t halved_mean(acc_t a, std::size_t n) {
    return saturate((a >> 1) / static_cast<acc_t>(n));
  }

  // -- sample ops (64-bit intermediates, saturate on the way out) --
  static sample_t add(sample_t a, sample_t b) {
    return saturate(static_cast<acc_t>(a) + b);
  }
  static sample_t sub(sample_t a, sample_t b) {
    return saturate(static_cast<acc_t>(a) - b);
  }
  static sample_t neg(sample_t v) { return saturate(-static_cast<acc_t>(v)); }
  static sample_t abs(sample_t v) {
    return saturate(v < 0 ? -static_cast<acc_t>(v) : static_cast<acc_t>(v));
  }
  static sample_t twice(sample_t v) { return saturate(static_cast<acc_t>(v) << 1); }
  static sample_t half(sample_t v) { return static_cast<sample_t>(v >> 1); }
  static sample_t quarter(sample_t v) { return static_cast<sample_t>(v >> 2); }
  static sample_t eighth(sample_t v) { return static_cast<sample_t>(v >> 3); }
  /// Q1.31 x Q1.31 -> Q1.31: 64-bit product >> 31.
  static sample_t square(sample_t v) {
    return saturate((static_cast<acc_t>(v) * v) >> 31);
  }
  static sample_t odd_reflect(sample_t edge, sample_t v) {
    return saturate((static_cast<acc_t>(edge) << 1) - v);
  }
  /// Power-of-two gain; the physical factor only moves the stage's
  /// nominal full scale (tracked by the caller's scaling policy).
  static sample_t rescale(sample_t v, double real_gain, int fx_shift) {
    (void)real_gain;
    if (fx_shift >= 0) return saturate(static_cast<acc_t>(v) << fx_shift);
    return static_cast<sample_t>(v >> (-fx_shift));
  }
  static sample_t ewma_shift(sample_t old, sample_t v, int k) {
    // old + (v - old) * 2^-k without a multiply, the firmware idiom.
    const acc_t o = old;
    return saturate(o + ((static_cast<acc_t>(v) - o) >> k));
  }
  static sample_t lerp(sample_t a, sample_t b, std::size_t num, std::size_t den) {
    const acc_t d = static_cast<acc_t>(b) - a;
    return saturate(a + d * static_cast<acc_t>(num) / static_cast<acc_t>(den));
  }

  // -- biquad section --
  struct SosState {
    acc_t s1 = 0, s2 = 0;
  };
  static acc_t biquad_tick(coeff_t b0, coeff_t b1, coeff_t b2, coeff_t a1,
                           coeff_t a2, SosState& st, acc_t v) {
    // Same Q2.30 x Q1.31 >> 30 MAC chain as the original FixedSosFilter
    // cascade_step; values stay 64-bit between sections so intermediate
    // overshoot keeps its headroom, and only the cascade's final output
    // saturates to Q1.31 (the Cortex-M SSAT semantics).
    const acc_t out = st.s1 + ((static_cast<acc_t>(b0) * v) >> 30);
    st.s1 = st.s2 + ((static_cast<acc_t>(b1) * v) >> 30) -
            ((static_cast<acc_t>(a1) * out) >> 30);
    st.s2 = ((static_cast<acc_t>(b2) * v) >> 30) -
            ((static_cast<acc_t>(a2) * out) >> 30);
    return out;
  }
  static sample_t apply_gain(sample_t v, double gain) {
    (void)gain; // folded into the first section's numerator at quantization
    return v;
  }
};

/// SIMD batch backend: W double lanes advancing in lockstep, one lane
/// per co-scheduled session. Samples and accumulators are LaneVec<W>
/// (structure-of-arrays); coefficients stay scalar double, so a batched
/// kernel loads each coefficient once and broadcasts it across all W
/// sessions -- the cross-session amortization this backend exists for.
///
/// Identity contract: every op is the DoubleBackend expression applied
/// elementwise, in the same order, with no horizontal arithmetic. A
/// batched kernel whose control flow is lane-uniform (all the linear
/// filters and moving stats are; see core::SessionBatch for how the
/// divergent stages are handled) therefore produces in lane i the exact
/// bytes the scalar double kernel produces for session i. The
/// batch-equivalence tests enforce byte identity, not an ULP band.
template <std::size_t W>
struct BatchBackend {
  using sample_t = LaneVec<W>; ///< W sessions' samples, SoA
  using acc_t = LaneVec<W>;    ///< wide state is per-lane double, like DoubleBackend
  using coeff_t = double;      ///< scalar: loaded once, broadcast across lanes
  static constexpr bool kFixed = false;
  static constexpr std::size_t kLanes = W;

  // -- conversions --
  static sample_t from_real(double v) { return sample_t::broadcast(v); }
  /// No single real value represents W lanes; lane extraction is explicit
  /// (LaneVec::lane) so a silent lane-0 projection can't hide in kernel
  /// code. to_real is deliberately absent.
  static coeff_t coeff(double c) { return c; }

  // -- accumulator ops (elementwise DoubleBackend expressions) --
  static acc_t acc_zero() { return acc_t{}; }
  static acc_t widen(sample_t v) { return v; }
  static acc_t acc_add(acc_t a, sample_t v) { return a + v; }
  static acc_t acc_sub(acc_t a, sample_t v) { return a - v; }
  static acc_t mac(acc_t a, coeff_t c, sample_t v) { return a + c * v; }
  static sample_t narrow(acc_t a) { return a; }
  static sample_t mean(acc_t a, std::size_t n) { return a / static_cast<double>(n); }
  static sample_t halved_mean(acc_t a, std::size_t n) {
    return 0.5 * a / static_cast<double>(n);
  }

  // -- sample ops --
  static sample_t add(sample_t a, sample_t b) { return a + b; }
  static sample_t sub(sample_t a, sample_t b) { return a - b; }
  static sample_t neg(sample_t v) { return -v; }
  static sample_t abs(sample_t v) {
    sample_t r = v;
    for (std::size_t i = 0; i < W; ++i) r.set_lane(i, std::abs(r.lane(i)));
    return r;
  }
  static sample_t twice(sample_t v) { return 2.0 * v; }
  static sample_t half(sample_t v) { return v * 0.5; }
  static sample_t quarter(sample_t v) { return 0.25 * v; }
  static sample_t eighth(sample_t v) { return v / 8.0; }
  static sample_t square(sample_t v) { return v * v; }
  static sample_t odd_reflect(sample_t edge, sample_t v) { return 2.0 * edge - v; }
  static sample_t rescale(sample_t v, double real_gain, int fx_shift) {
    (void)fx_shift;
    return v * real_gain;
  }
  static sample_t ewma_shift(sample_t old, sample_t v, int k) {
    const double w = 1.0 / static_cast<double>(1 << k);
    return w * v + (1.0 - w) * old;
  }
  static sample_t lerp(sample_t a, sample_t b, std::size_t num, std::size_t den) {
    const double frac = static_cast<double>(num) / static_cast<double>(den);
    return a + (b - a) * frac;
  }

  // -- biquad section --
  struct SosState {
    acc_t s1{}, s2{};
  };
  static acc_t biquad_tick(coeff_t b0, coeff_t b1, coeff_t b2, coeff_t a1,
                           coeff_t a2, SosState& st, acc_t v) {
    const acc_t out = b0 * v + st.s1;
    st.s1 = b1 * v - a1 * out + st.s2;
    st.s2 = b2 * v - a2 * out;
    return out;
  }
  static sample_t apply_gain(sample_t v, double gain) { return v * gain; }
};

/// True for backends whose sample_t carries multiple lockstep lanes.
template <typename B>
inline constexpr bool is_batch_backend_v = (B::kLanes > 1);

/// Per-stage Q-format scaling of the fixed beat pipeline: what one unit
/// of Q1.31 full scale means at each boundary, and the power-of-two gain
/// applied where the double pipeline multiplies by fs.
///
/// Stage scales that follow from these choices (defaults, fs = 250 Hz):
///   raw ECG          Q1.31 @ 16 mV        (hand ECG stays well inside)
///   cleaned ECG      Q1.31 @ 16 mV        (morphology/FIR are gain <= 1)
///   QRS feature      (counts)^2           (scale cancels in thresholds)
///   raw impedance Z  Q1.31 @ 1024 Ohm     (covers hand-to-hand Z0)
///   ICG = -dZ/dt     Q1.31 @ 1024*250/2^14 = 15.6 Ohm/s
/// The derivative stage's fs multiply is absorbed into the ICG full
/// scale; `icg_gain_log2` left-shifts the difference so the tiny
/// sample-to-sample impedance deltas keep ~27 significant bits (the
/// delineator's third-derivative rules need them), while the 15.6 Ohm/s
/// full scale still clears the 10 Ohm/s physiological ceiling the
/// quality gate enforces. The sweep in bench_fixed_pipeline pins the
/// trade-off: one notch higher (7.8 Ohm/s) clips real beats and costs
/// whole-sample delineation errors, two notches lower costs the
/// precision the X-point rules need.
struct Q31ScalingPolicy {
  double ecg_fullscale_mv = 16.0;
  double z_fullscale_ohm = 1024.0;
  int icg_gain_log2 = 14;

  /// Full scale of the conditioned ICG stream in Ohm/s.
  [[nodiscard]] double icg_fullscale(double fs) const {
    return z_fullscale_ohm * fs / static_cast<double>(1 << icg_gain_log2);
  }
};

} // namespace icgkit::dsp
