// Butterworth IIR design via analog prototype + bilinear transform.
//
// The paper's ICG chain uses a zero-phase low-pass Butterworth with cut-off
// 20 Hz (Section IV-A, "ICG filtering"). `butterworth_lowpass(4, 20, fs)`
// plus `filtfilt_sos` reproduces that chain (the paper does not state the
// order; 4 is the common choice for ICG smoothing and is what we calibrate
// against — the effective zero-phase attenuation is then 8th order).
#pragma once

#include "dsp/biquad.h"
#include "dsp/types.h"

#include <cstddef>

namespace icgkit::dsp {

/// Designs an `order`-pole Butterworth low-pass as an SOS cascade.
/// `order` >= 1; odd orders place one real pole in a degenerate section.
SosFilter butterworth_lowpass(std::size_t order, double cutoff_hz, SampleRate fs);

/// Designs an `order`-pole Butterworth high-pass as an SOS cascade.
SosFilter butterworth_highpass(std::size_t order, double cutoff_hz, SampleRate fs);

/// Band-pass as a cascade of an `order`-pole high-pass at f1 and an
/// `order`-pole low-pass at f2 (total 2*order poles). This is not the
/// classical LP->BP pole transform but is simpler, well-conditioned, and
/// adequate when f2/f1 is large, as in all biosignal bands used here.
SosFilter butterworth_bandpass(std::size_t order, double f1_hz, double f2_hz, SampleRate fs);

} // namespace icgkit::dsp
