#include "dsp/window.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace icgkit::dsp {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Generalized cosine window: w[i] = a0 - a1*cos(2*pi*i/(n-1)) + a2*cos(4*pi*i/(n-1)).
Signal cosine_window(std::size_t n, double a0, double a1, double a2) {
  Signal w(n);
  if (n == 1) {
    w[0] = 1.0;
    return w;
  }
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / denom;
    w[i] = a0 - a1 * std::cos(kTwoPi * t) + a2 * std::cos(2.0 * kTwoPi * t);
  }
  return w;
}
} // namespace

Signal make_window(WindowKind kind, std::size_t n) {
  if (n == 0) return {};
  switch (kind) {
    case WindowKind::Rectangular:
      return Signal(n, 1.0);
    case WindowKind::Hamming:
      return cosine_window(n, 0.54, 0.46, 0.0);
    case WindowKind::Hann:
      return cosine_window(n, 0.5, 0.5, 0.0);
    case WindowKind::Blackman:
      return cosine_window(n, 0.42, 0.5, 0.08);
  }
  return Signal(n, 1.0); // unreachable for valid enum values
}

void apply_window(Signal& x, SignalView window) {
  assert(x.size() == window.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= window[i];
}

} // namespace icgkit::dsp
