// Zero-phase (forward-backward) filtering.
//
// Both of the paper's cleaning chains are explicitly *zero-phase*
// (Section IV-A): B, C and X are timing features, so any group delay
// biases PEP and LVET directly. Forward-backward application squares the
// magnitude response and cancels the phase exactly.
//
// Edge handling follows the standard practice (MATLAB filtfilt): the
// signal is extended at both ends by `pad` samples of odd reflection
// (2*x[0] - x[k]) so the filter state is warmed up before the true data
// begins, then the extension is discarded.
#pragma once

#include "dsp/biquad.h"
#include "dsp/fir_design.h"
#include "dsp/types.h"

namespace icgkit::dsp {

/// Zero-phase application of an SOS cascade. `pad` defaults to
/// 3 * order + 1 samples (clamped to the signal length - 1).
Signal filtfilt_sos(const SosFilter& filter, SignalView x);

/// Zero-phase application of an FIR filter. Pad defaults to 3 * taps.
Signal filtfilt_fir(const FirCoefficients& fir, SignalView x);

/// Odd-reflection padding used by the filtfilt implementations; exposed
/// for testing. Returns pad + x + pad samples.
Signal odd_reflect_pad(SignalView x, std::size_t pad);

} // namespace icgkit::dsp
