// Zero-phase (forward-backward) filtering.
//
// Both of the paper's cleaning chains are explicitly *zero-phase*
// (Section IV-A): B, C and X are timing features, so any group delay
// biases PEP and LVET directly. Forward-backward application squares the
// magnitude response and cancels the phase exactly.
//
// Edge handling follows the standard practice (MATLAB filtfilt): the
// signal is extended at both ends by `pad` samples of odd reflection
// (2*x[0] - x[k]) so the filter state is warmed up before the true data
// begins, then the extension is discarded.
#pragma once

#include "dsp/biquad.h"
#include "dsp/fir_design.h"
#include "dsp/types.h"

namespace icgkit::dsp {

/// Zero-phase application of an SOS cascade. `pad` defaults to
/// 3 * order + 1 samples (clamped to the signal length - 1).
Signal filtfilt_sos(const SosFilter& filter, SignalView x);

/// Zero-phase application of an FIR filter. Pad defaults to 3 * taps.
Signal filtfilt_fir(const FirCoefficients& fir, SignalView x);

/// Odd-reflection padding used by the filtfilt implementations; exposed
/// for testing. Returns pad + x + pad samples.
Signal odd_reflect_pad(SignalView x, std::size_t pad);

// ---------------------------------------------------------------------------
// Streaming zero-phase filtering
// ---------------------------------------------------------------------------
//
// filtfilt needs the whole signal (it runs backwards), so a streaming
// engine cannot use it. The single-pass equivalent: convolve with the
// *symmetric* kernel g = h (*) reverse(h), whose magnitude response is
// |H(f)|^2 -- exactly the filtfilt magnitude -- and whose phase is exactly
// linear with an integer group delay of half the kernel length. A causal
// implementation therefore produces the zero-phase output delayed by a
// known constant, which the caller compensates by re-indexing (out[i]
// corresponds to input sample i; it is simply emitted delay() samples
// later). That is the documented group-delay compensation used throughout
// the streaming pipeline.

/// Symmetric zero-phase-equivalent kernel of an FIR filter:
/// g = h (*) reverse(h), length 2*taps-1, |G(f)| = |H(f)|^2. Interior
/// samples of a causal convolution with g match filtfilt_fir exactly (up
/// to floating-point summation order).
FirCoefficients zero_phase_fir_kernel(const FirCoefficients& fir);

/// Symmetric FIR approximation of the zero-phase response of an SOS
/// cascade: g[k] = sum_n h[n] h[n+|k|], the autocorrelation of the causal
/// impulse response (so |G(f)| = |H(f)|^2), truncated once the tail falls
/// below `tol` times the peak. Longer cascades with slow poles produce
/// longer kernels; `max_half_len` caps the half-length.
FirCoefficients zero_phase_sos_kernel(const SosFilter& filter, double tol = 1e-6,
                                      std::size_t max_half_len = 4096);

/// Single-pass streaming filter for a symmetric (odd-length) kernel with
/// group-delay compensation and filtfilt-style odd-reflection edges.
///
/// Feeding x[0..n) through push() and then finish() produces exactly n
/// output samples, where out[i] is aligned with input x[i] (the constant
/// group delay of (len-1)/2 samples is absorbed: out[i] is emitted once
/// x[i + delay()] has been consumed, and finish() flushes the tail by
/// synthesizing the same odd-reflection extension filtfilt uses). The
/// result is chunk-size invariant: any segmentation of the input yields
/// bit-identical output.
class StreamingZeroPhaseFir {
 public:
  /// `kernel` must have odd length and be symmetric (as produced by
  /// zero_phase_fir_kernel / zero_phase_sos_kernel).
  explicit StreamingZeroPhaseFir(FirCoefficients kernel);

  /// Feeds one sample; appends any newly aligned outputs to `out`.
  void push(Sample x, Signal& out);
  /// Feeds a chunk; appends newly aligned outputs to `out`.
  void process_chunk(SignalView x, Signal& out);
  /// End of stream: emits the remaining delay() samples (or, for streams
  /// shorter than delay(), the best-effort short-signal output).
  void finish(Signal& out);
  void reset();

  /// Group delay in samples: out[i] is emitted upon input i + delay().
  [[nodiscard]] std::size_t delay() const { return half_; }
  [[nodiscard]] const FirCoefficients& kernel() const { return kernel_; }

 private:
  void feed_extended(Sample z, Signal& out);

  FirCoefficients kernel_;
  std::size_t half_;          ///< (len - 1) / 2 == group delay
  Signal line_;               ///< circular delay line, size == kernel length
  std::size_t head_ = 0;      ///< next write slot in line_
  std::size_t fed_ = 0;       ///< extended-stream samples consumed
  std::size_t raw_count_ = 0; ///< raw input samples consumed
  Signal warmup_;             ///< first half_+1 raw samples (prefix synthesis)
  Signal tail_;               ///< last half_+1 raw samples (suffix synthesis)
  bool warm_ = false;         ///< prefix emitted, steady state reached
};

} // namespace icgkit::dsp
