// Zero-phase (forward-backward) filtering.
//
// Both of the paper's cleaning chains are explicitly *zero-phase*
// (Section IV-A): B, C and X are timing features, so any group delay
// biases PEP and LVET directly. Forward-backward application squares the
// magnitude response and cancels the phase exactly.
//
// Edge handling follows the standard practice (MATLAB filtfilt): the
// signal is extended at both ends by `pad` samples of odd reflection
// (2*x[0] - x[k]) so the filter state is warmed up before the true data
// begins, then the extension is discarded.
#pragma once

#include "dsp/backend.h"
#include "dsp/biquad.h"
#include "dsp/fir_design.h"
#include "dsp/types.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "support/contract.h"

namespace icgkit::dsp {

/// Zero-phase application of an SOS cascade. `pad` defaults to
/// 3 * order + 1 samples (clamped to the signal length - 1).
Signal filtfilt_sos(const SosFilter& filter, SignalView x);

/// Zero-phase application of an FIR filter. Pad defaults to 3 * taps.
Signal filtfilt_fir(const FirCoefficients& fir, SignalView x);

/// Odd-reflection padding used by the filtfilt implementations; exposed
/// for testing. Returns pad + x + pad samples.
Signal odd_reflect_pad(SignalView x, std::size_t pad);

// ---------------------------------------------------------------------------
// Streaming zero-phase filtering
// ---------------------------------------------------------------------------
//
// filtfilt needs the whole signal (it runs backwards), so a streaming
// engine cannot use it. The single-pass equivalent: convolve with the
// *symmetric* kernel g = h (*) reverse(h), whose magnitude response is
// |H(f)|^2 -- exactly the filtfilt magnitude -- and whose phase is exactly
// linear with an integer group delay of half the kernel length. A causal
// implementation therefore produces the zero-phase output delayed by a
// known constant, which the caller compensates by re-indexing (out[i]
// corresponds to input sample i; it is simply emitted delay() samples
// later). That is the documented group-delay compensation used throughout
// the streaming pipeline.

/// Symmetric zero-phase-equivalent kernel of an FIR filter:
/// g = h (*) reverse(h), length 2*taps-1, |G(f)| = |H(f)|^2. Interior
/// samples of a causal convolution with g match filtfilt_fir exactly (up
/// to floating-point summation order).
FirCoefficients zero_phase_fir_kernel(const FirCoefficients& fir);

/// Symmetric FIR approximation of the zero-phase response of an SOS
/// cascade: g[k] = sum_n h[n] h[n+|k|], the autocorrelation of the causal
/// impulse response (so |G(f)| = |H(f)|^2), truncated once the tail falls
/// below `tol` times the peak. Longer cascades with slow poles produce
/// longer kernels; `max_half_len` caps the half-length.
FirCoefficients zero_phase_sos_kernel(const SosFilter& filter, double tol = 1e-6,
                                      std::size_t max_half_len = 4096);

/// Single-pass streaming filter for a symmetric (odd-length) kernel with
/// group-delay compensation and filtfilt-style odd-reflection edges,
/// generic over the numeric backend (dsp/backend.h; the Q31
/// instantiation quantizes the taps to Q2.30 and runs 64-bit MAC loops
/// with saturating edge reflection).
///
/// Feeding x[0..n) through push() and then finish() produces exactly n
/// output samples, where out[i] is aligned with input x[i] (the constant
/// group delay of (len-1)/2 samples is absorbed: out[i] is emitted once
/// x[i + delay()] has been consumed, and finish() flushes the tail by
/// synthesizing the same odd-reflection extension filtfilt uses). The
/// result is chunk-size invariant: any segmentation of the input yields
/// bit-identical output.
template <typename B>
class BasicStreamingZeroPhaseFir {
 public:
  using sample_t = typename B::sample_t;

  /// `kernel` must have odd length and be symmetric (as produced by
  /// zero_phase_fir_kernel / zero_phase_sos_kernel).
  explicit BasicStreamingZeroPhaseFir(FirCoefficients kernel)
      : kernel_(std::move(kernel)) {
    const Signal& g = kernel_.taps;
    if (g.empty() || g.size() % 2 == 0)
      ICGKIT_THROW(std::invalid_argument("StreamingZeroPhaseFir: kernel length must be odd"));
    double peak = 0.0;
    for (const double v : g) peak = std::max(peak, std::abs(v));
    for (std::size_t i = 0; i < g.size() / 2; ++i)
      if (std::abs(g[i] - g[g.size() - 1 - i]) > 1e-9 * peak)
        ICGKIT_THROW(std::invalid_argument("StreamingZeroPhaseFir: kernel must be symmetric"));
    if constexpr (B::kFixed) {
      taps_.reserve(g.size());
      for (const double c : g) taps_.push_back(B::coeff(c));
    }
    half_ = (g.size() - 1) / 2;
    line_.assign(2 * g.size(), sample_t{});
    tail_.assign(half_ + 1, sample_t{});
  }

  /// Feeds one sample; appends any newly aligned outputs to `out`.
  void push(sample_t x, std::vector<sample_t>& out) {
    const std::size_t raw = raw_count_++;
    tail_[raw % tail_.size()] = x;
    if (warm_) {
      feed_extended(x, out);
      return;
    }
    warmup_.push_back(x);
    if (warmup_.size() < half_ + 1) return;
    // Have x[0..half]: synthesize the odd-reflection prefix 2 x[0] - x[k]
    // (k = half..1), then feed the buffered head. The last of these feeds
    // emits out[0]; the stage is in steady state afterwards.
    for (std::size_t k = half_; k >= 1; --k)
      feed_extended(B::odd_reflect(warmup_[0], warmup_[k]), out);
    for (const sample_t v : warmup_) feed_extended(v, out);
    warmup_.clear();
    warmup_.shrink_to_fit();
    warm_ = true;
  }

  /// Feeds a chunk; appends newly aligned outputs to `out`. Typed span:
  /// cross-backend container mixups fail to compile instead of
  /// truncating.
  void process_chunk(std::span<const sample_t> x, std::vector<sample_t>& out) {
    for (const sample_t v : x) push(v, out);
  }

  /// End of stream: emits the remaining delay() samples (or, for streams
  /// shorter than delay(), the best-effort short-signal output).
  void finish(std::vector<sample_t>& out) {
    if (raw_count_ == 0) return;
    if (!warm_) {
      // Short stream (n <= delay): emit the zero-phase output directly from
      // the buffered samples with the clamped odd-reflection padding the
      // batch filtfilt would use.
      const std::size_t n = warmup_.size();
      const std::size_t pad = std::min(half_, n - 1);
      std::vector<sample_t> ext;
      ext.reserve(n + 2 * pad);
      for (std::size_t k = pad; k >= 1; --k)
        ext.push_back(B::odd_reflect(warmup_.front(), warmup_[k]));
      ext.insert(ext.end(), warmup_.begin(), warmup_.end());
      for (std::size_t k = 1; k <= pad; ++k)
        ext.push_back(B::odd_reflect(warmup_.back(), warmup_[n - 1 - k]));
      for (std::size_t i = 0; i < n; ++i) {
        typename B::acc_t acc = B::acc_zero();
        const auto& g_taps = taps();
        for (std::size_t j = 0; j < g_taps.size(); ++j) {
          // Extended index of the sample hit by tap j for aligned output i.
          const std::ptrdiff_t e = static_cast<std::ptrdiff_t>(i + half_ - j) +
                                   static_cast<std::ptrdiff_t>(pad);
          if (e < 0 || e >= static_cast<std::ptrdiff_t>(ext.size())) continue;
          acc = B::mac(acc, g_taps[j], ext[static_cast<std::size_t>(e)]);
        }
        out.push_back(B::narrow(acc));
      }
      warmup_.clear();
      return;
    }
    // Steady state: synthesize the odd-reflection suffix 2 x[n-1] - x[n-1-k]
    // (k = 1..half), flushing the remaining delay() aligned outputs.
    const sample_t last = tail_[(raw_count_ - 1) % tail_.size()];
    for (std::size_t k = 1; k <= half_; ++k) {
      const sample_t mirrored = tail_[(raw_count_ - 1 - k) % tail_.size()];
      feed_extended(B::odd_reflect(last, mirrored), out);
    }
  }

  void reset() {
    std::fill(line_.begin(), line_.end(), sample_t{});
    head_ = 0;
    fed_ = 0;
    raw_count_ = 0;
    warmup_.clear();
    std::fill(tail_.begin(), tail_.end(), sample_t{});
    warm_ = false;
  }

  /// Feeds a chunk, recording the cumulative output count after each
  /// input: cum[k] - (entry count) outputs exist once x[0..k] has been
  /// consumed. The counts are what lets a caller that batches the stage
  /// front re-associate each emitted sample with the input that produced
  /// it (core's fused per-chunk front).
  void process_chunk_counted(std::span<const sample_t> x, std::vector<sample_t>& out,
                             std::vector<std::uint32_t>& cum) {
    for (const sample_t v : x) {
      push(v, out);
      cum.push_back(static_cast<std::uint32_t>(out.size()));
    }
  }

  /// Serializes the carried stream state — delay line, warm-up prefix
  /// buffer, suffix-synthesis tail and the counters that align them —
  /// for core::Checkpoint round trips. The kernel taps are construction
  /// state; load_state() rejects blobs designed for a different kernel
  /// length.
  template <typename W>
  void save_state(W& w) const {
    // The wire layout predates the doubled (mirrored) delay line: it
    // carries one kernel-length window, slot order. The mirror copy is
    // reconstructed on load, so v1 blobs stay byte-identical.
    const std::size_t len = kernel_.taps.size();
    w.u64(len);
    for (std::size_t i = 0; i < len; ++i) w.value(line_[i]);
    w.u64(head_);
    w.u64(fed_);
    w.u64(raw_count_);
    w.u64(warmup_.size());
    for (const sample_t v : warmup_) w.value(v);
    for (const sample_t v : tail_) w.value(v);
    w.boolean(warm_);
  }

  template <typename R>
  void load_state(R& r) {
    const std::size_t len = kernel_.taps.size();
    if (r.u64() != len) r.fail("StreamingZeroPhaseFir: kernel length mismatch");
    for (std::size_t i = 0; i < len; ++i) {
      const sample_t v = r.template value<sample_t>();
      line_[i] = v;
      line_[i + len] = v;
    }
    head_ = r.u64();
    if (head_ >= len) r.fail("StreamingZeroPhaseFir: head index out of range");
    fed_ = r.u64();
    raw_count_ = r.u64();
    const std::size_t warm_n = r.u64();
    if (warm_n > half_ + 1) r.fail("StreamingZeroPhaseFir: warm-up buffer overflow");
    warmup_.clear();
    warmup_.reserve(warm_n);
    for (std::size_t i = 0; i < warm_n; ++i)
      warmup_.push_back(r.template value<sample_t>());
    for (sample_t& v : tail_) v = r.template value<sample_t>();
    warm_ = r.boolean();
  }

  /// Group delay in samples: out[i] is emitted upon input i + delay().
  [[nodiscard]] std::size_t delay() const { return half_; }
  [[nodiscard]] const FirCoefficients& kernel() const { return kernel_; }

 private:
  void feed_extended(sample_t z, std::vector<sample_t>& out) {
    const std::size_t len = kernel_.taps.size();
    // Mirrored write: slot head_ and its +len twin always hold the same
    // sample, so the newest len samples are contiguous ending at
    // head_ + len - 1 (post-increment) and the convolution below is a
    // branch-free flat loop instead of a per-tap wrap test. Same (tap,
    // sample) pairing and summation order as the circular walk it
    // replaced — bit-identical output.
    line_[head_] = z;
    line_[head_ + len] = z;
    head_ = (head_ + 1 == len) ? 0 : head_ + 1;
    ++fed_;
    if (fed_ < len) return;
    typename B::acc_t acc = B::acc_zero();
    const sample_t* newest = line_.data() + head_ + len - 1;
    const auto& g_taps = taps();
    const auto* tap = g_taps.data();
    for (std::size_t j = 0; j < len; ++j)
      acc = B::mac(acc, tap[j], newest[-static_cast<std::ptrdiff_t>(j)]);
    out.push_back(B::narrow(acc));
  }

  /// The double backend convolves with the design taps directly; only
  /// the fixed backend materializes a quantized copy (these kernels run
  /// to thousands of taps, and fleet sessions each own several).
  [[nodiscard]] const std::vector<typename B::coeff_t>& taps() const {
    if constexpr (B::kFixed) return taps_;
    else return kernel_.taps;
  }

  FirCoefficients kernel_;                 ///< the double-precision design
  std::vector<typename B::coeff_t> taps_;  ///< Q2.30 taps (fixed backend only)
  std::size_t half_;          ///< (len - 1) / 2 == group delay
  /// Mirrored delay line, size == 2 * kernel length: slots [i] and
  /// [i + len] carry the same sample so the newest window is always
  /// contiguous (see feed_extended). Checkpoints serialize one window.
  std::vector<sample_t> line_;
  std::size_t head_ = 0;      ///< next write slot in line_
  std::size_t fed_ = 0;       ///< extended-stream samples consumed
  std::size_t raw_count_ = 0; ///< raw input samples consumed
  std::vector<sample_t> warmup_; ///< first half_+1 raw samples (prefix synthesis)
  std::vector<sample_t> tail_;   ///< last half_+1 raw samples (suffix synthesis)
  bool warm_ = false;         ///< prefix emitted, steady state reached
};

using StreamingZeroPhaseFir = BasicStreamingZeroPhaseFir<DoubleBackend>;

} // namespace icgkit::dsp
