// Windowed-sinc FIR filter design and streaming FIR application.
//
// The paper's ECG chain uses a zero-phase 32nd-order FIR band-pass with
// cut-offs 0.05 Hz and 40 Hz (Section IV-A). `design_bandpass` with
// order = 32 reproduces that filter; `filtfilt_fir` (see filtfilt.h)
// provides the zero-phase application.
#pragma once

#include "dsp/types.h"
#include "dsp/window.h"

#include <cstddef>

namespace icgkit::dsp {

/// Coefficients of a linear-phase FIR filter, h[0..order] (order+1 taps).
struct FirCoefficients {
  Signal taps;

  [[nodiscard]] std::size_t order() const { return taps.empty() ? 0 : taps.size() - 1; }
  /// Group delay in samples (exact for the symmetric designs produced here).
  [[nodiscard]] double group_delay() const { return static_cast<double>(order()) / 2.0; }
};

/// Low-pass windowed-sinc design. `cutoff_hz` in (0, fs/2). Even or odd
/// order accepted; taps = order + 1. DC gain normalized to exactly 1.
FirCoefficients design_lowpass(std::size_t order, double cutoff_hz, SampleRate fs,
                               WindowKind window = WindowKind::Hamming);

/// High-pass by spectral inversion of the complementary low-pass.
/// Requires even order so the Nyquist-region response is well defined.
FirCoefficients design_highpass(std::size_t order, double cutoff_hz, SampleRate fs,
                                WindowKind window = WindowKind::Hamming);

/// Band-pass windowed-sinc design (difference of two unity-DC low-pass
/// sincs; DC gain is exactly 0). Requires even order. Passband gain
/// normalized to 1 at the arithmetic center (f1+f2)/2, following the
/// MATLAB fir1 'scale' convention.
FirCoefficients design_bandpass(std::size_t order, double f1_hz, double f2_hz, SampleRate fs,
                                WindowKind window = WindowKind::Hamming);

/// Convolves `x` with the filter and returns a signal of the same length
/// (zero initial state, i.e. the filter's transient is included at the
/// start and the tail is truncated). This is the causal, streaming-
/// equivalent application.
Signal fir_apply(const FirCoefficients& fir, SignalView x);

/// Frequency response magnitude |H(f)| at a single frequency (for tests
/// and design verification).
double fir_magnitude_at(const FirCoefficients& fir, double freq_hz, SampleRate fs);

/// Streaming FIR filter holding its own delay line; suitable for
/// sample-by-sample embedded-style processing. The circular delay line
/// persists across calls, so chunked feeding is bit-identical to
/// single-shot application.
class StreamingFir {
 public:
  explicit StreamingFir(FirCoefficients coeffs);

  /// One sample in, one sample out, delay line carried across calls.
  Sample tick(Sample x);
  /// Back-compat alias for tick().
  Sample process(Sample x) { return tick(x); }
  /// Filters a chunk, appending x.size() output samples to `out`.
  void process_chunk(SignalView x, Signal& out);

  /// Resets the delay line to zero.
  void reset();

  [[nodiscard]] const FirCoefficients& coefficients() const { return coeffs_; }

 private:
  FirCoefficients coeffs_;
  Signal delay_; // circular delay line, size == taps
  std::size_t head_ = 0;
};

} // namespace icgkit::dsp
