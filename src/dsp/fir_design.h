// Windowed-sinc FIR filter design and streaming FIR application.
//
// The paper's ECG chain uses a zero-phase 32nd-order FIR band-pass with
// cut-offs 0.05 Hz and 40 Hz (Section IV-A). `design_bandpass` with
// order = 32 reproduces that filter; `filtfilt_fir` (see filtfilt.h)
// provides the zero-phase application.
#pragma once

#include "dsp/backend.h"
#include "dsp/types.h"
#include "dsp/window.h"

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "support/contract.h"

namespace icgkit::dsp {

/// Coefficients of a linear-phase FIR filter, h[0..order] (order+1 taps).
struct FirCoefficients {
  Signal taps;

  [[nodiscard]] std::size_t order() const { return taps.empty() ? 0 : taps.size() - 1; }
  /// Group delay in samples (exact for the symmetric designs produced here).
  [[nodiscard]] double group_delay() const { return static_cast<double>(order()) / 2.0; }
};

/// Low-pass windowed-sinc design. `cutoff_hz` in (0, fs/2). Even or odd
/// order accepted; taps = order + 1. DC gain normalized to exactly 1.
FirCoefficients design_lowpass(std::size_t order, double cutoff_hz, SampleRate fs,
                               WindowKind window = WindowKind::Hamming);

/// High-pass by spectral inversion of the complementary low-pass.
/// Requires even order so the Nyquist-region response is well defined.
FirCoefficients design_highpass(std::size_t order, double cutoff_hz, SampleRate fs,
                                WindowKind window = WindowKind::Hamming);

/// Band-pass windowed-sinc design (difference of two unity-DC low-pass
/// sincs; DC gain is exactly 0). Requires even order. Passband gain
/// normalized to 1 at the arithmetic center (f1+f2)/2, following the
/// MATLAB fir1 'scale' convention.
FirCoefficients design_bandpass(std::size_t order, double f1_hz, double f2_hz, SampleRate fs,
                                WindowKind window = WindowKind::Hamming);

/// Convolves `x` with the filter and returns a signal of the same length
/// (zero initial state, i.e. the filter's transient is included at the
/// start and the tail is truncated). This is the causal, streaming-
/// equivalent application.
Signal fir_apply(const FirCoefficients& fir, SignalView x);

/// Frequency response magnitude |H(f)| at a single frequency (for tests
/// and design verification).
double fir_magnitude_at(const FirCoefficients& fir, double freq_hz, SampleRate fs);

/// Streaming FIR filter holding its own delay line, generic over the
/// numeric backend (dsp/backend.h); suitable for sample-by-sample
/// embedded-style processing. The circular delay line persists across
/// calls, so chunked feeding is bit-identical to single-shot
/// application. Under Q31Backend the taps are quantized to Q2.30 at
/// construction and each tick is the firmware's 64-bit MAC loop.
template <typename B>
class BasicStreamingFir {
 public:
  using sample_t = typename B::sample_t;

  explicit BasicStreamingFir(FirCoefficients coeffs)
      : coeffs_(std::move(coeffs)), delay_(coeffs_.taps.size(), sample_t{}) {
    if (coeffs_.taps.empty()) ICGKIT_THROW(std::invalid_argument("StreamingFir: empty taps"));
    if constexpr (B::kFixed) {
      taps_.reserve(coeffs_.taps.size());
      for (const double c : coeffs_.taps) taps_.push_back(B::coeff(c));
    }
  }

  /// One sample in, one sample out, delay line carried across calls.
  sample_t tick(sample_t x) {
    delay_[head_] = x;
    typename B::acc_t acc = B::acc_zero();
    std::size_t idx = head_;
    for (const auto tap : taps()) {
      acc = B::mac(acc, tap, delay_[idx]);
      idx = (idx == 0) ? delay_.size() - 1 : idx - 1;
    }
    head_ = (head_ + 1) % delay_.size();
    return B::narrow(acc);
  }
  /// Back-compat alias for tick().
  sample_t process(sample_t x) { return tick(x); }

  /// Filters a chunk, appending x.size() output samples to `out`. Typed
  /// span: feeding a double container to a Q31 instantiation (or vice
  /// versa) is a compile error, not a silent truncation.
  void process_chunk(std::span<const sample_t> x, std::vector<sample_t>& out) {
    out.reserve(out.size() + x.size());
    for (const sample_t v : x) out.push_back(tick(v));
  }

  /// Resets the delay line to zero.
  void reset() {
    std::fill(delay_.begin(), delay_.end(), sample_t{});
    head_ = 0;
  }

  /// Serializes the delay line for core::Checkpoint round trips (the
  /// taps are construction state). load_state() rejects blobs whose
  /// delay-line length differs from this instance's.
  template <typename W>
  void save_state(W& w) const {
    w.u64(delay_.size());
    for (const sample_t v : delay_) w.value(v);
    w.u64(head_);
  }

  template <typename R>
  void load_state(R& r) {
    if (r.u64() != delay_.size()) r.fail("StreamingFir: delay-line length mismatch");
    for (sample_t& v : delay_) v = r.template value<sample_t>();
    head_ = r.u64();
    if (head_ >= delay_.size()) r.fail("StreamingFir: head index out of range");
  }

  [[nodiscard]] const FirCoefficients& coefficients() const { return coeffs_; }

 private:
  /// The double backend filters with the design taps directly; only the
  /// fixed backend materializes a quantized copy (kernels can run to
  /// thousands of taps, and fleet sessions each own several).
  [[nodiscard]] const std::vector<typename B::coeff_t>& taps() const {
    if constexpr (B::kFixed) return taps_;
    else return coeffs_.taps;
  }

  FirCoefficients coeffs_;                   ///< the double-precision design
  std::vector<typename B::coeff_t> taps_;    ///< Q2.30 taps (fixed backend only)
  std::vector<sample_t> delay_;              ///< circular delay line, size == taps
  std::size_t head_ = 0;
};

using StreamingFir = BasicStreamingFir<DoubleBackend>;

} // namespace icgkit::dsp
