#include "dsp/fir_design.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "support/contract.h"

namespace icgkit::dsp {

namespace {
constexpr double kPi = std::numbers::pi;

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}

// Raw (un-normalized) windowed-sinc low-pass taps.
Signal lowpass_taps(std::size_t order, double cutoff_hz, SampleRate fs, WindowKind window) {
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("fir design: fs must be positive"));
  if (cutoff_hz <= 0.0 || cutoff_hz >= fs / 2.0)
    ICGKIT_THROW(std::invalid_argument("fir design: cutoff must lie in (0, fs/2)"));
  const std::size_t n = order + 1;
  const double fc = cutoff_hz / fs; // normalized cutoff, cycles/sample
  const double mid = static_cast<double>(order) / 2.0;
  Signal h(n);
  const Signal w = make_window(window, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) - mid;
    h[i] = 2.0 * fc * sinc(2.0 * fc * t) * w[i];
  }
  return h;
}

void normalize_gain_at(Signal& h, double freq_hz, SampleRate fs) {
  // |H(f)| for a real FIR evaluated directly; then scale taps.
  double re = 0.0, im = 0.0;
  const double omega = 2.0 * kPi * freq_hz / fs;
  for (std::size_t i = 0; i < h.size(); ++i) {
    re += h[i] * std::cos(omega * static_cast<double>(i));
    im -= h[i] * std::sin(omega * static_cast<double>(i));
  }
  const double mag = std::hypot(re, im);
  if (mag <= 0.0) ICGKIT_THROW(std::logic_error("fir design: zero gain at normalization frequency"));
  for (auto& tap : h) tap /= mag;
}
} // namespace

FirCoefficients design_lowpass(std::size_t order, double cutoff_hz, SampleRate fs,
                               WindowKind window) {
  Signal h = lowpass_taps(order, cutoff_hz, fs, window);
  normalize_gain_at(h, 0.0, fs);
  return FirCoefficients{std::move(h)};
}

FirCoefficients design_highpass(std::size_t order, double cutoff_hz, SampleRate fs,
                                WindowKind window) {
  if (order % 2 != 0)
    ICGKIT_THROW(std::invalid_argument("fir design: high-pass requires even order"));
  // Spectral inversion requires the low-pass to have *exactly* unity DC
  // gain, otherwise the inverted filter leaks DC.
  Signal h = lowpass_taps(order, cutoff_hz, fs, window);
  normalize_gain_at(h, 0.0, fs);
  for (auto& tap : h) tap = -tap;
  h[order / 2] += 1.0;
  FirCoefficients fir{std::move(h)};
  // Normalize at Nyquist so the passband gain is exactly 1 (DC stays 0).
  normalize_gain_at(fir.taps, fs / 2.0, fs);
  return fir;
}

FirCoefficients design_bandpass(std::size_t order, double f1_hz, double f2_hz, SampleRate fs,
                                WindowKind window) {
  if (order % 2 != 0)
    ICGKIT_THROW(std::invalid_argument("fir design: band-pass requires even order"));
  if (!(f1_hz < f2_hz))
    ICGKIT_THROW(std::invalid_argument("fir design: band-pass requires f1 < f2"));
  // Difference of two unity-DC low-passes: tap sum (= DC gain) is exactly 0.
  Signal lo = lowpass_taps(order, f1_hz, fs, window);
  normalize_gain_at(lo, 0.0, fs);
  Signal hi = lowpass_taps(order, f2_hz, fs, window);
  normalize_gain_at(hi, 0.0, fs);
  Signal h(order + 1);
  for (std::size_t i = 0; i <= order; ++i) h[i] = hi[i] - lo[i];
  FirCoefficients fir{std::move(h)};
  // Normalize at the arithmetic band center (matching MATLAB fir1's
  // 'scale' convention). The geometric center would sit inside the
  // transition region for very asymmetric bands such as 0.05-40 Hz at a
  // short order, where the response is nowhere near flat.
  normalize_gain_at(fir.taps, 0.5 * (f1_hz + f2_hz), fs);
  return fir;
}

Signal fir_apply(const FirCoefficients& fir, SignalView x) {
  const auto& h = fir.taps;
  Signal y(x.size(), 0.0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    double acc = 0.0;
    const std::size_t kmax = std::min(h.size() - 1, n);
    for (std::size_t k = 0; k <= kmax; ++k) acc += h[k] * x[n - k];
    y[n] = acc;
  }
  return y;
}

double fir_magnitude_at(const FirCoefficients& fir, double freq_hz, SampleRate fs) {
  double re = 0.0, im = 0.0;
  const double omega = 2.0 * kPi * freq_hz / fs;
  for (std::size_t i = 0; i < fir.taps.size(); ++i) {
    re += fir.taps[i] * std::cos(omega * static_cast<double>(i));
    im -= fir.taps[i] * std::sin(omega * static_cast<double>(i));
  }
  return std::hypot(re, im);
}

} // namespace icgkit::dsp
