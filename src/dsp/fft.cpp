#include "dsp/fft.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace icgkit::dsp {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }
} // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(Spectrum& x, bool inverse) {
  const std::size_t n = x.size();
  if (n == 0) return;
  if (!is_pow2(n)) throw std::invalid_argument("fft: length must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const std::complex<double> wlen = std::polar(1.0, ang);
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = x[i + k];
        const std::complex<double> v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& v : x) v /= static_cast<double>(n);
  }
}

Spectrum rfft(SignalView x) {
  if (x.empty()) return {};
  Spectrum c(next_pow2(x.size()));
  for (std::size_t i = 0; i < x.size(); ++i) c[i] = {x[i], 0.0};
  fft_inplace(c);
  return c;
}

Signal magnitude_spectrum(SignalView x) {
  const Spectrum c = rfft(x);
  Signal mag(c.size() / 2 + 1);
  for (std::size_t k = 0; k < mag.size(); ++k) mag[k] = std::abs(c[k]);
  return mag;
}

Psd welch_psd(SignalView x, SampleRate fs, const WelchConfig& cfg) {
  if (fs <= 0.0) throw std::invalid_argument("welch_psd: fs must be positive");
  if (x.empty()) return {};
  const std::size_t nseg = std::min(next_pow2(cfg.segment_length), next_pow2(x.size()));
  const std::size_t hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(nseg) * (1.0 - cfg.overlap)));

  const Signal w = make_window(cfg.window, nseg);
  double wpow = 0.0;
  for (const double v : w) wpow += v * v;

  Signal acc(nseg / 2 + 1, 0.0);
  std::size_t count = 0;
  for (std::size_t start = 0; start + nseg <= x.size(); start += hop) {
    Spectrum seg(nseg);
    for (std::size_t i = 0; i < nseg; ++i) seg[i] = {x[start + i] * w[i], 0.0};
    fft_inplace(seg);
    for (std::size_t k = 0; k < acc.size(); ++k) acc[k] += std::norm(seg[k]);
    ++count;
  }
  if (count == 0) {
    // Signal shorter than one segment: single zero-padded periodogram.
    Spectrum seg(nseg);
    for (std::size_t i = 0; i < x.size(); ++i)
      seg[i] = {x[i] * w[i % w.size()], 0.0};
    fft_inplace(seg);
    for (std::size_t k = 0; k < acc.size(); ++k) acc[k] += std::norm(seg[k]);
    count = 1;
  }

  Psd psd;
  psd.freq_hz.resize(acc.size());
  psd.power.resize(acc.size());
  const double scale = 1.0 / (static_cast<double>(count) * fs * wpow);
  for (std::size_t k = 0; k < acc.size(); ++k) {
    psd.freq_hz[k] = static_cast<double>(k) * fs / static_cast<double>(nseg);
    // One-sided density: double everything except DC and Nyquist.
    const bool interior = (k != 0) && (k != acc.size() - 1);
    psd.power[k] = acc[k] * scale * (interior ? 2.0 : 1.0);
  }
  return psd;
}

double band_power(const Psd& psd, double f_lo, double f_hi) {
  double total = 0.0;
  for (std::size_t k = 0; k + 1 < psd.freq_hz.size(); ++k) {
    const double f0 = psd.freq_hz[k];
    const double f1 = psd.freq_hz[k + 1];
    if (f1 < f_lo || f0 > f_hi) continue;
    total += 0.5 * (psd.power[k] + psd.power[k + 1]) * (f1 - f0);
  }
  return total;
}

} // namespace icgkit::dsp
