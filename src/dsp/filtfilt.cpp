#include "dsp/filtfilt.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/contract.h"

namespace icgkit::dsp {

namespace {
Signal reversed(Signal x) {
  std::reverse(x.begin(), x.end());
  return x;
}

std::size_t clamp_pad(std::size_t want, std::size_t n) {
  if (n <= 1) return 0;
  return std::min(want, n - 1);
}

template <typename ApplyFn>
Signal forward_backward(SignalView x, std::size_t pad, ApplyFn&& apply) {
  if (x.empty()) return {};
  const Signal padded = odd_reflect_pad(x, pad);
  Signal y = apply(padded);
  y = reversed(std::move(y));
  y = apply(y);
  y = reversed(std::move(y));
  return Signal(y.begin() + static_cast<Index>(pad),
                y.begin() + static_cast<Index>(pad + x.size()));
}
} // namespace

Signal odd_reflect_pad(SignalView x, std::size_t pad) {
  if (x.empty()) return {};
  if (pad >= x.size())
    ICGKIT_THROW(std::invalid_argument("odd_reflect_pad: pad must be < signal length"));
  Signal out;
  out.reserve(x.size() + 2 * pad);
  const double first = x.front();
  const double last = x.back();
  for (std::size_t k = pad; k >= 1; --k) out.push_back(2.0 * first - x[k]);
  out.insert(out.end(), x.begin(), x.end());
  for (std::size_t k = 1; k <= pad; ++k) out.push_back(2.0 * last - x[x.size() - 1 - k]);
  return out;
}

Signal filtfilt_sos(const SosFilter& filter, SignalView x) {
  const std::size_t pad = clamp_pad(3 * filter.order() + 1, x.size());
  return forward_backward(x, pad,
                          [&](SignalView v) { return sos_apply_steady(filter, v); });
}

Signal filtfilt_fir(const FirCoefficients& fir, SignalView x) {
  const std::size_t pad = clamp_pad(3 * fir.taps.size(), x.size());
  return forward_backward(x, pad, [&](SignalView v) { return fir_apply(fir, v); });
}

// ---------------------------------------------------------------------------
// Streaming zero-phase filtering
// ---------------------------------------------------------------------------

FirCoefficients zero_phase_fir_kernel(const FirCoefficients& fir) {
  const Signal& h = fir.taps;
  if (h.empty()) ICGKIT_THROW(std::invalid_argument("zero_phase_fir_kernel: empty taps"));
  const std::size_t taps = h.size();
  Signal g(2 * taps - 1, 0.0);
  // Full convolution of h with its reverse: g[m] = sum_j h[j] h[taps-1-m+j].
  for (std::size_t m = 0; m < g.size(); ++m) {
    const std::size_t shift = taps - 1 > m ? taps - 1 - m : m - (taps - 1);
    double acc = 0.0;
    for (std::size_t j = 0; j + shift < taps; ++j) acc += h[j] * h[j + shift];
    g[m] = acc;
  }
  return FirCoefficients{std::move(g)};
}

FirCoefficients zero_phase_sos_kernel(const SosFilter& filter, double tol,
                                      std::size_t max_half_len) {
  if (filter.sections.empty())
    ICGKIT_THROW(std::invalid_argument("zero_phase_sos_kernel: empty cascade"));
  if (tol <= 0.0 || tol >= 1.0)
    ICGKIT_THROW(std::invalid_argument("zero_phase_sos_kernel: tol must be in (0, 1)"));
  // Impulse response of the causal cascade (gain included once; the
  // autocorrelation below squares it, matching two filtfilt passes).
  StreamingSos sim(filter);
  Signal h;
  double peak = 0.0;
  std::size_t quiet = 0;
  constexpr std::size_t kQuietNeeded = 64;
  const std::size_t sim_cap = 4 * max_half_len + kQuietNeeded;
  for (std::size_t n = 0; n < sim_cap; ++n) {
    const double v = sim.tick(n == 0 ? 1.0 : 0.0);
    if (!std::isfinite(v) || std::abs(v) > 1e9)
      ICGKIT_THROW(std::invalid_argument("zero_phase_sos_kernel: cascade is unstable"));
    h.push_back(v);
    peak = std::max(peak, std::abs(v));
    if (std::abs(v) < 0.01 * tol * peak) {
      if (++quiet >= kQuietNeeded && h.size() > 16) break;
    } else {
      quiet = 0;
    }
  }
  // Autocorrelation g[k] = sum_n h[n] h[n+k]; |G(f)| = |H(f)|^2.
  const std::size_t n_h = h.size();
  Signal g(std::min(n_h, max_half_len + 1), 0.0);
  for (std::size_t k = 0; k < g.size(); ++k) {
    double acc = 0.0;
    for (std::size_t n = 0; n + k < n_h; ++n) acc += h[n] * h[n + k];
    g[k] = acc;
  }
  std::size_t half = 0;
  for (std::size_t k = 0; k < g.size(); ++k)
    if (std::abs(g[k]) > tol * std::abs(g[0])) half = k;
  FirCoefficients out;
  out.taps.assign(2 * half + 1, 0.0);
  for (std::size_t k = 0; k <= half; ++k) {
    out.taps[half + k] = g[k];
    out.taps[half - k] = g[k];
  }
  return out;
}

} // namespace icgkit::dsp
