#include "dsp/filtfilt.h"

#include <algorithm>
#include <stdexcept>

namespace icgkit::dsp {

namespace {
Signal reversed(Signal x) {
  std::reverse(x.begin(), x.end());
  return x;
}

std::size_t clamp_pad(std::size_t want, std::size_t n) {
  if (n <= 1) return 0;
  return std::min(want, n - 1);
}

template <typename ApplyFn>
Signal forward_backward(SignalView x, std::size_t pad, ApplyFn&& apply) {
  if (x.empty()) return {};
  const Signal padded = odd_reflect_pad(x, pad);
  Signal y = apply(padded);
  y = reversed(std::move(y));
  y = apply(y);
  y = reversed(std::move(y));
  return Signal(y.begin() + static_cast<Index>(pad),
                y.begin() + static_cast<Index>(pad + x.size()));
}
} // namespace

Signal odd_reflect_pad(SignalView x, std::size_t pad) {
  if (x.empty()) return {};
  if (pad >= x.size())
    throw std::invalid_argument("odd_reflect_pad: pad must be < signal length");
  Signal out;
  out.reserve(x.size() + 2 * pad);
  const double first = x.front();
  const double last = x.back();
  for (std::size_t k = pad; k >= 1; --k) out.push_back(2.0 * first - x[k]);
  out.insert(out.end(), x.begin(), x.end());
  for (std::size_t k = 1; k <= pad; ++k) out.push_back(2.0 * last - x[x.size() - 1 - k]);
  return out;
}

Signal filtfilt_sos(const SosFilter& filter, SignalView x) {
  const std::size_t pad = clamp_pad(3 * filter.order() + 1, x.size());
  return forward_backward(x, pad,
                          [&](SignalView v) { return sos_apply_steady(filter, v); });
}

Signal filtfilt_fir(const FirCoefficients& fir, SignalView x) {
  const std::size_t pad = clamp_pad(3 * fir.taps.size(), x.size());
  return forward_backward(x, pad, [&](SignalView v) { return fir_apply(fir, v); });
}

} // namespace icgkit::dsp
