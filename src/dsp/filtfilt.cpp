#include "dsp/filtfilt.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace icgkit::dsp {

namespace {
Signal reversed(Signal x) {
  std::reverse(x.begin(), x.end());
  return x;
}

std::size_t clamp_pad(std::size_t want, std::size_t n) {
  if (n <= 1) return 0;
  return std::min(want, n - 1);
}

template <typename ApplyFn>
Signal forward_backward(SignalView x, std::size_t pad, ApplyFn&& apply) {
  if (x.empty()) return {};
  const Signal padded = odd_reflect_pad(x, pad);
  Signal y = apply(padded);
  y = reversed(std::move(y));
  y = apply(y);
  y = reversed(std::move(y));
  return Signal(y.begin() + static_cast<Index>(pad),
                y.begin() + static_cast<Index>(pad + x.size()));
}
} // namespace

Signal odd_reflect_pad(SignalView x, std::size_t pad) {
  if (x.empty()) return {};
  if (pad >= x.size())
    throw std::invalid_argument("odd_reflect_pad: pad must be < signal length");
  Signal out;
  out.reserve(x.size() + 2 * pad);
  const double first = x.front();
  const double last = x.back();
  for (std::size_t k = pad; k >= 1; --k) out.push_back(2.0 * first - x[k]);
  out.insert(out.end(), x.begin(), x.end());
  for (std::size_t k = 1; k <= pad; ++k) out.push_back(2.0 * last - x[x.size() - 1 - k]);
  return out;
}

Signal filtfilt_sos(const SosFilter& filter, SignalView x) {
  const std::size_t pad = clamp_pad(3 * filter.order() + 1, x.size());
  return forward_backward(x, pad,
                          [&](SignalView v) { return sos_apply_steady(filter, v); });
}

Signal filtfilt_fir(const FirCoefficients& fir, SignalView x) {
  const std::size_t pad = clamp_pad(3 * fir.taps.size(), x.size());
  return forward_backward(x, pad, [&](SignalView v) { return fir_apply(fir, v); });
}

// ---------------------------------------------------------------------------
// Streaming zero-phase filtering
// ---------------------------------------------------------------------------

FirCoefficients zero_phase_fir_kernel(const FirCoefficients& fir) {
  const Signal& h = fir.taps;
  if (h.empty()) throw std::invalid_argument("zero_phase_fir_kernel: empty taps");
  const std::size_t taps = h.size();
  Signal g(2 * taps - 1, 0.0);
  // Full convolution of h with its reverse: g[m] = sum_j h[j] h[taps-1-m+j].
  for (std::size_t m = 0; m < g.size(); ++m) {
    const std::size_t shift = taps - 1 > m ? taps - 1 - m : m - (taps - 1);
    double acc = 0.0;
    for (std::size_t j = 0; j + shift < taps; ++j) acc += h[j] * h[j + shift];
    g[m] = acc;
  }
  return FirCoefficients{std::move(g)};
}

FirCoefficients zero_phase_sos_kernel(const SosFilter& filter, double tol,
                                      std::size_t max_half_len) {
  if (filter.sections.empty())
    throw std::invalid_argument("zero_phase_sos_kernel: empty cascade");
  if (tol <= 0.0 || tol >= 1.0)
    throw std::invalid_argument("zero_phase_sos_kernel: tol must be in (0, 1)");
  // Impulse response of the causal cascade (gain included once; the
  // autocorrelation below squares it, matching two filtfilt passes).
  StreamingSos sim(filter);
  Signal h;
  double peak = 0.0;
  std::size_t quiet = 0;
  constexpr std::size_t kQuietNeeded = 64;
  const std::size_t sim_cap = 4 * max_half_len + kQuietNeeded;
  for (std::size_t n = 0; n < sim_cap; ++n) {
    const double v = sim.tick(n == 0 ? 1.0 : 0.0);
    if (!std::isfinite(v) || std::abs(v) > 1e9)
      throw std::invalid_argument("zero_phase_sos_kernel: cascade is unstable");
    h.push_back(v);
    peak = std::max(peak, std::abs(v));
    if (std::abs(v) < 0.01 * tol * peak) {
      if (++quiet >= kQuietNeeded && h.size() > 16) break;
    } else {
      quiet = 0;
    }
  }
  // Autocorrelation g[k] = sum_n h[n] h[n+k]; |G(f)| = |H(f)|^2.
  const std::size_t n_h = h.size();
  Signal g(std::min(n_h, max_half_len + 1), 0.0);
  for (std::size_t k = 0; k < g.size(); ++k) {
    double acc = 0.0;
    for (std::size_t n = 0; n + k < n_h; ++n) acc += h[n] * h[n + k];
    g[k] = acc;
  }
  std::size_t half = 0;
  for (std::size_t k = 0; k < g.size(); ++k)
    if (std::abs(g[k]) > tol * std::abs(g[0])) half = k;
  FirCoefficients out;
  out.taps.assign(2 * half + 1, 0.0);
  for (std::size_t k = 0; k <= half; ++k) {
    out.taps[half + k] = g[k];
    out.taps[half - k] = g[k];
  }
  return out;
}

StreamingZeroPhaseFir::StreamingZeroPhaseFir(FirCoefficients kernel)
    : kernel_(std::move(kernel)) {
  const Signal& g = kernel_.taps;
  if (g.empty() || g.size() % 2 == 0)
    throw std::invalid_argument("StreamingZeroPhaseFir: kernel length must be odd");
  double peak = 0.0;
  for (const double v : g) peak = std::max(peak, std::abs(v));
  for (std::size_t i = 0; i < g.size() / 2; ++i)
    if (std::abs(g[i] - g[g.size() - 1 - i]) > 1e-9 * peak)
      throw std::invalid_argument("StreamingZeroPhaseFir: kernel must be symmetric");
  half_ = (g.size() - 1) / 2;
  line_.assign(g.size(), 0.0);
  tail_.assign(half_ + 1, 0.0);
}

void StreamingZeroPhaseFir::feed_extended(Sample z, Signal& out) {
  line_[head_] = z;
  const std::size_t len = line_.size();
  head_ = (head_ + 1) % len;
  ++fed_;
  if (fed_ < len) return;
  double acc = 0.0;
  std::size_t idx = head_ == 0 ? len - 1 : head_ - 1; // newest sample
  for (const double tap : kernel_.taps) {
    acc += tap * line_[idx];
    idx = (idx == 0) ? len - 1 : idx - 1;
  }
  out.push_back(acc);
}

void StreamingZeroPhaseFir::push(Sample x, Signal& out) {
  const std::size_t raw = raw_count_++;
  tail_[raw % tail_.size()] = x;
  if (warm_) {
    feed_extended(x, out);
    return;
  }
  warmup_.push_back(x);
  if (warmup_.size() < half_ + 1) return;
  // Have x[0..half]: synthesize the odd-reflection prefix 2 x[0] - x[k]
  // (k = half..1), then feed the buffered head. The last of these feeds
  // emits out[0]; the stage is in steady state afterwards.
  for (std::size_t k = half_; k >= 1; --k)
    feed_extended(2.0 * warmup_[0] - warmup_[k], out);
  for (const Sample v : warmup_) feed_extended(v, out);
  warmup_.clear();
  warmup_.shrink_to_fit();
  warm_ = true;
}

void StreamingZeroPhaseFir::process_chunk(SignalView x, Signal& out) {
  for (const Sample v : x) push(v, out);
}

void StreamingZeroPhaseFir::finish(Signal& out) {
  if (raw_count_ == 0) return;
  if (!warm_) {
    // Short stream (n <= delay): emit the zero-phase output directly from
    // the buffered samples with the clamped odd-reflection padding the
    // batch filtfilt would use.
    const std::size_t n = warmup_.size();
    const std::size_t pad = std::min(half_, n - 1);
    const Signal ext = pad > 0 ? odd_reflect_pad(warmup_, pad) : warmup_;
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < kernel_.taps.size(); ++j) {
        // Extended index of the sample hit by tap j for aligned output i.
        const std::ptrdiff_t e = static_cast<std::ptrdiff_t>(i + half_ - j) +
                                 static_cast<std::ptrdiff_t>(pad);
        if (e < 0 || e >= static_cast<std::ptrdiff_t>(ext.size())) continue;
        acc += kernel_.taps[j] * ext[static_cast<std::size_t>(e)];
      }
      out.push_back(acc);
    }
    warmup_.clear();
    return;
  }
  // Steady state: synthesize the odd-reflection suffix 2 x[n-1] - x[n-1-k]
  // (k = 1..half), flushing the remaining delay() aligned outputs.
  const Sample last = tail_[(raw_count_ - 1) % tail_.size()];
  for (std::size_t k = 1; k <= half_; ++k) {
    const Sample mirrored = tail_[(raw_count_ - 1 - k) % tail_.size()];
    feed_extended(2.0 * last - mirrored, out);
  }
}

void StreamingZeroPhaseFir::reset() {
  std::fill(line_.begin(), line_.end(), 0.0);
  head_ = 0;
  fed_ = 0;
  raw_count_ = 0;
  warmup_.clear();
  std::fill(tail_.begin(), tail_.end(), 0.0);
  warm_ = false;
}

} // namespace icgkit::dsp
