// Second-order IIR sections (biquads) and cascades of them.
//
// All IIR filters in the toolkit are stored as cascaded biquads (SOS form)
// rather than expanded polynomials: direct high-order polynomials are
// numerically fragile at the low normalized cut-offs this application uses
// (e.g. 0.05 Hz at fs = 250 Hz).
#pragma once

#include "dsp/backend.h"
#include "dsp/types.h"

#include <span>
#include <stdexcept>
#include <vector>

#include "support/contract.h"

namespace icgkit::dsp {

/// One second-order section, transfer function
///   H(z) = (b0 + b1 z^-1 + b2 z^-2) / (1 + a1 z^-1 + a2 z^-2)
/// with the a0 = 1 normalization folded in.
struct Biquad {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;
};

/// A cascade of biquads plus an overall gain.
struct SosFilter {
  std::vector<Biquad> sections;
  double gain = 1.0;

  [[nodiscard]] std::size_t order() const { return sections.size() * 2; }
};

/// Applies the cascade causally over `x` (zero initial state, transposed
/// direct form II per section).
Signal sos_apply(const SosFilter& filter, SignalView x);

/// Applies the cascade causally with each section's internal state
/// initialized to its steady-state response to a constant input equal to
/// x[0]. This removes the start-up transient for signals that begin at a
/// non-zero level; filtfilt relies on it for clean edges.
Signal sos_apply_steady(const SosFilter& filter, SignalView x);

/// Magnitude response |H(f)| of the cascade at a single frequency.
double sos_magnitude_at(const SosFilter& filter, double freq_hz, SampleRate fs);

/// Streaming stateful cascade for sample-by-sample processing, generic
/// over the numeric backend (see dsp/backend.h). The Direct Form II
/// transposed state (s1, s2 per section) persists across calls, so a
/// signal fed in chunks of any size produces bit-identical output to a
/// single-shot application.
///
/// With DoubleBackend this is the reference double implementation; with
/// Q31Backend the coefficients are quantized to Q2.30 at construction
/// (the overall gain folded into the first section's numerator, throwing
/// if any coefficient leaves [-2, 2)) and ticks run the firmware's
/// integer MAC chain with 64-bit state.
template <typename B>
class BasicStreamingSos {
 public:
  using sample_t = typename B::sample_t;

  explicit BasicStreamingSos(SosFilter filter)
      : filter_(std::move(filter)), states_(filter_.sections.size()) {
    if (filter_.sections.empty())
      ICGKIT_THROW(std::invalid_argument("StreamingSos: empty cascade"));
    if constexpr (B::kFixed) {
      sections_.reserve(filter_.sections.size());
      for (std::size_t i = 0; i < filter_.sections.size(); ++i) {
        Biquad s = filter_.sections[i];
        if (i == 0) {
          // No per-sample gain multiply on the fixed path: fold it into
          // the first section's numerator before quantizing.
          s.b0 *= filter_.gain;
          s.b1 *= filter_.gain;
          s.b2 *= filter_.gain;
        }
        sections_.push_back(Section{B::coeff(s.b0), B::coeff(s.b1), B::coeff(s.b2),
                                    B::coeff(s.a1), B::coeff(s.a2)});
      }
    }
  }

  /// One sample in, one sample out, state carried across calls.
  sample_t tick(sample_t x) {
    typename B::acc_t v = B::widen(x);
    const auto& secs = sections();
    for (std::size_t i = 0; i < secs.size(); ++i) {
      const auto& s = secs[i];
      v = B::biquad_tick(s.b0, s.b1, s.b2, s.a1, s.a2, states_[i], v);
    }
    return B::apply_gain(B::narrow(v), filter_.gain);
  }
  /// Back-compat alias for tick().
  sample_t process(sample_t x) { return tick(x); }

  /// Filters a chunk, appending x.size() output samples to `out`. Typed
  /// span: feeding a double container to a Q31 instantiation (or vice
  /// versa) is a compile error, not a silent truncation.
  void process_chunk(std::span<const sample_t> x, std::vector<sample_t>& out) {
    out.reserve(out.size() + x.size());
    for (const sample_t v : x) out.push_back(tick(v));
  }

  void reset() {
    for (auto& st : states_) st = typename B::SosState{};
  }

  /// Serializes the cascade's carried state (per-section s1/s2) for
  /// core::Checkpoint round trips. Coefficients are construction state
  /// and are not written; the section count is, and load_state()
  /// rejects a blob whose cascade shape differs from this instance's.
  template <typename W>
  void save_state(W& w) const {
    w.u64(states_.size());
    for (const auto& st : states_) {
      w.value(st.s1);
      w.value(st.s2);
    }
  }

  template <typename R>
  void load_state(R& r) {
    if (r.u64() != states_.size()) r.fail("StreamingSos: section count mismatch");
    for (auto& st : states_) {
      st.s1 = r.template value<typename B::acc_t>();
      st.s2 = r.template value<typename B::acc_t>();
    }
  }

  [[nodiscard]] const SosFilter& filter() const { return filter_; }
  [[nodiscard]] std::size_t section_count() const { return states_.size(); }

 private:
  struct Section {
    typename B::coeff_t b0, b1, b2, a1, a2;
  };
  /// The double backend runs on the design sections directly (gain
  /// applied at the cascade output, as always); only the fixed backend
  /// materializes a quantized, gain-folded copy. Both element types
  /// expose the same b0..a2 members, so tick() is backend-agnostic.
  [[nodiscard]] const auto& sections() const {
    if constexpr (B::kFixed) return sections_;
    else return filter_.sections;
  }

  SosFilter filter_;               ///< the double-precision design
  std::vector<Section> sections_;  ///< Q2.30 gain-folded copy (fixed only)
  std::vector<typename B::SosState> states_;
};

using StreamingSos = BasicStreamingSos<DoubleBackend>;

} // namespace icgkit::dsp
