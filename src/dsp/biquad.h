// Second-order IIR sections (biquads) and cascades of them.
//
// All IIR filters in the toolkit are stored as cascaded biquads (SOS form)
// rather than expanded polynomials: direct high-order polynomials are
// numerically fragile at the low normalized cut-offs this application uses
// (e.g. 0.05 Hz at fs = 250 Hz).
#pragma once

#include "dsp/types.h"

#include <vector>

namespace icgkit::dsp {

/// One second-order section, transfer function
///   H(z) = (b0 + b1 z^-1 + b2 z^-2) / (1 + a1 z^-1 + a2 z^-2)
/// with the a0 = 1 normalization folded in.
struct Biquad {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;
};

/// A cascade of biquads plus an overall gain.
struct SosFilter {
  std::vector<Biquad> sections;
  double gain = 1.0;

  [[nodiscard]] std::size_t order() const { return sections.size() * 2; }
};

/// Applies the cascade causally over `x` (zero initial state, transposed
/// direct form II per section).
Signal sos_apply(const SosFilter& filter, SignalView x);

/// Applies the cascade causally with each section's internal state
/// initialized to its steady-state response to a constant input equal to
/// x[0]. This removes the start-up transient for signals that begin at a
/// non-zero level; filtfilt relies on it for clean edges.
Signal sos_apply_steady(const SosFilter& filter, SignalView x);

/// Magnitude response |H(f)| of the cascade at a single frequency.
double sos_magnitude_at(const SosFilter& filter, double freq_hz, SampleRate fs);

/// Streaming stateful cascade for sample-by-sample processing. The
/// Direct Form II transposed state (s1, s2 per section) persists across
/// calls, so a signal fed in chunks of any size produces bit-identical
/// output to a single-shot application.
class StreamingSos {
 public:
  explicit StreamingSos(SosFilter filter);

  /// One sample in, one sample out, state carried across calls.
  Sample tick(Sample x);
  /// Back-compat alias for tick().
  Sample process(Sample x) { return tick(x); }
  /// Filters a chunk, appending x.size() output samples to `out`.
  void process_chunk(SignalView x, Signal& out);
  void reset();

  [[nodiscard]] const SosFilter& filter() const { return filter_; }

 private:
  struct State {
    double s1 = 0.0, s2 = 0.0;
  };
  SosFilter filter_;
  std::vector<State> states_;
};

} // namespace icgkit::dsp
