#include "dsp/resample.h"

#include "dsp/butterworth.h"
#include "dsp/filtfilt.h"

#include <cmath>
#include <stdexcept>

namespace icgkit::dsp {

Signal resample_linear(SignalView x, SampleRate fs_in, SampleRate fs_out) {
  if (fs_in <= 0.0 || fs_out <= 0.0)
    throw std::invalid_argument("resample_linear: rates must be positive");
  if (x.empty()) return {};
  if (x.size() == 1) return Signal(1, x[0]);

  const double duration = static_cast<double>(x.size() - 1) / fs_in;
  const std::size_t n_out = static_cast<std::size_t>(std::floor(duration * fs_out)) + 1;
  Signal y(n_out);
  for (std::size_t i = 0; i < n_out; ++i) {
    const double t = static_cast<double>(i) / fs_out;
    const double pos = t * fs_in;
    const std::size_t lo = std::min(static_cast<std::size_t>(pos), x.size() - 2);
    const double frac = pos - static_cast<double>(lo);
    y[i] = x[lo] + frac * (x[lo + 1] - x[lo]);
  }
  return y;
}

Signal decimate(SignalView x, std::size_t factor, SampleRate fs_in) {
  if (factor == 0) throw std::invalid_argument("decimate: factor must be >= 1");
  if (factor == 1) return Signal(x.begin(), x.end());
  const double fs_out = fs_in / static_cast<double>(factor);
  const SosFilter aa = butterworth_lowpass(4, 0.4 * fs_out, fs_in);
  const Signal filtered = filtfilt_sos(aa, x);
  Signal y;
  y.reserve(x.size() / factor + 1);
  for (std::size_t i = 0; i < filtered.size(); i += factor) y.push_back(filtered[i]);
  return y;
}

} // namespace icgkit::dsp
