// 1-D grayscale morphology with flat structuring elements, and the
// morphological ECG baseline-wander estimator of Sun, Chan & Krishnan
// ("ECG signal conditioning by morphological filtering", Comput. Biol.
// Med. 2002) that the paper adopts in Section IV-A.
//
// The estimator applies an opening (erosion then dilation, removes peaks)
// followed by a closing (dilation then erosion, removes pits) with two
// structuring elements sized relative to the cardiac cycle; the result
// tracks the baseline drift, which is then subtracted from the signal.
#pragma once

#include "dsp/types.h"

#include <cstddef>

namespace icgkit::dsp {

/// Erosion with a flat structuring element of `width` samples (centered,
/// width must be odd and >= 1). Edges use shrinking windows.
Signal erode(SignalView x, std::size_t width);

/// Dilation with a flat structuring element of `width` samples.
Signal dilate(SignalView x, std::size_t width);

/// Opening = erosion followed by dilation. Removes positive peaks narrower
/// than the structuring element.
Signal morph_open(SignalView x, std::size_t width);

/// Closing = dilation followed by erosion. Removes negative pits narrower
/// than the structuring element.
Signal morph_close(SignalView x, std::size_t width);

/// Parameters of the Sun et al. baseline estimator. The widths are derived
/// from the sampling rate: the first structuring element must exceed the
/// QRS width (default 0.2 s), the second must exceed the T-wave width
/// (default 1.5x the first).
struct BaselineEstimatorConfig {
  double qrs_window_s = 0.2;
  double wave_window_factor = 1.5;
};

/// Estimates the baseline wander of an ECG-like signal:
/// open with w1 = odd(qrs_window_s * fs), then close with w2 = odd(1.5*w1).
Signal estimate_baseline(SignalView x, SampleRate fs, const BaselineEstimatorConfig& cfg = {});

/// Convenience: x - estimate_baseline(x).
Signal remove_baseline(SignalView x, SampleRate fs, const BaselineEstimatorConfig& cfg = {});

} // namespace icgkit::dsp
