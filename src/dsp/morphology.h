// 1-D grayscale morphology with flat structuring elements, and the
// morphological ECG baseline-wander estimator of Sun, Chan & Krishnan
// ("ECG signal conditioning by morphological filtering", Comput. Biol.
// Med. 2002) that the paper adopts in Section IV-A.
//
// The estimator applies an opening (erosion then dilation, removes peaks)
// followed by a closing (dilation then erosion, removes pits) with two
// structuring elements sized relative to the cardiac cycle; the result
// tracks the baseline drift, which is then subtracted from the signal.
#pragma once

#include "dsp/ring_buffer.h"
#include "dsp/types.h"

#include <cstddef>

namespace icgkit::dsp {

/// Erosion with a flat structuring element of `width` samples (centered,
/// width must be odd and >= 1). Edges use shrinking windows.
Signal erode(SignalView x, std::size_t width);

/// Dilation with a flat structuring element of `width` samples.
Signal dilate(SignalView x, std::size_t width);

/// Opening = erosion followed by dilation. Removes positive peaks narrower
/// than the structuring element.
Signal morph_open(SignalView x, std::size_t width);

/// Closing = dilation followed by erosion. Removes negative pits narrower
/// than the structuring element.
Signal morph_close(SignalView x, std::size_t width);

/// Parameters of the Sun et al. baseline estimator. The widths are derived
/// from the sampling rate: the first structuring element must exceed the
/// QRS width (default 0.2 s), the second must exceed the T-wave width
/// (default 1.5x the first).
struct BaselineEstimatorConfig {
  double qrs_window_s = 0.2;
  double wave_window_factor = 1.5;
};

/// Estimates the baseline wander of an ECG-like signal:
/// open with w1 = odd(qrs_window_s * fs), then close with w2 = odd(1.5*w1).
Signal estimate_baseline(SignalView x, SampleRate fs, const BaselineEstimatorConfig& cfg = {});

/// Convenience: x - estimate_baseline(x).
Signal remove_baseline(SignalView x, SampleRate fs, const BaselineEstimatorConfig& cfg = {});

/// Streaming erosion/dilation with a centered flat structuring element.
///
/// Bit-identical to erode()/dilate() on the concatenated input (same
/// monotonic-deque arithmetic, same shrinking edge windows), but fed one
/// sample at a time: out[c] is emitted once input sample c + width/2 has
/// arrived, i.e. the stage has a fixed group delay of width/2 samples.
/// The deque lives in a fixed-capacity RingBuffer, so push() never
/// allocates after construction. finish() emits the trailing width/2
/// outputs with the batch right-edge shrinking windows.
class StreamingExtremum {
 public:
  enum class Kind { Min, Max };

  StreamingExtremum(std::size_t width, Kind kind);

  /// Feeds one sample; appends 0 or 1 newly completed outputs to `out`.
  void push(Sample x, Signal& out);
  /// Emits the remaining delayed outputs (right edge of the signal).
  void finish(Signal& out);
  void reset();

  [[nodiscard]] std::size_t delay() const { return half_; }

 private:
  struct Entry {
    std::size_t idx;
    Sample v;
  };
  void emit_center(std::size_t center, Signal& out);

  std::size_t half_;
  Kind kind_;
  RingBuffer<Entry> dq_;      ///< monotonic deque over the current window
  std::size_t pushed_ = 0;    ///< input samples consumed
  std::size_t emitted_ = 0;   ///< output samples produced
};

/// Streaming counterpart of remove_baseline(): the Sun et al. estimator
/// (open w1 then close w2) run as a cascade of four StreamingExtremum
/// stages, with the input delayed alongside so cleaned[c] = x[c] -
/// baseline[c]. Bit-identical to the batch remove_baseline() including
/// both edges; fixed group delay of (w1 - 1) + (w2 - 1) samples.
class StreamingBaselineRemover {
 public:
  StreamingBaselineRemover(SampleRate fs, const BaselineEstimatorConfig& cfg = {});

  /// Feeds one raw sample; appends newly completed cleaned samples.
  void push(Sample x, Signal& out);
  /// Flushes the trailing delay (right edge), emitting all pending output.
  void finish(Signal& out);
  void reset();

  [[nodiscard]] std::size_t delay() const { return delay_; }

 private:
  std::size_t w1_, w2_, delay_;
  StreamingExtremum open_erode_, open_dilate_, close_dilate_, close_erode_;
  RingBuffer<Sample> raw_delay_;  ///< input delayed by `delay_` samples
  Signal scratch1_, scratch2_;    ///< per-push stage buffers (capacity reused)
};

} // namespace icgkit::dsp
