// 1-D grayscale morphology with flat structuring elements, and the
// morphological ECG baseline-wander estimator of Sun, Chan & Krishnan
// ("ECG signal conditioning by morphological filtering", Comput. Biol.
// Med. 2002) that the paper adopts in Section IV-A.
//
// The estimator applies an opening (erosion then dilation, removes peaks)
// followed by a closing (dilation then erosion, removes pits) with two
// structuring elements sized relative to the cardiac cycle; the result
// tracks the baseline drift, which is then subtracted from the signal.
#pragma once

#include "dsp/backend.h"
#include "dsp/ring_buffer.h"
#include "dsp/types.h"

#include <cstddef>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "support/contract.h"

namespace icgkit::dsp {

/// Erosion with a flat structuring element of `width` samples (centered,
/// width must be odd and >= 1). Edges use shrinking windows.
Signal erode(SignalView x, std::size_t width);

/// Dilation with a flat structuring element of `width` samples.
Signal dilate(SignalView x, std::size_t width);

/// Opening = erosion followed by dilation. Removes positive peaks narrower
/// than the structuring element.
Signal morph_open(SignalView x, std::size_t width);

/// Closing = dilation followed by erosion. Removes negative pits narrower
/// than the structuring element.
Signal morph_close(SignalView x, std::size_t width);

/// Parameters of the Sun et al. baseline estimator. The widths are derived
/// from the sampling rate: the first structuring element must exceed the
/// QRS width (default 0.2 s), the second must exceed the T-wave width
/// (default 1.5x the first).
struct BaselineEstimatorConfig {
  double qrs_window_s = 0.2;
  double wave_window_factor = 1.5;
};

/// Estimates the baseline wander of an ECG-like signal:
/// open with w1 = odd(qrs_window_s * fs), then close with w2 = odd(1.5*w1).
Signal estimate_baseline(SignalView x, SampleRate fs, const BaselineEstimatorConfig& cfg = {});

/// Convenience: x - estimate_baseline(x).
Signal remove_baseline(SignalView x, SampleRate fs, const BaselineEstimatorConfig& cfg = {});

/// Streaming erosion/dilation with a centered flat structuring element,
/// generic over the numeric backend (dsp/backend.h; pure order
/// statistics, so the Q31 instantiation is exact).
///
/// Bit-identical to erode()/dilate() on the concatenated input (same
/// monotonic-deque arithmetic, same shrinking edge windows), but fed one
/// sample at a time: out[c] is emitted once input sample c + width/2 has
/// arrived, i.e. the stage has a fixed group delay of width/2 samples.
/// The deque lives in a fixed-capacity RingBuffer, so push() never
/// allocates after construction. finish() emits the trailing width/2
/// outputs with the batch right-edge shrinking windows.
template <typename B>
class BasicStreamingExtremum {
 public:
  using sample_t = typename B::sample_t;
  enum class Kind { Min, Max };

  BasicStreamingExtremum(std::size_t width, Kind kind)
      : half_(width / 2), kind_(kind), dq_(width + 1) {
    if (width % 2 == 0 || width == 0)
      ICGKIT_THROW(std::invalid_argument("StreamingExtremum: width must be odd"));
  }

  /// Feeds one sample; appends 0 or 1 newly completed outputs to `out`.
  void push(sample_t x, std::vector<sample_t>& out) {
    const std::size_t idx = pushed_++;
    if (kind_ == Kind::Min) {
      while (!dq_.empty() && x <= dq_.back().v) dq_.pop_back();
    } else {
      while (!dq_.empty() && x >= dq_.back().v) dq_.pop_back();
    }
    dq_.push(Entry{idx, x});
    if (pushed_ > half_) emit_center(pushed_ - 1 - half_, out);
  }

  /// Emits the remaining delayed outputs (right edge of the signal).
  void finish(std::vector<sample_t>& out) {
    while (emitted_ < pushed_) emit_center(emitted_, out);
  }

  void reset() {
    dq_.clear();
    pushed_ = 0;
    emitted_ = 0;
  }

  /// Serializes the monotonic deque and the input/output counters for
  /// core::Checkpoint round trips; load_state() rejects blobs whose
  /// structuring-element width differs.
  template <typename W>
  void save_state(W& w) const {
    w.u64(dq_.capacity());
    w.u64(dq_.size());
    for (std::size_t i = 0; i < dq_.size(); ++i) {
      w.u64(dq_.at(i).idx);
      w.value(dq_.at(i).v);
    }
    w.u64(pushed_);
    w.u64(emitted_);
  }

  template <typename R>
  void load_state(R& r) {
    if (r.u64() != dq_.capacity()) r.fail("StreamingExtremum: width mismatch");
    const std::size_t n = r.u64();
    if (n > dq_.capacity()) r.fail("StreamingExtremum: deque overflow");
    dq_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      Entry e;
      e.idx = r.u64();
      e.v = r.template value<sample_t>();
      dq_.push(e);
    }
    pushed_ = r.u64();
    emitted_ = r.u64();
  }

  [[nodiscard]] std::size_t delay() const { return half_; }

 private:
  struct Entry {
    std::size_t idx;
    sample_t v;
  };
  void emit_center(std::size_t center, std::vector<sample_t>& out) {
    const std::size_t win_begin = center > half_ ? center - half_ : 0;
    while (!dq_.empty() && dq_.front().idx < win_begin) dq_.pop();
    out.push_back(dq_.front().v);
    ++emitted_;
  }

  std::size_t half_;
  Kind kind_;
  RingBuffer<Entry> dq_;      ///< monotonic deque over the current window
  std::size_t pushed_ = 0;    ///< input samples consumed
  std::size_t emitted_ = 0;   ///< output samples produced
};

using StreamingExtremum = BasicStreamingExtremum<DoubleBackend>;

/// Lockstep extremum for the SIMD batch backend. Order statistics are
/// the one front-chain kernel whose control flow is data-dependent (the
/// monotonic deque pops on comparisons), so the lanes cannot share a
/// deque: this variant keeps W independent scalar deques and advances
/// them under the lane-uniform emission schedule (pushed_/emitted_ are
/// identical across lanes by construction). Each lane runs exactly the
/// BasicStreamingExtremum<DoubleBackend> comparisons in the same order,
/// preserving the batch byte-identity contract.
///
/// Checkpointing is per-lane: save_state/load_state require a lane
/// adaptor (core::LaneStateWriter/Reader) and write lane i's deque in
/// the exact scalar wire layout, so a packed batch round-trips through
/// the existing per-session checkpoint format.
template <typename B>
class BatchStreamingExtremum {
 public:
  using sample_t = typename B::sample_t; ///< LaneVec<W>
  static constexpr std::size_t kLanes = B::kLanes;
  using Kind = typename BasicStreamingExtremum<DoubleBackend>::Kind;

  BatchStreamingExtremum(std::size_t width, Kind kind)
      : half_(width / 2), kind_(kind), lanes_(kLanes, RingBuffer<Entry>(width + 1)) {
    if (width % 2 == 0 || width == 0)
      ICGKIT_THROW(std::invalid_argument("BatchStreamingExtremum: width must be odd"));
  }

  void push(sample_t x, std::vector<sample_t>& out) {
    const std::size_t idx = pushed_++;
    for (std::size_t l = 0; l < kLanes; ++l) {
      auto& dq = lanes_[l];
      const double v = x.lane(l);
      if (kind_ == Kind::Min) {
        while (!dq.empty() && v <= dq.back().v) dq.pop_back();
      } else {
        while (!dq.empty() && v >= dq.back().v) dq.pop_back();
      }
      dq.push(Entry{idx, v});
    }
    if (pushed_ > half_) emit_center(pushed_ - 1 - half_, out);
  }

  void finish(std::vector<sample_t>& out) {
    while (emitted_ < pushed_) emit_center(emitted_, out);
  }

  void reset() {
    for (auto& dq : lanes_) dq.clear();
    pushed_ = 0;
    emitted_ = 0;
  }

  /// Lane-adaptor serialization: lane i's deque is written to w.lane_writer(i)
  /// in the BasicStreamingExtremum wire layout.
  template <typename W>
  void save_state(W& w) const {
    for (std::size_t l = 0; l < kLanes; ++l) {
      auto& pw = w.lane_writer(l);
      const auto& dq = lanes_[l];
      pw.u64(dq.capacity());
      pw.u64(dq.size());
      for (std::size_t i = 0; i < dq.size(); ++i) {
        pw.u64(dq.at(i).idx);
        pw.value(dq.at(i).v);
      }
      pw.u64(pushed_);
      pw.u64(emitted_);
    }
  }

  template <typename R>
  void load_state(R& r) {
    std::size_t pushed = 0, emitted = 0;
    for (std::size_t l = 0; l < kLanes; ++l) {
      auto& pr = r.lane_reader(l);
      auto& dq = lanes_[l];
      if (pr.u64() != dq.capacity()) pr.fail("BatchStreamingExtremum: width mismatch");
      const std::size_t n = pr.u64();
      if (n > dq.capacity()) pr.fail("BatchStreamingExtremum: deque overflow");
      dq.clear();
      for (std::size_t i = 0; i < n; ++i) {
        Entry e;
        e.idx = pr.u64();
        e.v = pr.template value<double>();
        dq.push(e);
      }
      const std::size_t p = pr.u64();
      const std::size_t m = pr.u64();
      if (l == 0) {
        pushed = p;
        emitted = m;
      } else if (p != pushed || m != emitted) {
        pr.fail("BatchStreamingExtremum: lanes are not aligned");
      }
    }
    pushed_ = pushed;
    emitted_ = emitted;
  }

  [[nodiscard]] std::size_t delay() const { return half_; }

 private:
  struct Entry {
    std::size_t idx;
    double v;
  };
  void emit_center(std::size_t center, std::vector<sample_t>& out) {
    const std::size_t win_begin = center > half_ ? center - half_ : 0;
    sample_t r{};
    for (std::size_t l = 0; l < kLanes; ++l) {
      auto& dq = lanes_[l];
      while (!dq.empty() && dq.front().idx < win_begin) dq.pop();
      r.set_lane(l, dq.front().v);
    }
    out.push_back(r);
    ++emitted_;
  }

  std::size_t half_;
  Kind kind_;
  std::vector<RingBuffer<Entry>> lanes_; ///< one monotonic deque per lane
  std::size_t pushed_ = 0;               ///< lane-uniform input counter
  std::size_t emitted_ = 0;              ///< lane-uniform output counter
};

/// Width derivation shared by the batch estimator and the streaming
/// remover: w1 = odd(qrs_window_s * fs), w2 = odd(factor * w1).
std::size_t baseline_width_w1(SampleRate fs, const BaselineEstimatorConfig& cfg);
std::size_t baseline_width_w2(SampleRate fs, const BaselineEstimatorConfig& cfg);

/// Streaming counterpart of remove_baseline(): the Sun et al. estimator
/// (open w1 then close w2) run as a cascade of four StreamingExtremum
/// stages, with the input delayed alongside so cleaned[c] = x[c] -
/// baseline[c]. Bit-identical to the batch remove_baseline() including
/// both edges; fixed group delay of (w1 - 1) + (w2 - 1) samples. Generic
/// over the numeric backend: only the final subtraction is arithmetic
/// (saturating under Q31Backend).
template <typename B>
class BasicStreamingBaselineRemover {
 public:
  using sample_t = typename B::sample_t;
  /// The batch backend swaps in the per-lane-deque extremum; everything
  /// else in this cascade is lane-uniform and works unchanged.
  using Extremum = std::conditional_t<is_batch_backend_v<B>,
                                      BatchStreamingExtremum<B>,
                                      BasicStreamingExtremum<B>>;

  BasicStreamingBaselineRemover(SampleRate fs, const BaselineEstimatorConfig& cfg = {})
      : w1_(baseline_width_w1(fs, cfg)), w2_(baseline_width_w2(fs, cfg)),
        delay_((w1_ - 1) + (w2_ - 1)),
        open_erode_(w1_, Extremum::Kind::Min),
        open_dilate_(w1_, Extremum::Kind::Max),
        close_dilate_(w2_, Extremum::Kind::Max),
        close_erode_(w2_, Extremum::Kind::Min),
        raw_delay_(delay_ + 1) {
    if (fs <= 0.0)
      ICGKIT_THROW(std::invalid_argument("StreamingBaselineRemover: fs must be positive"));
  }

  /// Feeds one raw sample; appends newly completed cleaned samples.
  void push(sample_t x, std::vector<sample_t>& out) {
    raw_delay_.push(x);
    scratch1_.clear();
    open_erode_.push(x, scratch1_);
    scratch2_.clear();
    for (const sample_t v : scratch1_) open_dilate_.push(v, scratch2_);
    scratch1_.clear();
    for (const sample_t v : scratch2_) close_dilate_.push(v, scratch1_);
    scratch2_.clear();
    for (const sample_t v : scratch1_) close_erode_.push(v, scratch2_);
    for (const sample_t baseline : scratch2_)
      out.push_back(B::sub(raw_delay_.pop(), baseline));
  }

  /// Flushes the trailing delay (right edge), emitting all pending output.
  void finish(std::vector<sample_t>& out) {
    scratch1_.clear();
    open_erode_.finish(scratch1_);
    scratch2_.clear();
    for (const sample_t v : scratch1_) open_dilate_.push(v, scratch2_);
    open_dilate_.finish(scratch2_);
    scratch1_.clear();
    for (const sample_t v : scratch2_) close_dilate_.push(v, scratch1_);
    close_dilate_.finish(scratch1_);
    scratch2_.clear();
    for (const sample_t v : scratch1_) close_erode_.push(v, scratch2_);
    close_erode_.finish(scratch2_);
    for (const sample_t baseline : scratch2_)
      out.push_back(B::sub(raw_delay_.pop(), baseline));
  }

  void reset() {
    open_erode_.reset();
    open_dilate_.reset();
    close_dilate_.reset();
    close_erode_.reset();
    raw_delay_.clear();
  }

  /// Serializes the four extremum stages plus the delayed-input ring for
  /// core::Checkpoint round trips.
  template <typename W>
  void save_state(W& w) const {
    open_erode_.save_state(w);
    open_dilate_.save_state(w);
    close_dilate_.save_state(w);
    close_erode_.save_state(w);
    raw_delay_.save_state(w);
  }

  template <typename R>
  void load_state(R& r) {
    open_erode_.load_state(r);
    open_dilate_.load_state(r);
    close_dilate_.load_state(r);
    close_erode_.load_state(r);
    raw_delay_.load_state(r, "StreamingBaselineRemover");
  }

  [[nodiscard]] std::size_t delay() const { return delay_; }

 private:
  std::size_t w1_, w2_, delay_;
  Extremum open_erode_, open_dilate_, close_dilate_, close_erode_;
  RingBuffer<sample_t> raw_delay_;          ///< input delayed by `delay_` samples
  std::vector<sample_t> scratch1_, scratch2_; ///< per-push stage buffers
};

using StreamingBaselineRemover = BasicStreamingBaselineRemover<DoubleBackend>;

} // namespace icgkit::dsp
