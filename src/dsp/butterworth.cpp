#include "dsp/butterworth.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "support/contract.h"

namespace icgkit::dsp {

namespace {
constexpr double kPi = std::numbers::pi;

void check_args(std::size_t order, double cutoff_hz, SampleRate fs) {
  if (order == 0) ICGKIT_THROW(std::invalid_argument("butterworth: order must be >= 1"));
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("butterworth: fs must be positive"));
  if (cutoff_hz <= 0.0 || cutoff_hz >= fs / 2.0)
    ICGKIT_THROW(std::invalid_argument("butterworth: cutoff must lie in (0, fs/2)"));
}

// Bilinear transform of an analog second-order section
//   H(s) = (B0 + B1 s + B2 s^2) / (A0 + A1 s + A2 s^2)
// with s = K (1 - z^-1)/(1 + z^-1), K = 2*fs.
Biquad bilinear(double B0, double B1, double B2, double A0, double A1, double A2, double K) {
  const double K2 = K * K;
  const double a0 = A0 + A1 * K + A2 * K2;
  Biquad s;
  s.b0 = (B0 + B1 * K + B2 * K2) / a0;
  s.b1 = (2.0 * B0 - 2.0 * B2 * K2) / a0;
  s.b2 = (B0 - B1 * K + B2 * K2) / a0;
  s.a1 = (2.0 * A0 - 2.0 * A2 * K2) / a0;
  s.a2 = (A0 - A1 * K + A2 * K2) / a0;
  return s;
}

// Angles of the left-half-plane Butterworth prototype poles that form
// conjugate pairs, plus whether there is a single real pole (odd order).
struct Prototype {
  std::vector<double> pair_angles; // theta in (pi/2, pi); pole = exp(j*theta)
  bool has_real_pole = false;
};

Prototype prototype_poles(std::size_t order) {
  Prototype p;
  for (std::size_t k = 0; k < order / 2; ++k) {
    const double theta =
        kPi * (2.0 * static_cast<double>(k) + 1.0) / (2.0 * static_cast<double>(order)) +
        kPi / 2.0;
    p.pair_angles.push_back(theta);
  }
  p.has_real_pole = (order % 2 == 1);
  return p;
}

enum class Kind { Lowpass, Highpass };

SosFilter design(Kind kind, std::size_t order, double cutoff_hz, SampleRate fs) {
  check_args(order, cutoff_hz, fs);
  const double K = 2.0 * fs;
  // Pre-warp the cut-off so the digital filter's -3 dB point lands exactly
  // at cutoff_hz after the bilinear transform.
  const double wc = K * std::tan(kPi * cutoff_hz / fs);

  const Prototype proto = prototype_poles(order);
  SosFilter filter;
  for (const double theta : proto.pair_angles) {
    // Analog denominator for the scaled conjugate pair p = wc * e^{j theta}:
    //   s^2 - 2 Re(p) s + |p|^2 = s^2 + (-2 wc cos theta) s + wc^2.
    const double A0 = wc * wc;
    const double A1 = -2.0 * wc * std::cos(theta);
    const double A2 = 1.0;
    if (kind == Kind::Lowpass) {
      filter.sections.push_back(bilinear(wc * wc, 0.0, 0.0, A0, A1, A2, K));
    } else {
      filter.sections.push_back(bilinear(0.0, 0.0, 1.0, A0, A1, A2, K));
    }
  }
  if (proto.has_real_pole) {
    // First-order sections are built directly rather than through the
    // quadratic bilinear formula: the quadratic form carries a common
    // (1 + z^-1) factor in numerator and denominator, which makes the
    // magnitude evaluation 0/0 at Nyquist and breaks gain normalization.
    const double a0 = K + wc;
    Biquad s;
    if (kind == Kind::Lowpass) {
      s.b0 = wc / a0;
      s.b1 = wc / a0;
    } else {
      s.b0 = K / a0;
      s.b1 = -K / a0;
    }
    s.b2 = 0.0;
    s.a1 = (wc - K) / a0;
    s.a2 = 0.0;
    filter.sections.push_back(s);
  }
  // Exact unity passband gain: normalize at DC (low-pass) or Nyquist (high-pass).
  const double ref_hz = (kind == Kind::Lowpass) ? 0.0 : fs / 2.0;
  const double mag = sos_magnitude_at(filter, ref_hz, fs);
  if (mag <= 0.0) ICGKIT_THROW(std::logic_error("butterworth: degenerate design"));
  filter.gain = 1.0 / mag;
  return filter;
}
} // namespace

SosFilter butterworth_lowpass(std::size_t order, double cutoff_hz, SampleRate fs) {
  return design(Kind::Lowpass, order, cutoff_hz, fs);
}

SosFilter butterworth_highpass(std::size_t order, double cutoff_hz, SampleRate fs) {
  return design(Kind::Highpass, order, cutoff_hz, fs);
}

SosFilter butterworth_bandpass(std::size_t order, double f1_hz, double f2_hz, SampleRate fs) {
  if (!(f1_hz < f2_hz)) ICGKIT_THROW(std::invalid_argument("butterworth: band-pass requires f1 < f2"));
  SosFilter hp = butterworth_highpass(order, f1_hz, fs);
  const SosFilter lp = butterworth_lowpass(order, f2_hz, fs);
  hp.sections.insert(hp.sections.end(), lp.sections.begin(), lp.sections.end());
  hp.gain *= lp.gain;
  return hp;
}

} // namespace icgkit::dsp
