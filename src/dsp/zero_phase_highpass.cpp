#include "dsp/zero_phase_highpass.h"

#include "dsp/butterworth.h"

#include <cmath>
#include <stdexcept>

#include "support/contract.h"

namespace icgkit::dsp {

std::size_t zero_phase_highpass_decimation(SampleRate fs,
                                           const ZeroPhaseHighpassConfig& cfg) {
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("StreamingZeroPhaseHighpass: fs must be positive"));
  if (cfg.cutoff_hz <= 0.0 || cfg.cutoff_hz >= fs / 2.0)
    ICGKIT_THROW(std::invalid_argument("StreamingZeroPhaseHighpass: cutoff must lie in (0, fs/2)"));
  if (cfg.decimation > 0) return cfg.decimation;
  const double want = fs / (16.0 * cfg.cutoff_hz);
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::floor(want)));
}

FirCoefficients zero_phase_highpass_kernel(SampleRate fs, std::size_t m,
                                           const ZeroPhaseHighpassConfig& cfg) {
  const SampleRate decimated_fs = fs / static_cast<double>(m);
  return zero_phase_sos_kernel(
      butterworth_lowpass(cfg.order, cfg.cutoff_hz, decimated_fs), cfg.kernel_tol);
}

} // namespace icgkit::dsp
