#include "dsp/zero_phase_highpass.h"

#include "dsp/butterworth.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace icgkit::dsp {

namespace {
std::size_t pick_decimation(SampleRate fs, const ZeroPhaseHighpassConfig& cfg) {
  if (fs <= 0.0) throw std::invalid_argument("StreamingZeroPhaseHighpass: fs must be positive");
  if (cfg.cutoff_hz <= 0.0 || cfg.cutoff_hz >= fs / 2.0)
    throw std::invalid_argument("StreamingZeroPhaseHighpass: cutoff must lie in (0, fs/2)");
  if (cfg.decimation > 0) return cfg.decimation;
  const double want = fs / (16.0 * cfg.cutoff_hz);
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::floor(want)));
}

FirCoefficients baseline_kernel(SampleRate fs, std::size_t m,
                                const ZeroPhaseHighpassConfig& cfg) {
  const SampleRate decimated_fs = fs / static_cast<double>(m);
  return zero_phase_sos_kernel(
      butterworth_lowpass(cfg.order, cfg.cutoff_hz, decimated_fs), cfg.kernel_tol);
}
} // namespace

StreamingZeroPhaseHighpass::StreamingZeroPhaseHighpass(SampleRate fs,
                                                       const ZeroPhaseHighpassConfig& cfg)
    : m_(pick_decimation(fs, cfg)),
      base_(baseline_kernel(fs, m_, cfg)),
      raw_((base_.delay() + 4) * m_ + m_ + 2) {}

std::size_t StreamingZeroPhaseHighpass::delay() const {
  return (base_.delay() + 2) * m_ + m_ / 2;
}

void StreamingZeroPhaseHighpass::push(Sample x, Signal& out) {
  raw_.push(x);
  ++in_count_;
  block_acc_ += x;
  if (++block_fill_ == m_) {
    feed_block(block_acc_ / static_cast<double>(m_), out);
    block_acc_ = 0.0;
    block_fill_ = 0;
  }
}

void StreamingZeroPhaseHighpass::process_chunk(SignalView x, Signal& out) {
  for (const Sample v : x) push(v, out);
}

void StreamingZeroPhaseHighpass::feed_block(Sample mean, Signal& out) {
  u_scratch_.clear();
  base_.push(mean, u_scratch_);
  for (const Sample u : u_scratch_) on_baseline(u, out);
}

void StreamingZeroPhaseHighpass::on_baseline(Sample u, Signal& out) {
  const std::size_t k = u_count_++;
  if (k == 0) {
    prev_u_ = u;
    return;
  }
  // Baseline sample k sits at input position c_k = k*m + m/2; interpolate
  // linearly across [c_{k-1}, c_k) (flat before c_0 at the very start).
  const std::size_t c_prev = (k - 1) * m_ + m_ / 2;
  const std::size_t c_cur = k * m_ + m_ / 2;
  // The final (partial-block) baseline can claim a center past the end of
  // the input; never emit more outputs than samples consumed.
  while (next_out_ < c_cur && next_out_ < in_count_) {
    Sample baseline;
    if (next_out_ < c_prev) {
      baseline = prev_u_; // only before c_0: flat extrapolation
    } else {
      const double frac =
          static_cast<double>(next_out_ - c_prev) / static_cast<double>(m_);
      baseline = prev_u_ + (u - prev_u_) * frac;
    }
    emit(baseline, out);
  }
  prev_u_ = u;
}

void StreamingZeroPhaseHighpass::emit(Sample baseline, Signal& out) {
  out.push_back(raw_.pop() - baseline);
  ++next_out_;
}

void StreamingZeroPhaseHighpass::finish(Signal& out) {
  if (block_fill_ > 0) {
    feed_block(block_acc_ / static_cast<double>(block_fill_), out);
    block_acc_ = 0.0;
    block_fill_ = 0;
  }
  u_scratch_.clear();
  base_.finish(u_scratch_);
  for (const Sample u : u_scratch_) on_baseline(u, out);
  // Flat extrapolation of the last baseline over the trailing half block.
  while (next_out_ < in_count_) emit(prev_u_, out);
}

void StreamingZeroPhaseHighpass::reset() {
  base_.reset();
  raw_.clear();
  u_scratch_.clear();
  block_acc_ = 0.0;
  block_fill_ = 0;
  in_count_ = 0;
  next_out_ = 0;
  u_count_ = 0;
  prev_u_ = 0.0;
}

} // namespace icgkit::dsp
