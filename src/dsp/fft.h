// Radix-2 FFT and Welch power-spectral-density estimation.
//
// Used by the synthesizer calibration and by the ICG filtering rationale
// bench (the paper chose the 20 Hz cut-off "after looking at the frequency
// spectrum of the signal", Section IV-A.2).
#pragma once

#include "dsp/types.h"
#include "dsp/window.h"

#include <complex>
#include <vector>

namespace icgkit::dsp {

/// A complex DFT spectrum (bin k holds X[k]).
using Spectrum = std::vector<std::complex<double>>;

/// In-place iterative radix-2 Cooley-Tukey FFT. `x.size()` must be a power
/// of two. `inverse` applies the conjugate transform including the 1/N
/// scaling.
void fft_inplace(Spectrum& x, bool inverse = false);

/// FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum of length >= x.size().
Spectrum rfft(SignalView x);

/// Magnitude spectrum |X[k]| for k in [0, N/2], with the frequency of bin
/// k equal to k * fs / N.
Signal magnitude_spectrum(SignalView x);

/// Next power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Parameters of the Welch averaged-periodogram estimator.
struct WelchConfig {
  std::size_t segment_length = 1024; ///< rounded up to a power of two
  double overlap = 0.5;              ///< fraction of segment_length
  WindowKind window = WindowKind::Hann;
};

/// A one-sided power spectral density estimate.
struct Psd {
  Signal freq_hz; ///< bin centers
  Signal power;   ///< power density, one-sided
};

/// Welch's averaged-periodogram PSD estimate (one-sided, density scaling).
Psd welch_psd(SignalView x, SampleRate fs, const WelchConfig& cfg = {});

/// Total power of a PSD restricted to [f_lo, f_hi] (trapezoidal sum).
double band_power(const Psd& psd, double f_lo, double f_hi);

} // namespace icgkit::dsp
