#include "dsp/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/contract.h"

namespace icgkit::dsp {

double mean(SignalView x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const double v : x) acc += v;
  return acc / static_cast<double>(x.size());
}

double variance(SignalView x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double acc = 0.0;
  for (const double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size() - 1);
}

double stddev(SignalView x) { return std::sqrt(variance(x)); }

double rms(SignalView x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const double v : x) acc += v * v;
  return std::sqrt(acc / static_cast<double>(x.size()));
}

double pearson(SignalView x, SignalView y) {
  if (x.size() != y.size()) ICGKIT_THROW(std::invalid_argument("pearson: size mismatch"));
  if (x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double median_inplace(std::span<Sample> x) {
  if (x.empty()) return 0.0;
  const std::size_t mid = x.size() / 2;
  std::nth_element(x.begin(), x.begin() + static_cast<Index>(mid), x.end());
  const double hi = x[mid];
  if (x.size() % 2 == 1) return hi;
  std::nth_element(x.begin(), x.begin() + static_cast<Index>(mid - 1),
                   x.begin() + static_cast<Index>(mid));
  return 0.5 * (x[mid - 1] + hi);
}

double median(SignalView x) {
  if (x.empty()) return 0.0;
  Signal tmp(x.begin(), x.end());
  return median_inplace(tmp);
}

double mad(SignalView x) {
  if (x.empty()) return 0.0;
  const double med = median(x);
  Signal dev(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) dev[i] = std::abs(x[i] - med);
  return 1.4826 * median(dev);
}

double percentile(SignalView x, double p) {
  if (x.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) ICGKIT_THROW(std::invalid_argument("percentile: p in [0,100]"));
  Signal tmp(x.begin(), x.end());
  std::sort(tmp.begin(), tmp.end());
  const double pos = p / 100.0 * static_cast<double>(tmp.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, tmp.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return tmp[lo] + frac * (tmp[hi] - tmp[lo]);
}

std::size_t argmax(SignalView x) {
  if (x.empty()) ICGKIT_THROW(std::invalid_argument("argmax: empty input"));
  return static_cast<std::size_t>(
      std::distance(x.begin(), std::max_element(x.begin(), x.end())));
}

std::size_t argmin(SignalView x) {
  if (x.empty()) ICGKIT_THROW(std::invalid_argument("argmin: empty input"));
  return static_cast<std::size_t>(
      std::distance(x.begin(), std::min_element(x.begin(), x.end())));
}

std::optional<double> LineFit::zero_crossing() const {
  if (slope == 0.0) return std::nullopt;
  return -intercept / slope;
}

LineFit fit_line(SignalView x, SignalView y) {
  if (x.size() != y.size()) ICGKIT_THROW(std::invalid_argument("fit_line: size mismatch"));
  if (x.size() < 2) ICGKIT_THROW(std::invalid_argument("fit_line: need >= 2 points"));
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
  }
  LineFit fit;
  fit.slope = (sxx > 0.0) ? sxy / sxx : 0.0;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

LineFit fit_line_indexed(SignalView y) {
  Signal idx(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) idx[i] = static_cast<double>(i);
  return fit_line(idx, y);
}

double relative_error(double a, double b) {
  if (a == 0.0) return 0.0;
  return (a - b) / a;
}

} // namespace icgkit::dsp
