// Q-format fixed-point biquad filtering.
//
// The STM32L151's Cortex-M3 has no FPU: double-precision software floats
// cost ~70 cycles per multiply-accumulate, while a Q31 MAC costs ~4 (see
// platform::McuConfig). This module is the Q31 face of the SOS cascade:
// since the numeric-backend refactor it is a thin wrapper around
// BasicStreamingSos<Q31Backend> (see dsp/backend.h and dsp/biquad.h), so
// the batch apply() and the streaming tick() share one arithmetic path
// and cannot drift (apply literally routes every sample through tick on
// a fresh state).
//
// Format: Q1.31-style signed accumulation with per-section coefficient
// scaling. Coefficients with |a1| up to 2 (common for low cut-offs) are
// stored in Q2.30.
#pragma once

#include "dsp/backend.h"
#include "dsp/biquad.h"
#include "dsp/types.h"

#include <cstdint>

namespace icgkit::dsp {

/// One biquad with Q2.30 coefficients (kept for inspection/tests; the
/// cascade itself lives in BasicStreamingSos<Q31Backend>).
struct FixedBiquad {
  std::int32_t b0, b1, b2, a1, a2; // Q2.30

  static FixedBiquad from(const Biquad& s);
};

/// Fixed-point SOS cascade. Input samples are expected in [-1, 1) (caller
/// scales); output is in the same normalized range.
class FixedSosFilter {
 public:
  /// Quantizes a double-precision design. The overall `gain` is folded
  /// into the first section's numerator. Throws if any coefficient falls
  /// outside the Q2.30 range [-2, 2).
  explicit FixedSosFilter(const SosFilter& design) : engine_(design) {}

  /// Processes a normalized signal through the cascade (stateless: runs
  /// tick() over a private copy of the engine, so repeated calls are
  /// independent and apply/tick share one arithmetic implementation).
  [[nodiscard]] Signal apply(SignalView x) const;

  /// One sample, streaming: input in Q1.31 full scale, output in Q1.31.
  /// The per-section Q31 state persists across calls (reset with
  /// reset_state()), so chunked feeding is bit-identical to apply() on
  /// the concatenated signal.
  [[nodiscard]] std::int32_t tick(std::int32_t x_q31) { return engine_.tick(x_q31); }

  /// Clears the streaming state carried by tick().
  void reset_state() { engine_.reset(); }

  [[nodiscard]] std::size_t section_count() const { return engine_.section_count(); }

 private:
  BasicStreamingSos<Q31Backend> engine_;
};

/// Convenience: worst-case absolute deviation between the double and the
/// fixed-point implementation over a signal (both fed the same input).
double fixed_point_error(const SosFilter& design, SignalView x);

} // namespace icgkit::dsp
