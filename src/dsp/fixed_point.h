// Q-format fixed-point biquad filtering.
//
// The STM32L151's Cortex-M3 has no FPU: double-precision software floats
// cost ~70 cycles per multiply-accumulate, while a Q31 MAC costs ~4 (see
// platform::McuConfig). This module provides the fixed-point counterpart
// of the SOS cascade so the accuracy cost of that 17x speedup can be
// measured (tests assert the Q31 path tracks the double path to ~1e-6 of
// full scale for the paper's filters).
//
// Format: Q1.31-style signed accumulation with per-section coefficient
// scaling. Coefficients with |a1| up to 2 (common for low cut-offs) are
// stored in Q2.30.
#pragma once

#include "dsp/biquad.h"
#include "dsp/types.h"

#include <cstdint>
#include <vector>

namespace icgkit::dsp {

/// One biquad with Q2.30 coefficients and Q1.31 state.
struct FixedBiquad {
  std::int32_t b0, b1, b2, a1, a2; // Q2.30

  static FixedBiquad from(const Biquad& s);
};

/// Fixed-point SOS cascade. Input samples are expected in [-1, 1) (caller
/// scales); output is in the same normalized range.
class FixedSosFilter {
 public:
  /// Quantizes a double-precision design. The overall `gain` is folded
  /// into the first section's numerator. Throws if any coefficient falls
  /// outside the Q2.30 range [-2, 2).
  explicit FixedSosFilter(const SosFilter& design);

  /// Processes a normalized signal through the cascade (stateless: uses a
  /// local state, so repeated calls are independent).
  [[nodiscard]] Signal apply(SignalView x) const;

  /// One sample, streaming: input in Q1.31 full scale, output in Q1.31.
  /// The per-section Q31 state persists across calls (reset with
  /// reset_state()), so chunked feeding is bit-identical to apply() on
  /// the concatenated signal.
  [[nodiscard]] std::int32_t tick(std::int32_t x_q31);

  /// Clears the streaming state carried by tick().
  void reset_state();

  [[nodiscard]] std::size_t section_count() const { return sections_.size(); }

 private:
  std::vector<FixedBiquad> sections_;
  std::vector<std::int64_t> s1_, s2_; ///< tick() streaming state, Q31
};

/// Convenience: worst-case absolute deviation between the double and the
/// fixed-point implementation over a signal (both fed the same input).
double fixed_point_error(const SosFilter& design, SignalView x);

} // namespace icgkit::dsp
