// Fixed-capacity ring buffer for the streaming pipeline.
//
// Mirrors the bounded sample FIFO an embedded firmware would keep between
// the ADC ISR and the processing loop. Header-only; trivially copyable
// element types expected.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/contract.h"

namespace icgkit::dsp {

/// Fixed-capacity single-threaded FIFO with random access from the
/// oldest element (at(0) = oldest) and deque-style back removal; push on
/// a full buffer overwrites the oldest element (newest data wins).
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    if (capacity == 0) ICGKIT_THROW(std::invalid_argument("RingBuffer: capacity must be >= 1"));
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == buf_.size(); }

  /// Appends a value; overwrites the oldest element when full (the
  /// firmware drop policy: newest data wins).
  void push(const T& v) {
    buf_[(head_ + size_) % buf_.size()] = v;
    if (full()) {
      head_ = (head_ + 1) % buf_.size();
    } else {
      ++size_;
    }
  }

  /// Removes and returns the oldest element.
  T pop() {
    if (empty()) ICGKIT_THROW(std::out_of_range("RingBuffer: pop from empty"));
    T v = buf_[head_];
    head_ = (head_ + 1) % buf_.size();
    --size_;
    return v;
  }

  /// Removes and returns the newest element (deque-style back removal;
  /// lets the streaming morphology kernels keep their monotonic deques in
  /// fixed storage instead of a heap-allocating std::deque).
  T pop_back() {
    if (empty()) ICGKIT_THROW(std::out_of_range("RingBuffer: pop_back from empty"));
    --size_;
    return buf_[(head_ + size_) % buf_.size()];
  }

  /// Element i positions from the oldest (0 = oldest).
  [[nodiscard]] const T& at(std::size_t i) const {
    if (i >= size_) ICGKIT_THROW(std::out_of_range("RingBuffer: index out of range"));
    return buf_[(head_ + i) % buf_.size()];
  }

  /// Newest element.
  [[nodiscard]] const T& back() const { return at(size_ - 1); }
  /// Oldest element.
  [[nodiscard]] const T& front() const { return at(0); }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Zero-copy view of the logical range [lo, hi) (indices from the
  /// oldest, like at()): at most two contiguous spans — the range up to
  /// the physical wrap point, then the remainder. Lets window consumers
  /// (the per-beat tail) run flat pointer loops instead of a per-element
  /// modulo through at(). Spans are invalidated by any mutation.
  struct Segments {
    std::span<const T> first, second;
  };
  [[nodiscard]] Segments segments(std::size_t lo, std::size_t hi) const {
    if (lo > hi || hi > size_)
      ICGKIT_THROW(std::out_of_range("RingBuffer: segment range out of range"));
    const std::size_t start = (head_ + lo) % buf_.size();
    const std::size_t len = hi - lo;
    const std::size_t first_len = std::min(len, buf_.size() - start);
    return {std::span<const T>(buf_.data() + start, first_len),
            std::span<const T>(buf_.data(), len - first_len)};
  }

  /// Copies the content oldest-to-newest into a vector.
  [[nodiscard]] std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
    return out;
  }

  /// Serializes capacity + contents (oldest-to-newest) for
  /// core::Checkpoint round trips. Duck-typed like the kernel
  /// save_state members, so this layer never depends on core; usable
  /// for any T the writer has a value() overload for (samples,
  /// accumulators, u8 marks, u64 indices). `what` names the owning
  /// ring in mismatch errors.
  template <typename W>
  void save_state(W& w) const {
    w.u64(buf_.size());
    w.u64(size_);
    for (std::size_t i = 0; i < size_; ++i) w.value(at(i));
  }

  template <typename R>
  void load_state(R& r, const char* what) {
    if (r.u64() != buf_.size())
      r.fail(std::string(what) + ": ring capacity mismatch");
    const std::size_t n = r.u64();
    if (n > buf_.size()) r.fail(std::string(what) + ": ring overflow");
    clear();
    for (std::size_t i = 0; i < n; ++i) push(r.template value<T>());
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

} // namespace icgkit::dsp
