#include "dsp/morphology.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "support/contract.h"

namespace icgkit::dsp {

namespace {
enum class Extremum { Min, Max };

// Sliding window min/max over a centered window in O(n) using a monotonic
// deque. Window shrinks near the edges (equivalent to padding with the
// identity element).
Signal sliding_extremum(SignalView x, std::size_t width, Extremum kind) {
  if (width % 2 == 0 || width == 0)
    ICGKIT_THROW(std::invalid_argument("morphology: structuring element width must be odd"));
  const Index n = static_cast<Index>(x.size());
  const Index half = static_cast<Index>(width / 2);
  Signal out(x.size());
  std::deque<Index> dq; // indices, values monotone (front = current extremum)

  auto better = [&](double a, double b) {
    return kind == Extremum::Min ? a <= b : a >= b;
  };

  Index next_in = 0;
  for (Index center = 0; center < n; ++center) {
    const Index win_end = std::min<Index>(center + half, n - 1);
    const Index win_begin = std::max<Index>(center - half, 0);
    while (next_in <= win_end) {
      while (!dq.empty() && better(x[static_cast<std::size_t>(next_in)],
                                   x[static_cast<std::size_t>(dq.back())]))
        dq.pop_back();
      dq.push_back(next_in);
      ++next_in;
    }
    while (!dq.empty() && dq.front() < win_begin) dq.pop_front();
    out[static_cast<std::size_t>(center)] = x[static_cast<std::size_t>(dq.front())];
  }
  return out;
}

std::size_t make_odd(std::size_t w) { return (w % 2 == 0) ? w + 1 : w; }
} // namespace

Signal erode(SignalView x, std::size_t width) {
  return sliding_extremum(x, width, Extremum::Min);
}

Signal dilate(SignalView x, std::size_t width) {
  return sliding_extremum(x, width, Extremum::Max);
}

Signal morph_open(SignalView x, std::size_t width) {
  const Signal e = erode(x, width);
  return dilate(e, width);
}

Signal morph_close(SignalView x, std::size_t width) {
  const Signal d = dilate(x, width);
  return erode(d, width);
}

std::size_t baseline_width_w1(SampleRate fs, const BaselineEstimatorConfig& cfg) {
  return make_odd(std::max<std::size_t>(3, static_cast<std::size_t>(cfg.qrs_window_s * fs)));
}

std::size_t baseline_width_w2(SampleRate fs, const BaselineEstimatorConfig& cfg) {
  const std::size_t w1 = baseline_width_w1(fs, cfg);
  return make_odd(std::max<std::size_t>(
      w1, static_cast<std::size_t>(cfg.wave_window_factor * static_cast<double>(w1))));
}

Signal estimate_baseline(SignalView x, SampleRate fs, const BaselineEstimatorConfig& cfg) {
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("estimate_baseline: fs must be positive"));
  if (x.empty()) return {};
  const Signal opened = morph_open(x, baseline_width_w1(fs, cfg));
  return morph_close(opened, baseline_width_w2(fs, cfg));
}

Signal remove_baseline(SignalView x, SampleRate fs, const BaselineEstimatorConfig& cfg) {
  const Signal baseline = estimate_baseline(x, fs, cfg);
  Signal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - baseline[i];
  return out;
}

} // namespace icgkit::dsp
