#include "dsp/morphology.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace icgkit::dsp {

namespace {
enum class Extremum { Min, Max };

// Sliding window min/max over a centered window in O(n) using a monotonic
// deque. Window shrinks near the edges (equivalent to padding with the
// identity element).
Signal sliding_extremum(SignalView x, std::size_t width, Extremum kind) {
  if (width % 2 == 0 || width == 0)
    throw std::invalid_argument("morphology: structuring element width must be odd");
  const Index n = static_cast<Index>(x.size());
  const Index half = static_cast<Index>(width / 2);
  Signal out(x.size());
  std::deque<Index> dq; // indices, values monotone (front = current extremum)

  auto better = [&](double a, double b) {
    return kind == Extremum::Min ? a <= b : a >= b;
  };

  Index next_in = 0;
  for (Index center = 0; center < n; ++center) {
    const Index win_end = std::min<Index>(center + half, n - 1);
    const Index win_begin = std::max<Index>(center - half, 0);
    while (next_in <= win_end) {
      while (!dq.empty() && better(x[static_cast<std::size_t>(next_in)],
                                   x[static_cast<std::size_t>(dq.back())]))
        dq.pop_back();
      dq.push_back(next_in);
      ++next_in;
    }
    while (!dq.empty() && dq.front() < win_begin) dq.pop_front();
    out[static_cast<std::size_t>(center)] = x[static_cast<std::size_t>(dq.front())];
  }
  return out;
}

std::size_t make_odd(std::size_t w) { return (w % 2 == 0) ? w + 1 : w; }
} // namespace

Signal erode(SignalView x, std::size_t width) {
  return sliding_extremum(x, width, Extremum::Min);
}

Signal dilate(SignalView x, std::size_t width) {
  return sliding_extremum(x, width, Extremum::Max);
}

Signal morph_open(SignalView x, std::size_t width) {
  const Signal e = erode(x, width);
  return dilate(e, width);
}

Signal morph_close(SignalView x, std::size_t width) {
  const Signal d = dilate(x, width);
  return erode(d, width);
}

Signal estimate_baseline(SignalView x, SampleRate fs, const BaselineEstimatorConfig& cfg) {
  if (fs <= 0.0) throw std::invalid_argument("estimate_baseline: fs must be positive");
  if (x.empty()) return {};
  const std::size_t w1 =
      make_odd(std::max<std::size_t>(3, static_cast<std::size_t>(cfg.qrs_window_s * fs)));
  const std::size_t w2 = make_odd(
      std::max<std::size_t>(w1, static_cast<std::size_t>(cfg.wave_window_factor *
                                                         static_cast<double>(w1))));
  const Signal opened = morph_open(x, w1);
  return morph_close(opened, w2);
}

Signal remove_baseline(SignalView x, SampleRate fs, const BaselineEstimatorConfig& cfg) {
  const Signal baseline = estimate_baseline(x, fs, cfg);
  Signal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - baseline[i];
  return out;
}

// ---------------------------------------------------------------------------
// Streaming morphology
// ---------------------------------------------------------------------------

StreamingExtremum::StreamingExtremum(std::size_t width, Kind kind)
    : half_(width / 2), kind_(kind), dq_(width + 1) {
  if (width % 2 == 0 || width == 0)
    throw std::invalid_argument("StreamingExtremum: width must be odd");
}

void StreamingExtremum::emit_center(std::size_t center, Signal& out) {
  const std::size_t win_begin = center > half_ ? center - half_ : 0;
  while (!dq_.empty() && dq_.front().idx < win_begin) dq_.pop();
  out.push_back(dq_.front().v);
  ++emitted_;
}

void StreamingExtremum::push(Sample x, Signal& out) {
  const std::size_t idx = pushed_++;
  if (kind_ == Kind::Min) {
    while (!dq_.empty() && x <= dq_.back().v) dq_.pop_back();
  } else {
    while (!dq_.empty() && x >= dq_.back().v) dq_.pop_back();
  }
  dq_.push(Entry{idx, x});
  if (pushed_ > half_) emit_center(pushed_ - 1 - half_, out);
}

void StreamingExtremum::finish(Signal& out) {
  while (emitted_ < pushed_) emit_center(emitted_, out);
}

void StreamingExtremum::reset() {
  dq_.clear();
  pushed_ = 0;
  emitted_ = 0;
}

StreamingBaselineRemover::StreamingBaselineRemover(SampleRate fs,
                                                   const BaselineEstimatorConfig& cfg)
    : w1_(make_odd(std::max<std::size_t>(3, static_cast<std::size_t>(cfg.qrs_window_s * fs)))),
      w2_(make_odd(std::max<std::size_t>(
          w1_, static_cast<std::size_t>(cfg.wave_window_factor * static_cast<double>(w1_))))),
      delay_((w1_ - 1) + (w2_ - 1)),
      open_erode_(w1_, StreamingExtremum::Kind::Min),
      open_dilate_(w1_, StreamingExtremum::Kind::Max),
      close_dilate_(w2_, StreamingExtremum::Kind::Max),
      close_erode_(w2_, StreamingExtremum::Kind::Min),
      raw_delay_(delay_ + 1) {
  if (fs <= 0.0) throw std::invalid_argument("StreamingBaselineRemover: fs must be positive");
}

void StreamingBaselineRemover::push(Sample x, Signal& out) {
  raw_delay_.push(x);
  scratch1_.clear();
  open_erode_.push(x, scratch1_);
  scratch2_.clear();
  for (const Sample v : scratch1_) open_dilate_.push(v, scratch2_);
  scratch1_.clear();
  for (const Sample v : scratch2_) close_dilate_.push(v, scratch1_);
  scratch2_.clear();
  for (const Sample v : scratch1_) close_erode_.push(v, scratch2_);
  for (const Sample baseline : scratch2_) out.push_back(raw_delay_.pop() - baseline);
}

void StreamingBaselineRemover::finish(Signal& out) {
  scratch1_.clear();
  open_erode_.finish(scratch1_);
  scratch2_.clear();
  for (const Sample v : scratch1_) open_dilate_.push(v, scratch2_);
  open_dilate_.finish(scratch2_);
  scratch1_.clear();
  for (const Sample v : scratch2_) close_dilate_.push(v, scratch1_);
  close_dilate_.finish(scratch1_);
  scratch2_.clear();
  for (const Sample v : scratch1_) close_erode_.push(v, scratch2_);
  close_erode_.finish(scratch2_);
  for (const Sample baseline : scratch2_) out.push_back(raw_delay_.pop() - baseline);
}

void StreamingBaselineRemover::reset() {
  open_erode_.reset();
  open_dilate_.reset();
  close_dilate_.reset();
  close_erode_.reset();
  raw_delay_.clear();
}

} // namespace icgkit::dsp
