#include "dsp/moving.h"

#include <algorithm>
#include <stdexcept>

#include "support/contract.h"

namespace icgkit::dsp {

Signal moving_average(SignalView x, std::size_t width) {
  if (width == 0 || width % 2 == 0)
    ICGKIT_THROW(std::invalid_argument("moving_average: width must be odd"));
  const Index n = static_cast<Index>(x.size());
  const Index half = static_cast<Index>(width / 2);
  Signal y(x.size(), 0.0);
  double sum = 0.0;
  Index lo = 0, hi = -1; // current inclusive window [lo, hi]
  for (Index c = 0; c < n; ++c) {
    const Index want_lo = std::max<Index>(0, c - half);
    const Index want_hi = std::min<Index>(n - 1, c + half);
    while (hi < want_hi) sum += x[static_cast<std::size_t>(++hi)];
    while (lo < want_lo) sum -= x[static_cast<std::size_t>(lo++)];
    y[static_cast<std::size_t>(c)] = sum / static_cast<double>(want_hi - want_lo + 1);
  }
  return y;
}

Signal moving_window_integrate(SignalView x, std::size_t width) {
  if (width == 0) ICGKIT_THROW(std::invalid_argument("moving_window_integrate: width must be >= 1"));
  Signal y(x.size(), 0.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += x[i];
    if (i >= width) sum -= x[i - width];
    const std::size_t effective = std::min(i + 1, width);
    y[i] = sum / static_cast<double>(effective);
  }
  return y;
}

Signal ema(SignalView x, double alpha) {
  if (alpha <= 0.0 || alpha > 1.0) ICGKIT_THROW(std::invalid_argument("ema: alpha in (0, 1]"));
  Signal y(x.size());
  double state = x.empty() ? 0.0 : x[0];
  for (std::size_t i = 0; i < x.size(); ++i) {
    state = alpha * x[i] + (1.0 - alpha) * state;
    y[i] = state;
  }
  return y;
}

} // namespace icgkit::dsp
