#include "dsp/fixed_point.h"

#include <cmath>
#include <stdexcept>

namespace icgkit::dsp {

namespace {
constexpr double kQ30 = 1073741824.0; // 2^30

std::int32_t to_q30(double v) {
  if (v < -2.0 || v >= 2.0)
    throw std::invalid_argument("fixed_point: coefficient outside Q2.30 range");
  return static_cast<std::int32_t>(std::llround(v * kQ30));
}

// Q2.30 coefficient x Q1.31-ish state held in double-width accumulator.
inline std::int64_t mac(std::int64_t acc, std::int32_t coeff, std::int64_t value) {
  return acc + ((static_cast<std::int64_t>(coeff) * value) >> 30);
}
} // namespace

FixedBiquad FixedBiquad::from(const Biquad& s) {
  return {to_q30(s.b0), to_q30(s.b1), to_q30(s.b2), to_q30(s.a1), to_q30(s.a2)};
}

FixedSosFilter::FixedSosFilter(const SosFilter& design) {
  sections_.reserve(design.sections.size());
  for (std::size_t i = 0; i < design.sections.size(); ++i) {
    Biquad s = design.sections[i];
    if (i == 0) {
      s.b0 *= design.gain;
      s.b1 *= design.gain;
      s.b2 *= design.gain;
    }
    sections_.push_back(FixedBiquad::from(s));
  }
}

Signal FixedSosFilter::apply(SignalView x) const {
  // State in Q31 relative to unit full scale; transposed direct form II.
  constexpr double kQ31 = 2147483648.0; // 2^31
  std::vector<std::int64_t> s1(sections_.size(), 0), s2(sections_.size(), 0);
  Signal y(x.size());
  for (std::size_t n = 0; n < x.size(); ++n) {
    std::int64_t v = static_cast<std::int64_t>(std::llround(x[n] * kQ31));
    for (std::size_t k = 0; k < sections_.size(); ++k) {
      const FixedBiquad& c = sections_[k];
      const std::int64_t in = v;
      const std::int64_t out = mac(s1[k], c.b0, in);
      s1[k] = mac(mac(s2[k], c.b1, in), -c.a1, out);
      s2[k] = mac(mac(0, c.b2, in), -c.a2, out);
      v = out;
    }
    y[n] = static_cast<double>(v) / kQ31;
  }
  return y;
}

double fixed_point_error(const SosFilter& design, SignalView x) {
  const FixedSosFilter fixed(design);
  const Signal yd = sos_apply(design, x);
  const Signal yf = fixed.apply(x);
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    worst = std::max(worst, std::abs(yd[i] - yf[i]));
  return worst;
}

} // namespace icgkit::dsp
