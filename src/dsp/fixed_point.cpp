#include "dsp/fixed_point.h"

#include <algorithm>
#include <cmath>

namespace icgkit::dsp {

FixedBiquad FixedBiquad::from(const Biquad& s) {
  return {Q31Backend::coeff(s.b0), Q31Backend::coeff(s.b1), Q31Backend::coeff(s.b2),
          Q31Backend::coeff(s.a1), Q31Backend::coeff(s.a2)};
}

Signal FixedSosFilter::apply(SignalView x) const {
  // One shared arithmetic path: a private copy of the streaming engine
  // (fresh Q31 state) ticked sample by sample, converting at the Q1.31
  // boundary. Chunked tick() feeding is therefore bit-identical to
  // apply() by construction instead of by parallel implementation.
  BasicStreamingSos<Q31Backend> engine = engine_;
  engine.reset();
  Signal y(x.size());
  for (std::size_t n = 0; n < x.size(); ++n)
    y[n] = Q31Backend::to_real(engine.tick(Q31Backend::from_real(x[n])));
  return y;
}

double fixed_point_error(const SosFilter& design, SignalView x) {
  const FixedSosFilter fixed(design);
  const Signal yd = sos_apply(design, x);
  const Signal yf = fixed.apply(x);
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    worst = std::max(worst, std::abs(yd[i] - yf[i]));
  return worst;
}

} // namespace icgkit::dsp
