#include "dsp/fixed_point.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace icgkit::dsp {

namespace {
constexpr double kQ30 = 1073741824.0; // 2^30

std::int32_t to_q30(double v) {
  if (v < -2.0 || v >= 2.0)
    throw std::invalid_argument("fixed_point: coefficient outside Q2.30 range");
  return static_cast<std::int32_t>(std::llround(v * kQ30));
}

// Q2.30 coefficient x Q1.31-ish state held in double-width accumulator.
inline std::int64_t mac(std::int64_t acc, std::int32_t coeff, std::int64_t value) {
  return acc + ((static_cast<std::int64_t>(coeff) * value) >> 30);
}

// One transposed-DF2 step of the whole cascade over the given state.
inline std::int64_t cascade_step(const std::vector<FixedBiquad>& sections,
                                 std::vector<std::int64_t>& s1,
                                 std::vector<std::int64_t>& s2, std::int64_t v) {
  for (std::size_t k = 0; k < sections.size(); ++k) {
    const FixedBiquad& c = sections[k];
    const std::int64_t in = v;
    const std::int64_t out = mac(s1[k], c.b0, in);
    s1[k] = mac(mac(s2[k], c.b1, in), -c.a1, out);
    s2[k] = mac(mac(0, c.b2, in), -c.a2, out);
    v = out;
  }
  return v;
}
} // namespace

FixedBiquad FixedBiquad::from(const Biquad& s) {
  return {to_q30(s.b0), to_q30(s.b1), to_q30(s.b2), to_q30(s.a1), to_q30(s.a2)};
}

FixedSosFilter::FixedSosFilter(const SosFilter& design) {
  sections_.reserve(design.sections.size());
  for (std::size_t i = 0; i < design.sections.size(); ++i) {
    Biquad s = design.sections[i];
    if (i == 0) {
      s.b0 *= design.gain;
      s.b1 *= design.gain;
      s.b2 *= design.gain;
    }
    sections_.push_back(FixedBiquad::from(s));
  }
  s1_.assign(sections_.size(), 0);
  s2_.assign(sections_.size(), 0);
}

Signal FixedSosFilter::apply(SignalView x) const {
  // State in Q31 relative to unit full scale; transposed direct form II.
  constexpr double kQ31 = 2147483648.0; // 2^31
  std::vector<std::int64_t> s1(sections_.size(), 0), s2(sections_.size(), 0);
  Signal y(x.size());
  for (std::size_t n = 0; n < x.size(); ++n) {
    const std::int64_t v = static_cast<std::int64_t>(std::llround(x[n] * kQ31));
    y[n] = static_cast<double>(cascade_step(sections_, s1, s2, v)) / kQ31;
  }
  return y;
}

std::int32_t FixedSosFilter::tick(std::int32_t x_q31) {
  const std::int64_t out = cascade_step(sections_, s1_, s2_, x_q31);
  // Saturate to Q1.31 the way the Cortex-M SSAT instruction would.
  constexpr std::int64_t kMax = 2147483647;
  constexpr std::int64_t kMin = -2147483648LL;
  return static_cast<std::int32_t>(out > kMax ? kMax : (out < kMin ? kMin : out));
}

void FixedSosFilter::reset_state() {
  std::fill(s1_.begin(), s1_.end(), 0);
  std::fill(s2_.begin(), s2_.end(), 0);
}

double fixed_point_error(const SosFilter& design, SignalView x) {
  const FixedSosFilter fixed(design);
  const Signal yd = sos_apply(design, x);
  const Signal yf = fixed.apply(x);
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    worst = std::max(worst, std::abs(yd[i] - yf[i]));
  return worst;
}

} // namespace icgkit::dsp
