// Denormal (subnormal) hygiene for the double hot path.
//
// IIR tails decaying toward zero eventually produce subnormal doubles,
// which many x86 cores handle via microcode assists costing 50-100x a
// normal multiply -- enough to wreck the lockstep timing the SIMD batch
// backend depends on (one slow lane stalls all W). The streaming
// pipeline's accuracy budget is nowhere near 1e-308, so the standard
// real-time-audio remedy applies: set the FPU to flush-to-zero (FTZ) and
// denormals-are-zero (DAZ) for the processing thread.
//
// DenormalGuard is an RAII scope: engage on a worker thread's entry,
// restore the previous FPU mode on exit. The mode is per-thread; the
// fleet engages it in every worker loop and the benches in their timing
// loops, so identity comparisons always run both sides under the same
// mode. On targets without an FTZ control this is a no-op (supported()
// reports it, and the denormal test skips itself).
#pragma once

#if defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64)
#include <immintrin.h>
#define ICGKIT_DENORMAL_X86 1
#elif defined(__aarch64__)
#define ICGKIT_DENORMAL_AARCH64 1
#endif

namespace icgkit::dsp {

class DenormalGuard {
 public:
  DenormalGuard() {
#if defined(ICGKIT_DENORMAL_X86)
    saved_ = _mm_getcsr();
    // Bit 15: FTZ (results flush to zero); bit 6: DAZ (inputs treated as
    // zero). DAZ exists on every SSE2-capable core this project targets.
    _mm_setcsr(saved_ | 0x8040u);
#elif defined(ICGKIT_DENORMAL_AARCH64)
    asm volatile("mrs %0, fpcr" : "=r"(saved_));
    // FZ (bit 24): flush-to-zero for denormal inputs and outputs.
    asm volatile("msr fpcr, %0" ::"r"(saved_ | (1ull << 24)));
#endif
  }

  ~DenormalGuard() {
#if defined(ICGKIT_DENORMAL_X86)
    _mm_setcsr(saved_);
#elif defined(ICGKIT_DENORMAL_AARCH64)
    asm volatile("msr fpcr, %0" ::"r"(saved_));
#endif
  }

  DenormalGuard(const DenormalGuard&) = delete;
  DenormalGuard& operator=(const DenormalGuard&) = delete;

  /// Whether this build can actually flush denormals (false => no-op).
  static constexpr bool supported() {
#if defined(ICGKIT_DENORMAL_X86) || defined(ICGKIT_DENORMAL_AARCH64)
    return true;
#else
    return false;
#endif
  }

 private:
#if defined(ICGKIT_DENORMAL_X86)
  unsigned int saved_ = 0;
#elif defined(ICGKIT_DENORMAL_AARCH64)
  unsigned long long saved_ = 0;
#endif
};

} // namespace icgkit::dsp
