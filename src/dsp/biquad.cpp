#include "dsp/biquad.h"

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

namespace icgkit::dsp {

Signal sos_apply(const SosFilter& filter, SignalView x) {
  Signal y(x.begin(), x.end());
  for (const Biquad& s : filter.sections) {
    double s1 = 0.0, s2 = 0.0;
    for (auto& v : y) {
      const double in = v;
      const double out = s.b0 * in + s1;
      s1 = s.b1 * in - s.a1 * out + s2;
      s2 = s.b2 * in - s.a2 * out;
      v = out;
    }
  }
  for (auto& v : y) v *= filter.gain;
  return y;
}

Signal sos_apply_steady(const SosFilter& filter, SignalView x) {
  if (x.empty()) return {};
  Signal y(x.begin(), x.end());
  double level = x[0]; // DC level entering the current section
  for (const Biquad& s : filter.sections) {
    // Steady state for constant input u (transposed direct form II):
    //   out = g*u,  s1 = out - b0*u,  s2 = s1 - b1*u + a1*out
    const double den = 1.0 + s.a1 + s.a2;
    const double g = (std::abs(den) > 1e-300) ? (s.b0 + s.b1 + s.b2) / den : 0.0;
    const double u = level;
    const double out0 = g * u;
    double s1 = out0 - s.b0 * u;
    double s2 = s1 - s.b1 * u + s.a1 * out0;
    for (auto& v : y) {
      const double in = v;
      const double out = s.b0 * in + s1;
      s1 = s.b1 * in - s.a1 * out + s2;
      s2 = s.b2 * in - s.a2 * out;
      v = out;
    }
    level = out0;
  }
  for (auto& v : y) v *= filter.gain;
  return y;
}

double sos_magnitude_at(const SosFilter& filter, double freq_hz, SampleRate fs) {
  const double omega = 2.0 * std::numbers::pi * freq_hz / fs;
  const std::complex<double> z_inv = std::polar(1.0, -omega);
  const std::complex<double> z_inv2 = z_inv * z_inv;
  std::complex<double> h{filter.gain, 0.0};
  for (const Biquad& s : filter.sections) {
    const std::complex<double> num = s.b0 + s.b1 * z_inv + s.b2 * z_inv2;
    const std::complex<double> den = 1.0 + s.a1 * z_inv + s.a2 * z_inv2;
    h *= num / den;
  }
  return std::abs(h);
}

} // namespace icgkit::dsp
