// Discrete derivative operators.
//
// The ICG delineator (Section IV-C) relies on the 1st, 2nd and 3rd
// derivatives of the ICG waveform and their sign patterns; Pan-Tompkins
// uses the classic 5-point derivative. All operators scale by fs so the
// output is in signal-units per second.
#pragma once

#include "dsp/types.h"

namespace icgkit::dsp {

/// Central-difference first derivative: y[n] = (x[n+1] - x[n-1]) * fs / 2,
/// one-sided at the edges. Output length equals input length.
Signal derivative(SignalView x, SampleRate fs);

/// Second derivative: y[n] = (x[n+1] - 2 x[n] + x[n-1]) * fs^2; edges copy
/// their neighbours.
Signal second_derivative(SignalView x, SampleRate fs);

/// Third derivative via derivative(second_derivative(x)).
Signal third_derivative(SignalView x, SampleRate fs);

/// Allocation-free variants for the streaming hot path: write into a
/// caller-owned buffer whose capacity is reused across calls. Values are
/// bit-identical to the returning forms above.
void derivative_into(SignalView x, SampleRate fs, Signal& y);
void second_derivative_into(SignalView x, SampleRate fs, Signal& y);
/// `scratch` holds the intermediate second derivative.
void third_derivative_into(SignalView x, SampleRate fs, Signal& scratch, Signal& y);

/// The Pan-Tompkins 5-point derivative,
/// y[n] = (2 x[n] + x[n-1] - x[n-3] - 2 x[n-4]) * fs / 8, delay 2 samples
/// (compensated: output is aligned with the input). Edges use the
/// central-difference fallback.
Signal five_point_derivative(SignalView x, SampleRate fs);

/// Sign of v with a dead zone: -1, 0 or +1, where |v| <= eps maps to 0.
int sign_with_tolerance(double v, double eps);

} // namespace icgkit::dsp
