// Common scalar/sequence aliases for the whole toolkit.
//
// All continuous-valued signal processing is done in double precision: the
// target MCU (STM32L151) quantizes at 12-16 bits, so double leaves the
// algorithm error far below the acquisition error and keeps the offline
// reference implementation bit-stable across platforms.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace icgkit::dsp {

/// One continuous-valued sample (always double in the reference path;
/// the Q31 firmware path has its own sample type, see dsp/backend.h).
using Sample = double;
/// An owned contiguous signal.
using Signal = std::vector<Sample>;
/// A non-owning read-only view over a signal (or any sample array).
using SignalView = std::span<const Sample>;

/// Sampling rate in Hz. Kept as its own type name so call sites read
/// `SampleRate fs` rather than a bare double.
using SampleRate = double;

/// Index into a Signal. Signed so that differences of indices are safe.
using Index = std::ptrdiff_t;

} // namespace icgkit::dsp
