// Sample-rate conversion.
//
// The device ADC samples from 125 Hz to 16 kHz (Section III-A); the
// evaluation uses fs = 250 Hz. The resampler lets the synthesizer run at a
// high internal rate (for clean ground truth) and then decimate to any
// device rate.
#pragma once

#include "dsp/types.h"

namespace icgkit::dsp {

/// Linear-interpolation resampling from fs_in to fs_out. The output covers
/// the same time span [0, (n-1)/fs_in].
Signal resample_linear(SignalView x, SampleRate fs_in, SampleRate fs_out);

/// Integer-factor decimation with an anti-alias Butterworth low-pass
/// (zero-phase) at 0.4 * fs_out.
Signal decimate(SignalView x, std::size_t factor, SampleRate fs_in);

} // namespace icgkit::dsp
