// Streaming zero-phase high-pass for baseline suppression.
//
// The batch chains remove sub-hertz baseline with a zero-phase (filtfilt)
// Butterworth high-pass. A streaming engine cannot run filtfilt, and a
// full-rate symmetric-kernel equivalent of a 0.8 Hz high-pass needs a
// kernel spanning seconds (thousands of MACs per sample). This stage uses
// the structure high-pass = delayed identity - zero-phase low-pass, and
// computes the low-pass (the baseline estimate) at a decimated rate:
//
//   x -> block means (M samples, anti-alias by the block-mean sinc nulls)
//     -> symmetric zero-phase kernel of the Butterworth low-pass at fs/M
//     -> linear interpolation back to full rate
//   y[i] = x[i] - baseline[i]
//
// Every step is linear-phase, so the stage is zero-phase end to end with
// a fixed integer group delay (delay()) that the caller absorbs exactly
// like StreamingZeroPhaseFir: out[i] is aligned with input x[i], emitted
// once the baseline estimate covering i is available. Amortized cost is
// O(1) per sample (one add for the block mean plus kernel_len/M MACs).
//
// The baseline is band-limited far below fs/(2M), so block-mean
// decimation and linear interpolation contribute percent-level error at
// the folding frequencies only -- negligible against the suppression this
// stage exists to provide.
#pragma once

#include "dsp/filtfilt.h"
#include "dsp/ring_buffer.h"
#include "dsp/types.h"

#include <cstddef>

namespace icgkit::dsp {

struct ZeroPhaseHighpassConfig {
  double cutoff_hz = 0.8;
  std::size_t order = 2;      ///< Butterworth order of the baseline low-pass
  /// Decimation factor; 0 = auto (keeps the decimated rate ~16x cutoff).
  std::size_t decimation = 0;
  double kernel_tol = 1e-4;   ///< truncation tolerance of the baseline kernel
};

class StreamingZeroPhaseHighpass {
 public:
  StreamingZeroPhaseHighpass(SampleRate fs, const ZeroPhaseHighpassConfig& cfg = {});

  /// Feeds one sample; appends newly aligned high-passed outputs to `out`.
  void push(Sample x, Signal& out);
  void process_chunk(SignalView x, Signal& out);
  /// End of stream: flushes the remaining delayed outputs (flat baseline
  /// extrapolation over the last partial block).
  void finish(Signal& out);
  void reset();

  /// Worst-case group delay in input samples.
  [[nodiscard]] std::size_t delay() const;
  [[nodiscard]] std::size_t decimation() const { return m_; }

 private:
  void feed_block(Sample mean, Signal& out);
  void on_baseline(Sample u, Signal& out);
  void emit(Sample baseline, Signal& out);

  std::size_t m_;                 ///< decimation factor
  StreamingZeroPhaseFir base_;    ///< baseline kernel at the decimated rate
  RingBuffer<Sample> raw_;        ///< inputs awaiting their baseline
  Signal u_scratch_;

  double block_acc_ = 0.0;
  std::size_t block_fill_ = 0;
  std::size_t in_count_ = 0;
  std::size_t next_out_ = 0;
  std::size_t u_count_ = 0;
  Sample prev_u_ = 0.0;
};

} // namespace icgkit::dsp
