// Streaming zero-phase high-pass for baseline suppression.
//
// The batch chains remove sub-hertz baseline with a zero-phase (filtfilt)
// Butterworth high-pass. A streaming engine cannot run filtfilt, and a
// full-rate symmetric-kernel equivalent of a 0.8 Hz high-pass needs a
// kernel spanning seconds (thousands of MACs per sample). This stage uses
// the structure high-pass = delayed identity - zero-phase low-pass, and
// computes the low-pass (the baseline estimate) at a decimated rate:
//
//   x -> block means (M samples, anti-alias by the block-mean sinc nulls)
//     -> symmetric zero-phase kernel of the Butterworth low-pass at fs/M
//     -> linear interpolation back to full rate
//   y[i] = x[i] - baseline[i]
//
// Every step is linear-phase, so the stage is zero-phase end to end with
// a fixed integer group delay (delay()) that the caller absorbs exactly
// like StreamingZeroPhaseFir: out[i] is aligned with input x[i], emitted
// once the baseline estimate covering i is available. Amortized cost is
// O(1) per sample (one add for the block mean plus kernel_len/M MACs).
//
// The baseline is band-limited far below fs/(2M), so block-mean
// decimation and linear interpolation contribute percent-level error at
// the folding frequencies only -- negligible against the suppression this
// stage exists to provide.
//
// Generic over the numeric backend (dsp/backend.h): under Q31Backend the
// block mean is a 64-bit sum with an integer division, the baseline
// kernel runs the quantized MAC loop, and the interpolation is the
// integer lerp -- the arithmetic an FPU-less firmware would use.
#pragma once

#include "dsp/backend.h"
#include "dsp/filtfilt.h"
#include "dsp/ring_buffer.h"
#include "dsp/types.h"

#include <cstddef>
#include <span>
#include <vector>

namespace icgkit::dsp {

struct ZeroPhaseHighpassConfig {
  double cutoff_hz = 0.8;
  std::size_t order = 2;      ///< Butterworth order of the baseline low-pass
  /// Decimation factor; 0 = auto (keeps the decimated rate ~16x cutoff).
  std::size_t decimation = 0;
  double kernel_tol = 1e-4;   ///< truncation tolerance of the baseline kernel
};

/// Decimation factor the stage will use (validates fs/cutoff).
std::size_t zero_phase_highpass_decimation(SampleRate fs,
                                           const ZeroPhaseHighpassConfig& cfg);
/// The baseline low-pass kernel at the decimated rate fs/m.
FirCoefficients zero_phase_highpass_kernel(SampleRate fs, std::size_t m,
                                           const ZeroPhaseHighpassConfig& cfg);

template <typename B>
class BasicStreamingZeroPhaseHighpass {
 public:
  using sample_t = typename B::sample_t;

  BasicStreamingZeroPhaseHighpass(SampleRate fs, const ZeroPhaseHighpassConfig& cfg = {})
      : m_(zero_phase_highpass_decimation(fs, cfg)),
        base_(zero_phase_highpass_kernel(fs, m_, cfg)),
        raw_((base_.delay() + 4) * m_ + m_ + 2) {}

  /// Feeds one sample; appends newly aligned high-passed outputs to `out`.
  void push(sample_t x, std::vector<sample_t>& out) {
    raw_.push(x);
    ++in_count_;
    block_acc_ = B::acc_add(block_acc_, x);
    if (++block_fill_ == m_) {
      feed_block(B::mean(block_acc_, m_), out);
      block_acc_ = B::acc_zero();
      block_fill_ = 0;
    }
  }

  /// Typed span: cross-backend container mixups fail to compile.
  void process_chunk(std::span<const sample_t> x, std::vector<sample_t>& out) {
    for (const sample_t v : x) push(v, out);
  }

  /// End of stream: flushes the remaining delayed outputs (flat baseline
  /// extrapolation over the last partial block).
  void finish(std::vector<sample_t>& out) {
    if (block_fill_ > 0) {
      feed_block(B::mean(block_acc_, block_fill_), out);
      block_acc_ = B::acc_zero();
      block_fill_ = 0;
    }
    u_scratch_.clear();
    base_.finish(u_scratch_);
    for (const sample_t u : u_scratch_) on_baseline(u, out);
    // Flat extrapolation of the last baseline over the trailing half block.
    while (next_out_ < in_count_) emit(prev_u_, out);
  }

  void reset() {
    base_.reset();
    raw_.clear();
    u_scratch_.clear();
    block_acc_ = B::acc_zero();
    block_fill_ = 0;
    in_count_ = 0;
    next_out_ = 0;
    u_count_ = 0;
    prev_u_ = sample_t{};
  }

  /// Serializes the baseline kernel, the pending-input ring, the partial
  /// block accumulator and the interpolation cursors for core::Checkpoint
  /// round trips; load_state() rejects blobs with a different decimation.
  template <typename W>
  void save_state(W& w) const {
    w.u64(m_);
    base_.save_state(w);
    raw_.save_state(w);
    w.value(block_acc_);
    w.u64(block_fill_);
    w.u64(in_count_);
    w.u64(next_out_);
    w.u64(u_count_);
    w.value(prev_u_);
  }

  template <typename R>
  void load_state(R& r) {
    if (r.u64() != m_) r.fail("StreamingZeroPhaseHighpass: decimation mismatch");
    base_.load_state(r);
    raw_.load_state(r, "StreamingZeroPhaseHighpass");
    block_acc_ = r.template value<typename B::acc_t>();
    block_fill_ = r.u64();
    in_count_ = r.u64();
    next_out_ = r.u64();
    u_count_ = r.u64();
    prev_u_ = r.template value<sample_t>();
  }

  /// Worst-case group delay in input samples.
  [[nodiscard]] std::size_t delay() const { return (base_.delay() + 2) * m_ + m_ / 2; }
  [[nodiscard]] std::size_t decimation() const { return m_; }

 private:
  void feed_block(sample_t mean, std::vector<sample_t>& out) {
    u_scratch_.clear();
    base_.push(mean, u_scratch_);
    for (const sample_t u : u_scratch_) on_baseline(u, out);
  }

  void on_baseline(sample_t u, std::vector<sample_t>& out) {
    const std::size_t k = u_count_++;
    if (k == 0) {
      prev_u_ = u;
      return;
    }
    // Baseline sample k sits at input position c_k = k*m + m/2; interpolate
    // linearly across [c_{k-1}, c_k) (flat before c_0 at the very start).
    const std::size_t c_prev = (k - 1) * m_ + m_ / 2;
    const std::size_t c_cur = k * m_ + m_ / 2;
    // The final (partial-block) baseline can claim a center past the end of
    // the input; never emit more outputs than samples consumed.
    while (next_out_ < c_cur && next_out_ < in_count_) {
      sample_t baseline;
      if (next_out_ < c_prev) {
        baseline = prev_u_; // only before c_0: flat extrapolation
      } else {
        baseline = B::lerp(prev_u_, u, next_out_ - c_prev, m_);
      }
      emit(baseline, out);
    }
    prev_u_ = u;
  }

  void emit(sample_t baseline, std::vector<sample_t>& out) {
    out.push_back(B::sub(raw_.pop(), baseline));
    ++next_out_;
  }

  std::size_t m_;                          ///< decimation factor
  BasicStreamingZeroPhaseFir<B> base_;     ///< baseline kernel, decimated rate
  RingBuffer<sample_t> raw_;               ///< inputs awaiting their baseline
  std::vector<sample_t> u_scratch_;

  typename B::acc_t block_acc_ = B::acc_zero();
  std::size_t block_fill_ = 0;
  std::size_t in_count_ = 0;
  std::size_t next_out_ = 0;
  std::size_t u_count_ = 0;
  sample_t prev_u_ = sample_t{};
};

using StreamingZeroPhaseHighpass = BasicStreamingZeroPhaseHighpass<DoubleBackend>;

} // namespace icgkit::dsp
