// Portable fixed-width lane vector for the SIMD batch backend.
//
// LaneVec<W> is a structure-of-arrays register of W double lanes. On
// GCC/Clang it is backed by the compiler vector extension
// (__attribute__((vector_size))), which lowers to AVX/AVX2 on x86-64-v3,
// SSE2 pairs on baseline x86-64 and NEON pairs on aarch64 -- one type,
// the compiler picks the widest ISA the build targets. Elsewhere it
// falls back to a plain double array whose operators are scalar loops
// (auto-vectorizable, always correct).
//
// The batch identity contract (see BatchBackend in dsp/backend.h)
// depends on each lane performing exactly the scalar double expression:
// every operator here is elementwise IEEE double arithmetic with no
// reordering, no FMA contraction beyond what the scalar build does (the
// project compiles with -ffp-contract=off), and no horizontal ops.
#pragma once

#include <cstddef>

namespace icgkit::dsp {

#if defined(__GNUC__) || defined(__clang__)
#define ICGKIT_LANEVEC_NATIVE 1
#else
#define ICGKIT_LANEVEC_NATIVE 0
#endif

#if ICGKIT_LANEVEC_NATIVE
namespace detail {
// GCC does not accept a template-dependent vector_size, so the native
// vector types are spelled out per supported byte width.
template <std::size_t Bytes>
struct NativeLanes; // only the specialized widths exist
template <>
struct NativeLanes<16> {
  typedef double type __attribute__((vector_size(16)));
};
template <>
struct NativeLanes<32> {
  typedef double type __attribute__((vector_size(32)));
};
template <>
struct NativeLanes<64> {
  typedef double type __attribute__((vector_size(64)));
};
} // namespace detail
#endif

/// W double lanes advancing in lockstep. W must be a power of two so the
/// native vector extension applies (4 and 8 are the supported widths).
///
/// Width guidance: W=4 is one AVX2 register and the sweet spot on
/// x86-64-v3. W=8 wants AVX-512 (one zmm) — on AVX2 it is legal but each
/// value occupies two ymm registers, and register-hungry kernels (the
/// 4-section SOS cascade carries 8 lane vectors of state) spill every
/// tick, costing most of the lane win. Pick W=4 unless the build targets
/// x86-64-v4.
template <std::size_t W>
struct LaneVec {
  static_assert(W >= 2 && W <= 8 && (W & (W - 1)) == 0,
                "LaneVec: W must be 2, 4 or 8");

#if ICGKIT_LANEVEC_NATIVE
  using vec_t = typename detail::NativeLanes<W * sizeof(double)>::type;
  vec_t v{};
#else
  double v[W] = {};
#endif

  /// Broadcast construction (explicit: a stray scalar-to-vector
  /// conversion in kernel code would hide a missing batch op).
  static LaneVec broadcast(double x) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = x;
    return r;
  }

  [[nodiscard]] double lane(std::size_t i) const { return v[i]; }
  void set_lane(std::size_t i, double x) { v[i] = x; }

  // Elementwise arithmetic. The native path is a single vector op; the
  // fallback loops are the same expressions per lane.
#if ICGKIT_LANEVEC_NATIVE
  friend LaneVec operator+(LaneVec a, LaneVec b) { return LaneVec{a.v + b.v}; }
  friend LaneVec operator-(LaneVec a, LaneVec b) { return LaneVec{a.v - b.v}; }
  friend LaneVec operator*(LaneVec a, LaneVec b) { return LaneVec{a.v * b.v}; }
  friend LaneVec operator*(double c, LaneVec a) { return LaneVec{c * a.v}; }
  friend LaneVec operator*(LaneVec a, double c) { return LaneVec{a.v * c}; }
  friend LaneVec operator/(LaneVec a, double c) { return LaneVec{a.v / c}; }
  friend LaneVec operator-(LaneVec a) { return LaneVec{-a.v}; }
#else
  friend LaneVec operator+(LaneVec a, LaneVec b) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  friend LaneVec operator-(LaneVec a, LaneVec b) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  friend LaneVec operator*(LaneVec a, LaneVec b) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  friend LaneVec operator*(double c, LaneVec a) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = c * a.v[i];
    return r;
  }
  friend LaneVec operator*(LaneVec a, double c) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] * c;
    return r;
  }
  friend LaneVec operator/(LaneVec a, double c) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] / c;
    return r;
  }
  friend LaneVec operator-(LaneVec a) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = -a.v[i];
    return r;
  }
#endif
};

/// Compile-time name of the widest ISA the lane vector lowers to in this
/// build -- reported by benches so gate floors can be ISA-aware.
constexpr const char* lane_isa() {
#if defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__AVX__)
  return "avx";
#elif defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64)
  return "sse2";
#elif defined(__ARM_NEON)
  return "neon";
#elif ICGKIT_LANEVEC_NATIVE
  return "vector-ext";
#else
  return "scalar";
#endif
}

/// Default lockstep batch width for this build's ISA — what
/// FleetConfig::batch_width = 0 resolves to.
///
/// Width guidance: a W-lane batch keeps W doubles of every kernel state
/// variable live at once, so the right width is the widest the register
/// file carries without spilling. W=8 spans two 4-lane YMM registers on
/// plain AVX2 and the biquad/moving kernels spill to the stack, which
/// measures *slower* than W=4 there; only a 512-bit register file
/// (AVX-512) or NEON's 32-register file profits from W=8. Builds whose
/// lane vector lowers to scalar or SSE2 code (e.g. generic x86-64
/// without -march) gain nothing from lockstep batching, so the default
/// keeps them scalar rather than paying the batch-group bookkeeping.
constexpr std::size_t default_batch_width() {
#if defined(__AVX512F__) || defined(__ARM_NEON)
  return 8;
#elif defined(__AVX2__)
  return 4;
#else
  return 1;
#endif
}

} // namespace icgkit::dsp
