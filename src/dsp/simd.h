// Portable fixed-width lane vector for the SIMD batch backend.
//
// LaneVec<W> is a structure-of-arrays register of W double lanes. On
// GCC/Clang it is backed by the compiler vector extension
// (__attribute__((vector_size))), which lowers to AVX/AVX2 on x86-64-v3,
// SSE2 pairs on baseline x86-64 and NEON pairs on aarch64 -- one type,
// the compiler picks the widest ISA the build targets. Elsewhere it
// falls back to a plain double array whose operators are scalar loops
// (auto-vectorizable, always correct).
//
// The batch identity contract (see BatchBackend in dsp/backend.h)
// depends on each lane performing exactly the scalar double expression:
// every operator here is elementwise IEEE double arithmetic with no
// reordering, no FMA contraction beyond what the scalar build does (the
// project compiles with -ffp-contract=off), and no horizontal ops.
#pragma once

#include <cstddef>

namespace icgkit::dsp {

#if defined(__GNUC__) || defined(__clang__)
#define ICGKIT_LANEVEC_NATIVE 1
#else
#define ICGKIT_LANEVEC_NATIVE 0
#endif

#if ICGKIT_LANEVEC_NATIVE
namespace detail {
// GCC does not accept a template-dependent vector_size, so the native
// vector types are spelled out per supported byte width.
template <std::size_t Bytes>
struct NativeLanes; // only the specialized widths exist
template <>
struct NativeLanes<16> {
  typedef double type __attribute__((vector_size(16)));
};
template <>
struct NativeLanes<32> {
  typedef double type __attribute__((vector_size(32)));
};

#if defined(__AVX2__) && !defined(__AVX512F__)
// 64-byte lane vectors on a 32-byte ISA. A generic vector_size(64) type
// makes GCC treat each W=8 value as one indivisible 64-byte object: the
// register allocator must find two *paired* ymm registers per value, and
// state-heavy kernels (an SOS section carries s1+s2, a batch FIR the
// accumulator plus the tap broadcast) run out of pairs and spill every
// tick. Splitting the value into two explicit 32-byte halves gives the
// allocator eight independent ymm values to juggle instead of four
// pairs, which is what lets W=8 *beat* W=4 on plain AVX2 instead of
// losing to it. Elementwise semantics are unchanged: every operator
// applies the identical IEEE double expression per lane, half by half,
// with no cross-half (horizontal) operations.
struct PairLanes64 {
  typedef double half_t __attribute__((vector_size(32)));
  half_t lo{}, hi{};

  double& operator[](std::size_t i) { return i < 4 ? lo[i] : hi[i - 4]; }
  double operator[](std::size_t i) const { return i < 4 ? lo[i] : hi[i - 4]; }

  friend PairLanes64 operator+(PairLanes64 a, PairLanes64 b) {
    return PairLanes64{a.lo + b.lo, a.hi + b.hi};
  }
  friend PairLanes64 operator-(PairLanes64 a, PairLanes64 b) {
    return PairLanes64{a.lo - b.lo, a.hi - b.hi};
  }
  friend PairLanes64 operator*(PairLanes64 a, PairLanes64 b) {
    return PairLanes64{a.lo * b.lo, a.hi * b.hi};
  }
  friend PairLanes64 operator*(double c, PairLanes64 a) {
    return PairLanes64{c * a.lo, c * a.hi};
  }
  friend PairLanes64 operator*(PairLanes64 a, double c) {
    return PairLanes64{a.lo * c, a.hi * c};
  }
  friend PairLanes64 operator/(PairLanes64 a, double c) {
    return PairLanes64{a.lo / c, a.hi / c};
  }
  friend PairLanes64 operator-(PairLanes64 a) { return PairLanes64{-a.lo, -a.hi}; }
};
template <>
struct NativeLanes<64> {
  using type = PairLanes64;
};
#else
template <>
struct NativeLanes<64> {
  typedef double type __attribute__((vector_size(64)));
};
#endif
} // namespace detail
#endif

/// W double lanes advancing in lockstep. W must be a power of two so the
/// native vector extension applies (4 and 8 are the supported widths).
///
/// Width guidance: W=8 is one zmm on AVX-512 and, on plain AVX2, two
/// *independent* ymm halves (detail::PairLanes64) — the split keeps the
/// register allocator free to schedule eight 32-byte values instead of
/// four paired 64-byte ones, so the 4-section SOS cascade's state stays
/// in registers and W=8 beats W=4 on both ISAs. W=4 remains the fallback
/// for register files that cannot hold the doubled state (SSE2-only
/// builds, where every lane vector is already emulated).
template <std::size_t W>
struct LaneVec {
  static_assert(W >= 2 && W <= 8 && (W & (W - 1)) == 0,
                "LaneVec: W must be 2, 4 or 8");

#if ICGKIT_LANEVEC_NATIVE
  using vec_t = typename detail::NativeLanes<W * sizeof(double)>::type;
  vec_t v{};
#else
  double v[W] = {};
#endif

  /// Broadcast construction (explicit: a stray scalar-to-vector
  /// conversion in kernel code would hide a missing batch op).
  static LaneVec broadcast(double x) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = x;
    return r;
  }

  [[nodiscard]] double lane(std::size_t i) const { return v[i]; }
  void set_lane(std::size_t i, double x) { v[i] = x; }

  // Elementwise arithmetic. The native path is a single vector op; the
  // fallback loops are the same expressions per lane.
#if ICGKIT_LANEVEC_NATIVE
  friend LaneVec operator+(LaneVec a, LaneVec b) { return LaneVec{a.v + b.v}; }
  friend LaneVec operator-(LaneVec a, LaneVec b) { return LaneVec{a.v - b.v}; }
  friend LaneVec operator*(LaneVec a, LaneVec b) { return LaneVec{a.v * b.v}; }
  friend LaneVec operator*(double c, LaneVec a) { return LaneVec{c * a.v}; }
  friend LaneVec operator*(LaneVec a, double c) { return LaneVec{a.v * c}; }
  friend LaneVec operator/(LaneVec a, double c) { return LaneVec{a.v / c}; }
  friend LaneVec operator-(LaneVec a) { return LaneVec{-a.v}; }
#else
  friend LaneVec operator+(LaneVec a, LaneVec b) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  friend LaneVec operator-(LaneVec a, LaneVec b) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  friend LaneVec operator*(LaneVec a, LaneVec b) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  friend LaneVec operator*(double c, LaneVec a) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = c * a.v[i];
    return r;
  }
  friend LaneVec operator*(LaneVec a, double c) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] * c;
    return r;
  }
  friend LaneVec operator/(LaneVec a, double c) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] / c;
    return r;
  }
  friend LaneVec operator-(LaneVec a) {
    LaneVec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = -a.v[i];
    return r;
  }
#endif
};

/// Compile-time name of the widest ISA the lane vector lowers to in this
/// build -- reported by benches so gate floors can be ISA-aware.
constexpr const char* lane_isa() {
#if defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__AVX__)
  return "avx";
#elif defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64)
  return "sse2";
#elif defined(__ARM_NEON)
  return "neon";
#elif ICGKIT_LANEVEC_NATIVE
  return "vector-ext";
#else
  return "scalar";
#endif
}

/// Default lockstep batch width for this build's ISA — what
/// FleetConfig::batch_width = 0 resolves to.
///
/// Width guidance: a W-lane batch keeps W doubles of every kernel state
/// variable live at once, so the right width is the widest the register
/// file carries without spilling. On AVX-512 and NEON that is trivially
/// W=8 (one zmm / the 32-register file). On plain AVX2, W=8 used to
/// spill — a monolithic 64-byte vector needs paired ymm registers — but
/// the two-half lowering (detail::PairLanes64) splits each value into
/// two independently-allocatable ymm halves, so W=8 now amortizes the
/// per-sample batch bookkeeping over twice the lanes and beats W=4
/// there too. Builds whose lane vector lowers to scalar or SSE2 code
/// (e.g. generic x86-64 without -march) gain nothing from lockstep
/// batching, so the default keeps them scalar rather than paying the
/// batch-group bookkeeping.
constexpr std::size_t default_batch_width() {
#if defined(__AVX512F__) || defined(__ARM_NEON) || defined(__AVX2__)
  return 8;
#else
  return 1;
#endif
}

} // namespace icgkit::dsp
