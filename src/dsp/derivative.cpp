#include "dsp/derivative.h"

#include <cmath>
#include <stdexcept>

#include "support/contract.h"

namespace icgkit::dsp {

void derivative_into(SignalView x, SampleRate fs, Signal& y) {
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("derivative: fs must be positive"));
  const std::size_t n = x.size();
  y.assign(n, 0.0);
  if (n < 2) return;
  y[0] = (x[1] - x[0]) * fs;
  for (std::size_t i = 1; i + 1 < n; ++i) y[i] = (x[i + 1] - x[i - 1]) * fs * 0.5;
  y[n - 1] = (x[n - 1] - x[n - 2]) * fs;
}

void second_derivative_into(SignalView x, SampleRate fs, Signal& y) {
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("second_derivative: fs must be positive"));
  const std::size_t n = x.size();
  y.assign(n, 0.0);
  if (n < 3) return;
  const double fs2 = fs * fs;
  for (std::size_t i = 1; i + 1 < n; ++i)
    y[i] = (x[i + 1] - 2.0 * x[i] + x[i - 1]) * fs2;
  y[0] = y[1];
  y[n - 1] = y[n - 2];
}

void third_derivative_into(SignalView x, SampleRate fs, Signal& scratch, Signal& y) {
  second_derivative_into(x, fs, scratch);
  derivative_into(scratch, fs, y);
}

Signal derivative(SignalView x, SampleRate fs) {
  Signal y;
  derivative_into(x, fs, y);
  return y;
}

Signal second_derivative(SignalView x, SampleRate fs) {
  Signal y;
  second_derivative_into(x, fs, y);
  return y;
}

Signal third_derivative(SignalView x, SampleRate fs) {
  Signal scratch, y;
  third_derivative_into(x, fs, scratch, y);
  return y;
}

Signal five_point_derivative(SignalView x, SampleRate fs) {
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("five_point_derivative: fs must be positive"));
  const std::size_t n = x.size();
  if (n < 5) return derivative(x, fs);
  Signal y(n, 0.0);
  // Aligned form: y[n] corresponds to the PT output at delay-compensated
  // position, i.e. uses x[n-2..n+2].
  for (std::size_t i = 2; i + 2 < n; ++i)
    y[i] = (2.0 * x[i + 2] + x[i + 1] - x[i - 1] - 2.0 * x[i - 2]) * fs / 8.0;
  const Signal fallback = derivative(x, fs);
  y[0] = fallback[0];
  y[1] = fallback[1];
  y[n - 2] = fallback[n - 2];
  y[n - 1] = fallback[n - 1];
  return y;
}

int sign_with_tolerance(double v, double eps) {
  if (std::abs(v) <= eps) return 0;
  return v > 0.0 ? 1 : -1;
}

} // namespace icgkit::dsp
