// Window functions for FIR design and spectral estimation.
#pragma once

#include "dsp/types.h"

#include <cstddef>

namespace icgkit::dsp {

/// Supported window families (FIR design tapers, Welch PSD segments).
enum class WindowKind {
  Rectangular, ///< all-ones (no taper)
  Hamming,     ///< 0.54 - 0.46 cos — the FIR-design default here
  Hann,        ///< raised cosine, zero at both ends
  Blackman,    ///< three-term, lowest side lobes of the set
};

/// Returns an n-point symmetric window of the given kind.
/// n == 0 returns an empty signal; n == 1 returns {1.0}.
Signal make_window(WindowKind kind, std::size_t n);

/// Multiplies `x` by the window in place. Window length must equal x.size().
void apply_window(Signal& x, SignalView window);

} // namespace icgkit::dsp
