// Moving-window operators: average, integration (Pan-Tompkins MWI) and
// exponential smoothing.
#pragma once

#include "dsp/backend.h"
#include "dsp/ring_buffer.h"
#include "dsp/types.h"

#include <cstddef>
#include <stdexcept>

#include "support/contract.h"

namespace icgkit::dsp {

/// Centered moving average over `width` samples (odd width; shrinking
/// windows at the edges).
Signal moving_average(SignalView x, std::size_t width);

/// Causal moving-window integration as used by Pan-Tompkins:
/// y[n] = mean(x[n-width+1 .. n]) with a growing window at the start.
Signal moving_window_integrate(SignalView x, std::size_t width);

/// First-order exponential moving average, y[n] = a*x[n] + (1-a)*y[n-1].
Signal ema(SignalView x, double alpha);

/// Streaming causal moving average (used by the embedded-style pipeline),
/// generic over the numeric backend (dsp/backend.h). Matches
/// moving_window_integrate sample for sample: y[n] =
/// mean(x[max(0, n-width+1) .. n]), growing window at the start. State
/// lives in a fixed-capacity RingBuffer, so tick() never allocates.
/// Under Q31Backend the running sum is a 64-bit integer and the mean an
/// integer division (the firmware form).
template <typename B>
class BasicStreamingMovingAverage {
 public:
  using sample_t = typename B::sample_t;

  explicit BasicStreamingMovingAverage(std::size_t width) : buf_(width == 0 ? 1 : width) {
    if (width == 0) ICGKIT_THROW(std::invalid_argument("StreamingMovingAverage: width must be >= 1"));
  }

  /// One sample in, one averaged sample out.
  sample_t tick(sample_t x) {
    // Same accumulation order as moving_window_integrate (add the incoming
    // sample, then retire the outgoing one) so chunked streaming stays
    // bit-identical to the batch kernel.
    const bool was_full = buf_.full();
    const sample_t oldest = was_full ? buf_.front() : sample_t{};
    buf_.push(x);
    sum_ = B::acc_add(sum_, x);
    if (was_full) sum_ = B::acc_sub(sum_, oldest);
    return B::mean(sum_, buf_.size());
  }
  /// Back-compat alias for tick().
  sample_t process(sample_t x) { return tick(x); }

  void reset() {
    buf_.clear();
    sum_ = B::acc_zero();
  }

  /// Serializes the window contents and running sum for core::Checkpoint
  /// round trips; load_state() rejects blobs with a different window
  /// capacity.
  template <typename W>
  void save_state(W& w) const {
    buf_.save_state(w);
    w.value(sum_);
  }

  template <typename R>
  void load_state(R& r) {
    buf_.load_state(r, "StreamingMovingAverage");
    sum_ = r.template value<typename B::acc_t>();
  }

 private:
  RingBuffer<sample_t> buf_;
  typename B::acc_t sum_ = B::acc_zero();
};

using StreamingMovingAverage = BasicStreamingMovingAverage<DoubleBackend>;

} // namespace icgkit::dsp
