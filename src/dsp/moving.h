// Moving-window operators: average, integration (Pan-Tompkins MWI) and
// exponential smoothing.
#pragma once

#include "dsp/ring_buffer.h"
#include "dsp/types.h"

#include <cstddef>

namespace icgkit::dsp {

/// Centered moving average over `width` samples (odd width; shrinking
/// windows at the edges).
Signal moving_average(SignalView x, std::size_t width);

/// Causal moving-window integration as used by Pan-Tompkins:
/// y[n] = mean(x[n-width+1 .. n]) with a growing window at the start.
Signal moving_window_integrate(SignalView x, std::size_t width);

/// First-order exponential moving average, y[n] = a*x[n] + (1-a)*y[n-1].
Signal ema(SignalView x, double alpha);

/// Streaming causal moving average (used by the embedded-style pipeline).
/// Matches moving_window_integrate sample for sample: y[n] =
/// mean(x[max(0, n-width+1) .. n]), growing window at the start. State
/// lives in a fixed-capacity RingBuffer, so tick() never allocates.
class StreamingMovingAverage {
 public:
  explicit StreamingMovingAverage(std::size_t width);

  /// One sample in, one averaged sample out.
  Sample tick(Sample x);
  /// Back-compat alias for tick().
  Sample process(Sample x) { return tick(x); }
  void reset();

 private:
  RingBuffer<Sample> buf_;
  double sum_ = 0.0;
};

} // namespace icgkit::dsp
