// Moving-window operators: average, integration (Pan-Tompkins MWI) and
// exponential smoothing.
#pragma once

#include "dsp/types.h"

#include <cstddef>
#include <deque>

namespace icgkit::dsp {

/// Centered moving average over `width` samples (odd width; shrinking
/// windows at the edges).
Signal moving_average(SignalView x, std::size_t width);

/// Causal moving-window integration as used by Pan-Tompkins:
/// y[n] = mean(x[n-width+1 .. n]) with a growing window at the start.
Signal moving_window_integrate(SignalView x, std::size_t width);

/// First-order exponential moving average, y[n] = a*x[n] + (1-a)*y[n-1].
Signal ema(SignalView x, double alpha);

/// Streaming causal moving average (used by the embedded-style pipeline).
class StreamingMovingAverage {
 public:
  explicit StreamingMovingAverage(std::size_t width);

  Sample process(Sample x);
  void reset();

 private:
  std::size_t width_;
  std::deque<Sample> buf_;
  double sum_ = 0.0;
};

} // namespace icgkit::dsp
