// Descriptive statistics and small regression helpers.
//
// Pearson correlation is the paper's headline metric (Tables II-IV);
// the least-squares line fit is used by the B-point detector (the B0
// estimate intersects a line fit of the ICG rise with the time axis,
// Section IV-C).
#pragma once

#include "dsp/types.h"

#include <cstddef>
#include <optional>

namespace icgkit::dsp {

/// Arithmetic mean; 0 for an empty signal.
double mean(SignalView x);
/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(SignalView x);
/// Square root of variance().
double stddev(SignalView x);
/// Root-mean-square value; 0 for an empty signal.
double rms(SignalView x);

/// Pearson correlation coefficient. Returns 0 when either input is
/// constant (correlation undefined). Sizes must match.
double pearson(SignalView x, SignalView y);

/// Median (copies and partially sorts). NaN-free input assumed.
double median(SignalView x);

/// Same estimator as median(), but partially sorts the given buffer in
/// place instead of copying — the allocation-free form for streaming hot
/// paths that already hold the samples in a reusable scratch buffer.
double median_inplace(std::span<Sample> x);

/// Median absolute deviation, scaled by 1.4826 so it estimates sigma for
/// Gaussian data.
double mad(SignalView x);

/// Linear percentile interpolation, p in [0, 100].
double percentile(SignalView x, double p);

/// Index of the maximum element (first occurrence; x must be non-empty).
std::size_t argmax(SignalView x);
/// Index of the minimum element (first occurrence; x must be non-empty).
std::size_t argmin(SignalView x);

/// A least-squares line y = slope * t + intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;

  [[nodiscard]] double at(double t) const { return slope * t + intercept; }
  /// The abscissa where the line crosses zero; nullopt if the line is flat.
  [[nodiscard]] std::optional<double> zero_crossing() const;
};

/// Least-squares fit of y over x (sizes must match, >= 2 points).
LineFit fit_line(SignalView x, SignalView y);

/// Least-squares fit of y over sample indices [0, n).
LineFit fit_line_indexed(SignalView y);

/// Relative error (a - b)/a as used in the paper's equations (1)-(3).
/// Returns 0 when a == 0.
double relative_error(double a, double b);

} // namespace icgkit::dsp
