/*
 * icgkit C ABI — the embeddable, stable, flat-C interface to the
 * streaming beat-to-beat engine.
 *
 * This is the libretro-style core interface the firmware and host-
 * language bindings link against: opaque session handles driven by
 *
 *   icg_session_create / icg_session_push / icg_session_poll_beat /
 *   icg_session_finish / icg_session_checkpoint / icg_session_restore /
 *   icg_session_destroy
 *
 * over fixed-layout plain-old-data structs, with the numeric backend
 * (double reference arithmetic vs the FPU-less Q1.31 firmware path)
 * selected at runtime per session.
 *
 * ABI rules (see docs/ARCHITECTURE.md, "The C ABI boundary"):
 *
 *  - This header parses as plain C89 (CI compiles it with
 *    `gcc -std=c89 -fsyntax-only`); every type is fixed-width and
 *    every struct is laid out with explicit 8-byte-first ordering so
 *    there are no padding holes and the layout is identical across
 *    compilers on any LP64/LLP64 platform.
 *  - The caller states the ABI revision it was compiled against in
 *    icg_config.abi_version; icg_session_create refuses a mismatch
 *    with ICG_ERR_ABI_MISMATCH instead of guessing. Any layout change
 *    to these structs bumps ICG_ABI_VERSION.
 *  - Struct fields are append-only within an ABI revision; `reserved`
 *    fields must be zero (create refuses otherwise), which is what
 *    lets a later minor revision assign them meaning.
 *  - No exception ever crosses this boundary: every C++ failure is
 *    caught and mapped to a negative icg_status; icg_last_error()
 *    returns the human-readable detail of this thread's most recent
 *    failure.
 *  - No heap allocation happens after icg_session_create on the push/
 *    poll/checkpoint hot path once the session has warmed up (the
 *    zero-steady-state-allocation property of the C++ engine, verified
 *    by the allocation-counter test against this ABI).
 *  - Handles stay valid-to-*check* after destroy: a destroyed or
 *    double-destroyed handle makes the next call return
 *    ICG_ERR_BAD_HANDLE — never undefined behaviour. (Handles encode a
 *    slot+generation into the pointer value; they are never
 *    dereferenced.)
 *
 * Checkpoint blobs produced here are the engine's native versioned,
 *  CRC-framed wire format (docs/ARCHITECTURE.md, "Checkpoint wire
 * format"): a blob saved through the C ABI restores in the C++ API and
 * vice versa, provided backend and configuration match.
 */
#ifndef ICGKIT_CAPI_ICGKIT_H
#define ICGKIT_CAPI_ICGKIT_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Bump on any incompatible change to the structs or functions below. */
#define ICG_ABI_VERSION 1u

/* ------------------------------------------------------------------ */
/* Status codes                                                        */
/* ------------------------------------------------------------------ */

/* Every function that can fail returns an int status: ICG_OK (0) or a
 * positive count on success, one of the negative codes below on
 * failure. Failures never leave a session in an undefined state: the
 * call is either fully applied or not applied (except where a code's
 * documentation states the session becomes poisoned). */
typedef enum icg_status {
  ICG_OK = 0,
  /* A NULL pointer argument where one is required. */
  ICG_ERR_NULL_ARG = -1,
  /* Handle does not name a live session (destroyed, double-destroyed,
   * or never valid). */
  ICG_ERR_BAD_HANDLE = -2,
  /* icg_config.abi_version does not equal ICG_ABI_VERSION. */
  ICG_ERR_ABI_MISMATCH = -3,
  /* A config field is out of range (backend unknown, sample rate not
   * positive, zero max_chunk, nonzero reserved field, ...). */
  ICG_ERR_BAD_CONFIG = -4,
  /* The operation is illegal in the session's current state (push
   * after finish, finish twice, ...). */
  ICG_ERR_BAD_STATE = -5,
  /* Push length exceeds icg_config.max_chunk. */
  ICG_ERR_CHUNK_TOO_LARGE = -6,
  /* The session's beat queue overflowed: the caller must poll between
   * pushes. The overflowing beats are lost, so the session is poisoned
   * — queued beats still drain via poll, but further pushes keep
   * returning this code. */
  ICG_ERR_BEAT_BACKLOG = -7,
  /* Checkpoint blob rejected: corrupt frame, truncated, version or
   * configuration mismatch — including a blob saved by the other
   * numeric backend. The session keeps its pre-call state only in the
   * sense that no undefined behaviour occurred; after a failed restore
   * the engine state is unspecified, so discard the session. */
  ICG_ERR_BAD_CHECKPOINT = -8,
  /* Caller-provided buffer too small; required size is reported where
   * the function documents it. */
  ICG_ERR_BUFFER_TOO_SMALL = -9,
  /* Out of sessions (the fixed handle table is full) or out of memory
   * during create. */
  ICG_ERR_NO_RESOURCES = -10,
  /* An internal invariant failed (a bug). icg_last_error() carries the
   * detail. */
  ICG_ERR_INTERNAL = -11
} icg_status;

/* ------------------------------------------------------------------ */
/* Configuration                                                       */
/* ------------------------------------------------------------------ */

typedef enum icg_backend {
  /* Double-precision reference arithmetic. */
  ICG_BACKEND_DOUBLE = 0,
  /* Q1.31 fixed-point sample-rate front (the FPU-less firmware path);
   * the beat-rate tail is double on both backends. */
  ICG_BACKEND_Q31 = 1
} icg_backend;

/* Session configuration. Always initialize with icg_config_init()
 * (which fills the defaults and stamps abi_version), then override
 * fields. Layout: doubles first, then 32-bit fields, no padding. */
typedef struct icg_config {
  double sample_rate_hz;        /* synchronized ECG+Z sample rate */
  double window_s;              /* look-back window (default 12 s) */
  uint32_t abi_version;         /* must be ICG_ABI_VERSION */
  uint32_t backend;             /* an icg_backend value */
  uint32_t enable_ensemble;     /* 0/1: optional ensemble-average stage */
  uint32_t max_chunk;           /* largest per-push length (samples) */
  uint32_t beat_queue_capacity; /* poll backlog before BEAT_BACKLOG */
  uint32_t reserved[5];         /* must be zero */
} icg_config;

/* ------------------------------------------------------------------ */
/* Output records                                                      */
/* ------------------------------------------------------------------ */

/* icg_beat.flaws bits (mirrors the C++ BeatFlaw set). A beat with
 * flaws == 0 is usable. */
#define ICG_FLAW_INVALID_DELINEATION  (1u << 0)
#define ICG_FLAW_PEP_OUT_OF_RANGE     (1u << 1)
#define ICG_FLAW_LVET_OUT_OF_RANGE    (1u << 2)
#define ICG_FLAW_AMPLITUDE_OUT_OF_RANGE (1u << 3)
#define ICG_FLAW_RR_OUT_OF_RANGE      (1u << 4)
#define ICG_FLAW_LOW_SNR              (1u << 5)
#define ICG_FLAW_SATURATED            (1u << 6)
#define ICG_FLAW_FLATLINE             (1u << 7)

/* One fully processed beat: the C projection of the C++ BeatRecord's
 * determinism-relevant fields (the beat_serializer wire shape). All
 * sample indices are absolute positions in the pushed stream. Layout:
 * 64-bit fields first, then 32-bit fields, no padding. */
typedef struct icg_beat {
  /* delineation (absolute sample indices) */
  uint64_t r;            /* ECG R peak opening this beat's R-R window */
  uint64_t b;            /* ICG B point (aortic valve opening) */
  uint64_t c;            /* ICG C point ((dZ/dt)max) */
  uint64_t x;            /* ICG X point (aortic valve closure) */
  uint64_t b0;           /* initial B estimate (line-fit intersection) */
  double c_amplitude;    /* ICG value at C, Ohm/s */
  double rr_s;           /* this beat's R-to-R interval, seconds */
  /* hemodynamics */
  double pep_s;
  double lvet_s;
  double hr_bpm;
  double dzdt_max;       /* Ohm/s */
  double sv_kubicek_ml;
  double sv_sramek_ml;
  double co_kubicek_l_min;
  double tfc_per_kohm;
  /* verdicts */
  uint32_t b_method;     /* B-point method the delineator used */
  uint32_t valid;        /* 0/1: delineation structurally valid */
  uint32_t flaws;        /* ICG_FLAW_* bits; 0 == usable */
  uint32_t reserved;     /* zero */
} icg_beat;

/* Running per-session quality aggregate (the C projection of the C++
 * QualitySummary). All fields 64-bit, no padding. */
typedef struct icg_quality_summary {
  uint64_t beats;                  /* beats emitted */
  uint64_t usable;                 /* beats with no flaw */
  uint64_t flaw_counts[8];         /* per-flaw-bit counts, by bit index */
  uint64_t ecg_dropouts;           /* contact gaps on the ECG channel */
  uint64_t z_dropouts;             /* contact gaps on the impedance channel */
  uint64_t detector_resets;        /* QRS relearns triggered by recovery */
  uint64_t ensemble_folds_skipped; /* folds skipped over contact gaps */
  uint64_t snr_beats;              /* beats with a measured SNR */
  double sum_snr_db;               /* over snr_beats */
  double min_snr_db;               /* worst measured beat SNR */
} icg_quality_summary;

/* Opaque session handle. Never dereference: the value encodes a slot
 * and a generation, so stale handles are detected, not trapped on. */
typedef struct icg_session icg_session;

/* ------------------------------------------------------------------ */
/* ABI negotiation and errors                                          */
/* ------------------------------------------------------------------ */

/* The ABI revision this library was built as. A caller compiled
 * against a different ICG_ABI_VERSION must not use the library. */
uint32_t icg_abi_version(void);

/* Human-readable detail of this thread's most recent failure. Never
 * NULL; empty string when nothing failed yet. The buffer is
 * thread-local (a plain static in the embedded profile) and is
 * overwritten by the next failing call. */
const char* icg_last_error(void);

/* Stable name of a status code ("ICG_ERR_BAD_HANDLE"), for logs. */
const char* icg_status_name(int status);

/* ------------------------------------------------------------------ */
/* Session lifecycle                                                   */
/* ------------------------------------------------------------------ */

/* Fills `cfg` with the defaults: ICG_BACKEND_DOUBLE, 250 Hz, 12 s
 * window, ensemble off, max_chunk 1024, beat queue 256, abi_version
 * stamped. Returns ICG_OK, or ICG_ERR_NULL_ARG. */
int icg_config_init(icg_config* cfg);

/* Creates a session. Returns NULL on failure (icg_last_error() has the
 * detail; the cause is one of ICG_ERR_NULL_ARG / ICG_ERR_ABI_MISMATCH /
 * ICG_ERR_BAD_CONFIG / ICG_ERR_NO_RESOURCES). This is the only call
 * that allocates; push/poll/finish/checkpoint are allocation-free once
 * the session is warm. */
icg_session* icg_session_create(const icg_config* cfg);

/* Feeds `len` synchronized samples (ECG in mV, impedance in Ohm).
 * Completed beats are queued for icg_session_poll_beat. Returns the
 * number of beats newly queued (>= 0), or a negative icg_status. */
int icg_session_push(icg_session* session, const double* ecg_mv,
                     const double* z_ohm, uint32_t len);

/* Pops the oldest queued beat into *beat. Returns 1 when a beat was
 * written, 0 when the queue is empty, or a negative icg_status. */
int icg_session_poll_beat(icg_session* session, icg_beat* beat);

/* Flushes the stage tails and queues the final beats (end of the
 * recording). The session remains pollable but accepts no more pushes.
 * Returns the number of beats newly queued, or a negative icg_status. */
int icg_session_finish(icg_session* session);

/* Writes the session's running quality aggregate into *summary. */
int icg_session_quality(icg_session* session, icg_quality_summary* summary);

/* ------------------------------------------------------------------ */
/* Checkpoint / restore                                                */
/* ------------------------------------------------------------------ */

/* Exact byte size of the blob icg_session_checkpoint would write right
 * now. Returns 0 on error (bad handle / internal failure). */
uint32_t icg_session_checkpoint_size(icg_session* session);

/* Serializes the session's full carried state into buf (capacity
 * `cap`). On success writes the blob length to *written and returns
 * ICG_OK. On ICG_ERR_BUFFER_TOO_SMALL, *written receives the required
 * size. The blob is the engine's versioned CRC-framed format and
 * interchanges with the C++ checkpoint()/restore() API. */
int icg_session_checkpoint(icg_session* session, uint8_t* buf, uint32_t cap,
                           uint32_t* written);

/* Restores a checkpoint blob into this session. The session must have
 * been created with the same configuration (backend, sample rate,
 * window, ensemble stage) as the blob's source; any mismatch or
 * corruption returns ICG_ERR_BAD_CHECKPOINT (after which the session
 * should be discarded). Resuming the stream after a successful restore
 * continues the beat sequence byte-identically to the uninterrupted
 * run. */
int icg_session_restore(icg_session* session, const uint8_t* blob,
                        uint32_t len);

/* Destroys the session and invalidates the handle. Returns ICG_OK, or
 * ICG_ERR_BAD_HANDLE for a NULL/stale/double-destroyed handle (safe to
 * call either way — never undefined behaviour). */
int icg_session_destroy(icg_session* session);

/* ------------------------------------------------------------------ */
/* Flight recording (not part of the embedded profile)                 */
/* ------------------------------------------------------------------ */

/* Starts flight-recording this session to `path` in the engine's .icgr
 * format (docs/ARCHITECTURE.md, "Flight record wire format"): every
 * pushed chunk, every emitted beat, and periodic full-state checkpoints,
 * replayable byte-for-byte with tools/replay. Recording taps the push
 * path without perturbing the session's outputs.
 * checkpoint_interval_samples sets the periodic checkpoint cadence in
 * samples; 0 selects the library default. icg_session_finish finalizes
 * an active recording automatically (writes the end marker and closes
 * the file); icg_session_restore stops an active recording first, since
 * samples pushed after a restore no longer follow from the recorded
 * state. Returns ICG_OK, ICG_ERR_BAD_STATE (already recording, or after
 * finish), or ICG_ERR_BAD_CHECKPOINT (file cannot be created/written).
 * Absent from libicgkit_embedded.a. */
int icg_session_record_start(icg_session* session, const char* path,
                             uint64_t checkpoint_interval_samples);

/* Stops an active recording: writes the end marker (flagged as stopped,
 * not finished) and closes the file. The session keeps streaming.
 * Returns ICG_OK, or ICG_ERR_BAD_STATE when the session is not
 * recording (including after icg_session_finish already finalized the
 * file). Absent from libicgkit_embedded.a. */
int icg_session_record_stop(icg_session* session);

/* Starts flight-recording this session into an in-process memory
 * buffer instead of a file — the live-session tap a host uses when the
 * .icgr bytes are destined for a socket or a blob store rather than a
 * local disk (the network fleet server's RECS command rides this same
 * mechanism). Cadence and state rules are identical to
 * icg_session_record_start. Absent from libicgkit_embedded.a. */
int icg_session_record_start_mem(icg_session* session,
                                 uint64_t checkpoint_interval_samples);

/* Stops an in-memory recording and copies the finished .icgr bytes
 * into buf (capacity `cap`), writing the byte count to *written. If
 * icg_session_finish already finalized the recording, the bytes remain
 * retrievable here exactly once. On ICG_ERR_BUFFER_TOO_SMALL, *written
 * receives the required size and the recording stays retrievable.
 * Returns ICG_ERR_BAD_STATE when no in-memory recording exists. */
int icg_session_record_stop_mem(icg_session* session, uint8_t* buf,
                                uint32_t cap, uint32_t* written);

/* Non-throwing structural probe of an in-memory .icgr flight record
 * (header + every section frame and CRC walked end to end). On a valid
 * record writes the requested facts through any non-NULL out pointers
 * (`finished` is 1 only when the record ends with a finish marker — a
 * mid-stream stop or a crash-truncated-but-frame-clean record reports
 * 0) and returns ICG_OK. A corrupt, truncated, or non-.icgr buffer
 * returns ICG_ERR_BAD_CHECKPOINT — never undefined behaviour. Absent
 * from libicgkit_embedded.a. */
int icg_flight_probe(const uint8_t* data, uint32_t len, uint32_t* backend,
                     double* sample_rate_hz, uint64_t* chunks,
                     uint64_t* checkpoints, uint64_t* beats,
                     uint32_t* finished);

/* ------------------------------------------------------------------ */
/* Demo input generator (not part of the embedded profile)             */
/* ------------------------------------------------------------------ */

/* Fills ecg_mv/z_ohm (each of `capacity` samples) with a deterministic
 * synthesized touch-device recording of a paper-roster subject, for
 * demos and parity tests. Writes the sample count to *written. Returns
 * ICG_OK, ICG_ERR_BUFFER_TOO_SMALL (required count in *written), or
 * ICG_ERR_BAD_CONFIG. Absent from libicgkit_embedded.a — firmware
 * feeds real ADC samples instead (see examples/embed_client.c, which
 * carries a pure-C fallback generator). */
int icg_demo_synth_recording(uint32_t subject_index, double duration_s,
                             double sample_rate_hz, double* ecg_mv,
                             double* z_ohm, uint32_t capacity,
                             uint32_t* written);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* ICGKIT_CAPI_ICGKIT_H */
