// Implementation of the flat C ABI (capi/icgkit.h) over the C++
// streaming engine.
//
// Boundary rules implemented here:
//
//  - Handles are never raw pointers to session memory. A handle packs
//    (slot index + 1, generation) into the pointer *value*; every call
//    decodes and validates it against a fixed-size slot table, so a
//    stale, destroyed or garbage handle is reported as
//    ICG_ERR_BAD_HANDLE without ever being dereferenced — double
//    destroy is a checked error, not use-after-free.
//  - No exception crosses the boundary: every entry point that can
//    reach throwing core code runs under guarded(), which maps
//    CheckpointError / bad_alloc / anything else to negative status
//    codes. In the embedded profile (ICGKIT_NO_EXCEPTIONS) the core
//    raises through icgkit::contract_panic instead, and guarded()
//    compiles to a plain call — but every *checked* failure path is
//    diagnosed right here at the boundary before reaching core code,
//    so panics are reserved for genuine invariant breakage.
//  - After create, the push/poll/finish/checkpoint hot path performs no
//    heap allocation once warm: the beat queue is a fixed ring sized at
//    create, the BeatRecord scratch and checkpoint blob reuse their
//    capacity, and the engine below carries the PR-2 zero-steady-state-
//    allocation property. Verified by tests/capi/capi_alloc_test.cpp.
//  - Sessions are externally synchronized (one session, one thread at a
//    time — the firmware model); create/destroy touch the shared slot
//    table under a spinlock so independent sessions can be managed from
//    different threads without a libpthread dependency.
#include "capi/icgkit.h"

#include "core/checkpoint.h"
#include "core/pipeline.h"
#include "dsp/backend.h"
#include "dsp/types.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <new>
#include <span>
#include <vector>

#if !defined(ICGKIT_CAPI_MINIMAL)
#include "core/flight_recorder.h"
#include "synth/recording.h"
#include "synth/subject.h"

#include <memory>
#endif

namespace {

using icgkit::core::BasicStreamingBeatPipeline;
using icgkit::core::BeatRecord;
using icgkit::core::CheckpointError;
using icgkit::core::PipelineConfig;
using icgkit::core::QualitySummary;

// ---------------------------------------------------------------------------
// Thread-local error text. The embedded profile avoids TLS (an MCU
// runtime may not provide it) — single-threaded use is that profile's
// documented model anyway.
// ---------------------------------------------------------------------------

#if defined(ICGKIT_CAPI_MINIMAL)
char g_error[256];
#else
thread_local char g_error[256];
#endif

int set_error(int status, const char* what) {
  std::snprintf(g_error, sizeof g_error, "%s: %s", icg_status_name(status),
                what != nullptr ? what : "");
  return status;
}

// ---------------------------------------------------------------------------
// Exception firewall. Everything that can reach throwing core code runs
// under guarded(); with exceptions disabled the core panics instead of
// unwinding, so the wrapper is a plain call.
// ---------------------------------------------------------------------------

template <typename F>
int guarded(F&& f) {
#if defined(ICGKIT_NO_EXCEPTIONS)
  return f();
#else
  try {
    return f();
  } catch (const CheckpointError& e) {
    return set_error(ICG_ERR_BAD_CHECKPOINT, e.what());
  } catch (const std::bad_alloc&) {
    return set_error(ICG_ERR_NO_RESOURCES, "out of memory");
  } catch (const std::exception& e) {
    return set_error(ICG_ERR_INTERNAL, e.what());
  } catch (...) {
    return set_error(ICG_ERR_INTERNAL, "unknown exception");
  }
#endif
}

// ---------------------------------------------------------------------------
// Engine type erasure: one virtual seam so the backend is a runtime
// choice (virtual dispatch needs no RTTI and no exceptions).
// ---------------------------------------------------------------------------

struct EngineIface {
  virtual ~EngineIface() = default;
  virtual void push_into(icgkit::dsp::SignalView ecg, icgkit::dsp::SignalView z,
                         std::vector<BeatRecord>& out) = 0;
  virtual void finish_into(std::vector<BeatRecord>& out) = 0;
  virtual const QualitySummary& quality() const = 0;
  virtual void checkpoint_into(std::vector<std::uint8_t>& blob) const = 0;
  virtual bool restore_compatible(std::span<const std::uint8_t> blob) const noexcept = 0;
  virtual void restore(std::span<const std::uint8_t> blob) = 0;
#if !defined(ICGKIT_CAPI_MINIMAL)
  // Flight-record taps (hosted profile only: flight_recorder.cpp is not
  // part of libicgkit_embedded.a).
  virtual void record_start(const char* path, std::uint64_t interval) = 0;
  virtual void record_start_mem(std::uint64_t interval) = 0;
  // Stops an in-memory recording (if still live) and exposes its bytes;
  // nullptr when no memory-backed recording exists. The bytes stay
  // owned by the engine until record_mem_discard().
  virtual const std::vector<std::uint8_t>* record_mem_bytes() = 0;
  virtual void record_mem_discard() = 0;
  virtual void record_stop() = 0;
  virtual bool recording() const noexcept = 0;
#endif
};

template <typename B>
struct EngineOf final : EngineIface {
  BasicStreamingBeatPipeline<B> engine;
#if !defined(ICGKIT_CAPI_MINIMAL)
  double window_s;
  // Sink declared before the recorder so the recorder (which holds a
  // reference to it) is destroyed first.
  std::unique_ptr<icgkit::core::RecorderSink> rec_sink;
  std::unique_ptr<icgkit::core::FlightRecorder> recorder;
  bool rec_sink_is_mem = false;
#endif

  EngineOf(double fs, const PipelineConfig& cfg, double window_s_arg)
      : engine(fs, cfg, window_s_arg)
#if !defined(ICGKIT_CAPI_MINIMAL)
        ,
        window_s(window_s_arg)
#endif
  {
  }

  void push_into(icgkit::dsp::SignalView ecg, icgkit::dsp::SignalView z,
                 std::vector<BeatRecord>& out) override {
    engine.push_into(ecg, z, out);
#if !defined(ICGKIT_CAPI_MINIMAL)
    // The tap runs after the engine so the recorded beats are exactly
    // this chunk's emissions (the capi push clears `out` per call).
    if (recorder) recorder->on_chunk(engine, ecg, z, out);
#endif
  }
  void finish_into(std::vector<BeatRecord>& out) override {
    engine.finish_into(out);
#if !defined(ICGKIT_CAPI_MINIMAL)
    if (recorder) {
      recorder->on_finish(engine, out);
      recorder.reset();
      // A file sink closes here; a memory sink keeps the finalized
      // bytes retrievable through record_take_mem.
      if (!rec_sink_is_mem) rec_sink.reset();
    }
#endif
  }
  const QualitySummary& quality() const override { return engine.quality_summary(); }
  void checkpoint_into(std::vector<std::uint8_t>& blob) const override {
    // checkpoint_into replaces the blob but reuses its capacity, which
    // is what keeps the warmed-up checkpoint path allocation-free.
    engine.checkpoint_into(blob);
  }
  bool restore_compatible(std::span<const std::uint8_t> blob) const noexcept override {
    return engine.restore_compatible(blob);
  }
  void restore(std::span<const std::uint8_t> blob) override { engine.restore(blob); }
#if !defined(ICGKIT_CAPI_MINIMAL)
  void record_start(const char* path, std::uint64_t interval) override {
    auto sink = std::make_unique<icgkit::core::FileRecorderSink>(path);
    icgkit::core::FlightRecorderConfig rcfg;
    if (interval != 0) rcfg.checkpoint_interval = interval;
    rcfg.window_s = window_s;
    rcfg.note = "capi icg_session_record_start";
    recorder = std::make_unique<icgkit::core::FlightRecorder>(*sink, engine, rcfg);
    rec_sink = std::move(sink);
    rec_sink_is_mem = false;
  }
  void record_start_mem(std::uint64_t interval) override {
    auto sink = std::make_unique<icgkit::core::BufferRecorderSink>();
    icgkit::core::FlightRecorderConfig rcfg;
    if (interval != 0) rcfg.checkpoint_interval = interval;
    rcfg.window_s = window_s;
    rcfg.note = "capi icg_session_record_start_mem";
    recorder = std::make_unique<icgkit::core::FlightRecorder>(*sink, engine, rcfg);
    rec_sink = std::move(sink);
    rec_sink_is_mem = true;
  }
  const std::vector<std::uint8_t>* record_mem_bytes() override {
    if (!rec_sink_is_mem || !rec_sink) return nullptr;
    if (recorder) {  // finalize (end marker) exactly once
      recorder->on_stop(engine);
      recorder.reset();
    }
    return &static_cast<icgkit::core::BufferRecorderSink&>(*rec_sink).bytes();
  }
  void record_mem_discard() override {
    rec_sink.reset();
    rec_sink_is_mem = false;
  }
  void record_stop() override {
    if (!recorder) return;
    recorder->on_stop(engine);
    recorder.reset();
    rec_sink.reset();
    rec_sink_is_mem = false;
  }
  bool recording() const noexcept override { return recorder != nullptr; }
#endif
};

// ---------------------------------------------------------------------------
// Session state
// ---------------------------------------------------------------------------

enum class SessionState : std::uint8_t { Streaming, Finished, Poisoned };

struct SessionImpl {
  icg_config cfg{};
  EngineIface* engine = nullptr;
  // Fixed-capacity beat FIFO (cfg.beat_queue_capacity), filled by
  // push/finish, drained by poll_beat.
  std::vector<icg_beat> queue;
  std::size_t queue_head = 0;
  std::size_t queue_count = 0;
  std::vector<BeatRecord> scratch;     // per-push emission buffer
  std::vector<std::uint8_t> blob;      // checkpoint scratch (capacity reused)
  SessionState state = SessionState::Streaming;

  ~SessionImpl() { delete engine; }
};

icg_beat to_c_beat(const BeatRecord& rec) {
  icg_beat b;
  std::memset(&b, 0, sizeof b);
  b.r = rec.points.r;
  b.b = rec.points.b;
  b.c = rec.points.c;
  b.x = rec.points.x;
  b.b0 = rec.points.b0;
  b.c_amplitude = rec.points.c_amplitude;
  b.rr_s = rec.rr_s;
  b.pep_s = rec.hemo.pep_s;
  b.lvet_s = rec.hemo.lvet_s;
  b.hr_bpm = rec.hemo.hr_bpm;
  b.dzdt_max = rec.hemo.dzdt_max;
  b.sv_kubicek_ml = rec.hemo.sv_kubicek_ml;
  b.sv_sramek_ml = rec.hemo.sv_sramek_ml;
  b.co_kubicek_l_min = rec.hemo.co_kubicek_l_min;
  b.tfc_per_kohm = rec.hemo.tfc_per_kohm;
  b.b_method = static_cast<std::uint32_t>(rec.points.b_method);
  b.valid = rec.points.valid ? 1u : 0u;
  b.flaws = static_cast<std::uint32_t>(rec.flaws);
  return b;
}

// Moves this push's freshly emitted beats into the fixed queue.
// Returns the number queued, or ICG_ERR_BEAT_BACKLOG (poisoning the
// session: overflowed beats are unrecoverably lost).
int enqueue_beats(SessionImpl& s) {
  int queued = 0;
  for (const BeatRecord& rec : s.scratch) {
    if (s.queue_count == s.queue.size()) {
      s.state = SessionState::Poisoned;
      return set_error(ICG_ERR_BEAT_BACKLOG,
                       "beat queue overflow — poll between pushes");
    }
    s.queue[(s.queue_head + s.queue_count) % s.queue.size()] = to_c_beat(rec);
    ++s.queue_count;
    ++queued;
  }
  return queued;
}

// ---------------------------------------------------------------------------
// Handle table: fixed slots + generations, guarded by a spinlock (no
// libpthread). Handles encode (slot + 1) in the low byte and the
// generation above it; decoding validates both, so any stale or forged
// handle fails cleanly.
// ---------------------------------------------------------------------------

constexpr std::size_t kMaxSessions = 64;

// impl/generation are atomic because decode_handle validates handles
// lock-free from any thread while create/destroy mutate the slot under
// the table lock: checking a stale handle concurrently with a destroy
// must stay a defined-behaviour "no" (the documented handle guarantee),
// not a C++ data race. Writers store with release under the lock,
// decode_handle loads with acquire.
struct Slot {
  std::atomic<SessionImpl*> impl{nullptr};
  std::atomic<std::uintptr_t> generation{1};
};

Slot g_slots[kMaxSessions];
std::atomic_flag g_table_lock = ATOMIC_FLAG_INIT;

struct TableLock {
  TableLock() {
    while (g_table_lock.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~TableLock() { g_table_lock.clear(std::memory_order_release); }
};

// Callers hold the table lock (relaxed loads suffice under it).
icg_session* encode_handle(std::size_t slot) {
  const std::uintptr_t v =
      (g_slots[slot].generation.load(std::memory_order_relaxed) << 8) |
      static_cast<std::uintptr_t>(slot + 1);
  return reinterpret_cast<icg_session*>(v);
}

SessionImpl* decode_handle(icg_session* handle) {
  const auto v = reinterpret_cast<std::uintptr_t>(handle);
  const std::uintptr_t low = v & 0xFF;
  if (low == 0 || low > kMaxSessions) return nullptr;
  const std::size_t slot = static_cast<std::size_t>(low - 1);
  if (g_slots[slot].generation.load(std::memory_order_acquire) != (v >> 8))
    return nullptr;
  return g_slots[slot].impl.load(std::memory_order_acquire);
}

int validate_config(const icg_config& cfg) {
  if (cfg.abi_version != ICG_ABI_VERSION)
    return set_error(ICG_ERR_ABI_MISMATCH,
                     "icg_config.abi_version does not match ICG_ABI_VERSION");
  if (cfg.backend != ICG_BACKEND_DOUBLE && cfg.backend != ICG_BACKEND_Q31)
    return set_error(ICG_ERR_BAD_CONFIG, "unknown backend");
  if (!(cfg.sample_rate_hz > 0.0) || cfg.sample_rate_hz > 100000.0)
    return set_error(ICG_ERR_BAD_CONFIG, "sample_rate_hz out of range");
  if (!(cfg.window_s >= 4.0) || cfg.window_s > 120.0)
    return set_error(ICG_ERR_BAD_CONFIG, "window_s out of range [4, 120]");
  if (cfg.enable_ensemble > 1)
    return set_error(ICG_ERR_BAD_CONFIG, "enable_ensemble must be 0 or 1");
  if (cfg.max_chunk == 0 || cfg.max_chunk > (1u << 20))
    return set_error(ICG_ERR_BAD_CONFIG, "max_chunk out of range");
  if (cfg.beat_queue_capacity == 0 || cfg.beat_queue_capacity > (1u << 20))
    return set_error(ICG_ERR_BAD_CONFIG, "beat_queue_capacity out of range");
  for (const std::uint32_t r : cfg.reserved)
    if (r != 0)
      return set_error(ICG_ERR_BAD_CONFIG, "reserved fields must be zero");
  return ICG_OK;
}

} // namespace

// ---------------------------------------------------------------------------
// ABI surface
// ---------------------------------------------------------------------------

extern "C" {

uint32_t icg_abi_version(void) { return ICG_ABI_VERSION; }

const char* icg_last_error(void) { return g_error; }

const char* icg_status_name(int status) {
  switch (status) {
    case ICG_OK: return "ICG_OK";
    case ICG_ERR_NULL_ARG: return "ICG_ERR_NULL_ARG";
    case ICG_ERR_BAD_HANDLE: return "ICG_ERR_BAD_HANDLE";
    case ICG_ERR_ABI_MISMATCH: return "ICG_ERR_ABI_MISMATCH";
    case ICG_ERR_BAD_CONFIG: return "ICG_ERR_BAD_CONFIG";
    case ICG_ERR_BAD_STATE: return "ICG_ERR_BAD_STATE";
    case ICG_ERR_CHUNK_TOO_LARGE: return "ICG_ERR_CHUNK_TOO_LARGE";
    case ICG_ERR_BEAT_BACKLOG: return "ICG_ERR_BEAT_BACKLOG";
    case ICG_ERR_BAD_CHECKPOINT: return "ICG_ERR_BAD_CHECKPOINT";
    case ICG_ERR_BUFFER_TOO_SMALL: return "ICG_ERR_BUFFER_TOO_SMALL";
    case ICG_ERR_NO_RESOURCES: return "ICG_ERR_NO_RESOURCES";
    case ICG_ERR_INTERNAL: return "ICG_ERR_INTERNAL";
    default: return status > 0 ? "ICG_OK(count)" : "ICG_ERR_?";
  }
}

int icg_config_init(icg_config* cfg) {
  if (cfg == nullptr) return set_error(ICG_ERR_NULL_ARG, "cfg is NULL");
  std::memset(cfg, 0, sizeof *cfg);
  cfg->abi_version = ICG_ABI_VERSION;
  cfg->backend = ICG_BACKEND_DOUBLE;
  cfg->sample_rate_hz = 250.0;
  cfg->window_s = 12.0;
  cfg->enable_ensemble = 0;
  cfg->max_chunk = 1024;
  cfg->beat_queue_capacity = 256;
  return ICG_OK;
}

icg_session* icg_session_create(const icg_config* cfg) {
  if (cfg == nullptr) {
    set_error(ICG_ERR_NULL_ARG, "cfg is NULL");
    return nullptr;
  }
  if (validate_config(*cfg) != ICG_OK) return nullptr;

  SessionImpl* impl = nullptr;
  const int rc = guarded([&]() -> int {
    auto s = new SessionImpl;
    impl = s;
    s->cfg = *cfg;
    PipelineConfig pcfg;
    pcfg.enable_ensemble = cfg->enable_ensemble != 0;
    if (cfg->backend == ICG_BACKEND_Q31)
      s->engine = new EngineOf<icgkit::dsp::Q31Backend>(cfg->sample_rate_hz, pcfg,
                                                        cfg->window_s);
    else
      s->engine = new EngineOf<icgkit::dsp::DoubleBackend>(cfg->sample_rate_hz, pcfg,
                                                           cfg->window_s);
    s->queue.resize(cfg->beat_queue_capacity);
    s->scratch.reserve(cfg->beat_queue_capacity);
    return ICG_OK;
  });
  if (rc != ICG_OK) {
    delete impl;
    return nullptr;
  }

  TableLock lock;
  for (std::size_t i = 0; i < kMaxSessions; ++i) {
    if (g_slots[i].impl.load(std::memory_order_relaxed) == nullptr) {
      g_slots[i].impl.store(impl, std::memory_order_release);
      return encode_handle(i);
    }
  }
  delete impl;
  set_error(ICG_ERR_NO_RESOURCES, "session table full");
  return nullptr;
}

int icg_session_destroy(icg_session* session) {
  SessionImpl* impl = nullptr;
  {
    TableLock lock;
    const auto v = reinterpret_cast<std::uintptr_t>(session);
    const std::uintptr_t low = v & 0xFF;
    if (low == 0 || low > kMaxSessions)
      return set_error(ICG_ERR_BAD_HANDLE, "not a session handle");
    const std::size_t slot = static_cast<std::size_t>(low - 1);
    if (g_slots[slot].generation.load(std::memory_order_relaxed) != (v >> 8) ||
        g_slots[slot].impl.load(std::memory_order_relaxed) == nullptr)
      return set_error(ICG_ERR_BAD_HANDLE, "stale or destroyed handle");
    impl = g_slots[slot].impl.load(std::memory_order_relaxed);
    g_slots[slot].impl.store(nullptr, std::memory_order_release);
    // Retire every outstanding handle to this slot.
    g_slots[slot].generation.fetch_add(1, std::memory_order_release);
  }
  delete impl;
  return ICG_OK;
}

int icg_session_push(icg_session* session, const double* ecg_mv,
                     const double* z_ohm, uint32_t len) {
  SessionImpl* s = decode_handle(session);
  if (s == nullptr) return set_error(ICG_ERR_BAD_HANDLE, "stale or destroyed handle");
  if (ecg_mv == nullptr || z_ohm == nullptr)
    return set_error(ICG_ERR_NULL_ARG, "sample pointer is NULL");
  if (s->state == SessionState::Poisoned)
    return set_error(ICG_ERR_BEAT_BACKLOG, "session poisoned by an earlier overflow");
  if (s->state != SessionState::Streaming)
    return set_error(ICG_ERR_BAD_STATE, "push after finish");
  if (len > s->cfg.max_chunk)
    return set_error(ICG_ERR_CHUNK_TOO_LARGE, "len exceeds icg_config.max_chunk");
  if (len == 0) return 0;
  return guarded([&]() -> int {
    s->scratch.clear();
    s->engine->push_into(icgkit::dsp::SignalView(ecg_mv, len),
                         icgkit::dsp::SignalView(z_ohm, len), s->scratch);
    return enqueue_beats(*s);
  });
}

int icg_session_finish(icg_session* session) {
  SessionImpl* s = decode_handle(session);
  if (s == nullptr) return set_error(ICG_ERR_BAD_HANDLE, "stale or destroyed handle");
  if (s->state == SessionState::Poisoned)
    return set_error(ICG_ERR_BEAT_BACKLOG, "session poisoned by an earlier overflow");
  if (s->state != SessionState::Streaming)
    return set_error(ICG_ERR_BAD_STATE, "finish called twice");
  return guarded([&]() -> int {
    s->scratch.clear();
    s->engine->finish_into(s->scratch);
    s->state = SessionState::Finished;
    return enqueue_beats(*s);
  });
}

int icg_session_poll_beat(icg_session* session, icg_beat* beat) {
  SessionImpl* s = decode_handle(session);
  if (s == nullptr) return set_error(ICG_ERR_BAD_HANDLE, "stale or destroyed handle");
  if (beat == nullptr) return set_error(ICG_ERR_NULL_ARG, "beat is NULL");
  if (s->queue_count == 0) return 0;
  *beat = s->queue[s->queue_head];
  s->queue_head = (s->queue_head + 1) % s->queue.size();
  --s->queue_count;
  return 1;
}

int icg_session_quality(icg_session* session, icg_quality_summary* summary) {
  SessionImpl* s = decode_handle(session);
  if (s == nullptr) return set_error(ICG_ERR_BAD_HANDLE, "stale or destroyed handle");
  if (summary == nullptr) return set_error(ICG_ERR_NULL_ARG, "summary is NULL");
  return guarded([&]() -> int {
    const QualitySummary& q = s->engine->quality();
    std::memset(summary, 0, sizeof *summary);
    summary->beats = q.beats;
    summary->usable = q.usable;
    for (std::size_t i = 0; i < icgkit::core::kBeatFlawCount; ++i)
      summary->flaw_counts[i] = q.flaw_counts[i];
    summary->ecg_dropouts = q.ecg_dropouts;
    summary->z_dropouts = q.z_dropouts;
    summary->detector_resets = q.detector_resets;
    summary->ensemble_folds_skipped = q.ensemble_folds_skipped;
    summary->snr_beats = q.snr_beats;
    summary->sum_snr_db = q.sum_snr_db;
    summary->min_snr_db = q.min_snr_db;
    return ICG_OK;
  });
}

uint32_t icg_session_checkpoint_size(icg_session* session) {
  SessionImpl* s = decode_handle(session);
  if (s == nullptr) {
    set_error(ICG_ERR_BAD_HANDLE, "stale or destroyed handle");
    return 0;
  }
  const int rc = guarded([&]() -> int {
    s->engine->checkpoint_into(s->blob);
    return ICG_OK;
  });
  if (rc != ICG_OK) return 0;
  return static_cast<uint32_t>(s->blob.size());
}

int icg_session_checkpoint(icg_session* session, uint8_t* buf, uint32_t cap,
                           uint32_t* written) {
  SessionImpl* s = decode_handle(session);
  if (s == nullptr) return set_error(ICG_ERR_BAD_HANDLE, "stale or destroyed handle");
  if (buf == nullptr || written == nullptr)
    return set_error(ICG_ERR_NULL_ARG, "buf/written is NULL");
  return guarded([&]() -> int {
    s->engine->checkpoint_into(s->blob);
    *written = static_cast<uint32_t>(s->blob.size());
    if (s->blob.size() > cap)
      return set_error(ICG_ERR_BUFFER_TOO_SMALL,
                       "checkpoint blob exceeds caller buffer");
    std::memcpy(buf, s->blob.data(), s->blob.size());
    return ICG_OK;
  });
}

int icg_session_restore(icg_session* session, const uint8_t* blob, uint32_t len) {
  SessionImpl* s = decode_handle(session);
  if (s == nullptr) return set_error(ICG_ERR_BAD_HANDLE, "stale or destroyed handle");
  if (blob == nullptr) return set_error(ICG_ERR_NULL_ARG, "blob is NULL");
  // Checked pre-validation of the whole frame (magic, version, section
  // bounds, CRCs) and the blob's recorded configuration, *before* any
  // loader runs. In the embedded profile this is what turns a corrupt,
  // truncated, or wrong-backend blob into ICG_ERR_BAD_CHECKPOINT — the
  // no-exceptions core below can only panic on it — and it runs in the
  // hosted build too so the same path stays test-covered.
  if (!s->engine->restore_compatible(std::span<const std::uint8_t>(blob, len)))
    return set_error(ICG_ERR_BAD_CHECKPOINT,
                     "corrupt, truncated, or configuration-mismatched blob");
  return guarded([&]() -> int {
#if !defined(ICGKIT_CAPI_MINIMAL)
    // Samples pushed after a restore no longer follow from the recorded
    // state, so an active flight recording is finalized (as stopped,
    // not finished) before the jump.
    s->engine->record_stop();
#endif
    s->engine->restore(std::span<const std::uint8_t>(blob, len));
    // A restored session resumes the source's stream: pollable from a
    // clean queue, accepting pushes again.
    s->queue_head = 0;
    s->queue_count = 0;
    s->state = SessionState::Streaming;
    return ICG_OK;
  });
}

#if !defined(ICGKIT_CAPI_MINIMAL)

int icg_session_record_start(icg_session* session, const char* path,
                             uint64_t checkpoint_interval_samples) {
  SessionImpl* s = decode_handle(session);
  if (s == nullptr) return set_error(ICG_ERR_BAD_HANDLE, "stale or destroyed handle");
  if (path == nullptr) return set_error(ICG_ERR_NULL_ARG, "path is NULL");
  if (s->state != SessionState::Streaming)
    return set_error(ICG_ERR_BAD_STATE, "record_start after finish");
  if (s->engine->recording())
    return set_error(ICG_ERR_BAD_STATE, "session is already recording");
  return guarded([&]() -> int {
    s->engine->record_start(path, checkpoint_interval_samples);
    return ICG_OK;
  });
}

int icg_session_record_stop(icg_session* session) {
  SessionImpl* s = decode_handle(session);
  if (s == nullptr) return set_error(ICG_ERR_BAD_HANDLE, "stale or destroyed handle");
  if (!s->engine->recording())
    return set_error(ICG_ERR_BAD_STATE, "session is not recording");
  return guarded([&]() -> int {
    s->engine->record_stop();
    return ICG_OK;
  });
}

int icg_session_record_start_mem(icg_session* session,
                                 uint64_t checkpoint_interval_samples) {
  SessionImpl* s = decode_handle(session);
  if (s == nullptr) return set_error(ICG_ERR_BAD_HANDLE, "stale or destroyed handle");
  if (s->state != SessionState::Streaming)
    return set_error(ICG_ERR_BAD_STATE, "record_start after finish");
  if (s->engine->recording())
    return set_error(ICG_ERR_BAD_STATE, "session is already recording");
  return guarded([&]() -> int {
    s->engine->record_start_mem(checkpoint_interval_samples);
    return ICG_OK;
  });
}

int icg_session_record_stop_mem(icg_session* session, uint8_t* buf, uint32_t cap,
                                uint32_t* written) {
  SessionImpl* s = decode_handle(session);
  if (s == nullptr) return set_error(ICG_ERR_BAD_HANDLE, "stale or destroyed handle");
  if (written == nullptr) return set_error(ICG_ERR_NULL_ARG, "written is NULL");
  if (buf == nullptr && cap != 0) return set_error(ICG_ERR_NULL_ARG, "buf is NULL");
  return guarded([&]() -> int {
    // Stops the recorder (idempotent) but leaves the bytes in the sink
    // until they are actually delivered, so ICG_ERR_BUFFER_TOO_SMALL is
    // a retryable size probe rather than data loss.
    const std::vector<std::uint8_t>* blob = s->engine->record_mem_bytes();
    if (blob == nullptr)
      return set_error(ICG_ERR_BAD_STATE, "no in-memory recording to take");
    *written = static_cast<uint32_t>(blob->size());
    if (blob->size() > cap)
      return set_error(ICG_ERR_BUFFER_TOO_SMALL, "flight record exceeds capacity");
    std::memcpy(buf, blob->data(), blob->size());
    s->engine->record_mem_discard();
    return ICG_OK;
  });
}

int icg_flight_probe(const uint8_t* data, uint32_t len, uint32_t* backend,
                     double* sample_rate_hz, uint64_t* chunks,
                     uint64_t* checkpoints, uint64_t* beats,
                     uint32_t* finished) {
  if (data == nullptr && len != 0)
    return set_error(ICG_ERR_NULL_ARG, "data is NULL");
  const icgkit::core::FlightProbe probe =
      icgkit::core::probe_flight(std::span<const std::uint8_t>(data, len));
  if (!probe.valid)
    return set_error(ICG_ERR_BAD_CHECKPOINT,
                     "corrupt, truncated, or non-flight-record buffer");
  if (backend != nullptr)
    *backend = probe.header.backend_fixed ? ICG_BACKEND_Q31 : ICG_BACKEND_DOUBLE;
  if (sample_rate_hz != nullptr) *sample_rate_hz = probe.header.fs;
  if (chunks != nullptr) *chunks = probe.chunks;
  if (checkpoints != nullptr) *checkpoints = probe.checkpoints;
  if (beats != nullptr) *beats = probe.beats;
  if (finished != nullptr) *finished = probe.finished ? 1u : 0u;
  return ICG_OK;
}

int icg_demo_synth_recording(uint32_t subject_index, double duration_s,
                             double sample_rate_hz, double* ecg_mv, double* z_ohm,
                             uint32_t capacity, uint32_t* written) {
  if (ecg_mv == nullptr || z_ohm == nullptr || written == nullptr)
    return set_error(ICG_ERR_NULL_ARG, "buffer/written is NULL");
  if (!(duration_s > 0.0) || duration_s > 3600.0 || !(sample_rate_hz > 0.0))
    return set_error(ICG_ERR_BAD_CONFIG, "duration/sample rate out of range");
  return guarded([&]() -> int {
    using namespace icgkit;
    const auto roster = synth::paper_roster();
    const synth::SubjectProfile& subject =
        roster[subject_index % roster.size()];
    synth::RecordingConfig rcfg;
    rcfg.duration_s = duration_s;
    rcfg.fs = sample_rate_hz;
    const synth::SourceActivity source = generate_source(subject, rcfg);
    const synth::Recording rec =
        measure_device(subject, source, 50e3, synth::Position::HoldToChest);
    if (rec.z_ohm.size() != rec.ecg_mv.size())
      return set_error(ICG_ERR_INTERNAL, "synth channels have unequal lengths");
    *written = static_cast<uint32_t>(rec.ecg_mv.size());
    if (rec.ecg_mv.size() > capacity)
      return set_error(ICG_ERR_BUFFER_TOO_SMALL, "recording exceeds capacity");
    std::memcpy(ecg_mv, rec.ecg_mv.data(), rec.ecg_mv.size() * sizeof(double));
    std::memcpy(z_ohm, rec.z_ohm.data(), rec.z_ohm.size() * sizeof(double));
    return ICG_OK;
  });
}

#endif // !ICGKIT_CAPI_MINIMAL

} // extern "C"
