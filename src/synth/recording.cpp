#include "synth/recording.h"

#include "dsp/stats.h"
#include "synth/artifacts.h"
#include "synth/ecg_synth.h"
#include "synth/rr_process.h"

#include <cmath>
#include <stdexcept>

namespace icgkit::synth {

namespace {

// Dynamic (cardiac + respiratory) impedance components scale with the
// tissue dispersion the same way the baseline does; normalize to the
// 50 kHz reference the paper uses for the systolic-interval study.
double dispersion_scale(const ColeModel& tissue, double f_hz) {
  const double ref = tissue.magnitude(50e3);
  if (ref <= 0.0) return 1.0;
  return tissue.magnitude(f_hz) / ref;
}

} // namespace

SourceActivity generate_source(const SubjectProfile& subject, const RecordingConfig& cfg) {
  if (cfg.duration_s <= 0.0) throw std::invalid_argument("generate_source: duration");
  if (cfg.fs <= 0.0) throw std::invalid_argument("generate_source: fs");

  Rng rng(subject.seed * 0x9E3779B9ULL + cfg.session_seed);

  SourceActivity src;
  src.fs = cfg.fs;

  const std::vector<double> rr = generate_rr_intervals(subject.rr, cfg.duration_s, rng);
  EcgSynthesis ecg = synthesize_ecg(rr, cfg.fs);
  const std::size_t n = static_cast<std::size_t>(std::ceil(cfg.duration_s * cfg.fs));
  ecg.ecg_mv.resize(n, 0.0);
  src.ecg_mv = std::move(ecg.ecg_mv);

  IcgSynthesis icg = synthesize_icg(ecg.r_times_s, cfg.duration_s, cfg.fs, subject.icg, rng);
  src.icg_clean = std::move(icg.icg);
  src.delta_z_cardiac = std::move(icg.delta_z);
  src.beats = std::move(icg.beats);

  RespirationConfig resp;
  resp.freq_hz = subject.rr.resp_freq_hz;
  resp.amplitude = subject.resp_amp_ohm;
  resp.phase_rad = rng.uniform(0.0, 6.28318);
  src.respiration = respiration_artifact(n, cfg.fs, resp, rng);

  return src;
}

Recording measure_thoracic(const SubjectProfile& subject, const SourceActivity& source,
                           double injection_freq_hz) {
  Recording rec;
  rec.fs = source.fs;
  rec.beats = source.beats;
  rec.z0_mean_ohm =
      measured_bioimpedance(subject.thorax, subject.channel, injection_freq_hz);

  const double dyn = dispersion_scale(subject.thorax, injection_freq_hz);
  const std::size_t n = source.delta_z_cardiac.size();
  rec.z_ohm.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    rec.z_ohm[i] =
        rec.z0_mean_ohm + dyn * (source.delta_z_cardiac[i] + source.respiration[i]);

  // Hospital-grade noise floor: variance a fixed small ratio of the
  // dynamic signal's variance. The broadband (white) share is capped at
  // an absolute level typical of a lab front-end -- broadband impedance
  // noise differentiates into ICG-band noise with gain 2*pi*f, so an
  // uncapped share would be physically wrong (see MotionConfig).
  dsp::Signal dynamic(n);
  for (std::size_t i = 0; i < n; ++i) dynamic[i] = rec.z_ohm[i] - rec.z0_mean_ohm;
  const double sig_var = dsp::variance(dynamic);
  Rng rng(subject.seed * 7919ULL + static_cast<std::uint64_t>(injection_freq_hz));
  const double noise_var = subject.thoracic_noise_ratio * sig_var;
  const double white_sigma = std::min(std::sqrt(0.15 * noise_var), 0.002);
  const double motion_var = std::max(0.0, noise_var - white_sigma * white_sigma);
  MotionConfig mcfg;
  mcfg.amplitude = std::sqrt(motion_var);
  const dsp::Signal cable_motion = motion_artifact(n, source.fs, mcfg, rng);
  const dsp::Signal noise = white_noise(n, white_sigma, rng);
  for (std::size_t i = 0; i < n; ++i) rec.z_ohm[i] += noise[i] + cable_motion[i];

  rec.ecg_mv = source.ecg_mv;
  const dsp::Signal ecg_noise = white_noise(n, subject.ecg_noise_mv, rng);
  for (std::size_t i = 0; i < n; ++i) rec.ecg_mv[i] += ecg_noise[i];
  return rec;
}

Recording measure_device(const SubjectProfile& subject, const SourceActivity& source,
                         double injection_freq_hz, Position position) {
  const std::size_t pos = index_of(position);
  Recording rec;
  rec.fs = source.fs;
  rec.beats = source.beats;

  const double gain = subject.position_gain[pos];
  rec.z0_mean_ohm =
      gain * measured_bioimpedance(subject.arm_path, subject.channel, injection_freq_hz);

  // Shared physiology as seen hand-to-hand: attenuated by the body
  // transfer and by the position's coupling gain.
  const double dyn = dispersion_scale(subject.arm_path, injection_freq_hz);
  const std::size_t n = source.delta_z_cardiac.size();
  dsp::Signal dynamic(n);
  for (std::size_t i = 0; i < n; ++i)
    dynamic[i] = gain * dyn *
                 (subject.cardiac_transfer * source.delta_z_cardiac[i] +
                  subject.resp_transfer * source.respiration[i]);

  // Noise calibrated from the per-position correlation target: for two
  // noisy views of a shared signal, r = 1/sqrt((1+v_t)(1+v_d)) with v the
  // noise/signal variance ratios, so
  //   v_d = 1 / (r^2 (1 + v_t)) - 1.
  const double r_target = subject.target_corr[pos];
  const double v_t = subject.thoracic_noise_ratio;
  const double v_d = std::max(0.0, 1.0 / (r_target * r_target * (1.0 + v_t)) - 1.0);
  const double sig_var = dsp::variance(dynamic);
  const double noise_var = v_d * sig_var;

  Rng rng(subject.seed * 104729ULL + static_cast<std::uint64_t>(injection_freq_hz) +
          1000003ULL * pos);

  // Split the noise budget: almost all of it is motion-band (the
  // position's motion severity is already encoded in the correlation
  // target), plus a small absolute-capped broadband contact-noise floor
  // (see the cap rationale in measure_thoracic).
  const double white_sigma = std::min(std::sqrt(0.15 * noise_var), 0.002);
  MotionConfig motion;
  motion.amplitude = std::sqrt(std::max(0.0, noise_var - white_sigma * white_sigma));
  const dsp::Signal motion_trace = motion_artifact(n, source.fs, motion, rng);
  const dsp::Signal contact = white_noise(n, white_sigma, rng);

  rec.z_ohm.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    rec.z_ohm[i] = rec.z0_mean_ohm + dynamic[i] + motion_trace[i] + contact[i];

  rec.ecg_mv = source.ecg_mv;
  const dsp::Signal ecg_noise = white_noise(n, subject.ecg_touch_noise_mv, rng);
  const dsp::Signal ecg_motion =
      motion_artifact(n, source.fs,
                      MotionConfig{.amplitude = 0.02 * subject.motion_level[pos]}, rng);
  for (std::size_t i = 0; i < n; ++i) rec.ecg_mv[i] += ecg_noise[i] + ecg_motion[i];
  return rec;
}

double mean_bioimpedance(const Recording& rec) { return dsp::mean(rec.z_ohm); }

std::vector<Recording> make_fleet_workload(std::size_t count, const RecordingConfig& base) {
  const std::vector<SubjectProfile> roster = paper_roster();
  std::vector<Recording> workload;
  workload.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const SubjectProfile& subject = roster[i % roster.size()];
    RecordingConfig cfg = base;
    cfg.session_seed = base.session_seed + 1 + i;  // distinct artifacts per recording
    const SourceActivity src = generate_source(subject, cfg);
    workload.push_back(measure_thoracic(subject, src, 50e3));
  }
  return workload;
}

TouchCalibration touch_calibration(const SubjectProfile& subject, double injection_freq_hz,
                                   Position position) {
  const std::size_t pos = index_of(position);
  TouchCalibration cal;
  const double z0_dev = subject.position_gain[pos] *
                        measured_bioimpedance(subject.arm_path, subject.channel,
                                              injection_freq_hz);
  // The SV estimators' Z0 means *tissue* impedance, so the calibration
  // target is the thoracic Cole magnitude itself, not the channel-shaped
  // reading (the channel gain cancels out of a real device's one-time
  // calibration against a reference system).
  const double z0_th = subject.thorax.magnitude(injection_freq_hz);
  if (z0_dev > 0.0) cal.z0_scale = z0_th / z0_dev;
  const double transfer = subject.position_gain[pos] * subject.cardiac_transfer *
                          dispersion_scale(subject.arm_path, injection_freq_hz);
  if (transfer > 0.0) cal.dzdt_scale = 1.0 / transfer;
  return cal;
}

} // namespace icgkit::synth
