#include "synth/ecg_synth.h"

#include "dsp/stats.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace icgkit::synth {

namespace {
constexpr double kPi = std::numbers::pi;

double wrap_phase(double theta) {
  while (theta > kPi) theta -= 2.0 * kPi;
  while (theta <= -kPi) theta += 2.0 * kPi;
  return theta;
}

// dz/dt of the ECGSYN model at phase theta (baseline term handled by the
// caller).
double wave_drive(const std::vector<EcgWave>& waves, double theta) {
  double dz = 0.0;
  for (const EcgWave& w : waves) {
    const double dth = wrap_phase(theta - w.phase_rad);
    dz -= w.amplitude * dth * std::exp(-dth * dth / (2.0 * w.width_rad * w.width_rad));
  }
  return dz;
}
} // namespace

std::vector<EcgWave> EcgSynthConfig::default_waves() {
  // Phases/amplitudes/widths from the ECGSYN paper (Table 1).
  return {
      {-kPi / 3.0, 1.2, 0.25},  // P
      {-kPi / 12.0, -5.0, 0.1}, // Q
      {0.0, 30.0, 0.1},         // R
      {kPi / 12.0, -7.5, 0.1},  // S
      {kPi / 2.0, 0.75, 0.4},   // T
  };
}

EcgSynthesis synthesize_ecg(const std::vector<double>& rr_intervals_s, dsp::SampleRate fs,
                            const EcgSynthConfig& cfg) {
  if (rr_intervals_s.empty())
    throw std::invalid_argument("synthesize_ecg: empty RR series");
  if (fs <= 0.0) throw std::invalid_argument("synthesize_ecg: fs must be positive");
  for (const double rr : rr_intervals_s)
    if (rr <= 0.0) throw std::invalid_argument("synthesize_ecg: RR intervals must be positive");

  double total_s = 0.0;
  for (const double rr : rr_intervals_s) total_s += rr;
  const std::size_t n = static_cast<std::size_t>(std::ceil(total_s * fs));

  EcgSynthesis out;
  out.ecg_mv.resize(n, 0.0);

  const double dt = 1.0 / fs;
  // Start mid-diastole (phase pi) so the first R peak is a full crossing,
  // not a boundary artifact.
  double theta = -kPi + 1e-9;
  double z = 0.0;
  std::size_t beat = 0;
  double beat_elapsed = 0.0;

  auto omega = [&](std::size_t b) {
    return 2.0 * kPi / rr_intervals_s[std::min(b, rr_intervals_s.size() - 1)];
  };

  for (std::size_t i = 0; i < n; ++i) {
    out.ecg_mv[i] = z;
    const double w = omega(beat);

    // RK4 on z; theta advances linearly within a step.
    const double k1 = wave_drive(cfg.waves, theta) * w - cfg.baseline_restore * z;
    const double th2 = wrap_phase(theta + 0.5 * w * dt);
    const double k2 =
        wave_drive(cfg.waves, th2) * w - cfg.baseline_restore * (z + 0.5 * dt * k1);
    const double k3 =
        wave_drive(cfg.waves, th2) * w - cfg.baseline_restore * (z + 0.5 * dt * k2);
    const double th4 = wrap_phase(theta + w * dt);
    const double k4 = wave_drive(cfg.waves, th4) * w - cfg.baseline_restore * (z + dt * k3);
    z += dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);

    // R-peak ground truth: phase crosses 0 from below during this step.
    const double theta_next_unwrapped = theta + w * dt;
    if (theta < 0.0 && theta_next_unwrapped >= 0.0) {
      const double frac = -theta / (w * dt);
      out.r_times_s.push_back((static_cast<double>(i) + frac) * dt);
    }

    theta = wrap_phase(theta_next_unwrapped);
    beat_elapsed += dt;
    if (beat_elapsed >= rr_intervals_s[std::min(beat, rr_intervals_s.size() - 1)] &&
        beat + 1 < rr_intervals_s.size()) {
      // Phase naturally wraps once per RR because omega = 2 pi / RR; the
      // beat index only selects which RR sets the current phase velocity.
      beat_elapsed = 0.0;
      ++beat;
    }
  }

  // Scale so the median R amplitude matches the configured value.
  dsp::Signal peaks;
  for (const double tr : out.r_times_s) {
    const std::size_t idx = static_cast<std::size_t>(tr * fs);
    if (idx < n) {
      double peak = out.ecg_mv[idx];
      // The sampled maximum can be one sample off the exact crossing.
      for (std::size_t j = (idx > 2 ? idx - 2 : 0); j < std::min(n, idx + 3); ++j)
        peak = std::max(peak, out.ecg_mv[j]);
      peaks.push_back(peak);
    }
  }
  if (!peaks.empty()) {
    const double med = dsp::median(peaks);
    if (med > 1e-12) {
      const double scale = cfg.r_amplitude_mv / med;
      for (auto& v : out.ecg_mv) v *= scale;
    }
  }
  return out;
}

} // namespace icgkit::synth
