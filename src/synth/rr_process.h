// Beat-to-beat RR-interval generator with physiological heart-rate
// variability: a Mayer-wave component (~0.1 Hz, sympathetic) and a
// respiratory sinus arrhythmia component locked to the breathing rate,
// plus white jitter.
#pragma once

#include "synth/rng.h"

#include <vector>

namespace icgkit::synth {

struct RrConfig {
  double mean_hr_bpm = 65.0;
  double mayer_fraction = 0.03;   ///< Mayer-wave amplitude as a fraction of mean RR
  double mayer_freq_hz = 0.1;
  double rsa_fraction = 0.04;     ///< respiratory sinus arrhythmia amplitude fraction
  double resp_freq_hz = 0.25;     ///< breathing rate the RSA locks to
  double jitter_fraction = 0.01;  ///< white beat-to-beat jitter fraction
};

/// Generates RR intervals (seconds) until their sum covers `duration_s`
/// (the last interval may overshoot). At least one interval is returned.
std::vector<double> generate_rr_intervals(const RrConfig& cfg, double duration_s, Rng& rng);

} // namespace icgkit::synth
