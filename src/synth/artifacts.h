// Artifact generators for the acquisition simulation.
//
// Section II of the paper: the ICG is contaminated mainly by respiratory
// artifacts (0.04-2 Hz) and motion artifacts (0.1-10 Hz); finger contact
// adds powerline pickup and broadband sensor noise. Each generator
// produces an additive trace of a given length.
#pragma once

#include "dsp/types.h"
#include "synth/rng.h"

namespace icgkit::synth {

struct RespirationConfig {
  double freq_hz = 0.25;     ///< breathing rate
  double amplitude = 0.3;    ///< fundamental amplitude (units of the host signal)
  double second_harmonic = 0.3; ///< relative amplitude of the 2nd harmonic
  double phase_rad = 0.0;
};

/// Quasi-sinusoidal respiratory baseline modulation with a second
/// harmonic (breathing is not sinusoidal) and slow random amplitude drift.
dsp::Signal respiration_artifact(std::size_t n, dsp::SampleRate fs,
                                 const RespirationConfig& cfg, Rng& rng);

struct MotionConfig {
  double amplitude = 0.1;  ///< RMS of the artifact
  double low_hz = 0.1;     ///< band edges per the paper: 0.1-10 Hz
  double high_hz = 10.0;
  /// Spectral tilt corner: motion energy rolls off ~1/f^2 above this.
  /// Bulk limb/body motion (postural sway, slow arm drift) is sub-Hz;
  /// flat-band noise would grossly overweight 5-10 Hz and (because d/dt
  /// scales with f) swamp the ICG derivative with energy real motion
  /// does not have.
  double corner_hz = 0.5;
};

/// Low-frequency-weighted Gaussian noise in the motion band (0.1-10 Hz,
/// ~1/f^2 above corner_hz), normalized to the requested RMS.
dsp::Signal motion_artifact(std::size_t n, dsp::SampleRate fs, const MotionConfig& cfg,
                            Rng& rng);

/// Powerline interference (50 Hz by default) with slight amplitude wobble.
dsp::Signal powerline_artifact(std::size_t n, dsp::SampleRate fs, double amplitude,
                               double mains_hz, Rng& rng);

/// White Gaussian sensor noise.
dsp::Signal white_noise(std::size_t n, double sigma, Rng& rng);

} // namespace icgkit::synth
