// Tissue impedance dispersion (Cole-Cole) and the acquisition-channel
// frequency response of the touch device.
//
// Physics background (Section IV-B of the paper and Kyle et al. 2004): at
// low injection frequency the current is confined to extracellular fluid
// (higher resistance R0); as frequency rises the cell membranes conduct
// and the impedance falls towards Rinf. The Cole-Cole model captures this:
//
//   Z(f) = Rinf + (R0 - Rinf) / (1 + (j f / fc)^alpha)
//
// A bare Cole magnitude is monotone *decreasing* in f, yet the paper's
// Figs 6-7 show the measured bioimpedance *rising* up to 10 kHz and only
// then falling. That shape is an instrumentation artifact, which we model
// explicitly (and ablate in bench_ablation_channel):
//   - electrode polarization / AC coupling of the current source makes the
//     effective injected current roll off below a corner f_hp (high-pass),
//   - stray capacitance across the sense path shunts the signal above a
//     corner f_lp (low-pass).
// The measured curve is |Z_tissue(f)| * H_channel(f), which peaks near
// sqrt(f_hp * f_lp) ~ 10 kHz for the defaults used here.
#pragma once

#include <complex>

namespace icgkit::synth {

/// Cole-Cole dispersion parameters for one body path.
struct ColeModel {
  double r0_ohm = 30.0;   ///< resistance at DC (extracellular only)
  double rinf_ohm = 18.0; ///< resistance at infinite frequency
  double fc_hz = 30e3;    ///< characteristic frequency
  double alpha = 0.7;     ///< dispersion broadness, (0, 1]

  /// Complex impedance at frequency f (Hz). f == 0 returns r0.
  [[nodiscard]] std::complex<double> impedance(double f_hz) const;

  /// |Z(f)|.
  [[nodiscard]] double magnitude(double f_hz) const;
};

/// First-order high-pass x first-order low-pass channel response, unity at
/// its peak.
struct InstrumentationResponse {
  double hp_corner_hz = 3.0e3;  ///< electrode polarization / AC coupling
  double lp_corner_hz = 60.0e3; ///< stray capacitance across sense path
  bool enable_hp = true;        ///< ablation switches
  bool enable_lp = true;

  /// Raw (un-normalized) response at f.
  [[nodiscard]] double raw(double f_hz) const;

  /// Response normalized so the peak over (0, inf) equals 1.
  [[nodiscard]] double normalized(double f_hz) const;

  /// Frequency of the response maximum (geometric mean of the corners when
  /// both are enabled).
  [[nodiscard]] double peak_frequency_hz() const;
};

/// The quantity the device reports as "bioimpedance at f": tissue
/// dispersion seen through the channel response.
double measured_bioimpedance(const ColeModel& tissue, const InstrumentationResponse& channel,
                             double f_hz);

} // namespace icgkit::synth
