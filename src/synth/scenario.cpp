#include "synth/scenario.h"

#include "synth/artifacts.h"
#include "synth/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace icgkit::synth {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Independent RNG substream per (scenario seed, stage, channel): stage
// lists stay composable — editing one stage never shifts the draws of
// another — and the two channels of a Both stage get uncorrelated noise.
Rng stage_rng(std::uint64_t seed, std::size_t stage, std::size_t channel) {
  return Rng(seed * 0x9E3779B97F4A7C15ULL + 0x100000001B3ULL * (stage + 1) +
             0xD6E8FEB86659FD93ULL * channel);
}

struct Episode {
  std::size_t begin = 0;
  std::size_t end = 0;
};

// Poisson-like episodic placement: expected_count = rate * minutes, the
// fractional part resolved by one Bernoulli draw; starts uniform over the
// recording, durations uniform in [0.5, 1.5] x mean.
std::vector<Episode> place_episodes(std::size_t n, dsp::SampleRate fs,
                                    double rate_per_min, double mean_duration_s,
                                    Rng& rng) {
  std::vector<Episode> eps;
  if (n == 0 || rate_per_min <= 0.0 || mean_duration_s <= 0.0) return eps;
  const double minutes = static_cast<double>(n) / fs / 60.0;
  const double expected = rate_per_min * minutes;
  std::size_t count = static_cast<std::size_t>(expected);
  if (rng.uniform() < expected - static_cast<double>(count)) ++count;
  for (std::size_t e = 0; e < count; ++e) {
    const double dur_s = mean_duration_s * rng.uniform(0.5, 1.5);
    const auto len = std::max<std::size_t>(2, static_cast<std::size_t>(dur_s * fs));
    const auto begin = static_cast<std::size_t>(rng.uniform() * static_cast<double>(n));
    eps.push_back({begin, std::min(n, begin + len)});
  }
  std::sort(eps.begin(), eps.end(),
            [](const Episode& a, const Episode& b) { return a.begin < b.begin; });
  return eps;
}

// Hann ramp over one episode: 0 at the edges, 1 in the middle, so bursts
// and fades ease in and out instead of switching on.
double hann_env(std::size_t i, std::size_t len) {
  if (len <= 1) return 1.0;
  return 0.5 * (1.0 - std::cos(kTwoPi * static_cast<double>(i) /
                               static_cast<double>(len - 1)));
}

// Voss-McCartney pink (1/f) noise: kRows octave-spaced white sources, row
// k redrawn every 2^k samples; the sum's spectrum is ~1/f across the
// audible decades, normalized to unit variance before scaling.
dsp::Signal pink_noise(std::size_t n, double sigma, Rng& rng) {
  constexpr std::size_t kRows = 8;
  dsp::Signal x(n);
  double rows[kRows];
  for (auto& r : rows) r = rng.normal();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < kRows; ++k)
      if (i % (std::size_t{1} << k) == 0) rows[k] = rng.normal();
    double acc = 0.0;
    for (const double r : rows) acc += r;
    x[i] = sigma * acc / std::sqrt(static_cast<double>(kRows));
  }
  return x;
}

struct StageContext {
  std::size_t stage_index;
  Channel channel;  ///< the concrete channel being corrupted
  double baseline;  ///< session baseline of this channel
};

void record_event(ScenarioReport& report, const StageContext& ctx, std::size_t begin,
                  std::size_t end, bool dropout) {
  report.events.push_back({ctx.stage_index, ctx.channel, begin, end, dropout});
}

void apply_motion_bursts(dsp::Signal& x, dsp::SampleRate fs, const MotionBurstConfig& cfg,
                         const std::vector<Episode>& eps, Rng& rng,
                         const StageContext& ctx, ScenarioReport& report) {
  for (const Episode& e : eps) {
    const std::size_t len = e.end - e.begin;
    // filtfilt inside motion_artifact needs a few filter lengths of
    // signal; pad the generated trace and keep the center, away from
    // the filtfilt edge regions.
    const std::size_t gen = std::max<std::size_t>(len, static_cast<std::size_t>(fs));
    const std::size_t offset = (gen - len) / 2;
    MotionConfig mcfg;
    mcfg.amplitude = cfg.amplitude;
    const dsp::Signal burst = motion_artifact(gen, fs, mcfg, rng);
    for (std::size_t i = 0; i < len; ++i)
      x[e.begin + i] += burst[offset + i] * hann_env(i, len);
    record_event(report, ctx, e.begin, e.end, false);
  }
}

void apply_pops(dsp::Signal& x, dsp::SampleRate fs, const ElectrodePopConfig& cfg,
                const std::vector<Episode>& eps, Rng& rng, const StageContext& ctx,
                ScenarioReport& report) {
  const std::size_t n = x.size();
  for (const Episode& e : eps) {
    const double sign = rng.uniform() < 0.5 ? -1.0 : 1.0;
    const double amp = sign * cfg.amplitude * rng.uniform(0.7, 1.3);
    // Decay to < 1% of the step: the pop's effective footprint.
    const auto tail = static_cast<std::size_t>(5.0 * cfg.decay_s * fs);
    const std::size_t end = std::min(n, e.begin + std::max<std::size_t>(2, tail));
    for (std::size_t i = e.begin; i < end; ++i) {
      const double t = static_cast<double>(i - e.begin) / fs;
      x[i] += amp * std::exp(-t / cfg.decay_s);
    }
    record_event(report, ctx, e.begin, end, false);
  }
}

void apply_dropouts(dsp::Signal& x, const DropoutConfig& cfg,
                    const std::vector<Episode>& eps, const StageContext& ctx,
                    ScenarioReport& report) {
  for (const Episode& e : eps) {
    const double held = cfg.slam_to_rail
                            ? cfg.rail_value
                            : (e.begin > 0 ? x[e.begin - 1] : cfg.rail_value);
    std::fill(x.begin() + static_cast<dsp::Index>(e.begin),
              x.begin() + static_cast<dsp::Index>(e.end), held);
    record_event(report, ctx, e.begin, e.end, true);
  }
}

void apply_fades(dsp::Signal& x, const AmplitudeFadeConfig& cfg,
                 const std::vector<Episode>& eps, const StageContext& ctx,
                 ScenarioReport& report) {
  for (const Episode& e : eps) {
    const std::size_t len = e.end - e.begin;
    for (std::size_t i = 0; i < len; ++i) {
      const double gain = 1.0 - cfg.depth * hann_env(i, len);
      x[e.begin + i] = ctx.baseline + gain * (x[e.begin + i] - ctx.baseline);
    }
    record_event(report, ctx, e.begin, e.end, false);
  }
}

void apply_stage_to_channel(dsp::Signal& x, dsp::SampleRate fs, const ScenarioStage& stage,
                            const std::vector<Episode>& eps, Rng& rng,
                            const StageContext& ctx, ScenarioReport& report) {
  const std::size_t n = x.size();
  std::visit(
      [&](const auto& cfg) {
        using T = std::decay_t<decltype(cfg)>;
        if constexpr (std::is_same_v<T, MotionBurstConfig>) {
          apply_motion_bursts(x, fs, cfg, eps, rng, ctx, report);
        } else if constexpr (std::is_same_v<T, ElectrodePopConfig>) {
          apply_pops(x, fs, cfg, eps, rng, ctx, report);
        } else if constexpr (std::is_same_v<T, DropoutConfig>) {
          apply_dropouts(x, cfg, eps, ctx, report);
        } else if constexpr (std::is_same_v<T, MainsConfig>) {
          const dsp::Signal tone = powerline_artifact(n, fs, cfg.amplitude, cfg.mains_hz, rng);
          for (std::size_t i = 0; i < n; ++i) x[i] += tone[i];
          record_event(report, ctx, 0, n, false);
        } else if constexpr (std::is_same_v<T, BaselineDriftConfig>) {
          RespirationConfig rcfg;
          rcfg.freq_hz = cfg.freq_hz;
          rcfg.amplitude = cfg.amplitude;
          rcfg.phase_rad = rng.uniform(0.0, kTwoPi);
          const dsp::Signal drift = respiration_artifact(n, fs, rcfg, rng);
          for (std::size_t i = 0; i < n; ++i) x[i] += drift[i];
          record_event(report, ctx, 0, n, false);
        } else if constexpr (std::is_same_v<T, AdditiveNoiseConfig>) {
          if (cfg.white_sigma > 0.0) {
            const dsp::Signal w = white_noise(n, cfg.white_sigma, rng);
            for (std::size_t i = 0; i < n; ++i) x[i] += w[i];
          }
          if (cfg.pink_sigma > 0.0) {
            const dsp::Signal p = pink_noise(n, cfg.pink_sigma, rng);
            for (std::size_t i = 0; i < n; ++i) x[i] += p[i];
          }
          record_event(report, ctx, 0, n, false);
        } else if constexpr (std::is_same_v<T, AmplitudeFadeConfig>) {
          apply_fades(x, cfg, eps, ctx, report);
        }
      },
      stage.params);
}

// Episodic stages share one episode placement across channels: a contact
// gap or a motion episode is one physical event seen by every electrode,
// so a Both stage corrupts the same instants of ECG and Z (with
// channel-independent noise realizations where noise is drawn).
std::vector<Episode> stage_episodes(const ScenarioStage& stage, std::size_t n,
                                    dsp::SampleRate fs, Rng& rng) {
  return std::visit(
      [&](const auto& cfg) -> std::vector<Episode> {
        using T = std::decay_t<decltype(cfg)>;
        if constexpr (std::is_same_v<T, MotionBurstConfig> ||
                      std::is_same_v<T, DropoutConfig> ||
                      std::is_same_v<T, AmplitudeFadeConfig>) {
          return place_episodes(n, fs, cfg.rate_per_min, cfg.mean_duration_s, rng);
        } else if constexpr (std::is_same_v<T, ElectrodePopConfig>) {
          return place_episodes(n, fs, cfg.rate_per_min, 0.01, rng);
        } else {
          return {};  // always-on stages need no placement
        }
      },
      stage.params);
}

} // namespace

bool ScenarioReport::in_dropout(std::size_t begin, std::size_t end) const {
  for (const CorruptionEvent& e : events)
    if (e.dropout && e.begin < end && begin < e.end) return true;
  return false;
}

ScenarioReport apply_scenario(Recording& rec, const ScenarioSpec& spec,
                              std::uint64_t seed) {
  if (rec.ecg_mv.size() != rec.z_ohm.size())
    throw std::invalid_argument("apply_scenario: channel length mismatch");
  ScenarioReport report;
  const std::size_t n = rec.z_ohm.size();
  for (std::size_t s = 0; s < spec.stages.size(); ++s) {
    const ScenarioStage& stage = spec.stages[s];
    // Placement stream is channel-independent (substream channel 2), so a
    // Both stage hits identical instants on ECG and Z.
    Rng placement = stage_rng(seed, s, 2);
    const std::vector<Episode> eps = stage_episodes(stage, n, rec.fs, placement);

    const bool on_ecg = stage.channel == Channel::Ecg || stage.channel == Channel::Both;
    const bool on_z = stage.channel == Channel::Z || stage.channel == Channel::Both;
    if (on_ecg) {
      Rng rng = stage_rng(seed, s, 0);
      StageContext ctx{s, Channel::Ecg, 0.0};
      apply_stage_to_channel(rec.ecg_mv, rec.fs, stage, eps, rng, ctx, report);
    }
    if (on_z) {
      Rng rng = stage_rng(seed, s, 1);
      StageContext ctx{s, Channel::Z, rec.z0_mean_ohm};
      apply_stage_to_channel(rec.z_ohm, rec.fs, stage, eps, rng, ctx, report);
    }
  }
  return report;
}

Recording corrupt(const Recording& rec, const ScenarioSpec& spec, std::uint64_t seed) {
  Recording out = rec;
  apply_scenario(out, spec, seed);
  return out;
}

std::vector<Recording> make_corrupted_workload(std::size_t count,
                                               const RecordingConfig& base,
                                               const ScenarioSpec& spec,
                                               std::uint64_t scenario_seed,
                                               std::vector<ScenarioReport>* reports) {
  std::vector<Recording> workload = make_fleet_workload(count, base);
  if (reports != nullptr) {
    reports->clear();
    reports->reserve(workload.size());
  }
  for (std::size_t i = 0; i < workload.size(); ++i) {
    ScenarioReport r = apply_scenario(workload[i], spec, scenario_seed + i);
    if (reports != nullptr) reports->push_back(std::move(r));
  }
  return workload;
}

// ---------------------------------------------------------------------------
// Severity presets. Amplitudes are in the thoracic recording's units
// (ECG mV, impedance Ohm); the tiers are what bench_scenarios sweeps and
// what the CI sensitivity floor is pinned against, so changing them is a
// reviewed baseline change (see bench/bench_baselines.json).
// ---------------------------------------------------------------------------

ScenarioSpec ScenarioSpec::clean() { return {}; }

ScenarioSpec ScenarioSpec::mild() {
  ScenarioSpec s;
  s.add(AdditiveNoiseConfig{.white_sigma = 0.02, .pink_sigma = 0.0}, Channel::Ecg);
  s.add(AdditiveNoiseConfig{.white_sigma = 0.005, .pink_sigma = 0.002}, Channel::Z);
  s.add(MainsConfig{.amplitude = 0.05, .mains_hz = 50.0}, Channel::Ecg);
  s.add(MainsConfig{.amplitude = 0.02, .mains_hz = 50.0}, Channel::Z);
  s.add(BaselineDriftConfig{.amplitude = 0.3, .freq_hz = 0.08}, Channel::Z);
  return s;
}

ScenarioSpec ScenarioSpec::moderate() {
  ScenarioSpec s = mild();
  s.add(MotionBurstConfig{.rate_per_min = 3.0, .mean_duration_s = 1.5, .amplitude = 0.08},
        Channel::Z);
  s.add(MotionBurstConfig{.rate_per_min = 2.0, .mean_duration_s = 1.0, .amplitude = 0.08},
        Channel::Ecg);
  s.add(ElectrodePopConfig{.rate_per_min = 1.0, .amplitude = 1.0, .decay_s = 0.15},
        Channel::Ecg);
  s.add(ElectrodePopConfig{.rate_per_min = 1.0, .amplitude = 3.0, .decay_s = 0.2},
        Channel::Z);
  s.add(AmplitudeFadeConfig{.rate_per_min = 1.0, .mean_duration_s = 3.0, .depth = 0.4},
        Channel::Z);
  s.add(DropoutConfig{.rate_per_min = 1.0, .mean_duration_s = 0.8}, Channel::Both);
  return s;
}

ScenarioSpec ScenarioSpec::severe() {
  ScenarioSpec s;
  s.add(AdditiveNoiseConfig{.white_sigma = 0.08, .pink_sigma = 0.03}, Channel::Ecg);
  s.add(AdditiveNoiseConfig{.white_sigma = 0.015, .pink_sigma = 0.008}, Channel::Z);
  s.add(MainsConfig{.amplitude = 0.2, .mains_hz = 50.0}, Channel::Ecg);
  s.add(MainsConfig{.amplitude = 0.08, .mains_hz = 50.0}, Channel::Z);
  s.add(BaselineDriftConfig{.amplitude = 0.8, .freq_hz = 0.1}, Channel::Z);
  s.add(MotionBurstConfig{.rate_per_min = 8.0, .mean_duration_s = 2.5, .amplitude = 0.25},
        Channel::Z);
  s.add(MotionBurstConfig{.rate_per_min = 6.0, .mean_duration_s = 2.0, .amplitude = 0.25},
        Channel::Ecg);
  s.add(ElectrodePopConfig{.rate_per_min = 3.0, .amplitude = 2.0, .decay_s = 0.2},
        Channel::Ecg);
  s.add(ElectrodePopConfig{.rate_per_min = 3.0, .amplitude = 8.0, .decay_s = 0.25},
        Channel::Z);
  s.add(AmplitudeFadeConfig{.rate_per_min = 2.0, .mean_duration_s = 4.0, .depth = 0.7},
        Channel::Z);
  s.add(DropoutConfig{.rate_per_min = 2.0, .mean_duration_s = 1.5}, Channel::Both);
  return s;
}

} // namespace icgkit::synth
