// Recording orchestration: one subject's underlying physiology measured
// either through the traditional thoracic electrode setup (Fig 1 of the
// paper) or through the touch device in one of the three arm positions.
//
// The key design point is that the *same* SourceActivity (cardiac
// impedance dynamics, respiration, ECG) feeds both measurement paths, so
// device-vs-thoracic correlations (Tables II-IV) measure exactly what the
// paper measured: how much of the shared physiology survives the device's
// coupling and noise.
#pragma once

#include "dsp/types.h"
#include "synth/icg_synth.h"
#include "synth/subject.h"

#include <cstdint>
#include <vector>

namespace icgkit::synth {

struct RecordingConfig {
  double duration_s = 30.0;       ///< the paper records 30 s per condition
  dsp::SampleRate fs = 250.0;     ///< the paper's evaluation sampling rate
  std::uint64_t session_seed = 0; ///< varies artifacts between sessions
};

/// The subject's physiology for one session, at thoracic reference scale.
struct SourceActivity {
  dsp::SampleRate fs = 250.0;
  dsp::Signal ecg_mv;          ///< clean ECG
  dsp::Signal delta_z_cardiac; ///< cardiac impedance component, Ohm
  dsp::Signal respiration;     ///< respiratory impedance component, Ohm
  dsp::Signal icg_clean;       ///< clean thoracic ICG = -d(delta_z)/dt, Ohm/s
  std::vector<BeatTruth> beats;
};

/// One acquired recording (either setup).
struct Recording {
  dsp::SampleRate fs = 250.0;
  dsp::Signal ecg_mv;  ///< ECG with channel noise
  dsp::Signal z_ohm;   ///< impedance signal: Z0(f) + dynamics + artifacts
  double z0_mean_ohm = 0.0; ///< the Z0(f) set-point used
  std::vector<BeatTruth> beats; ///< ground truth (shared with the source)
};

/// Synthesizes the session physiology for a subject.
SourceActivity generate_source(const SubjectProfile& subject, const RecordingConfig& cfg);

/// Measures the source through the traditional chest/thorax electrodes at
/// injection frequency f.
Recording measure_thoracic(const SubjectProfile& subject, const SourceActivity& source,
                           double injection_freq_hz);

/// Measures the source through the touch device at injection frequency f
/// in the given arm position. Device noise is calibrated against the
/// subject's per-position correlation target (see subject.h).
Recording measure_device(const SubjectProfile& subject, const SourceActivity& source,
                         double injection_freq_hz, Position position);

/// Convenience: mean of the impedance trace (the paper's "Z_position_x").
double mean_bioimpedance(const Recording& rec);

/// Deterministic multi-subject workload for the fleet engine: `count`
/// thoracic recordings cycling the paper roster, each with its own
/// session seed so no two recordings are identical. A fleet of K
/// sessions maps session i onto recording i % count, so a small distinct
/// pool can feed thousands of sessions without the synthesis dominating
/// benchmark setup time.
std::vector<Recording> make_fleet_workload(std::size_t count, const RecordingConfig& base);

/// Path-to-thoracic calibration factors for the SV estimators (see
/// core::BodyParameters). A real device obtains these once per posture
/// against a reference system; here they follow from the channel model:
///   z0_scale   = Z0_thorax(f) / Z0_device(f, position)
///   dzdt_scale = 1 / (position gain * cardiac transfer * dispersion ratio)
struct TouchCalibration {
  double z0_scale = 1.0;
  double dzdt_scale = 1.0;
};

TouchCalibration touch_calibration(const SubjectProfile& subject, double injection_freq_hz,
                                   Position position);

} // namespace icgkit::synth
