#include "synth/artifacts.h"

#include "dsp/butterworth.h"
#include "dsp/filtfilt.h"
#include "dsp/stats.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace icgkit::synth {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

dsp::Signal respiration_artifact(std::size_t n, dsp::SampleRate fs,
                                 const RespirationConfig& cfg, Rng& rng) {
  if (fs <= 0.0) throw std::invalid_argument("respiration_artifact: fs must be positive");
  dsp::Signal x(n);
  // Slow amplitude drift: random walk low-passed by an EMA.
  double drift = 0.0;
  const double drift_alpha = 1.0 / (10.0 * fs); // ~10 s time constant
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    drift += drift_alpha * (rng.normal(0.0, 0.3) - drift);
    const double amp = cfg.amplitude * (1.0 + drift);
    x[i] = amp * (std::sin(kTwoPi * cfg.freq_hz * t + cfg.phase_rad) +
                  cfg.second_harmonic *
                      std::sin(2.0 * kTwoPi * cfg.freq_hz * t + 2.0 * cfg.phase_rad));
  }
  return x;
}

dsp::Signal motion_artifact(std::size_t n, dsp::SampleRate fs, const MotionConfig& cfg,
                            Rng& rng) {
  if (fs <= 0.0) throw std::invalid_argument("motion_artifact: fs must be positive");
  if (n == 0) return {};
  dsp::Signal white(n);
  for (auto& v : white) v = rng.normal();
  const double high = std::min(cfg.high_hz, 0.45 * fs);
  const dsp::SosFilter band = dsp::butterworth_bandpass(2, cfg.low_hz, high, fs);
  dsp::Signal shaped = dsp::filtfilt_sos(band, white);
  // Spectral tilt: first-order low-pass at the corner gives the ~1/f^2
  // power roll-off of bulk motion.
  const dsp::SosFilter tilt = dsp::butterworth_lowpass(1, cfg.corner_hz, fs);
  shaped = dsp::filtfilt_sos(tilt, shaped);
  const double r = dsp::rms(shaped);
  if (r > 1e-12) {
    const double scale = cfg.amplitude / r;
    for (auto& v : shaped) v *= scale;
  }
  return shaped;
}

dsp::Signal powerline_artifact(std::size_t n, dsp::SampleRate fs, double amplitude,
                               double mains_hz, Rng& rng) {
  if (fs <= 0.0) throw std::invalid_argument("powerline_artifact: fs must be positive");
  dsp::Signal x(n);
  const double phase = rng.uniform(0.0, kTwoPi);
  double wobble = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    wobble += 0.001 * (rng.normal(0.0, 0.2) - wobble);
    x[i] = amplitude * (1.0 + wobble) * std::sin(kTwoPi * mains_hz * t + phase);
  }
  return x;
}

dsp::Signal white_noise(std::size_t n, double sigma, Rng& rng) {
  dsp::Signal x(n);
  for (auto& v : x) v = rng.normal(0.0, sigma);
  return x;
}

} // namespace icgkit::synth
