// Per-beat ICG (dZ/dt) waveform synthesis with exact characteristic-point
// ground truth.
//
// Each beat is a parametric template tied to the ECG R peak of the same
// beat (the coupling the paper's beat-to-beat algorithm exploits,
// Section IV-C):
//
//     R ---PEP---> B (aortic valve opens) ---> C (peak flow)
//                  |<------------- LVET ------------->| X (valve closes)
//
// The template is a sum of smooth components: a small negative atrial
// (A) wave before B, the dominant C wave (asymmetric Gaussian rising from
// B), the X trough at aortic closure, the O wave of early diastole, and a
// slow diastolic recovery term that zeroes the beat's net integral so the
// impedance returns to baseline every cycle. Ground-truth B/C/X sample
// positions are emitted per beat; downstream tests measure delineation
// error against them.
//
// The impedance contribution is recovered as  dZ_cardiac = -integral(ICG),
// honouring the paper's convention ICG = -dZ/dt.
#pragma once

#include "dsp/types.h"
#include "synth/rng.h"

#include <vector>

namespace icgkit::synth {

/// Ground truth for one synthesized beat. Times are in seconds from the
/// start of the recording.
struct BeatTruth {
  double r_time_s = 0.0;
  double b_time_s = 0.0;
  double c_time_s = 0.0;
  double x_time_s = 0.0;
  double pep_s = 0.0;     ///< b - r
  double lvet_s = 0.0;    ///< x - b
  double dzdt_max = 0.0;  ///< C-wave amplitude, Ohm/s
};

struct IcgSynthConfig {
  double pep_s = 0.10;          ///< mean pre-ejection period
  double lvet_s = 0.30;         ///< mean left-ventricular ejection time
  double dzdt_max = 1.8;        ///< mean C amplitude, Ohm/s
  double pep_jitter_s = 0.004;  ///< per-beat s.d.
  double lvet_jitter_s = 0.008; ///< per-beat s.d.
  double amp_jitter_frac = 0.05;

  double c_rise_fraction = 0.40; ///< position of C between B and X, as a fraction of LVET
  double a_wave_depth_frac = 0.12;
  double x_depth_frac = 0.35;
  double o_wave_frac = 0.15;
};

struct IcgSynthesis {
  dsp::Signal icg;           ///< clean ICG (-dZ/dt), Ohm/s
  dsp::Signal delta_z;       ///< cardiac impedance component, Ohm (zero mean per beat)
  std::vector<BeatTruth> beats;
};

/// Synthesizes the ICG aligned to the given R-peak times. `duration_s`
/// fixes the output length (samples = ceil(duration * fs)).
IcgSynthesis synthesize_icg(const std::vector<double>& r_times_s, double duration_s,
                            dsp::SampleRate fs, const IcgSynthConfig& cfg, Rng& rng);

} // namespace icgkit::synth
