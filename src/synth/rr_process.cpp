#include "synth/rr_process.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace icgkit::synth {

std::vector<double> generate_rr_intervals(const RrConfig& cfg, double duration_s, Rng& rng) {
  if (cfg.mean_hr_bpm <= 20.0 || cfg.mean_hr_bpm > 240.0)
    throw std::invalid_argument("generate_rr_intervals: implausible heart rate");
  if (duration_s <= 0.0)
    throw std::invalid_argument("generate_rr_intervals: duration must be positive");

  const double mean_rr = 60.0 / cfg.mean_hr_bpm;
  std::vector<double> rr;
  double t = 0.0;
  while (t < duration_s) {
    const double mayer = cfg.mayer_fraction * mean_rr *
                         std::sin(2.0 * std::numbers::pi * cfg.mayer_freq_hz * t);
    const double rsa = cfg.rsa_fraction * mean_rr *
                       std::sin(2.0 * std::numbers::pi * cfg.resp_freq_hz * t);
    const double jitter = rng.normal(0.0, cfg.jitter_fraction * mean_rr);
    // Clamp to a physiological floor so pathological jitter draws can
    // never produce a non-positive interval.
    const double interval = std::max(0.3, mean_rr + mayer + rsa + jitter);
    rr.push_back(interval);
    t += interval;
  }
  return rr;
}

} // namespace icgkit::synth
