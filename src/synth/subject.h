// Subject profiles for the five-subject evaluation cohort.
//
// The paper evaluates on five male subjects (Section V). We cannot have
// their recordings, so each subject is a parameter set for the
// synthesizer. Two kinds of parameters coexist:
//   - physiological parameters (heart rate, PEP/LVET, tissue dispersion)
//     drawn from normal adult ranges, and
//   - *calibration constants* (position coupling gains, per-position
//     target correlations, motion severity) chosen so the reproduction
//     benches land on the paper's reported Tables II-IV and Fig 8 bands.
// The calibration targets are literally the paper's table values; see
// DESIGN.md section 2 for why this substitution preserves the evaluated
// behaviour (the pipeline under test is identical, only the data source
// is synthetic).
#pragma once

#include "synth/cole.h"
#include "synth/icg_synth.h"
#include "synth/rr_process.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace icgkit::synth {

/// Arm positions of the measurement study (Section V).
enum class Position {
  HoldToChest = 0,     ///< Position 1: device held up to the chest
  ArmsOutstretched = 1,///< Position 2: arms stretched out, parallel to floor
  ArmsDown = 2,        ///< Position 3: arms down by the sides
};

inline constexpr std::array<Position, 3> kAllPositions = {
    Position::HoldToChest, Position::ArmsOutstretched, Position::ArmsDown};

/// Index helper (0, 1, 2) for per-position arrays.
constexpr std::size_t index_of(Position p) { return static_cast<std::size_t>(p); }

struct SubjectProfile {
  std::string name;

  // --- physiology ---
  ColeModel thorax;           ///< chest/thorax current path (traditional setup)
  ColeModel arm_path;         ///< hand-to-hand current path (touch device)
  InstrumentationResponse channel; ///< shared electrode/front-end response
  RrConfig rr;                ///< heart-rate process
  IcgSynthConfig icg;         ///< per-beat ICG morphology
  double resp_amp_ohm = 0.35; ///< thoracic respiration impedance swing
  double cardiac_transfer = 0.35; ///< fraction of thoracic dZ visible hand-to-hand
  double resp_transfer = 0.55;    ///< same for the respiratory component

  // --- calibration constants (see header comment) ---
  std::array<double, 3> position_gain{};  ///< mean-Z0 scaling per position
  std::array<double, 3> target_corr{};    ///< Tables II-IV correlation targets
  std::array<double, 3> motion_level{};   ///< relative motion severity per position
  double thoracic_noise_ratio = 0.02;     ///< noise/signal variance, traditional setup

  // --- ECG channel ---
  double ecg_noise_mv = 0.015;       ///< chest-lead noise floor
  double ecg_touch_noise_mv = 0.04;  ///< finger-contact noise floor

  std::uint64_t seed = 1; ///< base seed; recordings derive sub-seeds from it
};

/// The five-subject cohort calibrated against the paper's Tables II-IV
/// (per-position device-vs-thoracic correlations) and Fig 8/9 bands.
std::vector<SubjectProfile> paper_roster();

/// The four injection frequencies of the study (Section V), in Hz.
inline constexpr std::array<double, 4> kInjectionFrequenciesHz = {2e3, 10e3, 50e3, 100e3};

} // namespace icgkit::synth
