#include "synth/cole.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace icgkit::synth {

std::complex<double> ColeModel::impedance(double f_hz) const {
  if (f_hz < 0.0) throw std::invalid_argument("ColeModel: negative frequency");
  if (f_hz == 0.0) return {r0_ohm, 0.0};
  // (j f/fc)^alpha = (f/fc)^alpha * e^{j alpha pi/2}
  const double ratio = std::pow(f_hz / fc_hz, alpha);
  const std::complex<double> jw_alpha =
      ratio * std::polar(1.0, alpha * std::numbers::pi / 2.0);
  return rinf_ohm + (r0_ohm - rinf_ohm) / (1.0 + jw_alpha);
}

double ColeModel::magnitude(double f_hz) const { return std::abs(impedance(f_hz)); }

double InstrumentationResponse::raw(double f_hz) const {
  if (f_hz <= 0.0) return 0.0;
  double h = 1.0;
  if (enable_hp) {
    const double r = f_hz / hp_corner_hz;
    h *= r / std::sqrt(1.0 + r * r);
  }
  if (enable_lp) {
    const double r = f_hz / lp_corner_hz;
    h *= 1.0 / std::sqrt(1.0 + r * r);
  }
  return h;
}

double InstrumentationResponse::peak_frequency_hz() const {
  if (enable_hp && enable_lp) return std::sqrt(hp_corner_hz * lp_corner_hz);
  if (enable_hp) return 1e9; // monotone rising: peak at the top of the range
  return 1e-9;               // monotone falling (or flat): peak at the bottom
}

double InstrumentationResponse::normalized(double f_hz) const {
  if (!enable_hp && !enable_lp) return 1.0;
  const double peak = raw(peak_frequency_hz());
  if (peak <= 0.0) return 0.0;
  return raw(f_hz) / peak;
}

double measured_bioimpedance(const ColeModel& tissue, const InstrumentationResponse& channel,
                             double f_hz) {
  return tissue.magnitude(f_hz) * channel.normalized(f_hz);
}

} // namespace icgkit::synth
