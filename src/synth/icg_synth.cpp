#include "synth/icg_synth.h"

#include "dsp/stats.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace icgkit::synth {

namespace {

constexpr double kHalfPi = std::numbers::pi / 2.0;

double sq(double v) { return v * v; }

// One beat's clean dZ/dt template, evaluated at time t (seconds).
//
// Piecewise-C1 morphology (see header):
//   A wave:        Gaussian bump peaking 70 ms before B
//   B..C upstroke: amp * sin^2  -- near-linear mid-rise with a knee at B
//   C..X decay:    amp * ((1+xd) cos^2 - xd) -- crosses zero ~60 % into
//                  the decay and bottoms out at -xd*amp exactly at X
//   X..O recovery: cosine blend up to the O-wave amplitude
//   after O:       Gaussian right-half decay back to baseline
struct BeatShape {
  double t_b, t_c, t_x, t_o;
  double amp;       // C amplitude
  double a_amp;     // A-wave amplitude
  double xd;        // X depth fraction
  double o_amp;     // O-wave amplitude
  double a_center;  // A-wave center
  double a_sigma = 0.022;
  double o_sigma = 0.040;

  [[nodiscard]] double eval(double t) const {
    double v = a_amp * std::exp(-0.5 * sq((t - a_center) / a_sigma));
    if (t <= t_b) {
      // A wave only
    } else if (t <= t_c) {
      const double u = (t - t_b) / (t_c - t_b);
      v += amp * sq(std::sin(kHalfPi * u));
    } else if (t <= t_x) {
      const double u = (t - t_c) / (t_x - t_c);
      v += amp * ((1.0 + xd) * sq(std::cos(kHalfPi * u)) - xd);
    } else if (t <= t_o) {
      const double u = (t - t_x) / (t_o - t_x);
      v += -xd * amp + (xd * amp + o_amp) * sq(std::sin(kHalfPi * u));
    } else {
      v += o_amp * std::exp(-0.5 * sq((t - t_o) / o_sigma));
    }
    return v;
  }
};

std::size_t clamp_index(double t, dsp::SampleRate fs, std::size_t n) {
  const double idx = std::max(0.0, t * fs);
  return std::min(n - 1, static_cast<std::size_t>(idx));
}

std::size_t window_argmin(const dsp::Signal& x, std::size_t lo, std::size_t hi) {
  std::size_t best = lo;
  for (std::size_t i = lo; i <= hi; ++i)
    if (x[i] < x[best]) best = i;
  return best;
}

std::size_t window_argmax(const dsp::Signal& x, std::size_t lo, std::size_t hi) {
  std::size_t best = lo;
  for (std::size_t i = lo; i <= hi; ++i)
    if (x[i] > x[best]) best = i;
  return best;
}

} // namespace

IcgSynthesis synthesize_icg(const std::vector<double>& r_times_s, double duration_s,
                            dsp::SampleRate fs, const IcgSynthConfig& cfg, Rng& rng) {
  if (fs <= 0.0) throw std::invalid_argument("synthesize_icg: fs must be positive");
  if (duration_s <= 0.0) throw std::invalid_argument("synthesize_icg: duration must be positive");

  const std::size_t n = static_cast<std::size_t>(std::ceil(duration_s * fs));
  IcgSynthesis out;
  out.icg.assign(n, 0.0);

  for (std::size_t bi = 0; bi < r_times_s.size(); ++bi) {
    const double r = r_times_s[bi];
    const double pep = std::max(0.05, cfg.pep_s + rng.normal(0.0, cfg.pep_jitter_s));
    const double lvet = std::max(0.15, cfg.lvet_s + rng.normal(0.0, cfg.lvet_jitter_s));
    const double amp =
        std::max(0.3, cfg.dzdt_max * (1.0 + rng.normal(0.0, cfg.amp_jitter_frac)));

    BeatShape shape;
    shape.t_b = r + pep;
    shape.t_x = shape.t_b + lvet;
    shape.t_c = shape.t_b + cfg.c_rise_fraction * lvet;
    shape.t_o = shape.t_x + 0.10;
    shape.amp = amp;
    shape.a_amp = cfg.a_wave_depth_frac * amp;
    shape.xd = cfg.x_depth_frac;
    shape.o_amp = cfg.o_wave_frac * amp;
    shape.a_center = shape.t_b - 0.07;
    if (shape.t_o + 0.3 > duration_s) break; // beat would be truncated; stop cleanly

    // Render the beat into a scratch buffer over its support.
    dsp::Signal beat(n, 0.0);
    const std::size_t lo = clamp_index(shape.a_center - 4.0 * shape.a_sigma, fs, n);
    const std::size_t hi = clamp_index(shape.t_o + 4.0 * shape.o_sigma, fs, n);
    for (std::size_t i = lo; i <= hi; ++i)
      beat[i] = shape.eval(static_cast<double>(i) / fs);

    // Baseline compensation: a shallow negative offset across the whole
    // beat cancels its net integral, so the impedance returns to baseline
    // each cycle. Spreading the return over the entire cycle (rather than
    // a post-diastolic trough) matches real averaged dZ/dt waveforms --
    // which sit slightly below zero between beats -- and keeps the X
    // trough the deepest minimum so the X0 search is not hijacked.
    double integral = 0.0;
    for (const double v : beat) integral += v;
    integral /= fs;
    const double comp0 = shape.a_center - 0.06;
    const double next_limit =
        (bi + 1 < r_times_s.size()) ? r_times_s[bi + 1] - 0.03 : duration_s - 0.05;
    const double comp1 = std::max(next_limit, shape.t_o + 0.25);
    const double ramp = 0.05;
    if (comp1 > comp0 + 4.0 * ramp) {
      // sin^2 ramps at both ends; effective area = offset * (span - ramp).
      const double offset = integral / (comp1 - comp0 - ramp);
      const std::size_t c0 = clamp_index(comp0, fs, n);
      const std::size_t c1 = clamp_index(comp1, fs, n);
      for (std::size_t i = c0; i <= c1; ++i) {
        const double t = static_cast<double>(i) / fs;
        double w = 1.0;
        if (t < comp0 + ramp) w = sq(std::sin(kHalfPi * (t - comp0) / ramp));
        else if (t > comp1 - ramp) w = sq(std::sin(kHalfPi * (comp1 - t) / ramp));
        beat[i] -= offset * w;
      }
    }

    // Ground truth from the rendered beat (the reference a delineator is
    // judged against): C = max between B and X; B = local minimum at the
    // foot of the upstroke; X = minimum around aortic closure.
    BeatTruth truth;
    truth.r_time_s = r;
    const std::size_t c_idx =
        window_argmax(beat, clamp_index(shape.t_b, fs, n), clamp_index(shape.t_x, fs, n));
    const std::size_t b_idx = window_argmin(beat, clamp_index(shape.t_b - 0.055, fs, n),
                                            clamp_index(shape.t_b + 0.02, fs, n));
    const std::size_t x_idx =
        window_argmin(beat, c_idx, clamp_index(shape.t_x + 0.03, fs, n));
    truth.b_time_s = static_cast<double>(b_idx) / fs;
    truth.c_time_s = static_cast<double>(c_idx) / fs;
    truth.x_time_s = static_cast<double>(x_idx) / fs;
    truth.pep_s = truth.b_time_s - r;
    truth.lvet_s = truth.x_time_s - truth.b_time_s;
    truth.dzdt_max = beat[c_idx];
    out.beats.push_back(truth);

    for (std::size_t i = 0; i < n; ++i) out.icg[i] += beat[i];
  }

  // ICG = -dZ/dt  =>  delta_z = -integral(ICG) dt.
  out.delta_z.assign(n, 0.0);
  double acc = 0.0;
  const double dt = 1.0 / fs;
  for (std::size_t i = 0; i < n; ++i) {
    acc -= out.icg[i] * dt;
    out.delta_z[i] = acc;
  }
  return out;
}

} // namespace icgkit::synth
