#include "synth/rng.h"

#include <cmath>
#include <numbers>

namespace icgkit::synth {

double Rng::normal() {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_ = r * std::sin(theta);
  has_cached_ = true;
  return r * std::cos(theta);
}

} // namespace icgkit::synth
