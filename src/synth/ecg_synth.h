// Dynamical ECG synthesizer after McSharry, Clifford, Tarassenko &
// Smith, "A dynamical model for generating synthetic electrocardiogram
// signals" (IEEE TBME 2003) -- the standard ECGSYN model.
//
// Each cardiac cycle is a rotation of a phase variable theta through
// (-pi, pi]; the P, Q, R, S and T waves are Gaussian events attached to
// fixed phases. The phase velocity is set per beat from an RR-interval
// series, so the synthesizer produces exact, per-beat R-peak ground truth
// -- which recorded traces cannot provide. This is the ECG substrate used
// in place of live finger/chest electrodes (see DESIGN.md section 2).
#pragma once

#include "dsp/types.h"
#include "synth/rng.h"

#include <vector>

namespace icgkit::synth {

/// One Gaussian wave event on the phase circle.
struct EcgWave {
  double phase_rad; ///< event center, relative to R at phase 0
  double amplitude; ///< a_i in the ECGSYN equation (arbitrary units)
  double width_rad; ///< b_i
};

struct EcgSynthConfig {
  /// Standard ECGSYN morphology: P, Q, R, S, T.
  std::vector<EcgWave> waves = default_waves();

  double r_amplitude_mv = 1.0; ///< output scaled so the median R peak is this
  double baseline_restore = 1.0; ///< pull of z towards baseline (1/s)

  static std::vector<EcgWave> default_waves();
};

struct EcgSynthesis {
  dsp::Signal ecg_mv;            ///< clean ECG (no artifacts), in mV
  std::vector<double> r_times_s; ///< exact R-peak times (phase-zero crossings)
};

/// Synthesizes an ECG at sampling rate `fs` following the given RR
/// series. Output length = ceil(sum(rr) * fs).
EcgSynthesis synthesize_ecg(const std::vector<double>& rr_intervals_s, dsp::SampleRate fs,
                            const EcgSynthConfig& cfg = {});

} // namespace icgkit::synth
