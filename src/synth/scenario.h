// Artifact-injection scenario engine: composable, seeded corruption of
// synthesized recordings.
//
// The paper's touch acquisition (Section II) is exactly the setting where
// real deployments degrade — intermittent electrode contact, motion
// bursts, mains pickup, baseline wander — yet the study substrate only
// exercises clean protocols. A ScenarioSpec describes an ordered list of
// independently parameterized, per-channel corruption stages; applying it
// to a Recording (or a whole fleet workload) produces the degraded
// streams the quality-adaptive pipeline recovery is tested against.
//
// Every stage draws from its own deterministic RNG substream derived from
// (scenario seed, stage index), so adding, removing or re-parameterizing
// one stage never changes the noise another stage injects — corruption
// severity sweeps stay comparable point to point.
//
// Stage order matters physically and is honored as listed: additive
// interference (motion, mains, drift, noise, pops) models signal-domain
// contamination, amplitude fades model coupling loss of the *dynamic*
// component, and dropouts freeze the final front-end output (a contact
// gap holds whatever the electrode last saw, artifacts included). The
// severity presets list their stages in that order.
#pragma once

#include "dsp/types.h"
#include "synth/recording.h"

#include <cstdint>
#include <variant>
#include <vector>

namespace icgkit::synth {

/// Which channel(s) of a Recording a corruption stage touches.
enum class Channel : std::uint8_t {
  Ecg,   ///< ecg_mv only
  Z,     ///< z_ohm only
  Both,  ///< both channels (independent RNG draws per channel)
};

/// Episodic motion-artifact bursts: band-limited (0.1-10 Hz, ~1/f^2
/// tilted) noise from synth::motion_artifact, windowed by a raised-cosine
/// envelope so each burst ramps in and out the way limb motion does.
struct MotionBurstConfig {
  double rate_per_min = 2.0;    ///< expected bursts per minute
  double mean_duration_s = 2.0; ///< mean burst length (uniform 0.5x-1.5x)
  double amplitude = 0.5;       ///< burst RMS, units of the host channel
};

/// Electrode-pop transients: an instantaneous step of random sign that
/// decays exponentially — the classic half-cell-potential discontinuity
/// when a dry contact slips and re-seats.
struct ElectrodePopConfig {
  double rate_per_min = 1.0;  ///< expected pops per minute
  double amplitude = 2.0;     ///< initial step height, host-channel units
  double decay_s = 0.15;      ///< exponential recovery time constant
};

/// Contact-loss dropouts with sample-and-hold gaps: for the gap duration
/// the channel repeats the last pre-gap sample (what a high-impedance
/// front end outputs when the electrode floats), optionally slamming to a
/// rail value instead.
struct DropoutConfig {
  double rate_per_min = 0.5;    ///< expected gaps per minute
  double mean_duration_s = 1.0; ///< mean gap length (uniform 0.5x-1.5x)
  bool slam_to_rail = false;    ///< rail instead of sample-and-hold
  double rail_value = 0.0;      ///< output during a slammed gap
};

/// Additive mains interference (50/60 Hz) with slow amplitude wobble.
struct MainsConfig {
  double amplitude = 0.05; ///< peak amplitude, host-channel units
  double mains_hz = 50.0;  ///< 50 Hz (EU) or 60 Hz (US)
};

/// Respiration-scale baseline drift: a quasi-sinusoidal wander (with
/// second harmonic and slow amplitude drift) well below the signal band,
/// the way breathing and electrode-gel changes move the baseline.
struct BaselineDriftConfig {
  double amplitude = 0.5; ///< drift amplitude, host-channel units
  double freq_hz = 0.08;  ///< drift fundamental (sub-respiratory)
};

/// Additive broadband noise: white Gaussian plus an optional pink (1/f)
/// component (Voss-McCartney), modelling amplifier and contact noise.
struct AdditiveNoiseConfig {
  double white_sigma = 0.01; ///< white component s.d., host-channel units
  double pink_sigma = 0.0;   ///< pink component s.d. (0 disables)
};

/// Episodic amplitude fades: the *dynamic* part of the channel (the
/// signal minus its session baseline) is scaled down by up to `depth`
/// with a raised-cosine profile — grip pressure easing off reduces the
/// coupling of cardiac dynamics without moving the baseline.
struct AmplitudeFadeConfig {
  double rate_per_min = 1.0;    ///< expected fades per minute
  double mean_duration_s = 3.0; ///< mean fade length (uniform 0.5x-1.5x)
  double depth = 0.6;           ///< max attenuation: gain dips to 1-depth
};

/// One corruption stage: parameters plus the channel(s) it applies to.
struct ScenarioStage {
  std::variant<MotionBurstConfig, ElectrodePopConfig, DropoutConfig, MainsConfig,
               BaselineDriftConfig, AdditiveNoiseConfig, AmplitudeFadeConfig>
      params;
  Channel channel = Channel::Z;
};

/// An ordered, composable list of corruption stages (applied as listed).
struct ScenarioSpec {
  std::vector<ScenarioStage> stages;

  /// Fluent append, e.g. `spec.add(MainsConfig{...}, Channel::Both)`.
  template <typename Cfg>
  ScenarioSpec& add(const Cfg& cfg, Channel ch = Channel::Z) {
    stages.push_back(ScenarioStage{cfg, ch});
    return *this;
  }

  // Severity presets used by bench_scenarios and the recovery tests.
  // Amplitudes are in the *thoracic* recording's units (Ohm / mV).
  static ScenarioSpec clean();    ///< no stages: applying it is a no-op
  static ScenarioSpec mild();     ///< light noise + mains + drift
  static ScenarioSpec moderate(); ///< adds motion bursts, pops, one short gap
  static ScenarioSpec severe();   ///< heavy everything, long gaps
};

/// What one applied stage did to one channel, in sample indices. For
/// always-on stages (mains, drift, noise) the interval is the whole
/// recording; episodic stages report each episode separately.
struct CorruptionEvent {
  std::size_t stage = 0;  ///< index into ScenarioSpec::stages
  Channel channel = Channel::Z;
  std::size_t begin = 0;  ///< first corrupted sample
  std::size_t end = 0;    ///< one past the last corrupted sample
  bool dropout = false;   ///< true when the event is a contact gap
};

/// Everything apply_scenario did, for tests and for bench scoring (e.g.
/// excluding ground-truth beats that fall inside a contact gap from the
/// sensitivity denominator — there is no signal to detect there).
struct ScenarioReport {
  std::vector<CorruptionEvent> events;

  /// True when [begin, end) of the ECG or Z channel overlaps a dropout.
  [[nodiscard]] bool in_dropout(std::size_t begin, std::size_t end) const;
};

/// Applies the scenario to `rec` in place. Deterministic: the same
/// (recording, spec, seed) triple always produces the same corruption.
ScenarioReport apply_scenario(Recording& rec, const ScenarioSpec& spec,
                              std::uint64_t seed);

/// Copying convenience: returns the corrupted recording, original intact.
Recording corrupt(const Recording& rec, const ScenarioSpec& spec, std::uint64_t seed);

/// Fleet-workload wrapper: `count` thoracic recordings from
/// make_fleet_workload, each corrupted with its own per-recording seed
/// (base seed + index) so no two sessions degrade identically. Reports
/// are returned in workload order when `reports` is non-null.
std::vector<Recording> make_corrupted_workload(std::size_t count,
                                               const RecordingConfig& base,
                                               const ScenarioSpec& spec,
                                               std::uint64_t scenario_seed,
                                               std::vector<ScenarioReport>* reports = nullptr);

} // namespace icgkit::synth
