#include "synth/subject.h"

namespace icgkit::synth {

namespace {

// Builds one subject. The correlation targets come verbatim from the
// paper's Tables II (Position 1), III (Position 2) and IV (Position 3);
// position gains are chosen so the Fig 8 error ordering holds per subject
// (e21 largest, e31 smallest, all below 20 %).
SubjectProfile make_subject(const std::string& name, double hr_bpm, double pep_s,
                            double lvet_s, double dzdt_max, double thorax_r0,
                            double arm_r0, std::array<double, 3> gains,
                            std::array<double, 3> corr, std::uint64_t seed) {
  SubjectProfile s;
  s.name = name;

  s.thorax.r0_ohm = thorax_r0;
  s.thorax.rinf_ohm = 0.55 * thorax_r0;
  s.thorax.fc_hz = 35e3;
  s.thorax.alpha = 0.68;

  s.arm_path.r0_ohm = arm_r0;
  s.arm_path.rinf_ohm = 0.60 * arm_r0;
  s.arm_path.fc_hz = 40e3;
  s.arm_path.alpha = 0.70;

  s.channel.hp_corner_hz = 3.0e3;
  s.channel.lp_corner_hz = 60.0e3;

  s.rr.mean_hr_bpm = hr_bpm;

  s.icg.pep_s = pep_s;
  s.icg.lvet_s = lvet_s;
  s.icg.dzdt_max = dzdt_max;

  s.position_gain = gains;
  s.target_corr = corr;
  // Motion severity: Position 1 (braced against the chest) is steadiest;
  // Position 2 (arms outstretched) shakes most; Position 3 in between.
  s.motion_level = {1.0, 1.6, 1.25};

  s.seed = seed;
  return s;
}

} // namespace

std::vector<SubjectProfile> paper_roster() {
  std::vector<SubjectProfile> roster;
  // name, HR, PEP, LVET, dZ/dt max, thorax R0, arm R0,
  // position gains {P1, P2, P3}, correlation targets {P1, P2, P3}, seed.
  roster.push_back(make_subject("Subject 1", 72.0, 0.105, 0.295, 1.9, 27.0, 420.0,
                                {0.86, 1.0, 0.875}, {0.9081, 0.9747, 0.9737}, 101));
  roster.push_back(make_subject("Subject 2", 64.0, 0.098, 0.310, 1.7, 30.0, 465.0,
                                {0.89, 1.0, 0.905}, {0.9471, 0.9497, 0.9377}, 202));
  roster.push_back(make_subject("Subject 3", 58.0, 0.092, 0.325, 2.1, 25.0, 390.0,
                                {0.92, 1.0, 0.93}, {0.9827, 0.9938, 0.9908}, 303));
  roster.push_back(make_subject("Subject 4", 78.0, 0.112, 0.280, 1.5, 33.0, 510.0,
                                {0.83, 1.0, 0.85}, {0.8451, 0.9033, 0.8531}, 404));
  roster.push_back(make_subject("Subject 5", 69.0, 0.101, 0.300, 1.8, 29.0, 445.0,
                                {0.87, 1.0, 0.89}, {0.9251, 0.8461, 0.6919}, 505));
  return roster;
}

} // namespace icgkit::synth
