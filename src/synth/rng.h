// Deterministic random number generation for the synthesizer.
//
// Uses xoshiro256** plus a Box-Muller normal transform implemented here so
// that synthesized recordings are bit-identical across standard libraries
// (std::normal_distribution is implementation-defined).
#pragma once

#include <cstdint>

namespace icgkit::synth {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box-Muller (cached second deviate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Serializes the generator state — the xoshiro words plus the cached
  /// Box-Muller deviate — so a checkpointed scenario stream resumes its
  /// substream exactly where it was cut (core::Checkpoint round trips).
  template <typename W>
  void save_state(W& w) const {
    for (const std::uint64_t word : state_) w.u64(word);
    w.boolean(has_cached_);
    w.f64(cached_);
  }

  template <typename R>
  void load_state(R& r) {
    for (std::uint64_t& word : state_) word = r.u64();
    has_cached_ = r.boolean();
    cached_ = r.f64();
  }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool has_cached_ = false;
  double cached_ = 0.0;
};

} // namespace icgkit::synth
