// Real-time QRS detection after Pan & Tompkins (IEEE TBME 1985), the
// R-peak detector the paper uses to segment ICG beats (Section IV-C).
//
// Stage chain: band-pass (5-15 Hz, isolating QRS energy) -> 5-point
// derivative -> squaring -> moving-window integration (150 ms) -> dual
// adaptive thresholds with a 200 ms refractory period, T-wave slope
// discrimination in the 200-360 ms window, and RR-based search-back for
// missed beats. Detected peaks are finally refined to the local maximum
// of the *input* signal so the reported indices are true R sample
// positions.
//
// The detector is split along its data-parallelism boundary:
//
//   feature front   band-pass, 5-point derivative, squaring, MWI --
//                   counter-driven control flow, identical across
//                   sessions, so the SIMD batch backend can tick W
//                   sessions in lockstep (BatchOnlinePanTompkins).
//   decision tail   QrsDecisionTail: thresholds, candidate merging,
//                   T-wave discrimination, search-back, refinement --
//                   data-dependent branching that diverges per session,
//                   so the batch detector fans out into W scalar tails.
//
// BasicOnlinePanTompkins composes one front with one tail and is
// byte-for-byte the detector it was before the split (state layout in
// checkpoints included).
#pragma once

#include "dsp/backend.h"
#include "dsp/filtfilt.h"
#include "dsp/moving.h"
#include "dsp/ring_buffer.h"
#include "dsp/types.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace icgkit::ecg {

struct PanTompkinsConfig {
  double bandpass_low_hz = 5.0;
  double bandpass_high_hz = 15.0;
  double integration_window_s = 0.150;
  double refractory_s = 0.200;
  double t_wave_window_s = 0.360;
  /// Search-back triggers when no peak was found for this multiple of the
  /// running RR average.
  double searchback_rr_factor = 1.66;
  /// Half-width of the window used to refine detections onto the raw ECG.
  double refine_window_s = 0.050;
};

struct QrsDetection {
  std::vector<std::size_t> r_samples;  ///< R-peak sample indices
  std::vector<double> rr_intervals_s;  ///< successive differences
};

/// The symmetric zero-phase kernel of the 5-15 Hz feature band-pass
/// (validates fs and the band edges; shared by every backend
/// instantiation of the online detector).
dsp::FirCoefficients pan_tompkins_bandpass_kernel(dsp::SampleRate fs,
                                                  const PanTompkinsConfig& cfg);

/// The decision half of the online detector: everything downstream of
/// the integrated (MWI) feature stream, plus the raw-input history used
/// for refinement. One instance per session; the batch detector owns W
/// of these and feeds lane i's feature samples into tail i.
///
/// All adaptive state -- signal/noise thresholds (SPKI/NPKI), the RR
/// history driving search-back, the pending MWI candidate, and the
/// refinement look-back buffers -- is carried across calls, so the tail
/// does O(1) amortized work per feature sample and its output is
/// invariant to how the input is chunked.
template <typename B>
class QrsDecisionTail {
 public:
  using sample_t = typename B::sample_t;

  QrsDecisionTail(dsp::SampleRate fs, const PanTompkinsConfig& cfg)
      : fs_(fs), searchback_rr_factor_(cfg.searchback_rr_factor),
        refractory_(static_cast<std::size_t>(cfg.refractory_s * fs)),
        min_sep_(std::max<std::size_t>(1, refractory_ / 2)),
        t_wave_win_(static_cast<std::size_t>(cfg.t_wave_window_s * fs)),
        mwi_win_(std::max<std::size_t>(
            1, static_cast<std::size_t>(cfg.integration_window_s * fs))),
        refine_(static_cast<std::size_t>(cfg.refine_window_s * fs)),
        learn_end_(static_cast<std::size_t>(2.0 * fs)),
        mwi_ring_(history_capacity(fs, learn_end_, mwi_win_)),
        in_ring_(history_capacity(fs, learn_end_, mwi_win_)) {}

  /// Records one raw input sample (the refinement look-back timeline).
  /// Called once per detector input, before the feature chain runs.
  void note_input(sample_t x) {
    in_ring_.push(x);
    ++in_count_;
  }

  /// Feeds one integrated feature sample; appends the indices of any R
  /// peaks it confirms to `out`.
  void on_feature_sample(sample_t v, std::vector<std::size_t>& out) {
    mwi_ring_.push(v);
    const std::size_t i = mwi_produced_++;
    // A sample is a candidate once its right neighbour arrives: strictly
    // above the left neighbour, at least the right one (plateaus keep the
    // first sample), matching the batch local_maxima().
    if (i >= 2 && mwi_at(i - 1) > mwi_at(i - 2) && mwi_at(i - 1) >= v)
      on_local_max(i - 1, out);
    if (!learned_ && mwi_produced_ >= learn_end_) {
      learn_thresholds();
      for (const std::size_t idx : prelearn_) process_candidate(idx, out);
      prelearn_.clear();
    }
  }

  /// End of stream (after the feature front has flushed): settles
  /// learning and the pending candidate.
  void settle(std::vector<std::size_t>& out) {
    if (!learned_) learn_thresholds();
    for (const std::size_t idx : prelearn_) process_candidate(idx, out);
    prelearn_.clear();
    if (pending_.has_value()) {
      process_candidate(*pending_, out);
      pending_.reset();
    }
  }

  /// Quality-adaptive recovery hook (contact-gap resets): discards every
  /// *adaptive* decision state — SPKI/NPKI thresholds, RR history,
  /// search-back bookkeeping, pending/unlearned candidates — and
  /// schedules a fresh 2 s threshold-learning window starting at the
  /// current stream position, while keeping the history rings and sample
  /// counters intact. Detection therefore resumes on a clean slate after
  /// an electrode dropout without disturbing the input/feature timeline
  /// alignment (indices keep counting; no output samples are lost), so
  /// the pipeline's chunk-size invariance is preserved. Allocation-free.
  void soft_reset() {
    pending_.reset();
    prelearn_.clear();
    learned_ = false;
    learn_start_ = mwi_produced_;
    learn_end_ = mwi_produced_ + learn_window_;
    spki_ = npki_ = sample_t{};
    last_accepted_.reset();
    last_accepted_slope_ = sample_t{};
    rr_history_.clear();
    rejected_since_.clear();
    // last_r_ is kept: the refractory guard against already-emitted peaks
    // must keep holding across the reset.
  }

  void reset() {
    mwi_ring_.clear();
    mwi_produced_ = 0;
    in_ring_.clear();
    in_count_ = 0;
    pending_.reset();
    learned_ = false;
    learn_start_ = 0;
    learn_end_ = learn_window_;
    prelearn_.clear();
    spki_ = npki_ = sample_t{};
    last_accepted_.reset();
    last_accepted_slope_ = sample_t{};
    rr_history_.clear();
    rejected_since_.clear();
    last_r_.reset();
    peaks_emitted_ = 0;
  }

  [[nodiscard]] std::size_t samples_consumed() const { return in_count_; }
  [[nodiscard]] std::size_t peaks_emitted() const { return peaks_emitted_; }

  /// Serializes the carried decision state. The byte sequence is exactly
  /// the tail segment of the pre-split BasicOnlinePanTompkins layout, so
  /// checkpoints remain wire-compatible.
  template <typename W>
  void save_state(W& w) const {
    mwi_ring_.save_state(w);
    w.u64(mwi_produced_);
    in_ring_.save_state(w);
    w.u64(in_count_);
    save_optional(w, pending_);
    w.boolean(learned_);
    w.u64(learn_start_);
    w.u64(learn_end_);
    w.u64(learn_window_);
    w.u64(prelearn_.size());
    for (const std::size_t idx : prelearn_) w.u64(idx);
    w.value(spki_);
    w.value(npki_);
    save_optional(w, last_accepted_);
    w.value(last_accepted_slope_);
    w.u64(rr_history_.size());
    for (const double rr : rr_history_) w.f64(rr);
    w.u64(rejected_since_.size());
    for (const std::size_t idx : rejected_since_) w.u64(idx);
    save_optional(w, last_r_);
    w.u64(peaks_emitted_);
  }

  template <typename R>
  void load_state(R& r) {
    mwi_ring_.load_state(r, "OnlinePanTompkins");
    mwi_produced_ = r.u64();
    in_ring_.load_state(r, "OnlinePanTompkins");
    in_count_ = r.u64();
    load_optional(r, pending_);
    learned_ = r.boolean();
    learn_start_ = r.u64();
    learn_end_ = r.u64();
    learn_window_ = r.u64();
    load_index_vec(r, prelearn_);
    spki_ = r.template value<sample_t>();
    npki_ = r.template value<sample_t>();
    load_optional(r, last_accepted_);
    last_accepted_slope_ = r.template value<sample_t>();
    const std::size_t rr_n = r.u64();
    if (rr_n > 8) r.fail("OnlinePanTompkins: RR history overflow");
    rr_history_.clear();
    for (std::size_t i = 0; i < rr_n; ++i) rr_history_.push_back(r.f64());
    load_index_vec(r, rejected_since_);
    load_optional(r, last_r_);
    peaks_emitted_ = r.u64();
  }

 private:
  static std::size_t history_capacity(dsp::SampleRate fs, std::size_t learn_end,
                                      std::size_t mwi_win) {
    return std::max<std::size_t>(learn_end + 2,
                                 static_cast<std::size_t>(8.0 * fs)) +
           mwi_win + 2;
  }

  // -- checkpoint helpers ---------------------------------------------
  template <typename W>
  static void save_optional(W& w, const std::optional<std::size_t>& v) {
    w.boolean(v.has_value());
    if (v.has_value()) w.u64(*v);
  }
  template <typename R>
  static void load_optional(R& r, std::optional<std::size_t>& v) {
    if (r.boolean()) v = r.u64();
    else v.reset();
  }
  template <typename R>
  static void load_index_vec(R& r, std::vector<std::size_t>& v) {
    const std::size_t n = r.u64();
    if (n > r.section_remaining() / 8)
      r.fail("OnlinePanTompkins: candidate list longer than its section");
    v.clear();
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(r.u64());
  }

  void on_local_max(std::size_t idx, std::vector<std::size_t>& out) {
    if (pending_.has_value() && idx - *pending_ < min_sep_) {
      // Same merge rule as the batch candidate pass: within half a
      // refractory of the previous candidate, the larger one wins.
      if (mwi_available(*pending_) && mwi_at(idx) > mwi_at(*pending_)) pending_ = idx;
      return;
    }
    if (pending_.has_value()) finalize_candidate(*pending_, out);
    pending_ = idx;
  }

  void finalize_candidate(std::size_t idx, std::vector<std::size_t>& out) {
    if (!learned_) {
      prelearn_.push_back(idx);
      return;
    }
    process_candidate(idx, out);
  }

  void learn_thresholds() {
    const std::size_t learn = std::min(mwi_produced_, learn_end_);
    learned_ = true;
    if (learn == 0) return;
    const std::size_t oldest = mwi_produced_ - mwi_ring_.size();
    // After a soft_reset the learning window starts at the reset point
    // (learn_start_), not the stream start: only post-gap feature samples
    // may seed the new thresholds.
    sample_t peak{};
    typename B::acc_t acc = B::acc_zero();
    std::size_t count = 0;
    for (std::size_t i = std::max(oldest, learn_start_); i < learn; ++i) {
      const sample_t v = mwi_ring_.at(i - oldest);
      peak = std::max(peak, v);
      acc = B::acc_add(acc, v);
      ++count;
    }
    spki_ = count > 0 ? B::quarter(peak) : sample_t{};
    npki_ = count > 0 ? B::halved_mean(acc, count) : sample_t{};
  }

  void process_candidate(std::size_t idx, std::vector<std::size_t>& out) {
    if (!mwi_available(idx)) return; // fell out of the bounded history
    const sample_t threshold1 = B::add(npki_, B::quarter(B::sub(spki_, npki_)));
    const bool after_refractory =
        !last_accepted_.has_value() || idx - *last_accepted_ >= refractory_;

    bool is_qrs = after_refractory && mwi_at(idx) > threshold1;

    // T-wave discrimination: a candidate 200-360 ms after the previous QRS
    // whose slope is less than half of that QRS's slope is a T wave.
    if (is_qrs && last_accepted_.has_value()) {
      const std::size_t since = idx - *last_accepted_;
      if (since < t_wave_win_ && peak_slope(idx) < B::half(last_accepted_slope_))
        is_qrs = false;
    }

    if (is_qrs) {
      accept(idx, /*searchback=*/false, out);
    } else {
      npki_ = B::ewma_shift(npki_, mwi_at(idx), 3);
      rejected_since_.push_back(idx);
    }

    // Search-back: if the gap since the last QRS exceeds the factor times
    // the running RR average, re-examine rejected candidates against the
    // lower threshold.
    if (last_accepted_.has_value() && !rejected_since_.empty()) {
      const double gap = static_cast<double>(idx - *last_accepted_);
      if (gap > searchback_rr_factor_ * rr_average_samples()) {
        const sample_t threshold2 =
            B::half(B::add(npki_, B::quarter(B::sub(spki_, npki_))));
        std::size_t best = 0;
        sample_t best_val = threshold2;
        for (const std::size_t cand : rejected_since_) {
          if (cand <= *last_accepted_ + refractory_) continue;
          if (!mwi_available(cand)) continue;
          if (mwi_at(cand) > best_val) {
            best_val = mwi_at(cand);
            best = cand;
          }
        }
        if (best != 0) accept(best, /*searchback=*/true, out);
      }
    }
  }

  void accept(std::size_t idx, bool searchback, std::vector<std::size_t>& out) {
    if (last_accepted_.has_value()) {
      rr_history_.push_back(static_cast<double>(idx - *last_accepted_));
      if (rr_history_.size() > 8) rr_history_.erase(rr_history_.begin());
    }
    last_accepted_ = idx;
    last_accepted_slope_ = peak_slope(idx);
    // SPKI update weight: 1/4 after a search-back acceptance, 1/8 normally.
    spki_ = B::ewma_shift(spki_, mwi_at(idx), searchback ? 2 : 3);
    rejected_since_.clear();
    refine_and_emit(idx, out);
  }

  void refine_and_emit(std::size_t idx, std::vector<std::size_t>& out) {
    // The zero-phase band-pass introduces no shift, but the causal MWI
    // moves energy right by up to its window, so search left of the MWI
    // peak (batch refinement geometry).
    const std::size_t oldest = in_count_ - in_ring_.size();
    const std::size_t lo_want = idx > mwi_win_ + refine_ ? idx - mwi_win_ - refine_ : 0;
    const std::size_t lo = std::max(lo_want, oldest);
    const std::size_t hi = std::min(in_count_ - 1, idx + refine_);
    if (lo > hi) return;
    std::size_t best = lo;
    for (std::size_t i = lo; i <= hi; ++i)
      if (in_ring_.at(i - oldest) > in_ring_.at(best - oldest)) best = i;
    if (!last_r_.has_value() ||
        (best > *last_r_ && best - *last_r_ >= refractory_)) {
      last_r_ = best;
      ++peaks_emitted_;
      out.push_back(best);
    }
  }

  [[nodiscard]] double rr_average_samples() const {
    if (rr_history_.empty()) return 0.8 * fs_; // prior: 75 bpm, in samples
    double acc = 0.0;
    for (const double rr : rr_history_) acc += rr;
    return acc / static_cast<double>(rr_history_.size());
  }

  [[nodiscard]] bool mwi_available(std::size_t idx) const {
    const std::size_t oldest = mwi_produced_ - mwi_ring_.size();
    return idx >= oldest && idx < mwi_produced_;
  }

  [[nodiscard]] sample_t mwi_at(std::size_t idx) const {
    return mwi_ring_.at(idx - (mwi_produced_ - mwi_ring_.size()));
  }

  [[nodiscard]] sample_t slope_at(std::size_t idx) const {
    // derivative(mwi) with the batch edge forms.
    if (idx == 0)
      return mwi_produced_ > 1 ? B::rescale(B::sub(mwi_at(1), mwi_at(0)), fs_, 0)
                               : sample_t{};
    if (idx + 1 < mwi_produced_)
      return B::half(B::rescale(B::sub(mwi_at(idx + 1), mwi_at(idx - 1)), fs_, 0));
    return B::rescale(B::sub(mwi_at(idx), mwi_at(idx - 1)), fs_, 0);
  }

  [[nodiscard]] sample_t peak_slope(std::size_t idx) const {
    const std::size_t oldest = mwi_produced_ - mwi_ring_.size();
    std::size_t lo = idx > mwi_win_ ? idx - mwi_win_ : 0;
    if (lo < oldest + 1) lo = oldest + 1 > idx ? idx : oldest + 1;
    sample_t best{};
    for (std::size_t i = lo; i <= idx && i < mwi_produced_; ++i)
      best = std::max(best, B::abs(slope_at(i)));
    return best;
  }

  dsp::SampleRate fs_;
  double searchback_rr_factor_;
  std::size_t refractory_, min_sep_, t_wave_win_, mwi_win_, refine_, learn_end_;
  /// Length of one threshold-learning window (2 s of feature samples);
  /// learn_end_ - learn_start_ whenever learning is pending.
  std::size_t learn_window_ = learn_end_;
  /// First feature sample eligible for the current learning window
  /// (0 from construction; the reset point after soft_reset()).
  std::size_t learn_start_ = 0;

  // Feature history for thresholds, slopes and search-back.
  dsp::RingBuffer<sample_t> mwi_ring_;
  std::size_t mwi_produced_ = 0;
  dsp::RingBuffer<sample_t> in_ring_;  ///< raw input for refinement
  std::size_t in_count_ = 0;

  // Candidate finalization (batch local_maxima semantics).
  std::optional<std::size_t> pending_;
  bool learned_ = false;
  std::vector<std::size_t> prelearn_;     ///< candidates before thresholds exist

  // Adaptive detector state (sample-domain values live in the backend's
  // numeric type; RR statistics are index arithmetic and stay double).
  sample_t spki_{}, npki_{};
  std::optional<std::size_t> last_accepted_;
  sample_t last_accepted_slope_{};
  std::vector<double> rr_history_;        ///< trimmed to the last 8
  std::vector<std::size_t> rejected_since_;
  std::optional<std::size_t> last_r_;
  std::size_t peaks_emitted_ = 0;
};

/// Online (sample-by-sample) Pan-Tompkins detector, generic over the
/// numeric backend (dsp/backend.h): the feature front (band-pass,
/// derivative, squaring, MWI) composed with one QrsDecisionTail.
///
/// The feature chain mirrors the batch one: the 5-15 Hz band-pass runs as
/// a causal symmetric-kernel stage whose output equals the zero-phase
/// filtfilt response (group delay absorbed internally; see
/// StreamingZeroPhaseFir), followed by the aligned 5-point derivative,
/// squaring and the 150 ms moving-window integration. Detection decisions
/// are therefore made on (numerically) the same feature signal the batch
/// detector sees, with a data-driven confirmation latency: an MWI
/// candidate is final once the next MWI local maximum at least half a
/// refractory later has been observed (or the stream ends).
///
/// Under Q31Backend every sample-domain value (band-pass output, squared
/// feature, MWI, the SPKI/NPKI thresholds and the slopes they gate on) is
/// a Q1.31 integer; the power-of-two threshold weights of the original
/// paper (1/8, 1/4, 7/8) become arithmetic shifts, and the fs factors of
/// the derivative stencils cancel out of every comparison, so they are
/// absorbed into the (implicit) feature scale instead of multiplied per
/// sample. Indices, RR statistics and search-back bookkeeping stay in
/// integer/double exactly as in the reference.
template <typename B>
class BasicOnlinePanTompkins {
 public:
  using sample_t = typename B::sample_t;

  explicit BasicOnlinePanTompkins(dsp::SampleRate fs, const PanTompkinsConfig& cfg = {})
      : fs_(fs),
        mwi_win_(std::max<std::size_t>(
            1, static_cast<std::size_t>(cfg.integration_window_s * fs))),
        bp_(pan_tompkins_bandpass_kernel(fs, cfg)),
        mwi_(mwi_win_),
        tail_(fs, cfg) {}

  /// Feeds one cleaned-ECG sample; appends the indices (absolute, in the
  /// fed sample timeline) of any R peaks confirmed by it to `out`.
  void push(sample_t x, std::vector<std::size_t>& out) {
    tail_.note_input(x);
    bp_scratch_.clear();
    bp_.push(x, bp_scratch_);
    for (const sample_t v : bp_scratch_) on_bp_sample(v, out);
  }

  /// Typed span: cross-backend container mixups fail to compile.
  void push_chunk(std::span<const sample_t> x, std::vector<std::size_t>& out) {
    for (const sample_t v : x) push(v, out);
  }

  /// Feature front only, fused per chunk: band-pass, derivative,
  /// squaring and MWI run as flat passes, appending the integrated
  /// feature samples to `feat` and one `cum` entry per input sample (the
  /// absolute size of `feat` after that sample). The decision tail is
  /// NOT driven and note_input() is NOT called — the caller replays the
  /// features through decision_tail() itself, calling note_input(x[i])
  /// before consuming sample i's feature range. That replay order is
  /// exactly push()'s interleaving, so the result is byte-identical.
  void front_chunk(std::span<const sample_t> x, std::vector<sample_t>& feat,
                   std::vector<std::uint32_t>& cum) {
    bp_arena_.clear();
    bp_cum_.clear();
    bp_.process_chunk_counted(x, bp_arena_, bp_cum_);
    const auto base = static_cast<std::uint32_t>(feat.size());
    feat_cum_.clear();
    for (const sample_t v : bp_arena_) {
      sample_t f{};
      if (bp_feature_step(v, f)) feat.push_back(f);
      feat_cum_.push_back(static_cast<std::uint32_t>(feat.size()));
    }
    for (std::size_t i = 0; i < x.size(); ++i)
      cum.push_back(bp_cum_[i] > 0 ? feat_cum_[bp_cum_[i] - 1] : base);
  }

  /// The decision half, for callers driving the front via front_chunk().
  [[nodiscard]] QrsDecisionTail<B>& decision_tail() { return tail_; }

  /// End of stream: processes the pending candidate and flushes.
  void finish(std::vector<std::size_t>& out) {
    // Flush the band-pass stage, then the derivative tail with the batch
    // edge fallbacks, then settle learning and the pending candidate.
    bp_scratch_.clear();
    bp_.finish(bp_scratch_);
    for (const sample_t v : bp_scratch_) on_bp_sample(v, out);

    const std::size_t n = bp_count_;
    auto h = [&](std::size_t i) { return bp_hist_[i % 5]; };
    for (std::size_t i = d_emitted_; i < n; ++i) {
      sample_t d{};
      if (n == 1) {
        d = sample_t{};
      } else if (i == 0) {
        d = B::rescale(B::sub(h(1), h(0)), fs_, 0);
      } else if (i + 1 < n) {
        d = B::half(B::rescale(B::sub(h(i + 1), h(i - 1)), fs_, 0));
      } else {
        d = B::rescale(B::sub(h(n - 1), h(n - 2)), fs_, 0);
      }
      tail_.on_feature_sample(mwi_.tick(B::square(d)), out);
      ++d_emitted_;
    }

    tail_.settle(out);
  }

  /// Quality-adaptive recovery hook (contact-gap resets): see
  /// QrsDecisionTail::soft_reset. Filter state and sample counters are
  /// kept; only the adaptive decision state restarts.
  void soft_reset() { tail_.soft_reset(); }

  void reset() {
    bp_.reset();
    mwi_.reset();
    bp_scratch_.clear();
    std::fill(std::begin(bp_hist_), std::end(bp_hist_), sample_t{});
    bp_count_ = 0;
    d_emitted_ = 0;
    tail_.reset();
  }

  [[nodiscard]] std::size_t samples_consumed() const { return tail_.samples_consumed(); }
  [[nodiscard]] std::size_t peaks_emitted() const { return tail_.peaks_emitted(); }

  /// Serializes the full carried detector state — feature chain (band
  /// pass, derivative history, MWI), then the decision tail — for
  /// core::Checkpoint round trips. The byte layout is identical to the
  /// pre-split detector (front fields, then tail fields, in the same
  /// order), so existing checkpoints restore unchanged. A restored
  /// detector continues the stream bit-identically to one that was never
  /// interrupted.
  template <typename W>
  void save_state(W& w) const {
    bp_.save_state(w);
    for (const sample_t v : bp_hist_) w.value(v);
    w.u64(bp_count_);
    w.u64(d_emitted_);
    mwi_.save_state(w);
    tail_.save_state(w);
  }

  template <typename R>
  void load_state(R& r) {
    bp_.load_state(r);
    for (sample_t& v : bp_hist_) v = r.template value<sample_t>();
    bp_count_ = r.u64();
    d_emitted_ = r.u64();
    mwi_.load_state(r);
    tail_.load_state(r);
  }

 private:
  /// One band-passed sample through the derivative/square/MWI chain.
  /// Returns true and sets `f` when a feature sample is produced.
  /// Aligned 5-point derivative with the batch edge fallbacks (see
  /// five_point_derivative): d[0], d[1] use the one-sided/central forms,
  /// d[i] for i >= 2 the centered 5-point stencil once x[i+2] exists. The
  /// trailing d[n-2], d[n-1] are emitted by finish().
  bool bp_feature_step(sample_t v, sample_t& f) {
    bp_hist_[bp_count_ % 5] = v;
    const std::size_t j = bp_count_++;
    auto h = [&](std::size_t i) { return bp_hist_[i % 5]; };
    sample_t d{};
    if (j == 1) {
      d = B::rescale(B::sub(h(1), h(0)), fs_, 0);
    } else if (j == 2) {
      d = B::half(B::rescale(B::sub(h(2), h(0)), fs_, 0));
    } else if (j >= 4) {
      d = B::eighth(B::rescale(
          B::sub(B::sub(B::add(B::twice(h(j)), h(j - 1)), h(j - 3)), B::twice(h(j - 4))),
          fs_, 0));
    } else {
      return false;
    }
    f = mwi_.tick(B::square(d));
    ++d_emitted_;
    return true;
  }

  void on_bp_sample(sample_t v, std::vector<std::size_t>& out) {
    sample_t f{};
    if (bp_feature_step(v, f)) tail_.on_feature_sample(f, out);
  }

  dsp::SampleRate fs_;
  std::size_t mwi_win_;

  // Feature chain (input timeline == feature timeline; the band-pass
  // stage absorbs its own group delay).
  dsp::BasicStreamingZeroPhaseFir<B> bp_;
  std::vector<sample_t> bp_scratch_;
  sample_t bp_hist_[5] = {};        ///< last 5 band-passed samples
  std::size_t bp_count_ = 0;
  std::size_t d_emitted_ = 0;       ///< derivative samples emitted so far

  // front_chunk arenas: band-pass intermediates and the per-stage
  // cumulative-output snapshots, reused across chunks.
  std::vector<sample_t> bp_arena_;
  std::vector<std::uint32_t> bp_cum_;
  std::vector<std::uint32_t> feat_cum_;

  dsp::BasicStreamingMovingAverage<B> mwi_;
  QrsDecisionTail<B> tail_;
};

using OnlinePanTompkins = BasicOnlinePanTompkins<dsp::DoubleBackend>;

/// Lockstep W-session Pan-Tompkins: the feature front runs once on the
/// SIMD batch backend (each band-pass tap and derivative coefficient
/// loaded once for all W sessions), then the integrated feature stream
/// fans out into W scalar QrsDecisionTail<DoubleBackend> instances --
/// the exact code the scalar detector runs, so lane i's emitted peaks
/// are byte-identical to a scalar detector fed lane i's samples.
///
/// Divergence handling: the front has no data-dependent branches, so a
/// lane inside a dropout gap or awaiting a soft reset simply keeps
/// streaming its samples; only its own tail's decisions diverge
/// (soft_reset_lane targets one tail without disturbing the others).
///
/// Checkpointing is per-lane through the lane adaptors
/// (core::LaneStateWriter/Reader): the front's lane-uniform state is
/// written to all W per-session blobs with lane i's values, and each
/// tail writes lane i's blob alone -- producing exactly the scalar
/// detector's wire layout per session.
template <std::size_t W>
class BatchOnlinePanTompkins {
 public:
  using backend_t = dsp::BatchBackend<W>;
  using sample_t = typename backend_t::sample_t;
  static constexpr std::size_t kLanes = W;

  explicit BatchOnlinePanTompkins(dsp::SampleRate fs, const PanTompkinsConfig& cfg = {})
      : fs_(fs),
        mwi_win_(std::max<std::size_t>(
            1, static_cast<std::size_t>(cfg.integration_window_s * fs))),
        bp_(pan_tompkins_bandpass_kernel(fs, cfg)),
        mwi_(mwi_win_) {
    tails_.reserve(W);
    for (std::size_t l = 0; l < W; ++l) tails_.emplace_back(fs, cfg);
  }

  /// Feeds one cleaned-ECG sample per lane; appends lane l's confirmed
  /// R-peak indices to out[l]. `out` must point at W vectors.
  void push(sample_t x, std::vector<std::size_t>* out) {
    for (std::size_t l = 0; l < W; ++l) tails_[l].note_input(x.lane(l));
    bp_scratch_.clear();
    bp_.push(x, bp_scratch_);
    for (const sample_t v : bp_scratch_) on_bp_sample(v, out);
  }

  /// End of stream for all lanes in lockstep.
  void finish(std::vector<std::size_t>* out) {
    bp_scratch_.clear();
    bp_.finish(bp_scratch_);
    for (const sample_t v : bp_scratch_) on_bp_sample(v, out);

    const std::size_t n = bp_count_;
    auto h = [&](std::size_t i) { return bp_hist_[i % 5]; };
    for (std::size_t i = d_emitted_; i < n; ++i) {
      sample_t d{};
      if (n == 1) {
        d = sample_t{};
      } else if (i == 0) {
        d = backend_t::rescale(backend_t::sub(h(1), h(0)), fs_, 0);
      } else if (i + 1 < n) {
        d = backend_t::half(backend_t::rescale(backend_t::sub(h(i + 1), h(i - 1)), fs_, 0));
      } else {
        d = backend_t::rescale(backend_t::sub(h(n - 1), h(n - 2)), fs_, 0);
      }
      emit_feature(mwi_.tick(backend_t::square(d)), out);
      ++d_emitted_;
    }

    for (std::size_t l = 0; l < W; ++l) tails_[l].settle(out[l]);
  }

  /// Feature front only, fused per chunk (see the scalar detector's
  /// front_chunk): all W lanes' band-pass/derivative/square/MWI run in
  /// lockstep over the whole chunk; `feat` receives the lane-vector
  /// feature samples and `cum` one entry per input sample. The caller
  /// replays lane l's features through decision_tail(l), calling
  /// note_input per lane first — push()'s exact interleaving.
  void front_chunk(std::span<const sample_t> x, std::vector<sample_t>& feat,
                   std::vector<std::uint32_t>& cum) {
    bp_arena_.clear();
    bp_cum_.clear();
    bp_.process_chunk_counted(x, bp_arena_, bp_cum_);
    const auto base = static_cast<std::uint32_t>(feat.size());
    feat_cum_.clear();
    for (const sample_t v : bp_arena_) {
      sample_t f{};
      if (bp_feature_step(v, f)) feat.push_back(f);
      feat_cum_.push_back(static_cast<std::uint32_t>(feat.size()));
    }
    for (std::size_t i = 0; i < x.size(); ++i)
      cum.push_back(bp_cum_[i] > 0 ? feat_cum_[bp_cum_[i] - 1] : base);
  }

  /// Lane l's decision tail, for callers driving front_chunk().
  [[nodiscard]] QrsDecisionTail<dsp::DoubleBackend>& decision_tail(std::size_t lane) {
    return tails_[lane];
  }

  /// Contact-gap recovery for one lane (see QrsDecisionTail::soft_reset);
  /// the shared feature front is untouched, so the other lanes are not
  /// perturbed.
  void soft_reset_lane(std::size_t lane) { tails_[lane].soft_reset(); }

  /// Lane-adaptor serialization (see class comment). The resulting
  /// per-session byte streams are exactly the scalar detector layout.
  template <typename LW>
  void save_state(LW& w) const {
    bp_.save_state(w);
    for (const sample_t v : bp_hist_) w.value(v);
    w.u64(bp_count_);
    w.u64(d_emitted_);
    mwi_.save_state(w);
    for (std::size_t l = 0; l < W; ++l) tails_[l].save_state(w.lane_writer(l));
  }

  template <typename LR>
  void load_state(LR& r) {
    bp_.load_state(r);
    for (sample_t& v : bp_hist_) v = r.template value<sample_t>();
    bp_count_ = r.u64();
    d_emitted_ = r.u64();
    mwi_.load_state(r);
    for (std::size_t l = 0; l < W; ++l) tails_[l].load_state(r.lane_reader(l));
  }

 private:
  /// One band-passed lane vector through the derivative/square/MWI
  /// chain; mirrors the scalar bp_feature_step lane for lane.
  bool bp_feature_step(sample_t v, sample_t& f) {
    bp_hist_[bp_count_ % 5] = v;
    const std::size_t j = bp_count_++;
    auto h = [&](std::size_t i) { return bp_hist_[i % 5]; };
    sample_t d{};
    if (j == 1) {
      d = backend_t::rescale(backend_t::sub(h(1), h(0)), fs_, 0);
    } else if (j == 2) {
      d = backend_t::half(backend_t::rescale(backend_t::sub(h(2), h(0)), fs_, 0));
    } else if (j >= 4) {
      d = backend_t::eighth(backend_t::rescale(
          backend_t::sub(
              backend_t::sub(backend_t::add(backend_t::twice(h(j)), h(j - 1)), h(j - 3)),
              backend_t::twice(h(j - 4))),
          fs_, 0));
    } else {
      return false;
    }
    f = mwi_.tick(backend_t::square(d));
    ++d_emitted_;
    return true;
  }

  void on_bp_sample(sample_t v, std::vector<std::size_t>* out) {
    sample_t f{};
    if (bp_feature_step(v, f)) emit_feature(f, out);
  }

  void emit_feature(sample_t f, std::vector<std::size_t>* out) {
    for (std::size_t l = 0; l < W; ++l) tails_[l].on_feature_sample(f.lane(l), out[l]);
  }

  dsp::SampleRate fs_;
  std::size_t mwi_win_;
  dsp::BasicStreamingZeroPhaseFir<backend_t> bp_;
  std::vector<sample_t> bp_scratch_;
  sample_t bp_hist_[5] = {};
  std::size_t bp_count_ = 0;
  std::size_t d_emitted_ = 0;
  std::vector<sample_t> bp_arena_;       ///< front_chunk band-pass arena
  std::vector<std::uint32_t> bp_cum_;
  std::vector<std::uint32_t> feat_cum_;
  dsp::BasicStreamingMovingAverage<backend_t> mwi_;
  std::vector<QrsDecisionTail<dsp::DoubleBackend>> tails_; ///< one per lane
};

class PanTompkins {
 public:
  explicit PanTompkins(dsp::SampleRate fs, const PanTompkinsConfig& cfg = {});

  /// Detects R peaks over a full recording segment. Thin wrapper: feeds
  /// the whole segment through an OnlinePanTompkins and collects the
  /// confirmed peaks, so batch and streaming detection cannot drift.
  [[nodiscard]] QrsDetection detect(dsp::SignalView ecg) const;

  /// The integrated feature signal (exposed for tests/benches; batch
  /// reference implementation with the zero-phase filtfilt band-pass).
  [[nodiscard]] dsp::Signal feature_signal(dsp::SignalView ecg) const;

 private:
  dsp::SampleRate fs_;
  PanTompkinsConfig cfg_;
};

/// Convenience: R-peak times in seconds.
std::vector<double> r_peak_times(const QrsDetection& det, dsp::SampleRate fs);

} // namespace icgkit::ecg
