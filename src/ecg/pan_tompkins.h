// Real-time QRS detection after Pan & Tompkins (IEEE TBME 1985), the
// R-peak detector the paper uses to segment ICG beats (Section IV-C).
//
// Stage chain: band-pass (5-15 Hz, isolating QRS energy) -> 5-point
// derivative -> squaring -> moving-window integration (150 ms) -> dual
// adaptive thresholds with a 200 ms refractory period, T-wave slope
// discrimination in the 200-360 ms window, and RR-based search-back for
// missed beats. Detected peaks are finally refined to the local maximum
// of the *input* signal so the reported indices are true R sample
// positions.
#pragma once

#include "dsp/types.h"

#include <cstddef>
#include <vector>

namespace icgkit::ecg {

struct PanTompkinsConfig {
  double bandpass_low_hz = 5.0;
  double bandpass_high_hz = 15.0;
  double integration_window_s = 0.150;
  double refractory_s = 0.200;
  double t_wave_window_s = 0.360;
  /// Search-back triggers when no peak was found for this multiple of the
  /// running RR average.
  double searchback_rr_factor = 1.66;
  /// Half-width of the window used to refine detections onto the raw ECG.
  double refine_window_s = 0.050;
};

struct QrsDetection {
  std::vector<std::size_t> r_samples;  ///< R-peak sample indices
  std::vector<double> rr_intervals_s;  ///< successive differences
};

class PanTompkins {
 public:
  explicit PanTompkins(dsp::SampleRate fs, const PanTompkinsConfig& cfg = {});

  /// Detects R peaks over a full recording segment.
  [[nodiscard]] QrsDetection detect(dsp::SignalView ecg) const;

  /// The integrated feature signal (exposed for tests/benches).
  [[nodiscard]] dsp::Signal feature_signal(dsp::SignalView ecg) const;

 private:
  dsp::SampleRate fs_;
  PanTompkinsConfig cfg_;
};

/// Convenience: R-peak times in seconds.
std::vector<double> r_peak_times(const QrsDetection& det, dsp::SampleRate fs);

} // namespace icgkit::ecg
