// Real-time QRS detection after Pan & Tompkins (IEEE TBME 1985), the
// R-peak detector the paper uses to segment ICG beats (Section IV-C).
//
// Stage chain: band-pass (5-15 Hz, isolating QRS energy) -> 5-point
// derivative -> squaring -> moving-window integration (150 ms) -> dual
// adaptive thresholds with a 200 ms refractory period, T-wave slope
// discrimination in the 200-360 ms window, and RR-based search-back for
// missed beats. Detected peaks are finally refined to the local maximum
// of the *input* signal so the reported indices are true R sample
// positions.
#pragma once

#include "dsp/filtfilt.h"
#include "dsp/moving.h"
#include "dsp/ring_buffer.h"
#include "dsp/types.h"

#include <cstddef>
#include <optional>
#include <vector>

namespace icgkit::ecg {

struct PanTompkinsConfig {
  double bandpass_low_hz = 5.0;
  double bandpass_high_hz = 15.0;
  double integration_window_s = 0.150;
  double refractory_s = 0.200;
  double t_wave_window_s = 0.360;
  /// Search-back triggers when no peak was found for this multiple of the
  /// running RR average.
  double searchback_rr_factor = 1.66;
  /// Half-width of the window used to refine detections onto the raw ECG.
  double refine_window_s = 0.050;
};

struct QrsDetection {
  std::vector<std::size_t> r_samples;  ///< R-peak sample indices
  std::vector<double> rr_intervals_s;  ///< successive differences
};

/// Online (sample-by-sample) Pan-Tompkins detector.
///
/// All adaptive state -- signal/noise thresholds (SPKI/NPKI), the RR
/// history driving search-back, the pending MWI candidate, and the
/// refinement look-back buffers -- is carried across push() calls, so the
/// detector does O(1) work per sample and its output is invariant to how
/// the input is chunked.
///
/// The feature chain mirrors the batch one: the 5-15 Hz band-pass runs as
/// a causal symmetric-kernel stage whose output equals the zero-phase
/// filtfilt response (group delay absorbed internally; see
/// StreamingZeroPhaseFir), followed by the aligned 5-point derivative,
/// squaring and the 150 ms moving-window integration. Detection decisions
/// are therefore made on (numerically) the same feature signal the batch
/// detector sees, with a data-driven confirmation latency: an MWI
/// candidate is final once the next MWI local maximum at least half a
/// refractory later has been observed (or the stream ends).
class OnlinePanTompkins {
 public:
  explicit OnlinePanTompkins(dsp::SampleRate fs, const PanTompkinsConfig& cfg = {});

  /// Feeds one cleaned-ECG sample; appends the indices (absolute, in the
  /// fed sample timeline) of any R peaks confirmed by it to `out`.
  void push(dsp::Sample x, std::vector<std::size_t>& out);
  void push_chunk(dsp::SignalView x, std::vector<std::size_t>& out);
  /// End of stream: processes the pending candidate and flushes.
  void finish(std::vector<std::size_t>& out);
  void reset();

  [[nodiscard]] std::size_t samples_consumed() const { return in_count_; }
  [[nodiscard]] std::size_t peaks_emitted() const { return peaks_emitted_; }

 private:
  void on_bp_sample(dsp::Sample v, std::vector<std::size_t>& out);
  void on_feature_sample(dsp::Sample v, std::vector<std::size_t>& out);
  void on_local_max(std::size_t idx, std::vector<std::size_t>& out);
  void finalize_candidate(std::size_t idx, std::vector<std::size_t>& out);
  void learn_thresholds();
  void process_candidate(std::size_t idx, std::vector<std::size_t>& out);
  void accept(std::size_t idx, bool searchback, std::vector<std::size_t>& out);
  void refine_and_emit(std::size_t idx, std::vector<std::size_t>& out);
  [[nodiscard]] double rr_average_samples() const;
  [[nodiscard]] bool mwi_available(std::size_t idx) const;
  [[nodiscard]] double mwi_at(std::size_t idx) const;
  [[nodiscard]] double slope_at(std::size_t idx) const;
  [[nodiscard]] double peak_slope(std::size_t idx) const;

  dsp::SampleRate fs_;
  PanTompkinsConfig cfg_;
  std::size_t refractory_, min_sep_, t_wave_win_, mwi_win_, refine_, learn_end_;

  // Feature chain (input timeline == feature timeline; the band-pass
  // stage absorbs its own group delay).
  dsp::StreamingZeroPhaseFir bp_;
  dsp::Signal bp_scratch_;
  double bp_hist_[5] = {};          ///< last 5 band-passed samples
  std::size_t bp_count_ = 0;
  std::size_t d_emitted_ = 0;       ///< derivative samples emitted so far
  dsp::StreamingMovingAverage mwi_;

  // Feature history for thresholds, slopes and search-back.
  dsp::RingBuffer<dsp::Sample> mwi_ring_;
  std::size_t mwi_produced_ = 0;
  dsp::RingBuffer<dsp::Sample> in_ring_;  ///< raw input for refinement
  std::size_t in_count_ = 0;

  // Candidate finalization (batch local_maxima semantics).
  std::optional<std::size_t> pending_;
  bool learned_ = false;
  std::vector<std::size_t> prelearn_;     ///< candidates before thresholds exist

  // Adaptive detector state.
  double spki_ = 0.0, npki_ = 0.0;
  std::optional<std::size_t> last_accepted_;
  double last_accepted_slope_ = 0.0;
  std::vector<double> rr_history_;        ///< trimmed to the last 8
  std::vector<std::size_t> rejected_since_;
  std::optional<std::size_t> last_r_;
  std::size_t peaks_emitted_ = 0;
};

class PanTompkins {
 public:
  explicit PanTompkins(dsp::SampleRate fs, const PanTompkinsConfig& cfg = {});

  /// Detects R peaks over a full recording segment. Thin wrapper: feeds
  /// the whole segment through an OnlinePanTompkins and collects the
  /// confirmed peaks, so batch and streaming detection cannot drift.
  [[nodiscard]] QrsDetection detect(dsp::SignalView ecg) const;

  /// The integrated feature signal (exposed for tests/benches; batch
  /// reference implementation with the zero-phase filtfilt band-pass).
  [[nodiscard]] dsp::Signal feature_signal(dsp::SignalView ecg) const;

 private:
  dsp::SampleRate fs_;
  PanTompkinsConfig cfg_;
};

/// Convenience: R-peak times in seconds.
std::vector<double> r_peak_times(const QrsDetection& det, dsp::SampleRate fs);

} // namespace icgkit::ecg
