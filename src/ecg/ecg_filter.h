// The paper's ECG cleaning chain (Section IV-A.1):
//   1. baseline-wander removal by morphological filtering (Sun et al.
//      2002: opening then closing with QRS- and wave-sized structuring
//      elements, subtracting the estimate), then
//   2. a zero-phase 32nd-order FIR band-pass with cut-offs 0.05 Hz and
//      40 Hz for high-frequency noise and residual artifact removal.
#pragma once

#include "dsp/fir_design.h"
#include "dsp/morphology.h"
#include "dsp/types.h"

namespace icgkit::ecg {

struct EcgFilterConfig {
  std::size_t fir_order = 32;
  double f1_hz = 0.05;
  double f2_hz = 40.0;
  dsp::BaselineEstimatorConfig baseline{};
  bool enable_morphological_stage = true; ///< ablation switch
  bool enable_fir_stage = true;           ///< ablation switch
};

class EcgFilter {
 public:
  EcgFilter(dsp::SampleRate fs, const EcgFilterConfig& cfg = {});

  /// Runs the full chain over a recording segment.
  [[nodiscard]] dsp::Signal apply(dsp::SignalView ecg) const;

  /// Stage outputs, exposed for the ablation bench.
  [[nodiscard]] dsp::Signal baseline_estimate(dsp::SignalView ecg) const;

  [[nodiscard]] dsp::SampleRate sample_rate() const { return fs_; }
  [[nodiscard]] const dsp::FirCoefficients& fir() const { return fir_; }

 private:
  dsp::SampleRate fs_;
  EcgFilterConfig cfg_;
  dsp::FirCoefficients fir_;
};

} // namespace icgkit::ecg
