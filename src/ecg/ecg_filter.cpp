#include "ecg/ecg_filter.h"

#include "dsp/filtfilt.h"

#include <stdexcept>

#include "support/contract.h"

namespace icgkit::ecg {

EcgFilter::EcgFilter(dsp::SampleRate fs, const EcgFilterConfig& cfg)
    : fs_(fs), cfg_(cfg),
      fir_(dsp::design_bandpass(cfg.fir_order, cfg.f1_hz, cfg.f2_hz, fs)) {
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("EcgFilter: fs must be positive"));
}

dsp::Signal EcgFilter::baseline_estimate(dsp::SignalView ecg) const {
  return dsp::estimate_baseline(ecg, fs_, cfg_.baseline);
}

dsp::Signal EcgFilter::apply(dsp::SignalView ecg) const {
  dsp::Signal y(ecg.begin(), ecg.end());
  if (cfg_.enable_morphological_stage) {
    y = dsp::remove_baseline(y, fs_, cfg_.baseline);
  }
  if (cfg_.enable_fir_stage) {
    y = dsp::filtfilt_fir(fir_, y);
  }
  return y;
}

} // namespace icgkit::ecg
