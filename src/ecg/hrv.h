// Frequency-domain heart-rate variability analysis.
//
// The device streams beat-to-beat RR intervals; LF/HF analysis of that
// series is the standard autonomic-state summary a CHF review would add
// on top of the paper's parameters (sympathetic predominance -- high
// LF/HF -- accompanies decompensation). Implementation: the irregular RR
// tachogram is resampled to a uniform rate (4 Hz, the conventional
// choice), detrended, and fed to the Welch PSD; band powers follow the
// Task Force (1996) conventions:
//   VLF 0.003-0.04 Hz, LF 0.04-0.15 Hz, HF 0.15-0.4 Hz.
#pragma once

#include "dsp/types.h"

#include <vector>

namespace icgkit::ecg {

struct HrvSpectrum {
  double vlf_power_ms2 = 0.0;
  double lf_power_ms2 = 0.0;
  double hf_power_ms2 = 0.0;
  double lf_hf_ratio = 0.0;
  double total_power_ms2 = 0.0;
  dsp::Signal freq_hz;   ///< PSD support (for plotting)
  dsp::Signal psd_ms2_hz;

  [[nodiscard]] bool valid() const { return total_power_ms2 > 0.0; }
};

struct HrvConfig {
  double resample_hz = 4.0;
  double min_rr_s = 0.3;  ///< artifact gate, as in heart_rate_stats
  double max_rr_s = 2.0;
};

/// Computes the LF/HF spectrum from an RR series (seconds). Requires at
/// least ~30 s of data; returns a default (invalid) result otherwise.
HrvSpectrum hrv_spectrum(const std::vector<double>& rr_intervals_s,
                         const HrvConfig& cfg = {});

} // namespace icgkit::ecg
