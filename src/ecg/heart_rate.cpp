#include "ecg/heart_rate.h"

#include "dsp/stats.h"

#include <cmath>

namespace icgkit::ecg {

namespace {
std::vector<double> valid_rr(const std::vector<double>& rr, double lo, double hi) {
  std::vector<double> out;
  out.reserve(rr.size());
  for (const double v : rr)
    if (v >= lo && v <= hi) out.push_back(v);
  return out;
}
} // namespace

HeartRateStats heart_rate_stats(const std::vector<double>& rr_intervals_s, double min_rr_s,
                                double max_rr_s) {
  HeartRateStats stats;
  const std::vector<double> rr = valid_rr(rr_intervals_s, min_rr_s, max_rr_s);
  stats.beat_count = rr.size();
  if (rr.empty()) return stats;

  stats.mean_bpm = 60.0 / dsp::mean(rr);
  stats.median_bpm = 60.0 / dsp::median(rr);
  stats.sdnn_ms = 1000.0 * dsp::stddev(rr);

  if (rr.size() >= 2) {
    double acc = 0.0;
    for (std::size_t i = 1; i < rr.size(); ++i) {
      const double d = rr[i] - rr[i - 1];
      acc += d * d;
    }
    stats.rmssd_ms = 1000.0 * std::sqrt(acc / static_cast<double>(rr.size() - 1));
  }
  return stats;
}

std::vector<double> instantaneous_hr(const std::vector<double>& rr_intervals_s,
                                     double min_rr_s, double max_rr_s) {
  std::vector<double> hr;
  for (const double v : rr_intervals_s)
    if (v >= min_rr_s && v <= max_rr_s) hr.push_back(60.0 / v);
  return hr;
}

} // namespace icgkit::ecg
