#include "ecg/hrv.h"

#include "dsp/fft.h"
#include "dsp/stats.h"

#include <cmath>

namespace icgkit::ecg {

HrvSpectrum hrv_spectrum(const std::vector<double>& rr_intervals_s, const HrvConfig& cfg) {
  HrvSpectrum out;

  // Artifact gating + tachogram construction: RR value at cumulative time.
  std::vector<double> t, rr_ms;
  double now = 0.0;
  for (const double rr : rr_intervals_s) {
    if (rr < cfg.min_rr_s || rr > cfg.max_rr_s) continue;
    now += rr;
    t.push_back(now);
    rr_ms.push_back(rr * 1000.0);
  }
  if (t.size() < 20 || now < 30.0) return out; // too short for LF resolution

  // Uniform resampling by linear interpolation at cfg.resample_hz.
  const std::size_t n =
      static_cast<std::size_t>((t.back() - t.front()) * cfg.resample_hz) + 1;
  dsp::Signal uniform(n);
  std::size_t k = 1;
  for (std::size_t i = 0; i < n; ++i) {
    const double ti = t.front() + static_cast<double>(i) / cfg.resample_hz;
    while (k + 1 < t.size() && t[k] < ti) ++k;
    const double t0 = t[k - 1], t1 = t[k];
    const double frac = (t1 > t0) ? (ti - t0) / (t1 - t0) : 0.0;
    uniform[i] = rr_ms[k - 1] + frac * (rr_ms[k] - rr_ms[k - 1]);
  }

  // Mean removal (the DC term would otherwise dwarf every band).
  const double m = dsp::mean(uniform);
  for (auto& v : uniform) v -= m;

  dsp::WelchConfig welch;
  welch.segment_length = 256; // 64 s segments at 4 Hz: resolves 0.04 Hz
  const dsp::Psd psd = dsp::welch_psd(uniform, cfg.resample_hz, welch);

  out.vlf_power_ms2 = dsp::band_power(psd, 0.003, 0.04);
  out.lf_power_ms2 = dsp::band_power(psd, 0.04, 0.15);
  out.hf_power_ms2 = dsp::band_power(psd, 0.15, 0.40);
  out.total_power_ms2 = out.vlf_power_ms2 + out.lf_power_ms2 + out.hf_power_ms2;
  out.lf_hf_ratio = (out.hf_power_ms2 > 0.0) ? out.lf_power_ms2 / out.hf_power_ms2 : 0.0;
  out.freq_hz = psd.freq_hz;
  out.psd_ms2_hz = psd.power;
  return out;
}

} // namespace icgkit::ecg
