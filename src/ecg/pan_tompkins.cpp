#include "ecg/pan_tompkins.h"

#include "dsp/butterworth.h"
#include "dsp/derivative.h"
#include "dsp/filtfilt.h"
#include "dsp/moving.h"
#include "dsp/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace icgkit::ecg {

namespace {

// Local maxima of x with a minimum separation; a peak is a sample strictly
// greater than its neighbours (plateaus take the first sample).
std::vector<std::size_t> local_maxima(dsp::SignalView x, std::size_t min_separation) {
  std::vector<std::size_t> peaks;
  for (std::size_t i = 1; i + 1 < x.size(); ++i) {
    if (x[i] > x[i - 1] && x[i] >= x[i + 1]) {
      if (!peaks.empty() && i - peaks.back() < min_separation) {
        if (x[i] > x[peaks.back()]) peaks.back() = i; // keep the larger
      } else {
        peaks.push_back(i);
      }
    }
  }
  return peaks;
}

std::size_t argmax_window(dsp::SignalView x, std::size_t lo, std::size_t hi) {
  std::size_t best = lo;
  for (std::size_t i = lo; i <= hi && i < x.size(); ++i)
    if (x[i] > x[best]) best = i;
  return best;
}

} // namespace

PanTompkins::PanTompkins(dsp::SampleRate fs, const PanTompkinsConfig& cfg)
    : fs_(fs), cfg_(cfg) {
  if (fs <= 0.0) throw std::invalid_argument("PanTompkins: fs must be positive");
  if (cfg.bandpass_low_hz >= cfg.bandpass_high_hz)
    throw std::invalid_argument("PanTompkins: band-pass edges inverted");
}

dsp::Signal PanTompkins::feature_signal(dsp::SignalView ecg) const {
  const dsp::SosFilter bp =
      dsp::butterworth_bandpass(2, cfg_.bandpass_low_hz, cfg_.bandpass_high_hz, fs_);
  dsp::Signal y = dsp::filtfilt_sos(bp, ecg);
  y = dsp::five_point_derivative(y, fs_);
  for (auto& v : y) v *= v;
  const std::size_t win =
      std::max<std::size_t>(1, static_cast<std::size_t>(cfg_.integration_window_s * fs_));
  return dsp::moving_window_integrate(y, win);
}

QrsDetection PanTompkins::detect(dsp::SignalView ecg) const {
  QrsDetection det;
  if (ecg.size() < static_cast<std::size_t>(fs_)) return det; // need >= 1 s

  const dsp::Signal mwi = feature_signal(ecg);
  const std::size_t refractory = static_cast<std::size_t>(cfg_.refractory_s * fs_);
  const std::size_t t_wave_win = static_cast<std::size_t>(cfg_.t_wave_window_s * fs_);
  const std::size_t mwi_win =
      std::max<std::size_t>(1, static_cast<std::size_t>(cfg_.integration_window_s * fs_));

  // Slope reference for T-wave discrimination: max |d(MWI)/dt| around a peak.
  const dsp::Signal mwi_slope = dsp::derivative(mwi, fs_);
  auto peak_slope = [&](std::size_t idx) {
    const std::size_t lo = idx > mwi_win ? idx - mwi_win : 0;
    double best = 0.0;
    for (std::size_t i = lo; i <= idx && i < mwi_slope.size(); ++i)
      best = std::max(best, std::abs(mwi_slope[i]));
    return best;
  };

  // Threshold initialization from a two-second learning phase.
  const std::size_t learn = std::min<std::size_t>(mwi.size(), static_cast<std::size_t>(2.0 * fs_));
  dsp::SignalView learn_view(mwi.data(), learn);
  double spki = 0.25 * mwi[dsp::argmax(learn_view)];
  double npki = 0.5 * dsp::mean(learn_view);

  const std::vector<std::size_t> candidates = local_maxima(mwi, refractory / 2);

  std::vector<std::size_t> accepted_mwi;    // accepted peaks (MWI indices)
  std::vector<double> accepted_slope;
  std::vector<double> rr_history;           // for the running RR average
  std::vector<std::size_t> rejected_since;  // candidates rejected since last accept

  auto rr_average = [&]() {
    if (rr_history.empty()) return 0.8 * fs_; // prior: 75 bpm, in samples
    const std::size_t n = std::min<std::size_t>(8, rr_history.size());
    double acc = 0.0;
    for (std::size_t i = rr_history.size() - n; i < rr_history.size(); ++i)
      acc += rr_history[i];
    return acc / static_cast<double>(n);
  };

  auto accept = [&](std::size_t idx, bool searchback) {
    if (!accepted_mwi.empty()) {
      rr_history.push_back(static_cast<double>(idx - accepted_mwi.back()));
    }
    accepted_mwi.push_back(idx);
    accepted_slope.push_back(peak_slope(idx));
    const double w = searchback ? 0.25 : 0.125;
    spki = w * mwi[idx] + (1.0 - w) * spki;
    rejected_since.clear();
  };

  for (const std::size_t idx : candidates) {
    const double threshold1 = npki + 0.25 * (spki - npki);
    const bool after_refractory =
        accepted_mwi.empty() || idx - accepted_mwi.back() >= refractory;

    bool is_qrs = after_refractory && mwi[idx] > threshold1;

    // T-wave discrimination: a candidate 200-360 ms after the previous
    // QRS whose slope is less than half of that QRS's slope is a T wave.
    if (is_qrs && !accepted_mwi.empty()) {
      const std::size_t since = idx - accepted_mwi.back();
      if (since < t_wave_win && peak_slope(idx) < 0.5 * accepted_slope.back()) {
        is_qrs = false;
      }
    }

    if (is_qrs) {
      accept(idx, /*searchback=*/false);
    } else {
      npki = 0.125 * mwi[idx] + 0.875 * npki;
      rejected_since.push_back(idx);
    }

    // Search-back: if the gap since the last QRS exceeds 1.66x the RR
    // average, re-examine rejected candidates against the lower threshold.
    if (!accepted_mwi.empty() && !rejected_since.empty()) {
      const double gap = static_cast<double>(idx - accepted_mwi.back());
      if (gap > cfg_.searchback_rr_factor * rr_average()) {
        const double threshold2 = 0.5 * (npki + 0.25 * (spki - npki));
        std::size_t best = 0;
        double best_val = threshold2;
        for (const std::size_t cand : rejected_since) {
          if (cand <= accepted_mwi.back() + refractory) continue;
          if (mwi[cand] > best_val) {
            best_val = mwi[cand];
            best = cand;
          }
        }
        if (best != 0) accept(best, /*searchback=*/true);
      }
    }
  }

  // Refine each accepted MWI peak onto the raw ECG. The zero-phase
  // band-pass introduces no delay, but the causal MWI shifts energy right
  // by up to the window length, so search left of the MWI peak.
  const std::size_t refine = static_cast<std::size_t>(cfg_.refine_window_s * fs_);
  std::vector<std::size_t> r_samples;
  for (const std::size_t idx : accepted_mwi) {
    const std::size_t lo = idx > mwi_win + refine ? idx - mwi_win - refine : 0;
    const std::size_t hi = std::min(ecg.size() - 1, idx + refine);
    const std::size_t r = argmax_window(ecg, lo, hi);
    if (r_samples.empty() || r - r_samples.back() >= refractory) {
      r_samples.push_back(r);
    }
  }

  det.r_samples = std::move(r_samples);
  for (std::size_t i = 1; i < det.r_samples.size(); ++i)
    det.rr_intervals_s.push_back(
        static_cast<double>(det.r_samples[i] - det.r_samples[i - 1]) / fs_);
  return det;
}

std::vector<double> r_peak_times(const QrsDetection& det, dsp::SampleRate fs) {
  std::vector<double> t;
  t.reserve(det.r_samples.size());
  for (const std::size_t s : det.r_samples) t.push_back(static_cast<double>(s) / fs);
  return t;
}

} // namespace icgkit::ecg
