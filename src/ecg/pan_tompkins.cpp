#include "ecg/pan_tompkins.h"

#include "dsp/butterworth.h"
#include "dsp/derivative.h"
#include "dsp/filtfilt.h"
#include "dsp/moving.h"
#include "dsp/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace icgkit::ecg {

// ---------------------------------------------------------------------------
// OnlinePanTompkins
// ---------------------------------------------------------------------------

namespace {
// Truncation tolerance for the band-pass zero-phase kernel: tight enough
// that detection decisions match the batch filtfilt feature signal.
constexpr double kBpKernelTol = 1e-5;

dsp::FirCoefficients feature_bandpass_kernel(dsp::SampleRate fs,
                                             const PanTompkinsConfig& cfg) {
  if (fs <= 0.0) throw std::invalid_argument("PanTompkins: fs must be positive");
  if (cfg.bandpass_low_hz >= cfg.bandpass_high_hz)
    throw std::invalid_argument("PanTompkins: band-pass edges inverted");
  return dsp::zero_phase_sos_kernel(
      dsp::butterworth_bandpass(2, cfg.bandpass_low_hz, cfg.bandpass_high_hz, fs),
      kBpKernelTol);
}
} // namespace

OnlinePanTompkins::OnlinePanTompkins(dsp::SampleRate fs, const PanTompkinsConfig& cfg)
    : fs_(fs), cfg_(cfg),
      refractory_(static_cast<std::size_t>(cfg.refractory_s * fs)),
      min_sep_(std::max<std::size_t>(1, refractory_ / 2)),
      t_wave_win_(static_cast<std::size_t>(cfg.t_wave_window_s * fs)),
      mwi_win_(std::max<std::size_t>(
          1, static_cast<std::size_t>(cfg.integration_window_s * fs))),
      refine_(static_cast<std::size_t>(cfg.refine_window_s * fs)),
      learn_end_(static_cast<std::size_t>(2.0 * fs)),
      bp_(feature_bandpass_kernel(fs, cfg)),
      mwi_(mwi_win_),
      mwi_ring_(std::max<std::size_t>(learn_end_ + 2,
                                      static_cast<std::size_t>(8.0 * fs)) +
                mwi_win_ + 2),
      in_ring_(std::max<std::size_t>(learn_end_ + 2,
                                     static_cast<std::size_t>(8.0 * fs)) +
               mwi_win_ + 2) {}

void OnlinePanTompkins::push(dsp::Sample x, std::vector<std::size_t>& out) {
  in_ring_.push(x);
  ++in_count_;
  bp_scratch_.clear();
  bp_.push(x, bp_scratch_);
  for (const dsp::Sample v : bp_scratch_) on_bp_sample(v, out);
}

void OnlinePanTompkins::push_chunk(dsp::SignalView x, std::vector<std::size_t>& out) {
  for (const dsp::Sample v : x) push(v, out);
}

void OnlinePanTompkins::on_bp_sample(dsp::Sample v, std::vector<std::size_t>& out) {
  bp_hist_[bp_count_ % 5] = v;
  const std::size_t j = bp_count_++;
  auto h = [&](std::size_t i) { return bp_hist_[i % 5]; };
  // Aligned 5-point derivative with the batch edge fallbacks (see
  // five_point_derivative): d[0], d[1] use the one-sided/central forms,
  // d[i] for i >= 2 the centered 5-point stencil once x[i+2] exists. The
  // trailing d[n-2], d[n-1] are emitted by finish().
  if (j == 1) {
    const double d = (h(1) - h(0)) * fs_;
    on_feature_sample(mwi_.tick(d * d), out);
    ++d_emitted_;
  } else if (j == 2) {
    const double d = (h(2) - h(0)) * fs_ * 0.5;
    on_feature_sample(mwi_.tick(d * d), out);
    ++d_emitted_;
  } else if (j >= 4) {
    const double d = (2.0 * h(j) + h(j - 1) - h(j - 3) - 2.0 * h(j - 4)) * fs_ / 8.0;
    on_feature_sample(mwi_.tick(d * d), out);
    ++d_emitted_;
  }
}

void OnlinePanTompkins::on_feature_sample(dsp::Sample v, std::vector<std::size_t>& out) {
  mwi_ring_.push(v);
  const std::size_t i = mwi_produced_++;
  // A sample is a candidate once its right neighbour arrives: strictly
  // above the left neighbour, at least the right one (plateaus keep the
  // first sample), matching the batch local_maxima().
  if (i >= 2 && mwi_at(i - 1) > mwi_at(i - 2) && mwi_at(i - 1) >= v)
    on_local_max(i - 1, out);
  if (!learned_ && mwi_produced_ >= learn_end_) {
    learn_thresholds();
    for (const std::size_t idx : prelearn_) process_candidate(idx, out);
    prelearn_.clear();
  }
}

void OnlinePanTompkins::on_local_max(std::size_t idx, std::vector<std::size_t>& out) {
  if (pending_.has_value() && idx - *pending_ < min_sep_) {
    // Same merge rule as the batch candidate pass: within half a
    // refractory of the previous candidate, the larger one wins.
    if (mwi_available(*pending_) && mwi_at(idx) > mwi_at(*pending_)) pending_ = idx;
    return;
  }
  if (pending_.has_value()) finalize_candidate(*pending_, out);
  pending_ = idx;
}

void OnlinePanTompkins::finalize_candidate(std::size_t idx, std::vector<std::size_t>& out) {
  if (!learned_) {
    prelearn_.push_back(idx);
    return;
  }
  process_candidate(idx, out);
}

void OnlinePanTompkins::learn_thresholds() {
  const std::size_t learn = std::min(mwi_produced_, learn_end_);
  learned_ = true;
  if (learn == 0) return;
  const std::size_t oldest = mwi_produced_ - mwi_ring_.size();
  double peak = 0.0, acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = oldest; i < learn; ++i) {
    const double v = mwi_ring_.at(i - oldest);
    peak = std::max(peak, v);
    acc += v;
    ++count;
  }
  spki_ = 0.25 * peak;
  npki_ = count > 0 ? 0.5 * acc / static_cast<double>(count) : 0.0;
}

void OnlinePanTompkins::process_candidate(std::size_t idx, std::vector<std::size_t>& out) {
  if (!mwi_available(idx)) return; // fell out of the bounded history
  const double threshold1 = npki_ + 0.25 * (spki_ - npki_);
  const bool after_refractory =
      !last_accepted_.has_value() || idx - *last_accepted_ >= refractory_;

  bool is_qrs = after_refractory && mwi_at(idx) > threshold1;

  // T-wave discrimination: a candidate 200-360 ms after the previous QRS
  // whose slope is less than half of that QRS's slope is a T wave.
  if (is_qrs && last_accepted_.has_value()) {
    const std::size_t since = idx - *last_accepted_;
    if (since < t_wave_win_ && peak_slope(idx) < 0.5 * last_accepted_slope_)
      is_qrs = false;
  }

  if (is_qrs) {
    accept(idx, /*searchback=*/false, out);
  } else {
    npki_ = 0.125 * mwi_at(idx) + 0.875 * npki_;
    rejected_since_.push_back(idx);
  }

  // Search-back: if the gap since the last QRS exceeds the factor times
  // the running RR average, re-examine rejected candidates against the
  // lower threshold.
  if (last_accepted_.has_value() && !rejected_since_.empty()) {
    const double gap = static_cast<double>(idx - *last_accepted_);
    if (gap > cfg_.searchback_rr_factor * rr_average_samples()) {
      const double threshold2 = 0.5 * (npki_ + 0.25 * (spki_ - npki_));
      std::size_t best = 0;
      double best_val = threshold2;
      for (const std::size_t cand : rejected_since_) {
        if (cand <= *last_accepted_ + refractory_) continue;
        if (!mwi_available(cand)) continue;
        if (mwi_at(cand) > best_val) {
          best_val = mwi_at(cand);
          best = cand;
        }
      }
      if (best != 0) accept(best, /*searchback=*/true, out);
    }
  }
}

void OnlinePanTompkins::accept(std::size_t idx, bool searchback,
                               std::vector<std::size_t>& out) {
  if (last_accepted_.has_value()) {
    rr_history_.push_back(static_cast<double>(idx - *last_accepted_));
    if (rr_history_.size() > 8) rr_history_.erase(rr_history_.begin());
  }
  last_accepted_ = idx;
  last_accepted_slope_ = peak_slope(idx);
  const double w = searchback ? 0.25 : 0.125;
  spki_ = w * mwi_at(idx) + (1.0 - w) * spki_;
  rejected_since_.clear();
  refine_and_emit(idx, out);
}

void OnlinePanTompkins::refine_and_emit(std::size_t idx, std::vector<std::size_t>& out) {
  // The zero-phase band-pass introduces no shift, but the causal MWI
  // moves energy right by up to its window, so search left of the MWI
  // peak (batch refinement geometry).
  const std::size_t oldest = in_count_ - in_ring_.size();
  const std::size_t lo_want = idx > mwi_win_ + refine_ ? idx - mwi_win_ - refine_ : 0;
  const std::size_t lo = std::max(lo_want, oldest);
  const std::size_t hi = std::min(in_count_ - 1, idx + refine_);
  if (lo > hi) return;
  std::size_t best = lo;
  for (std::size_t i = lo; i <= hi; ++i)
    if (in_ring_.at(i - oldest) > in_ring_.at(best - oldest)) best = i;
  if (!last_r_.has_value() ||
      (best > *last_r_ && best - *last_r_ >= refractory_)) {
    last_r_ = best;
    ++peaks_emitted_;
    out.push_back(best);
  }
}

double OnlinePanTompkins::rr_average_samples() const {
  if (rr_history_.empty()) return 0.8 * fs_; // prior: 75 bpm, in samples
  double acc = 0.0;
  for (const double rr : rr_history_) acc += rr;
  return acc / static_cast<double>(rr_history_.size());
}

bool OnlinePanTompkins::mwi_available(std::size_t idx) const {
  const std::size_t oldest = mwi_produced_ - mwi_ring_.size();
  return idx >= oldest && idx < mwi_produced_;
}

double OnlinePanTompkins::mwi_at(std::size_t idx) const {
  return mwi_ring_.at(idx - (mwi_produced_ - mwi_ring_.size()));
}

double OnlinePanTompkins::slope_at(std::size_t idx) const {
  // derivative(mwi) with the batch edge forms.
  if (idx == 0)
    return mwi_produced_ > 1 ? (mwi_at(1) - mwi_at(0)) * fs_ : 0.0;
  if (idx + 1 < mwi_produced_)
    return (mwi_at(idx + 1) - mwi_at(idx - 1)) * fs_ * 0.5;
  return (mwi_at(idx) - mwi_at(idx - 1)) * fs_;
}

double OnlinePanTompkins::peak_slope(std::size_t idx) const {
  const std::size_t oldest = mwi_produced_ - mwi_ring_.size();
  std::size_t lo = idx > mwi_win_ ? idx - mwi_win_ : 0;
  if (lo < oldest + 1) lo = oldest + 1 > idx ? idx : oldest + 1;
  double best = 0.0;
  for (std::size_t i = lo; i <= idx && i < mwi_produced_; ++i)
    best = std::max(best, std::abs(slope_at(i)));
  return best;
}

void OnlinePanTompkins::finish(std::vector<std::size_t>& out) {
  // Flush the band-pass stage, then the derivative tail with the batch
  // edge fallbacks, then settle learning and the pending candidate.
  bp_scratch_.clear();
  bp_.finish(bp_scratch_);
  for (const dsp::Sample v : bp_scratch_) on_bp_sample(v, out);

  const std::size_t n = bp_count_;
  auto h = [&](std::size_t i) { return bp_hist_[i % 5]; };
  for (std::size_t i = d_emitted_; i < n; ++i) {
    double d = 0.0;
    if (n == 1) {
      d = 0.0;
    } else if (i == 0) {
      d = (h(1) - h(0)) * fs_;
    } else if (i + 1 < n) {
      d = (h(i + 1) - h(i - 1)) * fs_ * 0.5;
    } else {
      d = (h(n - 1) - h(n - 2)) * fs_;
    }
    on_feature_sample(mwi_.tick(d * d), out);
    ++d_emitted_;
  }

  if (!learned_) learn_thresholds();
  for (const std::size_t idx : prelearn_) process_candidate(idx, out);
  prelearn_.clear();
  if (pending_.has_value()) {
    process_candidate(*pending_, out);
    pending_.reset();
  }
}

void OnlinePanTompkins::reset() {
  bp_.reset();
  mwi_.reset();
  bp_scratch_.clear();
  std::fill(std::begin(bp_hist_), std::end(bp_hist_), 0.0);
  bp_count_ = 0;
  d_emitted_ = 0;
  mwi_ring_.clear();
  mwi_produced_ = 0;
  in_ring_.clear();
  in_count_ = 0;
  pending_.reset();
  learned_ = false;
  prelearn_.clear();
  spki_ = npki_ = 0.0;
  last_accepted_.reset();
  last_accepted_slope_ = 0.0;
  rr_history_.clear();
  rejected_since_.clear();
  last_r_.reset();
  peaks_emitted_ = 0;
}

// ---------------------------------------------------------------------------
// Batch wrapper
// ---------------------------------------------------------------------------

PanTompkins::PanTompkins(dsp::SampleRate fs, const PanTompkinsConfig& cfg)
    : fs_(fs), cfg_(cfg) {
  if (fs <= 0.0) throw std::invalid_argument("PanTompkins: fs must be positive");
  if (cfg.bandpass_low_hz >= cfg.bandpass_high_hz)
    throw std::invalid_argument("PanTompkins: band-pass edges inverted");
}

dsp::Signal PanTompkins::feature_signal(dsp::SignalView ecg) const {
  const dsp::SosFilter bp =
      dsp::butterworth_bandpass(2, cfg_.bandpass_low_hz, cfg_.bandpass_high_hz, fs_);
  dsp::Signal y = dsp::filtfilt_sos(bp, ecg);
  y = dsp::five_point_derivative(y, fs_);
  for (auto& v : y) v *= v;
  const std::size_t win =
      std::max<std::size_t>(1, static_cast<std::size_t>(cfg_.integration_window_s * fs_));
  return dsp::moving_window_integrate(y, win);
}

QrsDetection PanTompkins::detect(dsp::SignalView ecg) const {
  QrsDetection det;
  if (ecg.size() < static_cast<std::size_t>(fs_)) return det; // need >= 1 s

  OnlinePanTompkins online(fs_, cfg_);
  online.push_chunk(ecg, det.r_samples);
  online.finish(det.r_samples);

  for (std::size_t i = 1; i < det.r_samples.size(); ++i)
    det.rr_intervals_s.push_back(
        static_cast<double>(det.r_samples[i] - det.r_samples[i - 1]) / fs_);
  return det;
}

std::vector<double> r_peak_times(const QrsDetection& det, dsp::SampleRate fs) {
  std::vector<double> t;
  t.reserve(det.r_samples.size());
  for (const std::size_t s : det.r_samples) t.push_back(static_cast<double>(s) / fs);
  return t;
}

} // namespace icgkit::ecg
