#include "ecg/pan_tompkins.h"

#include "dsp/butterworth.h"
#include "dsp/derivative.h"
#include "dsp/filtfilt.h"
#include "dsp/moving.h"

#include <algorithm>
#include <stdexcept>

#include "support/contract.h"

namespace icgkit::ecg {

namespace {
// Truncation tolerance for the band-pass zero-phase kernel: tight enough
// that detection decisions match the batch filtfilt feature signal.
constexpr double kBpKernelTol = 1e-5;
} // namespace

dsp::FirCoefficients pan_tompkins_bandpass_kernel(dsp::SampleRate fs,
                                                  const PanTompkinsConfig& cfg) {
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("PanTompkins: fs must be positive"));
  if (cfg.bandpass_low_hz >= cfg.bandpass_high_hz)
    ICGKIT_THROW(std::invalid_argument("PanTompkins: band-pass edges inverted"));
  return dsp::zero_phase_sos_kernel(
      dsp::butterworth_bandpass(2, cfg.bandpass_low_hz, cfg.bandpass_high_hz, fs),
      kBpKernelTol);
}

// ---------------------------------------------------------------------------
// Batch wrapper
// ---------------------------------------------------------------------------

PanTompkins::PanTompkins(dsp::SampleRate fs, const PanTompkinsConfig& cfg)
    : fs_(fs), cfg_(cfg) {
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("PanTompkins: fs must be positive"));
  if (cfg.bandpass_low_hz >= cfg.bandpass_high_hz)
    ICGKIT_THROW(std::invalid_argument("PanTompkins: band-pass edges inverted"));
}

dsp::Signal PanTompkins::feature_signal(dsp::SignalView ecg) const {
  const dsp::SosFilter bp =
      dsp::butterworth_bandpass(2, cfg_.bandpass_low_hz, cfg_.bandpass_high_hz, fs_);
  dsp::Signal y = dsp::filtfilt_sos(bp, ecg);
  y = dsp::five_point_derivative(y, fs_);
  for (auto& v : y) v *= v;
  const std::size_t win =
      std::max<std::size_t>(1, static_cast<std::size_t>(cfg_.integration_window_s * fs_));
  return dsp::moving_window_integrate(y, win);
}

QrsDetection PanTompkins::detect(dsp::SignalView ecg) const {
  QrsDetection det;
  if (ecg.size() < static_cast<std::size_t>(fs_)) return det; // need >= 1 s

  OnlinePanTompkins online(fs_, cfg_);
  online.push_chunk(ecg, det.r_samples);
  online.finish(det.r_samples);

  for (std::size_t i = 1; i < det.r_samples.size(); ++i)
    det.rr_intervals_s.push_back(
        static_cast<double>(det.r_samples[i] - det.r_samples[i - 1]) / fs_);
  return det;
}

std::vector<double> r_peak_times(const QrsDetection& det, dsp::SampleRate fs) {
  std::vector<double> t;
  t.reserve(det.r_samples.size());
  for (const std::size_t s : det.r_samples) t.push_back(static_cast<double>(s) / fs);
  return t;
}

} // namespace icgkit::ecg
