// Heart-rate statistics from RR intervals. HR is one of the four
// quantities the device streams over the radio (Z0, LVET, PEP, HR --
// Section V of the paper).
#pragma once

#include "dsp/types.h"

#include <vector>

namespace icgkit::ecg {

struct HeartRateStats {
  double mean_bpm = 0.0;
  double median_bpm = 0.0;
  double sdnn_ms = 0.0;   ///< standard deviation of NN (RR) intervals
  double rmssd_ms = 0.0;  ///< root-mean-square of successive differences
  std::size_t beat_count = 0;
};

/// Summary statistics over an RR series. RR intervals outside
/// [min_rr_s, max_rr_s] are treated as detection artifacts and excluded.
HeartRateStats heart_rate_stats(const std::vector<double>& rr_intervals_s,
                                double min_rr_s = 0.3, double max_rr_s = 2.0);

/// Instantaneous beat-to-beat HR series (bpm), same filtering rule.
std::vector<double> instantaneous_hr(const std::vector<double>& rr_intervals_s,
                                     double min_rr_s = 0.3, double max_rr_s = 2.0);

} // namespace icgkit::ecg
