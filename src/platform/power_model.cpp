#include "platform/power_model.h"

#include <stdexcept>

namespace icgkit::platform {

namespace {
void check_fraction(double v, const char* what) {
  if (v < 0.0 || v > 1.0) throw std::invalid_argument(std::string("PowerModel: ") + what);
}
} // namespace

PowerModel::PowerModel(DutyCycleProfile profile) : profile_(profile) {
  check_fraction(profile.mcu_active, "mcu_active must be in [0,1]");
  check_fraction(profile.radio_tx, "radio_tx must be in [0,1]");
  check_fraction(profile.motion_sensors, "motion_sensors must be in [0,1]");
}

double PowerModel::component_average_ma(Component c) const {
  const double i = component_current_ma(c);
  switch (c) {
    case Component::EcgChip: return profile_.ecg_on ? i : 0.0;
    case Component::IcgChip: return profile_.icg_on ? i : 0.0;
    case Component::McuActive: return profile_.mcu_active * i;
    case Component::McuStandby: return (1.0 - profile_.mcu_active) * i;
    case Component::RadioTx: return profile_.radio_tx * i;
    case Component::RadioStandby: return (1.0 - profile_.radio_tx) * i;
    case Component::MotionSensors: return profile_.motion_sensors * i;
  }
  return 0.0;
}

double PowerModel::average_current_ma() const {
  double total = 0.0;
  for (const Component c : kAllComponents) total += component_average_ma(c);
  return total;
}

double PowerModel::battery_life_hours(double battery_mah) const {
  if (battery_mah <= 0.0) throw std::invalid_argument("PowerModel: battery_mah must be > 0");
  const double i = average_current_ma();
  if (i <= 0.0) throw std::logic_error("PowerModel: zero average current");
  return battery_mah / i;
}

} // namespace icgkit::platform
