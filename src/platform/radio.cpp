#include "platform/radio.h"

#include <cmath>
#include <stdexcept>

namespace icgkit::platform {

BleRadio::BleRadio(const BleConfig& cfg) : cfg_(cfg) {
  if (cfg.bitrate_bps <= 0.0) throw std::invalid_argument("BleRadio: bitrate must be > 0");
  if (cfg.payload_bytes == 0) throw std::invalid_argument("BleRadio: payload must be > 0");
}

double BleRadio::airtime_s(std::size_t bytes) const {
  if (bytes == 0) return 0.0;
  const std::size_t packets = (bytes + cfg_.payload_bytes - 1) / cfg_.payload_bytes;
  const std::size_t on_air_bytes = bytes + packets * cfg_.overhead_bytes;
  return static_cast<double>(on_air_bytes) * 8.0 / cfg_.bitrate_bps +
         static_cast<double>(packets) * cfg_.connection_overhead_s;
}

double BleRadio::duty_cycle(std::size_t bytes_per_report, double interval_s) const {
  if (interval_s <= 0.0) throw std::invalid_argument("BleRadio: interval must be > 0");
  return std::min(1.0, airtime_s(bytes_per_report) / interval_s);
}

double BleRadio::beat_report_duty_cycle(double hr_bpm, std::size_t bytes_per_value) const {
  if (hr_bpm <= 0.0) throw std::invalid_argument("BleRadio: hr must be > 0");
  const double beat_interval_s = 60.0 / hr_bpm;
  return duty_cycle(4 * bytes_per_value, beat_interval_s); // Z0, LVET, PEP, HR
}

double BleRadio::raw_streaming_duty_cycle(double fs_hz) const {
  if (fs_hz <= 0.0) throw std::invalid_argument("BleRadio: fs must be > 0");
  const double bytes_per_s = fs_hz * 2.0 * 2.0; // 2 channels x 16-bit
  return std::min(1.0, airtime_s(static_cast<std::size_t>(bytes_per_s)) / 1.0);
}

} // namespace icgkit::platform
