#include "platform/adc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace icgkit::platform {

double AdcConfig::lsb() const {
  return (full_scale_max - full_scale_min) / static_cast<double>(std::int64_t{1} << bits);
}

Adc::Adc(const AdcConfig& cfg) : cfg_(cfg) {
  if (cfg.bits < 2 || cfg.bits > 24) throw std::invalid_argument("Adc: bits in [2,24]");
  if (!(cfg.full_scale_min < cfg.full_scale_max))
    throw std::invalid_argument("Adc: full-scale range inverted");
}

std::int64_t Adc::quantize(double v) const {
  const double clipped = std::clamp(v, cfg_.full_scale_min, cfg_.full_scale_max);
  const double code = std::floor((clipped - cfg_.full_scale_min) / cfg_.lsb());
  return std::clamp(static_cast<std::int64_t>(code), cfg_.code_min(), cfg_.code_max());
}

double Adc::reconstruct(std::int64_t code) const {
  const std::int64_t c = std::clamp(code, cfg_.code_min(), cfg_.code_max());
  return cfg_.full_scale_min + (static_cast<double>(c) + 0.5) * cfg_.lsb();
}

dsp::Signal Adc::digitize(dsp::SignalView x) const {
  dsp::Signal y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = reconstruct(quantize(x[i]));
  return y;
}

double Adc::ideal_snr_db() const { return 6.02 * static_cast<double>(cfg_.bits) + 1.76; }

} // namespace icgkit::platform
