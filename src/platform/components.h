// Hardware component catalogue of the touch device (Table I of the
// paper) and the power-state abstraction used by the duty-cycle model.
//
// Average current per component, as measured by the authors:
//   ECG chip (ADS1291)            0.400 mA
//   ICG chip (proprietary)        0.900 mA
//   STM32L151 active             10.500 mA
//   STM32L151 standby             0.020 mA
//   Radio TX (nRF8001)           11.000 mA
//   Radio standby                 0.002 mA
//   Gyroscope + accelerometer     3.800 mA
#pragma once

#include <array>
#include <string_view>

namespace icgkit::platform {

enum class Component {
  EcgChip,
  IcgChip,
  McuActive,
  McuStandby,
  RadioTx,
  RadioStandby,
  MotionSensors, // gyroscope + accelerometer
};

inline constexpr std::size_t kComponentCount = 7;

/// Average current draw in mA (Table I).
double component_current_ma(Component c);

std::string_view component_name(Component c);

inline constexpr std::array<Component, kComponentCount> kAllComponents = {
    Component::EcgChip,    Component::IcgChip,      Component::McuActive,
    Component::McuStandby, Component::RadioTx,      Component::RadioStandby,
    Component::MotionSensors,
};

} // namespace icgkit::platform
