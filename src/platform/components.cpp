#include "platform/components.h"

namespace icgkit::platform {

double component_current_ma(Component c) {
  switch (c) {
    case Component::EcgChip: return 0.400;
    case Component::IcgChip: return 0.900;
    case Component::McuActive: return 10.500;
    case Component::McuStandby: return 0.020;
    case Component::RadioTx: return 11.000;
    case Component::RadioStandby: return 0.002;
    case Component::MotionSensors: return 3.800;
  }
  return 0.0; // unreachable for valid enum values
}

std::string_view component_name(Component c) {
  switch (c) {
    case Component::EcgChip: return "ECG chip";
    case Component::IcgChip: return "ICG chip";
    case Component::McuActive: return "STM32L151 (active)";
    case Component::McuStandby: return "STM32L151 (standby)";
    case Component::RadioTx: return "Radio (TX)";
    case Component::RadioStandby: return "Radio (standby)";
    case Component::MotionSensors: return "Gyroscope + Accelerometer";
  }
  return "?";
}

} // namespace icgkit::platform
