// Cycle-budget model of the STM32L151 running the beat-to-beat pipeline.
//
// Section V: "we need just between 40 % and 50 % of the duty cycle of the
// CPU power in the STM32 micro-controller". This model reproduces that
// estimate analytically: each pipeline stage's per-sample (or per-beat)
// arithmetic cost is counted in multiply-accumulate operations, converted
// to cycles with a Cortex-M3 cost factor, and divided by the clock rate.
#pragma once

#include "core/pipeline.h"

#include <cstddef>
#include <string>
#include <vector>

namespace icgkit::platform {

struct McuConfig {
  double clock_hz = 32e6;          ///< STM32L151 maximum clock
  /// The Cortex-M3 has no FPU; a double-precision multiply-add in
  /// software costs on the order of 70 cycles. (With fixed-point
  /// arithmetic this would drop to ~4; see bench_cpu_duty_cycle.)
  double cycles_per_mac = 70.0;
  double cycles_per_compare = 3.0; ///< branches/compares in peak logic

  // Acquisition front-end: the ADC runs faster than the processing rate
  // (Section III-A: 125 Hz - 16 kHz) and the MCU decimates to fs. These
  // terms dominate the duty cycle at high acquisition rates.
  double acquisition_fs_hz = 2000.0;
  std::size_t channels = 2;            ///< ECG + ICG
  std::size_t decimator_taps = 32;     ///< polyphase anti-alias FIR
  double isr_cycles_per_sample = 300.0;///< ADC ISR + buffering overhead

  /// The same MCU with the pipeline compiled for Q31 fixed point (the
  /// arithmetic dsp::Q31Backend reproduces): a MAC is a single-cycle MLA
  /// plus shift/saturate overhead, ~4 cycles. Acquisition-side costs are
  /// arithmetic-independent and stay as configured.
  [[nodiscard]] static McuConfig q31() {
    McuConfig cfg;
    cfg.cycles_per_mac = 4.0;
    return cfg;
  }
};

/// Arithmetic cost of one pipeline configuration at a sampling rate.
struct StageCost {
  std::string stage;
  double macs_per_second = 0.0;
  double compares_per_second = 0.0;
};

struct CpuLoadReport {
  std::vector<StageCost> stages;
  double total_macs_per_second = 0.0;
  double total_cycles_per_second = 0.0;
  double duty_cycle = 0.0; ///< fraction of the MCU clock consumed
};

/// Analytic per-stage cost of the paper's pipeline at sampling rate fs
/// and heart rate hr. Costs follow the filter orders and window sizes in
/// `cfg` (see the .cpp for the per-stage formulas).
CpuLoadReport estimate_cpu_load(const core::PipelineConfig& cfg, double fs_hz,
                                double hr_bpm, const McuConfig& mcu = {});

} // namespace icgkit::platform
