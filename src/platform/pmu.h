// Power Management Unit policy (Section III-A): "dynamically tunes the
// system to achieve the best trade-off between energy consumption and
// performance, taking into account the available energy in the battery
// and requirements (accuracy, latency, etc.) of the target application."
//
// The policy chooses an operating point (sampling rate, beat-report rate,
// motion sensing) given the battery state and a required remaining
// runtime; `operating_points()` exposes the whole trade-off curve for the
// ablation bench.
#pragma once

#include "platform/mcu.h"
#include "platform/power_model.h"
#include "platform/radio.h"

#include <string>
#include <vector>

namespace icgkit::platform {

struct OperatingPoint {
  std::string name;
  double fs_hz = 250.0;            ///< processing sampling rate
  double report_interval_s = 1.0;  ///< how often beat results are sent
  bool motion_sensing = false;     ///< IMU on (position discrimination)
  double quality_score = 1.0;      ///< relative parameter-estimation quality

  DutyCycleProfile duty_profile(double hr_bpm) const;
};

/// The device's selectable operating points, highest quality first.
std::vector<OperatingPoint> standard_operating_points();

struct PmuDecision {
  OperatingPoint point;
  double projected_runtime_h = 0.0;
  bool meets_requirement = false;
};

class Pmu {
 public:
  explicit Pmu(double battery_capacity_mah = kPaperBatteryMah);

  /// Picks the highest-quality operating point whose projected runtime
  /// (at the given battery charge fraction) covers `required_runtime_h`.
  /// Falls back to the most frugal point when none qualifies.
  [[nodiscard]] PmuDecision choose(double battery_fraction, double required_runtime_h,
                                   double hr_bpm = 70.0) const;

  /// Projected runtime of one operating point at a battery fraction.
  [[nodiscard]] double projected_runtime_h(const OperatingPoint& p, double battery_fraction,
                                           double hr_bpm = 70.0) const;

 private:
  double capacity_mah_;
};

} // namespace icgkit::platform
