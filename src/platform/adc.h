// ADC quantization model (Section III-A: sampling 125 Hz - 16 kHz, up to
// 16-bit resolution; the STM32L151's own ADC is 12-bit).
//
// Used to verify that the processing chain's accuracy survives the
// device's quantization, and by the PMU trade-off study (resolution and
// rate vs. power).
#pragma once

#include "dsp/types.h"

#include <cstdint>

namespace icgkit::platform {

struct AdcConfig {
  unsigned bits = 12;         ///< 2..24
  double full_scale_min = -2.5;
  double full_scale_max = 2.5;

  [[nodiscard]] double lsb() const;
  [[nodiscard]] std::int64_t code_min() const { return 0; }
  [[nodiscard]] std::int64_t code_max() const {
    return (std::int64_t{1} << bits) - 1;
  }
};

class Adc {
 public:
  explicit Adc(const AdcConfig& cfg = {});

  /// Quantizes one sample to an output code (clipped to the range).
  [[nodiscard]] std::int64_t quantize(double v) const;

  /// Reconstructs the analog value at a code's center.
  [[nodiscard]] double reconstruct(std::int64_t code) const;

  /// Round-trip: quantize then reconstruct a whole signal.
  [[nodiscard]] dsp::Signal digitize(dsp::SignalView x) const;

  /// Theoretical full-scale SNR of an ideal N-bit quantizer (dB):
  /// 6.02 N + 1.76.
  [[nodiscard]] double ideal_snr_db() const;

  [[nodiscard]] const AdcConfig& config() const { return cfg_; }

 private:
  AdcConfig cfg_;
};

} // namespace icgkit::platform
