#include "platform/mcu.h"

#include <stdexcept>

namespace icgkit::platform {

CpuLoadReport estimate_cpu_load(const core::PipelineConfig& cfg, double fs_hz,
                                double hr_bpm, const McuConfig& mcu) {
  if (fs_hz <= 0.0 || hr_bpm <= 0.0 || mcu.clock_hz <= 0.0)
    throw std::invalid_argument("estimate_cpu_load: rates must be positive");

  CpuLoadReport report;
  const double beats_per_s = hr_bpm / 60.0;
  auto add = [&](std::string name, double macs, double compares) {
    report.stages.push_back({std::move(name), macs, compares});
  };

  // Acquisition + decimation: ISR per raw sample per channel, and a
  // polyphase FIR whose arithmetic runs at the *output* rate (each output
  // sample needs `taps` MACs regardless of the decimation factor).
  const double ch = static_cast<double>(mcu.channels);
  add("acquisition ISR", 0.0,
      mcu.acquisition_fs_hz * ch * mcu.isr_cycles_per_sample / mcu.cycles_per_compare);
  add("decimation FIR", static_cast<double>(mcu.decimator_taps) * fs_hz * ch, 0.0);

  // ECG chain. Morphology: monotonic-deque sliding min/max, 4 passes
  // (open = erode+dilate, close = dilate+erode), ~2 comparisons per
  // sample per pass. FIR band-pass: (order+1) MACs per sample per pass,
  // 2 passes for zero phase.
  add("ECG morphology", 0.0, fs_hz * 4.0 * 2.0);
  add("ECG FIR band-pass",
      static_cast<double>(cfg.ecg_filter.fir_order + 1) * 2.0 * fs_hz, 0.0);

  // Pan-Tompkins: band-pass (2x biquad cascade, 5 MACs each), 5-point
  // derivative, squaring, moving-window integration, threshold logic.
  add("Pan-Tompkins", (2.0 * 5.0 * 2.0 + 5.0 + 1.0 + 2.0) * fs_hz, 6.0 * fs_hz);

  // ICG chain: derivative + Butterworth low-pass (order/2 biquads, 5 MACs,
  // 2 passes) + per-beat linear detrend.
  const double icg_biquads = static_cast<double>((cfg.icg_filter.order + 1) / 2);
  add("ICG filter", (2.0 + icg_biquads * 5.0 * 2.0) * fs_hz + 3.0 * fs_hz, 0.0);

  // Delineation: derivative triple over ~half a beat window, window scans
  // and the line fit; executed once per beat.
  const double beat_window = 0.5 * fs_hz; // samples examined per beat
  add("delineation", (3.0 * 2.0 * beat_window + 40.0) * beats_per_s,
      3.0 * beat_window * beats_per_s);

  // Hemodynamics + quality + report assembly: constant small cost per beat.
  add("hemodynamics", 60.0 * beats_per_s, 20.0 * beats_per_s);

  double cycles = 0.0;
  for (const StageCost& s : report.stages) {
    report.total_macs_per_second += s.macs_per_second;
    cycles += s.macs_per_second * mcu.cycles_per_mac +
              s.compares_per_second * mcu.cycles_per_compare;
  }
  report.total_cycles_per_second = cycles;
  report.duty_cycle = cycles / mcu.clock_hz;
  return report;
}

} // namespace icgkit::platform
