#include "platform/pmu.h"

#include "core/pipeline.h"

#include <stdexcept>

namespace icgkit::platform {

DutyCycleProfile OperatingPoint::duty_profile(double hr_bpm) const {
  DutyCycleProfile duty;
  // MCU duty from the cycle-budget model at this operating point.
  McuConfig mcu;
  mcu.acquisition_fs_hz = std::max(fs_hz * 4.0, 1000.0);
  const CpuLoadReport load = estimate_cpu_load(core::PipelineConfig{}, fs_hz, hr_bpm, mcu);
  duty.mcu_active = std::min(1.0, load.duty_cycle);

  // Radio duty: one 16-byte beat report per report interval.
  const BleRadio radio;
  duty.radio_tx = radio.duty_cycle(16, report_interval_s);
  duty.motion_sensors = motion_sensing ? 1.0 : 0.0;
  return duty;
}

std::vector<OperatingPoint> standard_operating_points() {
  return {
      {"full-monitoring", 500.0, 60.0 / 70.0, true, 1.00},
      {"continuous", 250.0, 60.0 / 70.0, false, 0.97},
      {"relaxed-reporting", 250.0, 10.0, false, 0.95},
      {"low-rate", 125.0, 10.0, false, 0.85},
      {"survival", 125.0, 60.0, false, 0.75},
  };
}

Pmu::Pmu(double battery_capacity_mah) : capacity_mah_(battery_capacity_mah) {
  if (battery_capacity_mah <= 0.0) throw std::invalid_argument("Pmu: capacity must be > 0");
}

double Pmu::projected_runtime_h(const OperatingPoint& p, double battery_fraction,
                                double hr_bpm) const {
  if (battery_fraction < 0.0 || battery_fraction > 1.0)
    throw std::invalid_argument("Pmu: battery fraction in [0,1]");
  const PowerModel model(p.duty_profile(hr_bpm));
  return model.battery_life_hours(capacity_mah_ * battery_fraction);
}

PmuDecision Pmu::choose(double battery_fraction, double required_runtime_h,
                        double hr_bpm) const {
  const auto points = standard_operating_points();
  PmuDecision best;
  for (const OperatingPoint& p : points) { // highest quality first
    const double runtime = projected_runtime_h(p, battery_fraction, hr_bpm);
    if (runtime >= required_runtime_h) {
      best.point = p;
      best.projected_runtime_h = runtime;
      best.meets_requirement = true;
      return best;
    }
  }
  best.point = points.back();
  best.projected_runtime_h = projected_runtime_h(best.point, battery_fraction, hr_bpm);
  best.meets_requirement = false;
  return best;
}

} // namespace icgkit::platform
