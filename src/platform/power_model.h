// Duty-cycle power model and battery-life estimation (Section V /
// conclusions of the paper).
//
// The paper's headline: with the MCU active 40-50 % of the time and the
// radio transmitting <= 1 % (only the per-beat results Z0/LVET/PEP/HR are
// sent, not raw samples), a 710 mAh battery lasts 106 hours (> 4 days).
// That number reproduces exactly from Table I with the motion sensors
// power-gated off during continuous monitoring:
//   0.400 + 0.900 + 0.5*10.5 + 0.5*0.020 + 0.01*11.0 + 0.99*0.002
//   = 6.672 mA  ->  710 mAh / 6.672 mA = 106.4 h.
#pragma once

#include "platform/components.h"

namespace icgkit::platform {

struct DutyCycleProfile {
  double mcu_active = 0.50;     ///< fraction of time the MCU is awake
  double radio_tx = 0.01;       ///< fraction of time the radio transmits
  double motion_sensors = 0.0;  ///< fraction of time the IMU is powered
  bool ecg_on = true;
  bool icg_on = true;
};

class PowerModel {
 public:
  explicit PowerModel(DutyCycleProfile profile = {});

  /// System average current in mA under the duty-cycle profile.
  [[nodiscard]] double average_current_ma() const;

  /// Battery life in hours for the given capacity.
  [[nodiscard]] double battery_life_hours(double battery_mah) const;

  /// Contribution of one component to the average current (mA),
  /// duty-cycle weighted.
  [[nodiscard]] double component_average_ma(Component c) const;

  [[nodiscard]] const DutyCycleProfile& profile() const { return profile_; }

 private:
  DutyCycleProfile profile_;
};

/// The paper's battery configuration.
inline constexpr double kPaperBatteryMah = 710.0;

} // namespace icgkit::platform
