// Bluetooth Low Energy airtime model for the nRF8001 radio.
//
// The firmware streams per-beat results (Z0, LVET, PEP, HR -- Section V),
// not raw samples, which is why the radio duty cycle stays near 0.1 %.
// This model turns a reporting policy into a TX duty cycle that feeds the
// PowerModel, and quantifies the alternative (raw streaming) that the
// paper's design deliberately avoids.
#pragma once

#include <cstddef>

namespace icgkit::platform {

struct BleConfig {
  double bitrate_bps = 1e6;        ///< BLE 4.x PHY
  std::size_t payload_bytes = 20;  ///< usable payload per packet (ATT default)
  std::size_t overhead_bytes = 17; ///< preamble+addr+header+CRC+IFS equivalent
  double connection_overhead_s = 0.0005; ///< per-event radio on-time overhead
};

class BleRadio {
 public:
  explicit BleRadio(const BleConfig& cfg = {});

  /// Airtime to move `bytes` of application payload (s), including
  /// per-packet overhead and connection-event overhead.
  [[nodiscard]] double airtime_s(std::size_t bytes) const;

  /// TX duty cycle for sending `bytes_per_report` every `interval_s`.
  [[nodiscard]] double duty_cycle(std::size_t bytes_per_report, double interval_s) const;

  /// Duty cycle for the paper's policy: one beat report (4 values,
  /// `bytes_per_value` each) per heart beat at the given heart rate.
  [[nodiscard]] double beat_report_duty_cycle(double hr_bpm,
                                              std::size_t bytes_per_value = 4) const;

  /// Duty cycle for streaming raw samples (2 channels x 2 bytes) at fs --
  /// the design the paper avoids.
  [[nodiscard]] double raw_streaming_duty_cycle(double fs_hz) const;

  [[nodiscard]] const BleConfig& config() const { return cfg_; }

 private:
  BleConfig cfg_;
};

} // namespace icgkit::platform
