// Fixed-width console tables and CSV output used by the reproduction
// benches and examples. Deliberately tiny: rows of strings plus numeric
// convenience setters.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace icgkit::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_* calls fill it left to right.
  Table& row();
  Table& add(std::string cell);
  Table& add(double value, int precision = 4);
  Table& add(long long value);

  /// Renders with column-width autosizing, a header underline and 2-space
  /// column gaps.
  void print(std::ostream& os) const;

  /// Comma-separated (no quoting — cells must not contain commas).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const { return headers_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner: "== title ==" with surrounding blank lines.
void banner(std::ostream& os, const std::string& title);

} // namespace icgkit::report
