#include "report/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace icgkit::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  if (rows_.empty()) row();
  if (rows_.back().size() >= headers_.size())
    throw std::logic_error("Table: row has more cells than headers");
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return add(ss.str());
}

Table& Table::add(long long value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = (c < cells.size()) ? cells[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      if (c + 1 < headers_.size()) os << "  ";
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w;
  total += 2 * (headers_.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

void banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

} // namespace icgkit::report
