#include "support/contract.h"

#if defined(ICGKIT_NO_EXCEPTIONS)

#include <cstdio>
#include <cstdlib>

namespace icgkit {

[[noreturn]] void contract_panic(const char* what) noexcept {
  // stderr is available on the hosted CI build of the firmware profile;
  // a real MCU port would route this to its fault handler instead.
  std::fputs("icgkit: fatal contract violation: ", stderr);
  std::fputs(what != nullptr ? what : "(null)", stderr);
  std::fputc('\n', stderr);
  std::abort();
}

} // namespace icgkit

#else

// The hosted build raises exceptions instead; this translation unit is
// intentionally empty there (kept so the source list is profile-agnostic).

#endif
