// Error-raising contract shared by every layer that can be compiled
// into the embedded (firmware-profile) build.
//
// The hosted build raises contract violations as C++ exceptions, exactly
// as before: ICGKIT_THROW(std::invalid_argument("...")) is literally
// `throw std::invalid_argument("...")`, so nothing changes for C++
// consumers and the C ABI boundary (src/capi) can catch and map them to
// error codes.
//
// The firmware profile compiles the Q31 core with -fno-exceptions
// -fno-rtti (see ICGKIT_EMBEDDED_PROFILE in CMakeLists.txt), where the
// `throw` keyword itself is a compile error. Under ICGKIT_NO_EXCEPTIONS
// the macro evaluates the same exception object (its constructor is
// plain code) and hands its what() string to icgkit::contract_panic(),
// which reports and aborts. On an MCU a contract violation is a
// programming error with no one to catch it — fail loudly at the fault,
// not later from scribbled state. The C ABI keeps its error-code
// contract either way: every *checked* failure path (bad arguments,
// corrupt checkpoint frames validated before loading, oversized chunks)
// is diagnosed by the boundary before reaching a raising core path, so
// panic is reserved for genuine invariant breakage.
//
// Only the layers the embedded library compiles (dsp, ecg, the
// streaming-core files, capi) must use ICGKIT_THROW; host-only layers
// (fleet, synth, platform, report) may keep plain `throw`.
#pragma once

#if defined(ICGKIT_NO_EXCEPTIONS)

namespace icgkit {
/// Reports `what` and aborts. Never returns.
[[noreturn]] void contract_panic(const char* what) noexcept;
} // namespace icgkit

#define ICGKIT_THROW(exception_object) \
  ::icgkit::contract_panic((exception_object).what())

#else

#define ICGKIT_THROW(exception_object) throw(exception_object)

#endif
