// Per-beat quality gating. The device is used unsupervised at the point
// of care (Section I of the paper), so every beat is screened against
// physiological plausibility before its parameters are reported.
#pragma once

#include "core/delineator.h"
#include "dsp/types.h"

#include <cstdint>
#include <string>

namespace icgkit::core {

/// Reasons a beat can be rejected (bitmask).
enum class BeatFlaw : std::uint32_t {
  None = 0,
  InvalidDelineation = 1u << 0,
  PepOutOfRange = 1u << 1,      ///< outside [40, 200] ms
  LvetOutOfRange = 1u << 2,     ///< outside [150, 500] ms
  AmplitudeOutOfRange = 1u << 3,///< (dZ/dt)max implausible
  RrOutOfRange = 1u << 4,       ///< outside [0.3, 2.0] s
};

constexpr BeatFlaw operator|(BeatFlaw a, BeatFlaw b) {
  return static_cast<BeatFlaw>(static_cast<std::uint32_t>(a) | static_cast<std::uint32_t>(b));
}
constexpr bool has_flaw(BeatFlaw set, BeatFlaw f) {
  return (static_cast<std::uint32_t>(set) & static_cast<std::uint32_t>(f)) != 0;
}

struct QualityConfig {
  double min_pep_s = 0.040;
  double max_pep_s = 0.200;
  double min_lvet_s = 0.150;
  double max_lvet_s = 0.500;
  double min_dzdt = 0.1;  ///< Ohm/s
  double max_dzdt = 10.0;
  double min_rr_s = 0.3;
  double max_rr_s = 2.0;
};

/// Screens one delineated beat. BeatFlaw::None means the beat is usable.
BeatFlaw assess_beat(const BeatDelineation& beat, double rr_s, dsp::SampleRate fs,
                     const QualityConfig& cfg = {});

/// Human-readable rendering of a flaw set ("pep-range|rr-range" etc.).
std::string describe_flaws(BeatFlaw flaws);

} // namespace icgkit::core
