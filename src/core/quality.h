// Per-beat quality gating. The device is used unsupervised at the point
// of care (Section I of the paper), so every beat is screened against
// physiological plausibility before its parameters are reported — and,
// since PR 4, against signal integrity: per-beat SNR, saturation and
// flatline detectors catch the contact artifacts the scenario engine
// (synth/scenario.h) injects, and a per-session QualitySummary aggregates
// the verdicts for monitoring surfaces (fleet results, dashboards).
#pragma once

#include "core/delineator.h"
#include "dsp/types.h"

#include <cstdint>
#include <string>

namespace icgkit::core {

/// Reasons a beat can be rejected (bitmask).
enum class BeatFlaw : std::uint32_t {
  None = 0,
  InvalidDelineation = 1u << 0,
  PepOutOfRange = 1u << 1,      ///< outside [40, 200] ms
  LvetOutOfRange = 1u << 2,     ///< outside [150, 500] ms
  AmplitudeOutOfRange = 1u << 3,///< (dZ/dt)max implausible
  RrOutOfRange = 1u << 4,       ///< outside [0.3, 2.0] s
  LowSnr = 1u << 5,             ///< ICG peak vs diastolic floor below min_snr_db
  Saturated = 1u << 6,          ///< raw samples pinned at the acquisition rails
  Flatline = 1u << 7,           ///< raw samples frozen (contact gap / sample-and-hold)
};

/// Number of distinct flaw bits (size of QualitySummary::flaw_counts).
inline constexpr std::size_t kBeatFlawCount = 8;

constexpr BeatFlaw operator|(BeatFlaw a, BeatFlaw b) {
  return static_cast<BeatFlaw>(static_cast<std::uint32_t>(a) | static_cast<std::uint32_t>(b));
}
constexpr bool has_flaw(BeatFlaw set, BeatFlaw f) {
  return (static_cast<std::uint32_t>(set) & static_cast<std::uint32_t>(f)) != 0;
}

struct QualityConfig {
  double min_pep_s = 0.040;
  double max_pep_s = 0.200;
  double min_lvet_s = 0.150;
  double max_lvet_s = 0.500;
  double min_dzdt = 0.1;  ///< Ohm/s
  double max_dzdt = 10.0;
  double min_rr_s = 0.3;
  double max_rr_s = 2.0;

  // --- signal-integrity detectors (PR 4) -------------------------------
  /// Beat SNR floor: 20*log10(peak |ICG| / diastolic RMS) over the R-R
  /// window. Clean beats sit well above 10 dB (the diastolic floor is the
  /// O-wave recovery, ~1/10 of the C amplitude); in-band motion raises
  /// the floor toward the peak.
  double min_snr_db = 6.0;
  /// Beat rejected when more than this fraction of its raw samples sit at
  /// the acquisition rails (either channel).
  double max_saturation_fraction = 0.02;
  /// Beat rejected when more than this fraction of its raw samples are
  /// frozen (|sample-to-sample delta| under the flatline epsilon on
  /// either channel) — the signature of a sample-and-hold contact gap.
  double max_flatline_fraction = 0.25;
  /// |ECG delta| below this counts as frozen (well under any real
  /// channel's noise floor, well over Q31 quantization at 16 mV FS).
  double flatline_epsilon_mv = 1e-4;
  /// |Z delta| below this counts as frozen.
  double flatline_epsilon_ohm = 1e-5;
  /// A raw sample saturates when |value| >= margin * rail.
  double saturation_margin = 0.98;

  // --- dropout-aware recovery (StreamingBeatPipeline) ------------------
  /// Master switch for the quality-adaptive recovery: when an ECG
  /// contact gap closes, the QRS detector's adaptive thresholds are
  /// relearned from post-gap data; when an impedance gap closes, its
  /// span is quarantined and ensemble folds overlapping it are skipped
  /// (the template itself is kept), so a gap cannot poison either.
  bool enable_recovery = true;
  /// A per-channel flat run at least this long is a contact gap.
  double dropout_reset_s = 0.30;
};

/// Screens one delineated beat. BeatFlaw::None means the beat is usable.
BeatFlaw assess_beat(const BeatDelineation& beat, double rr_s, dsp::SampleRate fs,
                     const QualityConfig& cfg = {});

/// Per-beat signal-integrity metrics, measured by the streaming pipeline
/// over the beat's R-R window (raw-sample domain for saturation/flatline,
/// conditioned ICG for the SNR).
struct SignalQuality {
  double snr_db = 0.0;              ///< peak |ICG| vs diastolic RMS
  double saturation_fraction = 0.0; ///< raw samples at the rails
  double flatline_fraction = 0.0;   ///< raw samples frozen
};

/// Screens the signal-integrity metrics of one beat window.
BeatFlaw assess_signal(const SignalQuality& q, const QualityConfig& cfg = {});

/// Human-readable rendering of a flaw set ("pep-range|rr-range" etc.).
std::string describe_flaws(BeatFlaw flaws);

/// Per-session quality aggregate, accumulated beat by beat inside the
/// streaming pipeline and surfaced through the fleet's end-of-session
/// FleetBeat records. Plain counters only (trivially copyable): it rides
/// the fleet's by-value SPSC result queues without allocation.
struct QualitySummary {
  std::uint64_t beats = 0;   ///< beats emitted
  std::uint64_t usable = 0;  ///< beats with no flaw
  /// Per-flaw-bit counts, indexed by bit position (0 = InvalidDelineation
  /// ... 7 = Flatline); a beat with several flaws counts once per flaw.
  std::uint64_t flaw_counts[kBeatFlawCount] = {};
  std::uint64_t ecg_dropouts = 0;    ///< contact gaps detected on the ECG channel
  std::uint64_t z_dropouts = 0;      ///< contact gaps detected on the impedance channel
  std::uint64_t detector_resets = 0; ///< QRS threshold relearns triggered by recovery
  /// Ensemble folds skipped because the beat's segment overlapped a
  /// recorded impedance contact gap (template-poisoning protection).
  std::uint64_t ensemble_folds_skipped = 0;
  /// Beats whose SNR was actually measured (beats that scrolled out of
  /// the look-back window before delineation have no window to measure,
  /// and are excluded from the SNR statistics below).
  std::uint64_t snr_beats = 0;
  double sum_snr_db = 0.0; ///< for mean_snr_db(), over snr_beats
  double min_snr_db = 0.0; ///< worst measured beat SNR (0 until the first)

  /// Folds one emitted beat's verdict into the tallies. Pass
  /// `snr_measured = false` for beats whose window was unavailable so
  /// they do not drag the SNR statistics to zero.
  void tally(BeatFlaw flaws, const SignalQuality& q, bool snr_measured = true);
  /// Merges another summary (e.g. aggregating a whole fleet).
  void merge(const QualitySummary& other);

  [[nodiscard]] double usable_fraction() const {
    return beats > 0 ? static_cast<double>(usable) / static_cast<double>(beats) : 0.0;
  }
  [[nodiscard]] double mean_snr_db() const {
    return snr_beats > 0 ? sum_snr_db / static_cast<double>(snr_beats) : 0.0;
  }
};

/// One-line human-readable rendering of a QualitySummary.
std::string describe_summary(const QualitySummary& s);

} // namespace icgkit::core
