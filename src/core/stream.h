// Shared single-pass streaming infrastructure for the beat pipeline.
//
// Every stage consumes one sample per push() and appends zero or more
// *delay-compensated* output samples: output index i always corresponds
// to input index i, it is just emitted latency() samples later. finish()
// flushes the tail so a stream of n inputs always yields exactly n
// outputs. Because each stage's state advances one sample at a time, the
// composed pipeline is chunk-size invariant: any segmentation of the
// input produces bit-identical output, which is what lets
// BeatPipeline::process be a thin one-big-chunk wrapper around
// StreamingBeatPipeline (see pipeline.h).
#pragma once

#include "core/icg_filter.h"
#include "dsp/filtfilt.h"
#include "dsp/morphology.h"
#include "dsp/types.h"
#include "dsp/zero_phase_highpass.h"
#include "ecg/ecg_filter.h"

#include <cstddef>
#include <optional>

namespace icgkit::core {

/// Interface shared by the pipeline's streaming stages.
class StreamingStage {
 public:
  virtual ~StreamingStage() = default;

  /// Feeds one input sample; appends newly completed (delay-compensated)
  /// output samples to `out`.
  virtual void push(dsp::Sample x, dsp::Signal& out) = 0;
  /// End of stream: flushes the remaining latency() samples.
  virtual void finish(dsp::Signal& out) = 0;
  /// Returns the stage to its freshly constructed state.
  virtual void reset() = 0;
  /// Worst-case group delay in samples between input and aligned output.
  [[nodiscard]] virtual std::size_t latency() const = 0;
};

/// Streaming twin of EcgFilter::apply: morphological baseline removal
/// (bit-identical to the batch estimator) followed by the 0.05-40 Hz FIR
/// band-pass as a causal symmetric kernel equal to the zero-phase
/// filtfilt response. Honors the EcgFilterConfig ablation switches.
class EcgCleanerStage final : public StreamingStage {
 public:
  EcgCleanerStage(dsp::SampleRate fs, const ecg::EcgFilterConfig& cfg = {});

  void push(dsp::Sample x, dsp::Signal& out) override;
  void finish(dsp::Signal& out) override;
  void reset() override;
  [[nodiscard]] std::size_t latency() const override;

 private:
  std::optional<dsp::StreamingBaselineRemover> morph_;
  std::optional<dsp::StreamingZeroPhaseFir> fir_;
  dsp::Signal scratch_;
};

/// Streaming twin of the ICG conditioning chain: impedance in, cleaned
/// ICG (-dZ/dt, zero-phase 20 Hz low-pass, zero-phase baseline high-pass)
/// out. The derivative uses the batch central-difference stencil (one
/// sample of lookahead), the low-pass a symmetric kernel equal to the
/// zero-phase Butterworth response, and the high-pass the decimated
/// zero-phase baseline subtractor (see StreamingZeroPhaseHighpass).
class IcgConditionerStage final : public StreamingStage {
 public:
  IcgConditionerStage(dsp::SampleRate fs, const IcgFilterConfig& cfg = {});

  void push(dsp::Sample x, dsp::Signal& out) override;
  void finish(dsp::Signal& out) override;
  void reset() override;
  [[nodiscard]] std::size_t latency() const override;

 private:
  void on_derivative(dsp::Sample d, dsp::Signal& out);
  void on_lowpassed(dsp::Sample v, dsp::Signal& out);

  dsp::SampleRate fs_;
  dsp::StreamingZeroPhaseFir lp_;
  std::optional<dsp::StreamingZeroPhaseHighpass> hp_;
  dsp::Signal lp_scratch_, hp_scratch_;
  double prev_[2] = {};        ///< last two impedance samples
  std::size_t z_count_ = 0;
};

} // namespace icgkit::core
