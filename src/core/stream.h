// Shared single-pass streaming infrastructure for the beat pipeline.
//
// Every stage consumes one sample per push() and appends zero or more
// *delay-compensated* output samples: output index i always corresponds
// to input index i, it is just emitted latency() samples later. finish()
// flushes the tail so a stream of n inputs always yields exactly n
// outputs. Because each stage's state advances one sample at a time, the
// composed pipeline is chunk-size invariant: any segmentation of the
// input produces bit-identical output, which is what lets
// BeatPipeline::process be a thin one-big-chunk wrapper around
// StreamingBeatPipeline (see pipeline.h).
//
// Both stages are generic over the numeric backend (dsp/backend.h): the
// DoubleBackend instantiations are the reference engine, the Q31Backend
// instantiations the firmware arithmetic feeding
// FixedStreamingBeatPipeline. Filter kernels are always *designed* in
// double; the backend only decides how they are quantized and applied.
#pragma once

#include "core/icg_filter.h"
#include "dsp/backend.h"
#include "dsp/filtfilt.h"
#include "dsp/morphology.h"
#include "dsp/types.h"
#include "dsp/zero_phase_highpass.h"
#include "ecg/ecg_filter.h"

#include <cstddef>
#include <optional>
#include <vector>

namespace icgkit::core {

/// The 0.05-40 Hz zero-phase FIR kernel of the ECG cleaning chain.
dsp::FirCoefficients ecg_cleaner_fir_kernel(dsp::SampleRate fs,
                                            const ecg::EcgFilterConfig& cfg);
/// The symmetric zero-phase kernel of the 20 Hz ICG Butterworth low-pass
/// (validates fs).
dsp::FirCoefficients icg_conditioner_lowpass_kernel(dsp::SampleRate fs,
                                                    const IcgFilterConfig& cfg);

/// Streaming twin of EcgFilter::apply: morphological baseline removal
/// (bit-identical to the batch estimator) followed by the 0.05-40 Hz FIR
/// band-pass as a causal symmetric kernel equal to the zero-phase
/// filtfilt response. Honors the EcgFilterConfig ablation switches.
template <typename B>
class BasicEcgCleanerStage {
 public:
  using sample_t = typename B::sample_t;

  BasicEcgCleanerStage(dsp::SampleRate fs, const ecg::EcgFilterConfig& cfg = {}) {
    if (cfg.enable_morphological_stage) morph_.emplace(fs, cfg.baseline);
    if (cfg.enable_fir_stage) fir_.emplace(ecg_cleaner_fir_kernel(fs, cfg));
  }

  void push(sample_t x, std::vector<sample_t>& out) {
    if (!morph_.has_value()) {
      if (fir_.has_value())
        fir_->push(x, out);
      else
        out.push_back(x);
      return;
    }
    if (!fir_.has_value()) {
      morph_->push(x, out);
      return;
    }
    scratch_.clear();
    morph_->push(x, scratch_);
    for (const sample_t v : scratch_) fir_->push(v, out);
  }

  void finish(std::vector<sample_t>& out) {
    if (morph_.has_value() && fir_.has_value()) {
      scratch_.clear();
      morph_->finish(scratch_);
      for (const sample_t v : scratch_) fir_->push(v, out);
      fir_->finish(out);
      return;
    }
    if (morph_.has_value()) morph_->finish(out);
    if (fir_.has_value()) fir_->finish(out);
  }

  void reset() {
    if (morph_.has_value()) morph_->reset();
    if (fir_.has_value()) fir_->reset();
  }

  /// Serializes the enabled sub-stages for core::Checkpoint round trips;
  /// load_state() rejects blobs whose stage layout (ablation switches)
  /// differs from this instance's configuration.
  template <typename W>
  void save_state(W& w) const {
    w.boolean(morph_.has_value());
    w.boolean(fir_.has_value());
    if (morph_.has_value()) morph_->save_state(w);
    if (fir_.has_value()) fir_->save_state(w);
  }

  template <typename R>
  void load_state(R& r) {
    if (r.boolean() != morph_.has_value() || r.boolean() != fir_.has_value())
      r.fail("EcgCleanerStage: stage layout mismatch");
    if (morph_.has_value()) morph_->load_state(r);
    if (fir_.has_value()) fir_->load_state(r);
  }

  [[nodiscard]] std::size_t latency() const {
    std::size_t d = 0;
    if (morph_.has_value()) d += morph_->delay();
    if (fir_.has_value()) d += fir_->delay();
    return d;
  }

 private:
  std::optional<dsp::BasicStreamingBaselineRemover<B>> morph_;
  std::optional<dsp::BasicStreamingZeroPhaseFir<B>> fir_;
  std::vector<sample_t> scratch_;
};

using EcgCleanerStage = BasicEcgCleanerStage<dsp::DoubleBackend>;

/// Streaming twin of the ICG conditioning chain: impedance in, cleaned
/// ICG (-dZ/dt, zero-phase 20 Hz low-pass, zero-phase baseline high-pass)
/// out. The derivative uses the batch central-difference stencil (one
/// sample of lookahead), the low-pass a symmetric kernel equal to the
/// zero-phase Butterworth response, and the high-pass the decimated
/// zero-phase baseline subtractor (see StreamingZeroPhaseHighpass).
///
/// `deriv_gain_log2` is the fixed-point scaling policy hook: the double
/// backend multiplies the derivative by fs as always, while the Q31
/// backend left-shifts by this amount instead and the caller accounts
/// for the absorbed fs/2^shift factor in the stage's nominal full scale
/// (see dsp::Q31ScalingPolicy).
template <typename B>
class BasicIcgConditionerStage {
 public:
  using sample_t = typename B::sample_t;

  BasicIcgConditionerStage(dsp::SampleRate fs, const IcgFilterConfig& cfg = {},
                           int deriv_gain_log2 = 0)
      : fs_(fs), gain_log2_(deriv_gain_log2),
        lp_(icg_conditioner_lowpass_kernel(fs, cfg)) {
    if (cfg.highpass_hz > 0.0) {
      dsp::ZeroPhaseHighpassConfig hp_cfg;
      hp_cfg.cutoff_hz = cfg.highpass_hz;
      hp_cfg.order = cfg.highpass_order;
      hp_.emplace(fs, hp_cfg);
    }
  }

  void push(sample_t x, std::vector<sample_t>& out) {
    const std::size_t j = z_count_++;
    // ICG = -dZ/dt with the batch derivative() stencil: the aligned central
    // difference needs one sample of lookahead, the first sample uses the
    // forward difference.
    if (j == 1)
      on_derivative(B::rescale(B::neg(B::sub(x, prev_[1])), fs_, gain_log2_), out);
    else if (j >= 2)
      on_derivative(B::half(B::rescale(B::neg(B::sub(x, prev_[0])), fs_, gain_log2_)),
                    out);
    prev_[0] = prev_[1];
    prev_[1] = x;
  }

  void finish(std::vector<sample_t>& out) {
    // Trailing derivative sample: batch edge form -(x[n-1] - x[n-2]) * fs.
    if (z_count_ >= 2)
      on_derivative(B::rescale(B::neg(B::sub(prev_[1], prev_[0])), fs_, gain_log2_),
                    out);
    else if (z_count_ == 1)
      on_derivative(sample_t{}, out);
    lp_scratch_.clear();
    lp_.finish(lp_scratch_);
    for (const sample_t v : lp_scratch_) on_lowpassed(v, out);
    if (hp_.has_value()) hp_->finish(out);
  }

  void reset() {
    lp_.reset();
    if (hp_.has_value()) hp_->reset();
    prev_[0] = prev_[1] = sample_t{};
    z_count_ = 0;
  }

  /// Serializes the low-pass/high-pass kernels and the derivative
  /// stencil's two-sample history for core::Checkpoint round trips.
  template <typename W>
  void save_state(W& w) const {
    lp_.save_state(w);
    w.boolean(hp_.has_value());
    if (hp_.has_value()) hp_->save_state(w);
    w.value(prev_[0]);
    w.value(prev_[1]);
    w.u64(z_count_);
  }

  template <typename R>
  void load_state(R& r) {
    lp_.load_state(r);
    if (r.boolean() != hp_.has_value())
      r.fail("IcgConditionerStage: stage layout mismatch");
    if (hp_.has_value()) hp_->load_state(r);
    prev_[0] = r.template value<sample_t>();
    prev_[1] = r.template value<sample_t>();
    z_count_ = r.u64();
  }

  [[nodiscard]] std::size_t latency() const {
    return 1 + lp_.delay() + (hp_.has_value() ? hp_->delay() : 0);
  }

 private:
  void on_derivative(sample_t d, std::vector<sample_t>& out) {
    lp_scratch_.clear();
    lp_.push(d, lp_scratch_);
    for (const sample_t v : lp_scratch_) on_lowpassed(v, out);
  }

  void on_lowpassed(sample_t v, std::vector<sample_t>& out) {
    if (hp_.has_value())
      hp_->push(v, out);
    else
      out.push_back(v);
  }

  dsp::SampleRate fs_;
  int gain_log2_;
  dsp::BasicStreamingZeroPhaseFir<B> lp_;
  std::optional<dsp::BasicStreamingZeroPhaseHighpass<B>> hp_;
  std::vector<sample_t> lp_scratch_;
  sample_t prev_[2] = {};        ///< last two impedance samples
  std::size_t z_count_ = 0;
};

using IcgConditionerStage = BasicIcgConditionerStage<dsp::DoubleBackend>;

} // namespace icgkit::core
