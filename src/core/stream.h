// Shared single-pass streaming infrastructure for the beat pipeline.
//
// Every stage consumes one sample per push() and appends zero or more
// *delay-compensated* output samples: output index i always corresponds
// to input index i, it is just emitted latency() samples later. finish()
// flushes the tail so a stream of n inputs always yields exactly n
// outputs. Because each stage's state advances one sample at a time, the
// composed pipeline is chunk-size invariant: any segmentation of the
// input produces bit-identical output, which is what lets
// BeatPipeline::process be a thin one-big-chunk wrapper around
// StreamingBeatPipeline (see pipeline.h).
//
// Both stages are generic over the numeric backend (dsp/backend.h): the
// DoubleBackend instantiations are the reference engine, the Q31Backend
// instantiations the firmware arithmetic feeding
// FixedStreamingBeatPipeline. Filter kernels are always *designed* in
// double; the backend only decides how they are quantized and applied.
#pragma once

#include "core/icg_filter.h"
#include "dsp/backend.h"
#include "dsp/filtfilt.h"
#include "dsp/morphology.h"
#include "dsp/types.h"
#include "dsp/zero_phase_highpass.h"
#include "ecg/ecg_filter.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace icgkit::core {

/// The 0.05-40 Hz zero-phase FIR kernel of the ECG cleaning chain.
dsp::FirCoefficients ecg_cleaner_fir_kernel(dsp::SampleRate fs,
                                            const ecg::EcgFilterConfig& cfg);
/// The symmetric zero-phase kernel of the 20 Hz ICG Butterworth low-pass
/// (validates fs).
dsp::FirCoefficients icg_conditioner_lowpass_kernel(dsp::SampleRate fs,
                                                    const IcgFilterConfig& cfg);

/// Streaming twin of EcgFilter::apply: morphological baseline removal
/// (bit-identical to the batch estimator) followed by the 0.05-40 Hz FIR
/// band-pass as a causal symmetric kernel equal to the zero-phase
/// filtfilt response. Honors the EcgFilterConfig ablation switches.
template <typename B>
class BasicEcgCleanerStage {
 public:
  using sample_t = typename B::sample_t;

  BasicEcgCleanerStage(dsp::SampleRate fs, const ecg::EcgFilterConfig& cfg = {}) {
    if (cfg.enable_morphological_stage) morph_.emplace(fs, cfg.baseline);
    if (cfg.enable_fir_stage) fir_.emplace(ecg_cleaner_fir_kernel(fs, cfg));
  }

  void push(sample_t x, std::vector<sample_t>& out) {
    if (!morph_.has_value()) {
      if (fir_.has_value())
        fir_->push(x, out);
      else
        out.push_back(x);
      return;
    }
    if (!fir_.has_value()) {
      morph_->push(x, out);
      return;
    }
    scratch_.clear();
    morph_->push(x, scratch_);
    for (const sample_t v : scratch_) fir_->push(v, out);
  }

  /// Fused per-chunk form of push(): one pass per sub-stage over the
  /// whole chunk instead of a per-sample morph->FIR dispatch chain. For
  /// every input sample appends one entry to `cum`: the absolute size of
  /// `out` after that sample's outputs (callers slice per-input output
  /// ranges as [cum[i-1], cum[i])). Byte-identical to calling push() per
  /// sample — each sub-stage sees the identical input sequence, only the
  /// interleaving of *stage* work changes, never the order within a
  /// stage.
  void process_chunk(std::span<const sample_t> x, std::vector<sample_t>& out,
                     std::vector<std::uint32_t>& cum) {
    if (!morph_.has_value()) {
      if (fir_.has_value()) {
        fir_->process_chunk_counted(x, out, cum);
      } else {
        for (const sample_t v : x) {
          out.push_back(v);
          cum.push_back(static_cast<std::uint32_t>(out.size()));
        }
      }
      return;
    }
    if (!fir_.has_value()) {
      for (const sample_t v : x) {
        morph_->push(v, out);
        cum.push_back(static_cast<std::uint32_t>(out.size()));
      }
      return;
    }
    morph_arena_.clear();
    morph_cum_.clear();
    for (const sample_t v : x) {
      morph_->push(v, morph_arena_);
      morph_cum_.push_back(static_cast<std::uint32_t>(morph_arena_.size()));
    }
    const auto base = static_cast<std::uint32_t>(out.size());
    fir_cum_.clear();
    fir_->process_chunk_counted(morph_arena_, out, fir_cum_);
    for (std::size_t i = 0; i < x.size(); ++i)
      cum.push_back(morph_cum_[i] > 0 ? fir_cum_[morph_cum_[i] - 1] : base);
  }

  void finish(std::vector<sample_t>& out) {
    if (morph_.has_value() && fir_.has_value()) {
      scratch_.clear();
      morph_->finish(scratch_);
      for (const sample_t v : scratch_) fir_->push(v, out);
      fir_->finish(out);
      return;
    }
    if (morph_.has_value()) morph_->finish(out);
    if (fir_.has_value()) fir_->finish(out);
  }

  void reset() {
    if (morph_.has_value()) morph_->reset();
    if (fir_.has_value()) fir_->reset();
  }

  /// Serializes the enabled sub-stages for core::Checkpoint round trips;
  /// load_state() rejects blobs whose stage layout (ablation switches)
  /// differs from this instance's configuration.
  template <typename W>
  void save_state(W& w) const {
    w.boolean(morph_.has_value());
    w.boolean(fir_.has_value());
    if (morph_.has_value()) morph_->save_state(w);
    if (fir_.has_value()) fir_->save_state(w);
  }

  template <typename R>
  void load_state(R& r) {
    if (r.boolean() != morph_.has_value() || r.boolean() != fir_.has_value())
      r.fail("EcgCleanerStage: stage layout mismatch");
    if (morph_.has_value()) morph_->load_state(r);
    if (fir_.has_value()) fir_->load_state(r);
  }

  [[nodiscard]] std::size_t latency() const {
    std::size_t d = 0;
    if (morph_.has_value()) d += morph_->delay();
    if (fir_.has_value()) d += fir_->delay();
    return d;
  }

 private:
  std::optional<dsp::BasicStreamingBaselineRemover<B>> morph_;
  std::optional<dsp::BasicStreamingZeroPhaseFir<B>> fir_;
  std::vector<sample_t> scratch_;
  // process_chunk arenas: intermediate morph outputs and per-stage
  // cumulative-output snapshots, reused across chunks (no steady-state
  // allocation once grown).
  std::vector<sample_t> morph_arena_;
  std::vector<std::uint32_t> morph_cum_;
  std::vector<std::uint32_t> fir_cum_;
};

using EcgCleanerStage = BasicEcgCleanerStage<dsp::DoubleBackend>;

/// Streaming twin of the ICG conditioning chain: impedance in, cleaned
/// ICG (-dZ/dt, zero-phase 20 Hz low-pass, zero-phase baseline high-pass)
/// out. The derivative uses the batch central-difference stencil (one
/// sample of lookahead), the low-pass a symmetric kernel equal to the
/// zero-phase Butterworth response, and the high-pass the decimated
/// zero-phase baseline subtractor (see StreamingZeroPhaseHighpass).
///
/// `deriv_gain_log2` is the fixed-point scaling policy hook: the double
/// backend multiplies the derivative by fs as always, while the Q31
/// backend left-shifts by this amount instead and the caller accounts
/// for the absorbed fs/2^shift factor in the stage's nominal full scale
/// (see dsp::Q31ScalingPolicy).
template <typename B>
class BasicIcgConditionerStage {
 public:
  using sample_t = typename B::sample_t;

  BasicIcgConditionerStage(dsp::SampleRate fs, const IcgFilterConfig& cfg = {},
                           int deriv_gain_log2 = 0)
      : fs_(fs), gain_log2_(deriv_gain_log2),
        lp_(icg_conditioner_lowpass_kernel(fs, cfg)) {
    if (cfg.highpass_hz > 0.0) {
      dsp::ZeroPhaseHighpassConfig hp_cfg;
      hp_cfg.cutoff_hz = cfg.highpass_hz;
      hp_cfg.order = cfg.highpass_order;
      hp_.emplace(fs, hp_cfg);
    }
  }

  void push(sample_t x, std::vector<sample_t>& out) {
    const std::size_t j = z_count_++;
    // ICG = -dZ/dt with the batch derivative() stencil: the aligned central
    // difference needs one sample of lookahead, the first sample uses the
    // forward difference.
    if (j == 1)
      on_derivative(B::rescale(B::neg(B::sub(x, prev_[1])), fs_, gain_log2_), out);
    else if (j >= 2)
      on_derivative(B::half(B::rescale(B::neg(B::sub(x, prev_[0])), fs_, gain_log2_)),
                    out);
    prev_[0] = prev_[1];
    prev_[1] = x;
  }

  /// Fused per-chunk form of push(): derivative stencil, low-pass FIR
  /// and baseline high-pass each run as one flat pass over the chunk
  /// instead of a per-sample lambda dispatch chain. Appends one `cum`
  /// entry per input sample: the absolute size of `out` after that
  /// sample's outputs. Byte-identical to the per-sample path — every
  /// sub-stage consumes the identical sample sequence in the identical
  /// order.
  void process_chunk(std::span<const sample_t> x, std::vector<sample_t>& out,
                     std::vector<std::uint32_t>& cum) {
    d_arena_.clear();
    d_cum_.clear();
    for (const sample_t v : x) {
      const std::size_t j = z_count_++;
      if (j == 1)
        d_arena_.push_back(B::rescale(B::neg(B::sub(v, prev_[1])), fs_, gain_log2_));
      else if (j >= 2)
        d_arena_.push_back(
            B::half(B::rescale(B::neg(B::sub(v, prev_[0])), fs_, gain_log2_)));
      prev_[0] = prev_[1];
      prev_[1] = v;
      d_cum_.push_back(static_cast<std::uint32_t>(d_arena_.size()));
    }
    lp_arena_.clear();
    lp_cum_.clear();
    lp_.process_chunk_counted(d_arena_, lp_arena_, lp_cum_);
    const auto base = static_cast<std::uint32_t>(out.size());
    hp_cum_.clear();
    if (hp_.has_value()) {
      for (const sample_t v : lp_arena_) {
        hp_->push(v, out);
        hp_cum_.push_back(static_cast<std::uint32_t>(out.size()));
      }
    } else {
      for (const sample_t v : lp_arena_) {
        out.push_back(v);
        hp_cum_.push_back(static_cast<std::uint32_t>(out.size()));
      }
    }
    for (std::size_t i = 0; i < x.size(); ++i) {
      const std::uint32_t nd = d_cum_[i];
      const std::uint32_t nlp = nd > 0 ? lp_cum_[nd - 1] : 0;
      cum.push_back(nlp > 0 ? hp_cum_[nlp - 1] : base);
    }
  }

  void finish(std::vector<sample_t>& out) {
    // Trailing derivative sample: batch edge form -(x[n-1] - x[n-2]) * fs.
    if (z_count_ >= 2)
      on_derivative(B::rescale(B::neg(B::sub(prev_[1], prev_[0])), fs_, gain_log2_),
                    out);
    else if (z_count_ == 1)
      on_derivative(sample_t{}, out);
    lp_scratch_.clear();
    lp_.finish(lp_scratch_);
    for (const sample_t v : lp_scratch_) on_lowpassed(v, out);
    if (hp_.has_value()) hp_->finish(out);
  }

  void reset() {
    lp_.reset();
    if (hp_.has_value()) hp_->reset();
    prev_[0] = prev_[1] = sample_t{};
    z_count_ = 0;
  }

  /// Serializes the low-pass/high-pass kernels and the derivative
  /// stencil's two-sample history for core::Checkpoint round trips.
  template <typename W>
  void save_state(W& w) const {
    lp_.save_state(w);
    w.boolean(hp_.has_value());
    if (hp_.has_value()) hp_->save_state(w);
    w.value(prev_[0]);
    w.value(prev_[1]);
    w.u64(z_count_);
  }

  template <typename R>
  void load_state(R& r) {
    lp_.load_state(r);
    if (r.boolean() != hp_.has_value())
      r.fail("IcgConditionerStage: stage layout mismatch");
    if (hp_.has_value()) hp_->load_state(r);
    prev_[0] = r.template value<sample_t>();
    prev_[1] = r.template value<sample_t>();
    z_count_ = r.u64();
  }

  [[nodiscard]] std::size_t latency() const {
    return 1 + lp_.delay() + (hp_.has_value() ? hp_->delay() : 0);
  }

 private:
  void on_derivative(sample_t d, std::vector<sample_t>& out) {
    lp_scratch_.clear();
    lp_.push(d, lp_scratch_);
    for (const sample_t v : lp_scratch_) on_lowpassed(v, out);
  }

  void on_lowpassed(sample_t v, std::vector<sample_t>& out) {
    if (hp_.has_value())
      hp_->push(v, out);
    else
      out.push_back(v);
  }

  dsp::SampleRate fs_;
  int gain_log2_;
  dsp::BasicStreamingZeroPhaseFir<B> lp_;
  std::optional<dsp::BasicStreamingZeroPhaseHighpass<B>> hp_;
  std::vector<sample_t> lp_scratch_;
  sample_t prev_[2] = {};        ///< last two impedance samples
  std::size_t z_count_ = 0;
  // process_chunk arenas: derivative and low-pass intermediates plus the
  // per-stage cumulative-output snapshots, reused across chunks.
  std::vector<sample_t> d_arena_;
  std::vector<sample_t> lp_arena_;
  std::vector<std::uint32_t> d_cum_;
  std::vector<std::uint32_t> lp_cum_;
  std::vector<std::uint32_t> hp_cum_;
};

using IcgConditionerStage = BasicIcgConditionerStage<dsp::DoubleBackend>;

} // namespace icgkit::core
