#include "core/pipeline.h"

#include "dsp/stats.h"

#include <algorithm>
#include <stdexcept>

namespace icgkit::core {

BeatPipeline::BeatPipeline(dsp::SampleRate fs, const PipelineConfig& cfg)
    : fs_(fs), cfg_(cfg), ecg_filter_(fs, cfg.ecg_filter), qrs_(fs, cfg.qrs),
      icg_filter_(fs, cfg.icg_filter), delineator_(fs, cfg.delineation) {}

PipelineResult BeatPipeline::process(dsp::SignalView ecg_mv, dsp::SignalView z_ohm) const {
  if (ecg_mv.size() != z_ohm.size())
    throw std::invalid_argument("BeatPipeline: ECG and Z traces must be equal length");

  PipelineResult result;
  if (ecg_mv.empty()) return result;

  result.z0_mean_ohm = dsp::mean(z_ohm);
  result.filtered_ecg = ecg_filter_.apply(ecg_mv);
  result.filtered_icg = icg_filter_.apply(icg_from_impedance(z_ohm, fs_));

  const ecg::QrsDetection det = qrs_.detect(result.filtered_ecg);
  result.r_peak_count = det.r_samples.size();

  std::vector<BeatHemodynamics> usable;
  for (std::size_t i = 0; i + 1 < det.r_samples.size(); ++i) {
    const std::size_t r = det.r_samples[i];
    const std::size_t r_next = det.r_samples[i + 1];
    BeatRecord rec;
    rec.rr_s = static_cast<double>(r_next - r) / fs_;
    rec.points = delineator_.delineate(result.filtered_icg, r, r_next);
    rec.flaws = assess_beat(rec.points, rec.rr_s, fs_, cfg_.quality);
    rec.hemo = compute_beat_hemodynamics(rec.points, rec.rr_s, result.z0_mean_ohm, fs_,
                                         cfg_.body);
    if (rec.usable()) usable.push_back(rec.hemo);
    result.beats.push_back(std::move(rec));
  }
  result.summary = summarize_hemodynamics(usable);
  return result;
}

StreamingBeatPipeline::StreamingBeatPipeline(dsp::SampleRate fs, const PipelineConfig& cfg,
                                             double window_s)
    : fs_(fs), pipeline_(fs, cfg),
      window_samples_(static_cast<std::size_t>(std::max(4.0, window_s) * fs)) {}

std::vector<BeatRecord> StreamingBeatPipeline::push(dsp::SignalView ecg_mv,
                                                    dsp::SignalView z_ohm) {
  if (ecg_mv.size() != z_ohm.size())
    throw std::invalid_argument("StreamingBeatPipeline: chunk length mismatch");
  ecg_buf_.insert(ecg_buf_.end(), ecg_mv.begin(), ecg_mv.end());
  z_buf_.insert(z_buf_.end(), z_ohm.begin(), z_ohm.end());
  consumed_ += ecg_mv.size();

  // Trim the window from the front, keeping absolute indexing intact.
  if (ecg_buf_.size() > window_samples_) {
    const std::size_t drop = ecg_buf_.size() - window_samples_;
    ecg_buf_.erase(ecg_buf_.begin(), ecg_buf_.begin() + static_cast<dsp::Index>(drop));
    z_buf_.erase(z_buf_.begin(), z_buf_.begin() + static_cast<dsp::Index>(drop));
    buf_start_ += drop;
  }
  return drain(/*final_flush=*/false);
}

std::vector<BeatRecord> StreamingBeatPipeline::finish() {
  return drain(/*final_flush=*/true);
}

std::vector<BeatRecord> StreamingBeatPipeline::drain(bool final_flush) {
  std::vector<BeatRecord> emitted;
  if (ecg_buf_.size() < static_cast<std::size_t>(2.0 * fs_)) return emitted;

  PipelineResult res = pipeline_.process(ecg_buf_, z_buf_);
  // A beat is emitted once its *following* R peak is safely inside the
  // window (one-beat latency) -- except on the final flush, where all
  // remaining beats go out.
  const double guard_s = final_flush ? 0.0 : 0.5;
  const double window_end_s =
      static_cast<double>(buf_start_ + ecg_buf_.size()) / fs_ - guard_s;
  for (BeatRecord& rec : res.beats) {
    const double r_abs_s = static_cast<double>(buf_start_ + rec.points.r) / fs_;
    const double next_r_abs_s = r_abs_s + rec.rr_s;
    if (r_abs_s <= last_emitted_r_s_ + 1e-9) continue; // already emitted
    if (next_r_abs_s > window_end_s) continue;         // not complete yet
    // Rebase indices to absolute sample positions.
    rec.points.r += buf_start_;
    rec.points.b += buf_start_;
    rec.points.b0 += buf_start_;
    rec.points.c += buf_start_;
    rec.points.x += buf_start_;
    last_emitted_r_s_ = r_abs_s;
    emitted.push_back(rec);
  }
  return emitted;
}

} // namespace icgkit::core
