#include "core/pipeline.h"

#include "dsp/stats.h"

#include <algorithm>
#include <stdexcept>

namespace icgkit::core {

// ---------------------------------------------------------------------------
// StreamingBeatPipeline
// ---------------------------------------------------------------------------

namespace {

// Pending beats are bounded by the configured Pan-Tompkins refractory
// period: R peaks arrive at most once per refractory interval, and a
// pending beat drains as soon as its aligned ICG catches up (a latency
// of well under a second), so the depth is tiny in practice. Size the
// fixed ring for the pathological ceiling — one beat per refractory
// interval across the whole look-back window — plus headroom.
std::size_t pending_capacity(std::size_t window_samples, dsp::SampleRate fs,
                             double refractory_s) {
  const std::size_t refractory =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::max(0.0, refractory_s) * fs));
  return std::max<std::size_t>(64, window_samples / refractory + 16);
}

} // namespace

StreamingBeatPipeline::StreamingBeatPipeline(dsp::SampleRate fs, const PipelineConfig& cfg,
                                             double window_s)
    : fs_(fs), cfg_(cfg),
      window_samples_(static_cast<std::size_t>(std::max(4.0, window_s) * fs)),
      ecg_stage_(fs, cfg.ecg_filter),
      icg_stage_(fs, cfg.icg_filter),
      qrs_(fs, cfg.qrs),
      delineator_(fs, cfg.delineation),
      icg_ring_(window_samples_),
      z_ring_(window_samples_),
      pending_beats_(pending_capacity(window_samples_, fs, cfg.qrs.refractory_s)) {
  // Memory-pool invariant: pre-size the per-beat buffers for any
  // physiologically plausible beat (3 s covers HR down to 20 bpm) so a
  // warmed-up session never allocates on push. Longer beats — artifact
  // dropouts — still work, at the cost of a one-off reallocation.
  const std::size_t max_beat =
      std::min(window_samples_, static_cast<std::size_t>(3.0 * fs));
  beat_scratch_.reserve(max_beat);
  delin_scratch_.reserve(max_beat);
  ecg_scratch_.reserve(512);
  icg_scratch_.reserve(512);
  r_scratch_.reserve(64);
}

std::vector<BeatRecord> StreamingBeatPipeline::push(dsp::SignalView ecg_mv,
                                                    dsp::SignalView z_ohm) {
  std::vector<BeatRecord> emitted;
  push_into(ecg_mv, z_ohm, emitted);
  return emitted;
}

void StreamingBeatPipeline::push_into(dsp::SignalView ecg_mv, dsp::SignalView z_ohm,
                                      std::vector<BeatRecord>& out) {
  if (ecg_mv.size() != z_ohm.size())
    throw std::invalid_argument("StreamingBeatPipeline: chunk length mismatch");
  for (std::size_t i = 0; i < ecg_mv.size(); ++i) ingest(ecg_mv[i], z_ohm[i], out);
}

void StreamingBeatPipeline::ingest(dsp::Sample ecg_mv, dsp::Sample z_ohm,
                                   std::vector<BeatRecord>& out) {
  z_ring_.push(z_ohm);
  z_sum_ += z_ohm;
  ++consumed_;

  icg_scratch_.clear();
  icg_stage_.push(z_ohm, icg_scratch_);
  for (const dsp::Sample v : icg_scratch_) {
    icg_ring_.push(v);
    ++icg_count_;
    if (capture_) captured_icg_.push_back(v);
  }

  ecg_scratch_.clear();
  ecg_stage_.push(ecg_mv, ecg_scratch_);
  r_scratch_.clear();
  for (const dsp::Sample v : ecg_scratch_) {
    if (capture_) captured_ecg_.push_back(v);
    qrs_.push(v, r_scratch_);
  }
  for (const std::size_t r : r_scratch_) {
    ++r_peak_count_;
    if (last_r_.has_value()) enqueue_beat(*last_r_, r);
    last_r_ = r;
  }
  // Emit every beat whose aligned ICG is now complete -- done per sample
  // so the emission point (and thus the ring-buffer state it reads) is
  // identical however the input was chunked.
  drain_ready(out);
}

void StreamingBeatPipeline::enqueue_beat(std::size_t r, std::size_t r_next) {
  if (pending_beats_.full())
    throw std::runtime_error("StreamingBeatPipeline: pending-beat ring overflow");
  pending_beats_.push({r, r_next});
}

void StreamingBeatPipeline::drain_ready(std::vector<BeatRecord>& out) {
  while (!pending_beats_.empty() && icg_count_ >= pending_beats_.front().second) {
    const auto [r, r_next] = pending_beats_.front();
    pending_beats_.pop();
    out.push_back(make_beat(r, r_next));
  }
}

BeatRecord StreamingBeatPipeline::make_beat(std::size_t r, std::size_t r_next) {
  BeatRecord rec;
  rec.rr_s = static_cast<double>(r_next - r) / fs_;

  const std::size_t oldest_icg = icg_count_ - icg_ring_.size();
  if (r < oldest_icg) {
    // The look-back window no longer covers this beat (window smaller
    // than the R-R interval plus stage latencies). Emit it flagged, with
    // every point clamped to its R so no index references trimmed data.
    rec.points.r = rec.points.b = rec.points.b0 = rec.points.c = rec.points.x = r;
    rec.flaws = BeatFlaw::InvalidDelineation;
    return rec;
  }

  beat_scratch_.clear();
  for (std::size_t i = r; i < r_next; ++i)
    beat_scratch_.push_back(icg_ring_.at(i - oldest_icg));
  rec.points = delineator_.delineate(beat_scratch_, 0, beat_scratch_.size(), delin_scratch_);
  rec.points.r += r;
  rec.points.b += r;
  rec.points.b0 += r;
  rec.points.c += r;
  rec.points.x += r;
  rec.flaws = assess_beat(rec.points, rec.rr_s, fs_, cfg_.quality);
  rec.hemo = compute_beat_hemodynamics(rec.points, rec.rr_s, beat_z0(r, r_next), fs_,
                                       cfg_.body);
  return rec;
}

double StreamingBeatPipeline::beat_z0(std::size_t r, std::size_t r_next) const {
  // Base impedance during the beat: mean of the raw trace over the R-R
  // interval (the firmware analogue of the batch recording mean; local,
  // deterministic, and available at emission time).
  const std::size_t oldest_z = consumed_ - z_ring_.size();
  const std::size_t lo = std::max(r, oldest_z);
  const std::size_t hi = std::min(r_next, consumed_);
  if (lo >= hi) return consumed_ > 0 ? z_sum_ / static_cast<double>(consumed_) : 0.0;
  double acc = 0.0;
  for (std::size_t i = lo; i < hi; ++i) acc += z_ring_.at(i - oldest_z);
  return acc / static_cast<double>(hi - lo);
}

std::vector<BeatRecord> StreamingBeatPipeline::finish() {
  std::vector<BeatRecord> emitted;
  finish_into(emitted);
  return emitted;
}

void StreamingBeatPipeline::finish_into(std::vector<BeatRecord>& emitted) {
  icg_scratch_.clear();
  icg_stage_.finish(icg_scratch_);
  for (const dsp::Sample v : icg_scratch_) {
    icg_ring_.push(v);
    ++icg_count_;
    if (capture_) captured_icg_.push_back(v);
  }

  ecg_scratch_.clear();
  ecg_stage_.finish(ecg_scratch_);
  r_scratch_.clear();
  for (const dsp::Sample v : ecg_scratch_) {
    if (capture_) captured_ecg_.push_back(v);
    qrs_.push(v, r_scratch_);
  }
  qrs_.finish(r_scratch_);
  for (const std::size_t r : r_scratch_) {
    ++r_peak_count_;
    if (last_r_.has_value()) enqueue_beat(*last_r_, r);
    last_r_ = r;
  }
  drain_ready(emitted);
}

double StreamingBeatPipeline::z_mean_ohm() const {
  return consumed_ > 0 ? z_sum_ / static_cast<double>(consumed_) : 0.0;
}

// ---------------------------------------------------------------------------
// BeatPipeline (thin batch wrapper)
// ---------------------------------------------------------------------------

BeatPipeline::BeatPipeline(dsp::SampleRate fs, const PipelineConfig& cfg)
    : fs_(fs), cfg_(cfg) {
  // Cheap eager checks; anything subtler throws from the stage
  // constructors on the first process() call.
  if (fs <= 0.0) throw std::invalid_argument("BeatPipeline: fs must be positive");
  if (cfg.qrs.bandpass_low_hz >= cfg.qrs.bandpass_high_hz)
    throw std::invalid_argument("BeatPipeline: QRS band-pass edges inverted");
}

PipelineResult BeatPipeline::process(dsp::SignalView ecg_mv, dsp::SignalView z_ohm) const {
  if (ecg_mv.size() != z_ohm.size())
    throw std::invalid_argument("BeatPipeline: ECG and Z traces must be equal length");

  PipelineResult result;
  if (ecg_mv.empty()) return result;

  // One big chunk through the streaming engine (default window), so the
  // records here are byte-identical to any chunked feed.
  StreamingBeatPipeline engine(fs_, cfg_);
  engine.enable_capture();
  result.beats = engine.push(ecg_mv, z_ohm);
  std::vector<BeatRecord> tail = engine.finish();
  result.beats.insert(result.beats.end(), std::make_move_iterator(tail.begin()),
                      std::make_move_iterator(tail.end()));

  result.z0_mean_ohm = engine.z_mean_ohm();
  result.r_peak_count = engine.r_peak_count();
  result.filtered_ecg = engine.captured_ecg();
  result.filtered_icg = engine.captured_icg();

  std::vector<BeatHemodynamics> usable;
  for (const BeatRecord& rec : result.beats)
    if (rec.usable()) usable.push_back(rec.hemo);
  result.summary = summarize_hemodynamics(usable);
  return result;
}

} // namespace icgkit::core
