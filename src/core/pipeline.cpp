#include "core/pipeline.h"

#include "dsp/stats.h"

#include <stdexcept>

#include "support/contract.h"

namespace icgkit::core {

// The streaming engine is a backend template; these definitions back the
// `extern template` declarations in pipeline.h, so the engine is
// instantiated exactly once.
template class BeatAssembler<dsp::DoubleBackend>;
template class BeatAssembler<dsp::Q31Backend>;
template class BasicStreamingBeatPipeline<dsp::DoubleBackend>;
template class BasicStreamingBeatPipeline<dsp::Q31Backend>;

// ---------------------------------------------------------------------------
// BeatPipeline (thin batch wrapper)
// ---------------------------------------------------------------------------

BeatPipeline::BeatPipeline(dsp::SampleRate fs, const PipelineConfig& cfg)
    : fs_(fs), cfg_(cfg) {
  // Cheap eager checks; anything subtler throws from the stage
  // constructors on the first process() call.
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("BeatPipeline: fs must be positive"));
  if (cfg.qrs.bandpass_low_hz >= cfg.qrs.bandpass_high_hz)
    ICGKIT_THROW(std::invalid_argument("BeatPipeline: QRS band-pass edges inverted"));
}

PipelineResult BeatPipeline::process(dsp::SignalView ecg_mv, dsp::SignalView z_ohm) const {
  if (ecg_mv.size() != z_ohm.size())
    ICGKIT_THROW(std::invalid_argument("BeatPipeline: ECG and Z traces must be equal length"));

  PipelineResult result;
  if (ecg_mv.empty()) return result;

  // One big chunk through the streaming engine (default window), so the
  // records here are byte-identical to any chunked feed.
  StreamingBeatPipeline engine(fs_, cfg_);
  engine.enable_capture();
  result.beats = engine.push(ecg_mv, z_ohm);
  std::vector<BeatRecord> tail = engine.finish();
  result.beats.insert(result.beats.end(), std::make_move_iterator(tail.begin()),
                      std::make_move_iterator(tail.end()));

  result.z0_mean_ohm = engine.z_mean_ohm();
  result.r_peak_count = engine.r_peak_count();
  result.filtered_ecg = engine.captured_ecg();
  result.filtered_icg = engine.captured_icg();

  std::vector<BeatHemodynamics> usable;
  for (const BeatRecord& rec : result.beats)
    if (rec.usable()) usable.push_back(rec.hemo);
  result.summary = summarize_hemodynamics(usable);
  return result;
}

} // namespace icgkit::core
